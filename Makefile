GO ?= go
BIN := $(CURDIR)/bin

.PHONY: build test lint fuzz-smoke sanitize bench bench-cache clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint builds the engine-invariant analyzer suite (internal/analysis) and
# runs it over the whole module through the standard vet driver, then
# checks formatting. The analyzers: streamclose, atomicfield,
# unsafealias, goroutinedrain, eofconvention.
lint:
	$(GO) build -o $(BIN)/gofusionlint ./cmd/gofusionlint
	$(GO) vet -vettool=$(BIN)/gofusionlint ./...
	@out="$$(gofmt -l ./cmd ./internal)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# sanitize reruns the memory-layer unit tests and the differential SQL
# fuzzer with the checked allocator (canaries, double-release and leak
# detection) swapped in via the `sanitize` build tag.
sanitize:
	$(GO) test -tags sanitize ./internal/memory/ ./internal/fuzzsql/

fuzz-smoke:
	$(GO) run ./cmd/fuzzsql -seed 7 -n 120 -q

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-cache measures the shared decoded-page cache and result cache
# (cold vs warm vs nocache vs warmresult, plus the concurrent mixed
# workload); medians of 5 runs feed BENCH_cache.json.
bench-cache:
	$(GO) test -run '^$$' -bench BenchmarkSharedCache -benchtime 5x -count=5 .

clean:
	rm -rf $(BIN)
