GO ?= go
BIN := $(CURDIR)/bin

.PHONY: build test lint fuzz-smoke stream-smoke sanitize bench bench-cache clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint builds the engine-invariant analyzer suite (internal/analysis) and
# runs it over the whole module through the standard vet driver, then
# checks formatting. The analyzers: streamclose, atomicfield,
# unsafealias, goroutinedrain, eofconvention.
lint:
	$(GO) build -o $(BIN)/gofusionlint ./cmd/gofusionlint
	$(GO) vet -vettool=$(BIN)/gofusionlint ./...
	@out="$$(gofmt -l ./cmd ./internal)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# sanitize reruns the memory-layer unit tests and the differential SQL
# fuzzer with the checked allocator (canaries, double-release and leak
# detection) swapped in via the `sanitize` build tag.
sanitize:
	$(GO) test -tags sanitize ./internal/memory/ ./internal/fuzzsql/

fuzz-smoke:
	$(GO) run ./cmd/fuzzsql -seed 7 -n 120 -q

# stream-smoke exercises the streaming surface under the race detector:
# the differential replay harness (fixed seed, ingestion interleaved
# with probes and a 300-query corpus across mem/gpq/stream backends),
# the churn soak (ingest -> query -> cancel cycles; fails on leaked
# goroutines, reservations, or spill files), and the core streaming
# end-to-end pack (breakers, watermarks, streaming joins, tailing,
# cache invalidation under writes). CI also runs all three under the
# sanitize tag.
stream-smoke:
	$(GO) test -race -run 'TestReplay|TestChurn' ./internal/fuzzsql/
	$(GO) test -race -run 'TestStreaming|TestWatermark|TestTailing|TestCopyInto|TestInsert|TestResultCacheInvalidation|TestPageCacheInvalidation' ./internal/core/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-cache measures the shared decoded-page cache and result cache
# (cold vs warm vs nocache vs warmresult, plus the concurrent mixed
# workload); medians of 5 runs feed BENCH_cache.json.
bench-cache:
	$(GO) test -run '^$$' -bench BenchmarkSharedCache -benchtime 5x -count=5 .

clean:
	rm -rf $(BIN)
