GO ?= go
BIN := $(CURDIR)/bin

.PHONY: build test lint lint-self fuzz-smoke stream-smoke server-smoke sanitize bench bench-cache bench-server clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint builds the engine-invariant analyzer suite (internal/analysis) and
# runs it over the whole module through the standard vet driver, then
# checks formatting. The analyzers: streamclose, atomicfield,
# unsafealias, goroutinedrain, eofconvention, scanlimit, and the
# interprocedural dataflow checks lockorder, resbalance, ctxflow (over
# the shared CFG/summary IR in internal/analysis/cfg and flow), plus the
# nolintaudit suppression audit.
lint:
	$(GO) build -o $(BIN)/gofusionlint ./cmd/gofusionlint
	$(GO) vet -vettool=$(BIN)/gofusionlint ./...
	@out="$$(gofmt -l ./cmd ./internal)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# lint-self tests the analyzers themselves: CFG golden dumps and the
# randomized structural self-check, the fixpoint driver, and every
# analyzer's analysistest golden suite, under the race detector.
lint-self:
	$(GO) test -race ./internal/analysis/...

# sanitize reruns the memory-layer unit tests and the differential SQL
# fuzzer with the checked allocator (canaries, double-release and leak
# detection) swapped in via the `sanitize` build tag.
sanitize:
	$(GO) test -tags sanitize ./internal/memory/ ./internal/fuzzsql/

fuzz-smoke:
	$(GO) run ./cmd/fuzzsql -seed 7 -n 120 -q

# stream-smoke exercises the streaming surface under the race detector:
# the differential replay harness (fixed seed, ingestion interleaved
# with probes and a 300-query corpus across mem/gpq/stream backends),
# the churn soak (ingest -> query -> cancel cycles; fails on leaked
# goroutines, reservations, or spill files), and the core streaming
# end-to-end pack (breakers, watermarks, streaming joins, tailing,
# cache invalidation under writes). CI also runs all three under the
# sanitize tag.
stream-smoke:
	$(GO) test -race -run 'TestReplay|TestChurn' ./internal/fuzzsql/
	$(GO) test -race -run 'TestStreaming|TestWatermark|TestTailing|TestCopyInto|TestInsert|TestResultCacheInvalidation|TestPageCacheInvalidation' ./internal/core/

# server-smoke exercises the multi-tenant service layer under the race
# detector: admission-control units, the HTTP surface, the concurrency
# soak (mixed read/ingest/cancel; fails on leaked goroutines,
# reservations, or spill files), and the 8-client differential load
# harness — zero sheds with an ample queue, all-shed under saturation,
# and zero result divergences against the serial baseline. CI also runs
# the pack under the sanitize tag.
server-smoke:
	$(GO) test -race ./internal/server/
	$(GO) test -race -run 'TestLoad' ./internal/serverload/

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-cache measures the shared decoded-page cache and result cache
# (cold vs warm vs nocache vs warmresult, plus the concurrent mixed
# workload); medians of 5 runs feed BENCH_cache.json.
bench-cache:
	$(GO) test -run '^$$' -bench BenchmarkSharedCache -benchtime 5x -count=5 .

# bench-server measures end-to-end service throughput and p50/p99 at
# 1/4/8 concurrent clients with the plan cache off/on; medians of 3
# runs feed BENCH_server.json.
bench-server:
	$(GO) test -run '^$$' -bench BenchmarkServerLoad -benchtime 200x -count=3 ./internal/serverload/

clean:
	rm -rf $(BIN)
