// Quickstart: register a CSV file, run SQL and DataFrame queries, and
// write the result to a GPQ file — the engine's one-paragraph pitch.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
	"gofusion/internal/csvio"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
)

const salesCSV = `region,product,amount,sold_on
east,keyboard,120.50,2024-01-03
west,mouse,19.99,2024-01-04
east,monitor,279.00,2024-01-04
north,keyboard,118.00,2024-01-05
west,monitor,265.50,2024-01-06
east,mouse,21.25,2024-01-06
west,keyboard,125.75,2024-01-07
east,monitor,289.99,2024-01-08
`

func main() {
	dir, err := os.MkdirTemp("", "gofusion-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	csvPath := filepath.Join(dir, "sales.csv")
	if err := os.WriteFile(csvPath, []byte(salesCSV), 0o644); err != nil {
		log.Fatal(err)
	}

	// 1. Create a session and register the file (schema is inferred).
	session := core.NewSession(core.SessionConfig{TargetPartitions: 2})
	if err := session.RegisterCSV("sales", csvPath, csvio.DefaultOptions()); err != nil {
		log.Fatal(err)
	}

	// 2. SQL.
	fmt.Println("revenue by region (SQL):")
	df, err := session.SQL(`
		SELECT region, count(*) AS orders, sum(amount) AS revenue
		FROM sales
		GROUP BY region
		ORDER BY revenue DESC`)
	if err != nil {
		log.Fatal(err)
	}
	if err := df.Show(os.Stdout, 10); err != nil {
		log.Fatal(err)
	}

	// 3. The same query through the DataFrame API.
	fmt.Println("\ntop products over $100 (DataFrame API):")
	table, err := session.Table("sales")
	if err != nil {
		log.Fatal(err)
	}
	out, err := table.
		Filter(&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("amount"), R: logical.Lit(100.0)}).
		Aggregate(
			[]logical.Expr{logical.Col("product")},
			[]logical.Expr{
				&logical.Alias{E: &logical.AggFunc{Name: "avg", Args: []logical.Expr{logical.Col("amount")}}, Name: "avg_amount"},
			}).
		Sort(logical.SortDesc(logical.Col("avg_amount"))).
		CollectBatch()
	if err != nil {
		log.Fatal(err)
	}
	if err := core.FormatBatch(os.Stdout, out, 10); err != nil {
		log.Fatal(err)
	}

	// 4. EXPLAIN shows the plan stack.
	fmt.Println("\nplans:")
	text, err := df.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text)

	// 5. Write results to the columnar file format and read them back.
	gpqPath := filepath.Join(dir, "by_region.gpq")
	batch, err := df.CollectBatch()
	if err != nil {
		log.Fatal(err)
	}
	if err := parquet.WriteFile(gpqPath, df.Schema().ToArrow(),
		[]*arrow.RecordBatch{batch}, parquet.DefaultWriterOptions()); err != nil {
		log.Fatal(err)
	}
	if err := session.RegisterGPQ("by_region", gpqPath); err != nil {
		log.Fatal(err)
	}
	n, err := mustDF(session.SQL("SELECT count(*) FROM by_region")).Count()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round-tripped %d region rows through %s\n", n, filepath.Base(gpqPath))
}

func mustDF(df *core.DataFrame, err error) *core.DataFrame {
	if err != nil {
		log.Fatal(err)
	}
	return df
}
