// Extension: the paper's Figure 1/2 story — a system builder customizes
// the engine through its extension APIs instead of forking it. This
// example exercises five of them:
//
//  1. a custom TableProvider streaming synthetic sensor readings,
//     with filter pushdown;
//  2. a scalar UDF (fahrenheit conversion);
//  3. a UDAF (geometric mean) with two-phase (partial/final) support;
//  4. a custom optimizer rule rewriting a domain macro;
//  5. a user-defined relational operator (ExecutionPlan) that samples
//     every k-th row, planned through the extension-node hook.
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"os"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/core"
	"gofusion/internal/exec"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/optimizer"
	"gofusion/internal/physical"
)

// ---- 1. Custom TableProvider -------------------------------------------

// sensorTable synthesizes temperature readings on the fly: no file, no
// buffer — batches are produced as the engine pulls (paper Section 7.3).
type sensorTable struct {
	sensors   int
	perSensor int
}

func (t *sensorTable) Schema() *arrow.Schema {
	return arrow.NewSchema(
		arrow.NewField("sensor_id", arrow.Int64, false),
		arrow.NewField("reading_c", arrow.Float64, false),
		arrow.NewField("tick", arrow.Int64, false),
	)
}

func (t *sensorTable) Statistics() catalog.Statistics {
	return catalog.Statistics{NumRows: int64(t.sensors * t.perSensor), TotalBytes: -1}
}

func (t *sensorTable) Scan(req catalog.ScanRequest) (*catalog.ScanResult, error) {
	outSchema := t.Schema()
	if req.Projection != nil {
		outSchema = outSchema.Select(req.Projection)
	}
	parts := req.Partitions
	if parts < 1 {
		parts = 1
	}
	if parts > t.sensors {
		parts = t.sensors
	}
	return &catalog.ScanResult{
		Schema:       outSchema,
		Partitions:   parts,
		ExactFilters: make([]bool, len(req.Filters)), // engine re-checks filters
		Open: func(p int) (catalog.Stream, error) {
			sensor := p
			emitted := 0
			next := func() (*arrow.RecordBatch, error) {
				if sensor >= t.sensors {
					return nil, io.EOF
				}
				ids := arrow.NewNumericBuilder[int64](arrow.Int64)
				vals := arrow.NewNumericBuilder[float64](arrow.Float64)
				ticks := arrow.NewNumericBuilder[int64](arrow.Int64)
				for i := 0; i < t.perSensor; i++ {
					ids.Append(int64(sensor))
					// A deterministic pseudo-signal per sensor.
					vals.Append(20 + 5*math.Sin(float64(i)/10+float64(sensor)) + float64(sensor%7))
					ticks.Append(int64(i))
				}
				emitted += t.perSensor
				full := arrow.NewRecordBatch(t.Schema(), []arrow.Array{ids.Finish(), vals.Finish(), ticks.Finish()})
				sensor += parts
				if req.Projection != nil {
					full = full.Project(req.Projection)
				}
				return full, nil
			}
			return catalog.NewBatchStreamFunc(outSchema, next), nil
		},
	}, nil
}

// ---- 3. UDAF: geometric mean --------------------------------------------

type geoMeanAcc struct {
	logSums []float64
	counts  []int64
}

func (g *geoMeanAcc) ensure(n int) {
	for len(g.logSums) < n {
		g.logSums = append(g.logSums, 0)
		g.counts = append(g.counts, 0)
	}
}

func (g *geoMeanAcc) Update(args []arrow.Array, groupIdx []uint32, numGroups int) error {
	g.ensure(numGroups)
	vals := args[0].(*arrow.Float64Array)
	for i, gi := range groupIdx {
		if vals.IsNull(i) || vals.Value(i) <= 0 {
			continue
		}
		g.logSums[gi] += math.Log(vals.Value(i))
		g.counts[gi]++
	}
	return nil
}

func (g *geoMeanAcc) MergeStates(states []arrow.Array, groupIdx []uint32, numGroups int) error {
	g.ensure(numGroups)
	sums := states[0].(*arrow.Float64Array).Values()
	counts := states[1].(*arrow.Int64Array).Values()
	for i, gi := range groupIdx {
		g.logSums[gi] += sums[i]
		g.counts[gi] += counts[i]
	}
	return nil
}

func (g *geoMeanAcc) State() ([]arrow.Array, error) {
	return []arrow.Array{
		arrow.NewFloat64(append([]float64(nil), g.logSums...)),
		arrow.NewInt64(append([]int64(nil), g.counts...)),
	}, nil
}

func (g *geoMeanAcc) Evaluate() (arrow.Array, error) {
	out := make([]float64, len(g.logSums))
	for i := range out {
		if g.counts[i] > 0 {
			out[i] = math.Exp(g.logSums[i] / float64(g.counts[i]))
		}
	}
	return arrow.NewFloat64(out), nil
}

// ---- 4. Custom optimizer rule -------------------------------------------

// hotSensorMacro rewrites the domain predicate `is_hot(reading_c)` into
// plain comparisons the engine can push down (paper Section 7.6).
type hotSensorMacro struct{}

func (hotSensorMacro) Name() string { return "hot_sensor_macro" }
func (hotSensorMacro) Apply(plan logical.Plan, _ *optimizer.Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		f, ok := p.(*logical.Filter)
		if !ok {
			return p, nil
		}
		pred, err := logical.TransformExpr(f.Predicate, func(e logical.Expr) (logical.Expr, error) {
			if fn, ok := e.(*logical.ScalarFunc); ok && fn.Name == "is_hot" {
				return &logical.BinaryExpr{Op: logical.OpGt, L: fn.Args[0], R: logical.Lit(26.0)}, nil
			}
			return e, nil
		})
		if err != nil {
			return nil, err
		}
		return &logical.Filter{Input: f.Input, Predicate: pred}, nil
	})
}

// ---- 5. User-defined relational operator --------------------------------

// sampleNode is a logical "TAKE EVERY k-th ROW" operator.
type sampleNode struct {
	input logical.Plan
	k     int64
}

func (s *sampleNode) Name() string            { return fmt.Sprintf("SampleEvery(%d)", s.k) }
func (s *sampleNode) Schema() *logical.Schema { return s.input.Schema() }
func (s *sampleNode) Inputs() []logical.Plan  { return []logical.Plan{s.input} }
func (s *sampleNode) WithInputs(in []logical.Plan) logical.ExtensionNode {
	return &sampleNode{input: in[0], k: s.k}
}

// sampleExec is its physical implementation: a streaming operator like any
// built-in (paper Section 7.7).
type sampleExec struct {
	input physical.ExecutionPlan
	k     int64
}

func (s *sampleExec) Schema() *arrow.Schema                { return s.input.Schema() }
func (s *sampleExec) Children() []physical.ExecutionPlan   { return []physical.ExecutionPlan{s.input} }
func (s *sampleExec) Partitions() int                      { return s.input.Partitions() }
func (s *sampleExec) OutputOrdering() []physical.SortField { return s.input.OutputOrdering() }
func (s *sampleExec) String() string                       { return fmt.Sprintf("SampleExec: k=%d", s.k) }
func (s *sampleExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	return &sampleExec{input: ch[0], k: s.k}, nil
}

func (s *sampleExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	in, err := s.input.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	var offset int64
	return exec.NewFuncStream(s.Schema(), func() (*arrow.RecordBatch, error) {
		for {
			b, err := in.Next()
			if err != nil {
				return nil, err
			}
			var keep []int32
			for i := 0; i < b.NumRows(); i++ {
				if (offset+int64(i))%s.k == 0 {
					keep = append(keep, int32(i))
				}
			}
			offset += int64(b.NumRows())
			if len(keep) == 0 {
				continue
			}
			return takeBatch(b, keep), nil
		}
	}, in.Close), nil
}

func takeBatch(b *arrow.RecordBatch, idx []int32) *arrow.RecordBatch {
	cols := make([]arrow.Array, b.NumCols())
	for c := 0; c < b.NumCols(); c++ {
		builder := arrow.NewBuilder(b.Column(c).DataType())
		for _, i := range idx {
			builder.AppendFrom(b.Column(c), int(i))
		}
		cols[c] = builder.Finish()
	}
	return arrow.NewRecordBatchWithRows(b.Schema(), cols, len(idx))
}

func main() {
	session := core.NewSession(core.SessionConfig{TargetPartitions: 4})

	// 1. Register the custom provider.
	session.RegisterTable("sensors", &sensorTable{sensors: 8, perSensor: 1000})

	// 2. Scalar UDF.
	session.Registry().RegisterScalar(&functions.ScalarFunc{
		Name:       "to_fahrenheit",
		ReturnType: func([]*arrow.DataType) (*arrow.DataType, error) { return arrow.Float64, nil },
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			in := args[0].ToArray(numRows).(*arrow.Float64Array)
			out := make([]float64, in.Len())
			for i, v := range in.Values() {
				out[i] = v*9/5 + 32
			}
			return arrow.ArrayDatum(arrow.NewNumeric(arrow.Float64, out, in.Validity().Clone())), nil
		},
	})

	// 2b. A placeholder for the macro so planning type-checks before the
	// optimizer rewrites it away.
	session.Registry().RegisterScalar(&functions.ScalarFunc{
		Name:       "is_hot",
		ReturnType: func([]*arrow.DataType) (*arrow.DataType, error) { return arrow.Boolean, nil },
		Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
			return arrow.Datum{}, fmt.Errorf("is_hot must be rewritten by the optimizer rule")
		},
	})

	// 3. UDAF.
	session.Registry().RegisterAgg(&functions.AggFunc{
		Name:       "geo_mean",
		ReturnType: func([]*arrow.DataType) (*arrow.DataType, error) { return arrow.Float64, nil },
		StateTypes: func([]*arrow.DataType) ([]*arrow.DataType, error) {
			return []*arrow.DataType{arrow.Float64, arrow.Int64}, nil
		},
		NewAccumulator: func([]*arrow.DataType) (functions.GroupsAccumulator, error) {
			return &geoMeanAcc{}, nil
		},
	})

	// 4. Optimizer rule.
	session.WithOptimizerRule(hotSensorMacro{})

	// 5. Extension operator planner hook.
	session.WithExtensionPlanner(func(node logical.ExtensionNode, inputs []physical.ExecutionPlan,
		cfg *exec.PlannerConfig) (physical.ExecutionPlan, bool, error) {
		sn, ok := node.(*sampleNode)
		if !ok {
			return nil, false, nil
		}
		return &sampleExec{input: inputs[0], k: sn.k}, true, nil
	})

	fmt.Println("hot sensors (macro + UDF + UDAF, all through extension APIs):")
	df, err := session.SQL(`
		SELECT sensor_id,
		       count(*) AS hot_readings,
		       geo_mean(to_fahrenheit(reading_c)) AS geo_mean_f
		FROM sensors
		WHERE is_hot(reading_c)
		GROUP BY sensor_id
		ORDER BY hot_readings DESC, sensor_id`)
	if err != nil {
		log.Fatal(err)
	}
	if err := df.Show(os.Stdout, 10); err != nil {
		log.Fatal(err)
	}

	// The user-defined operator slots into a DataFrame pipeline.
	fmt.Println("\nevery 500th reading (user-defined ExecutionPlan):")
	table, err := session.Table("sensors")
	if err != nil {
		log.Fatal(err)
	}
	sampled := &logical.Extension{Node: &sampleNode{input: table.LogicalPlan(), k: 500}}
	pp, err := session.CreatePhysicalPlan(sampled)
	if err != nil {
		log.Fatal(err)
	}
	batches, err := session.ExecutePlan(pp)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, b := range batches {
		total += b.NumRows()
	}
	fmt.Printf("sampled %d of %d rows\n", total, 8*1000)
	fmt.Println("\nphysical plan with the custom operator:")
	fmt.Println(exec.ExplainPhysical(pp))
}
