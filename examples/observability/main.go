// Observability: the time-series use case that motivates several systems
// built on the engine (paper Section 3: InfluxDB 3.0, Coralogix). Metrics
// are ingested into sorted GPQ files whose declared sort order lets the
// engine stream aggregations without re-sorting; window functions compute
// deltas and moving averages; date_trunc buckets series for dashboards.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
	"gofusion/internal/parquet"
)

// generateMetrics writes one hour of per-second CPU gauges for a few
// hosts, sorted by (host, ts) — the layout an ingester would produce.
func generateMetrics(path string) error {
	schema := arrow.NewSchema(
		arrow.NewField("host", arrow.String, false),
		arrow.NewField("ts", arrow.Timestamp, false),
		arrow.NewField("cpu", arrow.Float64, false),
	)
	hb := arrow.NewStringBuilder(arrow.String)
	tb := arrow.NewNumericBuilder[int64](arrow.Timestamp)
	cb := arrow.NewNumericBuilder[float64](arrow.Float64)
	base, _ := arrow.ParseTimestamp("2026-07-06 00:00:00")
	hosts := []string{"db-1", "db-2", "web-1"}
	for _, h := range hosts {
		load := 0.3
		if h == "web-1" {
			load = 0.55
		}
		for s := 0; s < 3600; s++ {
			hb.Append(h)
			tb.Append(base + int64(s)*1_000_000)
			cpu := load + 0.2*math.Sin(float64(s)/300) + 0.05*math.Sin(float64(s)/7)
			if h == "db-2" && s > 2000 && s < 2300 {
				cpu += 0.35 // an incident window
			}
			cb.Append(cpu * 100)
		}
	}
	batch := arrow.NewRecordBatch(schema, []arrow.Array{hb.Finish(), tb.Finish(), cb.Finish()})
	opts := parquet.DefaultWriterOptions()
	// Declare the physical clustering so the engine can exploit it
	// (paper Section 6.7: sort order is the only clustering OLAP ingest
	// can afford).
	opts.KV = map[string]string{"sort_order": "host ASC, ts ASC"}
	return parquet.WriteFile(path, schema, []*arrow.RecordBatch{batch}, opts)
}

func main() {
	dir, err := os.MkdirTemp("", "gofusion-observability")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "metrics.gpq")
	if err := generateMetrics(path); err != nil {
		log.Fatal(err)
	}

	session := core.NewSession(core.SessionConfig{TargetPartitions: 1})
	if err := session.RegisterGPQ("metrics", path); err != nil {
		log.Fatal(err)
	}

	// 1. Dashboard buckets: 10-minute averages per host. The input's
	// declared (host, ts) order lets the aggregation stream.
	fmt.Println("p95-ish view: 10-minute max CPU per host:")
	show(session, `
		SELECT host, date_trunc('minute', ts) AS minute, max(cpu) AS max_cpu
		FROM metrics
		WHERE extract(minute FROM ts) % 10 = 0
		GROUP BY host, minute
		ORDER BY host, minute
		LIMIT 9`)

	// 2. Incident detection with window functions: minute-over-minute
	// delta of average CPU.
	fmt.Println("\nbiggest minute-over-minute CPU jumps (window functions):")
	show(session, `
		WITH per_minute AS (
			SELECT host, date_trunc('minute', ts) AS minute, avg(cpu) AS avg_cpu
			FROM metrics GROUP BY host, minute
		)
		SELECT host, minute, avg_cpu,
		       avg_cpu - lag(avg_cpu) OVER (PARTITION BY host ORDER BY minute) AS delta
		FROM per_minute
		ORDER BY delta DESC NULLS LAST
		LIMIT 5`)

	// 3. Time-range scans hit the file's zone maps: only row groups
	// overlapping the window decode.
	fmt.Println("\nincident window zoom (pruned time-range scan):")
	show(session, `
		SELECT host, count(*) AS samples, avg(cpu) AS avg_cpu, max(cpu) AS max_cpu
		FROM metrics
		WHERE ts BETWEEN TIMESTAMP '2026-07-06 00:33:00' AND TIMESTAMP '2026-07-06 00:39:00'
		GROUP BY host ORDER BY max_cpu DESC`)

	// 4. The plan shows the streaming aggregation chosen because of the
	// declared sort order.
	df, err := session.SQL(`SELECT host, count(*) FROM metrics GROUP BY host`)
	if err != nil {
		log.Fatal(err)
	}
	text, err := df.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngroup-by plan over sorted input (note `ordered` aggregation):")
	fmt.Println(text)
}

func show(session *core.SessionContext, query string) {
	df, err := session.SQL(query)
	if err != nil {
		log.Fatal(err)
	}
	if err := df.Show(os.Stdout, 12); err != nil {
		log.Fatal(err)
	}
}
