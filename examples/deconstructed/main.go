// Deconstructed: build a tiny domain-specific database ("logdb") on the
// engine the way the paper's Section 4 envisions — the host system writes
// only its domain logic (a log-line catalog, a severity macro, a custom
// query entry point) and inherits SQL, optimization, vectorized execution,
// and file formats from the shared foundation, like languages inherit
// LLVM's backend.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/core"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/optimizer"
)

// logSchemaProvider is the domain catalog: every service's logs appear as
// a virtual table named logs_<service>, synthesized on demand (paper
// Section 7.2: catalogs are APIs, not storage).
type logSchemaProvider struct {
	services map[string]*catalog.MemTable
}

func newLogCatalog(services ...string) *logSchemaProvider {
	p := &logSchemaProvider{services: map[string]*catalog.MemTable{}}
	schema := arrow.NewSchema(
		arrow.NewField("ts", arrow.Timestamp, false),
		arrow.NewField("level", arrow.String, false),
		arrow.NewField("message", arrow.String, false),
		arrow.NewField("latency_ms", arrow.Float64, true),
	)
	levels := []string{"DEBUG", "INFO", "INFO", "INFO", "WARN", "ERROR"}
	msgs := []string{"request served", "cache miss", "retrying upstream",
		"connection reset", "slow query detected", "gc pause"}
	base, _ := arrow.ParseTimestamp("2026-07-06 12:00:00")
	for si, svc := range services {
		rng := rand.New(rand.NewSource(int64(si + 1)))
		tb := arrow.NewNumericBuilder[int64](arrow.Timestamp)
		lb := arrow.NewStringBuilder(arrow.String)
		mb := arrow.NewStringBuilder(arrow.String)
		db := arrow.NewNumericBuilder[float64](arrow.Float64)
		for i := 0; i < 5000; i++ {
			tb.Append(base + int64(i)*250_000)
			level := levels[rng.Intn(len(levels))]
			lb.Append(level)
			mb.Append(msgs[rng.Intn(len(msgs))])
			if level == "ERROR" && rng.Intn(3) == 0 {
				db.AppendNull()
			} else {
				db.Append(rng.Float64()*40 + float64(si)*5)
			}
		}
		batch := arrow.NewRecordBatch(schema, []arrow.Array{tb.Finish(), lb.Finish(), mb.Finish(), db.Finish()})
		mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{{batch}})
		if err != nil {
			panic(err)
		}
		p.services["logs_"+svc] = mt
	}
	return p
}

func (p *logSchemaProvider) TableNames() []string {
	var out []string
	for n := range p.services {
		out = append(out, n)
	}
	return out
}

func (p *logSchemaProvider) Table(name string) (catalog.TableProvider, bool) {
	t, ok := p.services[strings.ToLower(name)]
	return t, ok
}

// errorBudgetRule is the domain optimizer pass: `errors_only(level)`
// expands to the level predicates the domain defines.
type errorBudgetRule struct{}

func (errorBudgetRule) Name() string { return "errors_only_macro" }
func (errorBudgetRule) Apply(plan logical.Plan, _ *optimizer.Context) (logical.Plan, error) {
	return logical.TransformPlan(plan, func(p logical.Plan) (logical.Plan, error) {
		f, ok := p.(*logical.Filter)
		if !ok {
			return p, nil
		}
		pred, err := logical.TransformExpr(f.Predicate, func(e logical.Expr) (logical.Expr, error) {
			if fn, ok := e.(*logical.ScalarFunc); ok && fn.Name == "errors_only" {
				return &logical.InList{E: fn.Args[0], List: []logical.Expr{
					logical.Lit("ERROR"), logical.Lit("WARN"),
				}}, nil
			}
			return e, nil
		})
		if err != nil {
			return nil, err
		}
		return &logical.Filter{Input: f.Input, Predicate: pred}, nil
	})
}

// LogDB is the 200-line "database": everything else is the engine.
type LogDB struct{ session *core.SessionContext }

func NewLogDB(services ...string) *LogDB {
	session := core.NewSession(core.SessionConfig{TargetPartitions: 2})
	session.Catalog().RegisterSchema("logs", newLogCatalog(services...))
	session.WithOptimizerRule(errorBudgetRule{})
	// Domain placeholder so planning type-checks; the rule rewrites it.
	session.Registry().RegisterScalar(domainMacro("errors_only"))
	return &LogDB{session: session}
}

func domainMacro(name string) *functionsScalarStub {
	return newStub(name)
}

// ErrorSummary is LogDB's domain API; callers never see SQL.
func (db *LogDB) ErrorSummary(service string) error {
	df, err := db.session.SQL(fmt.Sprintf(`
		SELECT level, count(*) AS events,
		       avg(latency_ms) AS avg_latency,
		       max(latency_ms) AS worst
		FROM logs.logs_%s
		WHERE errors_only(level)
		GROUP BY level ORDER BY events DESC`, service))
	if err != nil {
		return err
	}
	fmt.Printf("error summary for %s:\n", service)
	return df.Show(os.Stdout, 10)
}

// SlowQueries is another domain call composing two virtual tables.
func (db *LogDB) SlowQueries(threshold float64) error {
	df, err := db.session.SQL(fmt.Sprintf(`
		SELECT 'api' AS service, count(*) AS slow FROM logs.logs_api WHERE latency_ms > %[1]f
		UNION ALL
		SELECT 'billing', count(*) FROM logs.logs_billing WHERE latency_ms > %[1]f
		ORDER BY slow DESC`, threshold))
	if err != nil {
		return err
	}
	fmt.Printf("\nservices with latency > %.0fms:\n", threshold)
	return df.Show(os.Stdout, 10)
}

func main() {
	db := NewLogDB("api", "billing")
	if err := db.ErrorSummary("api"); err != nil {
		log.Fatal(err)
	}
	if err := db.SlowQueries(35); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nLogDB itself is ~150 lines; SQL, optimization, vectorized execution,")
	fmt.Println("windows, joins and file formats all come from the engine underneath.")
}

// functionsScalarStub is a placeholder scalar function the optimizer rule
// must rewrite before execution.
type functionsScalarStub = functions.ScalarFunc

func newStub(name string) *functionsScalarStub {
	return &functions.ScalarFunc{
		Name: name,
		ReturnType: func([]*arrow.DataType) (*arrow.DataType, error) {
			return arrow.Boolean, nil
		},
		Eval: func([]arrow.Datum, int) (arrow.Datum, error) {
			return arrow.Datum{}, fmt.Errorf("%s is a macro; the optimizer rule must rewrite it", name)
		},
	}
}
