// Package planner lowers parsed SQL statements to logical plans (paper
// Section 5.3.2): name resolution, wildcard expansion, function
// classification (scalar vs aggregate vs window), aggregate and window
// extraction, subquery planning, set operations, and ORDER BY/GROUP BY
// ordinal and alias resolution.
package planner

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/sql"
)

// TableResolver maps a table name to its source.
type TableResolver func(name string) (logical.TableSource, error)

// Planner converts SQL ASTs to logical plans.
type Planner struct {
	Resolve TableResolver
	Reg     *functions.Registry
	ctes    map[string]logical.Plan
}

// New creates a planner.
func New(resolve TableResolver, reg *functions.Registry) *Planner {
	return &Planner{Resolve: resolve, Reg: reg, ctes: map[string]logical.Plan{}}
}

// PlanQuery lowers a full query statement.
func (p *Planner) PlanQuery(q *sql.SelectStmt) (logical.Plan, error) {
	// CTEs are visible to the body and to later CTEs.
	saved := p.ctes
	p.ctes = make(map[string]logical.Plan, len(saved)+len(q.With))
	for k, v := range saved {
		p.ctes[k] = v
	}
	defer func() { p.ctes = saved }()
	for _, cte := range q.With {
		if cte.Recursive {
			return nil, fmt.Errorf("planner: recursive CTEs require iterative execution (unsupported)")
		}
		plan, err := p.PlanQuery(cte.Query)
		if err != nil {
			return nil, fmt.Errorf("planner: CTE %q: %w", cte.Name, err)
		}
		p.ctes[strings.ToLower(cte.Name)] = logical.NewSubqueryAlias(plan, cte.Name)
	}

	switch body := q.Body.(type) {
	case *sql.SelectCore:
		return p.planCore(body, q.OrderBy, q.Limit, q.Offset)
	case *sql.ValuesClause:
		plan, err := p.planValues(body)
		if err != nil {
			return nil, err
		}
		return p.applyOrderLimit(plan, q.OrderBy, q.Limit, q.Offset, nil)
	case *sql.SetOp:
		plan, err := p.planSetOp(body)
		if err != nil {
			return nil, err
		}
		return p.applyOrderLimit(plan, q.OrderBy, q.Limit, q.Offset, nil)
	}
	return nil, fmt.Errorf("planner: unsupported query body %T", q.Body)
}

func (p *Planner) planValues(v *sql.ValuesClause) (logical.Plan, error) {
	rows := make([][]logical.Expr, len(v.Rows))
	for i, r := range v.Rows {
		row := make([]logical.Expr, len(r))
		for j, cell := range r {
			e, err := p.resolveExprFuncs(cell)
			if err != nil {
				return nil, err
			}
			row[j] = e
		}
		rows[i] = row
	}
	return logical.NewValues(rows, p.Reg)
}

func (p *Planner) planSetOp(op *sql.SetOp) (logical.Plan, error) {
	planSide := func(s sql.SetExpr) (logical.Plan, error) {
		switch x := s.(type) {
		case *sql.SelectCore:
			return p.planCore(x, nil, nil, nil)
		case *sql.ValuesClause:
			return p.planValues(x)
		case *sql.SetOp:
			return p.planSetOp(x)
		}
		return nil, fmt.Errorf("planner: unsupported set operand %T", s)
	}
	left, err := planSide(op.L)
	if err != nil {
		return nil, err
	}
	right, err := planSide(op.R)
	if err != nil {
		return nil, err
	}
	if left.Schema().Len() != right.Schema().Len() {
		return nil, fmt.Errorf("planner: set operation inputs have %d vs %d columns",
			left.Schema().Len(), right.Schema().Len())
	}
	// Coerce right columns to left types where needed.
	right, err = p.castTo(right, left.Schema())
	if err != nil {
		return nil, err
	}
	switch op.Kind {
	case sql.SetUnion:
		u := &logical.Union{Inputs: []logical.Plan{left, right}, All: op.All}
		if op.All {
			return u, nil
		}
		return &logical.Distinct{Input: u}, nil
	case sql.SetIntersect, sql.SetExcept:
		jt := logical.LeftSemiJoin
		if op.Kind == sql.SetExcept {
			jt = logical.LeftAntiJoin
		}
		on := make([]logical.EquiPair, left.Schema().Len())
		for i := range on {
			lf, rf := left.Schema().Field(i), right.Schema().Field(i)
			on[i] = logical.EquiPair{
				L: &logical.Column{Relation: lf.Qualifier, Name: lf.Name},
				R: &logical.Column{Relation: rf.Qualifier, Name: rf.Name},
			}
		}
		join := logical.NewJoin(left, right, jt, on, nil)
		return &logical.Distinct{Input: join}, nil
	}
	return nil, fmt.Errorf("planner: unsupported set operation")
}

// castTo wraps plan in a projection casting its columns to the target
// schema's types (used by set operations).
func (p *Planner) castTo(plan logical.Plan, target *logical.Schema) (logical.Plan, error) {
	needs := false
	exprs := make([]logical.Expr, plan.Schema().Len())
	for i, f := range plan.Schema().Fields() {
		col := &logical.Column{Relation: f.Qualifier, Name: f.Name}
		if !f.Type.Equal(target.Field(i).Type) {
			exprs[i] = &logical.Alias{E: &logical.Cast{E: col, To: target.Field(i).Type}, Name: f.Name}
			needs = true
		} else {
			exprs[i] = col
		}
	}
	if !needs {
		return plan, nil
	}
	return logical.NewProjection(plan, exprs, p.Reg)
}

// planCore lowers one SELECT block plus its trailing clauses.
func (p *Planner) planCore(core *sql.SelectCore, orderBy []sql.OrderItem, limit, offset logical.Expr) (logical.Plan, error) {
	if len(core.GroupingSets) > 0 {
		return p.planGroupingSets(core, orderBy, limit, offset)
	}

	// 1. FROM
	input, err := p.planFrom(core.From)
	if err != nil {
		return nil, err
	}

	// 2. Expand wildcards and resolve functions in the projection.
	selectExprs, err := p.expandProjection(core.Projection, input.Schema())
	if err != nil {
		return nil, err
	}

	// 3. WHERE
	if core.Where != nil {
		pred, err := p.resolveExprFuncs(core.Where)
		if err != nil {
			return nil, err
		}
		if logical.HasAggregates(pred) {
			return nil, fmt.Errorf("planner: aggregate functions are not allowed in WHERE")
		}
		input = &logical.Filter{Input: input, Predicate: pred}
	}

	// 4. GROUP BY / aggregates
	having := core.Having
	if having != nil {
		having, err = p.resolveExprFuncs(having)
		if err != nil {
			return nil, err
		}
	}
	groupExprs, err := p.resolveGroupKeys(core.GroupBy, selectExprs)
	if err != nil {
		return nil, err
	}
	hasAggs := len(groupExprs) > 0 || logical.HasAggregates(having) || anyAggregates(selectExprs)
	if having != nil && !hasAggs {
		return nil, fmt.Errorf("planner: HAVING requires aggregation")
	}

	if hasAggs {
		input, selectExprs, having, err = p.planAggregate(input, groupExprs, selectExprs, having)
		if err != nil {
			return nil, err
		}
		if having != nil {
			input = &logical.Filter{Input: input, Predicate: having}
		}
	}

	// 5. Window functions
	if anyWindows(selectExprs) {
		input, selectExprs, err = p.planWindows(input, selectExprs)
		if err != nil {
			return nil, err
		}
	}

	// 6. Projection
	proj, err := logical.NewProjection(input, selectExprs, p.Reg)
	if err != nil {
		return nil, err
	}
	var plan logical.Plan = proj

	// 7. DISTINCT
	if core.Distinct {
		plan = &logical.Distinct{Input: plan}
	}

	// 8-10. ORDER BY / LIMIT / OFFSET
	return p.applyOrderLimit(plan, orderBy, limit, offset, selectExprs)
}

func anyAggregates(exprs []logical.Expr) bool {
	for _, e := range exprs {
		if logical.HasAggregates(e) {
			return true
		}
	}
	return false
}

func anyWindows(exprs []logical.Expr) bool {
	for _, e := range exprs {
		if logical.HasWindow(e) {
			return true
		}
	}
	return false
}

// planFrom lowers the FROM clause (comma list = cross joins).
func (p *Planner) planFrom(from []sql.TableRef) (logical.Plan, error) {
	if len(from) == 0 {
		return &logical.EmptyRelation{ProduceOneRow: true, SchemaVal: logical.NewSchema()}, nil
	}
	plan, err := p.planTableRef(from[0])
	if err != nil {
		return nil, err
	}
	for _, tr := range from[1:] {
		right, err := p.planTableRef(tr)
		if err != nil {
			return nil, err
		}
		plan = logical.NewJoin(plan, right, logical.CrossJoin, nil, nil)
	}
	return plan, nil
}

func (p *Planner) planTableRef(tr sql.TableRef) (logical.Plan, error) {
	switch x := tr.(type) {
	case *sql.TableName:
		key := strings.ToLower(x.Name)
		if cte, ok := p.ctes[key]; ok {
			if x.Alias != "" {
				return logical.NewSubqueryAlias(cte, x.Alias), nil
			}
			return cte, nil
		}
		src, err := p.Resolve(x.Name)
		if err != nil {
			return nil, err
		}
		name := x.Name
		if x.Alias != "" {
			name = x.Alias
		}
		return logical.NewTableScan(name, src), nil
	case *sql.SubqueryRef:
		inner, err := p.PlanQuery(x.Query)
		if err != nil {
			return nil, err
		}
		if len(x.ColumnAliases) > 0 {
			if len(x.ColumnAliases) != inner.Schema().Len() {
				return nil, fmt.Errorf("planner: %d column aliases for %d columns", len(x.ColumnAliases), inner.Schema().Len())
			}
			exprs := make([]logical.Expr, inner.Schema().Len())
			for i, f := range inner.Schema().Fields() {
				exprs[i] = &logical.Alias{E: &logical.Column{Relation: f.Qualifier, Name: f.Name}, Name: x.ColumnAliases[i]}
			}
			proj, err := logical.NewProjection(inner, exprs, p.Reg)
			if err != nil {
				return nil, err
			}
			inner = proj
		}
		return logical.NewSubqueryAlias(inner, x.Alias), nil
	case *sql.JoinRef:
		return p.planJoinRef(x)
	}
	return nil, fmt.Errorf("planner: unsupported table reference %T", tr)
}

func (p *Planner) planJoinRef(jr *sql.JoinRef) (logical.Plan, error) {
	left, err := p.planTableRef(jr.L)
	if err != nil {
		return nil, err
	}
	right, err := p.planTableRef(jr.R)
	if err != nil {
		return nil, err
	}
	if jr.Type == logical.CrossJoin {
		return logical.NewJoin(left, right, logical.CrossJoin, nil, nil), nil
	}

	var on []logical.EquiPair
	var residual logical.Expr
	switch {
	case jr.Natural:
		for _, lf := range left.Schema().Fields() {
			for _, rf := range right.Schema().Fields() {
				if strings.EqualFold(lf.Name, rf.Name) {
					on = append(on, logical.EquiPair{
						L: &logical.Column{Relation: lf.Qualifier, Name: lf.Name},
						R: &logical.Column{Relation: rf.Qualifier, Name: rf.Name},
					})
				}
			}
		}
		if len(on) == 0 {
			return nil, fmt.Errorf("planner: NATURAL JOIN with no common columns")
		}
	case len(jr.Using) > 0:
		for _, name := range jr.Using {
			li, err := left.Schema().Resolve("", name)
			if err != nil {
				return nil, fmt.Errorf("planner: USING column %q: %w", name, err)
			}
			ri, err := right.Schema().Resolve("", name)
			if err != nil {
				return nil, fmt.Errorf("planner: USING column %q: %w", name, err)
			}
			lf, rf := left.Schema().Field(li), right.Schema().Field(ri)
			on = append(on, logical.EquiPair{
				L: &logical.Column{Relation: lf.Qualifier, Name: lf.Name},
				R: &logical.Column{Relation: rf.Qualifier, Name: rf.Name},
			})
		}
	default:
		cond, err := p.resolveExprFuncs(jr.On)
		if err != nil {
			return nil, err
		}
		on, residual = splitJoinCondition(cond, left.Schema(), right.Schema())
	}
	return logical.NewJoin(left, right, jr.Type, on, residual), nil
}

// refsOnly reports whether every column in e resolves against schema and
// none resolves only against other.
func refsOnly(e logical.Expr, schema, other *logical.Schema) bool {
	ok := true
	for _, c := range logical.CollectColumns(e) {
		if _, err := schema.IndexOfColumn(c); err != nil {
			ok = false
			break
		}
		// Ambiguity guard: if the same reference also resolves on the other
		// side and is unqualified, refuse the split.
		if c.Relation == "" {
			if _, err := other.IndexOfColumn(c); err == nil {
				ok = false
				break
			}
		}
	}
	return ok
}

// splitJoinCondition separates equi-join pairs from residual predicates.
func splitJoinCondition(cond logical.Expr, left, right *logical.Schema) ([]logical.EquiPair, logical.Expr) {
	var on []logical.EquiPair
	var residual []logical.Expr
	for _, conj := range logical.SplitConjunction(cond) {
		if be, ok := conj.(*logical.BinaryExpr); ok && be.Op == logical.OpEq {
			switch {
			case refsOnly(be.L, left, right) && refsOnly(be.R, right, left):
				on = append(on, logical.EquiPair{L: be.L, R: be.R})
				continue
			case refsOnly(be.L, right, left) && refsOnly(be.R, left, right):
				on = append(on, logical.EquiPair{L: be.R, R: be.L})
				continue
			}
		}
		residual = append(residual, conj)
	}
	return on, logical.And(residual...)
}

// expandProjection expands wildcards and resolves functions.
func (p *Planner) expandProjection(items []sql.SelectItem, schema *logical.Schema) ([]logical.Expr, error) {
	var out []logical.Expr
	for _, item := range items {
		if item.Star {
			for _, f := range schema.Fields() {
				if item.StarQualifier != "" && !strings.EqualFold(f.Qualifier, item.StarQualifier) {
					continue
				}
				out = append(out, &logical.Column{Relation: f.Qualifier, Name: f.Name})
			}
			continue
		}
		e, err := p.resolveExprFuncs(item.E)
		if err != nil {
			return nil, err
		}
		if item.Alias != "" {
			e = &logical.Alias{E: e, Name: item.Alias}
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("planner: empty projection")
	}
	return out, nil
}

// resolveExprFuncs resolves UnresolvedFunc nodes into scalar/agg/window
// calls and plans subquery expressions.
func (p *Planner) resolveExprFuncs(e logical.Expr) (logical.Expr, error) {
	return logical.TransformExpr(e, func(x logical.Expr) (logical.Expr, error) {
		switch node := x.(type) {
		case *logical.UnresolvedFunc:
			return p.resolveFunc(node)
		case *logical.ScalarSubquery:
			if node.Plan == nil {
				plan, err := p.planRaw(node.Raw)
				if err != nil {
					return nil, err
				}
				return &logical.ScalarSubquery{Plan: plan}, nil
			}
		case *logical.Exists:
			if node.Plan == nil {
				plan, err := p.planRaw(node.Raw)
				if err != nil {
					return nil, err
				}
				return &logical.Exists{Plan: plan, Negated: node.Negated}, nil
			}
		case *logical.InSubquery:
			if node.Plan == nil {
				plan, err := p.planRaw(node.Raw)
				if err != nil {
					return nil, err
				}
				return &logical.InSubquery{E: node.E, Plan: plan, Negated: node.Negated}, nil
			}
		}
		return x, nil
	})
}

func (p *Planner) planRaw(raw any) (logical.Plan, error) {
	q, ok := raw.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("planner: subquery was not parsed (%T)", raw)
	}
	return p.PlanQuery(q)
}

func (p *Planner) resolveFunc(f *logical.UnresolvedFunc) (logical.Expr, error) {
	name := strings.ToLower(f.Name)
	if f.Over != nil {
		if f.Distinct {
			return nil, fmt.Errorf("planner: DISTINCT is not supported in window functions")
		}
		if f.Filter != nil {
			return nil, fmt.Errorf("planner: FILTER is not supported in window functions")
		}
		frame := logical.DefaultFrame()
		switch {
		case f.Over.Frame != nil:
			frame = *f.Over.Frame
		case len(f.Over.OrderBy) == 0:
			// No ORDER BY: the frame is the whole partition.
			frame = logical.WindowFrame{
				Start: logical.FrameBound{Kind: logical.UnboundedPreceding},
				End:   logical.FrameBound{Kind: logical.UnboundedFollowing},
			}
		}
		args := f.Args
		if f.Star {
			args = nil
		}
		if !p.Reg.IsWindow(name) && !p.Reg.IsAggregate(name) {
			return nil, fmt.Errorf("planner: unknown window function %q", name)
		}
		return &logical.WindowFunc{Name: name, Args: args,
			PartitionBy: f.Over.PartitionBy, OrderBy: f.Over.OrderBy, Frame: frame}, nil
	}
	if p.Reg.IsAggregate(name) {
		args := f.Args
		if f.Star {
			args = nil
		}
		return &logical.AggFunc{Name: name, Args: args, Distinct: f.Distinct, Filter: f.Filter}, nil
	}
	if f.Distinct || f.Filter != nil || f.Star {
		return nil, fmt.Errorf("planner: %q is not an aggregate function", name)
	}
	if _, ok := p.Reg.Scalar(name); !ok {
		return nil, fmt.Errorf("planner: unknown function %q", name)
	}
	return &logical.ScalarFunc{Name: name, Args: f.Args}, nil
}

// resolveGroupKeys resolves GROUP BY entries, handling ordinals and
// projection aliases.
func (p *Planner) resolveGroupKeys(keys []logical.Expr, selectExprs []logical.Expr) ([]logical.Expr, error) {
	out := make([]logical.Expr, 0, len(keys))
	for _, k := range keys {
		resolved, err := p.resolveOrdinalOrAlias(k, selectExprs)
		if err != nil {
			return nil, err
		}
		resolved, err = p.resolveExprFuncs(resolved)
		if err != nil {
			return nil, err
		}
		out = append(out, resolved)
	}
	return out, nil
}

// resolveOrdinalOrAlias maps integer literals to projection entries and
// bare names matching projection aliases to the aliased expression.
func (p *Planner) resolveOrdinalOrAlias(e logical.Expr, selectExprs []logical.Expr) (logical.Expr, error) {
	if lit, ok := e.(*logical.Literal); ok && !lit.Value.Null && lit.Value.Type.ID == arrow.INT64 {
		i := lit.Value.AsInt64()
		if i < 1 || int(i) > len(selectExprs) {
			return nil, fmt.Errorf("planner: ordinal %d out of range (1..%d)", i, len(selectExprs))
		}
		return stripAlias(selectExprs[i-1]), nil
	}
	if col, ok := e.(*logical.Column); ok && col.Relation == "" {
		for _, se := range selectExprs {
			if alias, ok := se.(*logical.Alias); ok && strings.EqualFold(alias.Name, col.Name) {
				return stripAlias(alias), nil
			}
		}
	}
	return e, nil
}

func stripAlias(e logical.Expr) logical.Expr {
	if a, ok := e.(*logical.Alias); ok {
		return a.E
	}
	return e
}
