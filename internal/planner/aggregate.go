package planner

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/logical"
	"gofusion/internal/sql"
)

// planAggregate builds the Aggregate node and rewrites post-aggregation
// expressions (projection, HAVING) to reference its output columns.
func (p *Planner) planAggregate(input logical.Plan, groupExprs []logical.Expr,
	selectExprs []logical.Expr, having logical.Expr) (logical.Plan, []logical.Expr, logical.Expr, error) {

	// Collect distinct aggregate calls from projection and HAVING.
	var aggExprs []logical.Expr
	seen := map[string]bool{}
	collect := func(e logical.Expr) {
		logical.VisitExpr(e, func(x logical.Expr) bool {
			if af, ok := x.(*logical.AggFunc); ok {
				if !seen[af.String()] {
					seen[af.String()] = true
					aggExprs = append(aggExprs, af)
				}
				return false
			}
			if _, ok := x.(*logical.WindowFunc); ok {
				return false // window args are evaluated later
			}
			return true
		})
	}
	for _, e := range selectExprs {
		collect(e)
	}
	if having != nil {
		collect(having)
	}

	agg, err := logical.NewAggregate(input, groupExprs, aggExprs, p.Reg)
	if err != nil {
		return nil, nil, nil, err
	}

	// Build the rewrite map: expression text -> aggregate output column.
	outCol := map[string]*logical.Column{}
	for i, g := range groupExprs {
		f := agg.Schema().Field(i)
		outCol[stripAlias(g).String()] = &logical.Column{Relation: f.Qualifier, Name: f.Name}
	}
	for i, a := range aggExprs {
		f := agg.Schema().Field(len(groupExprs) + i)
		outCol[a.String()] = &logical.Column{Relation: f.Qualifier, Name: f.Name}
	}

	// Rewrite top-down: a whole-expression match (group key or aggregate)
	// must be replaced before its children are touched, otherwise
	// replacing an inner group-key reference would change the outer
	// expression's rendered form and break the match.
	var rewrite func(e logical.Expr) logical.Expr
	rewrite = func(e logical.Expr) logical.Expr {
		if a, ok := e.(*logical.Alias); ok {
			return &logical.Alias{E: rewrite(a.E), Name: a.Name}
		}
		if c, ok := outCol[e.String()]; ok {
			return c
		}
		children := logical.ExprChildren(e)
		if len(children) == 0 {
			return e
		}
		newChildren := make([]logical.Expr, len(children))
		changed := false
		for i, ch := range children {
			newChildren[i] = rewrite(ch)
			if newChildren[i] != ch {
				changed = true
			}
		}
		if !changed {
			return e
		}
		return logical.ExprWithChildren(e, newChildren)
	}

	newSelect := make([]logical.Expr, len(selectExprs))
	for i, e := range selectExprs {
		newSelect[i] = rewrite(e)
	}
	var newHaving logical.Expr
	if having != nil {
		newHaving = rewrite(having)
	}
	return agg, newSelect, newHaving, nil
}

// planWindows extracts window expressions into a Window node and rewrites
// the projection to reference its output columns.
func (p *Planner) planWindows(input logical.Plan, selectExprs []logical.Expr) (logical.Plan, []logical.Expr, error) {
	var winExprs []logical.Expr
	seen := map[string]bool{}
	for _, e := range selectExprs {
		logical.VisitExpr(e, func(x logical.Expr) bool {
			if wf, ok := x.(*logical.WindowFunc); ok {
				if !seen[wf.String()] {
					seen[wf.String()] = true
					winExprs = append(winExprs, wf)
				}
				return false
			}
			return true
		})
	}
	win, err := logical.NewWindow(input, winExprs, p.Reg)
	if err != nil {
		return nil, nil, err
	}
	base := input.Schema().Len()
	outCol := map[string]*logical.Column{}
	for i, w := range winExprs {
		f := win.Schema().Field(base + i)
		outCol[w.String()] = &logical.Column{Relation: f.Qualifier, Name: f.Name}
	}
	newSelect := make([]logical.Expr, len(selectExprs))
	for i, e := range selectExprs {
		ne, err := logical.TransformExpr(e, func(x logical.Expr) (logical.Expr, error) {
			if _, ok := x.(*logical.WindowFunc); ok {
				if c, ok2 := outCol[x.String()]; ok2 {
					return c, nil
				}
			}
			return x, nil
		})
		if err != nil {
			return nil, nil, err
		}
		newSelect[i] = ne
	}
	return win, newSelect, nil
}

// applyOrderLimit appends Sort and Limit nodes, resolving ORDER BY
// ordinals, aliases, and hidden (non-projected) sort expressions.
func (p *Planner) applyOrderLimit(plan logical.Plan, orderBy []sql.OrderItem,
	limit, offset logical.Expr, selectExprs []logical.Expr) (logical.Plan, error) {

	if len(orderBy) > 0 {
		outSchema := plan.Schema()
		var keys []logical.SortExpr
		var hidden []logical.Expr

		for _, item := range orderBy {
			nullsFirst := item.NullsFirst
			if !item.NullsSet {
				nullsFirst = !item.Asc // SQL default: NULLS LAST for ASC, FIRST for DESC
			}
			var key logical.Expr
			switch {
			case isIntLiteral(item.E):
				i := item.E.(*logical.Literal).Value.AsInt64()
				if i < 1 || int(i) > outSchema.Len() {
					return nil, fmt.Errorf("planner: ORDER BY ordinal %d out of range", i)
				}
				f := outSchema.Field(int(i) - 1)
				key = &logical.Column{Relation: f.Qualifier, Name: f.Name}
			default:
				e, err := p.resolveExprFuncs(item.E)
				if err != nil {
					return nil, err
				}
				// A bare name matching an output column (alias or passthrough).
				if col, ok := e.(*logical.Column); ok {
					if _, err := outSchema.IndexOfColumn(col); err == nil {
						key = col
					}
				}
				if key == nil && selectExprs != nil {
					// The full expression matches a projected expression.
					for i, se := range selectExprs {
						if stripAlias(se).String() == e.String() || se.String() == e.String() {
							f := outSchema.Field(i)
							key = &logical.Column{Relation: f.Qualifier, Name: f.Name}
							break
						}
					}
				}
				if key == nil {
					// Hidden sort expression evaluated below the projection.
					hidden = append(hidden, e)
					key = e
				}
			}
			keys = append(keys, logical.SortExpr{E: key, Asc: item.Asc, NullsFirst: nullsFirst})
		}

		if len(hidden) > 0 {
			proj, ok := plan.(*logical.Projection)
			if !ok {
				return nil, fmt.Errorf("planner: ORDER BY expression not in select list requires a plain projection (no DISTINCT)")
			}
			extended := append(append([]logical.Expr{}, proj.Exprs...), hidden...)
			ext, err := logical.NewProjection(proj.Input, extended, p.Reg)
			if err != nil {
				return nil, err
			}
			// Re-point hidden keys at the extended projection's columns.
			for ki := range keys {
				for hi, h := range hidden {
					if keys[ki].E == h {
						f := ext.Schema().Field(len(proj.Exprs) + hi)
						keys[ki].E = &logical.Column{Relation: f.Qualifier, Name: f.Name}
					}
				}
			}
			var sorted logical.Plan = &logical.Sort{Input: ext, Keys: keys, Fetch: -1}
			// Strip hidden columns.
			finalExprs := make([]logical.Expr, len(proj.Exprs))
			for i := range proj.Exprs {
				f := ext.Schema().Field(i)
				finalExprs[i] = &logical.Column{Relation: f.Qualifier, Name: f.Name}
			}
			back, err := logical.NewProjection(sorted, finalExprs, p.Reg)
			if err != nil {
				return nil, err
			}
			plan = back
		} else {
			plan = &logical.Sort{Input: plan, Keys: keys, Fetch: -1}
		}
	}

	if limit != nil || offset != nil {
		fetch := int64(-1)
		skip := int64(0)
		if limit != nil {
			v, err := constInt(limit)
			if err != nil {
				return nil, fmt.Errorf("planner: LIMIT must be a constant integer: %w", err)
			}
			fetch = v
		}
		if offset != nil {
			v, err := constInt(offset)
			if err != nil {
				return nil, fmt.Errorf("planner: OFFSET must be a constant integer: %w", err)
			}
			skip = v
		}
		plan = &logical.Limit{Input: plan, Skip: skip, Fetch: fetch}
	}
	return plan, nil
}

func isIntLiteral(e logical.Expr) bool {
	lit, ok := e.(*logical.Literal)
	return ok && !lit.Value.Null && lit.Value.Type.ID == arrow.INT64
}

func constInt(e logical.Expr) (int64, error) {
	if lit, ok := e.(*logical.Literal); ok && !lit.Value.Null && lit.Value.Type.ID == arrow.INT64 {
		return lit.Value.AsInt64(), nil
	}
	return 0, fmt.Errorf("not an integer literal: %s", e)
}

// planGroupingSets expands GROUPING SETS / ROLLUP / CUBE into a union of
// per-set aggregations, padding absent keys with typed NULLs.
func (p *Planner) planGroupingSets(core *sql.SelectCore, orderBy []sql.OrderItem,
	limit, offset logical.Expr) (logical.Plan, error) {

	var branches []logical.Plan
	var firstExprs []logical.Expr
	for _, set := range core.GroupingSets {
		input, err := p.planFrom(core.From)
		if err != nil {
			return nil, err
		}
		selectExprs, err := p.expandProjection(core.Projection, input.Schema())
		if err != nil {
			return nil, err
		}
		if core.Where != nil {
			pred, err := p.resolveExprFuncs(core.Where)
			if err != nil {
				return nil, err
			}
			input = &logical.Filter{Input: input, Predicate: pred}
		}
		groups, err := p.resolveGroupKeys(set, selectExprs)
		if err != nil {
			return nil, err
		}
		// All keys (for padding): union across sets in declaration order.
		allKeys, err := p.allGroupingKeys(core, selectExprs)
		if err != nil {
			return nil, err
		}
		inSet := map[string]bool{}
		for _, g := range groups {
			inSet[g.String()] = true
		}
		having := core.Having
		if having != nil {
			having, err = p.resolveExprFuncs(having)
			if err != nil {
				return nil, err
			}
		}
		aggPlan, newSelect, newHaving, err := p.planAggregate(input, groups, selectExprs, having)
		if err != nil {
			return nil, err
		}
		if newHaving != nil {
			aggPlan = &logical.Filter{Input: aggPlan, Predicate: newHaving}
		}
		// Replace absent keys with typed NULLs in the projection.
		padded := make([]logical.Expr, len(newSelect))
		for i, e := range newSelect {
			pe, err := p.padAbsentKeys(e, allKeys, inSet, input.Schema())
			if err != nil {
				return nil, err
			}
			padded[i] = pe
		}
		proj, err := logical.NewProjection(aggPlan, padded, p.Reg)
		if err != nil {
			return nil, err
		}
		branches = append(branches, proj)
		if firstExprs == nil {
			firstExprs = padded
		}
	}
	var plan logical.Plan = &logical.Union{Inputs: branches, All: true}
	if len(branches) == 1 {
		plan = branches[0]
	}
	if core.Distinct {
		plan = &logical.Distinct{Input: plan}
	}
	return p.applyOrderLimit(plan, orderBy, limit, offset, firstExprs)
}

func (p *Planner) allGroupingKeys(core *sql.SelectCore, selectExprs []logical.Expr) (map[string]*arrow.DataType, error) {
	out := map[string]*arrow.DataType{}
	for _, set := range core.GroupingSets {
		keys, err := p.resolveGroupKeys(set, selectExprs)
		if err != nil {
			return nil, err
		}
		for _, k := range keys {
			out[k.String()] = nil
		}
	}
	return out, nil
}

// padAbsentKeys replaces references to grouping keys outside the current
// set with typed NULL literals.
func (p *Planner) padAbsentKeys(e logical.Expr, allKeys map[string]*arrow.DataType,
	inSet map[string]bool, inputSchema *logical.Schema) (logical.Expr, error) {
	return logical.TransformExpr(e, func(x logical.Expr) (logical.Expr, error) {
		key := x.String()
		if a, ok := x.(*logical.Alias); ok {
			key = a.E.String()
		}
		if _, isKey := allKeys[key]; isKey && !inSet[key] {
			t, err := logical.TypeOf(stripAlias(x), inputSchema, p.Reg)
			if err != nil {
				t = arrow.Null
			}
			var padded logical.Expr = &logical.Cast{E: logical.Lit(nil), To: t}
			if a, ok := x.(*logical.Alias); ok {
				padded = &logical.Alias{E: padded, Name: a.Name}
			} else {
				padded = &logical.Alias{E: padded, Name: logical.OutputName(x)}
			}
			return padded, nil
		}
		return x, nil
	})
}

var _ = strings.ToLower
