package planner

import (
	"strings"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/sql"
)

var reg = functions.NewRegistry()

type source struct{ schema *arrow.Schema }

func (s *source) Schema() *arrow.Schema { return s.schema }

func resolver() TableResolver {
	tables := map[string]*arrow.Schema{
		"emp": arrow.NewSchema(
			arrow.NewField("id", arrow.Int64, false),
			arrow.NewField("name", arrow.String, false),
			arrow.NewField("dept", arrow.Int64, true),
			arrow.NewField("salary", arrow.Float64, true),
		),
		"dept": arrow.NewSchema(
			arrow.NewField("did", arrow.Int64, false),
			arrow.NewField("dname", arrow.String, false),
		),
	}
	return func(name string) (logical.TableSource, error) {
		s, ok := tables[strings.ToLower(name)]
		if !ok {
			return nil, &logical.ErrNotFound{Name: name}
		}
		return &source{schema: s}, nil
	}
}

func plan(t *testing.T, query string) logical.Plan {
	t.Helper()
	stmt, err := sql.ParseQuery(query)
	if err != nil {
		t.Fatalf("parsing: %v", err)
	}
	p, err := New(resolver(), reg).PlanQuery(stmt)
	if err != nil {
		t.Fatalf("planning %q: %v", query, err)
	}
	return p
}

func planErr(t *testing.T, query string) error {
	t.Helper()
	stmt, err := sql.ParseQuery(query)
	if err != nil {
		return err
	}
	_, err = New(resolver(), reg).PlanQuery(stmt)
	if err == nil {
		t.Fatalf("expected planning error for %q", query)
	}
	return err
}

func TestWildcardExpansion(t *testing.T) {
	p := plan(t, "SELECT * FROM emp")
	if p.Schema().Len() != 4 || p.Schema().Field(0).Name != "id" {
		t.Fatalf("schema = %s", p.Schema())
	}
	p2 := plan(t, "SELECT e.*, d.dname FROM emp e, dept d")
	if p2.Schema().Len() != 5 {
		t.Fatalf("qualified star schema = %s", p2.Schema())
	}
}

func TestAggregateExtraction(t *testing.T) {
	p := plan(t, "SELECT dept, count(*) + 1 AS n1 FROM emp GROUP BY dept")
	// The aggregate node holds count(*); the projection computes +1 over
	// its output column.
	var agg *logical.Aggregate
	logical.VisitPlan(p, func(n logical.Plan) bool {
		if a, ok := n.(*logical.Aggregate); ok {
			agg = a
		}
		return true
	})
	if agg == nil || len(agg.AggExprs) != 1 || len(agg.GroupExprs) != 1 {
		t.Fatalf("aggregate wrong:\n%s", logical.Explain(p))
	}
	proj, ok := p.(*logical.Projection)
	if !ok {
		t.Fatalf("top must be projection:\n%s", logical.Explain(p))
	}
	if logical.HasAggregates(proj.Exprs[1]) {
		t.Fatal("projection must reference the agg output, not recompute it")
	}
	if p.Schema().Field(1).Name != "n1" {
		t.Fatal("alias lost")
	}
}

func TestGroupByOrdinalAndAlias(t *testing.T) {
	p1 := plan(t, "SELECT dept AS d, count(*) FROM emp GROUP BY 1")
	p2 := plan(t, "SELECT dept AS d, count(*) FROM emp GROUP BY d")
	p3 := plan(t, "SELECT dept AS d, count(*) FROM emp GROUP BY dept")
	for i, p := range []logical.Plan{p1, p2, p3} {
		if p.Schema().Len() != 2 {
			t.Fatalf("plan %d schema = %s", i, p.Schema())
		}
	}
	if err := planErr(t, "SELECT dept FROM emp GROUP BY 5"); !strings.Contains(err.Error(), "ordinal") {
		t.Fatalf("ordinal error = %v", err)
	}
}

func TestHavingRequiresAggregate(t *testing.T) {
	planErr(t, "SELECT id FROM emp HAVING id > 1")
	planErr(t, "SELECT id FROM emp WHERE count(*) > 1")
}

func TestJoinConditionSplitting(t *testing.T) {
	p := plan(t, `SELECT e.name FROM emp e JOIN dept d ON e.dept = d.did AND e.salary > 100`)
	var join *logical.Join
	logical.VisitPlan(p, func(n logical.Plan) bool {
		if j, ok := n.(*logical.Join); ok {
			join = j
		}
		return true
	})
	if join == nil || len(join.On) != 1 {
		t.Fatalf("equi pair not split:\n%s", logical.Explain(p))
	}
	if join.Filter == nil {
		t.Fatal("residual condition lost")
	}
}

func TestUsingAndNaturalJoins(t *testing.T) {
	// USING resolves on both sides.
	p := plan(t, `SELECT e.name FROM emp e JOIN (SELECT did AS dept, dname FROM dept) d USING (dept)`)
	var join *logical.Join
	logical.VisitPlan(p, func(n logical.Plan) bool {
		if j, ok := n.(*logical.Join); ok && len(j.On) > 0 {
			join = j
		}
		return true
	})
	if join == nil {
		t.Fatalf("USING join missing:\n%s", logical.Explain(p))
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	p := plan(t, "SELECT name FROM emp ORDER BY salary DESC")
	// Output schema must have only `name`.
	if p.Schema().Len() != 1 || p.Schema().Field(0).Name != "name" {
		t.Fatalf("hidden sort column leaked: %s", p.Schema())
	}
	text := logical.Explain(p)
	if !strings.Contains(text, "Sort") {
		t.Fatalf("sort missing:\n%s", text)
	}
}

func TestOrderByOrdinalAndAlias(t *testing.T) {
	p := plan(t, "SELECT name, salary * 2 AS ds FROM emp ORDER BY 2 DESC, name")
	s, ok := p.(*logical.Sort)
	if !ok {
		t.Fatalf("top must be sort:\n%s", logical.Explain(p))
	}
	if len(s.Keys) != 2 || s.Keys[0].Asc {
		t.Fatal("order keys wrong")
	}
}

func TestSetOperationPlans(t *testing.T) {
	p := plan(t, "SELECT id FROM emp UNION SELECT did FROM dept")
	if _, ok := p.(*logical.Distinct); !ok {
		t.Fatalf("UNION must deduplicate:\n%s", logical.Explain(p))
	}
	p2 := plan(t, "SELECT id FROM emp INTERSECT SELECT did FROM dept")
	text := logical.Explain(p2)
	if !strings.Contains(text, "LeftSemi") {
		t.Fatalf("INTERSECT should plan as semi join:\n%s", text)
	}
	p3 := plan(t, "SELECT id FROM emp EXCEPT SELECT did FROM dept")
	if !strings.Contains(logical.Explain(p3), "LeftAnti") {
		t.Fatal("EXCEPT should plan as anti join")
	}
	// Type coercion across set inputs.
	p4 := plan(t, "SELECT salary FROM emp UNION ALL SELECT did FROM dept")
	if p4.Schema().Field(0).Type.ID != arrow.FLOAT64 {
		t.Fatalf("union coercion wrong: %s", p4.Schema())
	}
	planErr(t, "SELECT id, name FROM emp UNION SELECT did FROM dept")
}

func TestSubqueryPlansFilled(t *testing.T) {
	p := plan(t, `SELECT name FROM emp WHERE dept IN (SELECT did FROM dept) AND EXISTS (SELECT 1 FROM dept WHERE did = emp.dept)`)
	found := 0
	logical.VisitPlan(p, func(n logical.Plan) bool {
		for _, e := range exprsOfPlan(n) {
			logical.VisitExpr(e, func(x logical.Expr) bool {
				switch s := x.(type) {
				case *logical.InSubquery:
					if s.Plan == nil {
						t.Fatal("IN subquery not planned")
					}
					found++
				case *logical.Exists:
					if s.Plan == nil {
						t.Fatal("EXISTS subquery not planned")
					}
					found++
				}
				return true
			})
		}
		return true
	})
	if found != 2 {
		t.Fatalf("found %d subqueries", found)
	}
}

func exprsOfPlan(p logical.Plan) []logical.Expr {
	switch n := p.(type) {
	case *logical.Filter:
		return []logical.Expr{n.Predicate}
	case *logical.Projection:
		return n.Exprs
	}
	return nil
}

func TestWindowExtraction(t *testing.T) {
	p := plan(t, `SELECT name, row_number() OVER (ORDER BY salary) AS rn FROM emp`)
	var w *logical.Window
	logical.VisitPlan(p, func(n logical.Plan) bool {
		if win, ok := n.(*logical.Window); ok {
			w = win
		}
		return true
	})
	if w == nil || len(w.WindowExprs) != 1 {
		t.Fatalf("window missing:\n%s", logical.Explain(p))
	}
	// Window + aggregate in one query: aggregate below window.
	p2 := plan(t, `SELECT dept, sum(salary) AS total, rank() OVER (ORDER BY sum(salary) DESC) AS r
		FROM emp GROUP BY dept`)
	text := logical.Explain(p2)
	aggIdx := strings.Index(text, "Aggregate")
	winIdx := strings.Index(text, "Window")
	if aggIdx < 0 || winIdx < 0 || winIdx > aggIdx {
		t.Fatalf("window must sit above aggregate:\n%s", text)
	}
}

func TestCTEScoping(t *testing.T) {
	p := plan(t, `WITH top AS (SELECT id FROM emp), names AS (SELECT t.id FROM top t)
		SELECT * FROM names`)
	if p.Schema().Len() != 1 {
		t.Fatalf("cte chain schema = %s", p.Schema())
	}
	// CTE does not leak out of its statement.
	planErr(t, "SELECT * FROM top")
}

func TestMissingTableAndColumnErrors(t *testing.T) {
	planErr(t, "SELECT * FROM nope")
	planErr(t, "SELECT wrong_col FROM emp")
	planErr(t, "SELECT unknown_fn(id) FROM emp")
	planErr(t, "SELECT count(DISTINCT id) OVER () FROM emp") // distinct window unsupported? planner accepts; exec rejects
}

func TestDistinctAndLimit(t *testing.T) {
	p := plan(t, "SELECT DISTINCT dept FROM emp LIMIT 3 OFFSET 1")
	lim, ok := p.(*logical.Limit)
	if !ok || lim.Fetch != 3 || lim.Skip != 1 {
		t.Fatalf("limit wrong:\n%s", logical.Explain(p))
	}
	if _, ok := lim.Input.(*logical.Distinct); !ok {
		t.Fatal("distinct missing")
	}
	planErr(t, "SELECT id FROM emp LIMIT id")
}
