package jsonio

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"gofusion/internal/arrow"
)

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sample = `{"id": 1, "name": "alice", "score": 3.5, "tags": ["a", "b"], "addr": {"city": "Boston", "zip": 2134}}
{"id": 2, "name": null, "score": 4, "tags": [], "addr": {"city": "NYC", "zip": 10001}}
{"id": 3, "name": "carol", "score": null, "tags": ["x"], "addr": null}
`

func TestInferNestedSchema(t *testing.T) {
	path := writeFile(t, sample)
	schema, err := InferSchema(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if schema.Field(schema.FieldIndex("id")).Type.ID != arrow.INT64 {
		t.Fatal("id should be Int64")
	}
	// score mixes 3.5 and 4 -> Float64
	if schema.Field(schema.FieldIndex("score")).Type.ID != arrow.FLOAT64 {
		t.Fatal("score should widen to Float64")
	}
	tags := schema.Field(schema.FieldIndex("tags")).Type
	if tags.ID != arrow.LIST || tags.Elem.ID != arrow.STRING {
		t.Fatalf("tags = %s", tags)
	}
	addr := schema.Field(schema.FieldIndex("addr")).Type
	if addr.ID != arrow.STRUCT || len(addr.Fields) != 2 {
		t.Fatalf("addr = %s", addr)
	}
}

func TestReadNested(t *testing.T) {
	path := writeFile(t, sample)
	schema, err := InferSchema(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(path, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 3 {
		t.Fatalf("rows = %d", b.NumRows())
	}
	if !b.ColumnByName("name").IsNull(1) {
		t.Fatal("null name lost")
	}
	tags := b.ColumnByName("tags").(*arrow.ListArray)
	if tags.ValueArray(0).Len() != 2 || tags.ValueArray(1).Len() != 0 {
		t.Fatal("list lengths wrong")
	}
	addr := b.ColumnByName("addr").(*arrow.StructArray)
	if !addr.IsNull(2) {
		t.Fatal("null struct lost")
	}
	cityIdx := -1
	for i, f := range addr.DataType().Fields {
		if f.Name == "city" {
			cityIdx = i
		}
	}
	if addr.Field(cityIdx).(*arrow.StringArray).Value(0) != "Boston" {
		t.Fatal("struct field wrong")
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatal("want EOF")
	}
}

func TestTypeConflictWidensToString(t *testing.T) {
	path := writeFile(t, "{\"x\": 1}\n{\"x\": \"two\"}\n")
	schema, err := InferSchema(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if schema.Field(0).Type.ID != arrow.STRING {
		t.Fatalf("conflict should widen to string, got %s", schema.Field(0).Type)
	}
	r, _ := NewReader(path, schema, Options{})
	defer r.Close()
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	sa := b.Column(0).(*arrow.StringArray)
	if sa.Value(0) != "1" || sa.Value(1) != "two" {
		t.Fatal("widened values wrong")
	}
}

func TestMissingFieldsAreNull(t *testing.T) {
	path := writeFile(t, "{\"a\": 1, \"b\": 2}\n{\"a\": 3}\n")
	schema, _ := InferSchema(path, Options{})
	r, _ := NewReader(path, schema, Options{})
	defer r.Close()
	b, _ := r.Next()
	if !b.ColumnByName("b").IsNull(1) {
		t.Fatal("missing field must be null")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	schema := arrow.NewSchema(
		arrow.NewField("n", arrow.Int64, true),
		arrow.NewField("s", arrow.String, true),
		arrow.NewField("l", arrow.ListOf(arrow.Int64), true),
	)
	nb := arrow.NewNumericBuilder[int64](arrow.Int64)
	nb.Append(7)
	nb.AppendNull()
	sb := arrow.NewStringBuilder(arrow.String)
	sb.Append("x")
	sb.Append("y")
	lb := arrow.NewListBuilder(arrow.Int64)
	lb.Child().(*arrow.NumericBuilder[int64]).Append(1)
	lb.CloseList()
	lb.AppendNull()
	batch := arrow.NewRecordBatch(schema, []arrow.Array{nb.Finish(), sb.Finish(), lb.Finish()})

	path := filepath.Join(t.TempDir(), "rt.json")
	if err := WriteFile(path, []*arrow.RecordBatch{batch}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(path, schema, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 2 || !got.Column(0).IsNull(1) || got.Column(1).(*arrow.StringArray).Value(0) != "x" {
		t.Fatal("round trip wrong")
	}
	l := got.Column(2).(*arrow.ListArray)
	if l.ValueArray(0).(*arrow.Int64Array).Value(0) != 1 || !l.IsNull(1) {
		t.Fatal("list round trip wrong")
	}
}

func TestBadJSONSurfaces(t *testing.T) {
	path := writeFile(t, "{\"a\": 1}\nnot-json\n")
	schema, err := InferSchema(path, Options{InferRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewReader(path, schema, Options{})
	defer r.Close()
	if _, err := r.Next(); err == nil {
		t.Fatal("bad json must error")
	}
}
