// Package jsonio implements a newline-delimited JSON data source with
// schema inference, including nested structs and lists (paper Section
// 5.2.2: "the JSON reader fully supports nested types").
package jsonio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"gofusion/internal/arrow"
)

// Options configures JSON reading.
type Options struct {
	// BatchRows is the output batch size (default 8192).
	BatchRows int
	// InferRows is how many records to sample for schema inference
	// (default 1000).
	InferRows int
}

func (o Options) withDefaults() Options {
	if o.BatchRows <= 0 {
		o.BatchRows = 8192
	}
	if o.InferRows <= 0 {
		o.InferRows = 1000
	}
	return o
}

// InferSchema samples NDJSON records and infers a schema. Object fields
// become struct fields, arrays become lists of the unified element type,
// integral numbers become Int64, other numbers Float64. Conflicting types
// widen to Utf8.
func InferSchema(path string, opts Options) (*arrow.Schema, error) {
	opts = opts.withDefaults()
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	merged := map[string]*arrow.DataType{}
	order := []string{}
	count := 0
	for sc.Scan() && count < opts.InferRows {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("jsonio: record %d: %w", count, err)
		}
		for k, v := range rec {
			t := inferValueType(v)
			if old, ok := merged[k]; ok {
				merged[k] = unifyTypes(old, t)
			} else {
				merged[k] = t
				order = append(order, k)
			}
		}
		count++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	fields := make([]arrow.Field, 0, len(order))
	for _, k := range order {
		t := merged[k]
		if t == nil {
			t = arrow.String
		}
		fields = append(fields, arrow.NewField(k, t, true))
	}
	return arrow.NewSchema(fields...), nil
}

// inferValueType maps a decoded JSON value to a DataType; nil returns nil
// (unknown).
func inferValueType(v any) *arrow.DataType {
	switch x := v.(type) {
	case nil:
		return nil
	case bool:
		return arrow.Boolean
	case json.Number:
		if _, err := x.Int64(); err == nil {
			return arrow.Int64
		}
		return arrow.Float64
	case string:
		return arrow.String
	case []any:
		var elem *arrow.DataType
		for _, e := range x {
			elem = unifyTypes(elem, inferValueType(e))
		}
		if elem == nil {
			elem = arrow.String
		}
		return arrow.ListOf(elem)
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fields := make([]arrow.Field, 0, len(keys))
		for _, k := range keys {
			t := inferValueType(x[k])
			if t == nil {
				t = arrow.String
			}
			fields = append(fields, arrow.NewField(k, t, true))
		}
		return arrow.StructOf(fields...)
	}
	return arrow.String
}

// unifyTypes merges two inferred types, widening as needed.
func unifyTypes(a, b *arrow.DataType) *arrow.DataType {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.Equal(b):
		return a
	}
	num := func(t *arrow.DataType) bool { return t.ID == arrow.INT64 || t.ID == arrow.FLOAT64 }
	if num(a) && num(b) {
		return arrow.Float64
	}
	if a.ID == arrow.LIST && b.ID == arrow.LIST {
		return arrow.ListOf(unifyTypes(a.Elem, b.Elem))
	}
	if a.ID == arrow.STRUCT && b.ID == arrow.STRUCT {
		names := map[string]*arrow.DataType{}
		var order []string
		for _, f := range a.Fields {
			names[f.Name] = f.Type
			order = append(order, f.Name)
		}
		for _, f := range b.Fields {
			if old, ok := names[f.Name]; ok {
				names[f.Name] = unifyTypes(old, f.Type)
			} else {
				names[f.Name] = f.Type
				order = append(order, f.Name)
			}
		}
		sort.Strings(order)
		fields := make([]arrow.Field, 0, len(order))
		for _, n := range order {
			fields = append(fields, arrow.NewField(n, names[n], true))
		}
		return arrow.StructOf(fields...)
	}
	return arrow.String
}

// Reader decodes NDJSON into record batches of a fixed schema.
type Reader struct {
	f      *os.File
	sc     *bufio.Scanner
	schema *arrow.Schema
	opts   Options
	done   bool
}

// NewReader opens an NDJSON file for decoding with the given schema.
func NewReader(path string, schema *arrow.Schema, opts Options) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	return &Reader{f: f, sc: sc, schema: schema, opts: opts.withDefaults()}, nil
}

// Schema returns the reader schema.
func (rd *Reader) Schema() *arrow.Schema { return rd.schema }

// Close releases the underlying file.
func (rd *Reader) Close() error { return rd.f.Close() }

// Next decodes the next batch, returning io.EOF at end of file.
func (rd *Reader) Next() (*arrow.RecordBatch, error) {
	if rd.done {
		return nil, io.EOF
	}
	builders := make([]arrow.Builder, rd.schema.NumFields())
	for i, f := range rd.schema.Fields() {
		builders[i] = arrow.NewBuilder(f.Type)
	}
	rows := 0
	for rows < rd.opts.BatchRows {
		if !rd.sc.Scan() {
			rd.done = true
			if err := rd.sc.Err(); err != nil {
				return nil, err
			}
			break
		}
		line := bytes.TrimSpace(rd.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec map[string]any
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.UseNumber()
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("jsonio: %w", err)
		}
		for i, f := range rd.schema.Fields() {
			if err := appendJSON(builders[i], f.Type, rec[f.Name]); err != nil {
				return nil, fmt.Errorf("jsonio: field %q: %w", f.Name, err)
			}
		}
		rows++
	}
	if rows == 0 {
		return nil, io.EOF
	}
	arrs := make([]arrow.Array, len(builders))
	for i, b := range builders {
		arrs[i] = b.Finish()
	}
	return arrow.NewRecordBatchWithRows(rd.schema, arrs, rows), nil
}

// DecodeLine decodes one NDJSON object into per-field builders (one per
// schema field, in order). Empty lines are skipped; the return reports
// whether a row was appended. Exposed for tailing readers that manage
// their own file offsets.
func DecodeLine(line []byte, schema *arrow.Schema, builders []arrow.Builder) (bool, error) {
	line = bytes.TrimSpace(line)
	if len(line) == 0 {
		return false, nil
	}
	var rec map[string]any
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.UseNumber()
	if err := dec.Decode(&rec); err != nil {
		return false, fmt.Errorf("jsonio: %w", err)
	}
	for i, f := range schema.Fields() {
		if err := appendJSON(builders[i], f.Type, rec[f.Name]); err != nil {
			return false, fmt.Errorf("jsonio: field %q: %w", f.Name, err)
		}
	}
	return true, nil
}

func appendJSON(b arrow.Builder, t *arrow.DataType, v any) error {
	if v == nil {
		b.AppendNull()
		return nil
	}
	switch t.ID {
	case arrow.BOOL:
		x, ok := v.(bool)
		if !ok {
			return fmt.Errorf("expected bool, got %T", v)
		}
		b.(*arrow.BoolBuilder).Append(x)
	case arrow.INT64:
		n, ok := v.(json.Number)
		if !ok {
			return fmt.Errorf("expected number, got %T", v)
		}
		x, err := n.Int64()
		if err != nil {
			f, ferr := n.Float64()
			if ferr != nil {
				return err
			}
			x = int64(f)
		}
		b.(*arrow.NumericBuilder[int64]).Append(x)
	case arrow.FLOAT64:
		n, ok := v.(json.Number)
		if !ok {
			return fmt.Errorf("expected number, got %T", v)
		}
		x, err := n.Float64()
		if err != nil {
			return err
		}
		b.(*arrow.NumericBuilder[float64]).Append(x)
	case arrow.STRING:
		switch x := v.(type) {
		case string:
			b.(*arrow.StringBuilder).Append(x)
		case json.Number:
			b.(*arrow.StringBuilder).Append(x.String())
		case bool:
			if x {
				b.(*arrow.StringBuilder).Append("true")
			} else {
				b.(*arrow.StringBuilder).Append("false")
			}
		default:
			raw, err := json.Marshal(v)
			if err != nil {
				return err
			}
			b.(*arrow.StringBuilder).Append(string(raw))
		}
	case arrow.LIST:
		xs, ok := v.([]any)
		if !ok {
			return fmt.Errorf("expected array, got %T", v)
		}
		lb := b.(*arrow.ListBuilder)
		for _, e := range xs {
			if err := appendJSON(lb.Child(), t.Elem, e); err != nil {
				return err
			}
		}
		lb.CloseList()
	case arrow.STRUCT:
		m, ok := v.(map[string]any)
		if !ok {
			return fmt.Errorf("expected object, got %T", v)
		}
		sb := b.(*arrow.StructBuilder)
		for i, f := range t.Fields {
			if err := appendJSON(sb.FieldBuilder(i), f.Type, m[f.Name]); err != nil {
				return err
			}
		}
		sb.CloseRow()
	default:
		return fmt.Errorf("unsupported JSON target type %s", t)
	}
	return nil
}

// WriteFile writes batches as NDJSON.
func WriteFile(path string, batches []*arrow.RecordBatch) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, batch := range batches {
		for r := 0; r < batch.NumRows(); r++ {
			rec := make(map[string]any, batch.NumCols())
			for c := 0; c < batch.NumCols(); c++ {
				rec[batch.Schema().Field(c).Name] = scalarToJSON(batch.Column(c).GetScalar(r))
			}
			if err := enc.Encode(rec); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

func scalarToJSON(s arrow.Scalar) any {
	if s.Null {
		return nil
	}
	switch s.Type.ID {
	case arrow.BOOL:
		return s.AsBool()
	case arrow.STRING:
		return s.AsString()
	case arrow.FLOAT32, arrow.FLOAT64:
		f := s.AsFloat64()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil
		}
		return f
	case arrow.LIST:
		arr := s.Val.(arrow.Array)
		out := make([]any, arr.Len())
		for i := range out {
			out[i] = scalarToJSON(arr.GetScalar(i))
		}
		return out
	case arrow.STRUCT:
		vals := s.Val.([]arrow.Scalar)
		out := make(map[string]any, len(vals))
		for i, f := range s.Type.Fields {
			out[f.Name] = scalarToJSON(vals[i])
		}
		return out
	case arrow.DATE32, arrow.TIMESTAMP, arrow.DECIMAL:
		return s.String()
	default:
		return s.Val
	}
}
