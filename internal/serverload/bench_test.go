package serverload

import (
	"fmt"
	"testing"

	"gofusion/internal/server"
)

// BenchmarkServerLoad measures end-to-end service throughput and tail
// latency for the mixed workload at 1/4/8 concurrent clients, with the
// plan cache off and on. Each op is one HTTP request (per-op time is the
// wall clock of the whole run divided by requests). qps, p50_ms, and
// p99_ms ride as custom metrics; BENCH_server.json records the
// trajectory.
func BenchmarkServerLoad(b *testing.B) {
	const seed = 42
	w, err := NewWorkload(seed, 20)
	if err != nil {
		b.Fatal(err)
	}
	for _, clients := range []int{1, 4, 8} {
		for _, planCache := range []bool{false, true} {
			name := fmt.Sprintf("clients=%d/plancache=%v", clients, planCache)
			b.Run(name, func(b *testing.B) {
				cfg := server.Config{Slots: 8, MaxQueue: 4096}
				cfg.Session.EnablePlanCache = planCache
				srv, hs := newLoadServer(b, w, cfg)
				defer srv.Close()
				defer hs.Close()
				hc := hs.Client()
				defer hc.CloseIdleConnections()

				perClient := b.N / clients
				if perClient == 0 {
					perClient = 1
				}
				b.ResetTimer()
				res := Run(hs.URL, hc, w, Options{
					Clients:           clients,
					RequestsPerClient: perClient,
					Seed:              seed,
					PreparedEvery:     4,
				})
				b.StopTimer()
				if len(res.Failures) > 0 {
					b.Fatalf("%d failures, first: %s", len(res.Failures), res.Failures[0])
				}
				if res.Shed != 0 {
					b.Fatalf("%d sheds with an ample queue", res.Shed)
				}
				b.ReportMetric(res.Throughput(), "qps")
				b.ReportMetric(float64(res.LatencyPercentile(0.50).Microseconds())/1e3, "p50_ms")
				b.ReportMetric(float64(res.LatencyPercentile(0.99).Microseconds())/1e3, "p99_ms")
			})
		}
	}
}
