// Package serverload is the load-test harness for the multi-tenant SQL
// service (internal/server): a seeded, deterministic N-client generator
// of mixed TPC-H / ClickBench / fuzzsql traffic that doubles as a
// differential oracle — every result returned under concurrency is
// cross-checked against a serial baseline session running the same
// engine — while recording a throughput and latency (p50/p99)
// trajectory for BENCH_server.json.
package serverload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"gofusion/internal/server"
)

// QueryResult mirrors the server's /query response body. Row cells are
// decoded with json.Number so integer columns survive the round trip
// losslessly (a plain decode would flatten every number to float64).
type QueryResult struct {
	Columns   []string `json:"columns"`
	Types     []string `json:"types"`
	Rows      [][]any  `json:"rows"`
	RowCount  int64    `json:"row_count"`
	ElapsedMS float64  `json:"elapsed_ms"`
	PlanHit   bool     `json:"plan_cache_hit"`
	ResultHit bool     `json:"result_cache_hit"`
}

// QueryError is a non-2xx reply: the HTTP status plus the server's error
// message. Shed statuses (429/503) and query failures (400) both land
// here; the runner tells them apart by Status.
type QueryError struct {
	Status  int
	Message string
}

func (e *QueryError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Status, e.Message)
}

// Client speaks the server's JSON protocol.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Session scopes prepared handles and per-session stats server-side.
	Session string
}

// NewClient returns a client for the server at baseURL using the given
// HTTP client (http.DefaultClient when nil).
func NewClient(baseURL string, hc *http.Client, session string) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{BaseURL: baseURL, HTTP: hc, Session: session}
}

func (c *Client) post(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &e)
		return &QueryError{Status: resp.StatusCode, Message: e.Error}
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	return dec.Decode(out)
}

// Query runs one SQL statement.
func (c *Client) Query(ctx context.Context, sql string) (*QueryResult, error) {
	var out QueryResult
	req := map[string]any{"sql": sql, "session": c.Session}
	if err := c.post(ctx, "/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryPrepared executes a prepared-statement handle.
func (c *Client) QueryPrepared(ctx context.Context, handle string) (*QueryResult, error) {
	var out QueryResult
	req := map[string]any{"prepared": handle, "session": c.Session}
	if err := c.post(ctx, "/query", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Prepare registers a prepared statement and returns its handle.
func (c *Client) Prepare(ctx context.Context, sql string) (string, error) {
	var out struct {
		Handle string `json:"handle"`
	}
	req := map[string]any{"sql": sql, "session": c.Session}
	if err := c.post(ctx, "/prepare", req, &out); err != nil {
		return "", err
	}
	return out.Handle, nil
}

// Stats scrapes GET /stats.
func (c *Client) Stats(ctx context.Context) (*server.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats: http %d", resp.StatusCode)
	}
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
