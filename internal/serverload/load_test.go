package serverload

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"gofusion/internal/server"
	"gofusion/internal/testutil"
)

// newLoadServer stands up a server over the full mixed workload
// (TPC-H sf=0.01, ClickBench 2000 rows, fuzzsql tables).
func newLoadServer(t testing.TB, w *Workload, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(cfg)
	if err := w.Register(srv.Session()); err != nil {
		srv.Close()
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	return srv, hs
}

// TestLoadDifferential is the tentpole harness: >= 8 concurrent clients
// of mixed TPC-H / ClickBench / fuzzsql traffic (including prepared
// replays) against a fully-caching server, with every response
// cross-checked against the serial no-cache baseline. Zero divergences
// and zero unexpected failures are the acceptance bar.
func TestLoadDifferential(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()

	const seed = 42
	fuzzCount, perClient := 20, 25
	if testing.Short() {
		fuzzCount, perClient = 8, 8
	}
	w, err := NewWorkload(seed, fuzzCount)
	if err != nil {
		t.Fatal(err)
	}

	cfg := server.Config{Slots: 4, MaxQueue: 1024} // ample queue: nothing sheds
	cfg.Session.EnablePlanCache = true
	cfg.Session.EnableResultCache = true
	srv, hs := newLoadServer(t, w, cfg)
	defer srv.Close()
	defer hs.Close()
	hc := hs.Client()
	defer hc.CloseIdleConnections()

	oracle, err := NewOracle(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	res := Run(hs.URL, hc, w, Options{
		Clients:           8,
		RequestsPerClient: perClient,
		Seed:              seed,
		PreparedEvery:     5,
		Oracle:            oracle,
	})

	for _, d := range res.Divergences {
		t.Errorf("divergence: %s", d)
	}
	for _, f := range res.Failures {
		t.Errorf("failure: %s", f)
	}
	if res.Shed != 0 {
		t.Errorf("shed %d requests with an ample queue, want 0", res.Shed)
	}
	if got := res.Succeeded + res.QueryErrors + res.Shed + int64(len(res.Failures)); got != res.Requests {
		t.Errorf("accounting: %d outcomes for %d requests", got, res.Requests)
	}
	if res.Succeeded == 0 {
		t.Fatal("no request succeeded")
	}
	// Prepared replays (every 5th request per client) ride the plan cache.
	if res.PlanHits == 0 {
		t.Error("no plan-cache hits despite prepared traffic")
	}
	if got := srv.ParentPool(); got != nil && got.Reserved() != 0 {
		t.Errorf("parent pool reserved after run = %d, want 0", got.Reserved())
	}
	t.Logf("load: %d ok, %d query errors, %d plan hits, %d result hits, %.0f qps, p99 %v",
		res.Succeeded, res.QueryErrors, res.PlanHits, res.ResultHits,
		res.Throughput(), res.LatencyPercentile(0.99))
}

// TestLoadOverloadSheds is the overload half of the smoke contract: a
// one-slot server with a one-deep queue and a short queue timeout must
// shed under 8-client pressure, every shed must be a clean 429/503 (never
// a transport failure), and the /stats admission counters must account
// for exactly the sheds the clients observed.
func TestLoadOverloadSheds(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()

	w, err := NewWorkload(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Slots: 1, MaxQueue: 1, QueueTimeout: 2 * time.Millisecond}
	srv, hs := newLoadServer(t, w, cfg)
	defer srv.Close()
	defer hs.Close()
	hc := hs.Client()
	defer hc.CloseIdleConnections()

	// Phase 1 — saturated: the only execution slot is held for the whole
	// run, so every request must shed (queue full or queue timeout), never
	// hang and never fail at the transport level.
	release, err := srv.Limiter().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hot := Run(hs.URL, hc, w, Options{Clients: 8, RequestsPerClient: 10, Seed: 7})
	release()
	if hot.Shed != hot.Requests {
		t.Fatalf("saturated server shed %d of %d requests, want all", hot.Shed, hot.Requests)
	}
	for _, f := range hot.Failures {
		t.Errorf("non-shed failure under saturation: %s", f)
	}

	// Phase 2 — recovered: with the slot free the same traffic flows
	// again (residual sheds from 8 clients racing 1 slot are expected).
	cool := Run(hs.URL, hc, w, Options{Clients: 8, RequestsPerClient: 10, Seed: 8})
	if cool.Succeeded == 0 {
		t.Fatal("server did not recover after saturation; it should degrade, not collapse")
	}
	for _, f := range cool.Failures {
		t.Errorf("non-shed failure after recovery: %s", f)
	}

	// The server's own accounting must corroborate the clients'.
	c := NewClient(hs.URL, hc, "")
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Admission.ShedFull + st.Admission.ShedTimeout; got != hot.Shed+cool.Shed {
		t.Errorf("limiter sheds %d != client-observed sheds %d (stats %+v)",
			got, hot.Shed+cool.Shed, st.Admission)
	}
	if st.Admission.PeakInFlight > int64(cfg.Slots) {
		t.Errorf("peak in-flight %d exceeded %d slot(s)", st.Admission.PeakInFlight, cfg.Slots)
	}
	t.Logf("overload: saturated %d/%d shed; recovered %d ok, %d shed (full=%d timeout=%d)",
		hot.Shed, hot.Requests, cool.Succeeded, cool.Shed, st.Admission.ShedFull, st.Admission.ShedTimeout)
}
