package serverload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Options tunes one load run.
type Options struct {
	// Clients is the number of concurrent client goroutines.
	Clients int
	// RequestsPerClient is each client's request count.
	RequestsPerClient int
	// Seed derives every client's deterministic query sequence (client i
	// uses Seed*1000+i), so a failing run replays exactly.
	Seed int64
	// PreparedEvery routes every Nth request of a client through a
	// prepared-statement handle (0 disables prepared traffic).
	PreparedEvery int
	// Oracle, when set, cross-checks every successful response (and the
	// error parity of every 400) against the serial baseline.
	Oracle *Oracle
}

// Result aggregates one load run.
type Result struct {
	Requests    int64
	Succeeded   int64
	QueryErrors int64 // HTTP 400 with verified baseline parity
	Shed        int64 // HTTP 429/503/504: admission or deadline shedding
	Failures    []string
	Divergences []string
	PlanHits    int64
	ResultHits  int64
	Elapsed     time.Duration

	latencies []time.Duration // successful requests only
}

// Throughput returns successful queries per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Succeeded) / r.Elapsed.Seconds()
}

// LatencyPercentile returns the p-quantile (0 < p <= 1) of successful
// request latencies, 0 when none succeeded.
func (r *Result) LatencyPercentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(r.latencies))
	copy(sorted, r.latencies)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Run drives Clients concurrent clients of mixed traffic against the
// server at baseURL and aggregates outcomes. Divergences and unexpected
// transport failures are collected, not fatal: the caller (test or
// benchmark) decides what is acceptable.
func Run(baseURL string, hc *http.Client, w *Workload, opt Options) *Result {
	if opt.Clients <= 0 {
		opt.Clients = 1
	}
	if opt.RequestsPerClient <= 0 {
		opt.RequestsPerClient = 1
	}
	res := &Result{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < opt.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed*1000 + int64(id)))
			c := NewClient(baseURL, hc, fmt.Sprintf("client-%d", id))
			ctx := context.Background()

			// Prepared traffic: each client pins one deterministic query
			// as a handle and replays it every PreparedEvery-th request.
			var handle, handleSQL string
			if opt.PreparedEvery > 0 {
				handleSQL = w.Pick(rng)
				h, err := c.Prepare(ctx, handleSQL)
				if err == nil {
					handle = h
				}
			}

			local := struct {
				lat         []time.Duration
				failures    []string
				divergences []string
				succeeded   int64
				queryErrs   int64
				shed        int64
				planHits    int64
				resultHits  int64
			}{}
			for n := 0; n < opt.RequestsPerClient; n++ {
				sql := w.Pick(rng)
				usePrepared := handle != "" && opt.PreparedEvery > 0 && n%opt.PreparedEvery == 0
				if usePrepared {
					sql = handleSQL
				}
				t0 := time.Now()
				var qr *QueryResult
				var err error
				if usePrepared {
					qr, err = c.QueryPrepared(ctx, handle)
				} else {
					qr, err = c.Query(ctx, sql)
				}
				lat := time.Since(t0)
				if err != nil {
					var qe *QueryError
					if errors.As(err, &qe) {
						switch qe.Status {
						case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
							local.shed++
						case http.StatusBadRequest:
							local.queryErrs++
							if opt.Oracle != nil {
								if derr := opt.Oracle.CheckError(sql); derr != nil {
									local.divergences = append(local.divergences, derr.Error())
								}
							}
						default:
							local.failures = append(local.failures, err.Error())
						}
					} else {
						local.failures = append(local.failures, err.Error())
					}
					continue
				}
				local.succeeded++
				local.lat = append(local.lat, lat)
				if qr.PlanHit {
					local.planHits++
				}
				if qr.ResultHit {
					local.resultHits++
				}
				if opt.Oracle != nil {
					if derr := opt.Oracle.Check(sql, qr); derr != nil {
						local.divergences = append(local.divergences, derr.Error())
					}
				}
			}
			mu.Lock()
			res.latencies = append(res.latencies, local.lat...)
			res.Failures = append(res.Failures, local.failures...)
			res.Divergences = append(res.Divergences, local.divergences...)
			res.Succeeded += local.succeeded
			res.QueryErrors += local.queryErrs
			res.Shed += local.shed
			res.PlanHits += local.planHits
			res.ResultHits += local.resultHits
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	res.Requests = int64(opt.Clients) * int64(opt.RequestsPerClient)
	return res
}
