package serverload

import (
	"fmt"
	"math/rand"

	"gofusion/internal/core"
	"gofusion/internal/fuzzsql"
	"gofusion/internal/workload/clickbench"
	"gofusion/internal/workload/tpch"
)

// Workload is a seeded, deterministic traffic mix: TPC-H analytic
// queries, ClickBench aggregations, and a fuzzsql-generated corpus, all
// over datasets small enough that thousands of requests finish in
// seconds. The same seed always yields the same query pool, so load-test
// failures replay exactly.
type Workload struct {
	Seed    int64
	Queries []string

	tpchSF float64
	cbRows int
	fuzz   *fuzzsql.Dataset
}

// tpchLoadQueries are the TPC-H queries in the mix: scan-, join-, and
// aggregation-heavy shapes that stay fast at tiny scale factors.
var tpchLoadQueries = []int{1, 3, 5, 6, 10, 12, 14, 19}

// clickbenchLoadQueries are the ClickBench queries in the mix.
var clickbenchLoadQueries = []int{1, 2, 3, 7, 8, 13, 16, 21}

// NewWorkload builds the query pool: the fixed TPC-H and ClickBench
// subsets plus fuzzCount seeded fuzzsql queries.
func NewWorkload(seed int64, fuzzCount int) (*Workload, error) {
	w := &Workload{Seed: seed, tpchSF: 0.01, cbRows: 2000, fuzz: fuzzsql.NewDataset(seed)}
	for _, n := range tpchLoadQueries {
		q, err := tpch.Query(n)
		if err != nil {
			return nil, err
		}
		w.Queries = append(w.Queries, q)
	}
	cb := clickbench.Queries()
	for _, n := range clickbenchLoadQueries {
		q, ok := cb[n]
		if !ok {
			return nil, fmt.Errorf("serverload: unknown clickbench query %d", n)
		}
		w.Queries = append(w.Queries, q)
	}
	gen := fuzzsql.NewGen(seed, w.fuzz)
	for i := 0; i < fuzzCount; i++ {
		w.Queries = append(w.Queries, gen.Query().SQL())
	}
	return w, nil
}

// Register loads every dataset of the mix into a session: TPC-H (in
// memory at the workload's scale factor), ClickBench hits, and the
// fuzzsql tables.
func (w *Workload) Register(s *core.SessionContext) error {
	if err := tpch.RegisterInMemory(s, w.tpchSF); err != nil {
		return err
	}
	if err := clickbench.RegisterInMemory(s, w.cbRows); err != nil {
		return err
	}
	for _, t := range w.fuzz.Tables {
		if err := s.RegisterBatches(t.Name, t.Schema, t.Batches); err != nil {
			return err
		}
	}
	return nil
}

// Pick returns a deterministic query for one client step.
func (w *Workload) Pick(rng *rand.Rand) string {
	return w.Queries[rng.Intn(len(w.Queries))]
}
