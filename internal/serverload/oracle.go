package serverload

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gofusion/internal/core"
	"gofusion/internal/server"
	"gofusion/internal/testutil"
)

// Oracle is the differential baseline: a single serial engine session
// (no plan cache, no result cache, no admission) that executes each
// distinct query once, memoizes the canonical result, and compares every
// concurrent server response against it. Comparison uses the repo's
// canonical normalization: order-insensitive rows, NULL == NULL, floats
// under the testutil abs/rel/ULP tolerance (absorbing summation-order
// differences between concurrent and serial execution).
type Oracle struct {
	mu   sync.Mutex
	s    *core.SessionContext
	memo map[string]*refResult
}

type refResult struct {
	types []string
	rows  []canonRow
	err   error
}

// cell is one canonicalized result cell, shared between the JSON wire
// representation and the baseline's arrow batches.
type cell struct {
	null    bool
	isFloat bool
	f       float64
	s       string
}

type canonRow struct {
	key   string
	cells []cell
}

// NewOracle builds the serial baseline session and registers the
// workload's datasets into it.
func NewOracle(w *Workload, partitions int) (*Oracle, error) {
	cfg := core.DefaultConfig()
	cfg.TargetPartitions = partitions
	s := core.NewSession(cfg)
	if err := w.Register(s); err != nil {
		s.Close()
		return nil, err
	}
	return &Oracle{s: s, memo: map[string]*refResult{}}, nil
}

// Close releases the baseline session.
func (o *Oracle) Close() { o.s.Close() }

// ref returns the memoized serial result for sql, executing it on first
// use. Serial by construction: the whole oracle runs under one mutex.
func (o *Oracle) ref(sql string) *refResult {
	o.mu.Lock()
	defer o.mu.Unlock()
	if r, ok := o.memo[sql]; ok {
		return r
	}
	r := &refResult{}
	df, err := o.s.SQL(sql)
	if err != nil {
		r.err = err
		o.memo[sql] = r
		return r
	}
	batches, err := df.Collect()
	if err != nil {
		r.err = err
		o.memo[sql] = r
		return r
	}
	if len(batches) > 0 {
		_, r.types = server.EncodeSchema(batches[0].Schema())
	}
	r.rows = canonRowsFromValues(server.EncodeRows(batches), floatCols(r.types))
	o.memo[sql] = r
	return r
}

// Check compares a successful server response against the serial
// baseline, returning a descriptive divergence error or nil.
func (o *Oracle) Check(sql string, res *QueryResult) error {
	ref := o.ref(sql)
	if ref.err != nil {
		return fmt.Errorf("server succeeded but serial baseline failed (%v) for: %s", ref.err, sql)
	}
	if int64(len(ref.rows)) != res.RowCount || len(ref.rows) != len(res.Rows) {
		return fmt.Errorf("row count divergence: server=%d baseline=%d for: %s",
			len(res.Rows), len(ref.rows), sql)
	}
	if len(ref.rows) == 0 {
		return nil
	}
	if len(res.Types) != len(ref.types) {
		return fmt.Errorf("schema divergence: server types %v, baseline %v for: %s", res.Types, ref.types, sql)
	}
	got := canonRowsFromValues(res.Rows, floatCols(res.Types))
	for i := range got {
		if err := rowsEqual(got[i], ref.rows[i]); err != nil {
			return fmt.Errorf("row %d: %v for: %s", i, err, sql)
		}
	}
	return nil
}

// CheckError verifies error parity: the server rejected the query (HTTP
// 400), so the serial baseline must reject it too. Shed statuses are the
// caller's business, not the oracle's.
func (o *Oracle) CheckError(sql string) error {
	if ref := o.ref(sql); ref.err == nil {
		return fmt.Errorf("server failed but serial baseline succeeded for: %s", sql)
	}
	return nil
}

func rowsEqual(a, b canonRow) error {
	if len(a.cells) != len(b.cells) {
		return fmt.Errorf("cell count %d vs %d", len(a.cells), len(b.cells))
	}
	for c := range a.cells {
		x, y := a.cells[c], b.cells[c]
		switch {
		case x.null != y.null:
			return fmt.Errorf("col %d: NULL divergence (%v vs %v)", c, x, y)
		case x.null:
		case x.isFloat:
			if !testutil.FloatsEqual(x.f, y.f) {
				return fmt.Errorf("col %d: %v vs %v", c, x.f, y.f)
			}
		case x.s != y.s:
			return fmt.Errorf("col %d: %q vs %q", c, x.s, y.s)
		}
	}
	return nil
}

// floatCols classifies wire types whose cells ride as float64 (floats
// and decimals; see server.EncodeRows).
func floatCols(types []string) []bool {
	out := make([]bool, len(types))
	for i, t := range types {
		out[i] = strings.HasPrefix(t, "Float") || strings.HasPrefix(t, "Decimal")
	}
	return out
}

// canonRowsFromValues canonicalizes and sorts rows from either side of
// the wire: server rows decode to json.Number / string / bool / nil,
// baseline rows encode to int64 / float64 / string / bool / nil. One
// canonicalizer covers both, so comparisons never depend on which side a
// value came from.
func canonRowsFromValues(rows [][]any, isFloat []bool) []canonRow {
	out := make([]canonRow, len(rows))
	for i, r := range rows {
		cells := make([]cell, len(r))
		var key strings.Builder
		for c, v := range r {
			fl := c < len(isFloat) && isFloat[c]
			cells[c] = canonCell(v, fl)
			key.WriteString(cellKey(cells[c]))
			key.WriteByte('|')
		}
		out[i] = canonRow{key: key.String(), cells: cells}
	}
	sortCanon(out)
	return out
}

func canonCell(v any, isFloat bool) cell {
	switch x := v.(type) {
	case nil:
		return cell{null: true}
	case bool:
		return cell{s: strconv.FormatBool(x)}
	case string:
		return cell{s: x}
	case int64:
		return cell{s: strconv.FormatInt(x, 10)}
	case float64:
		return cell{isFloat: true, f: x}
	case json.Number:
		if isFloat {
			f, err := x.Float64()
			if err != nil {
				return cell{s: x.String()}
			}
			return cell{isFloat: true, f: f}
		}
		return cell{s: x.String()}
	default:
		return cell{s: fmt.Sprint(x)}
	}
}

// cellKey mirrors testutil's canonical sort key: floats rounded to six
// significant decimals so summation-order jitter does not reorder rows;
// the cell-level comparison is tolerance-aware regardless.
func cellKey(c cell) string {
	switch {
	case c.null:
		return "NULL"
	case c.isFloat:
		if math.IsNaN(c.f) {
			return "NaN"
		}
		return strconv.FormatFloat(c.f, 'e', 6, 64)
	default:
		return c.s
	}
}

func sortCanon(rows []canonRow) {
	sort.Slice(rows, func(a, b int) bool { return rows[a].key < rows[b].key })
}
