package core

import (
	"testing"
)

// newCachingSession is newTestSession with the result cache enabled.
func newCachingSession(t *testing.T) *SessionContext {
	t.Helper()
	base := newTestSession(t, 2)
	t.Cleanup(base.Close)
	cfg := base.Config()
	cfg.EnableResultCache = true
	s := base.WithConfig(cfg)
	t.Cleanup(s.Close)
	return s
}

func collectMetrics(t *testing.T, s *SessionContext, query string) ([]string, *QueryMetrics) {
	t.Helper()
	df, err := s.SQL(query)
	if err != nil {
		t.Fatalf("planning %q: %v", query, err)
	}
	_, qm, err := df.CollectWithMetrics()
	if err != nil {
		t.Fatalf("executing %q: %v", query, err)
	}
	return q(t, s, query), qm
}

func TestResultCacheRepeatedQueryHits(t *testing.T) {
	s := newCachingSession(t)
	const query = "SELECT name, salary FROM emp WHERE salary > 150 ORDER BY name"

	rows1, qm1 := collectMetrics(t, s, query)
	if qm1.ResultCacheHit {
		t.Fatal("first execution reported a result-cache hit")
	}
	rows2, qm2 := collectMetrics(t, s, query)
	if !qm2.ResultCacheHit {
		t.Fatal("second identical execution missed the result cache")
	}
	expect(t, rows2, rows1, true)

	// A different query (even by one token) is its own entry.
	_, qm3 := collectMetrics(t, s, "SELECT name, salary FROM emp WHERE salary > 200 ORDER BY name")
	if qm3.ResultCacheHit {
		t.Fatal("different query hit the cache")
	}
}

func TestResultCacheDisabledByDefault(t *testing.T) {
	s := newTestSession(t, 2)
	defer s.Close()
	const query = "SELECT count(*) FROM emp"
	q(t, s, query)
	df, err := s.SQL(query)
	if err != nil {
		t.Fatal(err)
	}
	_, qm, err := df.CollectWithMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if qm.ResultCacheHit || qm.ResultCacheHits != 0 {
		t.Fatalf("result cache active without EnableResultCache: %+v", qm)
	}
}

func TestResultCacheInvalidatedByCreateTable(t *testing.T) {
	s := newCachingSession(t)
	const query = "SELECT count(*) FROM emp"

	collectMetrics(t, s, query)
	if _, qm := collectMetrics(t, s, query); !qm.ResultCacheHit {
		t.Fatal("warm query should hit before DDL")
	}

	// CREATE TABLE AS bumps the catalog version: every cached entry goes
	// stale, including ones whose tables did not change (conservative).
	if _, err := s.SQL("CREATE TABLE high_paid AS SELECT name, salary FROM emp WHERE salary > 150"); err != nil {
		t.Fatal(err)
	}
	if _, qm := collectMetrics(t, s, query); qm.ResultCacheHit {
		t.Fatal("CREATE TABLE did not invalidate the result cache")
	}
	expect(t, q(t, s, "SELECT count(*) FROM high_paid"), []string{"3"}, true)
}

func TestResultCacheInvalidatedByInsert(t *testing.T) {
	s := newCachingSession(t)
	const query = "SELECT count(*) FROM emp"

	expect(t, q(t, s, query), []string{"6"}, true)
	if _, qm := collectMetrics(t, s, query); !qm.ResultCacheHit {
		t.Fatal("warm query should hit before INSERT")
	}

	if _, err := s.SQL("INSERT INTO emp SELECT * FROM emp WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	rows, qm := collectMetrics(t, s, query)
	if qm.ResultCacheHit {
		t.Fatal("INSERT did not invalidate the result cache")
	}
	expect(t, rows, []string{"7"}, true)

	// The fresh count becomes the new cached entry.
	if _, qm := collectMetrics(t, s, query); !qm.ResultCacheHit {
		t.Fatal("post-INSERT rerun should hit again")
	}
}

func TestCreateTableAndInsertErrors(t *testing.T) {
	s := newTestSession(t, 1)
	defer s.Close()
	if _, err := s.SQL("CREATE TABLE emp AS SELECT * FROM emp"); err == nil {
		t.Fatal("CREATE TABLE over an existing table should fail")
	}
	if _, err := s.SQL("INSERT INTO missing SELECT * FROM emp"); err == nil {
		t.Fatal("INSERT into a missing table should fail")
	}
	// Shape mismatch: emp has 5 columns.
	if _, err := s.SQL("INSERT INTO emp SELECT id FROM emp"); err == nil {
		t.Fatal("INSERT with mismatched column count should fail")
	}
}
