package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"gofusion/internal/logical"
)

// planCache memoizes optimized logical plans of repeated queries, keyed
// on the print-stable SQL normalization plus every session knob that
// changes planning (see SessionContext.planCacheKey). A hit skips
// parsing-adjacent work, logical planning, and the optimizer pipeline;
// physical planning always reruns, because physical plans embed one-shot
// per-execution state (prepared ScanResults whose partitions may each be
// opened at most once), so a cached physical plan could never safely be
// executed twice. Re-lowering per execution is what makes cached plans
// re-instantiable: every execution gets fresh streams, fresh exchanges,
// and fresh metrics from the same immutable optimized logical plan.
//
// Entries record the catalog version they were planned under: a logical
// plan holds resolved TableProvider snapshots, so any registration or
// write (DDL, INSERT, COPY, stream append — all bump a version counter)
// makes the entry stale. Stale entries are dropped on lookup.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element

	hits          atomic.Int64
	misses        atomic.Int64
	invalidations atomic.Int64
}

type planEntry struct {
	key     string
	version int64
	plan    logical.Plan
}

// PlanCacheStats is a snapshot of plan-cache activity.
type PlanCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
}

// defaultPlanCacheEntries bounds the cache when the session config does
// not set PlanCacheEntries.
const defaultPlanCacheEntries = 256

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheEntries
	}
	return &planCache{cap: capacity, ll: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached optimized plan for key if it was planned under
// the current catalog version. A version mismatch drops the entry (the
// provider snapshot inside it is stale) and counts as an invalidation.
func (pc *planCache) get(key string, version int64) (logical.Plan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byKey[key]
	if !ok {
		pc.misses.Add(1)
		return nil, false
	}
	ent := el.Value.(*planEntry)
	if ent.version != version {
		pc.ll.Remove(el)
		delete(pc.byKey, key)
		pc.invalidations.Add(1)
		pc.misses.Add(1)
		return nil, false
	}
	pc.ll.MoveToFront(el)
	pc.hits.Add(1)
	return ent.plan, true
}

// put memoizes an optimized plan computed under the given catalog
// version, evicting the least recently used entry past capacity.
func (pc *planCache) put(key string, version int64, plan logical.Plan) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[key]; ok {
		el.Value.(*planEntry).version = version
		el.Value.(*planEntry).plan = plan
		pc.ll.MoveToFront(el)
		return
	}
	pc.byKey[key] = pc.ll.PushFront(&planEntry{key: key, version: version, plan: plan})
	for pc.ll.Len() > pc.cap {
		last := pc.ll.Back()
		pc.ll.Remove(last)
		delete(pc.byKey, last.Value.(*planEntry).key)
	}
}

// Stats snapshots hit/miss/invalidation counters and residency.
func (pc *planCache) Stats() PlanCacheStats {
	pc.mu.Lock()
	n := pc.ll.Len()
	pc.mu.Unlock()
	return PlanCacheStats{
		Hits:          pc.hits.Load(),
		Misses:        pc.misses.Load(),
		Invalidations: pc.invalidations.Load(),
		Entries:       n,
	}
}
