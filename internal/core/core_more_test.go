package core

import (
	"strings"
	"testing"

	"gofusion/internal/arrow"
)

// TestOptimizerPreservesResults runs a battery of queries with and
// without the logical optimizer and requires identical results — the
// plan-equivalence property behind every rewrite rule.
func TestOptimizerPreservesResults(t *testing.T) {
	queries := []string{
		`SELECT name FROM emp WHERE salary > 100 AND dept_id IS NOT NULL ORDER BY name`,
		`SELECT dept_id, count(*), sum(salary) FROM emp GROUP BY dept_id ORDER BY 1 NULLS LAST`,
		`SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept_id = d.did ORDER BY 1`,
		`SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept_id = d.did WHERE d.dname = 'eng' ORDER BY 1`,
		`SELECT name FROM emp ORDER BY salary DESC NULLS LAST LIMIT 3`,
		`SELECT CASE WHEN salary > 200 THEN 'hi' ELSE 'lo' END AS b, count(*) FROM emp GROUP BY b ORDER BY b`,
		`SELECT name FROM emp WHERE (salary > 100 AND id < 4) OR (salary > 100 AND id > 4) ORDER BY 1`,
		`SELECT id FROM emp WHERE 1 = 1 AND id BETWEEN 2 AND 4 ORDER BY 1`,
	}
	on := newTestSession(t, 2)
	offCfg := DefaultConfig()
	offCfg.TargetPartitions = 2
	offCfg.DisableOptimizer = true
	off := on.WithConfig(offCfg)
	for _, query := range queries {
		want := q(t, on, query)
		got := q(t, off, query)
		if strings.Join(want, ";") != strings.Join(got, ";") {
			t.Fatalf("optimizer changed results for %q:\nopt:   %v\nnoopt: %v", query, want, got)
		}
	}
}

// TestSQLWithMemoryLimitSpills runs a sort+aggregate under a tight memory
// budget and verifies results match the unconstrained run.
func TestSQLWithMemoryLimitSpills(t *testing.T) {
	mk := func(limit int64) *SessionContext {
		cfg := DefaultConfig()
		cfg.MemoryLimit = limit
		cfg.SpillDir = t.TempDir()
		s := NewSession(cfg)
		// A table big enough to exceed the limit.
		schema := arrow.NewSchema(
			arrow.NewField("k", arrow.Int64, false),
			arrow.NewField("v", arrow.Int64, false),
		)
		kb := arrow.NewNumericBuilder[int64](arrow.Int64)
		vb := arrow.NewNumericBuilder[int64](arrow.Int64)
		for i := 0; i < 50000; i++ {
			kb.Append(int64(i % 1000))
			vb.Append(int64(i))
		}
		if err := s.RegisterBatches("big", schema, []*arrow.RecordBatch{
			arrow.NewRecordBatch(schema, []arrow.Array{kb.Finish(), vb.Finish()}),
		}); err != nil {
			t.Fatal(err)
		}
		return s
	}
	query := `SELECT k, sum(v) AS s FROM big GROUP BY k ORDER BY s DESC LIMIT 5`
	want := q(t, mk(0), query)      // unlimited
	got := q(t, mk(64*1024), query) // 64 KiB forces sort/agg spills
	if strings.Join(want, ";") != strings.Join(got, ";") {
		t.Fatalf("spilled results differ:\nwant %v\ngot  %v", want, got)
	}
	// Full sort (not Top-K) under pressure too.
	query2 := `SELECT k FROM big ORDER BY v`
	want2 := q(t, mk(0), query2)
	got2 := q(t, mk(128*1024), query2)
	if len(want2) != len(got2) || want2[0] != got2[0] || want2[len(want2)-1] != got2[len(got2)-1] {
		t.Fatal("spilled sort differs")
	}
}

// TestFairPoolSession exercises the fair-division memory policy end to
// end (paper Section 5.5.4).
func TestFairPoolSession(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemoryLimit = 256 * 1024
	cfg.FairPool = true
	cfg.SpillDir = t.TempDir()
	s := NewSession(cfg)
	schema := arrow.NewSchema(arrow.NewField("v", arrow.Int64, false))
	vb := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < 30000; i++ {
		vb.Append(int64(i * 7 % 30000))
	}
	if err := s.RegisterBatches("t", schema, []*arrow.RecordBatch{
		arrow.NewRecordBatch(schema, []arrow.Array{vb.Finish()}),
	}); err != nil {
		t.Fatal(err)
	}
	got := q(t, s, "SELECT count(DISTINCT v) FROM (SELECT v FROM t ORDER BY v) q")
	if got[0] != "30000" {
		t.Fatalf("fair pool result = %v", got)
	}
}

func TestGroupingSetsFullShape(t *testing.T) {
	s := newTestSession(t, 1)
	got := q(t, s, `SELECT dept_id, name, count(*) FROM emp WHERE dept_id IS NOT NULL
		GROUP BY GROUPING SETS ((dept_id), (name), ()) ORDER BY 1 NULLS LAST, 2 NULLS LAST`)
	// 3 dept rows + 5 name rows + 1 grand total.
	if len(got) != 9 {
		t.Fatalf("grouping sets rows = %d: %v", len(got), got)
	}
	last := got[len(got)-1]
	if !strings.HasPrefix(last, "NULL|NULL|5") {
		t.Fatalf("grand total wrong: %v", got)
	}
}

func TestRegexpThroughSQL(t *testing.T) {
	s := newTestSession(t, 1)
	expect(t, q(t, s, `SELECT name FROM emp WHERE regexp_like(name, '^[ab]') ORDER BY 1`),
		[]string{`"ann"`, `"bob"`}, true)
	expect(t, q(t, s, `SELECT regexp_replace(name, 'n+', 'N') FROM emp WHERE id = 1`),
		[]string{`"aN"`}, true)
}

func TestIntersectExceptThroughSQL(t *testing.T) {
	s := newTestSession(t, 2)
	expect(t, q(t, s, `SELECT dept_id FROM emp WHERE dept_id IS NOT NULL INTERSECT SELECT did FROM dept ORDER BY 1`),
		[]string{"10", "20"}, true)
	expect(t, q(t, s, `SELECT did FROM dept EXCEPT SELECT dept_id FROM emp WHERE dept_id IS NOT NULL ORDER BY 1`),
		[]string{"40"}, true)
}

func TestNestedSubqueries(t *testing.T) {
	s := newTestSession(t, 1)
	// Subquery inside a subquery (Q20-style nesting).
	got := q(t, s, `SELECT dname FROM dept WHERE did IN (
		SELECT dept_id FROM emp WHERE salary > (SELECT avg(salary) FROM emp))
		ORDER BY 1`)
	expect(t, got, []string{`"sales"`}, true)
}
