// Package core is the engine's public facade (the paper's SessionContext
// and DataFrame APIs, Sections 5.1 and 5.3.3): it wires the catalog,
// function registry, SQL front end, optimizer, physical planner, and
// execution engine together, and exposes every extension point (UDFs,
// custom TableProviders, optimizer rules, extension operators, memory
// pools) to embedding systems.
package core

import (
	"context"
	"fmt"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/csvio"
	"gofusion/internal/exec"
	"gofusion/internal/functions"
	"gofusion/internal/jsonio"
	"gofusion/internal/logical"
	"gofusion/internal/memory"
	"gofusion/internal/optimizer"
	"gofusion/internal/physical"
	"gofusion/internal/planner"
	"gofusion/internal/sql"
)

// SessionConfig tunes a session (the paper's target_partitions, batch
// size, memory limits and spill settings).
type SessionConfig struct {
	// TargetPartitions is the planned parallelism; 0 means 1.
	TargetPartitions int
	// BatchRows is the engine batch size (default 8192, Section 5.5.1).
	BatchRows int
	// ScanReadahead is how many row groups each scan partition decodes
	// ahead of its consumer (I/O/decode pipelining); 0 means the default
	// (2), negative disables readahead.
	ScanReadahead int
	// ExchangeBufferDepth is the per-channel batch buffer of exchange
	// operators; 0 derives max(4, TargetPartitions) so fused consumers
	// that drain whole chains per pull don't stall producers at high
	// parallelism.
	ExchangeBufferDepth int
	// MemoryLimit bounds tracked operator memory in bytes; 0 = unlimited.
	MemoryLimit int64
	// FairPool divides MemoryLimit evenly among pipeline-breaking
	// operators instead of first-come-first-served.
	FairPool bool
	// SpillDir hosts spill files; empty uses the OS temp dir.
	SpillDir string
	// DisableSpill turns off spilling (queries fail on memory pressure).
	DisableSpill bool
	// DisableOptimizer skips logical optimization (for tests/ablations).
	DisableOptimizer bool
	// PreferHashJoin disables merge join selection.
	PreferHashJoin bool
	// DisableFusion turns off pipeline fusion and morsel-driven scan
	// scheduling, keeping every operator on its own pull stream (the
	// paper-faithful FusePipelines knob, spelled as a Disable flag so the
	// zero-value config keeps fusion on; for ablations and differential
	// testing).
	DisableFusion bool
}

// DefaultConfig returns the recommended session configuration.
func DefaultConfig() SessionConfig {
	return SessionConfig{TargetPartitions: 1, BatchRows: 8192}
}

// SessionContext is the entry point for embedding the engine.
type SessionContext struct {
	cfg         SessionConfig
	catalog     *catalog.MemoryCatalog
	reg         *functions.Registry
	cache       *memory.CacheManager
	opt         *optimizer.Optimizer
	extPlanners []exec.ExtensionPlanner
}

// NewSession creates a session with the built-in catalog and functions.
func NewSession(cfg SessionConfig) *SessionContext {
	if cfg.TargetPartitions <= 0 {
		cfg.TargetPartitions = 1
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 8192
	}
	reg := functions.NewRegistry()
	return &SessionContext{
		cfg:     cfg,
		catalog: catalog.NewMemoryCatalog(),
		reg:     reg,
		cache:   memory.NewCacheManager(1024, 4096),
		opt:     optimizer.New(reg),
	}
}

// Config returns the session configuration.
func (s *SessionContext) Config() SessionConfig { return s.cfg }

// WithConfig returns a session sharing catalogs and functions but with a
// different runtime configuration.
func (s *SessionContext) WithConfig(cfg SessionConfig) *SessionContext {
	if cfg.TargetPartitions <= 0 {
		cfg.TargetPartitions = 1
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 8192
	}
	out := *s
	out.cfg = cfg
	return &out
}

// Registry exposes the function registry for UDF/UDAF/UDWF registration
// (paper Section 7.1).
func (s *SessionContext) Registry() *functions.Registry { return s.reg }

// Catalog exposes the session catalog (paper Section 7.2).
func (s *SessionContext) Catalog() *catalog.MemoryCatalog { return s.catalog }

// CacheManager exposes the metadata caches (paper Section 7.4).
func (s *SessionContext) CacheManager() *memory.CacheManager { return s.cache }

// WithOptimizerRule registers a custom logical optimizer rule to run
// BEFORE the built-in pipeline (macro expansions must precede filter
// pushdown); use WithOptimizerRuleLast for post-passes (paper Section
// 7.6: users control rewrite order).
func (s *SessionContext) WithOptimizerRule(r optimizer.Rule) *SessionContext {
	s.opt.WithRuleFirst(r)
	return s
}

// WithOptimizerRuleLast registers a custom rule after the built-ins.
func (s *SessionContext) WithOptimizerRuleLast(r optimizer.Rule) *SessionContext {
	s.opt.WithRule(r)
	return s
}

// WithExtensionPlanner registers a physical planner for user-defined
// logical operators (paper Section 7.7).
func (s *SessionContext) WithExtensionPlanner(p exec.ExtensionPlanner) *SessionContext {
	s.extPlanners = append(s.extPlanners, p)
	return s
}

func (s *SessionContext) publicSchema() *catalog.MemorySchema {
	sp, _ := s.catalog.SchemaByName("public")
	return sp.(*catalog.MemorySchema)
}

// RegisterTable registers any TableProvider under a name.
func (s *SessionContext) RegisterTable(name string, t catalog.TableProvider) {
	s.publicSchema().Register(name, t)
}

// DeregisterTable removes a table.
func (s *SessionContext) DeregisterTable(name string) {
	s.publicSchema().Deregister(name)
}

// RegisterBatches registers an in-memory table from record batches.
func (s *SessionContext) RegisterBatches(name string, schema *arrow.Schema, batches []*arrow.RecordBatch) error {
	mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{batches})
	if err != nil {
		return err
	}
	s.RegisterTable(name, mt)
	return nil
}

// RegisterGPQ registers a GPQ-file-backed table (one or more files).
func (s *SessionContext) RegisterGPQ(name string, files ...string) error {
	t, err := catalog.NewGPQTable(files, s.cache)
	if err != nil {
		return err
	}
	s.RegisterTable(name, t)
	return nil
}

// RegisterGPQDir registers all GPQ files under a directory as one table.
func (s *SessionContext) RegisterGPQDir(name, dir string) error {
	t, err := catalog.ListingTable(dir, "gpq", s.cache)
	if err != nil {
		return err
	}
	s.RegisterTable(name, t)
	return nil
}

// RegisterCSV registers a CSV-backed table with schema inference.
func (s *SessionContext) RegisterCSV(name, path string, opts csvio.Options) error {
	t, err := catalog.NewCSVTable(path, nil, opts)
	if err != nil {
		return err
	}
	s.RegisterTable(name, t)
	return nil
}

// RegisterJSON registers an NDJSON-backed table with schema inference.
func (s *SessionContext) RegisterJSON(name, path string) error {
	t, err := catalog.NewJSONTable(path, nil, jsonio.Options{})
	if err != nil {
		return err
	}
	s.RegisterTable(name, t)
	return nil
}

// resolveTable implements the planner's table resolver against the
// session catalog, supporting "table" and "schema.table".
func (s *SessionContext) resolveTable(name string) (logical.TableSource, error) {
	schemaName, tableName := "public", name
	if i := strings.IndexByte(name, '.'); i > 0 {
		schemaName, tableName = name[:i], name[i+1:]
	}
	sp, ok := s.catalog.SchemaByName(schemaName)
	if !ok {
		return nil, fmt.Errorf("core: schema %q not found", schemaName)
	}
	t, ok := sp.Table(tableName)
	if !ok {
		return nil, fmt.Errorf("core: table %q not found", name)
	}
	return t, nil
}

// SQL plans a SQL query, returning a lazy DataFrame.
func (s *SessionContext) SQL(query string) (*DataFrame, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sql.SelectStmt:
		pl := planner.New(s.resolveTable, s.reg)
		plan, err := pl.PlanQuery(st)
		if err != nil {
			return nil, err
		}
		return &DataFrame{session: s, plan: plan}, nil
	case *sql.ExplainStmt:
		inner, ok := st.Stmt.(*sql.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("core: EXPLAIN supports queries only")
		}
		pl := planner.New(s.resolveTable, s.reg)
		plan, err := pl.PlanQuery(inner)
		if err != nil {
			return nil, err
		}
		df := &DataFrame{session: s, plan: plan}
		var text string
		if st.Analyze {
			// EXPLAIN ANALYZE runs the query to completion and annotates
			// the plan with the recorded runtime metrics.
			text, err = df.ExplainAnalyze()
		} else {
			text, err = df.Explain()
		}
		if err != nil {
			return nil, err
		}
		return s.explainResult(text)
	}
	return nil, fmt.Errorf("core: unsupported statement")
}

// explainResult wraps EXPLAIN output as a one-column result.
func (s *SessionContext) explainResult(text string) (*DataFrame, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	rows := make([][]logical.Expr, len(lines))
	for i, l := range lines {
		rows[i] = []logical.Expr{&logical.Alias{E: logical.Lit(l), Name: "plan"}}
	}
	plan, err := logical.NewBuilder(s.reg).ValuesRows(rows).Build()
	if err != nil {
		return nil, err
	}
	return &DataFrame{session: s, plan: plan}, nil
}

// Table returns a DataFrame scanning a registered table.
func (s *SessionContext) Table(name string) (*DataFrame, error) {
	src, err := s.resolveTable(name)
	if err != nil {
		return nil, err
	}
	plan, err := logical.NewBuilder(s.reg).Scan(name, src).Build()
	if err != nil {
		return nil, err
	}
	return &DataFrame{session: s, plan: plan}, nil
}

// OptimizePlan runs the logical optimizer.
func (s *SessionContext) OptimizePlan(plan logical.Plan) (logical.Plan, error) {
	if s.cfg.DisableOptimizer {
		return plan, nil
	}
	return s.opt.Optimize(plan)
}

// CreatePhysicalPlan optimizes and lowers a logical plan.
func (s *SessionContext) CreatePhysicalPlan(plan logical.Plan) (physical.ExecutionPlan, error) {
	optimized, err := s.OptimizePlan(plan)
	if err != nil {
		return nil, err
	}
	cfg := &exec.PlannerConfig{
		TargetPartitions:  s.cfg.TargetPartitions,
		BatchRows:         s.cfg.BatchRows,
		ScanReadahead:     s.cfg.ScanReadahead,
		Reg:               s.reg,
		PreferHashJoin:    s.cfg.PreferHashJoin,
		DisableFusion:     s.cfg.DisableFusion,
		ExtensionPlanners: s.extPlanners,
	}
	return exec.CreatePhysicalPlan(optimized, cfg)
}

// newExecContext builds the per-query runtime (paper Sections 5.5.4, 7.4).
func (s *SessionContext) newExecContext() (*physical.ExecContext, func()) {
	ctx := physical.NewExecContext()
	ctx.Ctx = context.Background()
	ctx.BatchRows = s.cfg.BatchRows
	ctx.TargetPartitions = s.cfg.TargetPartitions
	if s.cfg.ExchangeBufferDepth > 0 {
		ctx.ExchangeBuffer = s.cfg.ExchangeBufferDepth
	}
	if s.cfg.MemoryLimit > 0 {
		if s.cfg.FairPool {
			ctx.Pool = memory.NewFairPool(s.cfg.MemoryLimit)
		} else {
			ctx.Pool = memory.NewGreedyPool(s.cfg.MemoryLimit)
		}
	}
	var dm *memory.DiskManager
	if !s.cfg.DisableSpill {
		dm = memory.NewDiskManager(s.cfg.SpillDir, true)
		ctx.Disk = dm
	}
	cleanup := func() {
		if dm != nil {
			dm.Close()
		}
	}
	return ctx, cleanup
}

// ExecutePlan runs a physical plan to completion.
func (s *SessionContext) ExecutePlan(plan physical.ExecutionPlan) ([]*arrow.RecordBatch, error) {
	ctx, cleanup := s.newExecContext()
	defer cleanup()
	return exec.CollectPlan(ctx, plan)
}
