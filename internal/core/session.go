// Package core is the engine's public facade (the paper's SessionContext
// and DataFrame APIs, Sections 5.1 and 5.3.3): it wires the catalog,
// function registry, SQL front end, optimizer, physical planner, and
// execution engine together, and exposes every extension point (UDFs,
// custom TableProviders, optimizer rules, extension operators, memory
// pools) to embedding systems.
package core

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/csvio"
	"gofusion/internal/exec"
	"gofusion/internal/functions"
	"gofusion/internal/jsonio"
	"gofusion/internal/logical"
	"gofusion/internal/memory"
	"gofusion/internal/optimizer"
	"gofusion/internal/parquet"
	"gofusion/internal/physical"
	"gofusion/internal/planner"
	"gofusion/internal/sql"
)

// SessionConfig tunes a session (the paper's target_partitions, batch
// size, memory limits and spill settings).
type SessionConfig struct {
	// TargetPartitions is the planned parallelism; 0 means 1.
	TargetPartitions int
	// BatchRows is the engine batch size (default 8192, Section 5.5.1).
	BatchRows int
	// ScanReadahead is how many row groups each scan partition decodes
	// ahead of its consumer (I/O/decode pipelining); 0 means the default
	// (2), negative disables readahead.
	ScanReadahead int
	// ExchangeBufferDepth is the per-channel batch buffer of exchange
	// operators; 0 derives max(4, TargetPartitions) so fused consumers
	// that drain whole chains per pull don't stall producers at high
	// parallelism.
	ExchangeBufferDepth int
	// MemoryLimit bounds tracked operator memory in bytes; 0 = unlimited.
	MemoryLimit int64
	// FairPool divides MemoryLimit evenly among pipeline-breaking
	// operators instead of first-come-first-served.
	FairPool bool
	// SpillDir hosts spill files; empty uses the OS temp dir.
	SpillDir string
	// DisableSpill turns off spilling (queries fail on memory pressure).
	DisableSpill bool
	// DisableOptimizer skips logical optimization (for tests/ablations).
	DisableOptimizer bool
	// PreferHashJoin disables merge join selection.
	PreferHashJoin bool
	// DisableFusion turns off pipeline fusion and morsel-driven scan
	// scheduling, keeping every operator on its own pull stream (the
	// paper-faithful FusePipelines knob, spelled as a Disable flag so the
	// zero-value config keeps fusion on; for ablations and differential
	// testing).
	DisableFusion bool
	// DisableSharedCache turns off the process-wide decoded-page cache
	// for this session (the cache defaults ON; spelled as a Disable flag
	// so the zero-value config keeps it).
	DisableSharedCache bool
	// EnableResultCache turns on the result cache for repeated identical
	// read-only queries, keyed on the print-stable SQL normalization plus
	// session knobs and invalidated by any catalog registration or write.
	// It defaults OFF (the issue names this knob DisableResultCache; a
	// default-off cache cannot be spelled as a Disable flag with Go zero
	// values, so the polarity is flipped).
	EnableResultCache bool
	// EnablePlanCache turns on the logical plan cache: repeated identical
	// queries (print-stable sql.FormatStatement normalization) skip
	// parsing, planning, and the optimizer and re-lower the memoized
	// optimized plan. Entries are invalidated by the catalog version
	// counters, so any DDL, INSERT, COPY, or stream append drops plans
	// over stale provider snapshots. Default OFF (same polarity rationale
	// as EnableResultCache).
	EnablePlanCache bool
	// PlanCacheEntries bounds the plan cache (default 256 entries).
	PlanCacheEntries int
	// ParentPool, when set, charges every per-query memory pool to this
	// shared pool, so concurrent queries (sessions of one server) divide
	// one global budget; MemoryLimit then caps each query individually
	// before the parent is consulted. When nil, MemoryLimit alone bounds
	// each query and queries do not share a budget.
	ParentPool memory.Pool
	// WatermarkLateness is the event-time slack allowed for out-of-order
	// rows in streaming aggregation before a time bucket closes (in the
	// watermark column's units; default 0 = in-order sources).
	WatermarkLateness int64
	// SharedCacheBytes bounds the decoded-page cache (default 256 MiB).
	SharedCacheBytes int64
	// ResultCacheBytes bounds the result cache (default 64 MiB).
	ResultCacheBytes int64
}

// DefaultConfig returns the recommended session configuration.
func DefaultConfig() SessionConfig {
	return SessionConfig{TargetPartitions: 1, BatchRows: 8192}
}

// SessionContext is the entry point for embedding the engine.
type SessionContext struct {
	cfg         SessionConfig
	catalog     *catalog.MemoryCatalog
	reg         *functions.Registry
	cache       *catalog.MetaCache
	pages       *parquet.PageCache
	results     *resultCache
	plans       *planCache
	cachePool   memory.Pool
	opt         *optimizer.Optimizer
	extPlanners []exec.ExtensionPlanner
}

// NewSession creates a session with the built-in catalog and functions.
func NewSession(cfg SessionConfig) *SessionContext {
	if cfg.TargetPartitions <= 0 {
		cfg.TargetPartitions = 1
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 8192
	}
	if cfg.SharedCacheBytes <= 0 {
		cfg.SharedCacheBytes = 256 << 20
	}
	if cfg.ResultCacheBytes <= 0 {
		cfg.ResultCacheBytes = 64 << 20
	}
	reg := functions.NewRegistry()
	s := &SessionContext{
		cfg:     cfg,
		catalog: catalog.NewMemoryCatalog(),
		reg:     reg,
		cache:   catalog.NewMetaCache(1024, 4096),
		opt:     optimizer.New(reg),
	}
	// Caches charge a session-lifetime pool so resident bytes are visible
	// to memory accounting (and leak-checked under the sanitize tag);
	// per-query operator pools stay separate because they come and go
	// with each query.
	s.cachePool = memory.NewGreedyPool(cfg.SharedCacheBytes + cfg.ResultCacheBytes)
	if !cfg.DisableSharedCache {
		s.pages = parquet.NewPageCache(cfg.SharedCacheBytes, s.cachePool)
	}
	if cfg.EnableResultCache {
		s.results = newResultCache(cfg.ResultCacheBytes, s.cachePool)
	}
	if cfg.EnablePlanCache {
		s.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	return s
}

// Close releases the session's cache reservations (resident pages and
// results are dropped). The session stays usable; caches refill on use.
func (s *SessionContext) Close() {
	if s.pages != nil {
		s.pages.Close()
	}
	if s.results != nil {
		s.results.close()
	}
}

// Config returns the session configuration.
func (s *SessionContext) Config() SessionConfig { return s.cfg }

// WithConfig returns a session sharing catalogs, functions, and shared
// caches but with a different runtime configuration. Cache knobs apply
// per derived session: DisableSharedCache detaches the shared page cache
// here without affecting the base session, and EnableResultCache attaches
// a result cache (sharing the base session's if it has one).
func (s *SessionContext) WithConfig(cfg SessionConfig) *SessionContext {
	if cfg.TargetPartitions <= 0 {
		cfg.TargetPartitions = 1
	}
	if cfg.BatchRows <= 0 {
		cfg.BatchRows = 8192
	}
	if cfg.SharedCacheBytes <= 0 {
		cfg.SharedCacheBytes = s.cfg.SharedCacheBytes
	}
	if cfg.ResultCacheBytes <= 0 {
		cfg.ResultCacheBytes = s.cfg.ResultCacheBytes
	}
	out := *s
	out.cfg = cfg
	if cfg.DisableSharedCache {
		out.pages = nil
	} else if out.pages == nil {
		out.pages = parquet.NewPageCache(cfg.SharedCacheBytes, s.cachePool)
	}
	if !cfg.EnableResultCache {
		out.results = nil
	} else if out.results == nil {
		out.results = newResultCache(cfg.ResultCacheBytes, s.cachePool)
	}
	if !cfg.EnablePlanCache {
		out.plans = nil
	} else if out.plans == nil {
		out.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	return &out
}

// Registry exposes the function registry for UDF/UDAF/UDWF registration
// (paper Section 7.1).
func (s *SessionContext) Registry() *functions.Registry { return s.reg }

// Catalog exposes the session catalog (paper Section 7.2).
func (s *SessionContext) Catalog() *catalog.MemoryCatalog { return s.catalog }

// CacheManager exposes the metadata caches (paper Section 7.4).
func (s *SessionContext) CacheManager() *catalog.MetaCache { return s.cache }

// PageCache exposes the shared decoded-page cache (nil when disabled).
func (s *SessionContext) PageCache() *parquet.PageCache { return s.pages }

// WithOptimizerRule registers a custom logical optimizer rule to run
// BEFORE the built-in pipeline (macro expansions must precede filter
// pushdown); use WithOptimizerRuleLast for post-passes (paper Section
// 7.6: users control rewrite order).
func (s *SessionContext) WithOptimizerRule(r optimizer.Rule) *SessionContext {
	s.opt.WithRuleFirst(r)
	return s
}

// WithOptimizerRuleLast registers a custom rule after the built-ins.
func (s *SessionContext) WithOptimizerRuleLast(r optimizer.Rule) *SessionContext {
	s.opt.WithRule(r)
	return s
}

// WithExtensionPlanner registers a physical planner for user-defined
// logical operators (paper Section 7.7).
func (s *SessionContext) WithExtensionPlanner(p exec.ExtensionPlanner) *SessionContext {
	s.extPlanners = append(s.extPlanners, p)
	return s
}

func (s *SessionContext) publicSchema() *catalog.MemorySchema {
	sp, _ := s.catalog.SchemaByName("public")
	return sp.(*catalog.MemorySchema)
}

// RegisterTable registers any TableProvider under a name.
func (s *SessionContext) RegisterTable(name string, t catalog.TableProvider) {
	s.publicSchema().Register(name, t)
}

// DeregisterTable removes a table.
func (s *SessionContext) DeregisterTable(name string) {
	s.publicSchema().Deregister(name)
}

// RegisterBatches registers an in-memory table from record batches.
func (s *SessionContext) RegisterBatches(name string, schema *arrow.Schema, batches []*arrow.RecordBatch) error {
	mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{batches})
	if err != nil {
		return err
	}
	s.RegisterTable(name, mt)
	return nil
}

// RegisterGPQ registers a GPQ-file-backed table (one or more files).
func (s *SessionContext) RegisterGPQ(name string, files ...string) error {
	t, err := catalog.NewGPQTable(files, s.cache)
	if err != nil {
		return err
	}
	s.RegisterTable(name, t)
	return nil
}

// RegisterGPQDir registers all GPQ files under a directory as one table.
func (s *SessionContext) RegisterGPQDir(name, dir string) error {
	t, err := catalog.ListingTable(dir, "gpq", s.cache)
	if err != nil {
		return err
	}
	s.RegisterTable(name, t)
	return nil
}

// RegisterCSV registers a CSV-backed table with schema inference.
func (s *SessionContext) RegisterCSV(name, path string, opts csvio.Options) error {
	t, err := catalog.NewCSVTable(path, nil, opts)
	if err != nil {
		return err
	}
	s.RegisterTable(name, t)
	return nil
}

// RegisterStream registers a live append-only table for the streaming
// workload class: writers call Append on the returned table (or INSERT
// INTO / COPY INTO it) while queries tail it. watermarkCol, when
// non-empty, declares the event-time column that streaming aggregation
// groups by. Writes from any goroutine bump the catalog version so
// version-keyed result caches invalidate.
func (s *SessionContext) RegisterStream(name string, schema *arrow.Schema, watermarkCol string) (*catalog.StreamTable, error) {
	t := catalog.NewStreamTable(schema)
	if watermarkCol != "" {
		if _, err := t.WithWatermark(watermarkCol); err != nil {
			return nil, err
		}
	}
	ps := s.publicSchema()
	t.OnWrite(ps.BumpVersion)
	ps.Register(name, t)
	return t, nil
}

// RegisterTailingJSON registers an unbounded table tailing an NDJSON file
// that an external process appends to. A nil schema is inferred from the
// file's current contents. The stream ends when the seal marker file
// (catalog.SealMarker(path)) appears.
func (s *SessionContext) RegisterTailingJSON(name, path string, schema *arrow.Schema, watermarkCol string, poll time.Duration) (*catalog.TailingJSONTable, error) {
	t, err := catalog.NewTailingJSONTable(path, schema, poll)
	if err != nil {
		return nil, err
	}
	if watermarkCol != "" {
		if _, err := t.WithWatermark(watermarkCol); err != nil {
			return nil, err
		}
	}
	s.RegisterTable(name, t)
	return t, nil
}

// RegisterJSON registers an NDJSON-backed table with schema inference.
func (s *SessionContext) RegisterJSON(name, path string) error {
	t, err := catalog.NewJSONTable(path, nil, jsonio.Options{})
	if err != nil {
		return err
	}
	s.RegisterTable(name, t)
	return nil
}

// resolveTable implements the planner's table resolver against the
// session catalog, supporting "table" and "schema.table".
func (s *SessionContext) resolveTable(name string) (logical.TableSource, error) {
	schemaName, tableName := "public", name
	if i := strings.IndexByte(name, '.'); i > 0 {
		schemaName, tableName = name[:i], name[i+1:]
	}
	sp, ok := s.catalog.SchemaByName(schemaName)
	if !ok {
		return nil, fmt.Errorf("core: schema %q not found", schemaName)
	}
	t, ok := sp.Table(tableName)
	if !ok {
		return nil, fmt.Errorf("core: table %q not found", name)
	}
	return t, nil
}

// SQL plans a SQL query, returning a lazy DataFrame.
func (s *SessionContext) SQL(query string) (*DataFrame, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *sql.SelectStmt:
		return s.selectDataFrame(st)
	case *sql.CreateTableStmt:
		return s.execCreateTable(st)
	case *sql.InsertStmt:
		return s.execInsert(st)
	case *sql.CopyStmt:
		return s.execCopy(st)
	case *sql.ExplainStmt:
		inner, ok := st.Stmt.(*sql.SelectStmt)
		if !ok {
			return nil, fmt.Errorf("core: EXPLAIN supports queries only")
		}
		pl := planner.New(s.resolveTable, s.reg)
		plan, err := pl.PlanQuery(inner)
		if err != nil {
			return nil, err
		}
		df := &DataFrame{session: s, plan: plan}
		var text string
		if st.Analyze {
			// EXPLAIN ANALYZE runs the query to completion and annotates
			// the plan with the recorded runtime metrics.
			text, err = df.ExplainAnalyze()
		} else {
			text, err = df.Explain()
		}
		if err != nil {
			return nil, err
		}
		return s.explainResult(text)
	}
	return nil, fmt.Errorf("core: unsupported statement")
}

// selectDataFrame builds the lazy frame for a query statement, consulting
// the plan cache when enabled: a hit hands back the memoized optimized
// logical plan (marked preOptimized so execution skips the optimizer and
// goes straight to physical lowering); a miss plans, optimizes, and
// memoizes under the current catalog version.
func (s *SessionContext) selectDataFrame(st *sql.SelectStmt) (*DataFrame, error) {
	df := &DataFrame{session: s}
	if s.results != nil {
		df.resultKey = s.resultCacheKey(st)
	}
	if s.plans != nil {
		key := s.planCacheKey(st)
		version := s.catalog.Version()
		if cached, ok := s.plans.get(key, version); ok {
			df.plan = cached
			df.preOptimized = true
			return df, nil
		}
		plan, err := planner.New(s.resolveTable, s.reg).PlanQuery(st)
		if err != nil {
			return nil, err
		}
		optimized, err := s.OptimizePlan(plan)
		if err != nil {
			return nil, err
		}
		s.plans.put(key, version, optimized)
		df.plan = optimized
		df.preOptimized = true
		return df, nil
	}
	plan, err := planner.New(s.resolveTable, s.reg).PlanQuery(st)
	if err != nil {
		return nil, err
	}
	df.plan = plan
	return df, nil
}

// PreparedStatement is a parsed query handle: Prepare once, execute many
// times. Each Query() consults the session plan cache (when enabled), so
// repeated executions skip planning and optimization, and every
// execution lowers a fresh physical plan (cached plans are logical; see
// planCache).
type PreparedStatement struct {
	session *SessionContext
	stmt    *sql.SelectStmt
	text    string
}

// Prepare parses a query statement for repeated execution. Only plain
// queries can be prepared; DDL/DML execute eagerly through SQL.
func (s *SessionContext) Prepare(query string) (*PreparedStatement, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	st, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: only queries can be prepared")
	}
	return &PreparedStatement{session: s, stmt: st, text: sql.FormatStatement(st)}, nil
}

// SQL returns the print-stable normalized statement text.
func (ps *PreparedStatement) SQL() string { return ps.text }

// Query builds a fresh lazy frame for one execution of the statement.
func (ps *PreparedStatement) Query() (*DataFrame, error) {
	return ps.session.selectDataFrame(ps.stmt)
}

// PlanCacheStats snapshots the session's plan-cache counters; ok is
// false when the plan cache is disabled.
func (s *SessionContext) PlanCacheStats() (PlanCacheStats, bool) {
	if s.plans == nil {
		return PlanCacheStats{}, false
	}
	return s.plans.Stats(), true
}

// explainResult wraps EXPLAIN output as a one-column result.
func (s *SessionContext) explainResult(text string) (*DataFrame, error) {
	return s.textResult("plan", strings.Split(strings.TrimRight(text, "\n"), "\n"))
}

// statusResult wraps a DDL/DML acknowledgment as a one-row result.
func (s *SessionContext) statusResult(text string) (*DataFrame, error) {
	return s.textResult("status", []string{text})
}

func (s *SessionContext) textResult(col string, lines []string) (*DataFrame, error) {
	rows := make([][]logical.Expr, len(lines))
	for i, l := range lines {
		rows[i] = []logical.Expr{&logical.Alias{E: logical.Lit(l), Name: col}}
	}
	plan, err := logical.NewBuilder(s.reg).ValuesRows(rows).Build()
	if err != nil {
		return nil, err
	}
	return &DataFrame{session: s, plan: plan}, nil
}

// resultCacheKey identifies a query for the result cache: the
// print-stable SQL normalization plus every session knob that can change
// the produced batches. The catalog version is checked at lookup time,
// not baked into the key, so writes invalidate without growing the map.
func (s *SessionContext) resultCacheKey(st *sql.SelectStmt) string {
	return fmt.Sprintf("%s|%+v", sql.FormatStatement(st), s.cfg)
}

// planCacheKey identifies a query for the plan cache. The same shape as
// resultCacheKey: session knobs are part of the key because they change
// what the optimizer and physical planner would produce, so derived
// sessions sharing one cache never serve each other mismatched plans.
func (s *SessionContext) planCacheKey(st *sql.SelectStmt) string {
	return fmt.Sprintf("%s|%+v", sql.FormatStatement(st), s.cfg)
}

// resolveProvider resolves "table" or "schema.table" to its provider and
// owning mutable schema.
func (s *SessionContext) resolveProvider(name string) (catalog.TableProvider, *catalog.MemorySchema, string, error) {
	schemaName, tableName := "public", name
	if i := strings.IndexByte(name, '.'); i > 0 {
		schemaName, tableName = name[:i], name[i+1:]
	}
	sp, ok := s.catalog.SchemaByName(schemaName)
	if !ok {
		return nil, nil, "", fmt.Errorf("core: schema %q not found", schemaName)
	}
	ms, ok := sp.(*catalog.MemorySchema)
	if !ok {
		return nil, nil, "", fmt.Errorf("core: schema %q is read-only", schemaName)
	}
	t, _ := ms.Table(tableName)
	return t, ms, tableName, nil
}

// execCreateTable materializes CREATE TABLE name AS query into an
// in-memory table. Registration bumps the catalog version, invalidating
// cached results that could observe the new table.
func (s *SessionContext) execCreateTable(st *sql.CreateTableStmt) (*DataFrame, error) {
	existing, ms, name, err := s.resolveProvider(st.Name)
	if err != nil {
		return nil, err
	}
	if existing != nil {
		return nil, fmt.Errorf("core: table %q already exists", st.Name)
	}
	pl := planner.New(s.resolveTable, s.reg)
	plan, err := pl.PlanQuery(st.Query)
	if err != nil {
		return nil, err
	}
	df := &DataFrame{session: s, plan: plan}
	batches, err := df.Collect()
	if err != nil {
		return nil, err
	}
	mt, err := catalog.NewMemTable(df.Schema().ToArrow(), [][]*arrow.RecordBatch{batches})
	if err != nil {
		return nil, err
	}
	ms.Register(name, mt)
	var rows int64
	for _, b := range batches {
		rows += int64(b.NumRows())
	}
	return s.statusResult(fmt.Sprintf("CREATE TABLE %s (%d rows)", name, rows))
}

// execInsert appends INSERT INTO table query rows to a writable table
// (in-memory, stream, or GPQ-backed). Every write path bumps the catalog
// version, invalidating cached results over the old contents.
func (s *SessionContext) execInsert(st *sql.InsertStmt) (*DataFrame, error) {
	existing, ms, name, err := s.resolveProvider(st.Table)
	if err != nil {
		return nil, err
	}
	if existing == nil {
		return nil, fmt.Errorf("core: table %q not found", st.Table)
	}
	pl := planner.New(s.resolveTable, s.reg)
	plan, err := pl.PlanQuery(st.Query)
	if err != nil {
		return nil, err
	}
	batches, err := (&DataFrame{session: s, plan: plan}).Collect()
	if err != nil {
		return nil, err
	}
	rebased, rows, err := rebaseBatches(existing.Schema(), batches)
	if err != nil {
		return nil, fmt.Errorf("core: INSERT INTO %q: %w", st.Table, err)
	}
	if err := s.appendToProvider(existing, ms, name, rebased); err != nil {
		return nil, fmt.Errorf("core: INSERT INTO %q: %w", st.Table, err)
	}
	return s.statusResult(fmt.Sprintf("INSERT %d", rows))
}

// execCopy bulk-loads COPY INTO table FROM 'path' rows into an existing
// writable table. The source format comes from the FORMAT clause or the
// path's extension.
func (s *SessionContext) execCopy(st *sql.CopyStmt) (*DataFrame, error) {
	existing, ms, name, err := s.resolveProvider(st.Table)
	if err != nil {
		return nil, err
	}
	if existing == nil {
		return nil, fmt.Errorf("core: table %q not found", st.Table)
	}
	format := st.Format
	if format == "" {
		format = strings.TrimPrefix(strings.ToLower(filepath.Ext(st.Path)), ".")
	}
	schema := existing.Schema()
	var src catalog.TableProvider
	switch format {
	case "gpq":
		// A private footer cache: staging files are often rewritten in
		// place between COPYs, so their footers must not stick in the
		// session-wide path-keyed cache.
		src, err = catalog.NewGPQTable([]string{st.Path}, catalog.NewMetaCache(1, 4))
	case "csv":
		src, err = catalog.NewCSVTable(st.Path, schema, csvio.DefaultOptions())
	case "json", "ndjson":
		src, err = catalog.NewJSONTable(st.Path, schema, jsonio.Options{})
	default:
		return nil, fmt.Errorf("core: COPY INTO %q: unsupported format %q (want gpq, csv, or json)", st.Table, format)
	}
	if err != nil {
		return nil, fmt.Errorf("core: COPY INTO %q: %w", st.Table, err)
	}
	batches, err := s.readAllRows(src)
	if err != nil {
		return nil, fmt.Errorf("core: COPY INTO %q: %w", st.Table, err)
	}
	rebased, rows, err := rebaseBatches(schema, batches)
	if err != nil {
		return nil, fmt.Errorf("core: COPY INTO %q: %w", st.Table, err)
	}
	if err := s.appendToProvider(existing, ms, name, rebased); err != nil {
		return nil, fmt.Errorf("core: COPY INTO %q: %w", st.Table, err)
	}
	return s.statusResult(fmt.Sprintf("COPY %d", rows))
}

// readAllRows drains every partition of a provider's default scan.
func (s *SessionContext) readAllRows(t catalog.TableProvider) ([]*arrow.RecordBatch, error) {
	res, err := t.Scan(catalog.ScanRequest{Limit: -1, Partitions: 1, BatchRows: s.cfg.BatchRows})
	if err != nil {
		return nil, err
	}
	var out []*arrow.RecordBatch
	for p := 0; p < res.Partitions; p++ {
		st, err := res.Open(p)
		if err != nil {
			return nil, err
		}
		for {
			b, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				st.Close()
				return nil, err
			}
			out = append(out, b)
		}
		st.Close()
	}
	return out, nil
}

// appendToProvider routes appended rows to a table's write path:
// in-memory tables grow immutably and re-register (bumping the catalog
// version), stream tables append to the live log (waking tail readers and
// bumping the version explicitly), and GPQ tables append row groups to
// their last backing file in place, then re-open so planning statistics
// reflect the grown file.
func (s *SessionContext) appendToProvider(t catalog.TableProvider, ms *catalog.MemorySchema, name string, batches []*arrow.RecordBatch) error {
	switch tt := t.(type) {
	case *catalog.MemTable:
		grown, err := tt.WithAppended(batches)
		if err != nil {
			return err
		}
		ms.Register(name, grown)
	case *catalog.StreamTable:
		if err := tt.Append(batches...); err != nil {
			return err
		}
		ms.BumpVersion()
	case *catalog.GPQTable:
		if err := tt.Append(batches, parquet.DefaultWriterOptions()); err != nil {
			return err
		}
		reopened, err := catalog.NewGPQTable(tt.Files(), s.cache)
		if err != nil {
			return err
		}
		ms.Register(name, reopened)
	default:
		return fmt.Errorf("table %q (%T) is not writable", name, t)
	}
	return nil
}

// rebaseBatches re-labels query output batches with the target table's
// schema (names may differ; types must match positionally).
func rebaseBatches(schema *arrow.Schema, batches []*arrow.RecordBatch) ([]*arrow.RecordBatch, int64, error) {
	var rows int64
	out := make([]*arrow.RecordBatch, 0, len(batches))
	for _, b := range batches {
		if b.NumCols() != schema.NumFields() {
			return nil, 0, fmt.Errorf("expected %d columns, query produced %d", schema.NumFields(), b.NumCols())
		}
		cols := make([]arrow.Array, b.NumCols())
		for i := 0; i < b.NumCols(); i++ {
			col := b.Column(i)
			want := schema.Field(i).Type
			if col.DataType().ID != want.ID {
				return nil, 0, fmt.Errorf("column %d: expected %s, query produced %s", i, want, col.DataType())
			}
			cols[i] = col
		}
		rows += int64(b.NumRows())
		out = append(out, arrow.NewRecordBatchWithRows(schema, cols, b.NumRows()))
	}
	return out, rows, nil
}

// Table returns a DataFrame scanning a registered table.
func (s *SessionContext) Table(name string) (*DataFrame, error) {
	src, err := s.resolveTable(name)
	if err != nil {
		return nil, err
	}
	plan, err := logical.NewBuilder(s.reg).Scan(name, src).Build()
	if err != nil {
		return nil, err
	}
	return &DataFrame{session: s, plan: plan}, nil
}

// OptimizePlan runs the logical optimizer.
func (s *SessionContext) OptimizePlan(plan logical.Plan) (logical.Plan, error) {
	if s.cfg.DisableOptimizer {
		return plan, nil
	}
	return s.opt.Optimize(plan)
}

// CreatePhysicalPlan optimizes and lowers a logical plan.
func (s *SessionContext) CreatePhysicalPlan(plan logical.Plan) (physical.ExecutionPlan, error) {
	optimized, err := s.OptimizePlan(plan)
	if err != nil {
		return nil, err
	}
	return s.lowerPlan(optimized)
}

// lowerPlan lowers an already-optimized logical plan to a fresh physical
// plan. Lowering never mutates the logical plan and re-prepares every
// provider scan, so one cached logical plan safely yields any number of
// independent physical plans (plan-cache re-instantiation).
func (s *SessionContext) lowerPlan(optimized logical.Plan) (physical.ExecutionPlan, error) {
	cfg := &exec.PlannerConfig{
		TargetPartitions:  s.cfg.TargetPartitions,
		BatchRows:         s.cfg.BatchRows,
		ScanReadahead:     s.cfg.ScanReadahead,
		Reg:               s.reg,
		PreferHashJoin:    s.cfg.PreferHashJoin,
		DisableFusion:     s.cfg.DisableFusion,
		ExtensionPlanners: s.extPlanners,
		PageCache:         s.pages,
		WatermarkLateness: s.cfg.WatermarkLateness,
	}
	return exec.CreatePhysicalPlan(optimized, cfg)
}

// physicalPlanFor builds the physical plan for a frame: plan-cache hits
// carry pre-optimized plans and skip straight to lowering.
func (s *SessionContext) physicalPlanFor(df *DataFrame) (physical.ExecutionPlan, error) {
	if df.preOptimized {
		return s.lowerPlan(df.plan)
	}
	return s.CreatePhysicalPlan(df.plan)
}

// newExecContext builds the per-query runtime (paper Sections 5.5.4, 7.4).
func (s *SessionContext) newExecContext() (*physical.ExecContext, func()) {
	ctx := physical.NewExecContext()
	ctx.Ctx = context.Background()
	ctx.BatchRows = s.cfg.BatchRows
	ctx.TargetPartitions = s.cfg.TargetPartitions
	if s.cfg.ExchangeBufferDepth > 0 {
		ctx.ExchangeBuffer = s.cfg.ExchangeBufferDepth
	}
	var child *memory.ChildPool
	if s.cfg.ParentPool != nil {
		// Server mode: every query charges the shared parent budget, with
		// MemoryLimit (if set) as this query's individual cap.
		child = memory.NewChildPool(s.cfg.ParentPool, "query", s.cfg.MemoryLimit)
		ctx.Pool = child
	} else if s.cfg.MemoryLimit > 0 {
		if s.cfg.FairPool {
			ctx.Pool = memory.NewFairPool(s.cfg.MemoryLimit)
		} else {
			ctx.Pool = memory.NewGreedyPool(s.cfg.MemoryLimit)
		}
	}
	var dm *memory.DiskManager
	if !s.cfg.DisableSpill {
		dm = memory.NewDiskManager(s.cfg.SpillDir, true)
		ctx.Disk = dm
	}
	cleanup := func() {
		if dm != nil {
			dm.Close()
		}
		if child != nil {
			child.Release()
		}
	}
	return ctx, cleanup
}

// ExecutePlan runs a physical plan to completion.
func (s *SessionContext) ExecutePlan(plan physical.ExecutionPlan) ([]*arrow.RecordBatch, error) {
	ctx, cleanup := s.newExecContext()
	defer cleanup()
	return exec.CollectPlan(ctx, plan)
}
