package core

import (
	"gofusion/internal/arrow"
	"gofusion/internal/memory"
)

// cachedResult is one memoized read-only query result. Batches are
// immutable shared views: every Collect of the same query hands back the
// same slice, so consumers must not mutate them (the engine's arrays are
// immutable by contract, making this safe).
type cachedResult struct {
	// version is the catalog version the result was computed under; a
	// lookup under any other version is a miss (registration, CREATE
	// TABLE, and INSERT all bump it).
	version int64
	batches []*arrow.RecordBatch
}

// resultCache memoizes whole results of repeated identical read-only
// queries, keyed on the print-stable SQL normalization plus session
// knobs (see SessionContext.resultCacheKey). It is byte-budgeted and
// pool-charged like the page cache.
type resultCache struct {
	lru *memory.SizedLRU[string, cachedResult]
}

func newResultCache(maxBytes int64, pool memory.Pool) *resultCache {
	return &resultCache{lru: memory.NewSizedLRU[string, cachedResult](maxBytes, pool, "result-cache")}
}

// get returns the cached batches for key if they were computed under the
// current catalog version; a stale entry is a miss (it stays resident
// until evicted or overwritten by the fresh result).
func (rc *resultCache) get(key string, version int64) ([]*arrow.RecordBatch, bool) {
	ent, ok := rc.lru.Get(key)
	if !ok || ent.version != version {
		return nil, false
	}
	return ent.batches, true
}

// put memoizes a result computed under the given catalog version.
func (rc *resultCache) put(key string, version int64, batches []*arrow.RecordBatch) {
	var size int64
	for _, b := range batches {
		size += arrow.BatchSize(b)
	}
	rc.lru.Put(key, cachedResult{version: version, batches: batches}, size)
}

func (rc *resultCache) stats() memory.SizedStats { return rc.lru.Stats() }

func (rc *resultCache) close() { rc.lru.Close() }
