package core

import (
	"strings"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/exec"
)

// TestExplainAnalyzeDiffersFromExplain is the regression test for the
// dropped ExplainStmt.Analyze flag: EXPLAIN ANALYZE used to return the
// exact same text as EXPLAIN. ANALYZE output must carry per-operator
// metric annotations that plain EXPLAIN never has.
func TestExplainAnalyzeDiffersFromExplain(t *testing.T) {
	s := newTestSession(t, 2)
	const query = "SELECT dname, count(*) FROM emp JOIN dept ON dept_id = did GROUP BY dname"

	plain := strings.Join(q(t, s, "EXPLAIN "+query), "\n")
	analyzed := strings.Join(q(t, s, "EXPLAIN ANALYZE "+query), "\n")

	if plain == analyzed {
		t.Fatal("EXPLAIN ANALYZE returned identical output to EXPLAIN")
	}
	if strings.Contains(plain, "metrics=[") {
		t.Fatalf("plain EXPLAIN must not carry metrics:\n%s", plain)
	}
	for _, want := range []string{"metrics=[", "output_rows=", "elapsed_compute=", "== Query Summary ==", "rows_returned="} {
		if !strings.Contains(analyzed, want) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, analyzed)
		}
	}
	// Every operator line of the annotated physical plan carries metrics.
	inPlan := false
	for _, line := range strings.Split(analyzed, "\n") {
		switch {
		case strings.Contains(line, "== Physical Plan"):
			inPlan = true
		case strings.Contains(line, "== Query Summary =="):
			inPlan = false
		case inPlan && strings.TrimSpace(line) != "":
			if !strings.Contains(line, "metrics=[") {
				t.Fatalf("operator line lacks metrics: %q\nfull output:\n%s", line, analyzed)
			}
		}
	}
}

// TestCollectWithMetrics checks the programmatic metrics surface: row
// accounting matches the returned batches and the plan passes the
// cross-operator invariant checker.
func TestCollectWithMetrics(t *testing.T) {
	s := newTestSession(t, 4)
	df, err := s.SQL("SELECT dept_id, sum(salary) FROM emp GROUP BY dept_id ORDER BY dept_id")
	if err != nil {
		t.Fatal(err)
	}
	batches, qm, err := df.CollectWithMetrics()
	if err != nil {
		t.Fatal(err)
	}
	var rows int64
	for _, b := range batches {
		rows += int64(b.NumRows())
	}
	if rows == 0 || qm.RowsReturned != rows {
		t.Fatalf("RowsReturned = %d, batches hold %d", qm.RowsReturned, rows)
	}
	if qm.Plan == nil {
		t.Fatal("no executed plan attached")
	}
	if err := exec.CheckPlanMetrics(qm.Plan, rows); err != nil {
		t.Fatalf("invariant check: %v", err)
	}
}

// TestCollectWithMetricsSpill: a memory-limited session must surface
// spill metrics through the plan and the pool peak must stay at or under
// the limit.
func TestCollectWithMetricsSpill(t *testing.T) {
	s := NewSession(SessionConfig{TargetPartitions: 2, MemoryLimit: 4 << 10})
	schema := arrow.NewSchema(
		arrow.NewField("k", arrow.Int64, false),
		arrow.NewField("v", arrow.Int64, false),
	)
	kb := arrow.NewNumericBuilder[int64](arrow.Int64)
	vb := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < 20000; i++ {
		kb.Append(int64((i * 7919) % 20000))
		vb.Append(int64(i))
	}
	batch := arrow.NewRecordBatch(schema, []arrow.Array{kb.Finish(), vb.Finish()})
	if err := s.RegisterBatches("big", schema, []*arrow.RecordBatch{batch}); err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT k, v FROM big ORDER BY k DESC, v")
	if err != nil {
		t.Fatal(err)
	}
	_, qm, err := df.CollectWithMetrics()
	if err != nil {
		t.Fatal(err)
	}
	count, bytes := exec.PlanSpillStats(qm.Plan)
	if count == 0 || bytes == 0 {
		t.Fatalf("expected spills under 4KiB limit, got count=%d bytes=%d", count, bytes)
	}
	if qm.PoolReservedPeak > 4<<10 {
		t.Fatalf("pool peak %d exceeds limit", qm.PoolReservedPeak)
	}
	// Spill metrics must also surface in the rendered EXPLAIN ANALYZE.
	text := exec.ExplainAnalyze(qm.Plan)
	if !strings.Contains(text, "spill_count=") || !strings.Contains(text, "spilled_bytes=") {
		t.Fatalf("spill metrics missing from EXPLAIN ANALYZE:\n%s", text)
	}
}
