package core

import (
	"sort"
	"strings"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
)

// functionsScalarDouble is a test UDF registered through the public API.
var functionsScalarDouble = functions.ScalarFunc{
	Name: "double_it",
	ReturnType: func([]*arrow.DataType) (*arrow.DataType, error) {
		return arrow.Int64, nil
	},
	Eval: func(args []arrow.Datum, numRows int) (arrow.Datum, error) {
		in := args[0].ToArray(numRows).(*arrow.Int64Array)
		out := make([]int64, in.Len())
		for i, v := range in.Values() {
			out[i] = v * 2
		}
		return arrow.ArrayDatum(arrow.NewInt64(out)), nil
	},
}

// newTestSession registers small employee/department tables.
func newTestSession(t *testing.T, partitions int) *SessionContext {
	t.Helper()
	cfg := DefaultConfig()
	cfg.TargetPartitions = partitions
	s := NewSession(cfg)

	empSchema := arrow.NewSchema(
		arrow.NewField("id", arrow.Int64, false),
		arrow.NewField("name", arrow.String, false),
		arrow.NewField("dept_id", arrow.Int64, true),
		arrow.NewField("salary", arrow.Float64, true),
		arrow.NewField("hired", arrow.Date32, false),
	)
	deptIDs := arrow.NewNumericBuilder[int64](arrow.Int64)
	for _, v := range []int64{10, 20, 10, 30, 20} {
		deptIDs.Append(v)
	}
	deptIDs.AppendNull()
	sal := arrow.NewNumericBuilder[float64](arrow.Float64)
	for _, v := range []float64{100, 200, 150, 300, 250} {
		sal.Append(v)
	}
	sal.AppendNull()
	hired := arrow.NewNumericBuilder[int32](arrow.Date32)
	for _, d := range []string{"2019-01-01", "2020-06-15", "2021-03-01", "2018-11-20", "2022-01-05", "2020-02-29"} {
		v, _ := arrow.ParseDate32(d)
		hired.Append(v)
	}
	emp := arrow.NewRecordBatch(empSchema, []arrow.Array{
		arrow.NewInt64([]int64{1, 2, 3, 4, 5, 6}),
		arrow.NewStringFromSlice([]string{"ann", "bob", "cat", "dan", "eve", "fox"}),
		deptIDs.Finish(),
		sal.Finish(),
		hired.Finish(),
	})
	if err := s.RegisterBatches("emp", empSchema, []*arrow.RecordBatch{emp}); err != nil {
		t.Fatal(err)
	}

	deptSchema := arrow.NewSchema(
		arrow.NewField("did", arrow.Int64, false),
		arrow.NewField("dname", arrow.String, false),
	)
	dept := arrow.NewRecordBatch(deptSchema, []arrow.Array{
		arrow.NewInt64([]int64{10, 20, 40}),
		arrow.NewStringFromSlice([]string{"eng", "sales", "hr"}),
	})
	if err := s.RegisterBatches("dept", deptSchema, []*arrow.RecordBatch{dept}); err != nil {
		t.Fatal(err)
	}
	return s
}

// q runs a SQL query and returns rendered rows.
func q(t *testing.T, s *SessionContext, query string) []string {
	t.Helper()
	df, err := s.SQL(query)
	if err != nil {
		t.Fatalf("planning %q: %v", query, err)
	}
	batch, err := df.CollectBatch()
	if err != nil {
		t.Fatalf("executing %q: %v", query, err)
	}
	out := make([]string, batch.NumRows())
	for i := range out {
		var parts []string
		for c := 0; c < batch.NumCols(); c++ {
			parts = append(parts, batch.Column(c).GetScalar(i).String())
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func expect(t *testing.T, got, want []string, ordered bool) {
	t.Helper()
	g := append([]string{}, got...)
	w := append([]string{}, want...)
	if !ordered {
		sort.Strings(g)
		sort.Strings(w)
	}
	if len(g) != len(w) {
		t.Fatalf("got %d rows, want %d\ngot:  %v\nwant: %v", len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("row %d:\ngot:  %v\nwant: %v", i, g, w)
		}
	}
}

func TestSQLBasics(t *testing.T) {
	for _, parts := range []int{1, 4} {
		s := newTestSession(t, parts)
		expect(t, q(t, s, "SELECT name FROM emp WHERE salary > 150 ORDER BY name"),
			[]string{`"bob"`, `"dan"`, `"eve"`}, true)
		expect(t, q(t, s, "SELECT id, salary * 2 AS dbl FROM emp WHERE id = 1"),
			[]string{"1|200"}, true)
		expect(t, q(t, s, "SELECT count(*), count(salary), min(salary), max(salary) FROM emp"),
			[]string{"6|5|100|300"}, true)
		expect(t, q(t, s, "SELECT DISTINCT dept_id FROM emp WHERE dept_id IS NOT NULL ORDER BY dept_id"),
			[]string{"10", "20", "30"}, true)
	}
}

func TestSQLGroupByHaving(t *testing.T) {
	for _, parts := range []int{1, 4} {
		s := newTestSession(t, parts)
		got := q(t, s, `SELECT dept_id, count(*) AS n, sum(salary) AS total
			FROM emp WHERE dept_id IS NOT NULL
			GROUP BY dept_id HAVING count(*) > 1 ORDER BY dept_id`)
		expect(t, got, []string{"10|2|250", "20|2|450"}, true)
	}
}

func TestSQLJoins(t *testing.T) {
	s := newTestSession(t, 2)
	expect(t, q(t, s, `SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept_id = d.did ORDER BY e.name`),
		[]string{`"ann"|"eng"`, `"bob"|"sales"`, `"cat"|"eng"`, `"eve"|"sales"`}, true)
	expect(t, q(t, s, `SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept_id = d.did WHERE d.did IS NULL ORDER BY e.name`),
		[]string{`"dan"|NULL`, `"fox"|NULL`}, true)
	// comma join + where becomes inner join
	expect(t, q(t, s, `SELECT e.name FROM emp e, dept d WHERE e.dept_id = d.did AND d.dname = 'eng' ORDER BY 1`),
		[]string{`"ann"`, `"cat"`}, true)
	// right join
	expect(t, q(t, s, `SELECT d.dname, count(e.id) FROM emp e RIGHT JOIN dept d ON e.dept_id = d.did GROUP BY d.dname ORDER BY d.dname`),
		[]string{`"eng"|2`, `"hr"|0`, `"sales"|2`}, true)
}

func TestSQLSubqueries(t *testing.T) {
	s := newTestSession(t, 1)
	// uncorrelated scalar
	expect(t, q(t, s, `SELECT name FROM emp WHERE salary > (SELECT avg(salary) FROM emp) ORDER BY name`),
		[]string{`"dan"`, `"eve"`}, true)
	// IN subquery
	expect(t, q(t, s, `SELECT name FROM emp WHERE dept_id IN (SELECT did FROM dept WHERE dname = 'eng')`),
		[]string{`"ann"`, `"cat"`}, false)
	// NOT IN subquery
	expect(t, q(t, s, `SELECT name FROM emp WHERE dept_id NOT IN (SELECT did FROM dept) AND dept_id IS NOT NULL`),
		[]string{`"dan"`}, false)
	// EXISTS correlated
	expect(t, q(t, s, `SELECT dname FROM dept WHERE EXISTS (SELECT 1 FROM emp WHERE emp.dept_id = dept.did)`),
		[]string{`"eng"`, `"sales"`}, false)
	// NOT EXISTS correlated
	expect(t, q(t, s, `SELECT dname FROM dept WHERE NOT EXISTS (SELECT 1 FROM emp WHERE emp.dept_id = dept.did)`),
		[]string{`"hr"`}, false)
	// correlated scalar aggregate
	expect(t, q(t, s, `SELECT e.name FROM emp e WHERE e.salary = (SELECT max(e2.salary) FROM emp e2 WHERE e2.dept_id = e.dept_id) AND e.dept_id IS NOT NULL ORDER BY 1`),
		[]string{`"cat"`, `"dan"`, `"eve"`}, true)
}

func TestSQLSetOps(t *testing.T) {
	s := newTestSession(t, 1)
	expect(t, q(t, s, `SELECT did FROM dept UNION SELECT dept_id FROM emp WHERE dept_id IS NOT NULL ORDER BY 1`),
		[]string{"10", "20", "30", "40"}, true)
	expect(t, q(t, s, `SELECT did FROM dept INTERSECT SELECT dept_id FROM emp ORDER BY 1`),
		[]string{"10", "20"}, true)
	expect(t, q(t, s, `SELECT did FROM dept EXCEPT SELECT dept_id FROM emp ORDER BY 1`),
		[]string{"40"}, true)
}

func TestSQLWindowFunctions(t *testing.T) {
	s := newTestSession(t, 1)
	got := q(t, s, `SELECT name, row_number() OVER (PARTITION BY dept_id ORDER BY salary DESC) AS rk
		FROM emp WHERE dept_id IS NOT NULL ORDER BY name`)
	expect(t, got, []string{
		`"ann"|2`, `"bob"|2`, `"cat"|1`, `"dan"|1`, `"eve"|1`,
	}, true)
	got = q(t, s, `SELECT name, sum(salary) OVER (ORDER BY id) AS run FROM emp ORDER BY id`)
	expect(t, got, []string{
		`"ann"|100`, `"bob"|300`, `"cat"|450`, `"dan"|750`, `"eve"|1000`, `"fox"|1000`,
	}, true)
}

func TestSQLCTEs(t *testing.T) {
	s := newTestSession(t, 1)
	got := q(t, s, `WITH rich AS (SELECT * FROM emp WHERE salary >= 200)
		SELECT r.name FROM rich r ORDER BY r.name`)
	expect(t, got, []string{`"bob"`, `"dan"`, `"eve"`}, true)
}

func TestSQLExpressions(t *testing.T) {
	s := newTestSession(t, 1)
	expect(t, q(t, s, `SELECT CASE WHEN salary >= 250 THEN 'high' WHEN salary >= 150 THEN 'mid' ELSE 'low' END AS band, count(*)
		FROM emp WHERE salary IS NOT NULL GROUP BY 1 ORDER BY 1`),
		[]string{`"high"|2`, `"low"|1`, `"mid"|2`}, true)
	expect(t, q(t, s, `SELECT upper(name) || '!' FROM emp WHERE id = 1`),
		[]string{`"ANN!"`}, true)
	expect(t, q(t, s, `SELECT EXTRACT(YEAR FROM hired), count(*) FROM emp GROUP BY 1 HAVING count(*) > 1 ORDER BY 1`),
		[]string{"2020|2"}, true)
	expect(t, q(t, s, `SELECT name FROM emp WHERE hired BETWEEN DATE '2020-01-01' AND DATE '2020-12-31' ORDER BY 1`),
		[]string{`"bob"`, `"fox"`}, true)
	expect(t, q(t, s, `SELECT name FROM emp WHERE hired > DATE '2022-01-01' - INTERVAL '1' year ORDER BY 1`),
		[]string{`"cat"`, `"eve"`}, true)
	expect(t, q(t, s, `SELECT name FROM emp WHERE name LIKE '%a%' ORDER BY 1`),
		[]string{`"ann"`, `"cat"`, `"dan"`}, true)
	expect(t, q(t, s, `SELECT coalesce(salary, 0) FROM emp WHERE id = 6`),
		[]string{"0"}, true)
	expect(t, q(t, s, `SELECT CAST(salary AS BIGINT) FROM emp WHERE id = 1`),
		[]string{"100"}, true)
}

func TestSQLOrderByVariants(t *testing.T) {
	s := newTestSession(t, 1)
	// order by alias
	expect(t, q(t, s, `SELECT name, salary * 2 AS dbl FROM emp WHERE salary IS NOT NULL ORDER BY dbl DESC LIMIT 2`),
		[]string{`"dan"|600`, `"eve"|500`}, true)
	// order by hidden column (not in projection)
	expect(t, q(t, s, `SELECT name FROM emp WHERE salary IS NOT NULL ORDER BY salary DESC LIMIT 2`),
		[]string{`"dan"`, `"eve"`}, true)
	// nulls ordering
	got := q(t, s, `SELECT id FROM emp ORDER BY salary ASC NULLS FIRST LIMIT 1`)
	expect(t, got, []string{"6"}, true)
}

func TestSQLGroupingSets(t *testing.T) {
	s := newTestSession(t, 1)
	got := q(t, s, `SELECT dept_id, count(*) FROM emp WHERE dept_id IS NOT NULL
		GROUP BY ROLLUP (dept_id) ORDER BY 1, 2`)
	// per-dept rows plus grand total (NULL, 5)
	expect(t, got, []string{"10|2", "20|2", "30|1", "NULL|5"}, true)
}

func TestDataFrameAPI(t *testing.T) {
	s := newTestSession(t, 2)
	df, err := s.Table("emp")
	if err != nil {
		t.Fatal(err)
	}
	batch, err := df.
		Filter(&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("salary"), R: logical.Lit(100.0)}).
		SelectColumns("name", "salary").
		Sort(logical.SortDesc(logical.Col("salary"))).
		Limit(0, 2).
		CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	if batch.NumRows() != 2 || batch.Column(0).(*arrow.StringArray).Value(0) != "dan" {
		t.Fatalf("dataframe result wrong: %v", batch)
	}
	n, err := df.Count()
	if err != nil || n != 6 {
		t.Fatalf("count = %d, %v", n, err)
	}
}

func TestExplainOutput(t *testing.T) {
	s := newTestSession(t, 2)
	df, err := s.SQL("SELECT dept_id, count(*) FROM emp GROUP BY dept_id")
	if err != nil {
		t.Fatal(err)
	}
	text, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== Logical Plan ==", "== Optimized Plan ==", "== Physical Plan ==", "HashAggregateExec"} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain missing %q:\n%s", want, text)
		}
	}
	// EXPLAIN statement works through SQL too.
	rows := q(t, s, "EXPLAIN SELECT 1 FROM emp")
	if len(rows) == 0 {
		t.Fatal("EXPLAIN produced no rows")
	}
}

func TestShowFormatting(t *testing.T) {
	s := newTestSession(t, 1)
	df, _ := s.SQL("SELECT id, name FROM emp ORDER BY id LIMIT 2")
	var sb strings.Builder
	if err := df.Show(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "id") || !strings.Contains(out, "ann") {
		t.Fatalf("show output wrong:\n%s", out)
	}
}

func TestSQLErrors(t *testing.T) {
	s := newTestSession(t, 1)
	for _, bad := range []string{
		"SELECT missing_col FROM emp",
		"SELECT * FROM missing_table",
		"SELECT unknown_fn(id) FROM emp",
		"SELECT id FROM emp WHERE count(*) > 1",
		"SELECT id GROUP FROM emp",
	} {
		df, err := s.SQL(bad)
		if err == nil {
			_, err = df.Collect()
		}
		if err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestUDFThroughSQL(t *testing.T) {
	s := newTestSession(t, 1)
	s.Registry().RegisterScalar(&functionsScalarDouble)
	expect(t, q(t, s, "SELECT double_it(id) FROM emp WHERE id <= 2 ORDER BY 1"),
		[]string{"2", "4"}, true)
}
