package core

import (
	"context"
	"fmt"
	"io"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/exec"
	"gofusion/internal/logical"
	"gofusion/internal/memory"
	"gofusion/internal/physical"
)

// DataFrame is a lazy query: a logical plan plus the session that will
// optimize and run it (paper Section 5.3.3, modeled after pandas). All
// transformation methods return new frames; execution happens at Collect.
type DataFrame struct {
	session *SessionContext
	plan    logical.Plan
	err     error
	// resultKey, when non-empty, makes Collect consult the session's
	// result cache (set only by SessionContext.SQL for plain queries —
	// derived frames drop it, since transformations change the result).
	resultKey string
	// preOptimized marks plan as already optimized (a plan-cache entry):
	// execution skips the optimizer and lowers directly. Derived frames
	// drop it, since transformations build new unoptimized nodes on top.
	preOptimized bool
}

// LogicalPlan returns the frame's (unoptimized) logical plan.
func (df *DataFrame) LogicalPlan() logical.Plan { return df.plan }

// Err returns the first deferred construction error.
func (df *DataFrame) Err() error { return df.err }

// Schema returns the output schema.
func (df *DataFrame) Schema() *logical.Schema {
	if df.plan == nil {
		return logical.NewSchema()
	}
	return df.plan.Schema()
}

func (df *DataFrame) derive(plan logical.Plan, err error) *DataFrame {
	if df.err != nil {
		return df
	}
	if err != nil {
		return &DataFrame{session: df.session, err: err}
	}
	return &DataFrame{session: df.session, plan: plan}
}

// Select projects expressions (strings are parsed as column names).
func (df *DataFrame) Select(exprs ...logical.Expr) *DataFrame {
	if df.err != nil {
		return df
	}
	p, err := logical.NewProjection(df.plan, exprs, df.session.reg)
	return df.derive(p, err)
}

// SelectColumns projects named columns.
func (df *DataFrame) SelectColumns(names ...string) *DataFrame {
	exprs := make([]logical.Expr, len(names))
	for i, n := range names {
		exprs[i] = logical.Col(n)
	}
	return df.Select(exprs...)
}

// Filter keeps rows matching the predicate.
func (df *DataFrame) Filter(pred logical.Expr) *DataFrame {
	if df.err != nil {
		return df
	}
	return df.derive(&logical.Filter{Input: df.plan, Predicate: pred}, nil)
}

// Aggregate groups and aggregates.
func (df *DataFrame) Aggregate(groups []logical.Expr, aggs []logical.Expr) *DataFrame {
	if df.err != nil {
		return df
	}
	p, err := logical.NewAggregate(df.plan, groups, aggs, df.session.reg)
	return df.derive(p, err)
}

// Sort orders the output.
func (df *DataFrame) Sort(keys ...logical.SortExpr) *DataFrame {
	if df.err != nil {
		return df
	}
	return df.derive(&logical.Sort{Input: df.plan, Keys: keys, Fetch: -1}, nil)
}

// Limit applies skip/fetch.
func (df *DataFrame) Limit(skip, fetch int64) *DataFrame {
	if df.err != nil {
		return df
	}
	return df.derive(&logical.Limit{Input: df.plan, Skip: skip, Fetch: fetch}, nil)
}

// Join joins with another frame.
func (df *DataFrame) Join(right *DataFrame, jt logical.JoinType, on []logical.EquiPair, filter logical.Expr) *DataFrame {
	if df.err != nil {
		return df
	}
	if right.err != nil {
		return right
	}
	return df.derive(logical.NewJoin(df.plan, right.plan, jt, on, filter), nil)
}

// Union appends another frame's rows.
func (df *DataFrame) Union(other *DataFrame, all bool) *DataFrame {
	if df.err != nil {
		return df
	}
	if other.err != nil {
		return other
	}
	plan, err := logical.FromPlan(df.plan, df.session.reg).Union(other.plan, all).Build()
	return df.derive(plan, err)
}

// Distinct removes duplicate rows.
func (df *DataFrame) Distinct() *DataFrame {
	if df.err != nil {
		return df
	}
	return df.derive(&logical.Distinct{Input: df.plan}, nil)
}

// Window appends window expressions.
func (df *DataFrame) Window(exprs ...logical.Expr) *DataFrame {
	if df.err != nil {
		return df
	}
	p, err := logical.NewWindow(df.plan, exprs, df.session.reg)
	return df.derive(p, err)
}

// Alias renames the frame's relation.
func (df *DataFrame) Alias(name string) *DataFrame {
	if df.err != nil {
		return df
	}
	return df.derive(logical.NewSubqueryAlias(df.plan, name), nil)
}

// Collect executes the frame and returns all batches. Queries entered
// through SQL() on a session with the result cache enabled are memoized:
// a repeat of the identical normalized query under an unchanged catalog
// returns the cached batches (immutable shared views) without planning
// or executing.
func (df *DataFrame) Collect() ([]*arrow.RecordBatch, error) {
	return df.CollectContext(context.Background())
}

// CollectContext is Collect under a caller context: cancelling ctx (or
// its deadline passing) aborts execution, unwinding operators and
// releasing the per-query runtime. The service layer uses it to enforce
// per-request timeouts and to stop work for disconnected clients. The
// result and plan caches participate exactly like in Collect.
func (df *DataFrame) CollectContext(ctx context.Context) ([]*arrow.RecordBatch, error) {
	if df.err != nil {
		return nil, df.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rc := df.session.results
	var version int64
	if df.resultKey != "" && rc != nil {
		version = df.session.catalog.Version()
		if batches, ok := rc.get(df.resultKey, version); ok {
			return batches, nil
		}
	}
	pp, err := df.session.physicalPlanFor(df)
	if err != nil {
		return nil, err
	}
	ectx, cleanup := df.session.newExecContext()
	defer cleanup()
	ectx.Ctx = ctx
	batches, err := exec.CollectPlan(ectx, pp)
	if err != nil {
		return nil, err
	}
	if df.resultKey != "" && rc != nil {
		rc.put(df.resultKey, version, batches)
	}
	return batches, nil
}

// QueryMetrics summarizes one executed query: the executed physical plan
// (whose operators carry per-operator MetricsSets, renderable with
// exec.ExplainAnalyze), the memory-pool high-water mark, and the
// metadata-cache activity attributable to this query (paper Sections 5.5
// and 7.4).
type QueryMetrics struct {
	// Plan is the executed physical plan; its operators retain their
	// runtime metrics after execution.
	Plan physical.ExecutionPlan
	// RowsReturned is the total row count handed back to the caller.
	RowsReturned int64
	// PoolReservedPeak is the query memory pool's high-water mark in
	// bytes (tracked reservations only).
	PoolReservedPeak int64
	// Cache hit/miss deltas recorded between planning start and
	// execution end (listings = directory LIST cache, meta = per-file
	// metadata cache).
	ListingHits, ListingMisses int64
	MetaHits, MetaMisses       int64
	// Shared decoded-page cache deltas attributable to this query, plus
	// the cache's current residency after it (zero when disabled).
	PageCacheHits, PageCacheMisses int64
	PageCacheEvictions             int64
	PageCacheBytes                 int64
	// Result cache activity: lookup/store deltas and whether this
	// execution was served wholly from the result cache.
	ResultCacheHits, ResultCacheMisses int64
	ResultCacheBytes                   int64
	ResultCacheHit                     bool
}

// CollectWithMetrics executes the frame and returns the batches together
// with the query's runtime metrics. The result cache participates like
// in Collect: on a hit the returned plan is the planned-but-not-executed
// physical plan (its operator metrics stay zero) and ResultCacheHit is
// set.
func (df *DataFrame) CollectWithMetrics() ([]*arrow.RecordBatch, *QueryMetrics, error) {
	return df.CollectWithMetricsContext(context.Background())
}

// CollectWithMetricsContext is CollectWithMetrics under a caller context
// (see CollectContext); the service layer's per-request accounting and
// /stats endpoint reuse this plumbing.
func (df *DataFrame) CollectWithMetricsContext(ctx context.Context) ([]*arrow.RecordBatch, *QueryMetrics, error) {
	if df.err != nil {
		return nil, nil, df.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	s := df.session
	cm := s.cache
	lh0, lm0 := cm.Listings().Stats()
	mh0, mm0 := cm.FileMeta().Stats()
	var pc0, rc0 memory.SizedStats
	if s.pages != nil {
		pc0 = s.pages.Stats()
	}
	if s.results != nil {
		rc0 = s.results.stats()
	}
	qm := &QueryMetrics{}
	finish := func(batches []*arrow.RecordBatch) ([]*arrow.RecordBatch, *QueryMetrics, error) {
		for _, b := range batches {
			qm.RowsReturned += int64(b.NumRows())
		}
		lh1, lm1 := cm.Listings().Stats()
		mh1, mm1 := cm.FileMeta().Stats()
		qm.ListingHits, qm.ListingMisses = lh1-lh0, lm1-lm0
		qm.MetaHits, qm.MetaMisses = mh1-mh0, mm1-mm0
		if s.pages != nil {
			pc1 := s.pages.Stats()
			qm.PageCacheHits = pc1.Hits - pc0.Hits
			qm.PageCacheMisses = pc1.Misses - pc0.Misses
			qm.PageCacheEvictions = pc1.Evictions - pc0.Evictions
			qm.PageCacheBytes = pc1.Bytes
		}
		if s.results != nil {
			rc1 := s.results.stats()
			qm.ResultCacheHits = rc1.Hits - rc0.Hits
			qm.ResultCacheMisses = rc1.Misses - rc0.Misses
			qm.ResultCacheBytes = rc1.Bytes
		}
		return batches, qm, nil
	}

	rc := s.results
	var version int64
	if df.resultKey != "" && rc != nil {
		version = s.catalog.Version()
		if batches, ok := rc.get(df.resultKey, version); ok {
			pp, err := s.physicalPlanFor(df)
			if err != nil {
				return nil, nil, err
			}
			qm.Plan = pp
			qm.ResultCacheHit = true
			return finish(batches)
		}
	}
	pp, err := s.physicalPlanFor(df)
	if err != nil {
		return nil, nil, err
	}
	ectx, cleanup := s.newExecContext()
	defer cleanup()
	ectx.Ctx = ctx
	batches, err := exec.CollectPlan(ectx, pp)
	if err != nil {
		return nil, nil, err
	}
	if df.resultKey != "" && rc != nil {
		rc.put(df.resultKey, version, batches)
	}
	qm.Plan = pp
	qm.PoolReservedPeak = ectx.Pool.ReservedPeak()
	return finish(batches)
}

// ExplainAnalyze executes the query to completion and renders the
// physical plan annotated with each operator's runtime metrics, followed
// by a query-level summary (memory-pool peak and metadata-cache hits).
func (df *DataFrame) ExplainAnalyze() (string, error) {
	_, qm, err := df.CollectWithMetrics()
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("== Physical Plan (EXPLAIN ANALYZE) ==\n")
	sb.WriteString(exec.ExplainAnalyze(qm.Plan))
	sb.WriteString("== Query Summary ==\n")
	fmt.Fprintf(&sb, "rows_returned=%d, pool_reserved_peak=%d\n", qm.RowsReturned, qm.PoolReservedPeak)
	fmt.Fprintf(&sb, "cache: listings hits=%d misses=%d, file_meta hits=%d misses=%d\n",
		qm.ListingHits, qm.ListingMisses, qm.MetaHits, qm.MetaMisses)
	fmt.Fprintf(&sb, "page_cache: hits=%d misses=%d evictions=%d charged_bytes=%d\n",
		qm.PageCacheHits, qm.PageCacheMisses, qm.PageCacheEvictions, qm.PageCacheBytes)
	if df.session.results != nil {
		fmt.Fprintf(&sb, "result_cache: hit=%t hits=%d misses=%d charged_bytes=%d\n",
			qm.ResultCacheHit, qm.ResultCacheHits, qm.ResultCacheMisses, qm.ResultCacheBytes)
	}
	return sb.String(), nil
}

// CollectBatch executes and concatenates the result into a single batch.
func (df *DataFrame) CollectBatch() (*arrow.RecordBatch, error) {
	batches, err := df.Collect()
	if err != nil {
		return nil, err
	}
	return compute.ConcatBatches(df.Schema().ToArrow(), batches)
}

// Count executes and returns the output row count.
func (df *DataFrame) Count() (int64, error) {
	batches, err := df.Collect()
	if err != nil {
		return 0, err
	}
	var n int64
	for _, b := range batches {
		n += int64(b.NumRows())
	}
	return n, nil
}

// Explain renders logical, optimized, and physical plans. Frames carrying
// a plan-cache hit hold only the optimized plan, which then fills both
// logical sections.
func (df *DataFrame) Explain() (string, error) {
	if df.err != nil {
		return "", df.err
	}
	var sb strings.Builder
	sb.WriteString("== Logical Plan ==\n")
	sb.WriteString(logical.Explain(df.plan))
	optimized := df.plan
	if !df.preOptimized {
		var err error
		optimized, err = df.session.OptimizePlan(df.plan)
		if err != nil {
			return "", fmt.Errorf("optimizing: %w", err)
		}
	}
	sb.WriteString("== Optimized Plan ==\n")
	sb.WriteString(logical.Explain(optimized))
	pp, err := df.session.lowerPlan(optimized)
	if err != nil {
		return "", fmt.Errorf("physical planning: %w", err)
	}
	sb.WriteString("== Physical Plan ==\n")
	sb.WriteString(exec.ExplainPhysical(pp))
	return sb.String(), nil
}

// Show writes a formatted table of results (up to maxRows) to w.
func (df *DataFrame) Show(w io.Writer, maxRows int) error {
	batch, err := df.CollectBatch()
	if err != nil {
		return err
	}
	return FormatBatch(w, batch, maxRows)
}

// FormatBatch renders a record batch as an aligned text table.
func FormatBatch(w io.Writer, batch *arrow.RecordBatch, maxRows int) error {
	if maxRows <= 0 || maxRows > batch.NumRows() {
		maxRows = batch.NumRows()
	}
	ncols := batch.NumCols()
	headers := make([]string, ncols)
	widths := make([]int, ncols)
	for c := 0; c < ncols; c++ {
		headers[c] = batch.Schema().Field(c).Name
		widths[c] = len(headers[c])
	}
	cells := make([][]string, maxRows)
	for r := 0; r < maxRows; r++ {
		cells[r] = make([]string, ncols)
		for c := 0; c < ncols; c++ {
			v := "NULL"
			if batch.Column(c).IsValid(r) {
				v = compute.ScalarToDisplay(batch.Column(c).GetScalar(r))
			}
			cells[r][c] = v
			if len(v) > widths[c] {
				widths[c] = len(v)
			}
		}
	}
	line := func(parts []string) string {
		out := make([]string, ncols)
		for c, p := range parts {
			out[c] = fmt.Sprintf("%-*s", widths[c], p)
		}
		return "| " + strings.Join(out, " | ") + " |"
	}
	sep := make([]string, ncols)
	for c := range sep {
		sep[c] = strings.Repeat("-", widths[c])
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for r := 0; r < maxRows; r++ {
		if _, err := fmt.Fprintln(w, line(cells[r])); err != nil {
			return err
		}
	}
	if maxRows < batch.NumRows() {
		fmt.Fprintf(w, "... %d more rows\n", batch.NumRows()-maxRows)
	}
	return nil
}
