package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gofusion/internal/arrow"
)

// renderBatchRows renders a batch the same way the q helper does.
func renderBatchRows(batch *arrow.RecordBatch) []string {
	out := make([]string, batch.NumRows())
	for i := range out {
		var parts []string
		for c := 0; c < batch.NumCols(); c++ {
			parts = append(parts, batch.Column(c).GetScalar(i).String())
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// newPlanCachingSession is newTestSession with the plan cache enabled.
func newPlanCachingSession(t *testing.T) *SessionContext {
	t.Helper()
	base := newTestSession(t, 2)
	t.Cleanup(base.Close)
	cfg := base.Config()
	cfg.EnablePlanCache = true
	s := base.WithConfig(cfg)
	t.Cleanup(s.Close)
	return s
}

func planStats(t *testing.T, s *SessionContext) PlanCacheStats {
	t.Helper()
	st, ok := s.PlanCacheStats()
	if !ok {
		t.Fatal("plan cache should be enabled on this session")
	}
	return st
}

func TestPlanCacheRepeatedQueryHits(t *testing.T) {
	s := newPlanCachingSession(t)
	const query = "SELECT name, salary FROM emp WHERE salary > 150 ORDER BY name"

	rows1 := q(t, s, query)
	st := planStats(t, s)
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("cold run stats = %+v, want 1 miss 0 hits", st)
	}
	rows2 := q(t, s, query)
	st = planStats(t, s)
	if st.Hits != 1 {
		t.Fatalf("warm run stats = %+v, want 1 hit", st)
	}
	// Cached-plan execution must match the fresh plan's rows exactly.
	expect(t, rows2, rows1, true)

	// A different query text is its own entry.
	q(t, s, "SELECT name FROM emp WHERE salary > 200 ORDER BY name")
	st = planStats(t, s)
	if st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("distinct query stats = %+v, want 2 misses 2 entries", st)
	}
}

func TestPlanCacheDisabledByDefault(t *testing.T) {
	s := newTestSession(t, 2)
	defer s.Close()
	q(t, s, "SELECT count(*) FROM emp")
	if _, ok := s.PlanCacheStats(); ok {
		t.Fatal("plan cache active without EnablePlanCache")
	}
}

func TestPlanCacheCachedPlanReExecutes(t *testing.T) {
	// A cached plan must be executable any number of times: physical
	// lowering reruns per execution, so one-shot scan state is rebuilt.
	s := newPlanCachingSession(t)
	const query = "SELECT dname, count(*) FROM emp JOIN dept ON dept_id = did GROUP BY dname ORDER BY dname"
	want := q(t, s, query)
	for i := 0; i < 3; i++ {
		expect(t, q(t, s, query), want, true)
	}
	if st := planStats(t, s); st.Hits != 3 {
		t.Fatalf("stats = %+v, want 3 hits", st)
	}
}

func TestPlanCacheInvalidatedByDDL(t *testing.T) {
	s := newPlanCachingSession(t)
	const query = "SELECT count(*) FROM emp"

	expect(t, q(t, s, query), []string{"6"}, true)
	q(t, s, query)
	if st := planStats(t, s); st.Hits != 1 {
		t.Fatalf("warm stats = %+v, want 1 hit before DDL", st)
	}

	// CREATE TABLE bumps the catalog version; the cached plan's provider
	// snapshot is stale and the lookup must re-plan.
	if _, err := s.SQL("CREATE TABLE high_paid AS SELECT name FROM emp WHERE salary > 150"); err != nil {
		t.Fatal(err)
	}
	expect(t, q(t, s, query), []string{"6"}, true)
	st := planStats(t, s)
	if st.Invalidations != 1 {
		t.Fatalf("post-DDL stats = %+v, want 1 invalidation", st)
	}
	if st.Hits != 1 {
		t.Fatalf("post-DDL stats = %+v, want no new hits", st)
	}
}

func TestPlanCacheInvalidatedByInsert(t *testing.T) {
	s := newPlanCachingSession(t)
	const query = "SELECT count(*) FROM emp"

	expect(t, q(t, s, query), []string{"6"}, true)
	q(t, s, query)

	if _, err := s.SQL("INSERT INTO emp SELECT * FROM emp WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	// The stale plan would still scan the pre-INSERT table snapshot; the
	// invalidated re-plan must observe the appended row.
	expect(t, q(t, s, query), []string{"7"}, true)
	if st := planStats(t, s); st.Invalidations != 1 {
		t.Fatalf("post-INSERT stats = %+v, want 1 invalidation", st)
	}

	// The re-planned entry is warm again.
	expect(t, q(t, s, query), []string{"7"}, true)
	if st := planStats(t, s); st.Hits != 2 {
		t.Fatalf("rerun stats = %+v, want 2 hits", st)
	}
}

func TestPlanCacheInvalidatedByCopy(t *testing.T) {
	s := newPlanCachingSession(t)
	const query = "SELECT count(*) FROM emp"

	expect(t, q(t, s, query), []string{"6"}, true)
	q(t, s, query)

	dir := t.TempDir()
	path := filepath.Join(dir, "extra.csv")
	csv := "id,name,dept_id,salary,hired\n7,gus,10,175.0,2023-04-01\n8,hal,20,225.0,2023-05-01\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.SQL(fmt.Sprintf("COPY INTO emp FROM '%s' FORMAT csv", path)); err != nil {
		t.Fatal(err)
	}
	expect(t, q(t, s, query), []string{"8"}, true)
	if st := planStats(t, s); st.Invalidations != 1 {
		t.Fatalf("post-COPY stats = %+v, want 1 invalidation", st)
	}
}

func TestPreparedStatementReusesPlan(t *testing.T) {
	s := newPlanCachingSession(t)
	ps, err := s.Prepare("SELECT name FROM emp WHERE salary > 150 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	var first []string
	for i := 0; i < 3; i++ {
		df, err := ps.Query()
		if err != nil {
			t.Fatal(err)
		}
		batch, err := df.CollectBatch()
		if err != nil {
			t.Fatal(err)
		}
		rows := renderBatchRows(batch)
		if i == 0 {
			first = rows
			expect(t, rows, []string{`"bob"`, `"dan"`, `"eve"`}, true)
		} else {
			expect(t, rows, first, true)
		}
	}
	if st := planStats(t, s); st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("prepared stats = %+v, want 1 miss then 2 hits", st)
	}
}

func TestPreparedStatementRejectsNonQuery(t *testing.T) {
	s := newTestSession(t, 1)
	defer s.Close()
	if _, err := s.Prepare("INSERT INTO emp SELECT * FROM emp"); err == nil {
		t.Fatal("Prepare accepted a write statement")
	}
	if _, err := s.Prepare("SELECT FROM nonsense WHERE"); err == nil {
		t.Fatal("Prepare accepted an unparsable statement")
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	base := newTestSession(t, 1)
	t.Cleanup(base.Close)
	cfg := base.Config()
	cfg.EnablePlanCache = true
	cfg.PlanCacheEntries = 2
	s := base.WithConfig(cfg)
	t.Cleanup(s.Close)

	for _, id := range []int{1, 2, 3} {
		q(t, s, fmt.Sprintf("SELECT name FROM emp WHERE id = %d", id))
	}
	st := planStats(t, s)
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", st.Entries)
	}
	// id=1 was evicted (least recently used): rerunning it misses.
	q(t, s, "SELECT name FROM emp WHERE id = 1")
	if st := planStats(t, s); st.Hits != 0 || st.Misses != 4 {
		t.Fatalf("post-eviction stats = %+v, want 4 misses 0 hits", st)
	}
	// id=3 is still resident.
	q(t, s, "SELECT name FROM emp WHERE id = 3")
	if st := planStats(t, s); st.Hits != 1 {
		t.Fatalf("resident rerun stats = %+v, want 1 hit", st)
	}
}
