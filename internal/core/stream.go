package core

import (
	"context"

	"gofusion/internal/arrow"
	"gofusion/internal/exec"
	"gofusion/internal/physical"
)

// QueryStream is a live pull-based query result: batches arrive as the
// sources produce them, which for unbounded (tailing) sources means Next
// blocks awaiting data instead of ending. Close cancels the query context
// — unblocking any tail read — and releases the per-query runtime; it is
// idempotent and must be called exactly once when done. Collect-style
// execution and the result cache are bypassed: a live stream's output is
// not a cacheable value.
type QueryStream struct {
	stream  physical.Stream
	cancel  context.CancelFunc
	cleanup func()
	closed  bool
}

// Schema returns the result schema.
func (qs *QueryStream) Schema() *arrow.Schema { return qs.stream.Schema() }

// Next returns the next batch; io.EOF after the last one (for unbounded
// sources: only after every source seals), or the context error when the
// query is cancelled.
func (qs *QueryStream) Next() (*arrow.RecordBatch, error) { return qs.stream.Next() }

// Close cancels the query and releases its runtime.
func (qs *QueryStream) Close() {
	if qs.closed {
		return
	}
	qs.closed = true
	qs.stream.Close()
	qs.cancel()
	qs.cleanup()
}

// Execute starts the frame as a live stream under the given context:
// the incremental counterpart to Collect for streaming queries. Multiple
// output partitions are merged into one stream. Cancelling ctx (or calling
// Close) unblocks tail reads waiting on live sources.
func (df *DataFrame) Execute(ctx context.Context) (*QueryStream, error) {
	if df.err != nil {
		return nil, df.err
	}
	pp, err := df.session.physicalPlanFor(df)
	if err != nil {
		return nil, err
	}
	if pp.Partitions() > 1 {
		pp = &exec.CoalescePartitionsExec{Input: pp}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ectx, cleanup := df.session.newExecContext()
	qctx, cancel := context.WithCancel(ctx)
	ectx.Ctx = qctx
	s, err := pp.Execute(ectx, 0)
	if err != nil {
		cancel()
		cleanup()
		return nil, err
	}
	return &QueryStream{stream: s, cancel: cancel, cleanup: cleanup}, nil
}
