package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/csvio"
	"gofusion/internal/jsonio"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
	"gofusion/internal/testutil"
)

// streamSchema is the two-column shape used by the streaming tests:
// a payload column and an event-time column.
func streamSchema() *arrow.Schema {
	return arrow.NewSchema(
		arrow.NewField("a", arrow.Int64, false),
		arrow.NewField("e", arrow.Int64, false),
	)
}

func int64Batch(schema *arrow.Schema, cols ...[]int64) *arrow.RecordBatch {
	arrs := make([]arrow.Array, len(cols))
	for i, c := range cols {
		arrs[i] = arrow.NewInt64(c)
	}
	return arrow.NewRecordBatch(schema, arrs)
}

func int64Col(t *testing.T, b *arrow.RecordBatch, col int) []int64 {
	t.Helper()
	out := make([]int64, b.NumRows())
	arr := b.Column(col)
	for i := range out {
		out[i] = arr.GetScalar(i).AsInt64()
	}
	return out
}

// TestStreamingBreakers: every full-pipeline-blocking operator must be
// rejected at plan time over an unbounded source, with an error that
// names the operator and says how to fix the query. One regression case
// per breaker.
func TestStreamingBreakers(t *testing.T) {
	s := NewSession(SessionConfig{TargetPartitions: 2})
	defer s.Close()
	if _, err := s.RegisterStream("live", streamSchema(), "e"); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterBatches("dim", arrow.NewSchema(arrow.NewField("x", arrow.Int64, false)),
		[]*arrow.RecordBatch{int64Batch(arrow.NewSchema(arrow.NewField("x", arrow.Int64, false)), []int64{1, 2})}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, sql, op string
	}{
		{"sort", "SELECT a FROM live ORDER BY a", "ExternalSortExec"},
		{"topk", "SELECT a FROM live ORDER BY a LIMIT 5", "TopKExec"},
		{"global-agg", "SELECT sum(a) AS s FROM live", "HashAggregateExec"},
		{"non-watermark-group", "SELECT a, count(*) AS c FROM live GROUP BY a", "HashAggregateExec"},
		{"distinct-no-watermark", "SELECT DISTINCT a FROM live", "HashAggregateExec"},
		{"outer-join-on-stream", "SELECT a, x FROM live LEFT JOIN dim ON a = x", "HashJoinExec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			df, err := s.SQL(tc.sql)
			if err != nil {
				t.Fatalf("parse/plan: %v", err)
			}
			_, err = df.Collect()
			if err == nil {
				t.Fatalf("%s executed over an unbounded source", tc.sql)
			}
			if !strings.Contains(err.Error(), tc.op) ||
				!strings.Contains(err.Error(), "cannot run over an unbounded input") {
				t.Fatalf("breaker error should name %s and the unbounded input, got: %v", tc.op, err)
			}
			// Execute must reject the same plan: a live stream handle is the
			// usual consumer of these queries.
			if _, err := df.Execute(context.Background()); err == nil ||
				!strings.Contains(err.Error(), tc.op) {
				t.Fatalf("Execute accepted a plan Collect rejected: %v", err)
			}
		})
	}

	// Window functions have no SQL surface yet; break through the frame API.
	df, err := s.Table("live")
	if err != nil {
		t.Fatal(err)
	}
	df = df.Window(&logical.Alias{E: &logical.WindowFunc{Name: "row_number"}, Name: "rn"})
	if _, err := df.Collect(); err == nil || !strings.Contains(err.Error(), "WindowExec") {
		t.Fatalf("window over unbounded input not rejected: %v", err)
	}
}

// TestStreamingLimitBoundsTail: LIMIT cuts an unbounded scan into a
// bounded query, so it must plan and finish once enough rows exist.
func TestStreamingLimitBoundsTail(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	st, err := s.RegisterStream("live", streamSchema(), "e")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(int64Batch(streamSchema(), []int64{1, 2, 3, 4, 5, 6, 7}, []int64{1, 2, 3, 4, 5, 6, 7})); err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT a FROM live LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	bs, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, b := range bs {
		rows += b.NumRows()
	}
	if rows != 5 {
		t.Fatalf("LIMIT 5 over live stream returned %d rows", rows)
	}
}

// TestWatermarkAggEarlyEmit: the streaming aggregate must emit a bucket as
// soon as the watermark passes it — before the source seals — and flush
// the rest at seal, in event-time order.
func TestWatermarkAggEarlyEmit(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	st, err := s.RegisterStream("live", streamSchema(), "e")
	if err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT e, count(*) AS c FROM live GROUP BY e")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := df.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()

	// Watermark reaches 2: bucket e=1 is ripe and must emit now.
	if err := st.Append(int64Batch(streamSchema(), []int64{10, 11, 12}, []int64{1, 1, 2})); err != nil {
		t.Fatal(err)
	}
	b, err := qs.Next()
	if err == io.EOF {
		t.Fatal("stream ended before the first watermark emission")
	} else if err != nil {
		t.Fatal(err)
	}
	if es, cs := int64Col(t, b, 0), int64Col(t, b, 1); len(es) != 1 || es[0] != 1 || cs[0] != 2 {
		t.Fatalf("first emit: e=%v c=%v, want e=[1] c=[2]", es, cs)
	}

	// Watermark jumps to 5: bucket e=2 closes without any new rows in it.
	if err := st.Append(int64Batch(streamSchema(), []int64{13}, []int64{5})); err != nil {
		t.Fatal(err)
	}
	b, err = qs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if es, cs := int64Col(t, b, 0), int64Col(t, b, 1); len(es) != 1 || es[0] != 2 || cs[0] != 1 {
		t.Fatalf("second emit: e=%v c=%v, want e=[2] c=[1]", es, cs)
	}

	// Seal: the open e=5 bucket flushes, then the stream ends.
	st.Seal()
	b, err = qs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if es, cs := int64Col(t, b, 0), int64Col(t, b, 1); len(es) != 1 || es[0] != 5 || cs[0] != 1 {
		t.Fatalf("flush: e=%v c=%v, want e=[5] c=[1]", es, cs)
	}
	if _, err := qs.Next(); err != io.EOF {
		t.Fatalf("want EOF after flush, got %v", err)
	}
}

// TestWatermarkLateness: a lateness allowance holds buckets open past the
// watermark so late rows still land in their bucket.
func TestWatermarkLateness(t *testing.T) {
	s := NewSession(SessionConfig{WatermarkLateness: 3})
	defer s.Close()
	st, err := s.RegisterStream("live", streamSchema(), "e")
	if err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT e, count(*) AS c FROM live GROUP BY e")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := df.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()

	// Watermark 5 with lateness 3 closes only buckets below 2.
	if err := st.Append(int64Batch(streamSchema(), []int64{10, 11, 12}, []int64{1, 1, 2})); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(int64Batch(streamSchema(), []int64{13}, []int64{5})); err != nil {
		t.Fatal(err)
	}
	b, err := qs.Next()
	if err == io.EOF {
		t.Fatal("stream ended before the lateness-bounded emission")
	} else if err != nil {
		t.Fatal(err)
	}
	if es := int64Col(t, b, 0); len(es) != 1 || es[0] != 1 {
		t.Fatalf("lateness window emitted %v, want [1]", es)
	}
	// A late row for e=2 is still accepted (2 >= watermark-lateness).
	if err := st.Append(int64Batch(streamSchema(), []int64{14}, []int64{2})); err != nil {
		t.Fatal(err)
	}
	st.Seal()
	var got [][2]int64
	for {
		b, err := qs.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		es, cs := int64Col(t, b, 0), int64Col(t, b, 1)
		for i := range es {
			got = append(got, [2]int64{es[i], cs[i]})
		}
	}
	want := [][2]int64{{2, 2}, {5, 1}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("post-seal flush: %v, want %v", got, want)
	}
}

// TestStreamingSymmetricJoin: two live streams route onto the symmetric
// hash join and emit matches before either side seals.
func TestStreamingSymmetricJoin(t *testing.T) {
	s := NewSession(SessionConfig{TargetPartitions: 2})
	defer s.Close()
	lsch := streamSchema()
	rsch := arrow.NewSchema(arrow.NewField("x", arrow.Int64, false))
	l, err := s.RegisterStream("l", lsch, "e")
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.RegisterStream("r", rsch, "")
	if err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT a, x FROM l JOIN r ON a = x")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "SymmetricHashJoinExec") {
		t.Fatalf("two live inputs should use the symmetric join:\n%s", plan)
	}
	qs, err := df.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	if err := l.Append(int64Batch(lsch, []int64{1, 2, 3}, []int64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if err := r.Append(int64Batch(rsch, []int64{2, 3, 4})); err != nil {
		t.Fatal(err)
	}
	// Matches {2,3} must surface while both sides are still live.
	matched := map[int64]bool{}
	for len(matched) < 2 {
		b, err := qs.Next()
		if err == io.EOF {
			t.Fatalf("join ended before both matches surfaced (got %v)", matched)
		} else if err != nil {
			t.Fatalf("pre-seal matches: %v (got %v)", err, matched)
		}
		for _, v := range int64Col(t, b, 0) {
			matched[v] = true
		}
	}
	if !matched[2] || !matched[3] {
		t.Fatalf("matched %v, want {2,3}", matched)
	}
	l.Seal()
	r.Seal()
	for {
		if _, err := qs.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamingProbeJoin: a bounded build side with a live probe side
// stays on the regular hash join and streams probe matches as they
// arrive.
func TestStreamingProbeJoin(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	dsch := arrow.NewSchema(arrow.NewField("x", arrow.Int64, false))
	if err := s.RegisterBatches("dim", dsch, []*arrow.RecordBatch{int64Batch(dsch, []int64{2, 3})}); err != nil {
		t.Fatal(err)
	}
	st, err := s.RegisterStream("live", streamSchema(), "e")
	if err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT x, a FROM dim JOIN live ON x = a")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "HashJoinExec") || strings.Contains(plan, "Symmetric") {
		t.Fatalf("bounded build + live probe should use the plain hash join:\n%s", plan)
	}
	qs, err := df.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	if err := st.Append(int64Batch(streamSchema(), []int64{1, 2, 3}, []int64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	b, err := qs.Next()
	if err == io.EOF {
		t.Fatal("live probe ended before emitting matches")
	} else if err != nil {
		t.Fatal(err)
	}
	if got := int64Col(t, b, 0); len(got) != 2 {
		t.Fatalf("probe matches %v, want two", got)
	}
}

// TestStreamingCancelUnblocks: cancelling the query context must unblock
// a tail read waiting on a quiet source.
func TestStreamingCancelUnblocks(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	s := NewSession(SessionConfig{})
	defer s.Close()
	if _, err := s.RegisterStream("live", streamSchema(), "e"); err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT a FROM live WHERE a > 0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	qs, err := df.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := qs.Next(); err == nil || err == io.EOF {
		t.Fatalf("blocked tail read returned %v after cancel, want context error", err)
	}
	qs.Close()
}

// TestTailingJSONFile: an NDJSON file appended by an external writer is
// an unbounded source; the scan yields rows as they land and ends at the
// seal marker.
func TestTailingJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.ndjson")
	if err := os.WriteFile(path, []byte("{\"a\":1,\"e\":1}\n{\"a\":2,\"e\":2}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewSession(SessionConfig{})
	defer s.Close()
	if _, err := s.RegisterTailingJSON("tailed", path, streamSchema(), "e", 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT a, e FROM tailed WHERE e >= 0")
	if err != nil {
		t.Fatal(err)
	}
	qs, err := df.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer qs.Close()
	b, err := qs.Next()
	if err == io.EOF {
		t.Fatal("tail ended before serving the initial rows")
	} else if err != nil {
		t.Fatal(err)
	}
	if got := int64Col(t, b, 0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("initial rows %v, want [1 2]", got)
	}
	// External append: complete lines become visible; the trailing partial
	// line must be withheld until its newline arrives.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"a\":3,\"e\":3}\n{\"a\":4,"); err != nil {
		t.Fatal(err)
	}
	b, err = qs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := int64Col(t, b, 0); len(got) != 1 || got[0] != 3 {
		t.Fatalf("appended rows %v, want [3]", got)
	}
	if _, err := f.WriteString("\"e\":4}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	b, err = qs.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got := int64Col(t, b, 0); len(got) != 1 || got[0] != 4 {
		t.Fatalf("completed row %v, want [4]", got)
	}
	if err := os.WriteFile(catalog.SealMarker(path), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := qs.Next(); err != io.EOF {
		t.Fatalf("want EOF after seal marker, got %v", err)
	}
}

// TestCopyIntoFormats: COPY INTO bulk-loads every supported format into
// an existing table through the SQL surface. The gpq case is the
// regression for COPY reading zero rows when the staging scan's limit
// defaulted to 0 instead of "none".
func TestCopyIntoFormats(t *testing.T) {
	dir := t.TempDir()
	schema := streamSchema()
	seed := []*arrow.RecordBatch{int64Batch(schema, []int64{1, 2}, []int64{1, 2})}
	stage := []*arrow.RecordBatch{int64Batch(schema, []int64{3, 4, 5}, []int64{3, 4, 5})}

	gpqStage := filepath.Join(dir, "stage.gpq")
	if err := parquet.WriteFile(gpqStage, schema, stage, parquet.DefaultWriterOptions()); err != nil {
		t.Fatal(err)
	}
	csvStage := filepath.Join(dir, "stage.csv")
	if err := csvio.WriteFile(csvStage, schema, stage, ','); err != nil {
		t.Fatal(err)
	}
	jsonStage := filepath.Join(dir, "stage.ndjson")
	if err := jsonio.WriteFile(jsonStage, stage); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, sql string
	}{
		{"gpq-explicit", fmt.Sprintf("COPY INTO t FROM '%s' FORMAT gpq", gpqStage)},
		{"gpq-inferred", fmt.Sprintf("COPY INTO t FROM '%s'", gpqStage)},
		{"csv", fmt.Sprintf("COPY INTO t FROM '%s' FORMAT csv", csvStage)},
		{"json", fmt.Sprintf("COPY INTO t FROM '%s' FORMAT json", jsonStage)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewSession(SessionConfig{})
			defer s.Close()
			if err := s.RegisterBatches("t", schema, seed); err != nil {
				t.Fatal(err)
			}
			df, err := s.SQL(tc.sql)
			if err != nil {
				t.Fatal(err)
			}
			bs, err := df.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if status := bs[0].Column(0).GetScalar(0); status.String() != `"COPY 3"` && !strings.Contains(status.String(), "COPY 3") {
				t.Fatalf("status %v, want COPY 3", status)
			}
			df2, err := s.SQL("SELECT count(*) AS c, sum(a) AS s FROM t")
			if err != nil {
				t.Fatal(err)
			}
			out, err := df2.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if c := out[0].Column(0).GetScalar(0).AsInt64(); c != 5 {
				t.Fatalf("count after COPY = %d, want 5", c)
			}
			if sum := out[0].Column(1).GetScalar(0).AsInt64(); sum != 15 {
				t.Fatalf("sum after COPY = %d, want 15", sum)
			}
		})
	}
}

// TestCopyIntoGPQAppendsInPlace: COPY INTO a GPQ-backed table must grow
// the backing file in place (new row groups, rewritten footer) and the
// re-registered table must serve old and new rows.
func TestCopyIntoGPQAppendsInPlace(t *testing.T) {
	dir := t.TempDir()
	schema := streamSchema()
	base := filepath.Join(dir, "base.gpq")
	if err := parquet.WriteFile(base, schema,
		[]*arrow.RecordBatch{int64Batch(schema, []int64{1, 2}, []int64{1, 2})}, parquet.DefaultWriterOptions()); err != nil {
		t.Fatal(err)
	}
	stagePath := filepath.Join(dir, "stage.gpq")
	if err := parquet.WriteFile(stagePath, schema,
		[]*arrow.RecordBatch{int64Batch(schema, []int64{3}, []int64{3})}, parquet.DefaultWriterOptions()); err != nil {
		t.Fatal(err)
	}
	s := NewSession(SessionConfig{})
	defer s.Close()
	if err := s.RegisterGPQ("t", base); err != nil {
		t.Fatal(err)
	}
	before, err := os.Stat(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mustCollect(s, fmt.Sprintf("COPY INTO t FROM '%s'", stagePath)); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(base)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() <= before.Size() {
		t.Fatalf("backing file did not grow: %d -> %d bytes", before.Size(), after.Size())
	}
	out, err := mustCollect(s, "SELECT count(*) AS c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if c := out[0].Column(0).GetScalar(0).AsInt64(); c != 3 {
		t.Fatalf("count after in-place append = %d, want 3", c)
	}
}

func mustCollect(s *SessionContext, sql string) ([]*arrow.RecordBatch, error) {
	df, err := s.SQL(sql)
	if err != nil {
		return nil, err
	}
	return df.Collect()
}

// TestInsertBumpsCatalogVersion: every write path (INSERT into mem,
// INSERT into stream, COPY INTO gpq) must advance the catalog version so
// version-checked caches invalidate.
func TestInsertBumpsCatalogVersion(t *testing.T) {
	s := NewSession(SessionConfig{})
	defer s.Close()
	schema := streamSchema()
	if err := s.RegisterBatches("m", schema, []*arrow.RecordBatch{int64Batch(schema, []int64{1}, []int64{1})}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RegisterStream("st", schema, "e"); err != nil {
		t.Fatal(err)
	}
	v0 := s.Catalog().Version()
	if _, err := mustCollect(s, "INSERT INTO m VALUES (2, 2)"); err != nil {
		t.Fatal(err)
	}
	v1 := s.Catalog().Version()
	if v1 <= v0 {
		t.Fatalf("INSERT into mem table did not bump version (%d -> %d)", v0, v1)
	}
	if _, err := mustCollect(s, "INSERT INTO st VALUES (3, 3)"); err != nil {
		t.Fatal(err)
	}
	if v2 := s.Catalog().Version(); v2 <= v1 {
		t.Fatalf("INSERT into stream table did not bump version (%d -> %d)", v1, v2)
	}
}

// TestResultCacheInvalidationUnderInsert pins the result-cache hit/miss
// counters across append -> re-query: miss, hit, INSERT (invalidate),
// miss with fresh rows, hit again — asserted through both QueryMetrics
// and the EXPLAIN ANALYZE rendering.
func TestResultCacheInvalidationUnderInsert(t *testing.T) {
	s := NewSession(SessionConfig{EnableResultCache: true})
	defer s.Close()
	schema := streamSchema()
	if err := s.RegisterBatches("m", schema, []*arrow.RecordBatch{int64Batch(schema, []int64{1, 2}, []int64{1, 2})}); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT sum(a) AS s FROM m"

	run := func(wantHit bool, wantSum int64) {
		t.Helper()
		df, err := s.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		bs, qm, err := df.CollectWithMetrics()
		if err != nil {
			t.Fatal(err)
		}
		if qm.ResultCacheHit != wantHit {
			t.Fatalf("ResultCacheHit=%t, want %t (hits=%d misses=%d)",
				qm.ResultCacheHit, wantHit, qm.ResultCacheHits, qm.ResultCacheMisses)
		}
		if got := bs[0].Column(0).GetScalar(0).AsInt64(); got != wantSum {
			t.Fatalf("sum=%d, want %d (hit=%t)", got, wantSum, wantHit)
		}
	}

	run(false, 3) // cold: miss, computes 1+2
	run(true, 3)  // warm: served from cache
	if _, err := mustCollect(s, "INSERT INTO m VALUES (10, 3)"); err != nil {
		t.Fatal(err)
	}
	run(false, 13) // write bumped the version: stale entry unusable
	run(true, 13)  // re-cached

	// The EXPLAIN ANALYZE summary must surface the same verdict.
	df, err := s.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	text, err := df.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "result_cache: hit=true") {
		t.Fatalf("EXPLAIN ANALYZE missing result-cache hit line:\n%s", text)
	}
}

// TestPageCacheInvalidationUnderCopy pins the shared decoded-page cache
// counters across a GPQ in-place append: warm hits before, misses (new
// fingerprint) after COPY INTO rotates the file identity, and correct
// rows throughout.
func TestPageCacheInvalidationUnderCopy(t *testing.T) {
	dir := t.TempDir()
	schema := streamSchema()
	base := filepath.Join(dir, "base.gpq")
	if err := parquet.WriteFile(base, schema,
		[]*arrow.RecordBatch{int64Batch(schema, []int64{1, 2}, []int64{1, 2})}, parquet.DefaultWriterOptions()); err != nil {
		t.Fatal(err)
	}
	stagePath := filepath.Join(dir, "stage.gpq")
	if err := parquet.WriteFile(stagePath, schema,
		[]*arrow.RecordBatch{int64Batch(schema, []int64{3}, []int64{3})}, parquet.DefaultWriterOptions()); err != nil {
		t.Fatal(err)
	}
	s := NewSession(SessionConfig{})
	defer s.Close()
	if err := s.RegisterGPQ("t", base); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT sum(a) AS s FROM t WHERE e >= 0"

	run := func(wantSum int64) *QueryMetrics {
		t.Helper()
		df, err := s.SQL(q)
		if err != nil {
			t.Fatal(err)
		}
		bs, qm, err := df.CollectWithMetrics()
		if err != nil {
			t.Fatal(err)
		}
		if got := bs[0].Column(0).GetScalar(0).AsInt64(); got != wantSum {
			t.Fatalf("sum=%d, want %d", got, wantSum)
		}
		return qm
	}

	cold := run(3)
	if cold.PageCacheMisses == 0 {
		t.Fatalf("cold scan should miss the page cache (hits=%d misses=%d)",
			cold.PageCacheHits, cold.PageCacheMisses)
	}
	warm := run(3)
	if warm.PageCacheHits == 0 || warm.PageCacheMisses != 0 {
		t.Fatalf("warm scan should be all hits (hits=%d misses=%d)",
			warm.PageCacheHits, warm.PageCacheMisses)
	}
	if _, err := mustCollect(s, fmt.Sprintf("COPY INTO t FROM '%s'", stagePath)); err != nil {
		t.Fatal(err)
	}
	// The append rewrote the file: size and mtime changed, so every page
	// key rotated and the first post-append scan must re-decode.
	grown := run(6)
	if grown.PageCacheMisses == 0 {
		t.Fatalf("post-append scan served stale pages (hits=%d misses=%d)",
			grown.PageCacheHits, grown.PageCacheMisses)
	}
	rewarm := run(6)
	if rewarm.PageCacheHits == 0 || rewarm.PageCacheMisses != 0 {
		t.Fatalf("re-warmed scan should be all hits (hits=%d misses=%d)",
			rewarm.PageCacheHits, rewarm.PageCacheMisses)
	}

	df, err := s.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	text, err := df.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "page_cache: hits=") {
		t.Fatalf("EXPLAIN ANALYZE missing page-cache line:\n%s", text)
	}
}
