package memory

import (
	"container/list"
	"sync"
)

// CacheManager caches expensive-to-recompute planning inputs: directory
// listings (object store LIST calls) and per-file metadata such as
// statistics used for pruning. The metadata value type is a type
// parameter so callers get typed entries back (the engine instantiates
// it with the parquet footer type) instead of casting from any. Both
// caches are bounded LRU maps; systems with different policies
// substitute their own implementation.
type CacheManager[M any] struct {
	listings *LRU[string, []string]
	fileMeta *LRU[string, M]
}

// NewCacheManager returns a cache manager with the given per-cache entry
// capacities.
func NewCacheManager[M any](listingCap, metaCap int) *CacheManager[M] {
	return &CacheManager[M]{
		listings: NewLRU[string, []string](listingCap),
		fileMeta: NewLRU[string, M](metaCap),
	}
}

// Listings returns the directory-listing cache.
func (c *CacheManager[M]) Listings() *LRU[string, []string] { return c.listings }

// FileMeta returns the per-file metadata cache.
func (c *CacheManager[M]) FileMeta() *LRU[string, M] { return c.fileMeta }

// LRU is a small thread-safe least-recently-used cache.
type LRU[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	order *list.List
	items map[K]*list.Element
	hits  int64
	miss  int64
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// NewLRU returns an LRU holding at most capacity entries (min 1).
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	return &LRU[K, V]{cap: capacity, order: list.New(), items: make(map[K]*list.Element)}
}

// Get returns the cached value and whether it was present.
func (l *LRU[K, V]) Get(key K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		l.order.MoveToFront(el)
		l.hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	l.miss++
	var zero V
	return zero, false
}

// Put inserts or refreshes a cache entry, evicting the least recently used
// entry if over capacity.
func (l *LRU[K, V]) Put(key K, val V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[key]; ok {
		el.Value.(*lruEntry[K, V]).val = val
		l.order.MoveToFront(el)
		return
	}
	el := l.order.PushFront(&lruEntry[K, V]{key: key, val: val})
	l.items[key] = el
	if l.order.Len() > l.cap {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry[K, V]).key)
	}
}

// GetOrLoad returns the cached value, computing and caching it on a miss.
func (l *LRU[K, V]) GetOrLoad(key K, load func() (V, error)) (V, error) {
	if v, ok := l.Get(key); ok {
		return v, nil
	}
	v, err := load()
	if err != nil {
		var zero V
		return zero, err
	}
	l.Put(key, v)
	return v, nil
}

// Delete removes a cache entry if present, reporting whether it existed.
// Writers invalidate path-keyed metadata with it after rewriting a file in
// place.
func (l *LRU[K, V]) Delete(key K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		return false
	}
	l.order.Remove(el)
	delete(l.items, key)
	return true
}

// Len returns the number of cached entries.
func (l *LRU[K, V]) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}

// Stats returns cumulative hit and miss counts.
func (l *LRU[K, V]) Stats() (hits, misses int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hits, l.miss
}
