//go:build sanitize

package memory

import (
	"fmt"
	"sync"
)

// SanitizeEnabled reports whether this binary was built with the
// `sanitize` build tag.
const SanitizeEnabled = true

// The sanitizer is a process-wide registry of live resources handed out
// by this package. Hooks in the pool, disk-manager, and buffer paths
// record misuse (double release, over-shrink, canary overwrite) as it
// happens; SanitizerFindings additionally reports whatever is still live
// so test teardown can fail on leaks.
var san = struct {
	mu        sync.Mutex
	findings  []string
	liveRes   map[*Reservation]bool
	liveSpill map[*SpillFile]bool
	buffers   map[*byte]*bufferState
}{
	liveRes:   map[*Reservation]bool{},
	liveSpill: map[*SpillFile]bool{},
	buffers:   map[*byte]*bufferState{},
}

type bufferState struct {
	raw      []byte // payload plus leading/trailing guard bytes
	n        int
	released bool
}

func record(format string, args ...any) {
	san.findings = append(san.findings, fmt.Sprintf(format, args...))
}

func sanitizeTrackReservation(r *Reservation) {
	san.mu.Lock()
	san.liveRes[r] = true
	san.mu.Unlock()
}

func sanitizeOverShrink(r *Reservation, n int64) {
	san.mu.Lock()
	record("reservation %q over-released: shrink of %d bytes exceeds the %d reserved", r.name, n, r.size)
	san.mu.Unlock()
}

func sanitizeReservationFreed(r *Reservation) {
	san.mu.Lock()
	delete(san.liveRes, r)
	san.mu.Unlock()
}

func sanitizeTrackSpill(s *SpillFile) {
	san.mu.Lock()
	san.liveSpill[s] = true
	san.mu.Unlock()
}

func sanitizeSpillReleased(s *SpillFile, refsAfter int64) {
	if refsAfter < 0 {
		san.mu.Lock()
		record("spill file %s double-released (refs=%d)", s.path, refsAfter)
		san.mu.Unlock()
	}
}

func sanitizeSpillRemoved(s *SpillFile) {
	san.mu.Lock()
	if san.liveSpill[s] {
		delete(san.liveSpill, s)
		if refs := s.refs.Load(); refs > 0 {
			record("spill file %s removed while still referenced (refs=%d)", s.path, refs)
		}
	}
	san.mu.Unlock()
}

const (
	guardBytes = 8
	canaryByte = 0xA5
)

// AllocBuffer returns an n-byte scratch buffer bracketed by guard
// canaries. The buffer must go back through ReleaseBuffer exactly once;
// writes past either end are reported at release time.
func AllocBuffer(n int) []byte {
	if n == 0 {
		return nil
	}
	raw := make([]byte, n+2*guardBytes)
	for i := 0; i < guardBytes; i++ {
		raw[i] = canaryByte
		raw[guardBytes+n+i] = canaryByte
	}
	buf := raw[guardBytes : guardBytes+n : guardBytes+n]
	san.mu.Lock()
	san.buffers[&buf[0]] = &bufferState{raw: raw, n: n}
	san.mu.Unlock()
	return buf
}

// ReleaseBuffer checks the canaries of a buffer from AllocBuffer and
// records double releases and foreign buffers.
func ReleaseBuffer(b []byte) {
	if len(b) == 0 {
		return
	}
	san.mu.Lock()
	defer san.mu.Unlock()
	st, ok := san.buffers[&b[0]]
	if !ok {
		record("buffer of %d bytes released that AllocBuffer did not hand out", len(b))
		return
	}
	if st.released {
		record("buffer of %d bytes double-released", st.n)
		return
	}
	st.released = true
	for i := 0; i < guardBytes; i++ {
		if st.raw[i] != canaryByte {
			record("buffer of %d bytes: leading guard canary overwritten", st.n)
			break
		}
	}
	for i := 0; i < guardBytes; i++ {
		if st.raw[guardBytes+st.n+i] != canaryByte {
			record("buffer of %d bytes: trailing guard canary overwritten", st.n)
			break
		}
	}
}

// SanitizerFindings returns every recorded misuse plus anything still
// live (leaks) at the time of the call. Call it at test teardown, after
// all streams, spill files, and reservations should have been released.
func SanitizerFindings() []string {
	san.mu.Lock()
	defer san.mu.Unlock()
	out := append([]string(nil), san.findings...)
	for r := range san.liveRes {
		if r.size > 0 {
			out = append(out, fmt.Sprintf("reservation %q leaked %d bytes (never freed)", r.name, r.size))
		}
	}
	for s := range san.liveSpill {
		out = append(out, fmt.Sprintf("spill file %s leaked (refs=%d, never removed)", s.path, s.refs.Load()))
	}
	unreleased := 0
	for _, st := range san.buffers {
		if !st.released {
			unreleased++
		}
	}
	if unreleased > 0 {
		out = append(out, fmt.Sprintf("%d buffers from AllocBuffer never released", unreleased))
	}
	return out
}

// SanitizerReset clears recorded findings and live-object tracking.
func SanitizerReset() {
	san.mu.Lock()
	san.findings = nil
	san.liveRes = map[*Reservation]bool{}
	san.liveSpill = map[*SpillFile]bool{}
	san.buffers = map[*byte]*bufferState{}
	san.mu.Unlock()
}
