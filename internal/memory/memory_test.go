package memory

import (
	"errors"
	"os"
	"sync"
	"testing"
)

func TestGreedyPoolLimit(t *testing.T) {
	p := NewGreedyPool(100)
	r1 := NewReservation(p, "op1")
	r2 := NewReservation(p, "op2")
	if err := r1.Grow(80); err != nil {
		t.Fatal(err)
	}
	err := r2.Grow(30)
	if err == nil {
		t.Fatal("over-limit grow must fail")
	}
	var ex *ErrResourcesExhausted
	if !errors.As(err, &ex) {
		t.Fatalf("want ErrResourcesExhausted, got %T", err)
	}
	if err := r2.Grow(20); err != nil {
		t.Fatal(err)
	}
	if p.Reserved() != 100 {
		t.Fatalf("reserved = %d", p.Reserved())
	}
	r1.Shrink(50)
	if p.Reserved() != 50 || r1.Size() != 30 {
		t.Fatal("shrink accounting wrong")
	}
	r1.Free()
	r2.Free()
	if p.Reserved() != 0 {
		t.Fatal("free accounting wrong")
	}
}

func TestReservationResizeAndOverShrink(t *testing.T) {
	p := NewGreedyPool(100)
	r := NewReservation(p, "op")
	defer r.Free()
	if err := r.Resize(40); err != nil {
		t.Fatal(err)
	}
	if err := r.Resize(10); err != nil {
		t.Fatal(err)
	}
	if r.Size() != 10 || p.Reserved() != 10 {
		t.Fatal("resize wrong")
	}
	r.Shrink(1000) // clamped to current size
	if r.Size() != 0 || p.Reserved() != 0 {
		t.Fatal("over-shrink must clamp")
	}
}

func TestFairPoolDividesBudget(t *testing.T) {
	p := NewFairPool(100)
	un1 := RegisterConsumer(p)
	un2 := RegisterConsumer(p)
	defer un1()
	defer un2()
	r1 := NewReservation(p, "sort")
	// Two consumers: each limited to 50.
	if err := r1.Grow(60); err == nil {
		t.Fatal("fair pool must cap a single consumer at limit/k")
	}
	if err := r1.Grow(50); err != nil {
		t.Fatal(err)
	}
	un2() // back to one consumer: full budget available
	if err := r1.Grow(50); err != nil {
		t.Fatal(err)
	}
	un2() // double-deregister must be a no-op
	r1.Free()
}

func TestUnboundedPool(t *testing.T) {
	p := NewUnboundedPool()
	r := NewReservation(p, "x")
	if err := r.Grow(1 << 40); err != nil {
		t.Fatal("unbounded pool must not reject")
	}
	if p.Reserved() != 1<<40 {
		t.Fatal("tracking wrong")
	}
	r.Free()
}

func TestPoolConcurrency(t *testing.T) {
	p := NewGreedyPool(1 << 30)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewReservation(p, "worker")
			defer r.Free()
			for i := 0; i < 1000; i++ {
				if err := r.Grow(1024); err != nil {
					t.Error(err)
					return
				}
				r.Shrink(1024)
			}
		}()
	}
	wg.Wait()
	if p.Reserved() != 0 {
		t.Fatalf("leaked %d bytes", p.Reserved())
	}
}

func TestDiskManagerLifecycle(t *testing.T) {
	d := NewDiskManager(t.TempDir(), true)
	f, err := d.CreateTemp("sort")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.File().WriteString("spill data"); err != nil {
		t.Fatal(err)
	}
	f.AddRef()
	f.Release() // still one ref
	if _, err := os.Stat(f.Path()); err != nil {
		t.Fatal("file must survive while referenced")
	}
	f.Release()
	if _, err := os.Stat(f.Path()); !os.IsNotExist(err) {
		t.Fatal("file must be deleted at zero refs")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskManagerDisabled(t *testing.T) {
	d := NewDiskManager("", false)
	if _, err := d.CreateTemp("x"); err == nil {
		t.Fatal("disabled manager must refuse")
	}
}

func TestDiskManagerCloseRemovesOpenFiles(t *testing.T) {
	dir := t.TempDir()
	d := NewDiskManager(dir, true)
	f, err := d.CreateTemp("agg")
	if err != nil {
		t.Fatal(err)
	}
	path := f.Path()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Close must remove outstanding files")
	}
}

func TestLRU(t *testing.T) {
	l := NewLRU[string, int](2)
	l.Put("a", 1)
	l.Put("b", 2)
	if v, ok := l.Get("a"); !ok || v != 1 {
		t.Fatal("get wrong")
	}
	l.Put("c", 3) // evicts b (a was refreshed)
	if _, ok := l.Get("b"); ok {
		t.Fatal("b should be evicted")
	}
	if _, ok := l.Get("a"); !ok {
		t.Fatal("a should survive")
	}
	l.Put("a", 10)
	if v, _ := l.Get("a"); v != 10 {
		t.Fatal("put must refresh value")
	}
	hits, misses := l.Stats()
	if hits == 0 || misses == 0 {
		t.Fatal("stats not tracked")
	}
}

func TestLRUGetOrLoad(t *testing.T) {
	l := NewLRU[string, int](4)
	calls := 0
	load := func() (int, error) { calls++; return 42, nil }
	v, err := l.GetOrLoad("k", load)
	if err != nil || v != 42 {
		t.Fatal("load wrong")
	}
	v, err = l.GetOrLoad("k", load)
	if err != nil || v != 42 || calls != 1 {
		t.Fatal("second call must hit cache")
	}
	_, err = l.GetOrLoad("bad", func() (int, error) { return 0, errors.New("boom") })
	if err == nil {
		t.Fatal("load error must propagate")
	}
	if l.Len() != 1 {
		t.Fatal("failed load must not cache")
	}
}

func TestCacheManager(t *testing.T) {
	cm := NewCacheManager[string](2, 2)
	cm.Listings().Put("/data", []string{"a.gpq", "b.gpq"})
	if files, ok := cm.Listings().Get("/data"); !ok || len(files) != 2 {
		t.Fatal("listing cache wrong")
	}
	cm.FileMeta().Put("a.gpq", "stats-blob")
	if v, ok := cm.FileMeta().Get("a.gpq"); !ok || v != "stats-blob" {
		t.Fatal("meta cache wrong")
	}
}
