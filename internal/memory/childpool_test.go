package memory

import (
	"errors"
	"sync"
	"testing"
)

func TestChildPoolChargesParent(t *testing.T) {
	parent := NewGreedyPool(1000)
	c1 := NewChildPool(parent, "q1", 0)
	c2 := NewChildPool(parent, "q2", 0)

	r1 := NewReservation(c1, "op1")
	if err := r1.Grow(400); err != nil {
		t.Fatalf("grow: %v", err)
	}
	r2 := NewReservation(c2, "op2")
	if err := r2.Grow(500); err != nil {
		t.Fatalf("grow: %v", err)
	}
	if got := parent.Reserved(); got != 900 {
		t.Fatalf("parent reserved = %d, want 900", got)
	}
	// The shared budget is exhausted: the second tenant's next grow fails
	// even though its own pool has no limit.
	var ere *ErrResourcesExhausted
	if err := r2.Grow(200); !errors.As(err, &ere) {
		t.Fatalf("grow past parent budget = %v, want ErrResourcesExhausted", err)
	}
	if got := c2.Reserved(); got != 500 {
		t.Fatalf("failed grow must not charge child: reserved=%d", got)
	}
	if got := parent.Reserved(); got != 900 {
		t.Fatalf("failed grow must not charge parent: reserved=%d", got)
	}

	// Freeing one tenant returns budget to the other.
	r1.Free()
	c1.Release()
	if err := r2.Grow(200); err != nil {
		t.Fatalf("grow after sibling release: %v", err)
	}
	r2.Free()
	c2.Release()
	if got := parent.Reserved(); got != 0 {
		t.Fatalf("parent reserved after release = %d, want 0", got)
	}
	if peak := parent.ReservedPeak(); peak != 900 {
		t.Fatalf("parent peak = %d, want 900", peak)
	}
}

func TestChildPoolOwnLimit(t *testing.T) {
	parent := NewGreedyPool(1 << 20)
	c := NewChildPool(parent, "q", 100)
	r := NewReservation(c, "op")
	if err := r.Grow(100); err != nil {
		t.Fatalf("grow to limit: %v", err)
	}
	var ere *ErrResourcesExhausted
	if err := r.Grow(1); !errors.As(err, &ere) {
		t.Fatalf("grow past child limit = %v, want ErrResourcesExhausted", err)
	}
	if ere.Limit != 100 {
		t.Fatalf("error limit = %d, want the child cap 100", ere.Limit)
	}
	// A rejected child grow never reaches the parent.
	if got := parent.Reserved(); got != 100 {
		t.Fatalf("parent reserved = %d, want 100", got)
	}
	r.Free()
	c.Release()
	if got := c.ReservedPeak(); got != 100 {
		t.Fatalf("child peak = %d, want 100", got)
	}
}

func TestChildPoolConcurrent(t *testing.T) {
	parent := NewGreedyPool(1 << 30)
	const workers = 8
	var wg sync.WaitGroup
	pools := make([]*ChildPool, workers)
	for w := 0; w < workers; w++ {
		pools[w] = NewChildPool(parent, "q", 0)
		wg.Add(1)
		go func(c *ChildPool) {
			defer wg.Done()
			r := NewReservation(c, "op")
			defer r.Free()
			for i := 0; i < 1000; i++ {
				if err := r.Grow(64); err != nil {
					t.Errorf("grow: %v", err)
					return
				}
				r.Shrink(32)
			}
		}(pools[w])
	}
	wg.Wait()
	for _, c := range pools {
		if got := c.Reserved(); got != 0 {
			t.Fatalf("child reserved after free = %d, want 0", got)
		}
		c.Release()
	}
	if got := parent.Reserved(); got != 0 {
		t.Fatalf("parent reserved after all releases = %d, want 0", got)
	}
}

func TestChildPoolReleaseReturnsRemainder(t *testing.T) {
	parent := NewGreedyPool(1000)
	c := NewChildPool(parent, "q", 0)
	r := NewReservation(c, "op") //nolint:resbalance // reason: deliberately abandoned; Release on the pool reclaims it
	if err := r.Grow(300); err != nil {
		t.Fatalf("grow: %v", err)
	}
	// Simulate an abandoned query: the operator reservation is freed by
	// Release on the pool even without r.Free (defensive teardown).
	c.Release()
	if got := parent.Reserved(); got != 0 {
		t.Fatalf("parent reserved after Release = %d, want 0", got)
	}
	// The deliberately-leaked operator reservation must not pollute the
	// checked allocator's findings for later tests under -tags sanitize.
	SanitizerReset()
}
