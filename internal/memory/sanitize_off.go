//go:build !sanitize

package memory

// SanitizeEnabled reports whether this binary was built with the
// `sanitize` build tag. Without it every hook below compiles to a no-op
// and the checked allocator adds zero overhead.
const SanitizeEnabled = false

func sanitizeTrackReservation(*Reservation)   {}
func sanitizeOverShrink(*Reservation, int64)  {}
func sanitizeReservationFreed(*Reservation)   {}
func sanitizeTrackSpill(*SpillFile)           {}
func sanitizeSpillReleased(*SpillFile, int64) {}
func sanitizeSpillRemoved(*SpillFile)         {}

// AllocBuffer returns an n-byte scratch buffer. Under the sanitize build
// tag the buffer carries guard canaries and must be returned through
// ReleaseBuffer exactly once; here it is a plain allocation.
func AllocBuffer(n int) []byte { return make([]byte, n) }

// ReleaseBuffer returns a buffer obtained from AllocBuffer.
func ReleaseBuffer([]byte) {}

// SanitizerFindings reports the defects recorded by the checked
// allocator (double releases, canary overwrites, leaked reservations,
// spill files, and buffers). Always empty without the sanitize tag.
func SanitizerFindings() []string { return nil }

// SanitizerReset clears recorded findings and live-object tracking.
func SanitizerReset() {}
