package memory

import (
	"container/list"
	"sync"
)

// SizedLRU is a thread-safe least-recently-used cache bounded by a byte
// budget rather than an entry count. Each entry carries an explicit cost
// supplied by its loader; inserting past the budget evicts from the cold
// end until the new entry fits. An optional memory-pool reservation is
// charged for every resident byte, so cached data competes with running
// operators under a bounded pool: when the pool refuses a charge, the
// cache evicts, and if the entry still does not fit it is returned
// uncached rather than failing the caller.
//
// GetOrLoad deduplicates concurrent loads of the same key (singleflight):
// the first caller runs the loader while later callers block on the
// in-flight result, so N concurrent scans of one page decode it once.
type SizedLRU[K comparable, V any] struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List
	items    map[K]*list.Element
	inflight map[K]*flight[V]
	res      *Reservation

	hits      int64
	misses    int64
	evictions int64
	loads     int64
}

type sizedEntry[K comparable, V any] struct {
	key  K
	val  V
	size int64
}

// flight is one in-progress load shared by concurrent callers.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewSizedLRU returns a cache bounded to maxBytes (min 1). When pool is
// non-nil, resident bytes are charged to a reservation named name; Close
// returns them.
func NewSizedLRU[K comparable, V any](maxBytes int64, pool Pool, name string) *SizedLRU[K, V] {
	if maxBytes < 1 {
		maxBytes = 1
	}
	c := &SizedLRU[K, V]{
		maxBytes: maxBytes,
		order:    list.New(),
		items:    map[K]*list.Element{},
		inflight: map[K]*flight[V]{},
	}
	if pool != nil {
		c.res = NewReservation(pool, name)
	}
	return c
}

// Get returns the cached value and whether it was present.
func (c *SizedLRU[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		return el.Value.(*sizedEntry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// GetOrLoad returns the cached value for key, running load on a miss. The
// loader returns the value and its resident cost in bytes. Concurrent
// calls for the same key share one load. The hit result reports whether
// the value was served without running this caller's loader (a resident
// entry or a joined in-flight load). Loader errors are propagated to
// every waiter and nothing is cached.
func (c *SizedLRU[K, V]) GetOrLoad(key K, load func() (V, int64, error)) (v V, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		v = el.Value.(*sizedEntry[K, V]).val
		c.mu.Unlock()
		return v, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		// Someone is already decoding this key: join their flight.
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.val, true, fl.err
	}
	c.misses++
	c.loads++
	fl := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	val, size, err := load()
	fl.val, fl.err = val, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.insertLocked(key, val, size)
	}
	c.mu.Unlock()
	close(fl.done)
	return val, false, err
}

// Put inserts or refreshes an entry with the given byte cost.
func (c *SizedLRU[K, V]) Put(key K, val V, size int64) {
	c.mu.Lock()
	c.insertLocked(key, val, size)
	c.mu.Unlock()
}

// insertLocked adds the entry, evicting cold entries until both the byte
// budget and the pool accept it. Entries that cannot fit (larger than the
// whole budget, or the pool refuses even after the cache is empty) are
// skipped: callers still get their value, it just is not retained.
func (c *SizedLRU[K, V]) insertLocked(key K, val V, size int64) {
	if size < 0 {
		size = 0
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*sizedEntry[K, V])
		c.uncharge(ent.size)
		c.bytes -= ent.size
		c.order.Remove(el)
		delete(c.items, key)
	}
	if size > c.maxBytes {
		return
	}
	for c.bytes+size > c.maxBytes {
		if !c.evictOldestLocked() {
			return
		}
	}
	for !c.charge(size) {
		if !c.evictOldestLocked() {
			return // pool exhausted even with an empty cache: serve uncached
		}
	}
	el := c.order.PushFront(&sizedEntry[K, V]{key: key, val: val, size: size})
	c.items[key] = el
	c.bytes += size
}

// evictOldestLocked removes the least recently used entry, returning
// false when the cache is already empty.
func (c *SizedLRU[K, V]) evictOldestLocked() bool {
	oldest := c.order.Back()
	if oldest == nil {
		return false
	}
	ent := oldest.Value.(*sizedEntry[K, V])
	c.order.Remove(oldest)
	delete(c.items, ent.key)
	c.bytes -= ent.size
	c.uncharge(ent.size)
	c.evictions++
	return true
}

// charge asks the pool for n bytes, reporting whether it was granted.
// Without a pool every charge succeeds.
func (c *SizedLRU[K, V]) charge(n int64) bool {
	if c.res == nil || n == 0 {
		return true
	}
	return c.res.Grow(n) == nil
}

func (c *SizedLRU[K, V]) uncharge(n int64) {
	if c.res != nil && n > 0 {
		c.res.Shrink(n)
	}
}

// Len returns the number of resident entries.
func (c *SizedLRU[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Bytes returns the resident byte total.
func (c *SizedLRU[K, V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// SizedStats is a point-in-time copy of a SizedLRU's counters.
type SizedStats struct {
	// Hits counts gets served without running the caller's loader,
	// including joins of an in-flight load.
	Hits int64
	// Misses counts gets that ran (or would run) a loader.
	Misses int64
	// Loads counts loader executions (the singleflight-deduplicated
	// subset of Misses; equal to Misses when there is no contention).
	Loads int64
	// Evictions counts entries dropped to make room.
	Evictions int64
	// Bytes is the current resident total; Entries the resident count.
	Bytes   int64
	Entries int
}

// Stats returns cumulative counters and current residency.
func (c *SizedLRU[K, V]) Stats() SizedStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SizedStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Loads:     c.loads,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   c.order.Len(),
	}
}

// Clear drops every resident entry, returning charged bytes to the pool.
// In-flight loads are unaffected (their results insert afterwards).
func (c *SizedLRU[K, V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.evictOldestLocked() {
	}
}

// Close clears the cache and frees its pool reservation. The cache
// remains usable but stops charging the pool.
func (c *SizedLRU[K, V]) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.evictOldestLocked() {
	}
	if c.res != nil {
		c.res.Free()
		c.res = nil
	}
}
