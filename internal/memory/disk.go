package memory

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// DiskManager creates reference-counted temporary spill files for operators
// that exceed their memory budget. Files are deleted when their last
// reference is released; the whole directory is removed on Close.
type DiskManager struct {
	mu      sync.Mutex
	dir     string
	enabled bool
	created bool
	counter atomic.Int64
	open    map[string]*SpillFile
}

// NewDiskManager returns a manager that creates spill files under dir (or
// the OS temp dir when dir is empty). Pass enabled=false to disable
// spilling; operators then fail with the memory error instead.
func NewDiskManager(dir string, enabled bool) *DiskManager {
	return &DiskManager{dir: dir, enabled: enabled, open: make(map[string]*SpillFile)}
}

// Enabled reports whether spilling is permitted.
func (d *DiskManager) Enabled() bool { return d.enabled }

// CreateTemp creates a new spill file with one reference held by the
// caller.
func (d *DiskManager) CreateTemp(prefix string) (*SpillFile, error) {
	if !d.enabled {
		return nil, fmt.Errorf("memory: spilling is disabled")
	}
	d.mu.Lock()
	if !d.created {
		if d.dir == "" {
			dir, err := os.MkdirTemp("", "gofusion-spill-")
			if err != nil {
				d.mu.Unlock()
				return nil, err
			}
			d.dir = dir
		} else if err := os.MkdirAll(d.dir, 0o755); err != nil {
			d.mu.Unlock()
			return nil, err
		}
		d.created = true
	}
	d.mu.Unlock()

	name := fmt.Sprintf("%s-%d.spill", prefix, d.counter.Add(1))
	path := filepath.Join(d.dir, name)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	sf := &SpillFile{path: path, file: f, mgr: d}
	sf.refs.Store(1)
	sanitizeTrackSpill(sf)
	d.mu.Lock()
	d.open[path] = sf
	d.mu.Unlock()
	return sf, nil
}

// Close releases all files and removes the spill directory.
func (d *DiskManager) Close() error {
	d.mu.Lock()
	files := make([]*SpillFile, 0, len(d.open))
	for _, f := range d.open {
		files = append(files, f)
	}
	dir, created := d.dir, d.created
	d.mu.Unlock()
	for _, f := range files {
		f.forceRemove()
	}
	if created {
		return os.RemoveAll(dir)
	}
	return nil
}

func (d *DiskManager) forget(path string) {
	d.mu.Lock()
	delete(d.open, path)
	d.mu.Unlock()
}

// SpillFile is a reference-counted temporary file. The creator writes it,
// then hands references to readers; the file is deleted when the last
// reference is released.
type SpillFile struct {
	path string
	file *os.File
	mgr  *DiskManager
	refs atomic.Int64
}

// Path returns the file path.
func (s *SpillFile) Path() string { return s.path }

// File returns the underlying open file (valid until the last Release).
func (s *SpillFile) File() *os.File { return s.file }

// AddRef acquires an additional reference.
func (s *SpillFile) AddRef() { s.refs.Add(1) }

// Release drops one reference, deleting the file when none remain.
func (s *SpillFile) Release() {
	n := s.refs.Add(-1)
	sanitizeSpillReleased(s, n)
	if n == 0 {
		s.forceRemove()
	}
}

func (s *SpillFile) forceRemove() {
	sanitizeSpillRemoved(s)
	s.mgr.forget(s.path)
	s.file.Close()
	os.Remove(s.path)
}
