//go:build sanitize

package memory

import (
	"strings"
	"testing"
	"unsafe"
)

func findingContaining(t *testing.T, substr string) bool {
	t.Helper()
	for _, f := range SanitizerFindings() {
		if strings.Contains(f, substr) {
			return true
		}
	}
	return false
}

func TestSanitizerCatchesBufferDoubleRelease(t *testing.T) {
	SanitizerReset()
	defer SanitizerReset()
	b := AllocBuffer(16)
	ReleaseBuffer(b)
	ReleaseBuffer(b)
	if !findingContaining(t, "double-released") {
		t.Fatalf("double release not reported; findings: %v", SanitizerFindings())
	}
}

func TestSanitizerCatchesCanaryOverwrite(t *testing.T) {
	SanitizerReset()
	defer SanitizerReset()
	b := AllocBuffer(8)
	// Write one byte past the end, as an out-of-bounds kernel would.
	*(*byte)(unsafe.Add(unsafe.Pointer(&b[0]), len(b))) = 0
	ReleaseBuffer(b)
	if !findingContaining(t, "trailing guard canary overwritten") {
		t.Fatalf("canary overwrite not reported; findings: %v", SanitizerFindings())
	}
}

func TestSanitizerCatchesBufferLeak(t *testing.T) {
	SanitizerReset()
	defer SanitizerReset()
	AllocBuffer(32)
	if !findingContaining(t, "never released") {
		t.Fatalf("buffer leak not reported; findings: %v", SanitizerFindings())
	}
}

func TestSanitizerCatchesSpillDoubleRelease(t *testing.T) {
	SanitizerReset()
	defer SanitizerReset()
	dm := NewDiskManager(t.TempDir(), true)
	defer dm.Close()
	sf, err := dm.CreateTemp("san")
	if err != nil {
		t.Fatal(err)
	}
	sf.Release()
	sf.Release()
	if !findingContaining(t, "double-released") {
		t.Fatalf("spill double release not reported; findings: %v", SanitizerFindings())
	}
}

func TestSanitizerCatchesReservationOverShrinkAndLeak(t *testing.T) {
	SanitizerReset()
	defer SanitizerReset()
	p := NewUnboundedPool()
	r := NewReservation(p, "op")
	if err := r.Grow(100); err != nil {
		t.Fatal(err)
	}
	r.Shrink(200)
	if !findingContaining(t, "over-released") {
		t.Fatalf("over-shrink not reported; findings: %v", SanitizerFindings())
	}
	SanitizerReset()
	r2 := NewReservation(p, "leaky")
	if err := r2.Grow(64); err != nil {
		t.Fatal(err)
	}
	if !findingContaining(t, "leaked 64 bytes") {
		t.Fatalf("reservation leak not reported; findings: %v", SanitizerFindings())
	}
	r2.Free()
	if findingContaining(t, "leaked 64 bytes") {
		t.Fatalf("freed reservation still reported as leaked: %v", SanitizerFindings())
	}
}
