package memory

import (
	"fmt"
	"sync"
)

// ChildPool charges a parent Pool for everything its own reservations
// hold, so many per-query pools can share one process-wide budget: the
// service layer gives every admitted query a ChildPool of the server's
// parent pool, and the parent rejects growth once the queries together
// reach the global budget, regardless of which tenant asks. An optional
// per-child limit additionally caps this child before the parent is
// consulted, so one memory-hungry query is pushed into spilling (or
// failure) before it can starve its neighbors out of the shared budget.
//
// The child charges the parent through an ordinary Reservation, so under
// the sanitize build tag a ChildPool that is never Released shows up as a
// leaked reservation, and the parent's Reserved/ReservedPeak aggregate
// every child exactly like any other consumer.
type ChildPool struct {
	mu    sync.Mutex
	limit int64 // 0 = bounded only by the parent
	used  int64
	peak  int64
	res   *Reservation // this child's charge against the parent
}

// NewChildPool returns a pool that satisfies reservations from parent's
// budget under the given name. limit, when positive, caps this child's
// total before the parent is consulted.
func NewChildPool(parent Pool, name string, limit int64) *ChildPool {
	return &ChildPool{limit: limit, res: NewReservation(parent, name)}
}

func (p *ChildPool) grow(r *Reservation, n int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.limit > 0 && p.used+n > p.limit {
		return fmt.Errorf("%w", &ErrResourcesExhausted{Consumer: r.name, Requested: n, Limit: p.limit, Used: p.used})
	}
	if err := p.res.Grow(n); err != nil {
		// The parent's error already names the shared budget; keep it so
		// operators spill on it like any ErrResourcesExhausted.
		return err
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

func (p *ChildPool) shrink(_ *Reservation, n int64) {
	p.mu.Lock()
	p.res.Shrink(n)
	p.used -= n
	p.mu.Unlock()
}

func (p *ChildPool) registerConsumer() func() { return func() {} }

// Reserved returns this child's total reserved bytes.
func (p *ChildPool) Reserved() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// ReservedPeak returns this child's high-water mark.
func (p *ChildPool) ReservedPeak() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Limit returns the per-child cap (0 = parent-bounded only).
func (p *ChildPool) Limit() int64 { return p.limit }

// Release returns the child's remaining charge to the parent. Call it
// when the query finishes; afterwards the pool must not be grown again.
// With every operator reservation freed first (the engine contract), the
// remaining charge is zero and this only closes out the parent-side
// reservation for the sanitizer.
func (p *ChildPool) Release() {
	p.mu.Lock()
	p.res.Free()
	p.used = 0
	p.mu.Unlock()
}
