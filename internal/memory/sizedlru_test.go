package memory

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSizedLRUBasicEviction(t *testing.T) {
	c := NewSizedLRU[string, string](100, nil, "t")
	c.Put("a", "A", 40)
	c.Put("b", "B", 40)
	if _, ok := c.Get("a"); !ok { // touch a: b becomes coldest
		t.Fatal("a missing")
	}
	c.Put("c", "C", 40) // 120 > 100: evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Bytes != 80 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSizedLRUOversizedServedUncached(t *testing.T) {
	c := NewSizedLRU[string, int](10, nil, "t")
	v, hit, err := c.GetOrLoad("big", func() (int, int64, error) { return 7, 1000, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("v=%d hit=%t err=%v", v, hit, err)
	}
	if c.Len() != 0 {
		t.Fatalf("oversized entry was cached (len=%d)", c.Len())
	}
}

func TestSizedLRUSingleflight(t *testing.T) {
	c := NewSizedLRU[string, int](1<<20, nil, "t")
	var loads atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	const n = 16
	results := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			v, _, err := c.GetOrLoad("page", func() (int, int64, error) {
				loads.Add(1)
				return 42, 8, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Fatalf("loader ran %d times, want exactly once", got)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %d", i, v)
		}
	}
	st := c.Stats()
	if st.Loads != 1 || st.Misses != 1 || st.Hits != n-1 {
		t.Fatalf("stats = %+v (want loads=1 misses=1 hits=%d)", st, n-1)
	}
}

func TestSizedLRULoaderErrorSharedNotCached(t *testing.T) {
	c := NewSizedLRU[string, int](1<<20, nil, "t")
	boom := errors.New("decode failed")
	if _, _, err := c.GetOrLoad("k", func() (int, int64, error) { return 0, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatal("error result was cached")
	}
	// A later call retries the loader.
	v, hit, err := c.GetOrLoad("k", func() (int, int64, error) { return 9, 4, nil })
	if err != nil || hit || v != 9 {
		t.Fatalf("v=%d hit=%t err=%v", v, hit, err)
	}
}

func TestSizedLRUPoolChargeAndEvict(t *testing.T) {
	pool := NewGreedyPool(100)
	c := NewSizedLRU[string, int](1<<20, pool, "cache")
	c.Put("a", 1, 60)
	c.Put("b", 2, 60) // pool refuses 120: evicts a, then fits
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted to satisfy the pool")
	}
	if pool.Reserved() != 60 {
		t.Fatalf("pool reserved = %d, want 60", pool.Reserved())
	}

	// An outside reservation hogging the pool forces serve-uncached even
	// after the cache empties itself.
	hog := NewReservation(pool, "hog")
	if err := hog.Grow(40); err != nil {
		t.Fatal(err)
	}
	c.Put("c", 3, 90) // evicts b (60 free -> 60), still needs 90 > 60: uncached
	if c.Len() != 0 {
		t.Fatalf("len = %d, want 0 (pool exhausted)", c.Len())
	}
	if pool.Reserved() != 40 {
		t.Fatalf("pool reserved = %d, want 40 (hog only)", pool.Reserved())
	}
	hog.Free()

	c.Put("d", 4, 50)
	c.Close()
	if pool.Reserved() != 0 {
		t.Fatalf("Close leaked %d pool bytes", pool.Reserved())
	}
}

func TestSizedLRUReplaceRecharges(t *testing.T) {
	pool := NewGreedyPool(1000)
	c := NewSizedLRU[string, int](1000, pool, "cache")
	c.Put("k", 1, 300)
	c.Put("k", 2, 100) // replace must uncharge the old 300 first
	if got := pool.Reserved(); got != 100 {
		t.Fatalf("pool reserved = %d, want 100", got)
	}
	if b := c.Bytes(); b != 100 {
		t.Fatalf("bytes = %d, want 100", b)
	}
	c.Close()
}

func TestSizedLRUConcurrentMixedKeys(t *testing.T) {
	pool := NewGreedyPool(1 << 16)
	c := NewSizedLRU[int, string](4<<10, pool, "cache")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 32
				v, _, err := c.GetOrLoad(k, func() (string, int64, error) {
					return fmt.Sprintf("v%d", k), 256, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if want := fmt.Sprintf("v%d", k); v != want {
					t.Errorf("key %d: got %q want %q", k, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if b := c.Bytes(); b > 4<<10 {
		t.Fatalf("resident bytes %d exceed budget", b)
	}
	if r := pool.Reserved(); r != c.Bytes() {
		t.Fatalf("pool charge %d != resident bytes %d", r, c.Bytes())
	}
	c.Close()
	if pool.Reserved() != 0 {
		t.Fatalf("Close leaked %d bytes", pool.Reserved())
	}
}
