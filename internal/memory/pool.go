// Package memory implements the engine's execution-environment resource
// APIs (paper Sections 5.5.4 and 7.4): MemoryPool with Greedy and Fair
// policies, DiskManager for reference-counted spill files, and CacheManager
// for listing/metadata caches. Systems embedding the engine substitute
// their own implementations of these interfaces.
package memory

import (
	"fmt"
	"sync"
)

// ErrResourcesExhausted is returned (wrapped) when a reservation would
// exceed the pool's limit; operators respond by spilling to disk.
type ErrResourcesExhausted struct {
	Consumer  string
	Requested int64
	Limit     int64
	Used      int64
}

func (e *ErrResourcesExhausted) Error() string {
	return fmt.Sprintf("memory: cannot grow %q by %d bytes: %d of %d bytes in use",
		e.Consumer, e.Requested, e.Used, e.Limit)
}

// Pool arbitrates memory between concurrently running operators. Operators
// cooperatively report large allocations (hash tables, sort buffers)
// through Reservations; small ephemeral allocations are not tracked.
type Pool interface {
	// grow requests n more bytes for the reservation.
	grow(r *Reservation, n int64) error
	// shrink returns n bytes from the reservation.
	shrink(r *Reservation, n int64)
	// registerConsumer notes a pipeline-breaking consumer (used by fair
	// pools to divide the budget) and returns a deregistration func.
	registerConsumer() func()
	// Reserved returns the total bytes currently reserved.
	Reserved() int64
	// ReservedPeak returns the high-water mark of Reserved over the
	// pool's lifetime (surfaced by EXPLAIN ANALYZE / CollectWithMetrics).
	ReservedPeak() int64
}

// Reservation tracks one operator's share of a pool.
type Reservation struct {
	name string
	pool Pool
	size int64
}

// NewReservation creates an empty reservation against the pool.
func NewReservation(pool Pool, name string) *Reservation {
	r := &Reservation{name: name, pool: pool}
	sanitizeTrackReservation(r)
	return r
}

// Grow requests n more bytes, returning ErrResourcesExhausted (wrapped)
// when the pool cannot satisfy the request.
func (r *Reservation) Grow(n int64) error {
	if err := r.pool.grow(r, n); err != nil {
		return err
	}
	r.size += n
	return nil
}

// Shrink returns n bytes to the pool.
func (r *Reservation) Shrink(n int64) {
	if n > r.size {
		sanitizeOverShrink(r, n)
		n = r.size
	}
	r.pool.shrink(r, n)
	r.size -= n
}

// Resize grows or shrinks the reservation to exactly n bytes.
func (r *Reservation) Resize(n int64) error {
	if n > r.size {
		return r.Grow(n - r.size)
	}
	r.Shrink(r.size - n)
	return nil
}

// Free releases the whole reservation.
func (r *Reservation) Free() {
	r.Shrink(r.size)
	sanitizeReservationFreed(r)
}

// Size returns the currently reserved bytes.
func (r *Reservation) Size() int64 { return r.size }

// UnboundedPool is a Pool without a limit; it only tracks usage.
type UnboundedPool struct {
	mu   sync.Mutex
	used int64
	peak int64
}

// NewUnboundedPool returns a pool that never rejects.
func NewUnboundedPool() *UnboundedPool { return &UnboundedPool{} }

func (p *UnboundedPool) grow(_ *Reservation, n int64) error {
	p.mu.Lock()
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	p.mu.Unlock()
	return nil
}

func (p *UnboundedPool) shrink(_ *Reservation, n int64) {
	p.mu.Lock()
	p.used -= n
	p.mu.Unlock()
}

func (p *UnboundedPool) registerConsumer() func() { return func() {} }

// Reserved returns the total tracked bytes.
func (p *UnboundedPool) Reserved() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// ReservedPeak returns the high-water mark of tracked bytes.
func (p *UnboundedPool) ReservedPeak() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// GreedyPool enforces a process-wide limit on a first-come first-served
// basis without attempting fairness between operators.
type GreedyPool struct {
	mu    sync.Mutex
	limit int64
	used  int64
	peak  int64
}

// NewGreedyPool returns a pool with the given byte limit.
func NewGreedyPool(limit int64) *GreedyPool { return &GreedyPool{limit: limit} }

func (p *GreedyPool) grow(r *Reservation, n int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.used+n > p.limit {
		return fmt.Errorf("%w", &ErrResourcesExhausted{Consumer: r.name, Requested: n, Limit: p.limit, Used: p.used})
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

func (p *GreedyPool) shrink(_ *Reservation, n int64) {
	p.mu.Lock()
	p.used -= n
	p.mu.Unlock()
}

func (p *GreedyPool) registerConsumer() func() { return func() {} }

// Reserved returns the total reserved bytes.
func (p *GreedyPool) Reserved() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// ReservedPeak returns the high-water mark of reserved bytes.
func (p *GreedyPool) ReservedPeak() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// Limit returns the pool limit.
func (p *GreedyPool) Limit() int64 { return p.limit }

// FairPool divides the limit evenly among registered pipeline-breaking
// consumers: with k consumers, each may hold at most limit/k bytes, so one
// memory-hungry operator cannot starve its siblings.
type FairPool struct {
	mu        sync.Mutex
	limit     int64
	used      int64
	peak      int64
	consumers int
}

// NewFairPool returns a fair pool with the given byte limit.
func NewFairPool(limit int64) *FairPool { return &FairPool{limit: limit} }

func (p *FairPool) grow(r *Reservation, n int64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	perConsumer := p.limit
	if p.consumers > 1 {
		perConsumer = p.limit / int64(p.consumers)
	}
	if r.size+n > perConsumer || p.used+n > p.limit {
		return fmt.Errorf("%w", &ErrResourcesExhausted{Consumer: r.name, Requested: n, Limit: perConsumer, Used: r.size})
	}
	p.used += n
	if p.used > p.peak {
		p.peak = p.used
	}
	return nil
}

func (p *FairPool) shrink(_ *Reservation, n int64) {
	p.mu.Lock()
	p.used -= n
	p.mu.Unlock()
}

func (p *FairPool) registerConsumer() func() {
	p.mu.Lock()
	p.consumers++
	p.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			p.mu.Lock()
			p.consumers--
			p.mu.Unlock()
		})
	}
}

// Reserved returns the total reserved bytes.
func (p *FairPool) Reserved() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// ReservedPeak returns the high-water mark of reserved bytes.
func (p *FairPool) ReservedPeak() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

// RegisterConsumer marks a pipeline-breaking consumer on any pool,
// returning a function to deregister it.
func RegisterConsumer(p Pool) func() { return p.registerConsumer() }
