package bench

import (
	"testing"
)

// smallConfig keeps the harness smoke test fast.
func smallConfig(t *testing.T) Config {
	t.Helper()
	cfg := Config{
		DataDir:   t.TempDir(),
		TPCHSF:    0.002,
		HitsRows:  3000,
		HitsFiles: 2,
		H2ORows:   3000,
		Cores:     []int{1, 2},
	}
	if err := cfg.EnsureData(); err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestHarnessEndToEnd(t *testing.T) {
	cfg := smallConfig(t)
	// Every workload compares cleanly on both engines.
	for _, w := range []Workload{ClickBench, TPCH, H2O} {
		results, err := cfg.CompareEngines(w, 1, 1)
		if err != nil {
			t.Fatalf("workload %d: %v", w, err)
		}
		if len(results) == 0 {
			t.Fatalf("workload %d: no results", w)
		}
		for _, r := range results {
			if r.GFErr != nil {
				t.Fatalf("workload %d Q%d gofusion: %v", w, r.Query, r.GFErr)
			}
			if r.TDErr != nil {
				t.Fatalf("workload %d Q%d tightdb: %v", w, r.Query, r.TDErr)
			}
			if r.Delta() == "n/a" {
				t.Fatalf("workload %d Q%d: no delta", w, r.Query)
			}
		}
	}
}

func TestScalabilitySweep(t *testing.T) {
	cfg := smallConfig(t)
	points, err := cfg.Scalability(ClickBench, []int{1, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 2 queries x 2 core counts.
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.GoFusion == 0 || p.TightDB == 0 {
			t.Fatalf("missing timing: %+v", p)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := smallConfig(t)
	abl, err := cfg.RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(abl) != 5 {
		t.Fatalf("ablations = %d", len(abl))
	}
	for _, a := range abl {
		if a.On == 0 || a.Off == 0 {
			t.Fatalf("%s: missing measurement", a.Name)
		}
	}
	// EnsureData is idempotent (cached datasets).
	if err := cfg.EnsureData(); err != nil {
		t.Fatal(err)
	}
}
