// Package bench is the experiment harness reproducing the paper's
// evaluation (Section 8): it generates the three workload datasets on
// disk, builds both engines over the same files, runs every query of
// Table 1, Figure 5, Figure 6 and Figure 7, and reports per-query
// durations with the paper's delta column. The bench_test.go benchmarks
// and the gofusion-bench binary both drive this package.
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"gofusion/internal/baseline"
	"gofusion/internal/core"
	"gofusion/internal/workload/clickbench"
	"gofusion/internal/workload/h2o"
	"gofusion/internal/workload/tpch"
)

// Config sizes the experiments. The defaults are laptop-scale versions of
// the paper's datasets (14 GB hits / SF=10 TPC-H / 1e7-row CSV).
type Config struct {
	// DataDir caches generated datasets between runs.
	DataDir string
	// TPCHSF is the TPC-H scale factor (paper: 10).
	TPCHSF float64
	// HitsRows is the ClickBench row count (paper: ~100M).
	HitsRows int
	// HitsFiles partitions hits into this many GPQ files (paper: 100).
	HitsFiles int
	// H2ORows is the H2O groupby CSV row count (paper: 1e7).
	H2ORows int
	// Cores lists the parallelism levels for the Figure 7 sweep.
	Cores []int
}

// DefaultConfig returns laptop-scale defaults, overridable via the
// GOFUSION_BENCH_* environment variables.
func DefaultConfig() Config {
	cfg := Config{
		DataDir:   envStr("GOFUSION_BENCH_DIR", filepath.Join(os.TempDir(), "gofusion-bench-data")),
		TPCHSF:    envFloat("GOFUSION_BENCH_SF", 0.05),
		HitsRows:  envInt("GOFUSION_BENCH_HITS", 500_000),
		HitsFiles: envInt("GOFUSION_BENCH_HITS_FILES", 8),
		H2ORows:   envInt("GOFUSION_BENCH_H2O", 1_000_000),
	}
	for c := 1; c <= runtime.NumCPU(); c *= 2 {
		cfg.Cores = append(cfg.Cores, c)
	}
	return cfg
}

func envStr(k, def string) string {
	if v := os.Getenv(k); v != "" {
		return v
	}
	return def
}

func envInt(k string, def int) int {
	if v := os.Getenv(k); v != "" {
		var x int
		if _, err := fmt.Sscanf(v, "%d", &x); err == nil {
			return x
		}
	}
	return def
}

func envFloat(k string, def float64) float64 {
	if v := os.Getenv(k); v != "" {
		var x float64
		if _, err := fmt.Sscanf(v, "%f", &x); err == nil {
			return x
		}
	}
	return def
}

func (c Config) tpchDir() string { return filepath.Join(c.DataDir, fmt.Sprintf("tpch-sf%g", c.TPCHSF)) }
func (c Config) hitsDir() string {
	return filepath.Join(c.DataDir, fmt.Sprintf("hits-%d-%d", c.HitsRows, c.HitsFiles))
}
func (c Config) h2oPath() string {
	return filepath.Join(c.DataDir, fmt.Sprintf("h2o-%d.csv", c.H2ORows))
}

// EnsureData generates any missing datasets into DataDir.
func (c Config) EnsureData() error {
	if _, err := os.Stat(filepath.Join(c.tpchDir(), "lineitem.gpq")); err != nil {
		if err := tpch.WriteGPQ(c.tpchDir(), c.TPCHSF, 1_000_000); err != nil {
			return fmt.Errorf("bench: generating tpch: %w", err)
		}
	}
	if _, err := os.Stat(filepath.Join(c.hitsDir(), "hits_000.gpq")); err != nil {
		if err := clickbench.WriteGPQ(c.hitsDir(), c.HitsRows, c.HitsFiles); err != nil {
			return fmt.Errorf("bench: generating hits: %w", err)
		}
	}
	if _, err := os.Stat(c.h2oPath()); err != nil {
		if err := os.MkdirAll(c.DataDir, 0o755); err != nil {
			return err
		}
		if err := h2o.WriteCSV(c.h2oPath(), c.H2ORows); err != nil {
			return fmt.Errorf("bench: generating h2o: %w", err)
		}
	}
	return nil
}

// Workload selects one dataset.
type Workload int

// Workloads.
const (
	ClickBench Workload = iota
	TPCH
	H2O
)

// GoFusionSession builds a session over the on-disk dataset at the given
// parallelism.
func (c Config) GoFusionSession(w Workload, cores int) (*core.SessionContext, error) {
	cfg := core.DefaultConfig()
	cfg.TargetPartitions = cores
	s := core.NewSession(cfg)
	switch w {
	case ClickBench:
		return s, clickbench.RegisterGPQ(s, c.hitsDir())
	case TPCH:
		return s, tpch.RegisterGPQ(s, c.tpchDir())
	case H2O:
		return s, h2o.Register(s, c.h2oPath())
	}
	return nil, fmt.Errorf("bench: unknown workload")
}

// TightDBEngine builds the baseline engine over the same files.
func (c Config) TightDBEngine(w Workload, cores int) (*baseline.Engine, error) {
	e := baseline.New(cores)
	switch w {
	case ClickBench:
		return e, e.RegisterGPQDir("hits", c.hitsDir())
	case TPCH:
		for _, name := range tpch.TableNames {
			if err := e.RegisterGPQ(name, filepath.Join(c.tpchDir(), name+".gpq")); err != nil {
				return nil, err
			}
		}
		return e, nil
	case H2O:
		return e, e.RegisterCSV("x", c.h2oPath())
	}
	return nil, fmt.Errorf("bench: unknown workload")
}

// WorkloadQueries returns the numbered queries of a workload (Table 1
// uses the paper's ClickBench subset).
func WorkloadQueries(w Workload) (nums []int, queries map[int]string) {
	switch w {
	case ClickBench:
		return clickbench.PaperQueryNumbers(), clickbench.Queries()
	case TPCH:
		for i := 1; i <= 22; i++ {
			nums = append(nums, i)
		}
		return nums, tpch.Queries
	case H2O:
		for i := 1; i <= 10; i++ {
			nums = append(nums, i)
		}
		return nums, h2o.Queries
	}
	return nil, nil
}

// RunGoFusion times one query on the engine.
func RunGoFusion(s *core.SessionContext, query string) (time.Duration, int, error) {
	start := time.Now()
	df, err := s.SQL(query)
	if err != nil {
		return 0, 0, err
	}
	batch, err := df.CollectBatch()
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), batch.NumRows(), nil
}

// RunTightDB times one query on the baseline.
func RunTightDB(e *baseline.Engine, query string) (time.Duration, int, error) {
	start := time.Now()
	batch, err := e.Query(query)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), batch.NumRows(), nil
}

// Result is one per-query comparison row.
type Result struct {
	Query    int
	GoFusion time.Duration
	TightDB  time.Duration
	GFErr    error
	TDErr    error
}

// Delta renders the paper's Table 1 delta column (e.g. "2.25x faster").
func (r Result) Delta() string {
	if r.GFErr != nil || r.TDErr != nil || r.GoFusion == 0 || r.TightDB == 0 {
		return "n/a"
	}
	gf, td := r.GoFusion.Seconds(), r.TightDB.Seconds()
	if gf <= td {
		return fmt.Sprintf("%.2fx faster", td/gf)
	}
	return fmt.Sprintf("%.2fx slower", gf/td)
}

// CompareEngines runs every query of a workload on both engines at the
// given core count, with `repeat` timed repetitions (best kept).
func (c Config) CompareEngines(w Workload, cores, repeat int) ([]Result, error) {
	if repeat < 1 {
		repeat = 1
	}
	nums, queries := WorkloadQueries(w)
	s, err := c.GoFusionSession(w, cores)
	if err != nil {
		return nil, err
	}
	e, err := c.TightDBEngine(w, cores)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, n := range nums {
		r := Result{Query: n}
		for i := 0; i < repeat; i++ {
			d, _, err := RunGoFusion(s, queries[n])
			if err != nil {
				r.GFErr = err
				break
			}
			if r.GoFusion == 0 || d < r.GoFusion {
				r.GoFusion = d
			}
		}
		for i := 0; i < repeat; i++ {
			d, _, err := RunTightDB(e, queries[n])
			if err != nil {
				r.TDErr = err
				break
			}
			if r.TightDB == 0 || d < r.TightDB {
				r.TightDB = d
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// ScalabilityPoint is one (query, cores) duration pair per engine.
type ScalabilityPoint struct {
	Query    int
	Cores    int
	GoFusion time.Duration
	TightDB  time.Duration
}

// Scalability sweeps core counts over a query subset (Figure 7).
func (c Config) Scalability(w Workload, queryNums []int, repeat int) ([]ScalabilityPoint, error) {
	nums, queries := WorkloadQueries(w)
	if queryNums == nil {
		queryNums = nums
	}
	var out []ScalabilityPoint
	for _, cores := range c.Cores {
		results := map[int]*ScalabilityPoint{}
		s, err := c.GoFusionSession(w, cores)
		if err != nil {
			return nil, err
		}
		e, err := c.TightDBEngine(w, cores)
		if err != nil {
			return nil, err
		}
		for _, n := range queryNums {
			p := &ScalabilityPoint{Query: n, Cores: cores}
			for i := 0; i < max(repeat, 1); i++ {
				d, _, err := RunGoFusion(s, queries[n])
				if err != nil {
					return nil, fmt.Errorf("bench: Q%d at %d cores: %w", n, cores, err)
				}
				if p.GoFusion == 0 || d < p.GoFusion {
					p.GoFusion = d
				}
				d, _, err = RunTightDB(e, queries[n])
				if err != nil {
					return nil, fmt.Errorf("bench: baseline Q%d at %d cores: %w", n, cores, err)
				}
				if p.TightDB == 0 || d < p.TightDB {
					p.TightDB = d
				}
			}
			results[n] = p
		}
		for _, n := range queryNums {
			out = append(out, *results[n])
		}
	}
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
