package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/parquet"
)

// scanScaleFile writes one ClickBench-shaped GPQ file (high-cardinality
// UserID, skewed URL, RegionID, counters) with many row groups, so scan
// scaling is visible within a single file.
func scanScaleFile(b *testing.B, rows, rowGroupRows int) string {
	b.Helper()
	schema := arrow.NewSchema(
		arrow.NewField("UserID", arrow.Int64, false),
		arrow.NewField("URL", arrow.String, false),
		arrow.NewField("RegionID", arrow.Int32, false),
		arrow.NewField("Clicks", arrow.Int64, false),
	)
	var batches []*arrow.RecordBatch
	const chunk = 32 * 1024
	seed := uint64(42)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	for start := 0; start < rows; start += chunk {
		n := chunk
		if start+n > rows {
			n = rows - start
		}
		ub := arrow.NewNumericBuilder[int64](arrow.Int64)
		sb := arrow.NewStringBuilder(arrow.String)
		rb := arrow.NewNumericBuilder[int32](arrow.Int32)
		cb := arrow.NewNumericBuilder[int64](arrow.Int64)
		for i := 0; i < n; i++ {
			r := next()
			ub.Append(int64(r % 1_000_000))
			// Zipf-ish URL skew: a few hot pages, a long tail.
			if r%8 < 5 {
				sb.Append(fmt.Sprintf("http://example.com/hot/%d", r%16))
			} else {
				sb.Append(fmt.Sprintf("http://example.com/page/%d?q=%d", r%50_000, r%997))
			}
			rb.Append(int32(r % 5000))
			cb.Append(int64(r % 100))
		}
		batches = append(batches, arrow.NewRecordBatch(schema,
			[]arrow.Array{ub.Finish(), sb.Finish(), rb.Finish(), cb.Finish()}))
	}
	path := filepath.Join(b.TempDir(), "hits-scale.gpq")
	opts := parquet.DefaultWriterOptions()
	opts.RowGroupRows = rowGroupRows
	if err := parquet.WriteFile(path, schema, batches, opts); err != nil {
		b.Fatal(err)
	}
	return path
}

// drainPartitioned opens every partition concurrently and counts rows.
func drainPartitioned(b *testing.B, res *catalog.ScanResult) int64 {
	b.Helper()
	var total atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, res.Partitions)
	for p := 0; p < res.Partitions; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s, err := res.Open(p)
			if err != nil {
				errs[p] = err
				return
			}
			defer s.Close()
			for {
				batch, err := s.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					errs[p] = err
					return
				}
				total.Add(int64(batch.NumRows()))
			}
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	return total.Load()
}

// BenchmarkScanScaling measures a full scan of one multi-row-group file
// at increasing partition counts; the row-group-granular work units plus
// readahead should scale throughput with cores.
func BenchmarkScanScaling(b *testing.B) {
	const rows = 512 * 1024
	path := scanScaleFile(b, rows, 32*1024) // 16 row groups
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := catalog.NewGPQTable([]string{path}, nil)
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	for _, parts := range counts {
		b.Run(fmt.Sprintf("partitions=%d", parts), func(b *testing.B) {
			b.SetBytes(st.Size())
			for i := 0; i < b.N; i++ {
				res, err := tbl.Scan(catalog.ScanRequest{Limit: -1, Partitions: parts, Readahead: 2})
				if err != nil {
					b.Fatal(err)
				}
				if got := drainPartitioned(b, res); got != rows {
					b.Fatalf("rows = %d, want %d", got, rows)
				}
			}
		})
	}
}
