package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"sort"
	"time"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/catalog"
	"gofusion/internal/core"
	"gofusion/internal/logical"
	"gofusion/internal/parquet"
	"gofusion/internal/rowformat"
	"gofusion/internal/workload/tpch"
)

// tpchSchema fetches a TPC-H table schema.
func tpchSchema(name string) (*arrow.Schema, error) {
	return tpch.Schema(name)
}

// Ablation is one design-choice measurement: the optimization on vs off.
type Ablation struct {
	Name string
	On   time.Duration
	Off  time.Duration
	Note string
}

// Speedup renders On-vs-Off.
func (a Ablation) Speedup() string {
	if a.On == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", a.Off.Seconds()/a.On.Seconds())
}

// RunAblations measures the DESIGN.md design-choice ablations.
func (c Config) RunAblations() ([]Ablation, error) {
	var out []Ablation
	a1, err := c.ablatePruning()
	if err != nil {
		return nil, err
	}
	out = append(out, a1...)
	out = append(out, ablateRowFormatSort())
	a3, err := ablateOrderedAggregation()
	if err != nil {
		return nil, err
	}
	out = append(out, a3)
	a4, err := c.ablateTopK()
	if err != nil {
		return nil, err
	}
	out = append(out, a4)
	return out, nil
}

// scanFiles scans GPQ files with the given options three times and
// returns the best duration (and rows matched).
func scanFiles(files []string, opts parquet.ScanOptions) (time.Duration, int64, error) {
	best := time.Duration(0)
	var rows int64
	for i := 0; i < 3; i++ {
		d, r, err := scanFilesOnce(files, opts)
		if err != nil {
			return 0, 0, err
		}
		if best == 0 || d < best {
			best, rows = d, r
		}
	}
	return best, rows, nil
}

func scanFilesOnce(files []string, opts parquet.ScanOptions) (time.Duration, int64, error) {
	sort.Strings(files)
	start := time.Now()
	var rows int64
	for _, f := range files {
		fr, err := parquet.OpenFile(f)
		if err != nil {
			return 0, 0, err
		}
		sc, err := fr.Scan(opts)
		if err != nil {
			fr.Close()
			return 0, 0, err
		}
		for {
			b, err := sc.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				fr.Close()
				return 0, 0, err
			}
			rows += int64(b.NumRows())
		}
		fr.Close()
	}
	return time.Since(start), rows, nil
}

// lineitemPredicate compiles a narrow l_orderkey range: l_orderkey grows
// with row order, so row-group and page statistics prune almost all of
// the file — the paper's best case for §6.8.
func lineitemPredicate() (parquet.Predicate, []int, error) {
	schema, err := tpchSchema("lineitem")
	if err != nil {
		return nil, nil, err
	}
	key := schema.FieldIndex("l_orderkey")
	comment := schema.FieldIndex("l_comment")
	filters := []logical.Expr{
		&logical.Between{E: logical.Col("l_orderkey"),
			Low: logical.Lit(int64(1000)), High: logical.Lit(int64(2000))},
	}
	pred, exact := catalog.CompileFilters(filters, schema)
	for _, e := range exact {
		if !e {
			return nil, nil, fmt.Errorf("bench: ablation predicate not compiled")
		}
	}
	return pred, []int{key, comment}, nil
}

func (c Config) ablatePruning() ([]Ablation, error) {
	pred, projection, err := lineitemPredicate()
	if err != nil {
		return nil, err
	}
	files := []string{filepath.Join(c.tpchDir(), "lineitem.gpq")}
	base := parquet.ScanOptions{Projection: projection, Predicate: pred, Limit: -1}

	on, _, err := scanFiles(files, base)
	if err != nil {
		return nil, err
	}
	noPrune := base
	noPrune.DisablePruning = true
	offPrune, _, err := scanFiles(files, noPrune)
	if err != nil {
		return nil, err
	}
	noLate := base
	noLate.DisableLateMaterialization = true
	offLate, _, err := scanFiles(files, noLate)
	if err != nil {
		return nil, err
	}
	return []Ablation{
		{Name: "parquet statistics pruning", On: on, Off: offPrune,
			Note: "row-group/page stats pruning on a selective predicate (§6.8)"},
		{Name: "late materialization", On: offPrune, Off: offLate,
			Note: "decode-after-filter vs decode-everything, pruning disabled for both (§6.8)"},
	}, nil
}

// ablateRowFormatSort compares multi-column sorting with normalized keys
// (memcmp) against the generic boxed comparator (§6.6).
func ablateRowFormatSort() Ablation {
	const n = 200_000
	rng := rand.New(rand.NewSource(3))
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	fb := arrow.NewNumericBuilder[float64](arrow.Float64)
	for i := 0; i < n; i++ {
		ib.Append(int64(rng.Intn(1000)))
		sb.Append(fmt.Sprintf("key-%06d", rng.Intn(5000)))
		fb.Append(rng.Float64())
	}
	cols := []arrow.Array{ib.Finish(), sb.Finish(), fb.Finish()}

	start := time.Now()
	enc, _ := rowformat.NewEncoder([]*arrow.DataType{arrow.Int64, arrow.String, arrow.Float64}, nil)
	keys := enc.EncodeRows(cols, n)
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool { return bytes.Compare(keys[idx[a]], keys[idx[b]]) < 0 })
	withRF := time.Since(start)

	start = time.Now()
	compute.SortToIndices(cols, []compute.SortKey{{Col: 0}, {Col: 1}, {Col: 2}}, n)
	generic := time.Since(start)

	return Ablation{Name: "normalized-key (RowFormat) sort", On: withRF, Off: generic,
		Note: "memcmp keys vs boxed per-column comparator, 200k rows x 3 cols (§6.6)"}
}

// ablateOrderedAggregation compares streaming aggregation over sorted
// input against hash aggregation of the same data (§6.7).
func ablateOrderedAggregation() (Ablation, error) {
	const n = 1_000_000
	const groups = 10_000
	kb := arrow.NewNumericBuilder[int64](arrow.Int64)
	vb := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < n; i++ {
		kb.Append(int64(i / (n / groups)))
		vb.Append(int64(i))
	}
	schema := arrow.NewSchema(
		arrow.NewField("k", arrow.Int64, false),
		arrow.NewField("v", arrow.Int64, false),
	)
	batch := arrow.NewRecordBatch(schema, []arrow.Array{kb.Finish(), vb.Finish()})

	run := func(declareSorted bool) (time.Duration, error) {
		s := core.NewSession(core.DefaultConfig())
		mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{{batch}})
		if err != nil {
			return 0, err
		}
		if declareSorted {
			mt.WithSortOrder([]catalog.OrderedCol{{Name: "k"}})
		}
		s.RegisterTable("t", mt)
		start := time.Now()
		d, _, err := RunGoFusion(s, "SELECT k, sum(v), count(*) FROM t GROUP BY k")
		_ = start
		return d, err
	}
	sorted, err := run(true)
	if err != nil {
		return Ablation{}, err
	}
	hashed, err := run(false)
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{Name: "sort-order-aware (streaming) aggregation", On: sorted, Off: hashed,
		Note: "group-by over input with a declared sort order vs hash aggregation (§6.7)"}, nil
}

// ablateTopK compares the Top-K operator against a full sort for
// ORDER BY ... LIMIT (§6.2).
func (c Config) ablateTopK() (Ablation, error) {
	s, err := c.GoFusionSession(ClickBench, 1)
	if err != nil {
		return Ablation{}, err
	}
	// With LIMIT the planner selects TopKExec: only 10 wide rows are ever
	// materialized.
	topk, _, err := RunGoFusion(s, "SELECT * FROM hits ORDER BY EventTime LIMIT 10")
	if err != nil {
		return Ablation{}, err
	}
	// Without LIMIT the same ordering fully sorts (and gathers) every
	// column; counting afterwards keeps the client-side output small.
	full, _, err := RunGoFusion(s, "SELECT count(*) FROM (SELECT * FROM hits ORDER BY EventTime) q")
	if err != nil {
		return Ablation{}, err
	}
	return Ablation{Name: "Top-K sort", On: topk, Off: full,
		Note: "bounded-heap Top-K vs full sort (all columns) under ORDER BY ... LIMIT 10 (§6.2)"}, nil
}
