package bench

import (
	"fmt"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/exec"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
)

var aggReg = functions.NewRegistry()

// aggCardTable builds a single-partition in-memory table whose key columns
// repeat with the given cardinality. Shapes:
//
//	"int"   — one int64 key (the group-table primitive fast path)
//	"str"   — one string key (variable-width rowformat keys)
//	"mixed" — int64 + string keys (multi-column generic path)
//
// The value column is always int64 so the aggregate work is identical
// across shapes; only group-id assignment differs.
func aggCardTable(b *testing.B, rows, card int, shape string) *catalog.MemTable {
	b.Helper()
	fields := []arrow.Field{}
	useInt := shape == "int" || shape == "mixed"
	useStr := shape == "str" || shape == "mixed"
	if useInt {
		fields = append(fields, arrow.NewField("k_int", arrow.Int64, false))
	}
	if useStr {
		fields = append(fields, arrow.NewField("k_str", arrow.String, false))
	}
	fields = append(fields, arrow.NewField("v", arrow.Int64, false))
	schema := arrow.NewSchema(fields...)

	seed := uint64(0x1234_5678)
	next := func() uint64 {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}
	var batches []*arrow.RecordBatch
	const chunk = 8192
	for start := 0; start < rows; start += chunk {
		n := chunk
		if start+n > rows {
			n = rows - start
		}
		var cols []arrow.Array
		ib := arrow.NewNumericBuilder[int64](arrow.Int64)
		sb := arrow.NewStringBuilder(arrow.String)
		vb := arrow.NewNumericBuilder[int64](arrow.Int64)
		for i := 0; i < n; i++ {
			r := next()
			k := r % uint64(card)
			if useInt {
				ib.Append(int64(k))
			}
			if useStr {
				sb.Append(fmt.Sprintf("key_%08d", k))
			}
			vb.Append(int64(r % 1000))
		}
		if useInt {
			cols = append(cols, ib.Finish())
		}
		if useStr {
			cols = append(cols, sb.Finish())
		}
		cols = append(cols, vb.Finish())
		batches = append(batches, arrow.NewRecordBatch(schema, cols))
	}
	mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{batches})
	if err != nil {
		b.Fatal(err)
	}
	return mt
}

func groupExprsFor(shape string) []logical.Expr {
	switch shape {
	case "int":
		return []logical.Expr{logical.Col("k_int")}
	case "str":
		return []logical.Expr{logical.Col("k_str")}
	default:
		return []logical.Expr{logical.Col("k_int"), logical.Col("k_str")}
	}
}

// BenchmarkAggCardinality measures the full GROUP BY pipeline (group-id
// assignment + accumulator update + emit) at low, medium and high key
// cardinality over int, string and mixed keys. The group table dominates
// at low cardinality where almost every row is a repeated key.
func BenchmarkAggCardinality(b *testing.B) {
	const rows = 256 * 1024
	for _, card := range []int{10, 1_000, 100_000} {
		for _, shape := range []string{"int", "str", "mixed"} {
			b.Run(fmt.Sprintf("card=%d/cols=%s", card, shape), func(b *testing.B) {
				mt := aggCardTable(b, rows, card, shape)
				plan, err := logical.NewBuilder(aggReg).
					Scan("t", mt).
					Aggregate(groupExprsFor(shape),
						[]logical.Expr{
							&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("v")}},
							&logical.AggFunc{Name: "count"},
						}).
					Build()
				if err != nil {
					b.Fatal(err)
				}
				cfg := &exec.PlannerConfig{TargetPartitions: 1, Reg: aggReg}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					pp, err := exec.CreatePhysicalPlan(plan, cfg)
					if err != nil {
						b.Fatal(err)
					}
					out, err := exec.CollectBatch(physical.NewExecContext(), pp)
					if err != nil {
						b.Fatal(err)
					}
					if out.NumRows() > card {
						b.Fatalf("groups = %d, want <= %d", out.NumRows(), card)
					}
				}
				b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
			})
		}
	}
}

// BenchmarkJoinProbe measures the hash-join probe loop: a fixed build side
// of `card` distinct int64 keys probed by a large input where every row
// matches. The probe-side group lookup is the steady-state hot path.
func BenchmarkJoinProbe(b *testing.B) {
	const probeRows = 256 * 1024
	for _, card := range []int{1_000, 64 * 1024} {
		b.Run(fmt.Sprintf("buildKeys=%d", card), func(b *testing.B) {
			buildSchema := arrow.NewSchema(
				arrow.NewField("bk", arrow.Int64, false),
				arrow.NewField("bv", arrow.Int64, false),
			)
			bk := arrow.NewNumericBuilder[int64](arrow.Int64)
			bv := arrow.NewNumericBuilder[int64](arrow.Int64)
			for i := 0; i < card; i++ {
				bk.Append(int64(i))
				bv.Append(int64(i * 7))
			}
			buildMT, err := catalog.NewMemTable(buildSchema, [][]*arrow.RecordBatch{{
				arrow.NewRecordBatch(buildSchema, []arrow.Array{bk.Finish(), bv.Finish()}),
			}})
			if err != nil {
				b.Fatal(err)
			}
			probeMT := aggCardTable(b, probeRows, card, "int")

			// HashJoinExec builds from the left input and probes with the
			// right, so the small table is the builder's base plan and the
			// big input streams through the probe loop.
			probePlan, err := logical.NewBuilder(aggReg).Scan("probe", probeMT).Build()
			if err != nil {
				b.Fatal(err)
			}
			plan, err := logical.NewBuilder(aggReg).
				Scan("build", buildMT).
				Join(probePlan, logical.RightSemiJoin,
					[]logical.EquiPair{{L: logical.Col("bk"), R: logical.Col("k_int")}}, nil).
				Build()
			if err != nil {
				b.Fatal(err)
			}
			cfg := &exec.PlannerConfig{TargetPartitions: 1, Reg: aggReg, PreferHashJoin: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pp, err := exec.CreatePhysicalPlan(plan, cfg)
				if err != nil {
					b.Fatal(err)
				}
				out, err := exec.CollectBatch(physical.NewExecContext(), pp)
				if err != nil {
					b.Fatal(err)
				}
				if out.NumRows() != probeRows {
					b.Fatalf("matched %d rows, want %d", out.NumRows(), probeRows)
				}
			}
			b.ReportMetric(float64(probeRows)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrows/s")
		})
	}
}
