// Native fuzz targets for the SQL front end. Two invariants:
//
//  1. the lexer and parser never panic, on any input;
//  2. any input that parses successfully round-trips through the AST
//     printer: the printed SQL reparses, and printing the reparsed AST
//     reproduces the same string (print-stability).
//
// The seed corpus is every query string already exercised by the repo's
// tests: the TPC-H, ClickBench and H2O workloads plus the parser unit-test
// queries (valid and invalid).
package sql_test

import (
	"testing"

	"gofusion/internal/sql"
	"gofusion/internal/workload/clickbench"
	"gofusion/internal/workload/h2o"
	"gofusion/internal/workload/tpch"
)

// seedQueries returns the fuzz seed corpus: every query string present in
// the repo's tests.
func seedQueries() []string {
	out := []string{
		// parser unit-test queries (parser_test.go).
		"SELECT a, b AS bee, * FROM t WHERE a > 10 ORDER BY a DESC LIMIT 5 OFFSET 2",
		"SELECT a + b * c - d FROM t",
		"SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3",
		"SELECT 1 FROM t WHERE NOT a = 1 AND b = 2",
		`SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c USING (k) CROSS JOIN d`,
		`SELECT (SELECT max(x) FROM u) FROM t WHERE EXISTS (SELECT 1 FROM v) AND a IN (SELECT b FROM w) AND c NOT IN (1, 2)`,
		"SELECT * FROM (SELECT a FROM t) AS sub",
		`SELECT count(*), sum(DISTINCT x), avg(y) FILTER (WHERE y > 0),
		 rank() OVER (PARTITION BY g ORDER BY y DESC ROWS BETWEEN 1 PRECEDING AND CURRENT ROW) FROM t`,
		`SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, CASE b WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t`,
		`SELECT EXTRACT(YEAR FROM d), substring(s FROM 1 FOR 2), substring(s, 3) FROM t`,
		`WITH r AS (SELECT a FROM t) SELECT a FROM r UNION ALL SELECT b FROM u ORDER BY 1`,
		`SELECT a, b, count(*) FROM t GROUP BY GROUPING SETS ((a, b), (a), ())`,
		`SELECT a, b, count(*) FROM t GROUP BY ROLLUP (a, b)`,
		`SELECT a, b, count(*) FROM t GROUP BY CUBE (a, b)`,
		"EXPLAIN SELECT 1",
		"SELECT 'it''s', \"Weird \"\"Col\"\"\" -- comment\nFROM t",
		"SELECT 1 FROM t WHERE a BETWEEN 1 AND 10 AND b NOT BETWEEN c AND d",
		"SELECT CAST(a AS DOUBLE), a::BIGINT, x IS NOT NULL, s LIKE 'a%', s NOT ILIKE '_b' FROM t",
		"SELECT DISTINCT a FROM t HAVING count(*) > 1",
		"VALUES (1, 'a'), (2, 'b')",
		"SELECT DATE '1994-01-01' + INTERVAL '3' MONTH, TIMESTAMP '2013-07-15 12:30:45' FROM t",
		"SELECT * FROM s.t AS x NATURAL JOIN u",
		// invalid inputs: the parser must reject these without panicking.
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t JOIN u",
		"SELECT CAST(a AS notatype) FROM t",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t ORDER BY a ASC garbage extra",
		"", "(", "'", "\"", "1e", ".", "--", "/*",
	}
	for _, q := range tpch.Queries {
		out = append(out, q)
	}
	for _, q := range clickbench.Queries() {
		out = append(out, q)
	}
	for _, q := range h2o.Queries {
		out = append(out, q)
	}
	return out
}

// roundTrip checks print-stability of one input; returns a non-empty
// failure description on violation.
func roundTrip(input string) string {
	stmt, err := sql.Parse(input)
	if err != nil {
		return "" // rejected inputs are fine; panics are caught by the harness
	}
	printed := sql.FormatStatement(stmt)
	stmt2, err := sql.Parse(printed)
	if err != nil {
		return "printed SQL does not reparse: " + printed + ": " + err.Error()
	}
	printed2 := sql.FormatStatement(stmt2)
	if printed != printed2 {
		return "printer not stable:\n  first:  " + printed + "\n  second: " + printed2
	}
	return ""
}

func FuzzParseRoundTrip(f *testing.F) {
	for _, q := range seedQueries() {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if msg := roundTrip(input); msg != "" {
			t.Fatalf("%s\ninput: %q", msg, input)
		}
	})
}

func FuzzLexer(f *testing.F) {
	for _, q := range seedQueries() {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, input string) {
		// Must never panic; lex errors are fine.
		toks, err := sql.NewLexer(input).Tokenize()
		if err == nil && len(toks) == 0 {
			t.Fatal("successful lex returned no tokens (missing EOF)")
		}
	})
}

// TestPrinterRoundTripCorpus runs the round-trip property over the whole
// seed corpus deterministically (fuzz seeds also run under plain `go
// test`, but this gives one named, always-on entry point).
func TestPrinterRoundTripCorpus(t *testing.T) {
	for _, q := range seedQueries() {
		if msg := roundTrip(q); msg != "" {
			t.Errorf("%s\ninput: %q", msg, q)
		}
	}
}
