// Package sql implements the SQL front end: a hand-written lexer and
// recursive-descent parser producing statement ASTs whose expressions are
// logical.Expr trees (paper Section 5.3.2). The planner package lowers
// these ASTs to LogicalPlans.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer output.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokQuotedIdent
	TokNumber
	TokString
	TokOp      // punctuation and operators
	TokKeyword // reserved word (uppercased in Text)
)

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "<eof>"
	}
	return t.Text
}

// keywords recognized by the lexer (a word not in this set lexes as an
// identifier).
var keywords = map[string]bool{}

func init() {
	for _, k := range []string{
		"SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "OFFSET",
		"AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE", "ILIKE", "BETWEEN", "EXISTS",
		"JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS", "ON", "USING", "NATURAL",
		"UNION", "ALL", "INTERSECT", "EXCEPT", "DISTINCT", "CASE", "WHEN", "THEN", "ELSE", "END",
		"CAST", "TRUE", "FALSE", "ASC", "DESC", "NULLS", "FIRST", "LAST",
		"WITH", "RECURSIVE", "OVER", "PARTITION", "ROWS", "RANGE", "UNBOUNDED", "PRECEDING",
		"FOLLOWING", "CURRENT", "ROW", "FILTER", "INTERVAL", "EXTRACT", "SUBSTRING", "FOR",
		"DATE", "TIMESTAMP", "VALUES", "EXPLAIN", "ANALYZE", "GROUPING", "SETS", "ROLLUP", "CUBE",
		"SEMI", "ANTI", "CREATE", "TABLE", "INSERT", "INTO", "COPY", "FORMAT",
	} {
		keywords[k] = true
	}
}

// Lexer tokenizes SQL text.
type Lexer struct {
	src string
	pos int
}

// NewLexer starts lexing src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Tokenize lexes the whole input.
func (l *Lexer) Tokenize() ([]Token, error) {
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) next() (Token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return Token{}, fmt.Errorf("sql: unterminated block comment at %d", l.pos)
			}
			l.pos += end + 4
		default:
			goto lex
		}
	}
lex:
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case c == '\'': // string literal with '' escapes
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string at %d", start)
			}
			ch := l.src[l.pos]
			if ch == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil

	case c == '"': // quoted identifier
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated quoted identifier at %d", start)
			}
			ch := l.src[l.pos]
			if ch == '"' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '"' {
					sb.WriteByte('"')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			sb.WriteByte(ch)
			l.pos++
		}
		return Token{Kind: TokQuotedIdent, Text: sb.String(), Pos: start}, nil

	case c >= '0' && c <= '9' || (c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9'):
		l.pos++
		seenDot := c == '.'
		seenExp := false
		for l.pos < len(l.src) {
			ch := l.src[l.pos]
			if ch >= '0' && ch <= '9' {
				l.pos++
				continue
			}
			if ch == '.' && !seenDot && !seenExp {
				seenDot = true
				l.pos++
				continue
			}
			if (ch == 'e' || ch == 'E') && !seenExp {
				seenExp = true
				l.pos++
				if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
					l.pos++
				}
				continue
			}
			break
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil

	case isIdentStart(rune(c)):
		l.pos++
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: word, Pos: start}, nil

	default:
		// Multi-char operators first.
		for _, op := range []string{"<>", "!=", ">=", "<=", "||", "::"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				return Token{Kind: TokOp, Text: op, Pos: start}, nil
			}
		}
		switch c {
		case '(', ')', ',', '.', ';', '+', '-', '*', '/', '%', '<', '>', '=':
			l.pos++
			return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at %d", c, start)
	}
}

func isIdentStart(c rune) bool {
	return c == '_' || unicode.IsLetter(c)
}

func isIdentPart(c rune) bool {
	return c == '_' || c == '$' || unicode.IsLetter(c) || unicode.IsDigit(c)
}
