package sql

import (
	"fmt"
	"strconv"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/logical"
)

// Operator precedence levels (higher binds tighter).
const (
	precOr     = 1
	precAnd    = 2
	precNot    = 3
	precCmp    = 4
	precConcat = 5
	precAdd    = 6
	precMul    = 7
	precUnary  = 8
)

var binOpPrec = map[string]int{
	"=": precCmp, "<>": precCmp, "!=": precCmp, "<": precCmp, "<=": precCmp,
	">": precCmp, ">=": precCmp,
	"||": precConcat,
	"+":  precAdd, "-": precAdd,
	"*": precMul, "/": precMul, "%": precMul,
}

var binOpOf = map[string]logical.BinOp{
	"=": logical.OpEq, "<>": logical.OpNeq, "!=": logical.OpNeq,
	"<": logical.OpLt, "<=": logical.OpLtEq, ">": logical.OpGt, ">=": logical.OpGtEq,
	"||": logical.OpConcat,
	"+":  logical.OpAdd, "-": logical.OpSub, "*": logical.OpMul,
	"/": logical.OpDiv, "%": logical.OpMod,
}

// parseExpr parses an expression with precedence climbing.
func (p *Parser) parseExpr(minPrec int) (logical.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return p.parseInfix(left, minPrec)
}

func (p *Parser) parseUnary() (logical.Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokKeyword && t.Text == "NOT":
		p.advance()
		inner, err := p.parseExpr(precNot)
		if err != nil {
			return nil, err
		}
		return &logical.Not{E: inner}, nil
	case t.Kind == TokOp && t.Text == "-":
		p.advance()
		inner, err := p.parseExpr(precUnary)
		if err != nil {
			return nil, err
		}
		if lit, ok := inner.(*logical.Literal); ok && !lit.Value.Null {
			switch v := lit.Value.Val.(type) {
			case int64:
				return logical.Lit(-v), nil
			case float64:
				return logical.Lit(-v), nil
			}
		}
		return &logical.Negative{E: inner}, nil
	case t.Kind == TokOp && t.Text == "+":
		p.advance()
		return p.parseExpr(precUnary)
	}
	return p.parsePrimary()
}

func (p *Parser) parseInfix(left logical.Expr, minPrec int) (logical.Expr, error) {
	for {
		t := p.peek()
		switch {
		case t.Kind == TokKeyword && t.Text == "OR" && precOr >= minPrec:
			p.advance()
			right, err := p.parseExpr(precOr + 1)
			if err != nil {
				return nil, err
			}
			left = &logical.BinaryExpr{Op: logical.OpOr, L: left, R: right}
		case t.Kind == TokKeyword && t.Text == "AND" && precAnd >= minPrec:
			p.advance()
			right, err := p.parseExpr(precAnd + 1)
			if err != nil {
				return nil, err
			}
			left = &logical.BinaryExpr{Op: logical.OpAnd, L: left, R: right}
		case t.Kind == TokKeyword && t.Text == "IS" && precCmp >= minPrec:
			p.advance()
			negated := p.acceptKw("NOT")
			switch {
			case p.acceptKw("NULL"):
				left = &logical.IsNull{E: left, Negated: negated}
			case p.acceptKw("TRUE"):
				cmp := logical.Expr(&logical.BinaryExpr{Op: logical.OpEq, L: left, R: logical.Lit(true)})
				if negated {
					cmp = &logical.Not{E: cmp}
				}
				left = cmp
			case p.acceptKw("FALSE"):
				cmp := logical.Expr(&logical.BinaryExpr{Op: logical.OpEq, L: left, R: logical.Lit(false)})
				if negated {
					cmp = &logical.Not{E: cmp}
				}
				left = cmp
			default:
				return nil, p.errf("expected NULL, TRUE, or FALSE after IS")
			}
		case t.Kind == TokKeyword && (t.Text == "IN" || t.Text == "LIKE" || t.Text == "ILIKE" || t.Text == "BETWEEN" || t.Text == "NOT") && precCmp >= minPrec:
			negated := false
			if t.Text == "NOT" {
				nt := p.peekAt(1)
				if nt.Kind != TokKeyword || (nt.Text != "IN" && nt.Text != "LIKE" && nt.Text != "ILIKE" && nt.Text != "BETWEEN") {
					return left, nil
				}
				p.advance()
				negated = true
			}
			var err error
			left, err = p.parseSuffixPredicate(left, negated)
			if err != nil {
				return nil, err
			}
		case t.Kind == TokOp && binOpPrec[t.Text] != 0 && binOpPrec[t.Text] >= minPrec:
			prec := binOpPrec[t.Text]
			op := binOpOf[t.Text]
			p.advance()
			right, err := p.parseExpr(prec + 1)
			if err != nil {
				return nil, err
			}
			left = &logical.BinaryExpr{Op: op, L: left, R: right}
		case t.Kind == TokOp && t.Text == "::":
			p.advance()
			to, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			left = &logical.Cast{E: left, To: to}
		default:
			return left, nil
		}
	}
}

// parseSuffixPredicate handles IN / LIKE / ILIKE / BETWEEN after an
// optional NOT.
func (p *Parser) parseSuffixPredicate(left logical.Expr, negated bool) (logical.Expr, error) {
	switch {
	case p.acceptKw("IN"):
		if err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		if p.peekKw("SELECT") || p.peekKw("WITH") {
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &logical.InSubquery{E: left, Raw: q, Negated: negated}, nil
		}
		var items []logical.Expr
		for {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			items = append(items, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return &logical.InList{E: left, List: items, Negated: negated}, nil
	case p.acceptKw("LIKE"):
		pattern, err := p.parseExpr(precCmp + 1)
		if err != nil {
			return nil, err
		}
		return &logical.Like{E: left, Pattern: pattern, Negated: negated}, nil
	case p.acceptKw("ILIKE"):
		pattern, err := p.parseExpr(precCmp + 1)
		if err != nil {
			return nil, err
		}
		return &logical.Like{E: left, Pattern: pattern, Negated: negated, CaseInsensitive: true}, nil
	case p.acceptKw("BETWEEN"):
		low, err := p.parseExpr(precCmp + 1)
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		high, err := p.parseExpr(precCmp + 1)
		if err != nil {
			return nil, err
		}
		return &logical.Between{E: left, Low: low, High: high, Negated: negated}, nil
	}
	return nil, p.errf("expected IN, LIKE, or BETWEEN")
}

func (p *Parser) parsePrimary() (logical.Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.advance()
		if !strings.ContainsAny(t.Text, ".eE") {
			v, err := strconv.ParseInt(t.Text, 10, 64)
			if err == nil {
				return logical.Lit(v), nil
			}
		}
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errf("bad numeric literal %q", t.Text)
		}
		return logical.Lit(f), nil
	case TokString:
		p.advance()
		return logical.Lit(t.Text), nil
	case TokKeyword:
		switch t.Text {
		case "TRUE":
			p.advance()
			return logical.Lit(true), nil
		case "FALSE":
			p.advance()
			return logical.Lit(false), nil
		case "NULL":
			p.advance()
			return logical.Lit(nil), nil
		case "DATE":
			p.advance()
			s := p.peek()
			if s.Kind != TokString {
				return nil, p.errf("expected string after DATE")
			}
			p.advance()
			d, err := arrow.ParseDate32(s.Text)
			if err != nil {
				return nil, err
			}
			return &logical.Literal{Value: arrow.NewScalar(arrow.Date32, d)}, nil
		case "TIMESTAMP":
			p.advance()
			s := p.peek()
			if s.Kind != TokString {
				return nil, p.errf("expected string after TIMESTAMP")
			}
			p.advance()
			ts, err := arrow.ParseTimestamp(s.Text)
			if err != nil {
				return nil, err
			}
			return &logical.Literal{Value: arrow.NewScalar(arrow.Timestamp, ts)}, nil
		case "INTERVAL":
			p.advance()
			return p.parseIntervalLiteral()
		case "CASE":
			return p.parseCase()
		case "CAST":
			p.advance()
			if err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			inner, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			to, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &logical.Cast{E: inner, To: to}, nil
		case "EXTRACT":
			p.advance()
			if err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			part, err := p.parseIdentOrKeyword()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("FROM"); err != nil {
				return nil, err
			}
			inner, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &logical.ScalarFunc{Name: "date_part",
				Args: []logical.Expr{logical.Lit(strings.ToLower(part)), inner}}, nil
		case "SUBSTRING":
			p.advance()
			if err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			inner, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			args := []logical.Expr{inner}
			if p.acceptKw("FROM") {
				from, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				args = append(args, from)
				if p.acceptKw("FOR") {
					n, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, n)
				}
			} else {
				for p.accept(TokOp, ",") {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
				}
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &logical.ScalarFunc{Name: "substring", Args: args}, nil
		case "EXISTS":
			p.advance()
			if err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return &logical.Exists{Raw: q}, nil
		case "NOT":
			// NOT EXISTS handled via parseUnary; fall through for safety.
			return nil, p.errf("unexpected NOT")
		}
		return nil, p.errf("unexpected keyword %q", t.Text)
	case TokOp:
		if t.Text == "(" {
			p.advance()
			if p.peekKw("SELECT") || p.peekKw("WITH") {
				q, err := p.parseSelectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
				return &logical.ScalarSubquery{Raw: q}, nil
			}
			inner, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			return inner, nil
		}
		return nil, p.errf("unexpected token %q", t.Text)
	case TokIdent, TokQuotedIdent:
		return p.parseIdentExpr()
	}
	return nil, p.errf("unexpected token %q", t.Text)
}

// parseIdentOrKeyword accepts an identifier or any keyword as a word
// (e.g. EXTRACT(YEAR ...), where YEAR is an ident but MONTH may clash).
func (p *Parser) parseIdentOrKeyword() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent || t.Kind == TokQuotedIdent || t.Kind == TokKeyword {
		p.advance()
		return t.Text, nil
	}
	return "", p.errf("expected identifier")
}

// parseIdentExpr parses a column reference or function call.
func (p *Parser) parseIdentExpr() (logical.Expr, error) {
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	// Function call?
	if p.peek().Kind == TokOp && p.peek().Text == "(" {
		return p.parseFuncCall(name)
	}
	// Qualified column a.b
	if p.accept(TokOp, ".") {
		second, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		return &logical.Column{Relation: name, Name: second}, nil
	}
	return &logical.Column{Name: name}, nil
}

func (p *Parser) parseFuncCall(name string) (logical.Expr, error) {
	if err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	fn := &logical.UnresolvedFunc{Name: strings.ToLower(name)}
	if p.accept(TokOp, "*") {
		fn.Star = true
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
	} else {
		if p.acceptKw("DISTINCT") {
			fn.Distinct = true
		}
		if !p.accept(TokOp, ")") {
			for {
				a, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				fn.Args = append(fn.Args, a)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
		}
	}
	if p.acceptKw("FILTER") {
		if err := p.expect(TokOp, "("); err != nil {
			return nil, err
		}
		if err := p.expectKw("WHERE"); err != nil {
			return nil, err
		}
		f, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		fn.Filter = f
	}
	if p.acceptKw("OVER") {
		over, err := p.parseOverClause()
		if err != nil {
			return nil, err
		}
		fn.Over = over
	}
	return fn, nil
}

func (p *Parser) parseOverClause() (*logical.OverClause, error) {
	if err := p.expect(TokOp, "("); err != nil {
		return nil, err
	}
	over := &logical.OverClause{}
	if p.acceptKw("PARTITION") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			over.PartitionBy = append(over.PartitionBy, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			nullsFirst := item.NullsFirst
			if !item.NullsSet {
				nullsFirst = !item.Asc
			}
			over.OrderBy = append(over.OrderBy, logical.SortExpr{E: item.E, Asc: item.Asc, NullsFirst: nullsFirst})
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.peekKw("ROWS") || p.peekKw("RANGE") {
		frame, err := p.parseFrame()
		if err != nil {
			return nil, err
		}
		over.Frame = frame
	}
	if err := p.expect(TokOp, ")"); err != nil {
		return nil, err
	}
	return over, nil
}

func (p *Parser) parseFrame() (*logical.WindowFrame, error) {
	frame := &logical.WindowFrame{}
	if p.acceptKw("ROWS") {
		frame.Rows = true
	} else if err := p.expectKw("RANGE"); err != nil {
		return nil, err
	}
	parseBound := func() (logical.FrameBound, error) {
		switch {
		case p.acceptKw("UNBOUNDED"):
			if p.acceptKw("PRECEDING") {
				return logical.FrameBound{Kind: logical.UnboundedPreceding}, nil
			}
			if err := p.expectKw("FOLLOWING"); err != nil {
				return logical.FrameBound{}, err
			}
			return logical.FrameBound{Kind: logical.UnboundedFollowing}, nil
		case p.acceptKw("CURRENT"):
			if err := p.expectKw("ROW"); err != nil {
				return logical.FrameBound{}, err
			}
			return logical.FrameBound{Kind: logical.CurrentRow}, nil
		default:
			t := p.peek()
			if t.Kind != TokNumber {
				return logical.FrameBound{}, p.errf("expected frame bound")
			}
			p.advance()
			n, err := strconv.ParseInt(t.Text, 10, 64)
			if err != nil {
				return logical.FrameBound{}, err
			}
			if p.acceptKw("PRECEDING") {
				return logical.FrameBound{Kind: logical.OffsetPreceding, Offset: n}, nil
			}
			if err := p.expectKw("FOLLOWING"); err != nil {
				return logical.FrameBound{}, err
			}
			return logical.FrameBound{Kind: logical.OffsetFollowing, Offset: n}, nil
		}
	}
	if p.acceptKw("BETWEEN") {
		start, err := parseBound()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		end, err := parseBound()
		if err != nil {
			return nil, err
		}
		frame.Start, frame.End = start, end
		return frame, nil
	}
	start, err := parseBound()
	if err != nil {
		return nil, err
	}
	frame.Start = start
	frame.End = logical.FrameBound{Kind: logical.CurrentRow}
	return frame, nil
}

func (p *Parser) parseCase() (logical.Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	out := &logical.Case{}
	if !p.peekKw("WHEN") {
		op, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		out.Operand = op
	}
	for p.acceptKw("WHEN") {
		w, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		th, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, logical.WhenClause{When: w, Then: th})
	}
	if len(out.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseIntervalLiteral parses INTERVAL '<n>' [unit] and INTERVAL
// '<n> <unit> [<n> <unit> ...]' forms.
func (p *Parser) parseIntervalLiteral() (logical.Expr, error) {
	s := p.peek()
	if s.Kind != TokString {
		return nil, p.errf("expected string after INTERVAL")
	}
	p.advance()
	body := strings.TrimSpace(s.Text)
	// Optional trailing unit keyword: INTERVAL '3' DAY
	var unit string
	if t := p.peek(); t.Kind == TokIdent {
		if isIntervalUnit(t.Text) {
			unit = strings.ToLower(t.Text)
			p.advance()
		}
	}
	var total arrow.MonthDayMicro
	if len(strings.Fields(body)) == 0 {
		return nil, p.errf("empty interval literal")
	}
	if unit != "" {
		n, err := strconv.ParseInt(strings.Fields(body)[0], 10, 64)
		if err != nil {
			return nil, p.errf("bad interval quantity %q", body)
		}
		add, err := intervalOf(n, unit)
		if err != nil {
			return nil, err
		}
		total = addIntervals(total, add)
	} else {
		fields := strings.Fields(body)
		if len(fields) == 1 {
			// Bare number defaults to days.
			n, err := strconv.ParseInt(fields[0], 10, 64)
			if err != nil {
				return nil, p.errf("bad interval %q", body)
			}
			total = arrow.MonthDayMicro{Days: int32(n)}
		} else {
			if len(fields)%2 != 0 {
				return nil, p.errf("bad interval %q", body)
			}
			for i := 0; i < len(fields); i += 2 {
				n, err := strconv.ParseInt(fields[i], 10, 64)
				if err != nil {
					return nil, p.errf("bad interval quantity %q", fields[i])
				}
				add, err := intervalOf(n, strings.ToLower(strings.TrimSuffix(fields[i+1], "s")))
				if err != nil {
					return nil, err
				}
				total = addIntervals(total, add)
			}
		}
	}
	return &logical.Literal{Value: arrow.NewScalar(arrow.Interval, total)}, nil
}

func isIntervalUnit(s string) bool {
	switch strings.ToLower(strings.TrimSuffix(s, "s")) {
	case "year", "month", "week", "day", "hour", "minute", "second", "millisecond", "microsecond":
		return true
	}
	return false
}

func intervalOf(n int64, unit string) (arrow.MonthDayMicro, error) {
	switch strings.TrimSuffix(unit, "s") {
	case "year":
		return arrow.MonthDayMicro{Months: int32(n * 12)}, nil
	case "month":
		return arrow.MonthDayMicro{Months: int32(n)}, nil
	case "week":
		return arrow.MonthDayMicro{Days: int32(n * 7)}, nil
	case "day":
		return arrow.MonthDayMicro{Days: int32(n)}, nil
	case "hour":
		return arrow.MonthDayMicro{Micros: n * 3_600_000_000}, nil
	case "minute":
		return arrow.MonthDayMicro{Micros: n * 60_000_000}, nil
	case "second":
		return arrow.MonthDayMicro{Micros: n * 1_000_000}, nil
	case "millisecond":
		return arrow.MonthDayMicro{Micros: n * 1000}, nil
	case "microsecond":
		return arrow.MonthDayMicro{Micros: n}, nil
	}
	return arrow.MonthDayMicro{}, fmt.Errorf("sql: unknown interval unit %q", unit)
}

func addIntervals(a, b arrow.MonthDayMicro) arrow.MonthDayMicro {
	return arrow.MonthDayMicro{Months: a.Months + b.Months, Days: a.Days + b.Days, Micros: a.Micros + b.Micros}
}

// parseTypeName parses a SQL type name into an arrow type.
func (p *Parser) parseTypeName() (*arrow.DataType, error) {
	word, err := p.parseIdentOrKeywordForType()
	if err != nil {
		return nil, err
	}
	upper := strings.ToUpper(word)
	parseParens := func() (int, int, bool, error) {
		if !p.accept(TokOp, "(") {
			return 0, 0, false, nil
		}
		t := p.peek()
		if t.Kind != TokNumber {
			return 0, 0, false, p.errf("expected number in type parameters")
		}
		p.advance()
		a, _ := strconv.Atoi(t.Text)
		b := 0
		if p.accept(TokOp, ",") {
			t2 := p.peek()
			if t2.Kind != TokNumber {
				return 0, 0, false, p.errf("expected number in type parameters")
			}
			p.advance()
			b, _ = strconv.Atoi(t2.Text)
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return 0, 0, false, err
		}
		return a, b, true, nil
	}
	switch upper {
	case "INT", "INTEGER", "INT4":
		return arrow.Int32, nil
	case "BIGINT", "INT8", "LONG":
		return arrow.Int64, nil
	case "SMALLINT", "INT2":
		return arrow.Int16, nil
	case "TINYINT":
		return arrow.Int8, nil
	case "REAL", "FLOAT4":
		return arrow.Float32, nil
	case "DOUBLE", "FLOAT", "FLOAT8":
		p.acceptKw("PRECISION")
		if p.peek().Kind == TokIdent && strings.EqualFold(p.peek().Text, "precision") {
			p.advance()
		}
		return arrow.Float64, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR", "CHARACTER":
		if _, _, _, err := parseParens(); err != nil {
			return nil, err
		}
		return arrow.String, nil
	case "DATE":
		return arrow.Date32, nil
	case "TIMESTAMP":
		return arrow.Timestamp, nil
	case "BOOLEAN", "BOOL":
		return arrow.Boolean, nil
	case "DECIMAL", "NUMERIC":
		prec, scale, ok, err := parseParens()
		if err != nil {
			return nil, err
		}
		if !ok {
			prec, scale = 18, 2
		}
		return arrow.Decimal(prec, scale), nil
	case "INTERVAL":
		return arrow.Interval, nil
	}
	return nil, p.errf("unknown type %q", word)
}

func (p *Parser) parseIdentOrKeywordForType() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent || t.Kind == TokKeyword {
		p.advance()
		return t.Text, nil
	}
	return "", p.errf("expected type name")
}
