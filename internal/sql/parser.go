package sql

import (
	"fmt"
	"strings"

	"gofusion/internal/logical"
)

// Parser is a recursive-descent SQL parser.
type Parser struct {
	tokens []Token
	pos    int
}

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := NewLexer(src).Tokenize()
	if err != nil {
		return nil, err
	}
	p := &Parser{tokens: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(TokOp, ";")
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

// ParseQuery parses a statement that must be a query.
func ParseQuery(src string) (*SelectStmt, error) {
	stmt, err := Parse(src)
	if err != nil {
		return nil, err
	}
	q, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a query")
	}
	return q, nil
}

func (p *Parser) peek() Token { return p.tokens[p.pos] }
func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.tokens) {
		return p.tokens[len(p.tokens)-1]
	}
	return p.tokens[p.pos+n]
}
func (p *Parser) advance() Token {
	t := p.tokens[p.pos]
	if p.pos < len(p.tokens)-1 {
		p.pos++
	}
	return t
}
func (p *Parser) atEOF() bool { return p.peek().Kind == TokEOF }

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near position %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

// accept consumes the next token if it matches.
func (p *Parser) accept(kind TokenKind, text string) bool {
	t := p.peek()
	if t.Kind == kind && (text == "" || t.Text == text) {
		p.advance()
		return true
	}
	return false
}

// acceptKw consumes a keyword.
func (p *Parser) acceptKw(kw string) bool { return p.accept(TokKeyword, kw) }

// expect consumes a required token.
func (p *Parser) expect(kind TokenKind, text string) error {
	if !p.accept(kind, text) {
		return p.errf("expected %q, found %q", text, p.peek().Text)
	}
	return nil
}

func (p *Parser) expectKw(kw string) error { return p.expect(TokKeyword, kw) }

// peekKw reports whether the next token is the given keyword.
func (p *Parser) peekKw(kw string) bool {
	t := p.peek()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) parseStatement() (Statement, error) {
	if p.acceptKw("EXPLAIN") {
		analyze := p.acceptKw("ANALYZE")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner, Analyze: analyze}, nil
	}
	if p.acceptKw("CREATE") {
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AS"); err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Query: q}, nil
	}
	if p.acceptKw("INSERT") {
		if err := p.expectKw("INTO"); err != nil {
			return nil, err
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		return &InsertStmt{Table: name, Query: q}, nil
	}
	if p.acceptKw("COPY") {
		if err := p.expectKw("INTO"); err != nil {
			return nil, err
		}
		name, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("FROM"); err != nil {
			return nil, err
		}
		pathTok := p.peek()
		if pathTok.Kind != TokString {
			return nil, p.errf("expected a quoted file path, found %q", pathTok.Text)
		}
		p.advance()
		format := ""
		if p.acceptKw("FORMAT") {
			t := p.peek()
			switch t.Kind {
			case TokIdent, TokQuotedIdent, TokString:
				format = strings.ToLower(t.Text)
				p.advance()
			default:
				return nil, p.errf("expected a format name, found %q", t.Text)
			}
		}
		return &CopyStmt{Table: name, Path: pathTok.Text, Format: format}, nil
	}
	if p.peekKw("SELECT") || p.peekKw("WITH") || p.peekKw("VALUES") || (p.peek().Kind == TokOp && p.peek().Text == "(") {
		return p.parseSelectStmt()
	}
	return nil, p.errf("expected SELECT, WITH, VALUES, CREATE, INSERT, COPY, or EXPLAIN, found %q", p.peek().Text)
}

func (p *Parser) parseSelectStmt() (*SelectStmt, error) {
	stmt := &SelectStmt{}
	if p.acceptKw("WITH") {
		recursive := p.acceptKw("RECURSIVE")
		for {
			name, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("AS"); err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			stmt.With = append(stmt.With, CTE{Name: name, Query: q, Recursive: recursive})
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	body, err := p.parseSetExpr()
	if err != nil {
		return nil, err
	}
	stmt.Body = body

	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			item, err := p.parseOrderItem()
			if err != nil {
				return nil, err
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		if p.acceptKw("ALL") {
			// LIMIT ALL = no limit
		} else {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			stmt.Limit = e
		}
	}
	if p.acceptKw("OFFSET") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		stmt.Offset = e
		p.acceptKw("ROWS") // OFFSET n ROWS
		p.acceptKw("ROW")
	}
	// LIMIT may also follow OFFSET.
	if stmt.Limit == nil && p.acceptKw("LIMIT") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		stmt.Limit = e
	}
	return stmt, nil
}

func (p *Parser) parseOrderItem() (OrderItem, error) {
	e, err := p.parseExpr(0)
	if err != nil {
		return OrderItem{}, err
	}
	item := OrderItem{E: e, Asc: true}
	if p.acceptKw("DESC") {
		item.Asc = false
	} else {
		p.acceptKw("ASC")
	}
	if p.acceptKw("NULLS") {
		item.NullsSet = true
		if p.acceptKw("FIRST") {
			item.NullsFirst = true
		} else if err := p.expectKw("LAST"); err != nil {
			return OrderItem{}, err
		}
	}
	return item, nil
}

// parseSetExpr parses UNION/INTERSECT/EXCEPT chains (left-associative;
// INTERSECT binds tighter per the standard, simplified to equal
// precedence here).
func (p *Parser) parseSetExpr() (SetExpr, error) {
	left, err := p.parseSetPrimary()
	if err != nil {
		return nil, err
	}
	for {
		var kind SetOpKind
		switch {
		case p.acceptKw("UNION"):
			kind = SetUnion
		case p.acceptKw("INTERSECT"):
			kind = SetIntersect
		case p.acceptKw("EXCEPT"):
			kind = SetExcept
		default:
			return left, nil
		}
		all := p.acceptKw("ALL")
		p.acceptKw("DISTINCT")
		right, err := p.parseSetPrimary()
		if err != nil {
			return nil, err
		}
		left = &SetOp{Kind: kind, All: all, L: left, R: right}
	}
}

func (p *Parser) parseSetPrimary() (SetExpr, error) {
	if p.accept(TokOp, "(") {
		inner, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	if p.acceptKw("VALUES") {
		v := &ValuesClause{}
		for {
			if err := p.expect(TokOp, "("); err != nil {
				return nil, err
			}
			var row []logical.Expr
			for {
				e, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(TokOp, ",") {
					break
				}
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			v.Rows = append(v.Rows, row)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		return v, nil
	}
	return p.parseSelectCore()
}

func (p *Parser) parseSelectCore() (*SelectCore, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	if p.acceptKw("DISTINCT") {
		core.Distinct = true
	} else {
		p.acceptKw("ALL")
	}
	// Projection list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Projection = append(core.Projection, item)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	if p.acceptKw("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			core.From = append(core.From, tr)
			if !p.accept(TokOp, ",") {
				break
			}
		}
	}
	if p.acceptKw("WHERE") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		sets, plain, err := p.parseGroupBy()
		if err != nil {
			return nil, err
		}
		core.GroupBy = plain
		core.GroupingSets = sets
	}
	if p.acceptKw("HAVING") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

// parseGroupBy handles plain lists, GROUPING SETS, ROLLUP and CUBE.
func (p *Parser) parseGroupBy() ([][]logical.Expr, []logical.Expr, error) {
	if p.acceptKw("GROUPING") {
		if err := p.expectKw("SETS"); err != nil {
			return nil, nil, err
		}
		if err := p.expect(TokOp, "("); err != nil {
			return nil, nil, err
		}
		var sets [][]logical.Expr
		for {
			if err := p.expect(TokOp, "("); err != nil {
				return nil, nil, err
			}
			var set []logical.Expr
			if !p.accept(TokOp, ")") {
				for {
					e, err := p.parseExpr(0)
					if err != nil {
						return nil, nil, err
					}
					set = append(set, e)
					if !p.accept(TokOp, ",") {
						break
					}
				}
				if err := p.expect(TokOp, ")"); err != nil {
					return nil, nil, err
				}
			}
			sets = append(sets, set)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, nil, err
		}
		return sets, nil, nil
	}
	if p.acceptKw("ROLLUP") || p.acceptKw("CUBE") {
		isRollup := p.tokens[p.pos-1].Text == "ROLLUP"
		if err := p.expect(TokOp, "("); err != nil {
			return nil, nil, err
		}
		var keys []logical.Expr
		for {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, nil, err
			}
			keys = append(keys, e)
			if !p.accept(TokOp, ",") {
				break
			}
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, nil, err
		}
		var sets [][]logical.Expr
		if isRollup {
			for i := len(keys); i >= 0; i-- {
				sets = append(sets, append([]logical.Expr{}, keys[:i]...))
			}
		} else {
			// CUBE: all subsets.
			n := len(keys)
			for mask := 0; mask < 1<<n; mask++ {
				var set []logical.Expr
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						set = append(set, keys[i])
					}
				}
				sets = append(sets, set)
			}
		}
		return sets, nil, nil
	}
	var plain []logical.Expr
	for {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, nil, err
		}
		plain = append(plain, e)
		if !p.accept(TokOp, ",") {
			break
		}
	}
	return nil, plain, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	// `*`
	if p.peek().Kind == TokOp && p.peek().Text == "*" {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	// `t.*`
	if p.peek().Kind == TokIdent && p.peekAt(1).Kind == TokOp && p.peekAt(1).Text == "." &&
		p.peekAt(2).Kind == TokOp && p.peekAt(2).Text == "*" {
		q := p.advance().Text
		p.advance()
		p.advance()
		return SelectItem{Star: true, StarQualifier: q}, nil
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{E: e}
	if p.acceptKw("AS") {
		alias, err := p.parseIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if p.peek().Kind == TokIdent || p.peek().Kind == TokQuotedIdent {
		item.Alias = p.advance().Text
	}
	return item, nil
}

func (p *Parser) parseIdent() (string, error) {
	t := p.peek()
	if t.Kind == TokIdent || t.Kind == TokQuotedIdent {
		p.advance()
		return t.Text, nil
	}
	return "", p.errf("expected identifier, found %q", t.Text)
}

func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		natural := p.acceptKw("NATURAL")
		var jt logical.JoinType
		hasJoin := true
		switch {
		case p.acceptKw("JOIN"):
			jt = logical.InnerJoin
		case p.acceptKw("INNER"):
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = logical.InnerJoin
		case p.acceptKw("LEFT"):
			p.acceptKw("OUTER")
			if p.acceptKw("SEMI") {
				jt = logical.LeftSemiJoin
			} else if p.acceptKw("ANTI") {
				jt = logical.LeftAntiJoin
			} else {
				jt = logical.LeftJoin
			}
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
		case p.acceptKw("RIGHT"):
			p.acceptKw("OUTER")
			if p.acceptKw("SEMI") {
				jt = logical.RightSemiJoin
			} else if p.acceptKw("ANTI") {
				jt = logical.RightAntiJoin
			} else {
				jt = logical.RightJoin
			}
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
		case p.acceptKw("FULL"):
			p.acceptKw("OUTER")
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = logical.FullJoin
		case p.acceptKw("CROSS"):
			if err := p.expectKw("JOIN"); err != nil {
				return nil, err
			}
			jt = logical.CrossJoin
		default:
			hasJoin = false
		}
		if !hasJoin {
			if natural {
				return nil, p.errf("NATURAL must be followed by a join")
			}
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		jr := &JoinRef{L: left, R: right, Type: jt, Natural: natural}
		if jt != logical.CrossJoin && !natural {
			switch {
			case p.acceptKw("ON"):
				cond, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				jr.On = cond
			case p.acceptKw("USING"):
				if err := p.expect(TokOp, "("); err != nil {
					return nil, err
				}
				for {
					name, err := p.parseIdent()
					if err != nil {
						return nil, err
					}
					jr.Using = append(jr.Using, name)
					if !p.accept(TokOp, ",") {
						break
					}
				}
				if err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
			default:
				return nil, p.errf("expected ON or USING after JOIN")
			}
		}
		left = jr
	}
}

func (p *Parser) parseTablePrimary() (TableRef, error) {
	if p.accept(TokOp, "(") {
		// Subquery or parenthesized join.
		if p.peekKw("SELECT") || p.peekKw("WITH") || p.peekKw("VALUES") {
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(TokOp, ")"); err != nil {
				return nil, err
			}
			alias := p.parseOptionalAlias()
			if alias == "" {
				alias = "__subquery"
			}
			ref := &SubqueryRef{Query: q, Alias: alias}
			// Derived column aliases: (SELECT ...) AS t (a, b)
			if p.peek().Kind == TokOp && p.peek().Text == "(" &&
				(p.peekAt(1).Kind == TokIdent || p.peekAt(1).Kind == TokQuotedIdent) &&
				(p.peekAt(2).Kind == TokOp && (p.peekAt(2).Text == "," || p.peekAt(2).Text == ")")) {
				p.advance()
				for {
					name, err := p.parseIdent()
					if err != nil {
						return nil, err
					}
					ref.ColumnAliases = append(ref.ColumnAliases, name)
					if !p.accept(TokOp, ",") {
						break
					}
				}
				if err := p.expect(TokOp, ")"); err != nil {
					return nil, err
				}
			}
			return ref, nil
		}
		inner, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expect(TokOp, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	// schema.table
	if p.accept(TokOp, ".") {
		second, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		name = name + "." + second
	}
	return &TableName{Name: name, Alias: p.parseOptionalAlias()}, nil
}

func (p *Parser) parseOptionalAlias() string {
	if p.acceptKw("AS") {
		if name, err := p.parseIdent(); err == nil {
			return name
		}
		return ""
	}
	if p.peek().Kind == TokIdent || p.peek().Kind == TokQuotedIdent {
		return p.advance().Text
	}
	return ""
}

// FormatKeywords returns the keyword list (for tooling/completion).
func FormatKeywords() []string {
	out := make([]string, 0, len(keywords))
	for k := range keywords {
		out = append(out, k)
	}
	return out
}

var _ = strings.ToUpper
