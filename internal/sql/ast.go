package sql

import (
	"gofusion/internal/logical"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmtNode() }

// SelectStmt is a full query: CTEs, a set-expression body, and trailing
// ORDER BY / LIMIT / OFFSET.
type SelectStmt struct {
	With    []CTE
	Body    SetExpr
	OrderBy []OrderItem
	Limit   logical.Expr // nil = none
	Offset  logical.Expr // nil = none
}

func (*SelectStmt) stmtNode() {}

// ExplainStmt wraps a statement for plan display.
type ExplainStmt struct {
	Stmt    Statement
	Analyze bool
}

func (*ExplainStmt) stmtNode() {}

// CreateTableStmt is CREATE TABLE name AS query: materialize the query
// and register the result as an in-memory table.
type CreateTableStmt struct {
	Name  string
	Query *SelectStmt
}

func (*CreateTableStmt) stmtNode() {}

// InsertStmt is INSERT INTO table query (including INSERT INTO t VALUES
// (...), since VALUES is a query body): append the query's rows to an
// existing in-memory table.
type InsertStmt struct {
	Table string
	Query *SelectStmt
}

func (*InsertStmt) stmtNode() {}

// CopyStmt is COPY INTO table FROM 'path' [FORMAT name]: bulk-load a data
// file's rows into an existing table. Format is the lowercased source
// format name ("gpq", "csv", "json"), empty when left to be inferred from
// the path's extension.
type CopyStmt struct {
	Table  string
	Path   string
	Format string
}

func (*CopyStmt) stmtNode() {}

// CTE is one WITH entry.
type CTE struct {
	Name      string
	Query     *SelectStmt
	Recursive bool
}

// OrderItem is one ORDER BY key; expressions may be output ordinals or
// aliases (resolved by the planner).
type OrderItem struct {
	E          logical.Expr
	Asc        bool
	NullsFirst bool
	// NullsSet records whether NULLS FIRST/LAST appeared explicitly.
	NullsSet bool
}

// SetExpr is a set-operation tree over select cores.
type SetExpr interface{ setNode() }

// SetOpKind enumerates UNION/INTERSECT/EXCEPT.
type SetOpKind int

// Set operations.
const (
	SetUnion SetOpKind = iota
	SetIntersect
	SetExcept
)

// SetOp combines two set expressions.
type SetOp struct {
	Kind SetOpKind
	All  bool
	L, R SetExpr
}

func (*SetOp) setNode() {}

// SelectCore is one SELECT ... FROM ... block.
type SelectCore struct {
	Distinct   bool
	Projection []SelectItem
	From       []TableRef // comma-separated; nil = no FROM
	Where      logical.Expr
	GroupBy    []logical.Expr
	// GroupingSets, when non-nil, holds explicit grouping sets (each a
	// list of key exprs); plain GROUP BY is a single set.
	GroupingSets [][]logical.Expr
	Having       logical.Expr
}

func (*SelectCore) setNode() {}

// ValuesClause is a literal relation in set-expression position.
type ValuesClause struct {
	Rows [][]logical.Expr
}

func (*ValuesClause) setNode() {}

// SelectItem is one projection entry.
type SelectItem struct {
	E     logical.Expr // nil when Star
	Alias string
	Star  bool
	// StarQualifier is set for `t.*`.
	StarQualifier string
}

// TableRef is a FROM-clause relation.
type TableRef interface{ tableNode() }

// TableName references a named table with an optional alias.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableNode() {}

// SubqueryRef is a parenthesized query with an alias and optional derived
// column aliases: (SELECT ...) AS t (a, b).
type SubqueryRef struct {
	Query         *SelectStmt
	Alias         string
	ColumnAliases []string
}

func (*SubqueryRef) tableNode() {}

// JoinRef is an explicit JOIN.
type JoinRef struct {
	L, R    TableRef
	Type    logical.JoinType
	On      logical.Expr
	Using   []string
	Natural bool
}

func (*JoinRef) tableNode() {}
