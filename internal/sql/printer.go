// SQL printer: renders parsed statement ASTs back to SQL text the parser
// accepts. The printer fully parenthesizes compound expressions so operator
// precedence never has to be reconstructed, and it is *print-stable*: for
// any statement s produced by Parse, Parse(FormatStatement(s)) succeeds and
// formats to the same string. The fuzz targets in fuzz_test.go enforce this
// property over arbitrary inputs; the fuzzsql harness relies on it to emit
// reproducible minimal test cases.
package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"gofusion/internal/arrow"
	"gofusion/internal/logical"
)

// FormatStatement renders a statement as parseable SQL text.
func FormatStatement(s Statement) string {
	var sb strings.Builder
	writeStatement(&sb, s)
	return sb.String()
}

// FormatExpr renders an expression as parseable SQL text (compound nodes
// are parenthesized).
func FormatExpr(e logical.Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}

func writeStatement(sb *strings.Builder, s Statement) {
	switch st := s.(type) {
	case *ExplainStmt:
		sb.WriteString("EXPLAIN ")
		if st.Analyze {
			sb.WriteString("ANALYZE ")
		}
		writeStatement(sb, st.Stmt)
	case *SelectStmt:
		writeSelectStmt(sb, st)
	case *CreateTableStmt:
		sb.WriteString("CREATE TABLE ")
		writeIdent(sb, st.Name)
		sb.WriteString(" AS ")
		writeSelectStmt(sb, st.Query)
	case *InsertStmt:
		sb.WriteString("INSERT INTO ")
		writeIdent(sb, st.Table)
		sb.WriteString(" ")
		writeSelectStmt(sb, st.Query)
	case *CopyStmt:
		sb.WriteString("COPY INTO ")
		writeIdent(sb, st.Table)
		sb.WriteString(" FROM ")
		writeString(sb, st.Path)
		if st.Format != "" {
			sb.WriteString(" FORMAT ")
			writeIdent(sb, st.Format)
		}
	default:
		fmt.Fprintf(sb, "<unknown statement %T>", s)
	}
}

func writeSelectStmt(sb *strings.Builder, st *SelectStmt) {
	if len(st.With) > 0 {
		sb.WriteString("WITH ")
		if st.With[0].Recursive {
			sb.WriteString("RECURSIVE ")
		}
		for i, cte := range st.With {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeIdent(sb, cte.Name)
			sb.WriteString(" AS (")
			writeSelectStmt(sb, cte.Query)
			sb.WriteString(")")
		}
		sb.WriteString(" ")
	}
	writeSetExpr(sb, st.Body)
	if len(st.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, item := range st.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeOrderItem(sb, item)
		}
	}
	if st.Limit != nil {
		sb.WriteString(" LIMIT ")
		writeExpr(sb, st.Limit)
	}
	if st.Offset != nil {
		sb.WriteString(" OFFSET ")
		writeExpr(sb, st.Offset)
	}
}

func writeOrderItem(sb *strings.Builder, item OrderItem) {
	writeExpr(sb, item.E)
	if item.Asc {
		sb.WriteString(" ASC")
	} else {
		sb.WriteString(" DESC")
	}
	if item.NullsSet {
		if item.NullsFirst {
			sb.WriteString(" NULLS FIRST")
		} else {
			sb.WriteString(" NULLS LAST")
		}
	}
}

func writeSetExpr(sb *strings.Builder, e SetExpr) {
	switch n := e.(type) {
	case *SelectCore:
		writeSelectCore(sb, n)
	case *ValuesClause:
		sb.WriteString("VALUES ")
		for i, row := range n.Rows {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, cell := range row {
				if j > 0 {
					sb.WriteString(", ")
				}
				writeExpr(sb, cell)
			}
			sb.WriteString(")")
		}
	case *SetOp:
		// Set operations are left-associative at equal precedence: a left
		// SetOp operand prints bare, a right one needs parentheses.
		writeSetExpr(sb, n.L)
		switch n.Kind {
		case SetUnion:
			sb.WriteString(" UNION ")
		case SetIntersect:
			sb.WriteString(" INTERSECT ")
		case SetExcept:
			sb.WriteString(" EXCEPT ")
		}
		if n.All {
			sb.WriteString("ALL ")
		}
		if _, nested := n.R.(*SetOp); nested {
			sb.WriteString("(")
			writeSetExpr(sb, n.R)
			sb.WriteString(")")
		} else {
			writeSetExpr(sb, n.R)
		}
	default:
		fmt.Fprintf(sb, "<unknown set expr %T>", e)
	}
}

func writeSelectCore(sb *strings.Builder, c *SelectCore) {
	sb.WriteString("SELECT ")
	if c.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, item := range c.Projection {
		if i > 0 {
			sb.WriteString(", ")
		}
		switch {
		case item.Star && item.StarQualifier != "":
			sb.WriteString(item.StarQualifier)
			sb.WriteString(".*")
		case item.Star:
			sb.WriteString("*")
		default:
			writeExpr(sb, item.E)
			if item.Alias != "" {
				sb.WriteString(" AS ")
				writeIdent(sb, item.Alias)
			}
		}
	}
	if len(c.From) > 0 {
		sb.WriteString(" FROM ")
		for i, tr := range c.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeTableRef(sb, tr)
		}
	}
	if c.Where != nil {
		sb.WriteString(" WHERE ")
		writeExpr(sb, c.Where)
	}
	if c.GroupingSets != nil {
		sb.WriteString(" GROUP BY GROUPING SETS (")
		for i, set := range c.GroupingSets {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, e := range set {
				if j > 0 {
					sb.WriteString(", ")
				}
				writeExpr(sb, e)
			}
			sb.WriteString(")")
		}
		sb.WriteString(")")
	} else if len(c.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range c.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, e)
		}
	}
	if c.Having != nil {
		sb.WriteString(" HAVING ")
		writeExpr(sb, c.Having)
	}
}

func writeTableRef(sb *strings.Builder, tr TableRef) {
	switch t := tr.(type) {
	case *TableName:
		writeTableName(sb, t.Name)
		if t.Alias != "" {
			sb.WriteString(" AS ")
			writeIdent(sb, t.Alias)
		}
	case *SubqueryRef:
		sb.WriteString("(")
		writeSelectStmt(sb, t.Query)
		sb.WriteString(") AS ")
		writeIdent(sb, t.Alias)
		if len(t.ColumnAliases) > 0 {
			sb.WriteString(" (")
			for i, a := range t.ColumnAliases {
				if i > 0 {
					sb.WriteString(", ")
				}
				writeIdent(sb, a)
			}
			sb.WriteString(")")
		}
	case *JoinRef:
		// Joins are left-associative: a left JoinRef prints bare, a right
		// one needs parentheses.
		writeTableRef(sb, t.L)
		if t.Natural {
			sb.WriteString(" NATURAL")
		}
		switch t.Type {
		case logical.InnerJoin:
			sb.WriteString(" JOIN ")
		case logical.LeftJoin:
			sb.WriteString(" LEFT JOIN ")
		case logical.LeftSemiJoin:
			sb.WriteString(" LEFT SEMI JOIN ")
		case logical.LeftAntiJoin:
			sb.WriteString(" LEFT ANTI JOIN ")
		case logical.RightJoin:
			sb.WriteString(" RIGHT JOIN ")
		case logical.RightSemiJoin:
			sb.WriteString(" RIGHT SEMI JOIN ")
		case logical.RightAntiJoin:
			sb.WriteString(" RIGHT ANTI JOIN ")
		case logical.FullJoin:
			sb.WriteString(" FULL JOIN ")
		case logical.CrossJoin:
			sb.WriteString(" CROSS JOIN ")
		}
		if _, nested := t.R.(*JoinRef); nested {
			sb.WriteString("(")
			writeTableRef(sb, t.R)
			sb.WriteString(")")
		} else {
			writeTableRef(sb, t.R)
		}
		switch {
		case t.On != nil:
			sb.WriteString(" ON ")
			writeExpr(sb, t.On)
		case len(t.Using) > 0:
			sb.WriteString(" USING (")
			for i, u := range t.Using {
				if i > 0 {
					sb.WriteString(", ")
				}
				writeIdent(sb, u)
			}
			sb.WriteString(")")
		}
	default:
		fmt.Fprintf(sb, "<unknown table ref %T>", tr)
	}
}

// writeTableName splits "schema.table" (as assembled by the parser) back
// into dotted identifiers; names without a splittable dot print as one
// identifier.
func writeTableName(sb *strings.Builder, name string) {
	if i := strings.IndexByte(name, '.'); i > 0 && i < len(name)-1 {
		writeIdent(sb, name[:i])
		sb.WriteString(".")
		writeIdent(sb, name[i+1:])
		return
	}
	writeIdent(sb, name)
}

func writeExpr(sb *strings.Builder, e logical.Expr) {
	switch x := e.(type) {
	case *logical.Column:
		if x.Relation != "" {
			writeIdent(sb, x.Relation)
			sb.WriteString(".")
		}
		writeIdent(sb, x.Name)
	case *logical.Literal:
		writeLiteral(sb, x.Value)
	case *logical.BinaryExpr:
		sb.WriteString("(")
		writeExpr(sb, x.L)
		sb.WriteString(" ")
		sb.WriteString(x.Op.String())
		sb.WriteString(" ")
		writeExpr(sb, x.R)
		sb.WriteString(")")
	case *logical.Not:
		sb.WriteString("(NOT ")
		writeExpr(sb, x.E)
		sb.WriteString(")")
	case *logical.Negative:
		// The parser folds unary minus into numeric literals; mirror that
		// so the printed text reparses to the same AST.
		if l, ok := x.E.(*logical.Literal); ok && !l.Value.Null {
			switch v := l.Value.Val.(type) {
			case int64:
				sb.WriteString(strconv.FormatInt(-v, 10))
				return
			case float64:
				writeFloat(sb, -v)
				return
			}
		}
		sb.WriteString("(- ")
		writeExpr(sb, x.E)
		sb.WriteString(")")
	case *logical.IsNull:
		sb.WriteString("(")
		writeExpr(sb, x.E)
		if x.Negated {
			sb.WriteString(" IS NOT NULL)")
		} else {
			sb.WriteString(" IS NULL)")
		}
	case *logical.Like:
		sb.WriteString("(")
		writeExpr(sb, x.E)
		if x.Negated {
			sb.WriteString(" NOT")
		}
		if x.CaseInsensitive {
			sb.WriteString(" ILIKE ")
		} else {
			sb.WriteString(" LIKE ")
		}
		writeExpr(sb, x.Pattern)
		sb.WriteString(")")
	case *logical.InList:
		sb.WriteString("(")
		writeExpr(sb, x.E)
		if x.Negated {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		for i, item := range x.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, item)
		}
		sb.WriteString("))")
	case *logical.Between:
		sb.WriteString("(")
		writeExpr(sb, x.E)
		if x.Negated {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" BETWEEN ")
		writeExpr(sb, x.Low)
		sb.WriteString(" AND ")
		writeExpr(sb, x.High)
		sb.WriteString(")")
	case *logical.Case:
		sb.WriteString("CASE")
		if x.Operand != nil {
			sb.WriteString(" ")
			writeExpr(sb, x.Operand)
		}
		for _, w := range x.Whens {
			sb.WriteString(" WHEN ")
			writeExpr(sb, w.When)
			sb.WriteString(" THEN ")
			writeExpr(sb, w.Then)
		}
		if x.Else != nil {
			sb.WriteString(" ELSE ")
			writeExpr(sb, x.Else)
		}
		sb.WriteString(" END")
	case *logical.Cast:
		sb.WriteString("CAST(")
		writeExpr(sb, x.E)
		sb.WriteString(" AS ")
		sb.WriteString(sqlTypeName(x.To))
		sb.WriteString(")")
	case *logical.ScalarFunc:
		writeCall(sb, x.Name, x.Args, false, false, nil, nil)
	case *logical.AggFunc:
		writeCall(sb, x.Name, x.Args, x.Distinct, len(x.Args) == 0, x.Filter, nil)
	case *logical.WindowFunc:
		over := &logical.OverClause{PartitionBy: x.PartitionBy, OrderBy: x.OrderBy, Frame: &x.Frame}
		writeCall(sb, x.Name, x.Args, false, false, nil, over)
	case *logical.UnresolvedFunc:
		writeCall(sb, x.Name, x.Args, x.Distinct, x.Star, x.Filter, x.Over)
	case *logical.Alias:
		// Aliases outside projection lists have no SQL syntax; print the
		// underlying expression (select items handle AS themselves).
		writeExpr(sb, x.E)
	case *logical.Wildcard:
		if x.Qualifier != "" {
			writeIdent(sb, x.Qualifier)
			sb.WriteString(".*")
		} else {
			sb.WriteString("*")
		}
	case *logical.ScalarSubquery:
		if q, ok := x.Raw.(*SelectStmt); ok {
			sb.WriteString("(")
			writeSelectStmt(sb, q)
			sb.WriteString(")")
		} else {
			sb.WriteString("(<scalar subquery>)")
		}
	case *logical.Exists:
		if x.Negated {
			sb.WriteString("(NOT ")
		}
		sb.WriteString("EXISTS (")
		if q, ok := x.Raw.(*SelectStmt); ok {
			writeSelectStmt(sb, q)
		} else {
			sb.WriteString("<subquery>")
		}
		sb.WriteString(")")
		if x.Negated {
			sb.WriteString(")")
		}
	case *logical.InSubquery:
		sb.WriteString("(")
		writeExpr(sb, x.E)
		if x.Negated {
			sb.WriteString(" NOT")
		}
		sb.WriteString(" IN (")
		if q, ok := x.Raw.(*SelectStmt); ok {
			writeSelectStmt(sb, q)
		} else {
			sb.WriteString("<subquery>")
		}
		sb.WriteString("))")
	default:
		fmt.Fprintf(sb, "<unknown expr %T>", e)
	}
}

func writeCall(sb *strings.Builder, name string, args []logical.Expr, distinct, star bool, filter logical.Expr, over *logical.OverClause) {
	writeIdent(sb, name)
	sb.WriteString("(")
	if star {
		sb.WriteString("*")
	} else {
		if distinct {
			sb.WriteString("DISTINCT ")
		}
		for i, a := range args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
	}
	sb.WriteString(")")
	if filter != nil {
		sb.WriteString(" FILTER (WHERE ")
		writeExpr(sb, filter)
		sb.WriteString(")")
	}
	if over != nil {
		sb.WriteString(" OVER (")
		if len(over.PartitionBy) > 0 {
			sb.WriteString("PARTITION BY ")
			for i, p := range over.PartitionBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				writeExpr(sb, p)
			}
		}
		if len(over.OrderBy) > 0 {
			if len(over.PartitionBy) > 0 {
				sb.WriteString(" ")
			}
			sb.WriteString("ORDER BY ")
			for i, o := range over.OrderBy {
				if i > 0 {
					sb.WriteString(", ")
				}
				writeExpr(sb, o.E)
				if o.Asc {
					sb.WriteString(" ASC")
				} else {
					sb.WriteString(" DESC")
				}
				// The OVER-clause parser normalizes an absent NULLS spec to
				// the direction default, so always printing it is stable.
				if o.NullsFirst {
					sb.WriteString(" NULLS FIRST")
				} else {
					sb.WriteString(" NULLS LAST")
				}
			}
		}
		if over.Frame != nil {
			if len(over.PartitionBy) > 0 || len(over.OrderBy) > 0 {
				sb.WriteString(" ")
			}
			writeFrame(sb, over.Frame)
		}
		sb.WriteString(")")
	}
}

func writeFrame(sb *strings.Builder, f *logical.WindowFrame) {
	if f.Rows {
		sb.WriteString("ROWS BETWEEN ")
	} else {
		sb.WriteString("RANGE BETWEEN ")
	}
	writeBound(sb, f.Start)
	sb.WriteString(" AND ")
	writeBound(sb, f.End)
}

func writeBound(sb *strings.Builder, b logical.FrameBound) {
	switch b.Kind {
	case logical.UnboundedPreceding:
		sb.WriteString("UNBOUNDED PRECEDING")
	case logical.OffsetPreceding:
		fmt.Fprintf(sb, "%d PRECEDING", b.Offset)
	case logical.CurrentRow:
		sb.WriteString("CURRENT ROW")
	case logical.OffsetFollowing:
		fmt.Fprintf(sb, "%d FOLLOWING", b.Offset)
	case logical.UnboundedFollowing:
		sb.WriteString("UNBOUNDED FOLLOWING")
	}
}

func writeLiteral(sb *strings.Builder, s arrow.Scalar) {
	if s.Null {
		sb.WriteString("NULL")
		return
	}
	switch s.Type.ID {
	case arrow.INT8, arrow.INT16, arrow.INT32, arrow.INT64, arrow.UINT8, arrow.UINT16, arrow.UINT32, arrow.UINT64:
		sb.WriteString(strconv.FormatInt(s.AsInt64(), 10))
	case arrow.FLOAT32, arrow.FLOAT64:
		writeFloat(sb, s.AsFloat64())
	case arrow.STRING:
		writeString(sb, s.AsString())
	case arrow.BOOL:
		if s.AsBool() {
			sb.WriteString("TRUE")
		} else {
			sb.WriteString("FALSE")
		}
	case arrow.DATE32:
		sb.WriteString("DATE ")
		writeString(sb, arrow.FormatDate32(int32(s.AsInt64())))
	case arrow.TIMESTAMP:
		sb.WriteString("TIMESTAMP ")
		writeString(sb, arrow.FormatTimestamp(s.AsInt64()))
	case arrow.INTERVAL:
		if m, ok := s.Val.(arrow.MonthDayMicro); ok {
			fmt.Fprintf(sb, "INTERVAL '%d months %d days %d microseconds'", m.Months, m.Days, m.Micros)
		} else {
			sb.WriteString("INTERVAL '0 days'")
		}
	case arrow.DECIMAL:
		sb.WriteString(arrow.FormatDecimal(s.AsInt64(), s.Type.Scale))
	default:
		fmt.Fprintf(sb, "<unknown literal %s>", s.Type)
	}
}

// writeFloat renders a float literal that re-lexes as a float (never as an
// integer), keeping the literal's type across parse/print cycles.
func writeFloat(sb *strings.Builder, f float64) {
	out := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(out, ".eE") {
		out += ".0"
	}
	sb.WriteString(out)
}

func writeString(sb *strings.Builder, s string) {
	sb.WriteString("'")
	sb.WriteString(strings.ReplaceAll(s, "'", "''"))
	sb.WriteString("'")
}

// writeIdent prints an identifier, double-quoting it when it would not lex
// back as a plain identifier (or would lex as a keyword).
func writeIdent(sb *strings.Builder, s string) {
	if identNeedsQuote(s) {
		sb.WriteString(`"`)
		sb.WriteString(strings.ReplaceAll(s, `"`, `""`))
		sb.WriteString(`"`)
		return
	}
	sb.WriteString(s)
}

func identNeedsQuote(s string) bool {
	if s == "" {
		return true
	}
	for i, r := range s {
		if i == 0 {
			if r != '_' && !unicode.IsLetter(r) {
				return true
			}
			continue
		}
		if r != '_' && r != '$' && !unicode.IsLetter(r) && !unicode.IsDigit(r) {
			return true
		}
	}
	return keywords[strings.ToUpper(s)]
}

// sqlTypeName maps an arrow type to a SQL type name accepted by the
// parser's type grammar.
func sqlTypeName(t *arrow.DataType) string {
	switch t.ID {
	case arrow.INT8:
		return "TINYINT"
	case arrow.INT16:
		return "SMALLINT"
	case arrow.INT32:
		return "INT"
	case arrow.INT64:
		return "BIGINT"
	case arrow.FLOAT32:
		return "REAL"
	case arrow.FLOAT64:
		return "DOUBLE"
	case arrow.STRING:
		return "VARCHAR"
	case arrow.DATE32:
		return "DATE"
	case arrow.TIMESTAMP:
		return "TIMESTAMP"
	case arrow.BOOL:
		return "BOOLEAN"
	case arrow.DECIMAL:
		return fmt.Sprintf("DECIMAL(%d, %d)", t.Precision, t.Scale)
	case arrow.INTERVAL:
		return "INTERVAL"
	default:
		return t.String()
	}
}
