package sql

import (
	"strings"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/logical"
)

func parseQ(t *testing.T, src string) *SelectStmt {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("parsing %q: %v", src, err)
	}
	return q
}

func core(t *testing.T, q *SelectStmt) *SelectCore {
	t.Helper()
	c, ok := q.Body.(*SelectCore)
	if !ok {
		t.Fatalf("body is %T, want SelectCore", q.Body)
	}
	return c
}

func TestParseSimpleSelect(t *testing.T) {
	q := parseQ(t, "SELECT a, b AS bee, * FROM t WHERE a > 10 ORDER BY a DESC LIMIT 5 OFFSET 2")
	c := core(t, q)
	if len(c.Projection) != 3 || c.Projection[1].Alias != "bee" || !c.Projection[2].Star {
		t.Fatalf("projection wrong: %+v", c.Projection)
	}
	tn := c.From[0].(*TableName)
	if tn.Name != "t" {
		t.Fatal("table wrong")
	}
	if c.Where == nil || c.Where.String() != "a > 10" {
		t.Fatalf("where = %v", c.Where)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Asc {
		t.Fatal("order by wrong")
	}
	if q.Limit.String() != "5" || q.Offset.String() != "2" {
		t.Fatal("limit/offset wrong")
	}
}

func TestParsePrecedence(t *testing.T) {
	q := parseQ(t, "SELECT a + b * c - d FROM t")
	e := core(t, q).Projection[0].E
	if e.String() != "a + b * c - d" {
		t.Fatalf("expr = %s", e)
	}
	// (a+(b*c))-d: top is -
	top := e.(*logical.BinaryExpr)
	if top.Op != logical.OpSub {
		t.Fatal("top must be -")
	}
	add := top.L.(*logical.BinaryExpr)
	if add.Op != logical.OpAdd {
		t.Fatal("left must be +")
	}
	if add.R.(*logical.BinaryExpr).Op != logical.OpMul {
		t.Fatal("inner must be *")
	}

	q2 := parseQ(t, "SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	w := core(t, q2).Where.(*logical.BinaryExpr)
	if w.Op != logical.OpOr {
		t.Fatal("AND must bind tighter than OR")
	}
	q3 := parseQ(t, "SELECT 1 FROM t WHERE NOT a = 1 AND b = 2")
	w3 := core(t, q3).Where.(*logical.BinaryExpr)
	if w3.Op != logical.OpAnd {
		t.Fatalf("NOT must bind tighter than AND: %s", core(t, q3).Where)
	}
	if _, ok := w3.L.(*logical.Not); !ok {
		t.Fatal("left must be NOT")
	}
}

func TestParseJoins(t *testing.T) {
	q := parseQ(t, `SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c USING (k) CROSS JOIN d`)
	c := core(t, q)
	j := c.From[0].(*JoinRef) // ((a JOIN b) LEFT JOIN c) CROSS JOIN d
	if j.Type != logical.CrossJoin {
		t.Fatalf("outer join type = %v", j.Type)
	}
	lj := j.L.(*JoinRef)
	if lj.Type != logical.LeftJoin || len(lj.Using) != 1 || lj.Using[0] != "k" {
		t.Fatal("left join wrong")
	}
	ij := lj.L.(*JoinRef)
	if ij.Type != logical.InnerJoin || ij.On == nil {
		t.Fatal("inner join wrong")
	}
}

func TestParseSubqueries(t *testing.T) {
	q := parseQ(t, `SELECT (SELECT max(x) FROM u) FROM t WHERE EXISTS (SELECT 1 FROM v) AND a IN (SELECT b FROM w) AND c NOT IN (1, 2)`)
	c := core(t, q)
	if _, ok := c.Projection[0].E.(*logical.ScalarSubquery); !ok {
		t.Fatal("scalar subquery missing")
	}
	conj := logical.SplitConjunction(c.Where)
	if len(conj) != 3 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if _, ok := conj[0].(*logical.Exists); !ok {
		t.Fatal("exists missing")
	}
	if sub, ok := conj[1].(*logical.InSubquery); !ok || sub.Negated {
		t.Fatal("in subquery missing")
	}
	if inl, ok := conj[2].(*logical.InList); !ok || !inl.Negated {
		t.Fatal("not in list missing")
	}
	// derived table
	q2 := parseQ(t, "SELECT * FROM (SELECT a FROM t) AS sub")
	if sr, ok := core(t, q2).From[0].(*SubqueryRef); !ok || sr.Alias != "sub" {
		t.Fatal("derived table wrong")
	}
}

func TestParseAggregatesAndWindows(t *testing.T) {
	q := parseQ(t, `SELECT count(*), sum(DISTINCT x), avg(y) FILTER (WHERE y > 0),
		row_number() OVER (PARTITION BY g ORDER BY y DESC ROWS BETWEEN 1 PRECEDING AND CURRENT ROW)
		FROM t GROUP BY g HAVING count(*) > 1`)
	c := core(t, q)
	f0 := c.Projection[0].E.(*logical.UnresolvedFunc)
	if !f0.Star || f0.Name != "count" {
		t.Fatal("count(*) wrong")
	}
	f1 := c.Projection[1].E.(*logical.UnresolvedFunc)
	if !f1.Distinct {
		t.Fatal("distinct wrong")
	}
	f2 := c.Projection[2].E.(*logical.UnresolvedFunc)
	if f2.Filter == nil {
		t.Fatal("filter clause wrong")
	}
	f3 := c.Projection[3].E.(*logical.UnresolvedFunc)
	if f3.Over == nil || len(f3.Over.PartitionBy) != 1 || len(f3.Over.OrderBy) != 1 {
		t.Fatal("over clause wrong")
	}
	if f3.Over.Frame == nil || !f3.Over.Frame.Rows || f3.Over.Frame.Start.Kind != logical.OffsetPreceding {
		t.Fatalf("frame wrong: %+v", f3.Over.Frame)
	}
	if c.Having == nil {
		t.Fatal("having missing")
	}
}

func TestParseCaseCastLiterals(t *testing.T) {
	q := parseQ(t, `SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END,
		CASE a WHEN 1 THEN 'one' END,
		CAST(a AS DOUBLE), a::bigint,
		DATE '1995-03-15', INTERVAL '90' day, INTERVAL '1 year 2 months'
		FROM t`)
	c := core(t, q)
	if _, ok := c.Projection[0].E.(*logical.Case); !ok {
		t.Fatal("case missing")
	}
	cs := c.Projection[1].E.(*logical.Case)
	if cs.Operand == nil {
		t.Fatal("operand case wrong")
	}
	if ct := c.Projection[2].E.(*logical.Cast); ct.To.ID != arrow.FLOAT64 {
		t.Fatal("cast wrong")
	}
	if ct := c.Projection[3].E.(*logical.Cast); ct.To.ID != arrow.INT64 {
		t.Fatal(":: cast wrong")
	}
	d := c.Projection[4].E.(*logical.Literal)
	if d.Value.Type.ID != arrow.DATE32 {
		t.Fatal("date literal wrong")
	}
	iv := c.Projection[5].E.(*logical.Literal).Value.Val.(arrow.MonthDayMicro)
	if iv.Days != 90 {
		t.Fatalf("interval = %+v", iv)
	}
	iv2 := c.Projection[6].E.(*logical.Literal).Value.Val.(arrow.MonthDayMicro)
	if iv2.Months != 14 {
		t.Fatalf("interval = %+v", iv2)
	}
}

func TestParseSpecialForms(t *testing.T) {
	q := parseQ(t, `SELECT EXTRACT(YEAR FROM d), substring(s FROM 1 FOR 2), substring(s, 3) FROM t`)
	c := core(t, q)
	e0 := c.Projection[0].E.(*logical.ScalarFunc)
	if e0.Name != "date_part" || e0.Args[0].(*logical.Literal).Value.AsString() != "year" {
		t.Fatal("extract wrong")
	}
	e1 := c.Projection[1].E.(*logical.ScalarFunc)
	if e1.Name != "substring" || len(e1.Args) != 3 {
		t.Fatal("substring FROM/FOR wrong")
	}
	e2 := c.Projection[2].E.(*logical.ScalarFunc)
	if len(e2.Args) != 2 {
		t.Fatal("substring comma form wrong")
	}
}

func TestParseSetOpsAndCTE(t *testing.T) {
	q := parseQ(t, `WITH r AS (SELECT a FROM t) SELECT a FROM r UNION ALL SELECT b FROM u ORDER BY 1`)
	if len(q.With) != 1 || q.With[0].Name != "r" {
		t.Fatal("cte wrong")
	}
	op, ok := q.Body.(*SetOp)
	if !ok || op.Kind != SetUnion || !op.All {
		t.Fatal("union wrong")
	}
	if len(q.OrderBy) != 1 {
		t.Fatal("order by on set op wrong")
	}
}

func TestParseGroupingSets(t *testing.T) {
	q := parseQ(t, `SELECT a, b, count(*) FROM t GROUP BY GROUPING SETS ((a, b), (a), ())`)
	c := core(t, q)
	if len(c.GroupingSets) != 3 || len(c.GroupingSets[0]) != 2 || len(c.GroupingSets[2]) != 0 {
		t.Fatalf("grouping sets wrong: %v", c.GroupingSets)
	}
	q2 := parseQ(t, `SELECT a, b, count(*) FROM t GROUP BY ROLLUP (a, b)`)
	if len(core(t, q2).GroupingSets) != 3 {
		t.Fatal("rollup wrong")
	}
	q3 := parseQ(t, `SELECT a, b, count(*) FROM t GROUP BY CUBE (a, b)`)
	if len(core(t, q3).GroupingSets) != 4 {
		t.Fatal("cube wrong")
	}
}

func TestParseValuesAndExplain(t *testing.T) {
	q := parseQ(t, "VALUES (1, 'a'), (2, 'b')")
	v, ok := q.Body.(*ValuesClause)
	if !ok || len(v.Rows) != 2 {
		t.Fatal("values wrong")
	}
	stmt, err := Parse("EXPLAIN SELECT 1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stmt.(*ExplainStmt); !ok {
		t.Fatal("explain wrong")
	}
}

func TestParseStringEscapesAndComments(t *testing.T) {
	q := parseQ(t, `SELECT 'it''s', "Weird ""Col""" -- comment
		FROM t /* block
		comment */ WHERE a LIKE '%x\_y%'`)
	c := core(t, q)
	if c.Projection[0].E.(*logical.Literal).Value.AsString() != "it's" {
		t.Fatal("string escape wrong")
	}
	if c.Projection[1].E.(*logical.Column).Name != `Weird "Col"` {
		t.Fatal("quoted ident wrong")
	}
	if _, ok := c.Where.(*logical.Like); !ok {
		t.Fatal("like wrong")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"FROM t",
		"SELECT a FROM t JOIN u", // missing ON/USING
		"SELECT CAST(a AS notatype) FROM t",
		"SELECT 'unterminated FROM t",
		"SELECT a FROM t ORDER BY a ASC garbage extra",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestParseBetweenAndChains(t *testing.T) {
	q := parseQ(t, "SELECT 1 FROM t WHERE a BETWEEN 1 AND 10 AND b NOT BETWEEN c AND d")
	conj := logical.SplitConjunction(core(t, q).Where)
	if len(conj) != 2 {
		t.Fatalf("conjuncts: %v", core(t, q).Where)
	}
	b0 := conj[0].(*logical.Between)
	if b0.Negated {
		t.Fatal("between wrong")
	}
	b1 := conj[1].(*logical.Between)
	if !b1.Negated {
		t.Fatal("not between wrong")
	}
}

func TestParseTPCHShapes(t *testing.T) {
	// Representative fragments from TPC-H queries must parse.
	queries := []string{
		`select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty,
			sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge
		from lineitem where l_shipdate <= date '1998-12-01' - interval '90' day
		group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus`,
		`select o_orderpriority, count(*) as order_count from orders
		where o_orderdate >= date '1993-07-01'
		and exists (select * from lineitem where l_orderkey = o_orderkey and l_commitdate < l_receiptdate)
		group by o_orderpriority order by o_orderpriority`,
		`select sum(l_extendedprice) / 7.0 as avg_yearly from lineitem, part
		where p_partkey = l_partkey and p_brand = 'Brand#23'
		and l_quantity < (select 0.2 * avg(l_quantity) from lineitem where l_partkey = p_partkey)`,
		`select c_count, count(*) as custdist from (
			select c_custkey, count(o_orderkey) from customer left outer join orders
			on c_custkey = o_custkey and o_comment not like '%special%requests%'
			group by c_custkey) as c_orders (c_custkey, c_count)
		group by c_count order by custdist desc, c_count desc`,
	}
	for i, src := range queries {
		// Q13 uses a column-alias list `(c_custkey, c_count)`; strip it as
		// we support positional aliasing via projection aliases instead.
		src = strings.Replace(src, "(c_custkey, c_count)", "", 1)
		if _, err := ParseQuery(src); err != nil {
			t.Fatalf("tpch fragment %d: %v", i, err)
		}
	}
}
