//go:build sanitize

package server

import (
	"fmt"
	"os"
	"testing"

	"gofusion/internal/memory"
)

// TestMain (sanitize builds only) fails the package when the checked
// allocator recorded any double releases, canary overwrites, or leaked
// reservations/spill files after the server suite — including the
// concurrency soak — ran.
func TestMain(m *testing.M) {
	code := m.Run()
	if fs := memory.SanitizerFindings(); len(fs) > 0 {
		for _, f := range fs {
			fmt.Fprintln(os.Stderr, "sanitizer:", f)
		}
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}
