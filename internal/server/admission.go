// Package server is the multi-tenant SQL service layer: an HTTP/JSON
// front end over a shared core.SessionContext with admission control
// (bounded concurrency + bounded wait queue + per-request deadlines), a
// global memory budget arbitrated across in-flight queries, plan-cache
// backed prepared statements, and a /stats endpoint reusing the EXPLAIN
// ANALYZE metrics plumbing.
package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Acquire when the wait queue is at capacity:
// the server is overloaded and the request is shed immediately (HTTP 429).
var ErrQueueFull = errors.New("server: admission queue full")

// ErrQueueTimeout is returned by Acquire when a queued request waited
// longer than the queue timeout without a slot freeing up (HTTP 503).
var ErrQueueTimeout = errors.New("server: timed out waiting for an execution slot")

// Limiter is the admission controller: at most Slots queries execute at
// once, at most MaxQueue more wait, and no request waits longer than the
// queue timeout. Requests whose context is cancelled while queued are
// dequeued immediately (a disconnecting client stops occupying queue
// capacity).
type Limiter struct {
	slots        chan struct{}
	maxQueue     int64
	queueTimeout time.Duration

	queued   atomic.Int64
	inFlight atomic.Int64

	admitted    atomic.Int64
	shedFull    atomic.Int64
	shedTimeout atomic.Int64
	cancelled   atomic.Int64
	peak        atomic.Int64
}

// LimiterStats is a snapshot of admission activity.
type LimiterStats struct {
	Slots        int   `json:"slots"`
	MaxQueue     int   `json:"max_queue"`
	InFlight     int64 `json:"in_flight"`
	Queued       int64 `json:"queued"`
	PeakInFlight int64 `json:"peak_in_flight"`
	Admitted     int64 `json:"admitted"`
	ShedFull     int64 `json:"shed_queue_full"`
	ShedTimeout  int64 `json:"shed_queue_timeout"`
	Cancelled    int64 `json:"cancelled_in_queue"`
}

// NewLimiter builds an admission controller with the given slot count,
// queue bound, and maximum queue wait. slots and maxQueue default to 1
// and 0 (no queue) when non-positive; a non-positive queueTimeout means
// queued requests wait until their own context expires.
func NewLimiter(slots, maxQueue int, queueTimeout time.Duration) *Limiter {
	if slots <= 0 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		slots:        make(chan struct{}, slots),
		maxQueue:     int64(maxQueue),
		queueTimeout: queueTimeout,
	}
}

// Acquire claims an execution slot, waiting in the bounded queue when all
// slots are busy. It returns a release function (idempotent) on success,
// ErrQueueFull or ErrQueueTimeout when the request is shed, or the
// context error when the caller gave up while queued.
func (l *Limiter) Acquire(ctx context.Context) (func(), error) {
	// Fast path: a free slot admits without queueing.
	select {
	case l.slots <- struct{}{}:
		return l.admit(), nil
	default:
	}

	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.shedFull.Add(1)
		return nil, ErrQueueFull
	}
	defer l.queued.Add(-1)

	var timeout <-chan time.Time
	if l.queueTimeout > 0 {
		t := time.NewTimer(l.queueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case l.slots <- struct{}{}:
		return l.admit(), nil
	case <-timeout:
		l.shedTimeout.Add(1)
		return nil, ErrQueueTimeout
	case <-ctx.Done():
		l.cancelled.Add(1)
		return nil, ctx.Err()
	}
}

func (l *Limiter) admit() func() {
	l.admitted.Add(1)
	n := l.inFlight.Add(1)
	for {
		p := l.peak.Load()
		if n <= p || l.peak.CompareAndSwap(p, n) {
			break
		}
	}
	var released atomic.Bool
	return func() {
		if released.CompareAndSwap(false, true) {
			l.inFlight.Add(-1)
			<-l.slots
		}
	}
}

// Stats snapshots the limiter counters.
func (l *Limiter) Stats() LimiterStats {
	return LimiterStats{
		Slots:        cap(l.slots),
		MaxQueue:     int(l.maxQueue),
		InFlight:     l.inFlight.Load(),
		Queued:       l.queued.Load(),
		PeakInFlight: l.peak.Load(),
		Admitted:     l.admitted.Load(),
		ShedFull:     l.shedFull.Load(),
		ShedTimeout:  l.shedTimeout.Load(),
		Cancelled:    l.cancelled.Load(),
	}
}
