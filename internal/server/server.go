package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"gofusion/internal/core"
	"gofusion/internal/memory"
	"gofusion/internal/sql"
)

// Config tunes the service layer.
type Config struct {
	// Session is the engine configuration shared by every request.
	// EnablePlanCache is recommended (prepared statements and repeated
	// queries skip planning); ParentPool is overwritten when
	// MemoryBudget is set.
	Session core.SessionConfig
	// MemoryBudget bounds tracked operator memory across ALL in-flight
	// queries (bytes; 0 = no shared budget). Each query charges a child
	// pool of this budget, so admission-controlled concurrency divides
	// one global allowance instead of multiplying per-query limits.
	MemoryBudget int64
	// QueryMemoryLimit caps each individual query (bytes; 0 = only the
	// shared budget applies).
	QueryMemoryLimit int64
	// Slots is the number of queries allowed to execute concurrently
	// (default 8).
	Slots int
	// MaxQueue bounds how many admitted-but-waiting requests may queue
	// (default 2*Slots; <0 disables queueing entirely; requests beyond
	// the bound are shed with HTTP 429).
	MaxQueue int
	// QueueTimeout is the longest a request may wait for a slot before
	// being shed with HTTP 503 (default 10s; <0 disables).
	QueueTimeout time.Duration
	// RequestTimeout is the default per-request execution deadline
	// (default 60s; <0 disables). A request's timeout_ms field overrides
	// it per query.
	RequestTimeout time.Duration
}

// sessionState is the per-tenant slice of server state: prepared
// statements and usage counters. All sessions execute against the one
// shared engine session (shared catalog, plan cache, and memory budget);
// the state here is what is scoped per tenant.
type sessionState struct {
	mu       sync.Mutex
	prepared map[string]*core.PreparedStatement
	nextID   int

	queries  atomic.Int64
	errors   atomic.Int64
	rows     atomic.Int64
	busyUsec atomic.Int64
}

// SessionStats is the /stats snapshot of one tenant session.
type SessionStats struct {
	Queries      int64   `json:"queries"`
	Errors       int64   `json:"errors"`
	RowsReturned int64   `json:"rows_returned"`
	Prepared     int     `json:"prepared_statements"`
	BusySeconds  float64 `json:"busy_seconds"`
}

// MemoryStats is the /stats snapshot of the shared memory budget.
type MemoryStats struct {
	BudgetBytes   int64 `json:"budget_bytes"`
	ReservedBytes int64 `json:"reserved_bytes"`
	PeakBytes     int64 `json:"peak_bytes"`
}

// Stats is the GET /stats response.
type Stats struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Queries       int64                   `json:"queries"`
	Errors        int64                   `json:"errors"`
	RowsReturned  int64                   `json:"rows_returned"`
	Admission     LimiterStats            `json:"admission"`
	PlanCache     *core.PlanCacheStats    `json:"plan_cache,omitempty"`
	Memory        *MemoryStats            `json:"memory,omitempty"`
	Sessions      map[string]SessionStats `json:"sessions,omitempty"`
}

// Server is the multi-tenant SQL service. One engine session serves every
// request: concurrent reads are safe, writes (DDL/INSERT/COPY) serialize
// behind a writer lock because table registration is read-modify-write.
type Server struct {
	cfg     Config
	base    *core.SessionContext
	parent  *memory.GreedyPool
	limiter *Limiter
	started time.Time

	writeMu sync.Mutex

	mu       sync.Mutex
	sessions map[string]*sessionState

	queries atomic.Int64
	errs    atomic.Int64
	rows    atomic.Int64
}

// New builds a server. Datasets are registered by the caller through
// Session() before serving traffic.
func New(cfg Config) *Server {
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 2 * cfg.Slots
	}
	if cfg.QueueTimeout == 0 {
		cfg.QueueTimeout = 10 * time.Second
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	scfg := cfg.Session
	var parent *memory.GreedyPool
	if cfg.MemoryBudget > 0 {
		parent = memory.NewGreedyPool(cfg.MemoryBudget)
		scfg.ParentPool = parent
	}
	if cfg.QueryMemoryLimit > 0 {
		scfg.MemoryLimit = cfg.QueryMemoryLimit
	}
	return &Server{
		cfg:      cfg,
		base:     core.NewSession(scfg),
		parent:   parent,
		limiter:  NewLimiter(cfg.Slots, cfg.MaxQueue, cfg.QueueTimeout),
		started:  time.Now(),
		sessions: map[string]*sessionState{},
	}
}

// Session exposes the shared engine session for dataset registration.
func (s *Server) Session() *core.SessionContext { return s.base }

// Limiter exposes the admission controller (tests and stats).
func (s *Server) Limiter() *Limiter { return s.limiter }

// ParentPool returns the shared memory budget pool, or nil when no
// budget is configured.
func (s *Server) ParentPool() *memory.GreedyPool { return s.parent }

// Close releases the engine session.
func (s *Server) Close() { s.base.Close() }

// Handler returns the HTTP mux: POST /query, POST /prepare, GET /stats,
// GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/prepare", s.handlePrepare)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) session(name string) *sessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.sessions[name]
	if !ok {
		st = &sessionState{prepared: map[string]*core.PreparedStatement{}}
		s.sessions[name] = st
	}
	return st
}

// statusFor maps an execution error to an HTTP status: overload and
// memory pressure are retryable (429/503), deadlines are 504, client
// cancellation is the nginx-conventional 499, everything else is a bad
// request.
func statusFor(err error) int {
	var mem *memory.ErrResourcesExhausted
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrQueueTimeout), errors.As(err, &mem):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	default:
		return http.StatusBadRequest
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// isWrite classifies a statement: writes mutate the shared catalog and
// serialize behind the writer lock.
func isWrite(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.CreateTableStmt, *sql.InsertStmt, *sql.CopyStmt:
		return true
	}
	return false
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if (req.SQL == "") == (req.Prepared == "") {
		writeError(w, http.StatusBadRequest, errors.New("exactly one of sql or prepared must be set"))
		return
	}
	sess := s.session(req.Session)

	ctx := r.Context()
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Admission: waiting for a slot counts against the request deadline,
	// so a saturated server sheds instead of building invisible backlog.
	release, err := s.limiter.Acquire(ctx)
	if err != nil {
		s.errs.Add(1)
		sess.errors.Add(1)
		writeError(w, statusFor(err), err)
		return
	}
	defer release()

	start := time.Now()
	resp, err := s.execute(ctx, sess, &req)
	elapsed := time.Since(start)
	s.queries.Add(1)
	sess.queries.Add(1)
	sess.busyUsec.Add(elapsed.Microseconds())
	if err != nil {
		s.errs.Add(1)
		sess.errors.Add(1)
		writeError(w, statusFor(err), err)
		return
	}
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	s.rows.Add(resp.RowCount)
	sess.rows.Add(resp.RowCount)
	writeJSON(w, resp)
}

// execute runs one admitted request to completion.
func (s *Server) execute(ctx context.Context, sess *sessionState, req *queryRequest) (*queryResponse, error) {
	// The plan-cache lookup happens at plan time, inside SQL()/Query()
	// below — sample the hit counter first so the delta is visible.
	var hitsBefore int64
	if pcs, ok := s.base.PlanCacheStats(); ok {
		hitsBefore = pcs.Hits
	}
	var df *core.DataFrame
	var err error
	switch {
	case req.Prepared != "":
		sess.mu.Lock()
		ps := sess.prepared[req.Prepared]
		sess.mu.Unlock()
		if ps == nil {
			return nil, fmt.Errorf("unknown prepared statement %q", req.Prepared)
		}
		df, err = ps.Query()
	default:
		stmt, perr := sql.Parse(req.SQL)
		if perr != nil {
			return nil, perr
		}
		if isWrite(stmt) {
			// Writes re-register providers (read-modify-write on the
			// catalog): one writer at a time. The statement executes
			// inside SQL; the returned frame is a status row.
			s.writeMu.Lock()
			df, err = s.base.SQL(req.SQL)
			s.writeMu.Unlock()
		} else {
			df, err = s.base.SQL(req.SQL)
		}
	}
	if err != nil {
		return nil, err
	}

	batches, qm, err := df.CollectWithMetricsContext(ctx)
	if err != nil {
		return nil, err
	}
	resp := &queryResponse{
		Rows:      EncodeRows(batches),
		RowCount:  qm.RowsReturned,
		ResultHit: qm.ResultCacheHit,
	}
	if len(batches) > 0 {
		resp.Columns, resp.Types = EncodeSchema(batches[0].Schema())
	}
	// Best-effort under concurrency: a sibling request's hit can be
	// attributed to this one. Informational only.
	if pcs, ok := s.base.PlanCacheStats(); ok {
		resp.PlanHit = pcs.Hits > hitsBefore
	}
	return resp, nil
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req prepareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	ps, err := s.base.Prepare(req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sess := s.session(req.Session)
	sess.mu.Lock()
	sess.nextID++
	handle := fmt.Sprintf("p%d", sess.nextID)
	sess.prepared[handle] = ps
	sess.mu.Unlock()
	writeJSON(w, prepareResponse{Handle: handle, SQL: ps.SQL(), Session: req.Session})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	st := Stats{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Queries:       s.queries.Load(),
		Errors:        s.errs.Load(),
		RowsReturned:  s.rows.Load(),
		Admission:     s.limiter.Stats(),
	}
	if pcs, ok := s.base.PlanCacheStats(); ok {
		st.PlanCache = &pcs
	}
	if s.parent != nil {
		st.Memory = &MemoryStats{
			BudgetBytes:   s.parent.Limit(),
			ReservedBytes: s.parent.Reserved(),
			PeakBytes:     s.parent.ReservedPeak(),
		}
	}
	s.mu.Lock()
	if len(s.sessions) > 0 {
		st.Sessions = make(map[string]SessionStats, len(s.sessions))
		for name, sess := range s.sessions {
			sess.mu.Lock()
			np := len(sess.prepared)
			sess.mu.Unlock()
			st.Sessions[name] = SessionStats{
				Queries:      sess.queries.Load(),
				Errors:       sess.errors.Load(),
				RowsReturned: sess.rows.Load(),
				Prepared:     np,
				BusySeconds:  float64(sess.busyUsec.Load()) / 1e6,
			}
		}
	}
	s.mu.Unlock()
	writeJSON(w, st)
}
