package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gofusion/internal/fuzzsql"
)

// newTestServer stands up a server over the seeded fuzzsql tables
// (t1: ~240 rows, t2: ~110 rows) and returns it with its HTTP fixture.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ds := fuzzsql.NewDataset(1)
	for _, tbl := range ds.Tables {
		if err := srv.Session().RegisterBatches(tbl.Name, tbl.Schema, tbl.Batches); err != nil {
			t.Fatal(err)
		}
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestServerQueryBasic(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, out := postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT count(*) AS n FROM t1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	if got := out["row_count"].(float64); got != 1 {
		t.Fatalf("row_count = %v, want 1", got)
	}
	rows := out["rows"].([]any)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	cols := out["columns"].([]any)
	if len(cols) != 1 || cols[0] != "n" {
		t.Fatalf("columns = %v, want [n]", cols)
	}
}

func TestServerQueryErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, out := postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT FROM nothing WHERE"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad SQL status = %d, want 400", resp.StatusCode)
	}
	if out["error"] == nil {
		t.Fatal("error body missing")
	}
	// Exactly one of sql/prepared is required.
	resp, _ = postJSON(t, hs.URL+"/query", map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty request status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT 1", "prepared": "p1"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous request status = %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, hs.URL+"/query", map[string]any{"prepared": "p99"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown handle status = %d, want 400", resp.StatusCode)
	}
}

func TestServerPreparedFlow(t *testing.T) {
	cfg := Config{}
	cfg.Session.EnablePlanCache = true
	srv, hs := newTestServer(t, cfg)

	resp, out := postJSON(t, hs.URL+"/prepare",
		map[string]any{"sql": "SELECT a, b FROM t1 WHERE a > 3 ORDER BY a, b LIMIT 5", "session": "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prepare status = %d, body %v", resp.StatusCode, out)
	}
	handle := out["handle"].(string)
	if handle == "" {
		t.Fatal("no handle returned")
	}

	var first []any
	for i := 0; i < 3; i++ {
		resp, out := postJSON(t, hs.URL+"/query", map[string]any{"prepared": handle, "session": "alice"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("execute %d status = %d, body %v", i, resp.StatusCode, out)
		}
		rows := out["rows"].([]any)
		if i == 0 {
			first = rows
		} else if fmt.Sprint(rows) != fmt.Sprint(first) {
			t.Fatalf("execution %d diverged: %v vs %v", i, rows, first)
		}
	}
	// Handles are session-scoped: another session cannot execute them.
	resp, _ = postJSON(t, hs.URL+"/query", map[string]any{"prepared": handle, "session": "bob"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cross-session handle status = %d, want 400", resp.StatusCode)
	}
	// The plan cache served the repeats.
	if pcs, ok := srv.Session().PlanCacheStats(); !ok || pcs.Hits < 2 {
		t.Fatalf("plan cache stats = %+v ok=%v, want >= 2 hits", pcs, ok)
	}
}

func TestServerShedsWhenOverloaded(t *testing.T) {
	srv, hs := newTestServer(t, Config{Slots: 1, MaxQueue: -1}) // no queue
	// Occupy the only execution slot directly; any request must then shed
	// immediately with the documented 429.
	release, err := srv.Limiter().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT count(*) FROM t1"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%v), want 429", resp.StatusCode, out)
	}
	release()
	// With the slot free again the same request succeeds.
	resp, _ = postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT count(*) FROM t1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp.StatusCode)
	}
}

func TestServerQueueTimeoutSheds(t *testing.T) {
	srv, hs := newTestServer(t, Config{Slots: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	release, err := srv.Limiter().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, _ := postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT count(*) FROM t1"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 after queue timeout", resp.StatusCode)
	}
	if st := srv.Limiter().Stats(); st.ShedTimeout != 1 {
		t.Fatalf("limiter stats = %+v, want 1 queue-timeout shed", st)
	}
}

func TestServerWritesVisibleToReads(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, out := postJSON(t, hs.URL+"/query",
		map[string]any{"sql": "CREATE TABLE snap AS SELECT a, b FROM t1 WHERE a > 0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create status = %d, body %v", resp.StatusCode, out)
	}
	_, before := postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT count(*) FROM snap"})
	n0 := before["rows"].([]any)[0].([]any)[0].(float64)
	resp, out = postJSON(t, hs.URL+"/query",
		map[string]any{"sql": "INSERT INTO snap SELECT a, b FROM t1 WHERE a > 0"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d, body %v", resp.StatusCode, out)
	}
	_, after := postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT count(*) FROM snap"})
	n1 := after["rows"].([]any)[0].([]any)[0].(float64)
	if n1 != 2*n0 || n0 == 0 {
		t.Fatalf("row counts before/after insert = %v/%v, want doubled non-zero", n0, n1)
	}
}

func TestServerStatsEndpoint(t *testing.T) {
	cfg := Config{MemoryBudget: 64 << 20}
	cfg.Session.EnablePlanCache = true
	_, hs := newTestServer(t, cfg)
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, hs.URL+"/query",
			map[string]any{"sql": "SELECT s, count(*) FROM t1 GROUP BY s", "session": "alice"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d failed", i)
		}
	}
	resp, err := http.Get(hs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 3 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 3 queries 0 errors", st)
	}
	if st.Admission.Admitted != 3 || st.Admission.Slots == 0 {
		t.Fatalf("admission stats = %+v, want 3 admitted", st.Admission)
	}
	if st.PlanCache == nil || st.PlanCache.Hits != 2 {
		t.Fatalf("plan cache stats = %+v, want 2 hits for 3 identical queries", st.PlanCache)
	}
	if st.Memory == nil || st.Memory.BudgetBytes != 64<<20 {
		t.Fatalf("memory stats = %+v, want 64MiB budget", st.Memory)
	}
	sess, ok := st.Sessions["alice"]
	if !ok || sess.Queries != 3 {
		t.Fatalf("session stats = %+v, want alice with 3 queries", st.Sessions)
	}
}

func TestServerPerRequestTimeoutOverride(t *testing.T) {
	// timeout_ms must bound the whole request including admission: with
	// the one slot held, the queued request's deadline fires and the
	// request sheds as a cancellation rather than waiting for the queue
	// timeout (10s default).
	srv, hs := newTestServer(t, Config{Slots: 1, MaxQueue: 4})
	release, err := srv.Limiter().Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	resp, _ := postJSON(t, hs.URL+"/query",
		map[string]any{"sql": "SELECT count(*) FROM t1", "timeout_ms": 30})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("request took %v, deadline did not fire", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 for an expired per-request deadline", resp.StatusCode)
	}
}

func TestServerHealthz(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

func TestServerMemoryBudgetArbitration(t *testing.T) {
	// A query whose tracked demand exceeds the shared budget — with the
	// spill escape hatch closed — must fail as retryable 503, and the
	// parent pool must drain back to zero afterwards. Aggregation and
	// sort are the reserving operators, so drive both.
	cfg := Config{MemoryBudget: 256}
	cfg.Session.TargetPartitions = 1
	cfg.Session.DisableSpill = true
	srv, hs := newTestServer(t, cfg)
	resp, out := postJSON(t, hs.URL+"/query",
		map[string]any{"sql": "SELECT s, count(*) AS n FROM t1 GROUP BY s ORDER BY n DESC"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%v), want 503 on budget exhaustion", resp.StatusCode, out)
	}
	if !strings.Contains(fmt.Sprint(out["error"]), "memory") {
		t.Fatalf("error %v does not name the memory budget", out["error"])
	}
	if got := srv.ParentPool().Reserved(); got != 0 {
		t.Fatalf("parent pool reserved after failed query = %d, want 0", got)
	}
	// A small query still fits the budget: the server degrades per-query,
	// not globally.
	resp, out = postJSON(t, hs.URL+"/query", map[string]any{"sql": "SELECT count(*) FROM t1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small query status = %d (%v), want 200 under same budget", resp.StatusCode, out)
	}
}
