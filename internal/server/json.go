package server

import (
	"gofusion/internal/arrow"
)

// queryRequest is the POST /query body. Exactly one of SQL or Prepared
// must be set; Session scopes prepared-statement handles and per-session
// metrics (empty means the shared anonymous session).
type queryRequest struct {
	SQL       string `json:"sql,omitempty"`
	Prepared  string `json:"prepared,omitempty"`
	Session   string `json:"session,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// queryResponse carries one query's result rows with enough type
// information for a client to decode cells losslessly (the load harness
// rebuilds arrow scalars from Types for differential comparison).
type queryResponse struct {
	Columns   []string `json:"columns,omitempty"`
	Types     []string `json:"types,omitempty"`
	Rows      [][]any  `json:"rows,omitempty"`
	RowCount  int64    `json:"row_count"`
	ElapsedMS float64  `json:"elapsed_ms"`
	PlanHit   bool     `json:"plan_cache_hit,omitempty"`
	ResultHit bool     `json:"result_cache_hit,omitempty"`
}

// prepareRequest is the POST /prepare body.
type prepareRequest struct {
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
}

// prepareResponse returns the handle to pass as queryRequest.Prepared.
type prepareResponse struct {
	Handle  string `json:"handle"`
	SQL     string `json:"sql"`
	Session string `json:"session,omitempty"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// EncodeSchema renders column names and arrow type names for a response
// header.
func EncodeSchema(s *arrow.Schema) (cols, types []string) {
	cols = make([]string, s.NumFields())
	types = make([]string, s.NumFields())
	for i, f := range s.Fields() {
		cols[i] = f.Name
		types[i] = f.Type.String()
	}
	return cols, types
}

// EncodeRows flattens batches into JSON-encodable row slices. Cells map
// by physical representation: integers (including dates and timestamps)
// to int64, floats and decimals to float64, strings/binary to string,
// booleans to bool, nulls to nil; anything else falls back to the
// scalar's debug rendering.
func EncodeRows(batches []*arrow.RecordBatch) [][]any {
	var rows [][]any
	for _, b := range batches {
		for r := 0; r < b.NumRows(); r++ {
			row := make([]any, b.NumCols())
			for c := 0; c < b.NumCols(); c++ {
				row[c] = cellValue(b.Column(c).GetScalar(r))
			}
			rows = append(rows, row)
		}
	}
	return rows
}

func cellValue(sc arrow.Scalar) any {
	if sc.Null {
		return nil
	}
	switch sc.Type.ID {
	case arrow.BOOL:
		return sc.AsBool()
	case arrow.FLOAT32, arrow.FLOAT64, arrow.DECIMAL:
		return sc.AsFloat64()
	case arrow.STRING, arrow.BINARY:
		return sc.AsString()
	case arrow.INT8, arrow.INT16, arrow.INT32, arrow.INT64,
		arrow.UINT8, arrow.UINT16, arrow.UINT32, arrow.UINT64,
		arrow.DATE32, arrow.TIMESTAMP:
		return sc.AsInt64()
	default:
		return sc.String()
	}
}
