package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"gofusion/internal/fuzzsql"
	"gofusion/internal/testutil"
)

// TestServerConcurrencySoak hammers one server with mixed read, ingest,
// and client-cancel traffic across several phases and pins the resource
// invariants the service layer promises: no goroutine leaks, the shared
// parent pool drains to zero, its peak stays flat across phases (steady
// state, not monotone growth), and no spill files survive. Under the
// sanitize build tag the package TestMain additionally fails the run on
// any leaked reservation or spill file recorded by the checked
// allocator.
func TestServerConcurrencySoak(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()

	clients, requests, phases := 8, 30, 3
	if testing.Short() {
		clients, requests = 4, 10
	}

	spillDir := t.TempDir()
	cfg := Config{
		MemoryBudget:     64 << 20,
		QueryMemoryLimit: 16 << 20,
		Slots:            4,
		MaxQueue:         4 * clients * phases, // ample: admission never sheds
	}
	cfg.Session.EnablePlanCache = true
	cfg.Session.SpillDir = spillDir
	srv := New(cfg)
	defer srv.Close()
	ds := fuzzsql.NewDataset(7)
	for _, tbl := range ds.Tables {
		if err := srv.Session().RegisterBatches(tbl.Name, tbl.Schema, tbl.Batches); err != nil {
			t.Fatal(err)
		}
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	hc := hs.Client()
	defer hc.CloseIdleConnections()

	post := func(body map[string]any) (int, map[string]any) {
		resp, out := postJSON(t, hs.URL+"/query", body)
		return resp.StatusCode, out
	}

	// Seed the ingest target and learn the per-insert row count so the
	// final count is checkable despite concurrency.
	if code, out := post(map[string]any{"sql": "CREATE TABLE soak AS SELECT a, b FROM t1"}); code != http.StatusOK {
		t.Fatalf("seeding soak table: %d %v", code, out)
	}
	_, out := post(map[string]any{"sql": "SELECT count(*) FROM t1 WHERE a > 5"})
	perInsert := int64(out["rows"].([]any)[0].([]any)[0].(float64))
	_, out = post(map[string]any{"sql": "SELECT count(*) FROM soak"})
	baseRows := int64(out["rows"].([]any)[0].([]any)[0].(float64))

	reads := []string{
		"SELECT s, count(*) AS n, sum(a) AS sa FROM t1 GROUP BY s ORDER BY n DESC, s",
		"SELECT a, b, c FROM t1 WHERE a > 3 ORDER BY c DESC, a LIMIT 20",
		"SELECT t1.a, t2.x, t2.y FROM t1 JOIN t2 ON t1.a = t2.x ORDER BY t1.a, t2.y LIMIT 50",
		"SELECT count(*) FROM t1 WHERE b < 100",
		"SELECT d, avg(c) AS m FROM t1 GROUP BY d ORDER BY d LIMIT 10",
	}

	var inserts, cancels, failures atomic.Int64
	runPhase := func(phase int) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(phase*1000 + c)))
				session := fmt.Sprintf("tenant-%d", c)
				for n := 0; n < requests; n++ {
					switch {
					case n%5 == 4: // ingest
						code, out := post(map[string]any{
							"sql": "INSERT INTO soak SELECT a, b FROM t1 WHERE a > 5", "session": session})
						if code != http.StatusOK {
							failures.Add(1)
							t.Errorf("insert failed: %d %v", code, out)
							continue
						}
						inserts.Add(1)
					case n%7 == 6: // client-side cancel via a 1ms deadline
						code, out := post(map[string]any{
							"sql": reads[rng.Intn(len(reads))], "session": session, "timeout_ms": 1})
						switch code {
						case http.StatusGatewayTimeout, http.StatusServiceUnavailable:
							cancels.Add(1)
						case http.StatusOK: // won the race; fine
						default:
							failures.Add(1)
							t.Errorf("cancel probe: unexpected %d %v", code, out)
						}
					default: // read
						code, out := post(map[string]any{
							"sql": reads[rng.Intn(len(reads))], "session": session})
						if code != http.StatusOK {
							failures.Add(1)
							t.Errorf("read failed: %d %v", code, out)
						}
					}
				}
			}(c)
		}
		wg.Wait()
	}

	peaks := make([]int64, phases)
	for p := 0; p < phases; p++ {
		runPhase(p)
		if got := srv.ParentPool().Reserved(); got != 0 {
			t.Fatalf("phase %d: parent pool reserved = %d, want 0 between phases", p, got)
		}
		peaks[p] = srv.ParentPool().ReservedPeak()
	}

	if failures.Load() != 0 {
		t.Fatalf("%d unexpected request failures", failures.Load())
	}
	if peaks[phases-1] > cfg.MemoryBudget {
		t.Fatalf("parent pool peak %d exceeded budget %d", peaks[phases-1], cfg.MemoryBudget)
	}
	// Steady state: once warmed up in phase 0, later phases must not grow
	// the high-water mark by more than one query's worth of memory.
	if growth := peaks[phases-1] - peaks[0]; growth > cfg.QueryMemoryLimit {
		t.Fatalf("parent pool peak grew %d bytes across phases (peaks %v), want <= one query limit %d",
			growth, peaks, cfg.QueryMemoryLimit)
	}

	// Every admitted insert landed exactly once.
	_, out = post(map[string]any{"sql": "SELECT count(*) FROM soak"})
	finalRows := int64(out["rows"].([]any)[0].([]any)[0].(float64))
	if want := baseRows + inserts.Load()*perInsert; finalRows != want {
		t.Fatalf("soak table has %d rows, want %d (%d inserts x %d rows)",
			finalRows, want, inserts.Load(), perInsert)
	}

	// No spill file outlived its query.
	entries, err := os.ReadDir(spillDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("surviving spill file: %s", filepath.Join(spillDir, e.Name()))
	}

	st := srv.Limiter().Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("limiter not drained: %+v", st)
	}
	if st.PeakInFlight > int64(cfg.Slots) {
		t.Fatalf("peak in-flight %d exceeded %d slots", st.PeakInFlight, cfg.Slots)
	}
	t.Logf("soak: %d inserts, %d cancels, peaks %v", inserts.Load(), cancels.Load(), peaks)
}
