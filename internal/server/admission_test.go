package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gofusion/internal/memory"
)

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLimiterQueueFullSheds(t *testing.T) {
	l := NewLimiter(1, 1, 0)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// One request may queue; it parks because the slot is busy.
	queuedDone := make(chan error, 1)
	go func() {
		r, err := l.Acquire(context.Background())
		if err == nil {
			defer r()
		}
		queuedDone <- err
	}()
	waitFor(t, "request to queue", func() bool { return l.Stats().Queued == 1 })

	// The queue is at capacity: the next request sheds immediately with
	// the documented sentinel (the HTTP layer maps it to 429).
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("acquire on full queue = %v, want ErrQueueFull", err)
	}
	if st := l.Stats(); st.ShedFull != 1 {
		t.Fatalf("stats = %+v, want shed_queue_full 1", st)
	}

	release()
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued request should admit after release: %v", err)
	}
	if st := l.Stats(); st.Admitted != 2 || st.Queued != 0 {
		t.Fatalf("final stats = %+v, want 2 admitted 0 queued", st)
	}
}

func TestLimiterQueueTimeout(t *testing.T) {
	l := NewLimiter(1, 4, 10*time.Millisecond)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if _, err := l.Acquire(context.Background()); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("acquire = %v, want ErrQueueTimeout", err)
	}
	if st := l.Stats(); st.ShedTimeout != 1 {
		t.Fatalf("stats = %+v, want shed_queue_timeout 1", st)
	}
}

func TestLimiterCancelDequeues(t *testing.T) {
	l := NewLimiter(1, 4, 0)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// A queued request whose client disconnects must leave the queue
	// immediately instead of occupying capacity until a slot frees.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := l.Acquire(ctx)
		done <- err
	}()
	waitFor(t, "request to queue", func() bool { return l.Stats().Queued == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire = %v, want context.Canceled", err)
	}
	if st := l.Stats(); st.Cancelled != 1 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want 1 cancelled 0 queued", st)
	}
}

// TestLimiterFairnessPin is the deterministic fairness invariant: with K
// slots and 2K concurrent requests (queue sized to hold the overflow),
// observed concurrency never exceeds K and every request completes.
func TestLimiterFairnessPin(t *testing.T) {
	const k = 4
	l := NewLimiter(k, 2*k, 0)
	var inFlight, peak, completed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 2*k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release, err := l.Acquire(context.Background())
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			n := inFlight.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond) // hold the slot long enough to overlap
			inFlight.Add(-1)
			completed.Add(1)
			release()
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > k {
		t.Fatalf("observed concurrency %d exceeds %d slots", got, k)
	}
	if got := completed.Load(); got != 2*k {
		t.Fatalf("completed %d of %d requests", got, 2*k)
	}
	st := l.Stats()
	if st.Admitted != 2*k || st.PeakInFlight > k || st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("stats = %+v, want %d admitted, peak <= %d, all drained", st, 2*k, k)
	}
}

func TestLimiterReleaseIdempotent(t *testing.T) {
	l := NewLimiter(1, 0, 0)
	release, err := l.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // second call must not free a slot twice
	if _, err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("reacquire after release: %v", err)
	}
	if st := l.Stats(); st.InFlight != 1 {
		t.Fatalf("stats = %+v, want exactly 1 in flight", st)
	}
}

func TestStatusForMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{ErrQueueFull, 429},
		{ErrQueueTimeout, 503},
		{fmt.Errorf("executing: %w", &memory.ErrResourcesExhausted{Consumer: "sort", Requested: 1, Limit: 1}), 503},
		{context.DeadlineExceeded, 504},
		{context.Canceled, 499},
		{errors.New("sql: syntax error"), 400},
	}
	for _, c := range cases {
		if got := statusFor(c.err); got != c.want {
			t.Errorf("statusFor(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
