package logical

import (
	"fmt"

	"gofusion/internal/arrow"
)

// Registry resolves function return types during planning. The functions
// package provides the standard implementation; systems register UDFs
// through the same interface.
type Registry interface {
	// ScalarReturnType resolves a scalar function's output type.
	ScalarReturnType(name string, args []*arrow.DataType) (*arrow.DataType, error)
	// AggReturnType resolves an aggregate function's output type.
	AggReturnType(name string, args []*arrow.DataType) (*arrow.DataType, error)
	// WindowReturnType resolves a window function's output type.
	WindowReturnType(name string, args []*arrow.DataType) (*arrow.DataType, error)
}

// PromoteNumeric returns the common type two numeric (or temporal)
// operands are coerced to for arithmetic and comparison.
func PromoteNumeric(a, b *arrow.DataType) (*arrow.DataType, error) {
	if a.Equal(b) {
		return a, nil
	}
	// Null coerces to the other side.
	if a.ID == arrow.NULL {
		return b, nil
	}
	if b.ID == arrow.NULL {
		return a, nil
	}
	// Decimal wins over integers; floats win over decimals.
	switch {
	case a.ID == arrow.FLOAT64 || b.ID == arrow.FLOAT64:
		return arrow.Float64, nil
	case a.ID == arrow.FLOAT32 || b.ID == arrow.FLOAT32:
		return arrow.Float64, nil
	case a.ID == arrow.DECIMAL && b.ID == arrow.DECIMAL:
		s := a.Scale
		if b.Scale > s {
			s = b.Scale
		}
		return arrow.Decimal(18, s), nil
	case a.ID == arrow.DECIMAL && b.IsInteger():
		return a, nil
	case b.ID == arrow.DECIMAL && a.IsInteger():
		return b, nil
	case a.IsInteger() && b.IsInteger():
		// Promote to the wider signedness-preserving integer; mixed
		// signedness promotes to Int64.
		if a.IsSignedInteger() != b.IsSignedInteger() {
			return arrow.Int64, nil
		}
		if a.BitWidth() >= b.BitWidth() {
			return a, nil
		}
		return b, nil
	case a.ID == arrow.DATE32 && b.ID == arrow.TIMESTAMP,
		a.ID == arrow.TIMESTAMP && b.ID == arrow.DATE32:
		return arrow.Timestamp, nil
	case a.ID == arrow.STRING && b.ID == arrow.STRING:
		return arrow.String, nil
	}
	return nil, fmt.Errorf("logical: no common type for %s and %s", a, b)
}

// TypeOf derives an expression's output type against a schema.
func TypeOf(e Expr, schema *Schema, reg Registry) (*arrow.DataType, error) {
	switch x := e.(type) {
	case *Column:
		i, err := schema.IndexOfColumn(x)
		if err != nil {
			return nil, err
		}
		return schema.Field(i).Type, nil
	case *Literal:
		return x.Value.Type, nil
	case *Alias:
		return TypeOf(x.E, schema, reg)
	case *BinaryExpr:
		if x.Op.IsComparison() || x.Op.IsLogical() {
			return arrow.Boolean, nil
		}
		if x.Op == OpConcat {
			return arrow.String, nil
		}
		lt, err := TypeOf(x.L, schema, reg)
		if err != nil {
			return nil, err
		}
		rt, err := TypeOf(x.R, schema, reg)
		if err != nil {
			return nil, err
		}
		// Temporal arithmetic.
		if lt.IsTemporal() || rt.IsTemporal() {
			return temporalArithType(x.Op, lt, rt)
		}
		common, err := PromoteNumeric(lt, rt)
		if err != nil {
			return nil, err
		}
		if common.ID == arrow.DECIMAL {
			switch x.Op {
			case OpMul:
				// Mirrors physical coercion: a non-decimal operand is cast
				// to the common decimal scale before the multiply, so its
				// effective scale is the common one, not zero.
				ls, rs := common.Scale, common.Scale
				if lt.ID == arrow.DECIMAL {
					ls = lt.Scale
				}
				if rt.ID == arrow.DECIMAL {
					rs = rt.Scale
				}
				return arrow.Decimal(18, ls+rs), nil
			case OpDiv:
				return arrow.Float64, nil
			}
		}
		if common.IsInteger() && x.Op == OpDiv {
			return common, nil
		}
		return common, nil
	case *Not, *IsNull, *Like, *InList, *Between, *Exists, *InSubquery:
		return arrow.Boolean, nil
	case *Negative:
		return TypeOf(x.E, schema, reg)
	case *Case:
		var t *arrow.DataType
		for _, w := range x.Whens {
			wt, err := TypeOf(w.Then, schema, reg)
			if err != nil {
				return nil, err
			}
			if t == nil || t.ID == arrow.NULL {
				t = wt
			} else if wt.ID != arrow.NULL && !t.Equal(wt) {
				if common, err := PromoteNumeric(t, wt); err == nil {
					t = common
				}
			}
		}
		if x.Else != nil {
			et, err := TypeOf(x.Else, schema, reg)
			if err != nil {
				return nil, err
			}
			if t == nil || t.ID == arrow.NULL {
				t = et
			} else if et.ID != arrow.NULL && !t.Equal(et) {
				if common, err := PromoteNumeric(t, et); err == nil {
					t = common
				}
			}
		}
		if t == nil {
			t = arrow.Null
		}
		return t, nil
	case *Cast:
		return x.To, nil
	case *ScalarFunc:
		args, err := argTypes(x.Args, schema, reg)
		if err != nil {
			return nil, err
		}
		return reg.ScalarReturnType(x.Name, args)
	case *AggFunc:
		args, err := argTypes(x.Args, schema, reg)
		if err != nil {
			return nil, err
		}
		return reg.AggReturnType(x.Name, args)
	case *WindowFunc:
		args, err := argTypes(x.Args, schema, reg)
		if err != nil {
			return nil, err
		}
		return reg.WindowReturnType(x.Name, args)
	case *ScalarSubquery:
		s := x.Plan.Schema()
		if s.Len() != 1 {
			return nil, fmt.Errorf("logical: scalar subquery must return one column")
		}
		return s.Field(0).Type, nil
	case *Wildcard:
		return nil, fmt.Errorf("logical: wildcard must be expanded before typing")
	}
	return nil, fmt.Errorf("logical: cannot type %T", e)
}

func temporalArithType(op BinOp, lt, rt *arrow.DataType) (*arrow.DataType, error) {
	switch {
	case op == OpSub && lt.ID == rt.ID && (lt.ID == arrow.DATE32 || lt.ID == arrow.TIMESTAMP):
		return arrow.Interval, nil
	case (op == OpAdd || op == OpSub) && (lt.ID == arrow.DATE32 || lt.ID == arrow.TIMESTAMP) && rt.ID == arrow.INTERVAL:
		return lt, nil
	case op == OpAdd && lt.ID == arrow.INTERVAL && (rt.ID == arrow.DATE32 || rt.ID == arrow.TIMESTAMP):
		return rt, nil
	case lt.ID == arrow.INTERVAL && rt.ID == arrow.INTERVAL && (op == OpAdd || op == OpSub):
		return arrow.Interval, nil
	}
	return nil, fmt.Errorf("logical: unsupported temporal arithmetic %s %s %s", lt, op, rt)
}

func argTypes(args []Expr, schema *Schema, reg Registry) ([]*arrow.DataType, error) {
	out := make([]*arrow.DataType, len(args))
	for i, a := range args {
		t, err := TypeOf(a, schema, reg)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

// NullableOf conservatively derives whether an expression can produce NULL.
func NullableOf(e Expr, schema *Schema) bool {
	switch x := e.(type) {
	case *Column:
		i, err := schema.IndexOfColumn(x)
		if err != nil {
			return true
		}
		return schema.Field(i).Nullable
	case *Literal:
		return x.Value.Null
	case *Alias:
		return NullableOf(x.E, schema)
	case *IsNull, *Exists:
		return false
	case *AggFunc:
		// COUNT never returns NULL; other aggregates may on empty input.
		return x.Name != "count"
	default:
		for _, c := range ExprChildren(e) {
			if NullableOf(c, schema) {
				return true
			}
		}
		// CASE without ELSE and aggregates over empty groups can be null.
		if c, ok := e.(*Case); ok && c.Else == nil {
			return true
		}
		return false
	}
}

// FieldOf derives the output field (name, type, nullability) an expression
// contributes to a projection's schema.
func FieldOf(e Expr, schema *Schema, reg Registry) (QField, error) {
	t, err := TypeOf(e, schema, reg)
	if err != nil {
		return QField{}, err
	}
	qualifier := ""
	if c, ok := e.(*Column); ok {
		i, err := schema.IndexOfColumn(c)
		if err == nil {
			qualifier = schema.Field(i).Qualifier
		}
	}
	return QField{
		Qualifier: qualifier,
		Name:      OutputName(e),
		Type:      t,
		Nullable:  NullableOf(e, schema),
	}, nil
}
