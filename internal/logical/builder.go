package logical

import (
	"fmt"
)

// Builder is a fluent LogicalPlan construction API (the paper's
// LogicalPlanBuilder, Section 5.3.3), used by the DataFrame API and by
// custom query-language front ends. Errors are deferred to Build.
type Builder struct {
	plan Plan
	reg  Registry
	err  error
}

// NewBuilder starts an empty builder resolving functions against reg.
func NewBuilder(reg Registry) *Builder { return &Builder{reg: reg} }

// FromPlan starts a builder from an existing plan.
func FromPlan(plan Plan, reg Registry) *Builder { return &Builder{plan: plan, reg: reg} }

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

func (b *Builder) need() bool {
	if b.err != nil {
		return false
	}
	if b.plan == nil {
		b.err = fmt.Errorf("logical: builder has no input plan")
		return false
	}
	return true
}

// Scan starts the plan from a table source.
func (b *Builder) Scan(name string, source TableSource) *Builder {
	if b.err != nil {
		return b
	}
	b.plan = NewTableScan(name, source)
	return b
}

// ValuesRows starts the plan from literal rows.
func (b *Builder) ValuesRows(rows [][]Expr) *Builder {
	if b.err != nil {
		return b
	}
	v, err := NewValues(rows, b.reg)
	if err != nil {
		return b.fail(err)
	}
	b.plan = v
	return b
}

// Project applies a projection.
func (b *Builder) Project(exprs ...Expr) *Builder {
	if !b.need() {
		return b
	}
	p, err := NewProjection(b.plan, exprs, b.reg)
	if err != nil {
		return b.fail(err)
	}
	b.plan = p
	return b
}

// Filter applies a predicate.
func (b *Builder) Filter(predicate Expr) *Builder {
	if !b.need() {
		return b
	}
	b.plan = &Filter{Input: b.plan, Predicate: predicate}
	return b
}

// Aggregate groups and aggregates.
func (b *Builder) Aggregate(groups []Expr, aggs []Expr) *Builder {
	if !b.need() {
		return b
	}
	a, err := NewAggregate(b.plan, groups, aggs, b.reg)
	if err != nil {
		return b.fail(err)
	}
	b.plan = a
	return b
}

// Sort orders the plan output.
func (b *Builder) Sort(keys ...SortExpr) *Builder {
	if !b.need() {
		return b
	}
	b.plan = &Sort{Input: b.plan, Keys: keys, Fetch: -1}
	return b
}

// Limit applies OFFSET/LIMIT.
func (b *Builder) Limit(skip, fetch int64) *Builder {
	if !b.need() {
		return b
	}
	b.plan = &Limit{Input: b.plan, Skip: skip, Fetch: fetch}
	return b
}

// Join joins with another plan.
func (b *Builder) Join(right Plan, jt JoinType, on []EquiPair, filter Expr) *Builder {
	if !b.need() {
		return b
	}
	b.plan = NewJoin(b.plan, right, jt, on, filter)
	return b
}

// CrossJoin forms the cartesian product with another plan.
func (b *Builder) CrossJoin(right Plan) *Builder {
	return b.Join(right, CrossJoin, nil, nil)
}

// Union appends another plan's rows.
func (b *Builder) Union(other Plan, all bool) *Builder {
	if !b.need() {
		return b
	}
	if !sameTypes(b.plan.Schema(), other.Schema()) {
		return b.fail(fmt.Errorf("logical: UNION inputs have incompatible schemas %s vs %s",
			b.plan.Schema(), other.Schema()))
	}
	if u, ok := b.plan.(*Union); ok && u.All == all {
		b.plan = &Union{Inputs: append(append([]Plan{}, u.Inputs...), other), All: all}
	} else {
		b.plan = &Union{Inputs: []Plan{b.plan, other}, All: all}
	}
	return b
}

func sameTypes(a, b *Schema) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Fields() {
		if !a.Field(i).Type.Equal(b.Field(i).Type) {
			return false
		}
	}
	return true
}

// Distinct removes duplicate rows.
func (b *Builder) Distinct() *Builder {
	if !b.need() {
		return b
	}
	b.plan = &Distinct{Input: b.plan}
	return b
}

// Window appends window expressions.
func (b *Builder) Window(exprs ...Expr) *Builder {
	if !b.need() {
		return b
	}
	w, err := NewWindow(b.plan, exprs, b.reg)
	if err != nil {
		return b.fail(err)
	}
	b.plan = w
	return b
}

// Alias wraps the plan in a subquery alias.
func (b *Builder) Alias(name string) *Builder {
	if !b.need() {
		return b
	}
	b.plan = NewSubqueryAlias(b.plan, name)
	return b
}

// Extension appends a user-defined logical node whose first input is the
// current plan.
func (b *Builder) Extension(node ExtensionNode) *Builder {
	if b.err != nil {
		return b
	}
	b.plan = &Extension{Node: node}
	return b
}

// Build returns the constructed plan or the first deferred error.
func (b *Builder) Build() (Plan, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.plan == nil {
		return nil, fmt.Errorf("logical: empty builder")
	}
	return b.plan, nil
}

// Plan returns the current plan without error checking (for chaining).
func (b *Builder) Plan() Plan { return b.plan }
