package logical

import (
	"strings"
	"testing"

	"gofusion/internal/arrow"
)

// fakeSource is a minimal TableSource.
type fakeSource struct{ schema *arrow.Schema }

func (f *fakeSource) Schema() *arrow.Schema { return f.schema }

// stubRegistry resolves a few function names for typing tests.
type stubRegistry struct{}

func (stubRegistry) ScalarReturnType(name string, args []*arrow.DataType) (*arrow.DataType, error) {
	return arrow.String, nil
}
func (stubRegistry) AggReturnType(name string, args []*arrow.DataType) (*arrow.DataType, error) {
	if name == "count" {
		return arrow.Int64, nil
	}
	if len(args) > 0 {
		return args[0], nil
	}
	return arrow.Int64, nil
}
func (stubRegistry) WindowReturnType(string, []*arrow.DataType) (*arrow.DataType, error) {
	return arrow.Int64, nil
}

func testScan() *TableScan {
	return NewTableScan("t", &fakeSource{schema: arrow.NewSchema(
		arrow.NewField("a", arrow.Int64, false),
		arrow.NewField("b", arrow.String, true),
		arrow.NewField("c", arrow.Float64, true),
	)})
}

func TestSchemaResolution(t *testing.T) {
	scan := testScan()
	s := scan.Schema()
	if i, err := s.Resolve("", "b"); err != nil || i != 1 {
		t.Fatalf("resolve b: %d %v", i, err)
	}
	if i, err := s.Resolve("t", "a"); err != nil || i != 0 {
		t.Fatalf("resolve t.a: %d %v", i, err)
	}
	if _, err := s.Resolve("", "zz"); err == nil {
		t.Fatal("missing column must error")
	}
	var nf *ErrNotFound
	_, err := s.Resolve("", "zz")
	if !asErr(err, &nf) {
		t.Fatal("want ErrNotFound")
	}
	// Ambiguity across qualifiers.
	merged := s.Merge(FromArrow("u", arrow.NewSchema(arrow.NewField("a", arrow.Int64, false))))
	if _, err := merged.Resolve("", "a"); err == nil {
		t.Fatal("ambiguous column must error")
	}
	if i, err := merged.Resolve("u", "a"); err != nil || i != 3 {
		t.Fatalf("qualified resolves: %d %v", i, err)
	}
}

func asErr[T error](err error, target *T) bool {
	for err != nil {
		if e, ok := err.(T); ok {
			*target = e
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestBuilderChain(t *testing.T) {
	reg := stubRegistry{}
	plan, err := NewBuilder(reg).
		Scan("t", &fakeSource{schema: testScan().Source.Schema()}).
		Filter(Eq(Col("a"), Lit(1))).
		Project(Col("a"), &Alias{E: Col("b"), Name: "bee"}).
		Sort(SortAsc(Col("a"))).
		Limit(0, 10).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	text := Explain(plan)
	for _, want := range []string{"Limit", "Sort", "Projection", "Filter", "TableScan"} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain missing %s:\n%s", want, text)
		}
	}
	if plan.Schema().Len() != 2 || plan.Schema().Field(1).Name != "bee" {
		t.Fatalf("schema: %s", plan.Schema())
	}
}

func TestBuilderErrorsDefer(t *testing.T) {
	reg := stubRegistry{}
	_, err := NewBuilder(reg).Project(Col("x")).Build()
	if err == nil {
		t.Fatal("projection without input must fail at Build")
	}
	_, err = NewBuilder(reg).
		Scan("t", &fakeSource{schema: testScan().Source.Schema()}).
		Project(Col("missing")).
		Build()
	if err == nil {
		t.Fatal("bad column must fail")
	}
}

func TestJoinSchemas(t *testing.T) {
	left := testScan()
	right := NewTableScan("u", &fakeSource{schema: arrow.NewSchema(
		arrow.NewField("k", arrow.Int64, false),
	)})
	inner := NewJoin(left, right, InnerJoin, nil, nil)
	if inner.Schema().Len() != 4 {
		t.Fatal("inner join schema wrong")
	}
	lj := NewJoin(left, right, LeftJoin, nil, nil)
	if !lj.Schema().Field(3).Nullable {
		t.Fatal("left join right side must become nullable")
	}
	semi := NewJoin(left, right, LeftSemiJoin, nil, nil)
	if semi.Schema().Len() != 3 {
		t.Fatal("semi join keeps left only")
	}
	anti := NewJoin(left, right, RightAntiJoin, nil, nil)
	if anti.Schema().Len() != 1 {
		t.Fatal("right anti keeps right only")
	}
}

func TestTransformExprRewrites(t *testing.T) {
	e := Expr(&BinaryExpr{Op: OpAdd, L: Col("a"), R: &BinaryExpr{Op: OpMul, L: Col("b"), R: Lit(2)}})
	out, err := TransformExpr(e, func(x Expr) (Expr, error) {
		if c, ok := x.(*Column); ok && c.Name == "b" {
			return Col("z"), nil
		}
		return x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "a + z * 2" {
		t.Fatalf("rewrite = %s", out)
	}
	// Original untouched.
	if e.String() != "a + b * 2" {
		t.Fatal("transform must not mutate input")
	}
}

func TestCollectAndPredicates(t *testing.T) {
	e := And(Eq(Col("a"), Lit(1)), Eq(Col("b"), Col("t.c")))
	cols := CollectColumns(e)
	if len(cols) != 3 {
		t.Fatalf("collect = %d", len(cols))
	}
	conj := SplitConjunction(e)
	if len(conj) != 2 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if And() != nil {
		t.Fatal("empty And must be nil")
	}
	agg := &AggFunc{Name: "sum", Args: []Expr{Col("a")}}
	if !HasAggregates(agg) || HasAggregates(Col("a")) {
		t.Fatal("HasAggregates wrong")
	}
	w := &WindowFunc{Name: "row_number", Frame: DefaultFrame()}
	if !HasWindow(w) || HasAggregates(w) {
		t.Fatal("window detection wrong")
	}
	sub := &Exists{}
	if !HasSubquery(sub) {
		t.Fatal("HasSubquery wrong")
	}
}

func TestTypeOfExpressions(t *testing.T) {
	reg := stubRegistry{}
	schema := testScan().Schema()
	cases := []struct {
		e    Expr
		want arrow.TypeID
	}{
		{Col("a"), arrow.INT64},
		{Eq(Col("a"), Lit(1)), arrow.BOOL},
		{&BinaryExpr{Op: OpAdd, L: Col("a"), R: Col("c")}, arrow.FLOAT64},
		{&BinaryExpr{Op: OpConcat, L: Col("b"), R: Lit("x")}, arrow.STRING},
		{&Cast{E: Col("a"), To: arrow.Float32}, arrow.FLOAT32},
		{&Case{Whens: []WhenClause{{When: Lit(true), Then: Lit(1)}}, Else: Lit(2.5)}, arrow.FLOAT64},
		{&IsNull{E: Col("b")}, arrow.BOOL},
		{&Negative{E: Col("c")}, arrow.FLOAT64},
	}
	for _, c := range cases {
		got, err := TypeOf(c.e, schema, reg)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if got.ID != c.want {
			t.Fatalf("%s: type %s", c.e, got)
		}
	}
	// Temporal arithmetic.
	dschema := NewSchema(QField{Name: "d", Type: arrow.Date32}, QField{Name: "i", Type: arrow.Interval})
	got, err := TypeOf(&BinaryExpr{Op: OpAdd, L: Col("d"), R: Col("i")}, dschema, reg)
	if err != nil || got.ID != arrow.DATE32 {
		t.Fatalf("date+interval = %v %v", got, err)
	}
	got, err = TypeOf(&BinaryExpr{Op: OpSub, L: Col("d"), R: Col("d")}, dschema, reg)
	if err != nil || got.ID != arrow.INTERVAL {
		t.Fatalf("date-date = %v %v", got, err)
	}
}

func TestPromoteNumeric(t *testing.T) {
	cases := []struct {
		a, b *arrow.DataType
		want arrow.TypeID
	}{
		{arrow.Int32, arrow.Int64, arrow.INT64},
		{arrow.Int64, arrow.Float64, arrow.FLOAT64},
		{arrow.Decimal(12, 2), arrow.Int64, arrow.DECIMAL},
		{arrow.Decimal(12, 2), arrow.Float64, arrow.FLOAT64},
		{arrow.Uint16, arrow.Int8, arrow.INT64},
		{arrow.Date32, arrow.Timestamp, arrow.TIMESTAMP},
	}
	for _, c := range cases {
		got, err := PromoteNumeric(c.a, c.b)
		if err != nil {
			t.Fatalf("%s+%s: %v", c.a, c.b, err)
		}
		if got.ID != c.want {
			t.Fatalf("%s+%s = %s", c.a, c.b, got)
		}
	}
	if _, err := PromoteNumeric(arrow.String, arrow.Int64); err == nil {
		t.Fatal("string/int must not promote")
	}
}

func TestWithChildrenRebuild(t *testing.T) {
	scan := testScan()
	filter := &Filter{Input: scan, Predicate: Eq(Col("a"), Lit(1))}
	newScan := scan.WithProjection([]int{0})
	rebuilt := filter.WithChildren([]Plan{newScan}).(*Filter)
	if rebuilt.Input != newScan {
		t.Fatal("WithChildren must swap input")
	}
	if rebuilt.Schema().Len() != 1 {
		t.Fatal("filter schema must follow input")
	}
	// Window schema tail recomputation (regression for the pruning bug).
	reg := stubRegistry{}
	win, err := NewWindow(scan, []Expr{&WindowFunc{Name: "row_number", Frame: DefaultFrame()}}, reg)
	if err != nil {
		t.Fatal(err)
	}
	rw := win.WithChildren([]Plan{newScan}).(*Window)
	if rw.Schema().Len() != 2 {
		t.Fatalf("window schema after prune = %s", rw.Schema())
	}
}

func TestValuesSchema(t *testing.T) {
	reg := stubRegistry{}
	v, err := NewValues([][]Expr{{Lit(nil), Lit("a")}, {Lit(1), Lit("b")}}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if v.Schema().Field(0).Type.ID != arrow.INT64 {
		t.Fatal("NULL first-row type must widen from later rows")
	}
	if _, err := NewValues(nil, reg); err == nil {
		t.Fatal("empty VALUES must error")
	}
}

func TestOutputName(t *testing.T) {
	if OutputName(&Alias{E: Col("x"), Name: "y"}) != "y" {
		t.Fatal("alias name")
	}
	if OutputName(Col("t.x")) != "x" {
		t.Fatal("column name")
	}
	agg := &AggFunc{Name: "count"}
	if OutputName(agg) != "count(*)" {
		t.Fatalf("agg name = %s", OutputName(agg))
	}
}
