package logical

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
)

// Expr is a logical expression tree node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// BinOp identifies a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNeq
	OpLt
	OpLtEq
	OpGt
	OpGtEq
	OpAnd
	OpOr
	OpConcat
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "=", "!=", "<", "<=", ">", ">=", "AND", "OR", "||"}

func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator yields a boolean comparison.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGtEq }

// IsArithmetic reports whether the operator is numeric arithmetic.
func (op BinOp) IsArithmetic() bool { return op <= OpMod }

// IsLogical reports whether the operator is AND/OR.
func (op BinOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// Column references a column, optionally qualified by a relation name.
type Column struct {
	Relation string
	Name     string
}

func (c *Column) exprNode() {}
func (c *Column) String() string {
	if c.Relation == "" {
		return c.Name
	}
	return c.Relation + "." + c.Name
}

// Col builds an unqualified column reference.
func Col(name string) *Column {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return &Column{Relation: name[:i], Name: name[i+1:]}
	}
	return &Column{Name: name}
}

// Literal is a constant scalar value.
type Literal struct{ Value arrow.Scalar }

func (l *Literal) exprNode()      {}
func (l *Literal) String() string { return l.Value.String() }

// Lit builds a literal from a Go value.
func Lit(v any) *Literal {
	switch x := v.(type) {
	case int:
		return &Literal{Value: arrow.Int64Scalar(int64(x))}
	case int64:
		return &Literal{Value: arrow.Int64Scalar(x)}
	case float64:
		return &Literal{Value: arrow.Float64Scalar(x)}
	case string:
		return &Literal{Value: arrow.StringScalar(x)}
	case bool:
		return &Literal{Value: arrow.BoolScalar(x)}
	case arrow.Scalar:
		return &Literal{Value: x}
	case nil:
		return &Literal{Value: arrow.NullScalar(arrow.Null)}
	}
	panic(fmt.Sprintf("logical: cannot build literal from %T", v))
}

// BinaryExpr applies a binary operator to two operands.
type BinaryExpr struct {
	Op BinOp
	L  Expr
	R  Expr
}

func (b *BinaryExpr) exprNode() {}
func (b *BinaryExpr) String() string {
	return fmt.Sprintf("%s %s %s", b.L, b.Op, b.R)
}

// Not negates a boolean expression.
type Not struct{ E Expr }

func (n *Not) exprNode()      {}
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// IsNull tests for SQL NULL.
type IsNull struct {
	E       Expr
	Negated bool
}

func (e *IsNull) exprNode() {}
func (e *IsNull) String() string {
	if e.Negated {
		return fmt.Sprintf("%s IS NOT NULL", e.E)
	}
	return fmt.Sprintf("%s IS NULL", e.E)
}

// Negative is unary minus.
type Negative struct{ E Expr }

func (n *Negative) exprNode()      {}
func (n *Negative) String() string { return fmt.Sprintf("(- %s)", n.E) }

// Like is SQL LIKE/NOT LIKE (optionally case-insensitive ILIKE).
type Like struct {
	E               Expr
	Pattern         Expr
	Negated         bool
	CaseInsensitive bool
}

func (l *Like) exprNode() {}
func (l *Like) String() string {
	op := "LIKE"
	if l.CaseInsensitive {
		op = "ILIKE"
	}
	if l.Negated {
		op = "NOT " + op
	}
	return fmt.Sprintf("%s %s %s", l.E, op, l.Pattern)
}

// InList is `expr IN (a, b, ...)`.
type InList struct {
	E       Expr
	List    []Expr
	Negated bool
}

func (e *InList) exprNode() {}
func (e *InList) String() string {
	items := make([]string, len(e.List))
	for i, x := range e.List {
		items[i] = x.String()
	}
	op := "IN"
	if e.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%s)", e.E, op, strings.Join(items, ", "))
}

// Between is `expr [NOT] BETWEEN low AND high`.
type Between struct {
	E       Expr
	Low     Expr
	High    Expr
	Negated bool
}

func (e *Between) exprNode() {}
func (e *Between) String() string {
	op := "BETWEEN"
	if e.Negated {
		op = "NOT BETWEEN"
	}
	return fmt.Sprintf("%s %s %s AND %s", e.E, op, e.Low, e.High)
}

// WhenClause is one WHEN/THEN arm of a CASE expression.
type WhenClause struct {
	When Expr
	Then Expr
}

// Case is a SQL CASE expression, with or without an operand.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr // may be nil
}

func (c *Case) exprNode() {}
func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		fmt.Fprintf(&sb, " %s", c.Operand)
	}
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.When, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// Cast converts an expression to a target type.
type Cast struct {
	E  Expr
	To *arrow.DataType
}

func (c *Cast) exprNode()      {}
func (c *Cast) String() string { return fmt.Sprintf("CAST(%s AS %s)", c.E, c.To) }

// ScalarFunc invokes a scalar function (built-in or user-defined).
type ScalarFunc struct {
	Name string
	Args []Expr
}

func (f *ScalarFunc) exprNode() {}
func (f *ScalarFunc) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", f.Name, strings.Join(args, ", "))
}

// AggFunc invokes an aggregate function.
type AggFunc struct {
	Name     string
	Args     []Expr
	Distinct bool
	Filter   Expr // per-aggregate FILTER (WHERE ...), may be nil
}

func (f *AggFunc) exprNode() {}
func (f *AggFunc) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	inner := strings.Join(args, ", ")
	if len(args) == 0 {
		inner = "*"
	}
	if f.Distinct {
		inner = "DISTINCT " + inner
	}
	s := fmt.Sprintf("%s(%s)", f.Name, inner)
	if f.Filter != nil {
		s += fmt.Sprintf(" FILTER (WHERE %s)", f.Filter)
	}
	return s
}

// FrameBound describes a window frame endpoint.
type FrameBound struct {
	// Kind: 0 = UNBOUNDED PRECEDING, 1 = offset PRECEDING, 2 = CURRENT ROW,
	// 3 = offset FOLLOWING, 4 = UNBOUNDED FOLLOWING.
	Kind   int
	Offset int64
}

// Frame bound kinds.
const (
	UnboundedPreceding = 0
	OffsetPreceding    = 1
	CurrentRow         = 2
	OffsetFollowing    = 3
	UnboundedFollowing = 4
)

// WindowFrame is a ROWS or RANGE frame specification.
type WindowFrame struct {
	Rows  bool // true = ROWS, false = RANGE
	Start FrameBound
	End   FrameBound
}

// DefaultFrame is RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW.
func DefaultFrame() WindowFrame {
	return WindowFrame{Start: FrameBound{Kind: UnboundedPreceding}, End: FrameBound{Kind: CurrentRow}}
}

// WindowFunc invokes a window function over a partition/order/frame spec.
type WindowFunc struct {
	Name        string
	Args        []Expr
	PartitionBy []Expr
	OrderBy     []SortExpr
	Frame       WindowFrame
}

func (f *WindowFunc) exprNode() {}
func (f *WindowFunc) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s(%s) OVER (", f.Name, strings.Join(args, ", "))
	if len(f.PartitionBy) > 0 {
		parts := make([]string, len(f.PartitionBy))
		for i, p := range f.PartitionBy {
			parts[i] = p.String()
		}
		fmt.Fprintf(&sb, "PARTITION BY %s", strings.Join(parts, ", "))
	}
	if len(f.OrderBy) > 0 {
		if len(f.PartitionBy) > 0 {
			sb.WriteByte(' ')
		}
		parts := make([]string, len(f.OrderBy))
		for i, o := range f.OrderBy {
			parts[i] = o.String()
		}
		fmt.Fprintf(&sb, "ORDER BY %s", strings.Join(parts, ", "))
	}
	sb.WriteByte(')')
	return sb.String()
}

// Alias renames an expression's output column.
type Alias struct {
	E    Expr
	Name string
}

func (a *Alias) exprNode()      {}
func (a *Alias) String() string { return fmt.Sprintf("%s AS %s", a.E, a.Name) }

// SortExpr is an ORDER BY key (not itself an Expr node).
type SortExpr struct {
	E          Expr
	Asc        bool
	NullsFirst bool
}

func (s SortExpr) String() string {
	dir := "ASC"
	if !s.Asc {
		dir = "DESC"
	}
	nulls := ""
	if s.NullsFirst != !s.Asc {
		if s.NullsFirst {
			nulls = " NULLS FIRST"
		} else {
			nulls = " NULLS LAST"
		}
	}
	return fmt.Sprintf("%s %s%s", s.E, dir, nulls)
}

// SortAsc returns an ascending, nulls-last sort key (the SQL default).
func SortAsc(e Expr) SortExpr { return SortExpr{E: e, Asc: true, NullsFirst: false} }

// SortDesc returns a descending, nulls-first sort key (the SQL default).
func SortDesc(e Expr) SortExpr { return SortExpr{E: e, Asc: false, NullsFirst: true} }

// Wildcard is the parse-time `*`; it never survives planning.
type Wildcard struct{ Qualifier string }

func (w *Wildcard) exprNode() {}
func (w *Wildcard) String() string {
	if w.Qualifier != "" {
		return w.Qualifier + ".*"
	}
	return "*"
}

// ScalarSubquery is a subquery producing a single value; the optimizer
// decorrelates it before physical planning. Raw carries the parsed query
// until the SQL planner fills Plan.
type ScalarSubquery struct {
	Plan Plan
	Raw  any
}

func (s *ScalarSubquery) exprNode()      {}
func (s *ScalarSubquery) String() string { return "(<scalar subquery>)" }

// Exists is `[NOT] EXISTS (subquery)`.
type Exists struct {
	Plan    Plan
	Raw     any
	Negated bool
}

func (e *Exists) exprNode() {}
func (e *Exists) String() string {
	if e.Negated {
		return "NOT EXISTS (<subquery>)"
	}
	return "EXISTS (<subquery>)"
}

// InSubquery is `expr [NOT] IN (subquery)`.
type InSubquery struct {
	E       Expr
	Plan    Plan
	Raw     any
	Negated bool
}

func (e *InSubquery) exprNode() {}
func (e *InSubquery) String() string {
	if e.Negated {
		return fmt.Sprintf("%s NOT IN (<subquery>)", e.E)
	}
	return fmt.Sprintf("%s IN (<subquery>)", e.E)
}

// OutputName returns the column name an expression produces.
func OutputName(e Expr) string {
	switch x := e.(type) {
	case *Alias:
		return x.Name
	case *Column:
		return x.Name
	case *Cast:
		return OutputName(x.E)
	default:
		return e.String()
	}
}

// helpers for composing expressions

// And conjoins expressions, dropping nils.
func And(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: OpAnd, L: out, R: e}
		}
	}
	return out
}

// Eq builds l = r.
func Eq(l, r Expr) Expr { return &BinaryExpr{Op: OpEq, L: l, R: r} }

// SplitConjunction flattens nested ANDs into a list of conjuncts.
func SplitConjunction(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(SplitConjunction(b.L), SplitConjunction(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}

// OverClause is the parse-time OVER (...) specification carried by an
// UnresolvedFunc until the SQL planner resolves it into a WindowFunc.
type OverClause struct {
	PartitionBy []Expr
	OrderBy     []SortExpr
	Frame       *WindowFrame // nil = default frame
}

// UnresolvedFunc is a parse-time function call; the SQL planner resolves
// it into a ScalarFunc, AggFunc, or WindowFunc using the function
// registry.
type UnresolvedFunc struct {
	Name     string
	Args     []Expr
	Distinct bool
	Filter   Expr
	Over     *OverClause
	Star     bool // count(*)
}

func (f *UnresolvedFunc) exprNode() {}
func (f *UnresolvedFunc) String() string {
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	inner := strings.Join(args, ", ")
	if f.Star {
		inner = "*"
	}
	if f.Distinct {
		inner = "DISTINCT " + inner
	}
	return fmt.Sprintf("%s(%s)", f.Name, inner)
}
