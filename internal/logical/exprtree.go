package logical

import "fmt"

// ExprChildren returns an expression's direct child expressions in a
// stable order matching ExprWithChildren.
func ExprChildren(e Expr) []Expr {
	switch x := e.(type) {
	case *Column, *Literal, *Wildcard, *ScalarSubquery, *Exists:
		return nil
	case *BinaryExpr:
		return []Expr{x.L, x.R}
	case *Not:
		return []Expr{x.E}
	case *IsNull:
		return []Expr{x.E}
	case *Negative:
		return []Expr{x.E}
	case *Like:
		return []Expr{x.E, x.Pattern}
	case *InList:
		return append([]Expr{x.E}, x.List...)
	case *Between:
		return []Expr{x.E, x.Low, x.High}
	case *Case:
		var out []Expr
		if x.Operand != nil {
			out = append(out, x.Operand)
		}
		for _, w := range x.Whens {
			out = append(out, w.When, w.Then)
		}
		if x.Else != nil {
			out = append(out, x.Else)
		}
		return out
	case *Cast:
		return []Expr{x.E}
	case *ScalarFunc:
		return x.Args
	case *AggFunc:
		out := append([]Expr(nil), x.Args...)
		if x.Filter != nil {
			out = append(out, x.Filter)
		}
		return out
	case *WindowFunc:
		out := append([]Expr(nil), x.Args...)
		out = append(out, x.PartitionBy...)
		for _, o := range x.OrderBy {
			out = append(out, o.E)
		}
		return out
	case *Alias:
		return []Expr{x.E}
	case *InSubquery:
		return []Expr{x.E}
	case *UnresolvedFunc:
		return unresolvedFuncChildren(x)
	}
	panic(fmt.Sprintf("logical: unknown expr %T", e))
}

// ExprWithChildren rebuilds an expression with new children, in the order
// returned by ExprChildren.
func ExprWithChildren(e Expr, ch []Expr) Expr {
	switch x := e.(type) {
	case *Column, *Literal, *Wildcard, *ScalarSubquery, *Exists:
		return e
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: ch[0], R: ch[1]}
	case *Not:
		return &Not{E: ch[0]}
	case *IsNull:
		return &IsNull{E: ch[0], Negated: x.Negated}
	case *Negative:
		return &Negative{E: ch[0]}
	case *Like:
		return &Like{E: ch[0], Pattern: ch[1], Negated: x.Negated, CaseInsensitive: x.CaseInsensitive}
	case *InList:
		return &InList{E: ch[0], List: ch[1:], Negated: x.Negated}
	case *Between:
		return &Between{E: ch[0], Low: ch[1], High: ch[2], Negated: x.Negated}
	case *Case:
		out := &Case{}
		i := 0
		if x.Operand != nil {
			out.Operand = ch[i]
			i++
		}
		for range x.Whens {
			out.Whens = append(out.Whens, WhenClause{When: ch[i], Then: ch[i+1]})
			i += 2
		}
		if x.Else != nil {
			out.Else = ch[i]
		}
		return out
	case *Cast:
		return &Cast{E: ch[0], To: x.To}
	case *ScalarFunc:
		return &ScalarFunc{Name: x.Name, Args: ch}
	case *AggFunc:
		out := &AggFunc{Name: x.Name, Distinct: x.Distinct}
		if x.Filter != nil {
			out.Args = ch[:len(ch)-1]
			out.Filter = ch[len(ch)-1]
		} else {
			out.Args = ch
		}
		return out
	case *WindowFunc:
		out := &WindowFunc{Name: x.Name, Frame: x.Frame}
		i := 0
		out.Args = ch[i : i+len(x.Args)]
		i += len(x.Args)
		out.PartitionBy = ch[i : i+len(x.PartitionBy)]
		i += len(x.PartitionBy)
		for _, o := range x.OrderBy {
			out.OrderBy = append(out.OrderBy, SortExpr{E: ch[i], Asc: o.Asc, NullsFirst: o.NullsFirst})
			i++
		}
		return out
	case *Alias:
		return &Alias{E: ch[0], Name: x.Name}
	case *InSubquery:
		return &InSubquery{E: ch[0], Plan: x.Plan, Raw: x.Raw, Negated: x.Negated}
	case *UnresolvedFunc:
		return unresolvedFuncWithChildren(x, ch)
	}
	panic(fmt.Sprintf("logical: unknown expr %T", e))
}

// TransformExpr rewrites an expression bottom-up: children first, then the
// rewritten node is passed to f.
func TransformExpr(e Expr, f func(Expr) (Expr, error)) (Expr, error) {
	if e == nil {
		return nil, nil
	}
	children := ExprChildren(e)
	if len(children) > 0 {
		newChildren := make([]Expr, len(children))
		changed := false
		for i, c := range children {
			nc, err := TransformExpr(c, f)
			if err != nil {
				return nil, err
			}
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			e = ExprWithChildren(e, newChildren)
		}
	}
	return f(e)
}

// VisitExpr walks an expression pre-order; return false from f to skip a
// subtree.
func VisitExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	for _, c := range ExprChildren(e) {
		VisitExpr(c, f)
	}
}

// CollectColumns returns all column references in an expression.
func CollectColumns(e Expr) []*Column {
	var out []*Column
	VisitExpr(e, func(x Expr) bool {
		if c, ok := x.(*Column); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// HasAggregates reports whether the expression contains an aggregate call
// (not descending into window functions).
func HasAggregates(e Expr) bool {
	found := false
	VisitExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *AggFunc:
			found = true
			return false
		case *WindowFunc:
			return false
		}
		return true
	})
	return found
}

// HasWindow reports whether the expression contains a window function.
func HasWindow(e Expr) bool {
	found := false
	VisitExpr(e, func(x Expr) bool {
		if _, ok := x.(*WindowFunc); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// HasSubquery reports whether the expression contains any subquery node.
func HasSubquery(e Expr) bool {
	found := false
	VisitExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ScalarSubquery, *Exists, *InSubquery:
			found = true
			return false
		}
		return true
	})
	return found
}

// ExprEqual reports structural equality of two expressions by rendered
// form; adequate for CSE and duplicate detection.
func ExprEqual(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.String() == b.String()
}

// unresolvedFuncChildren supports tree traversal of parse-time nodes.
func unresolvedFuncChildren(x *UnresolvedFunc) []Expr {
	out := append([]Expr(nil), x.Args...)
	if x.Filter != nil {
		out = append(out, x.Filter)
	}
	if x.Over != nil {
		out = append(out, x.Over.PartitionBy...)
		for _, o := range x.Over.OrderBy {
			out = append(out, o.E)
		}
	}
	return out
}

func unresolvedFuncWithChildren(x *UnresolvedFunc, ch []Expr) Expr {
	out := &UnresolvedFunc{Name: x.Name, Distinct: x.Distinct, Star: x.Star}
	i := len(x.Args)
	out.Args = ch[:i]
	if x.Filter != nil {
		out.Filter = ch[i]
		i++
	}
	if x.Over != nil {
		over := &OverClause{Frame: x.Over.Frame}
		over.PartitionBy = ch[i : i+len(x.Over.PartitionBy)]
		i += len(x.Over.PartitionBy)
		for _, o := range x.Over.OrderBy {
			over.OrderBy = append(over.OrderBy, SortExpr{E: ch[i], Asc: o.Asc, NullsFirst: o.NullsFirst})
			i++
		}
		out.Over = over
	}
	return out
}
