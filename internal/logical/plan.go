package logical

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
)

// TableSource is the minimal view of a table the logical layer needs; the
// catalog's TableProvider satisfies it, and the physical planner downcasts
// to obtain scan capabilities.
type TableSource interface {
	Schema() *arrow.Schema
}

// Plan is a logical relational operator tree node.
type Plan interface {
	// Schema returns the node's output schema.
	Schema() *Schema
	// Children returns input plans.
	Children() []Plan
	// WithChildren rebuilds the node with new inputs.
	WithChildren(children []Plan) Plan
	// String renders a one-line description for EXPLAIN output.
	String() string
}

// TableScan reads a table, with pushed-down projection, filters and limit.
type TableScan struct {
	Name   string
	Source TableSource
	// Projection holds source-schema column indexes, or nil for all.
	Projection []int
	// Filters are conjuncts pushed into the scan (source may apply them
	// partially; the optimizer keeps a Filter above unless exact).
	Filters []Expr
	// Fetch is a pushed-down limit, or -1.
	Fetch  int64
	schema *Schema
}

// NewTableScan creates a scan of the full table.
func NewTableScan(name string, source TableSource) *TableScan {
	return &TableScan{Name: name, Source: source, Fetch: -1,
		schema: FromArrow(name, source.Schema())}
}

// WithProjection returns a copy scanning only the given column indexes.
func (t *TableScan) WithProjection(indices []int) *TableScan {
	out := *t
	out.Projection = indices
	full := t.Source.Schema()
	fields := make([]QField, len(indices))
	for i, idx := range indices {
		f := full.Field(idx)
		fields[i] = QField{Qualifier: t.Name, Name: f.Name, Type: f.Type, Nullable: f.Nullable}
	}
	out.schema = NewSchema(fields...)
	return &out
}

func (t *TableScan) Schema() *Schema            { return t.schema }
func (t *TableScan) Children() []Plan           { return nil }
func (t *TableScan) WithChildren(_ []Plan) Plan { return t }
func (t *TableScan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "TableScan: %s", t.Name)
	if t.Projection != nil {
		fmt.Fprintf(&sb, " projection=%v", t.Projection)
	}
	if len(t.Filters) > 0 {
		parts := make([]string, len(t.Filters))
		for i, f := range t.Filters {
			parts[i] = f.String()
		}
		fmt.Fprintf(&sb, " filters=[%s]", strings.Join(parts, ", "))
	}
	if t.Fetch >= 0 {
		fmt.Fprintf(&sb, " fetch=%d", t.Fetch)
	}
	return sb.String()
}

// Projection computes output expressions over its input.
type Projection struct {
	Input  Plan
	Exprs  []Expr
	schema *Schema
}

// NewProjection derives the projection's schema from its expressions.
func NewProjection(input Plan, exprs []Expr, reg Registry) (*Projection, error) {
	fields := make([]QField, len(exprs))
	for i, e := range exprs {
		f, err := FieldOf(e, input.Schema(), reg)
		if err != nil {
			return nil, err
		}
		fields[i] = f
	}
	return &Projection{Input: input, Exprs: exprs, schema: NewSchema(fields...)}, nil
}

func (p *Projection) Schema() *Schema  { return p.schema }
func (p *Projection) Children() []Plan { return []Plan{p.Input} }
func (p *Projection) WithChildren(ch []Plan) Plan {
	out := *p
	out.Input = ch[0]
	return &out
}
func (p *Projection) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Projection: " + strings.Join(parts, ", ")
}

// Filter keeps rows satisfying a boolean predicate.
type Filter struct {
	Input     Plan
	Predicate Expr
}

func (f *Filter) Schema() *Schema  { return f.Input.Schema() }
func (f *Filter) Children() []Plan { return []Plan{f.Input} }
func (f *Filter) WithChildren(ch []Plan) Plan {
	out := *f
	out.Input = ch[0]
	return &out
}
func (f *Filter) String() string { return "Filter: " + f.Predicate.String() }

// Aggregate groups rows and computes aggregate expressions.
type Aggregate struct {
	Input      Plan
	GroupExprs []Expr
	AggExprs   []Expr // each contains exactly one AggFunc at its root or under an alias
	schema     *Schema
}

// NewAggregate derives the aggregate's schema: group fields then aggregate
// fields.
func NewAggregate(input Plan, groups, aggs []Expr, reg Registry) (*Aggregate, error) {
	fields := make([]QField, 0, len(groups)+len(aggs))
	for _, g := range groups {
		f, err := FieldOf(g, input.Schema(), reg)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	for _, a := range aggs {
		f, err := FieldOf(a, input.Schema(), reg)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return &Aggregate{Input: input, GroupExprs: groups, AggExprs: aggs, schema: NewSchema(fields...)}, nil
}

func (a *Aggregate) Schema() *Schema  { return a.schema }
func (a *Aggregate) Children() []Plan { return []Plan{a.Input} }
func (a *Aggregate) WithChildren(ch []Plan) Plan {
	out := *a
	out.Input = ch[0]
	return &out
}
func (a *Aggregate) String() string {
	gs := make([]string, len(a.GroupExprs))
	for i, g := range a.GroupExprs {
		gs[i] = g.String()
	}
	as := make([]string, len(a.AggExprs))
	for i, x := range a.AggExprs {
		as[i] = x.String()
	}
	return fmt.Sprintf("Aggregate: groupBy=[%s], aggr=[%s]", strings.Join(gs, ", "), strings.Join(as, ", "))
}

// Sort orders rows by sort keys; Fetch >= 0 turns it into a Top-K sort.
type Sort struct {
	Input Plan
	Keys  []SortExpr
	Fetch int64 // -1 = no limit
}

func (s *Sort) Schema() *Schema  { return s.Input.Schema() }
func (s *Sort) Children() []Plan { return []Plan{s.Input} }
func (s *Sort) WithChildren(ch []Plan) Plan {
	out := *s
	out.Input = ch[0]
	return &out
}
func (s *Sort) String() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		parts[i] = k.String()
	}
	msg := "Sort: " + strings.Join(parts, ", ")
	if s.Fetch >= 0 {
		msg += fmt.Sprintf(" fetch=%d", s.Fetch)
	}
	return msg
}

// Limit skips and fetches rows.
type Limit struct {
	Input Plan
	Skip  int64
	Fetch int64 // -1 = unlimited
}

func (l *Limit) Schema() *Schema  { return l.Input.Schema() }
func (l *Limit) Children() []Plan { return []Plan{l.Input} }
func (l *Limit) WithChildren(ch []Plan) Plan {
	out := *l
	out.Input = ch[0]
	return &out
}
func (l *Limit) String() string {
	return fmt.Sprintf("Limit: skip=%d, fetch=%d", l.Skip, l.Fetch)
}

// JoinType enumerates the supported join semantics.
type JoinType int

// Join types.
const (
	InnerJoin JoinType = iota
	LeftJoin
	RightJoin
	FullJoin
	LeftSemiJoin
	RightSemiJoin
	LeftAntiJoin
	RightAntiJoin
	CrossJoin
)

var joinNames = [...]string{"Inner", "Left", "Right", "Full", "LeftSemi", "RightSemi", "LeftAnti", "RightAnti", "Cross"}

func (t JoinType) String() string { return joinNames[t] }

// EquiPair is one equality join predicate left = right.
type EquiPair struct {
	L Expr // references the left input
	R Expr // references the right input
}

// Join combines two inputs on equality predicates plus an optional
// residual filter.
type Join struct {
	Left   Plan
	Right  Plan
	Type   JoinType
	On     []EquiPair
	Filter Expr // residual non-equi condition, may be nil
	schema *Schema
}

// NewJoin derives the join's output schema from its type.
func NewJoin(left, right Plan, jt JoinType, on []EquiPair, filter Expr) *Join {
	j := &Join{Left: left, Right: right, Type: jt, On: on, Filter: filter}
	j.schema = joinSchema(left.Schema(), right.Schema(), jt)
	return j
}

func joinSchema(l, r *Schema, jt JoinType) *Schema {
	nullableSide := func(s *Schema) []QField {
		fields := make([]QField, s.Len())
		for i, f := range s.Fields() {
			f.Nullable = true
			fields[i] = f
		}
		return fields
	}
	switch jt {
	case LeftSemiJoin, LeftAntiJoin:
		return l
	case RightSemiJoin, RightAntiJoin:
		return r
	case LeftJoin:
		return NewSchema(append(append([]QField{}, l.Fields()...), nullableSide(r)...)...)
	case RightJoin:
		return NewSchema(append(nullableSide(l), r.Fields()...)...)
	case FullJoin:
		return NewSchema(append(nullableSide(l), nullableSide(r)...)...)
	default:
		return l.Merge(r)
	}
}

func (j *Join) Schema() *Schema  { return j.schema }
func (j *Join) Children() []Plan { return []Plan{j.Left, j.Right} }
func (j *Join) WithChildren(ch []Plan) Plan {
	return NewJoin(ch[0], ch[1], j.Type, j.On, j.Filter)
}
func (j *Join) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s Join:", j.Type)
	if len(j.On) > 0 {
		parts := make([]string, len(j.On))
		for i, p := range j.On {
			parts[i] = fmt.Sprintf("%s = %s", p.L, p.R)
		}
		fmt.Fprintf(&sb, " on=[%s]", strings.Join(parts, ", "))
	}
	if j.Filter != nil {
		fmt.Fprintf(&sb, " filter=%s", j.Filter)
	}
	return sb.String()
}

// SubqueryAlias renames a subquery's output relation.
type SubqueryAlias struct {
	Input  Plan
	Alias  string
	schema *Schema
}

// NewSubqueryAlias requalifies the input's fields with the alias.
func NewSubqueryAlias(input Plan, alias string) *SubqueryAlias {
	fields := make([]QField, input.Schema().Len())
	for i, f := range input.Schema().Fields() {
		f.Qualifier = alias
		fields[i] = f
	}
	return &SubqueryAlias{Input: input, Alias: alias, schema: NewSchema(fields...)}
}

func (s *SubqueryAlias) Schema() *Schema  { return s.schema }
func (s *SubqueryAlias) Children() []Plan { return []Plan{s.Input} }
func (s *SubqueryAlias) WithChildren(ch []Plan) Plan {
	return NewSubqueryAlias(ch[0], s.Alias)
}
func (s *SubqueryAlias) String() string { return "SubqueryAlias: " + s.Alias }

// Union concatenates inputs with identical schemas; All=false deduplicates.
type Union struct {
	Inputs []Plan
	All    bool
}

func (u *Union) Schema() *Schema  { return u.Inputs[0].Schema() }
func (u *Union) Children() []Plan { return u.Inputs }
func (u *Union) WithChildren(ch []Plan) Plan {
	return &Union{Inputs: ch, All: u.All}
}
func (u *Union) String() string {
	if u.All {
		return "Union All"
	}
	return "Union Distinct"
}

// Distinct removes duplicate rows.
type Distinct struct{ Input Plan }

func (d *Distinct) Schema() *Schema  { return d.Input.Schema() }
func (d *Distinct) Children() []Plan { return []Plan{d.Input} }
func (d *Distinct) WithChildren(ch []Plan) Plan {
	return &Distinct{Input: ch[0]}
}
func (d *Distinct) String() string { return "Distinct" }

// Window computes window expressions, appending them to the input schema.
type Window struct {
	Input       Plan
	WindowExprs []Expr
	schema      *Schema
}

// NewWindow derives the window's schema: input fields plus one field per
// window expression.
func NewWindow(input Plan, exprs []Expr, reg Registry) (*Window, error) {
	fields := append([]QField{}, input.Schema().Fields()...)
	for _, e := range exprs {
		f, err := FieldOf(e, input.Schema(), reg)
		if err != nil {
			return nil, err
		}
		fields = append(fields, f)
	}
	return &Window{Input: input, WindowExprs: exprs, schema: NewSchema(fields...)}, nil
}

func (w *Window) Schema() *Schema  { return w.schema }
func (w *Window) Children() []Plan { return []Plan{w.Input} }
func (w *Window) WithChildren(ch []Plan) Plan {
	out := *w
	out.Input = ch[0]
	// The schema prefix mirrors the input; recompute it (the window-column
	// tail keeps its derived types) so rewrites below (e.g. scan pruning)
	// stay positionally consistent.
	tail := w.schema.Fields()[w.schema.Len()-len(w.WindowExprs):]
	fields := append(append([]QField{}, ch[0].Schema().Fields()...), tail...)
	out.schema = NewSchema(fields...)
	return &out
}
func (w *Window) String() string {
	parts := make([]string, len(w.WindowExprs))
	for i, e := range w.WindowExprs {
		parts[i] = e.String()
	}
	return "Window: " + strings.Join(parts, ", ")
}

// Values is an inline constant relation (VALUES (...), (...)).
type Values struct {
	Rows   [][]Expr
	schema *Schema
}

// NewValues derives the schema from the first row's literal types.
func NewValues(rows [][]Expr, reg Registry) (*Values, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("logical: VALUES requires at least one row and column")
	}
	empty := NewSchema()
	fields := make([]QField, len(rows[0]))
	for c := range rows[0] {
		t, err := TypeOf(rows[0][c], empty, reg)
		if err != nil {
			return nil, err
		}
		// Widen with subsequent rows (e.g. first row NULL).
		for r := 1; r < len(rows) && (t.ID == arrow.NULL); r++ {
			t2, err := TypeOf(rows[r][c], empty, reg)
			if err != nil {
				return nil, err
			}
			t = t2
		}
		fields[c] = QField{Name: fmt.Sprintf("column%d", c+1), Type: t, Nullable: true}
	}
	return &Values{Rows: rows, schema: NewSchema(fields...)}, nil
}

func (v *Values) Schema() *Schema            { return v.schema }
func (v *Values) Children() []Plan           { return nil }
func (v *Values) WithChildren(_ []Plan) Plan { return v }
func (v *Values) String() string             { return fmt.Sprintf("Values: %d rows", len(v.Rows)) }

// EmptyRelation produces zero rows (or one all-default row for SELECT
// without FROM).
type EmptyRelation struct {
	ProduceOneRow bool
	SchemaVal     *Schema
}

func (e *EmptyRelation) Schema() *Schema            { return e.SchemaVal }
func (e *EmptyRelation) Children() []Plan           { return nil }
func (e *EmptyRelation) WithChildren(_ []Plan) Plan { return e }
func (e *EmptyRelation) String() string             { return "EmptyRelation" }

// ExtensionNode is the user-defined logical operator contract (paper
// Section 7.7): systems embed custom relational operators that the
// optimizer passes through.
type ExtensionNode interface {
	Name() string
	Schema() *Schema
	Inputs() []Plan
	WithInputs(inputs []Plan) ExtensionNode
}

// Extension wraps a user-defined logical node into the Plan tree.
type Extension struct{ Node ExtensionNode }

func (e *Extension) Schema() *Schema  { return e.Node.Schema() }
func (e *Extension) Children() []Plan { return e.Node.Inputs() }
func (e *Extension) WithChildren(ch []Plan) Plan {
	return &Extension{Node: e.Node.WithInputs(ch)}
}
func (e *Extension) String() string { return "Extension: " + e.Node.Name() }

// TransformPlan rewrites a plan bottom-up.
func TransformPlan(p Plan, f func(Plan) (Plan, error)) (Plan, error) {
	children := p.Children()
	if len(children) > 0 {
		newChildren := make([]Plan, len(children))
		changed := false
		for i, c := range children {
			nc, err := TransformPlan(c, f)
			if err != nil {
				return nil, err
			}
			newChildren[i] = nc
			if nc != c {
				changed = true
			}
		}
		if changed {
			p = p.WithChildren(newChildren)
		}
	}
	return f(p)
}

// VisitPlan walks the plan pre-order; return false to skip a subtree.
func VisitPlan(p Plan, f func(Plan) bool) {
	if !f(p) {
		return
	}
	for _, c := range p.Children() {
		VisitPlan(c, f)
	}
}

// Explain renders an indented plan tree.
func Explain(p Plan) string {
	var sb strings.Builder
	var walk func(Plan, int)
	walk = func(n Plan, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return sb.String()
}
