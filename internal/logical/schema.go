// Package logical defines the engine's logical query representation:
// expression trees (Expr), relational operator trees (Plan), qualified
// schemas, a builder API, and a generic tree-rewrite framework. The SQL
// front end produces these structures, the optimizer rewrites them, and
// the physical planner lowers them to execution plans (paper Section 5.4).
package logical

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
)

// QField is a schema field with an optional relation qualifier, so the
// planner can resolve both `col` and `table.col` references.
type QField struct {
	Qualifier string
	Name      string
	Type      *arrow.DataType
	Nullable  bool
}

// QualifiedName renders the field as qualifier.name (or just name).
func (f QField) QualifiedName() string {
	if f.Qualifier == "" {
		return f.Name
	}
	return f.Qualifier + "." + f.Name
}

// Schema is an ordered list of qualified fields describing a plan's output.
type Schema struct {
	fields []QField
}

// NewSchema builds a schema from fields.
func NewSchema(fields ...QField) *Schema { return &Schema{fields: fields} }

// FromArrow lifts an arrow schema into a logical schema with one qualifier.
func FromArrow(qualifier string, s *arrow.Schema) *Schema {
	fields := make([]QField, s.NumFields())
	for i, f := range s.Fields() {
		fields[i] = QField{Qualifier: qualifier, Name: f.Name, Type: f.Type, Nullable: f.Nullable}
	}
	return NewSchema(fields...)
}

// ToArrow lowers the schema to an arrow schema using unqualified names.
func (s *Schema) ToArrow() *arrow.Schema {
	fields := make([]arrow.Field, len(s.fields))
	for i, f := range s.fields {
		fields[i] = arrow.NewField(f.Name, f.Type, f.Nullable)
	}
	return arrow.NewSchema(fields...)
}

// Fields returns the field list; callers must not mutate it.
func (s *Schema) Fields() []QField { return s.fields }

// Len returns the number of fields.
func (s *Schema) Len() int { return len(s.fields) }

// Field returns field i.
func (s *Schema) Field(i int) QField { return s.fields[i] }

// Merge concatenates two schemas (as join output does).
func (s *Schema) Merge(o *Schema) *Schema {
	fields := make([]QField, 0, len(s.fields)+len(o.fields))
	fields = append(fields, s.fields...)
	fields = append(fields, o.fields...)
	return NewSchema(fields...)
}

// ErrAmbiguous is returned when an unqualified column name matches
// multiple fields.
type ErrAmbiguous struct{ Name string }

func (e *ErrAmbiguous) Error() string {
	return fmt.Sprintf("column reference %q is ambiguous", e.Name)
}

// ErrNotFound is returned when a column cannot be resolved.
type ErrNotFound struct {
	Name   string
	Schema string
}

func (e *ErrNotFound) Error() string {
	return fmt.Sprintf("column %q not found in schema %s", e.Name, e.Schema)
}

// Resolve finds the index of a (possibly qualified) column reference,
// case-insensitively. Unqualified names must be unambiguous.
func (s *Schema) Resolve(qualifier, name string) (int, error) {
	lq, ln := strings.ToLower(qualifier), strings.ToLower(name)
	found := -1
	for i, f := range s.fields {
		if strings.ToLower(f.Name) != ln {
			continue
		}
		if lq != "" {
			if strings.ToLower(f.Qualifier) == lq {
				// Qualified duplicates prefer the first match, which is the
				// standard resolution order.
				return i, nil
			}
			continue
		}
		if found >= 0 {
			// Identical (qualifier, name) duplicates are the same column
			// appearing twice (e.g. via USING); anything else is ambiguous.
			if s.fields[found].Qualifier != f.Qualifier {
				return 0, &ErrAmbiguous{Name: name}
			}
			continue
		}
		found = i
	}
	if found < 0 {
		display := name
		if qualifier != "" {
			display = qualifier + "." + name
		}
		return 0, &ErrNotFound{Name: display, Schema: s.String()}
	}
	return found, nil
}

// IndexOfColumn resolves a Column expression.
func (s *Schema) IndexOfColumn(c *Column) (int, error) {
	return s.Resolve(c.Relation, c.Name)
}

func (s *Schema) String() string {
	parts := make([]string, len(s.fields))
	for i, f := range s.fields {
		parts[i] = fmt.Sprintf("%s: %s", f.QualifiedName(), f.Type)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
