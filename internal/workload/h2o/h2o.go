// Package h2o implements the H2O.ai db-benchmark "groupby" dataset
// generator and its 10 queries, used to reproduce the paper's Figure 6.
// The dataset (G1_<n>_1e2_5_0) is a single CSV file with string and
// integer group keys at two cardinalities (100 groups and n/100 groups)
// and three value columns; query time is dominated by CSV parsing plus
// grouped aggregation, exactly as in the paper.
package h2o

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"gofusion/internal/core"
	"gofusion/internal/csvio"
)

// Queries holds the 10 groupby-task queries over table x.
var Queries = map[int]string{
	1:  `SELECT id1, sum(v1) AS v1 FROM x GROUP BY id1`,
	2:  `SELECT id1, id2, sum(v1) AS v1 FROM x GROUP BY id1, id2`,
	3:  `SELECT id3, sum(v1) AS v1, avg(v3) AS v3 FROM x GROUP BY id3`,
	4:  `SELECT id4, avg(v1) AS v1, avg(v2) AS v2, avg(v3) AS v3 FROM x GROUP BY id4`,
	5:  `SELECT id6, sum(v1) AS v1, sum(v2) AS v2, sum(v3) AS v3 FROM x GROUP BY id6`,
	6:  `SELECT id4, id5, median(v3) AS median_v3, stddev(v3) AS sd_v3 FROM x GROUP BY id4, id5`,
	7:  `SELECT id3, max(v1) - min(v2) AS range_v1_v2 FROM x GROUP BY id3`,
	8:  `SELECT id6, largest2_v3 FROM (SELECT id6, v3 AS largest2_v3, row_number() OVER (PARTITION BY id6 ORDER BY v3 DESC) AS order_v3 FROM x WHERE v3 IS NOT NULL) sub_query WHERE order_v3 <= 2`,
	9:  `SELECT id2, id4, power(corr(v1, v2), 2) AS r2 FROM x GROUP BY id2, id4`,
	10: `SELECT id1, id2, id3, id4, id5, id6, sum(v1) AS v1, count(*) AS n FROM x GROUP BY id1, id2, id3, id4, id5, id6`,
}

// WriteCSV generates the groupby dataset with n rows and K=100 group
// cardinality into a CSV file (header included), mirroring
// G1_<n>_1e2_5_0.csv: 5% of v3 values are missing and keys are unsorted.
func WriteCSV(path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	if _, err := w.WriteString("id1,id2,id3,id4,id5,id6,v1,v2,v3\n"); err != nil {
		return err
	}
	const k = 100
	bigK := n / k
	if bigK < 1 {
		bigK = 1
	}
	rng := rand.New(rand.NewSource(11))
	buf := make([]byte, 0, 96)
	for i := 0; i < n; i++ {
		buf = buf[:0]
		buf = append(buf, fmt.Sprintf("id%03d", rng.Intn(k)+1)...)
		buf = append(buf, ',')
		buf = append(buf, fmt.Sprintf("id%03d", rng.Intn(k)+1)...)
		buf = append(buf, ',')
		buf = append(buf, fmt.Sprintf("id%010d", rng.Intn(bigK)+1)...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(rng.Intn(k)+1), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(rng.Intn(k)+1), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(rng.Intn(bigK)+1), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(rng.Intn(5)+1), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(rng.Intn(15)+1), 10)
		buf = append(buf, ',')
		if rng.Intn(20) == 0 { // 5% NA
		} else {
			buf = strconv.AppendFloat(buf, rng.Float64()*100, 'f', 6, 64)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Register registers the CSV file as table x with schema inference.
func Register(s *core.SessionContext, path string) error {
	return s.RegisterCSV("x", path, csvio.DefaultOptions())
}
