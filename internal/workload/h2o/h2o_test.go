package h2o

import (
	"path/filepath"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
)

func TestWriteAndRegister(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g1.csv")
	if err := WriteCSV(path, 5000); err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(core.DefaultConfig())
	if err := Register(s, path); err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT count(*), count(v3) FROM x")
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	total := b.Column(0).(*arrow.Int64Array).Value(0)
	nonNull := b.Column(1).(*arrow.Int64Array).Value(0)
	if total != 5000 {
		t.Fatalf("rows = %d", total)
	}
	// ~5% of v3 is NA.
	if nonNull == total || float64(nonNull) < 0.9*float64(total) {
		t.Fatalf("v3 NA rate wrong: %d of %d", total-nonNull, total)
	}
	// Key cardinalities: id1 has 100 groups, id3 has ~n/100.
	df2, _ := s.SQL("SELECT count(DISTINCT id1), count(DISTINCT id3) FROM x")
	b2, err := df2.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	if k := b2.Column(0).(*arrow.Int64Array).Value(0); k != 100 {
		t.Fatalf("id1 cardinality = %d", k)
	}
	if k := b2.Column(1).(*arrow.Int64Array).Value(0); k < 30 || k > 60 {
		t.Fatalf("id3 cardinality = %d (want ~50)", k)
	}
}

func TestAllQueriesRunSmall(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g1.csv")
	if err := WriteCSV(path, 3000); err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(core.DefaultConfig())
	if err := Register(s, path); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 10; n++ {
		df, err := s.SQL(Queries[n])
		if err != nil {
			t.Fatalf("q%d plan: %v", n, err)
		}
		if _, err := df.CollectBatch(); err != nil {
			t.Fatalf("q%d exec: %v", n, err)
		}
	}
}
