// Package clickbench implements a synthetic generator for the ClickBench
// `hits` web-analytics table and the 43 benchmark queries, used to
// reproduce the paper's Table 1 and Figure 7. The real 14 GB dataset is
// proprietary traffic data; this generator preserves what the paper's
// analysis hinges on: per-column cardinalities (high-cardinality UserID /
// URL / ClientIP, medium RegionID, tiny AdvEngineID), heavy skew, a hot
// CounterID, mostly-empty SearchPhrase, and July-2013 time locality.
package clickbench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
	"gofusion/internal/parquet"
)

// HotCounter is the high-traffic CounterID used by queries 36-43 (the
// benchmark's "CounterID = 62").
const HotCounter = 62

// Generator produces deterministic synthetic hits data.
type Generator struct {
	Rows int
	Seed int64
	// BatchRows bounds generated batch sizes (default 8192).
	BatchRows int
}

// NewGenerator returns a generator for n rows.
func NewGenerator(n int) *Generator { return &Generator{Rows: n, Seed: 7, BatchRows: 8192} }

// Schema returns the hits table schema (the columns the 43 queries touch).
func Schema() *arrow.Schema {
	return arrow.NewSchema(
		arrow.NewField("WatchID", arrow.Int64, false),
		arrow.NewField("CounterID", arrow.Int32, false),
		arrow.NewField("EventDate", arrow.Date32, false),
		arrow.NewField("EventTime", arrow.Timestamp, false),
		arrow.NewField("UserID", arrow.Int64, false),
		arrow.NewField("RegionID", arrow.Int32, false),
		arrow.NewField("AdvEngineID", arrow.Int16, false),
		arrow.NewField("SearchEngineID", arrow.Int16, false),
		arrow.NewField("SearchPhrase", arrow.String, false),
		arrow.NewField("URL", arrow.String, false),
		arrow.NewField("Title", arrow.String, false),
		arrow.NewField("Referer", arrow.String, false),
		arrow.NewField("MobilePhone", arrow.Int16, false),
		arrow.NewField("MobilePhoneModel", arrow.String, false),
		arrow.NewField("ResolutionWidth", arrow.Int16, false),
		arrow.NewField("ClientIP", arrow.Int32, false),
		arrow.NewField("IsRefresh", arrow.Int16, false),
		arrow.NewField("IsLink", arrow.Int16, false),
		arrow.NewField("IsDownload", arrow.Int16, false),
		arrow.NewField("DontCountHits", arrow.Int16, false),
		arrow.NewField("TraficSourceID", arrow.Int16, false),
		arrow.NewField("URLHash", arrow.Int64, false),
		arrow.NewField("RefererHash", arrow.Int64, false),
		arrow.NewField("WindowClientWidth", arrow.Int16, false),
		arrow.NewField("WindowClientHeight", arrow.Int16, false),
	)
}

var (
	searchWords = []string{"weather", "news", "pizza", "hotel", "flights", "phone", "car",
		"house", "recipe", "movie", "music", "shoes", "jacket", "game", "league",
		"school", "bank", "insurance", "holiday", "beach", "train", "tickets"}
	domains = []string{"example.com", "shop.example.org", "news.site.net", "google.com",
		"mail.google.com", "maps.google.com", "video.host.tv", "blog.words.io",
		"forum.tech.dev", "wiki.know.org", "store.buy.biz", "images.pics.cc"}
	phoneModels = []string{"iPhone 4", "iPhone 5", "Galaxy S3", "Galaxy Note", "Lumia 920",
		"Xperia Z", "Nexus 4", "One X", "Optimus G", "Razr HD"}
	resolutions = []int16{1024, 1280, 1366, 1440, 1600, 1680, 1920, 2560, 320, 768}
)

// zipfIndex maps a uniform random value to a skewed index in [0, n).
func zipfIndex(rng *rand.Rand, n int) int {
	// Approximate Zipf by squaring a uniform draw: heavy head, long tail.
	u := rng.Float64()
	return int(u * u * float64(n))
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// Generate produces the hits batches.
func (g *Generator) Generate() (*arrow.Schema, []*arrow.RecordBatch) {
	schema := Schema()
	rng := rand.New(rand.NewSource(g.Seed))
	batchRows := g.BatchRows
	if batchRows <= 0 {
		batchRows = 8192
	}
	baseDate, _ := arrow.ParseDate32("2013-07-01")
	nUsers := g.Rows/3 + 1
	nURLs := g.Rows/5 + 1
	nIPs := g.Rows/2 + 1
	nPhrases := g.Rows/20 + 100

	var batches []*arrow.RecordBatch
	builders := make([]arrow.Builder, schema.NumFields())
	for i, f := range schema.Fields() {
		builders[i] = arrow.NewBuilder(f.Type)
	}
	rows := 0
	flush := func(force bool) {
		if rows == 0 || (!force && rows < batchRows) {
			return
		}
		cols := make([]arrow.Array, len(builders))
		for i, b := range builders {
			cols[i] = b.Finish()
		}
		batches = append(batches, arrow.NewRecordBatchWithRows(schema, cols, rows))
		rows = 0
	}

	for i := 0; i < g.Rows; i++ {
		watchID := int64(mix(uint64(i) + 1))
		// 20% of traffic goes to the hot counter; the rest is skewed over
		// ~10k counters.
		counter := int32(HotCounter)
		if rng.Intn(5) != 0 {
			counter = int32(zipfIndex(rng, 10000) + 100)
		}
		day := int32(zipfIndex(rng, 31))
		date := baseDate + day
		eventTime := int64(date)*86_400_000_000 + int64(rng.Intn(86400))*1_000_000
		user := int64(mix(uint64(zipfIndex(rng, nUsers)) + 99))
		region := int32(zipfIndex(rng, 5000))
		adv := int16(0)
		if rng.Intn(20) == 0 {
			adv = int16(rng.Intn(19) + 1)
		}
		searchEngine := int16(0)
		phrase := ""
		if rng.Intn(5) == 0 { // 20% of hits are searches
			searchEngine = int16(rng.Intn(5) + 1)
			w1 := searchWords[zipfIndex(rng, len(searchWords))]
			w2 := searchWords[rng.Intn(len(searchWords))]
			phrase = fmt.Sprintf("%s %s %d", w1, w2, zipfIndex(rng, nPhrases))
		}
		urlID := zipfIndex(rng, nURLs)
		domain := domains[zipfIndex(rng, len(domains))]
		url := fmt.Sprintf("http://%s/p/%d", domain, urlID)
		title := fmt.Sprintf("Page %d - %s", urlID, domain)
		if domain == "google.com" || rng.Intn(50) == 0 {
			title = "Google Search " + title
		}
		refDomain := domains[zipfIndex(rng, len(domains))]
		referer := fmt.Sprintf("http://%s/r/%d", refDomain, zipfIndex(rng, nURLs))
		mobile := int16(0)
		model := ""
		if rng.Intn(4) == 0 {
			mobile = int16(rng.Intn(5) + 1)
			model = phoneModels[zipfIndex(rng, len(phoneModels))]
		}
		width := resolutions[zipfIndex(rng, len(resolutions))]
		ip := int32(mix(uint64(zipfIndex(rng, nIPs)) + 7))
		isRefresh := int16(0)
		if rng.Intn(10) == 0 {
			isRefresh = 1
		}
		isLink := int16(0)
		if rng.Intn(8) == 0 {
			isLink = 1
		}
		isDownload := int16(0)
		if rng.Intn(50) == 0 {
			isDownload = 1
		}
		dontCount := int16(0)
		if rng.Intn(20) == 0 {
			dontCount = 1
		}
		trafic := int16(rng.Intn(10) - 1)
		urlHash := int64(mix(uint64(urlID) * 31))
		refHash := int64(mix(uint64(zipfIndex(rng, nURLs)) * 37))
		wcw := int16(rng.Intn(1920))
		wch := int16(rng.Intn(1080))

		vals := []any{watchID, counter, date, eventTime, user, region, adv,
			searchEngine, phrase, url, title, referer, mobile, model, width,
			ip, isRefresh, isLink, isDownload, dontCount, trafic, urlHash,
			refHash, wcw, wch}
		for c, v := range vals {
			switch x := v.(type) {
			case int64:
				builders[c].(*arrow.NumericBuilder[int64]).Append(x)
			case int32:
				builders[c].(*arrow.NumericBuilder[int32]).Append(x)
			case int16:
				builders[c].(*arrow.NumericBuilder[int16]).Append(x)
			case string:
				builders[c].(*arrow.StringBuilder).Append(x)
			}
		}
		rows++
		flush(false)
	}
	flush(true)
	if len(batches) == 0 {
		cols := make([]arrow.Array, len(builders))
		for i, b := range builders {
			cols[i] = b.Finish()
		}
		batches = append(batches, arrow.NewRecordBatchWithRows(schema, cols, 0))
	}
	return schema, batches
}

// WriteGPQ writes the dataset partitioned into numFiles GPQ files (the
// paper's athena_partitioned layout used 100 files).
func WriteGPQ(dir string, rows, numFiles int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := NewGenerator(rows)
	schema, batches := g.Generate()
	if numFiles < 1 {
		numFiles = 1
	}
	opts := parquet.DefaultWriterOptions()
	writers := make([]*fileState, numFiles)
	for i := range writers {
		path := filepath.Join(dir, fmt.Sprintf("hits_%03d.gpq", i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		fw, err := parquet.NewFileWriter(f, schema, opts)
		if err != nil {
			return err
		}
		writers[i] = &fileState{f: f, w: fw}
	}
	for bi, b := range batches {
		ws := writers[bi%numFiles]
		if err := ws.w.Write(b); err != nil {
			return err
		}
	}
	for _, ws := range writers {
		if err := ws.w.Close(); err != nil {
			return err
		}
		if err := ws.f.Close(); err != nil {
			return err
		}
	}
	return nil
}

type fileState struct {
	f *os.File
	w *parquet.FileWriter
}

// RegisterInMemory generates and registers the hits table.
func RegisterInMemory(s *core.SessionContext, rows int) error {
	g := NewGenerator(rows)
	schema, batches := g.Generate()
	return s.RegisterBatches("hits", schema, batches)
}

// RegisterGPQ registers the files written by WriteGPQ as the hits table.
func RegisterGPQ(s *core.SessionContext, dir string) error {
	return s.RegisterGPQDir("hits", dir)
}
