package clickbench

import (
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
)

const testRows = 20000

func testSession(t *testing.T, partitions int) *core.SessionContext {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.TargetPartitions = partitions
	s := core.NewSession(cfg)
	if err := RegisterInMemory(s, testRows); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeneratorShape(t *testing.T) {
	g := NewGenerator(testRows)
	schema, batches := g.Generate()
	if schema.NumFields() != 25 {
		t.Fatalf("fields = %d", schema.NumFields())
	}
	rows := 0
	for _, b := range batches {
		rows += b.NumRows()
	}
	if rows != testRows {
		t.Fatalf("rows = %d", rows)
	}
}

func TestDistributionProperties(t *testing.T) {
	s := testSession(t, 1)
	get := func(q string) int64 {
		df, err := s.SQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		b, err := df.CollectBatch()
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return b.Column(0).GetScalar(0).AsInt64()
	}
	// High-cardinality UserID.
	users := get("SELECT COUNT(DISTINCT UserID) FROM hits")
	if users < testRows/10 {
		t.Fatalf("UserID cardinality too low: %d", users)
	}
	// Mostly-empty SearchPhrase.
	empty := get("SELECT COUNT(*) FROM hits WHERE SearchPhrase = ''")
	if float64(empty) < 0.7*testRows {
		t.Fatalf("SearchPhrase should be mostly empty: %d", empty)
	}
	// Hot counter gets a large share.
	hot := get("SELECT COUNT(*) FROM hits WHERE CounterID = 62")
	if float64(hot) < 0.1*testRows {
		t.Fatalf("hot counter share too small: %d", hot)
	}
	// Sampled constants must exist.
	if get("SELECT COUNT(*) FROM hits WHERE URLHash = "+itoa(sampleURLHash())) == 0 {
		t.Fatal("sample URLHash absent")
	}
	// AdvEngineID mostly zero.
	adv := get("SELECT COUNT(*) FROM hits WHERE AdvEngineID <> 0")
	if float64(adv) > 0.2*testRows || adv == 0 {
		t.Fatalf("AdvEngineID nonzero share wrong: %d", adv)
	}
}

func itoa(v int64) string {
	return arrow.Int64Scalar(v).String()
}

// TestAllQueriesRun executes all 43 queries single- and multi-partition.
func TestAllQueriesRun(t *testing.T) {
	s1 := testSession(t, 1)
	s4 := testSession(t, 4)
	for n, q := range Queries() {
		df1, err := s1.SQL(q)
		if err != nil {
			t.Fatalf("Q%d plan: %v", n, err)
		}
		b1, err := df1.CollectBatch()
		if err != nil {
			t.Fatalf("Q%d exec: %v", n, err)
		}
		df4, err := s4.SQL(q)
		if err != nil {
			t.Fatalf("Q%d plan (mt): %v", n, err)
		}
		b4, err := df4.CollectBatch()
		if err != nil {
			t.Fatalf("Q%d exec (mt): %v", n, err)
		}
		if b1.NumRows() != b4.NumRows() {
			t.Fatalf("Q%d: %d vs %d rows across partitions", n, b1.NumRows(), b4.NumRows())
		}
	}
}

func TestGPQFilesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteGPQ(dir, 5000, 4); err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(core.DefaultConfig())
	if err := RegisterGPQ(s, dir); err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT COUNT(*) FROM hits")
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Column(0).GetScalar(0).AsInt64() != 5000 {
		t.Fatalf("rows = %v", b.Column(0).GetScalar(0))
	}
}
