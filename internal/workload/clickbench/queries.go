package clickbench

import "fmt"

// sampleUserID is a UserID guaranteed to exist (the generator's user id
// for index 0), playing the role of the benchmark's point-lookup constant.
func sampleUserID() int64 { return int64(mix(0 + 99)) }

// sampleURLHash / sampleRefererHash are hashes guaranteed to exist.
func sampleURLHash() int64     { return int64(mix(10 * 31)) }
func sampleRefererHash() int64 { return int64(mix(20 * 37)) }

// Queries returns the 43 ClickBench queries (1-based, matching the
// paper's Table 1 numbering) over the synthetic hits table. Constants
// referencing dataset values (UserID, URLHash, RefererHash) are chosen
// from values the generator is guaranteed to emit.
func Queries() map[int]string {
	q := map[int]string{
		1:  `SELECT COUNT(*) FROM hits`,
		2:  `SELECT COUNT(*) FROM hits WHERE AdvEngineID <> 0`,
		3:  `SELECT SUM(AdvEngineID), COUNT(*), AVG(ResolutionWidth) FROM hits`,
		4:  `SELECT AVG(UserID) FROM hits`,
		5:  `SELECT COUNT(DISTINCT UserID) FROM hits`,
		6:  `SELECT COUNT(DISTINCT SearchPhrase) FROM hits`,
		7:  `SELECT MIN(EventDate), MAX(EventDate) FROM hits`,
		8:  `SELECT AdvEngineID, COUNT(*) AS c FROM hits WHERE AdvEngineID <> 0 GROUP BY AdvEngineID ORDER BY c DESC`,
		9:  `SELECT RegionID, COUNT(DISTINCT UserID) AS u FROM hits GROUP BY RegionID ORDER BY u DESC LIMIT 10`,
		10: `SELECT RegionID, SUM(AdvEngineID), COUNT(*) AS c, AVG(ResolutionWidth), COUNT(DISTINCT UserID) FROM hits GROUP BY RegionID ORDER BY c DESC LIMIT 10`,
		11: `SELECT MobilePhoneModel, COUNT(DISTINCT UserID) AS u FROM hits WHERE MobilePhoneModel <> '' GROUP BY MobilePhoneModel ORDER BY u DESC LIMIT 10`,
		12: `SELECT MobilePhone, MobilePhoneModel, COUNT(DISTINCT UserID) AS u FROM hits WHERE MobilePhoneModel <> '' GROUP BY MobilePhone, MobilePhoneModel ORDER BY u DESC LIMIT 10`,
		13: `SELECT SearchPhrase, COUNT(*) AS c FROM hits WHERE SearchPhrase <> '' GROUP BY SearchPhrase ORDER BY c DESC LIMIT 10`,
		14: `SELECT SearchPhrase, COUNT(DISTINCT UserID) AS u FROM hits WHERE SearchPhrase <> '' GROUP BY SearchPhrase ORDER BY u DESC LIMIT 10`,
		15: `SELECT SearchEngineID, SearchPhrase, COUNT(*) AS c FROM hits WHERE SearchPhrase <> '' GROUP BY SearchEngineID, SearchPhrase ORDER BY c DESC LIMIT 10`,
		16: `SELECT UserID, COUNT(*) AS c FROM hits GROUP BY UserID ORDER BY c DESC LIMIT 10`,
		17: `SELECT UserID, SearchPhrase, COUNT(*) AS c FROM hits GROUP BY UserID, SearchPhrase ORDER BY c DESC LIMIT 10`,
		18: `SELECT UserID, SearchPhrase, COUNT(*) FROM hits GROUP BY UserID, SearchPhrase LIMIT 10`,
		19: `SELECT UserID, extract(minute FROM EventTime) AS m, SearchPhrase, COUNT(*) AS c FROM hits GROUP BY UserID, m, SearchPhrase ORDER BY c DESC LIMIT 10`,
		20: fmt.Sprintf(`SELECT UserID FROM hits WHERE UserID = %d`, sampleUserID()),
		21: `SELECT COUNT(*) FROM hits WHERE URL LIKE '%google%'`,
		22: `SELECT SearchPhrase, MIN(URL), COUNT(*) AS c FROM hits WHERE URL LIKE '%google%' AND SearchPhrase <> '' GROUP BY SearchPhrase ORDER BY c DESC LIMIT 10`,
		23: `SELECT SearchPhrase, MIN(URL), MIN(Title), COUNT(*) AS c, COUNT(DISTINCT UserID) FROM hits WHERE Title LIKE '%Google%' AND URL NOT LIKE '%.google.%' AND SearchPhrase <> '' GROUP BY SearchPhrase ORDER BY c DESC LIMIT 10`,
		24: `SELECT * FROM hits WHERE URL LIKE '%google%' ORDER BY EventTime LIMIT 10`,
		25: `SELECT SearchPhrase FROM hits WHERE SearchPhrase <> '' ORDER BY EventTime LIMIT 10`,
		26: `SELECT SearchPhrase FROM hits WHERE SearchPhrase <> '' ORDER BY SearchPhrase LIMIT 10`,
		27: `SELECT SearchPhrase FROM hits WHERE SearchPhrase <> '' ORDER BY EventTime, SearchPhrase LIMIT 10`,
		28: `SELECT CounterID, AVG(length(URL)) AS l, COUNT(*) AS c FROM hits WHERE URL <> '' GROUP BY CounterID HAVING COUNT(*) > 100 ORDER BY l DESC LIMIT 25`,
		29: `SELECT substring(Referer, 8, 20) AS k, AVG(length(Referer)) AS l, COUNT(*) AS c, MIN(Referer) FROM hits WHERE Referer <> '' GROUP BY k HAVING COUNT(*) > 100 ORDER BY l DESC LIMIT 25`,
		30: `SELECT SUM(ResolutionWidth), SUM(ResolutionWidth + 1), SUM(ResolutionWidth + 2), SUM(ResolutionWidth + 3), SUM(ResolutionWidth + 4), SUM(ResolutionWidth + 5), SUM(ResolutionWidth + 6), SUM(ResolutionWidth + 7), SUM(ResolutionWidth + 8), SUM(ResolutionWidth + 9), SUM(ResolutionWidth + 10), SUM(ResolutionWidth + 11), SUM(ResolutionWidth + 12), SUM(ResolutionWidth + 13), SUM(ResolutionWidth + 14), SUM(ResolutionWidth + 15), SUM(ResolutionWidth + 16), SUM(ResolutionWidth + 17), SUM(ResolutionWidth + 18), SUM(ResolutionWidth + 19), SUM(ResolutionWidth + 20), SUM(ResolutionWidth + 21), SUM(ResolutionWidth + 22), SUM(ResolutionWidth + 23), SUM(ResolutionWidth + 24), SUM(ResolutionWidth + 25), SUM(ResolutionWidth + 26), SUM(ResolutionWidth + 27), SUM(ResolutionWidth + 28), SUM(ResolutionWidth + 29), SUM(ResolutionWidth + 30), SUM(ResolutionWidth + 31), SUM(ResolutionWidth + 32), SUM(ResolutionWidth + 33), SUM(ResolutionWidth + 34), SUM(ResolutionWidth + 35), SUM(ResolutionWidth + 36), SUM(ResolutionWidth + 37), SUM(ResolutionWidth + 38), SUM(ResolutionWidth + 39), SUM(ResolutionWidth + 40), SUM(ResolutionWidth + 41), SUM(ResolutionWidth + 42), SUM(ResolutionWidth + 43), SUM(ResolutionWidth + 44), SUM(ResolutionWidth + 45), SUM(ResolutionWidth + 46), SUM(ResolutionWidth + 47), SUM(ResolutionWidth + 48), SUM(ResolutionWidth + 49), SUM(ResolutionWidth + 50), SUM(ResolutionWidth + 51), SUM(ResolutionWidth + 52), SUM(ResolutionWidth + 53), SUM(ResolutionWidth + 54), SUM(ResolutionWidth + 55), SUM(ResolutionWidth + 56), SUM(ResolutionWidth + 57), SUM(ResolutionWidth + 58), SUM(ResolutionWidth + 59), SUM(ResolutionWidth + 60), SUM(ResolutionWidth + 61), SUM(ResolutionWidth + 62), SUM(ResolutionWidth + 63), SUM(ResolutionWidth + 64), SUM(ResolutionWidth + 65), SUM(ResolutionWidth + 66), SUM(ResolutionWidth + 67), SUM(ResolutionWidth + 68), SUM(ResolutionWidth + 69), SUM(ResolutionWidth + 70), SUM(ResolutionWidth + 71), SUM(ResolutionWidth + 72), SUM(ResolutionWidth + 73), SUM(ResolutionWidth + 74), SUM(ResolutionWidth + 75), SUM(ResolutionWidth + 76), SUM(ResolutionWidth + 77), SUM(ResolutionWidth + 78), SUM(ResolutionWidth + 79), SUM(ResolutionWidth + 80), SUM(ResolutionWidth + 81), SUM(ResolutionWidth + 82), SUM(ResolutionWidth + 83), SUM(ResolutionWidth + 84), SUM(ResolutionWidth + 85), SUM(ResolutionWidth + 86), SUM(ResolutionWidth + 87), SUM(ResolutionWidth + 88), SUM(ResolutionWidth + 89) FROM hits`,
		31: `SELECT SearchEngineID, ClientIP, COUNT(*) AS c, SUM(IsRefresh), AVG(ResolutionWidth) FROM hits WHERE SearchPhrase <> '' GROUP BY SearchEngineID, ClientIP ORDER BY c DESC LIMIT 10`,
		32: `SELECT WatchID, ClientIP, COUNT(*) AS c, SUM(IsRefresh), AVG(ResolutionWidth) FROM hits WHERE SearchPhrase <> '' GROUP BY WatchID, ClientIP ORDER BY c DESC LIMIT 10`,
		33: `SELECT WatchID, ClientIP, COUNT(*) AS c, SUM(IsRefresh), AVG(ResolutionWidth) FROM hits GROUP BY WatchID, ClientIP ORDER BY c DESC LIMIT 10`,
		34: `SELECT URL, COUNT(*) AS c FROM hits GROUP BY URL ORDER BY c DESC LIMIT 10`,
		35: `SELECT 1, URL, COUNT(*) AS c FROM hits GROUP BY URL ORDER BY c DESC LIMIT 10`,
		36: `SELECT ClientIP, ClientIP - 1, ClientIP - 2, ClientIP - 3, COUNT(*) AS c FROM hits GROUP BY ClientIP ORDER BY c DESC LIMIT 10`,
		37: fmt.Sprintf(`SELECT URL, COUNT(*) AS PageViews FROM hits WHERE CounterID = %d AND EventDate >= DATE '2013-07-01' AND EventDate <= DATE '2013-07-31' AND DontCountHits = 0 AND IsRefresh = 0 AND URL <> '' GROUP BY URL ORDER BY PageViews DESC LIMIT 10`, HotCounter),
		38: fmt.Sprintf(`SELECT Title, COUNT(*) AS PageViews FROM hits WHERE CounterID = %d AND EventDate >= DATE '2013-07-01' AND EventDate <= DATE '2013-07-31' AND DontCountHits = 0 AND IsRefresh = 0 AND Title <> '' GROUP BY Title ORDER BY PageViews DESC LIMIT 10`, HotCounter),
		39: fmt.Sprintf(`SELECT URL, COUNT(*) AS PageViews FROM hits WHERE CounterID = %d AND EventDate >= DATE '2013-07-01' AND EventDate <= DATE '2013-07-31' AND IsRefresh = 0 AND IsLink <> 0 AND IsDownload = 0 GROUP BY URL ORDER BY PageViews DESC LIMIT 10 OFFSET 1000`, HotCounter),
		40: fmt.Sprintf(`SELECT TraficSourceID, SearchEngineID, AdvEngineID, CASE WHEN (SearchEngineID = 0 AND AdvEngineID = 0) THEN Referer ELSE '' END AS Src, URL AS Dst, COUNT(*) AS PageViews FROM hits WHERE CounterID = %d AND EventDate >= DATE '2013-07-01' AND EventDate <= DATE '2013-07-31' AND IsRefresh = 0 GROUP BY TraficSourceID, SearchEngineID, AdvEngineID, Src, Dst ORDER BY PageViews DESC LIMIT 10 OFFSET 1000`, HotCounter),
		41: fmt.Sprintf(`SELECT URLHash, EventDate, COUNT(*) AS PageViews FROM hits WHERE CounterID = %d AND EventDate >= DATE '2013-07-01' AND EventDate <= DATE '2013-07-31' AND IsRefresh = 0 AND TraficSourceID IN (-1, 6) AND RefererHash = %d GROUP BY URLHash, EventDate ORDER BY PageViews DESC LIMIT 10 OFFSET 100`, HotCounter, sampleRefererHash()),
		42: fmt.Sprintf(`SELECT WindowClientWidth, WindowClientHeight, COUNT(*) AS PageViews FROM hits WHERE CounterID = %d AND EventDate >= DATE '2013-07-01' AND EventDate <= DATE '2013-07-31' AND IsRefresh = 0 AND DontCountHits = 0 AND URLHash = %d GROUP BY WindowClientWidth, WindowClientHeight ORDER BY PageViews DESC LIMIT 10 OFFSET 10000`, HotCounter, sampleURLHash()),
		43: fmt.Sprintf(`SELECT DATE_TRUNC('minute', EventTime) AS M, COUNT(*) AS PageViews FROM hits WHERE CounterID = %d AND EventDate >= DATE '2013-07-14' AND EventDate <= DATE '2013-07-15' AND IsRefresh = 0 AND DontCountHits = 0 GROUP BY M ORDER BY M LIMIT 10 OFFSET 1000`, HotCounter),
	}
	return q
}

// PaperQueryNumbers lists the query numbers reported in the paper's
// Table 1 (1-20, 25-33, 36-43).
func PaperQueryNumbers() []int {
	var out []int
	for i := 1; i <= 20; i++ {
		out = append(out, i)
	}
	for i := 25; i <= 33; i++ {
		out = append(out, i)
	}
	for i := 36; i <= 43; i++ {
		out = append(out, i)
	}
	return out
}
