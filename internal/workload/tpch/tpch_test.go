package tpch

import (
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
)

const testSF = 0.01

func testSession(t *testing.T, partitions int) *core.SessionContext {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.TargetPartitions = partitions
	s := core.NewSession(cfg)
	if err := RegisterInMemory(s, testSF); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGeneratorShapes(t *testing.T) {
	want := RowCounts(testSF)
	g := NewGenerator(testSF)
	for _, name := range TableNames {
		schema, batches, err := g.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		var rows int64
		for _, b := range batches {
			rows += int64(b.NumRows())
		}
		if w, ok := want[name]; ok && rows != w {
			t.Fatalf("%s: %d rows, want %d", name, rows, w)
		}
		if name == "lineitem" {
			// 1..7 lines per order; just sanity-bound it.
			orders := want["orders"]
			if rows < orders || rows > orders*7 {
				t.Fatalf("lineitem rows %d implausible for %d orders", rows, orders)
			}
		}
		if schema.NumFields() == 0 {
			t.Fatalf("%s: empty schema", name)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1, g2 := NewGenerator(testSF), NewGenerator(testSF)
	_, b1, err := g1.Generate("supplier")
	if err != nil {
		t.Fatal(err)
	}
	_, b2, err := g2.Generate("supplier")
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) != len(b2) {
		t.Fatal("batch counts differ")
	}
	for i := range b1 {
		for c := 0; c < b1[i].NumCols(); c++ {
			for r := 0; r < b1[i].NumRows(); r++ {
				if !b1[i].Column(c).GetScalar(r).Equal(b2[i].Column(c).GetScalar(r)) {
					t.Fatalf("nondeterministic at batch %d col %d row %d", i, c, r)
				}
			}
		}
	}
}

func TestReferentialIntegrity(t *testing.T) {
	s := testSession(t, 1)
	// Every lineitem matches an order and a (part, supplier) pair in
	// partsupp.
	df, err := s.SQL(`SELECT count(*) FROM lineitem l LEFT JOIN orders o ON l.l_orderkey = o.o_orderkey WHERE o.o_orderkey IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Column(0).(*arrow.Int64Array).Value(0) != 0 {
		t.Fatal("lineitem has dangling order keys")
	}
	df, err = s.SQL(`SELECT count(*) FROM lineitem l LEFT JOIN partsupp ps
		ON l.l_partkey = ps.ps_partkey AND l.l_suppkey = ps.ps_suppkey
		WHERE ps.ps_partkey IS NULL`)
	if err != nil {
		t.Fatal(err)
	}
	b, err = df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Column(0).(*arrow.Int64Array).Value(0) != 0 {
		t.Fatal("lineitem has dangling partsupp keys")
	}
}

func TestDateCorrelations(t *testing.T) {
	s := testSession(t, 1)
	df, err := s.SQL(`SELECT count(*) FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
		WHERE l.l_shipdate <= o.o_orderdate OR l.l_receiptdate < l.l_shipdate`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Column(0).(*arrow.Int64Array).Value(0) != 0 {
		t.Fatal("date correlations violated")
	}
}

// TestAllQueriesRun plans and executes every TPC-H query at tiny scale,
// both single-threaded and partitioned, and cross-checks the results.
func TestAllQueriesRun(t *testing.T) {
	s1 := testSession(t, 1)
	s4 := testSession(t, 4)
	for n := 1; n <= 22; n++ {
		q, err := Query(n)
		if err != nil {
			t.Fatal(err)
		}
		df1, err := s1.SQL(q)
		if err != nil {
			t.Fatalf("Q%d planning: %v", n, err)
		}
		b1, err := df1.CollectBatch()
		if err != nil {
			t.Fatalf("Q%d executing: %v", n, err)
		}
		df4, err := s4.SQL(q)
		if err != nil {
			t.Fatalf("Q%d planning (partitioned): %v", n, err)
		}
		b4, err := df4.CollectBatch()
		if err != nil {
			t.Fatalf("Q%d executing (partitioned): %v", n, err)
		}
		if b1.NumRows() != b4.NumRows() {
			t.Fatalf("Q%d: %d rows single vs %d partitioned", n, b1.NumRows(), b4.NumRows())
		}
	}
}

func TestQ1Invariants(t *testing.T) {
	s := testSession(t, 1)
	df, err := s.SQL(Queries[1])
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	// Q1 returns the 4 (returnflag, linestatus) combinations with strictly
	// positive sums, sorted by flag then status.
	if b.NumRows() < 3 || b.NumRows() > 4 {
		t.Fatalf("Q1 rows = %d", b.NumRows())
	}
	var lastKey string
	for i := 0; i < b.NumRows(); i++ {
		key := b.Column(0).GetScalar(i).AsString() + b.Column(1).GetScalar(i).AsString()
		if key <= lastKey {
			t.Fatal("Q1 not sorted")
		}
		lastKey = key
		if b.ColumnByName("sum_qty").GetScalar(i).AsFloat64() <= 0 {
			t.Fatal("Q1 sum_qty must be positive")
		}
		// avg_qty = sum_qty / count_order
		sumQty := b.ColumnByName("sum_qty").GetScalar(i).AsFloat64()
		count := float64(b.ColumnByName("count_order").GetScalar(i).AsInt64())
		avgQty := b.ColumnByName("avg_qty").GetScalar(i).AsFloat64()
		if diff := sumQty/count - avgQty; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("Q1 avg inconsistency: %v vs %v", sumQty/count, avgQty)
		}
	}
}

func TestQ6MatchesManualComputation(t *testing.T) {
	s := testSession(t, 1)
	df, err := s.SQL(Queries[6])
	if err != nil {
		t.Fatal(err)
	}
	got, err := df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: manual scan of the generated data.
	g := NewGenerator(testSF)
	_, batches, err := g.Generate("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	lo := dateOf(1994, 1, 1)
	hi := dateOf(1995, 1, 1)
	var want float64
	for _, b := range batches {
		ship := b.ColumnByName("l_shipdate").(*arrow.Int32Array)
		qty := b.ColumnByName("l_quantity").(*arrow.Int64Array)
		price := b.ColumnByName("l_extendedprice").(*arrow.Int64Array)
		disc := b.ColumnByName("l_discount").(*arrow.Int64Array)
		for i := 0; i < b.NumRows(); i++ {
			if ship.Value(i) >= lo && ship.Value(i) < hi &&
				disc.Value(i) >= 5 && disc.Value(i) <= 7 && qty.Value(i) < 2400 {
				want += float64(price.Value(i)) / 100 * float64(disc.Value(i)) / 100
			}
		}
	}
	gotV := got.Column(0).GetScalar(0).AsFloat64()
	if diff := gotV - want; diff > 0.01 || diff < -0.01 {
		t.Fatalf("Q6: got %v want %v", gotV, want)
	}
}

func TestGPQRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteGPQ(dir, 0.001, 0); err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(core.DefaultConfig())
	if err := RegisterGPQ(s, dir); err != nil {
		t.Fatal(err)
	}
	df, err := s.SQL("SELECT count(*) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Column(0).(*arrow.Int64Array).Value(0) == 0 {
		t.Fatal("no lineitem rows via GPQ")
	}
	// A query over files must match the same query in memory.
	df2, err := s.SQL(Queries[6])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df2.CollectBatch(); err != nil {
		t.Fatalf("Q6 over GPQ: %v", err)
	}
}
