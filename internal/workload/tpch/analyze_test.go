package tpch_test

import (
	"regexp"
	"strings"
	"testing"

	"gofusion/internal/core"
	"gofusion/internal/exec"
	"gofusion/internal/testutil"
	"gofusion/internal/workload/tpch"
)

var metricsAnnotation = regexp.MustCompile(`, metrics=\[[^\]]*\]`)

// TestExplainAnalyzeShape runs representative TPC-H queries (scan-heavy
// Q1/Q6 and join+agg Q3/Q5/Q10) at 1 and 4 partitions and checks the
// EXPLAIN ANALYZE contract: the annotated tree is exactly the physical
// plan tree plus per-operator metrics, every operator reports at least
// output_rows and elapsed_compute, the cross-operator metric invariants
// hold, and executing with metrics leaks no goroutines.
func TestExplainAnalyzeShape(t *testing.T) {
	queries := []int{1, 3, 5, 6, 10}
	for _, parts := range []int{1, 4} {
		s := core.NewSession(core.SessionConfig{TargetPartitions: parts})
		if err := tpch.RegisterInMemory(s, 0.01); err != nil {
			t.Fatal(err)
		}
		baseline := testutil.SettledGoroutines()
		for _, n := range queries {
			q, err := tpch.Query(n)
			if err != nil {
				t.Fatal(err)
			}
			df, err := s.SQL(q)
			if err != nil {
				t.Fatalf("Q%d p%d plan: %v", n, parts, err)
			}
			batches, qm, err := df.CollectWithMetrics()
			if err != nil {
				t.Fatalf("Q%d p%d exec: %v", n, parts, err)
			}
			var rows int64
			for _, b := range batches {
				rows += int64(b.NumRows())
			}
			if err := exec.CheckPlanMetrics(qm.Plan, rows); err != nil {
				t.Errorf("Q%d p%d: %v", n, parts, err)
			}

			analyzed := exec.ExplainAnalyze(qm.Plan)
			// Stripping the metric annotations must yield exactly the
			// plain physical plan rendering: ANALYZE may not alter the
			// operator tree.
			if stripped := metricsAnnotation.ReplaceAllString(analyzed, ""); stripped != exec.ExplainPhysical(qm.Plan) {
				t.Errorf("Q%d p%d: ANALYZE tree differs from physical plan:\n%s", n, parts, analyzed)
			}
			for _, line := range strings.Split(strings.TrimRight(analyzed, "\n"), "\n") {
				if !strings.Contains(line, "metrics=[") ||
					!strings.Contains(line, "output_rows=") ||
					!strings.Contains(line, "elapsed_compute=") {
					t.Errorf("Q%d p%d: operator lacks core metrics: %q", n, parts, line)
				}
			}

			// All partition producers (repartition, coalesce) must have
			// exited once the query is fully drained and closed.
			if after := testutil.SettledGoroutines(); after > baseline {
				t.Errorf("Q%d p%d: goroutine leak: %d before, %d after", n, parts, baseline, after)
			}
		}
	}
}
