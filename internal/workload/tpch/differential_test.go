package tpch_test

import (
	"testing"

	"gofusion/internal/baseline"
	"gofusion/internal/core"
	"gofusion/internal/testutil"
	"gofusion/internal/workload/tpch"
)

// TestTPCHDifferentialGPQ is the file-backed differential golden test:
// all 22 TPC-H queries at tiny scale over GPQ files with small row groups
// (forcing row-group pruning and partition splits on the engine side,
// while TightDB decodes the same files eagerly), executed on a
// partitioned engine session and compared to the baseline under the
// canonical normalization.
func TestTPCHDifferentialGPQ(t *testing.T) {
	if testing.Short() {
		t.Skip("file-backed TPC-H differential is not a -short test")
	}
	const sf = 0.01
	dir := t.TempDir()
	// 2048-row groups: lineitem (~60k rows at sf 0.01) becomes ~30 row
	// groups, so partitioned scans split at row-group granularity.
	if err := tpch.WriteGPQ(dir, sf, 2048); err != nil {
		t.Fatal(err)
	}

	s := core.NewSession(core.SessionConfig{TargetPartitions: 4})
	if err := tpch.RegisterGPQ(s, dir); err != nil {
		t.Fatal(err)
	}
	be := baseline.New(2)
	for _, name := range tpch.TableNames {
		if err := be.RegisterGPQ(name, dir+"/"+name+".gpq"); err != nil {
			t.Fatal(err)
		}
	}

	for n := 1; n <= 22; n++ {
		q, err := tpch.Query(n)
		if err != nil {
			t.Fatal(err)
		}
		df, err := s.SQL(q)
		if err != nil {
			t.Fatalf("Q%d gofusion plan: %v", n, err)
		}
		got, err := df.CollectBatch()
		if err != nil {
			t.Fatalf("Q%d gofusion exec: %v", n, err)
		}
		want, err := be.Query(q)
		if err != nil {
			t.Fatalf("Q%d baseline: %v", n, err)
		}
		if diff := testutil.DiffBatches(got, want); diff != "" {
			t.Fatalf("Q%d: engines disagree on GPQ-backed tables:\n%s", n, diff)
		}
	}
}
