// Package tpch implements a from-scratch, deterministic TPC-H data
// generator (dbgen) and the 22 benchmark queries, used to reproduce the
// paper's Figure 5. The generator preserves the official schema, key
// relationships, value domains, and the distributions the queries'
// selectivities depend on, at laptop-friendly scale factors.
package tpch

import (
	"fmt"
	"math/rand"

	"gofusion/internal/arrow"
)

// Scale-factor base cardinalities (SF = 1).
const (
	baseSupplier = 10_000
	basePart     = 200_000
	baseCustomer = 150_000
	baseOrders   = 1_500_000
)

var regions = []struct {
	name string
}{
	{"AFRICA"}, {"AMERICA"}, {"ASIA"}, {"EUROPE"}, {"MIDDLE EAST"},
}

// nations maps each nation to its region per the TPC-H spec.
var nations = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var (
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes   = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs   = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	typeSyl1    = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2    = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3    = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	containers1 = []string{"SM", "LG", "MED", "JUMBO", "WRAP"}
	containers2 = []string{"CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"}
	partNames   = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
		"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
		"chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan",
		"dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
		"gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "hy"}
	commentWords = []string{"furiously", "quickly", "carefully", "regular", "express", "ironic",
		"pending", "final", "bold", "blithely", "even", "silent", "slyly", "daring",
		"accounts", "deposits", "packages", "requests", "instructions", "theodolites",
		"pinto", "beans", "foxes", "dependencies", "platelets", "ideas", "special",
		"unusual", "excuses", "asymptotes", "courts", "dolphins", "multipliers"}
)

// epochDays converts a (year, month, day) to days since the Unix epoch
// without time-zone overhead.
func dateOf(y, m, d int) int32 {
	days := int32(0)
	isLeap := func(y int) bool { return y%4 == 0 && (y%100 != 0 || y%400 == 0) }
	for yy := 1970; yy < y; yy++ {
		if isLeap(yy) {
			days += 366
		} else {
			days += 365
		}
	}
	mdays := [12]int{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	for mm := 1; mm < m; mm++ {
		days += int32(mdays[mm-1])
		if mm == 2 && isLeap(y) {
			days++
		}
	}
	return days + int32(d) - 1
}

var (
	startDate = dateOf(1992, 1, 1)
	endDate   = dateOf(1998, 8, 2)
	cutoff    = dateOf(1995, 6, 17)
)

// Generator produces deterministic TPC-H tables at a scale factor.
type Generator struct {
	SF   float64
	Seed int64
	// BatchRows bounds generated batch sizes (default 8192).
	BatchRows int
}

// NewGenerator returns a generator for the scale factor with a fixed seed.
func NewGenerator(sf float64) *Generator {
	return &Generator{SF: sf, Seed: 42, BatchRows: 8192}
}

func (g *Generator) counts() (suppliers, parts, customers, orders int) {
	scale := func(base int) int {
		n := int(float64(base) * g.SF)
		if n < 1 {
			n = 1
		}
		return n
	}
	return scale(baseSupplier), scale(basePart), scale(baseCustomer), scale(baseOrders)
}

func (g *Generator) rng(table string) *rand.Rand {
	h := int64(0)
	for _, c := range table {
		h = h*31 + int64(c)
	}
	return rand.New(rand.NewSource(g.Seed ^ h))
}

func comment(rng *rand.Rand, minWords, maxWords int) string {
	n := minWords + rng.Intn(maxWords-minWords+1)
	out := make([]byte, 0, n*8)
	for i := 0; i < n; i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, commentWords[rng.Intn(len(commentWords))]...)
	}
	return string(out)
}

func phone(rng *rand.Rand, nation int) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", nation+10, rng.Intn(900)+100, rng.Intn(900)+100, rng.Intn(9000)+1000)
}

// money builds a Decimal(12,2) value in [lo, hi) dollars.
func money(rng *rand.Rand, lo, hi int) int64 {
	return int64(lo*100) + int64(rng.Intn((hi-lo)*100))
}

// Table names in generation (and foreign-key) order.
var TableNames = []string{"region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"}

// Schema returns the arrow schema of a TPC-H table.
func Schema(table string) (*arrow.Schema, error) {
	dec := arrow.Decimal(12, 2)
	switch table {
	case "region":
		return arrow.NewSchema(
			arrow.NewField("r_regionkey", arrow.Int64, false),
			arrow.NewField("r_name", arrow.String, false),
			arrow.NewField("r_comment", arrow.String, false),
		), nil
	case "nation":
		return arrow.NewSchema(
			arrow.NewField("n_nationkey", arrow.Int64, false),
			arrow.NewField("n_name", arrow.String, false),
			arrow.NewField("n_regionkey", arrow.Int64, false),
			arrow.NewField("n_comment", arrow.String, false),
		), nil
	case "supplier":
		return arrow.NewSchema(
			arrow.NewField("s_suppkey", arrow.Int64, false),
			arrow.NewField("s_name", arrow.String, false),
			arrow.NewField("s_address", arrow.String, false),
			arrow.NewField("s_nationkey", arrow.Int64, false),
			arrow.NewField("s_phone", arrow.String, false),
			arrow.NewField("s_acctbal", dec, false),
			arrow.NewField("s_comment", arrow.String, false),
		), nil
	case "part":
		return arrow.NewSchema(
			arrow.NewField("p_partkey", arrow.Int64, false),
			arrow.NewField("p_name", arrow.String, false),
			arrow.NewField("p_mfgr", arrow.String, false),
			arrow.NewField("p_brand", arrow.String, false),
			arrow.NewField("p_type", arrow.String, false),
			arrow.NewField("p_size", arrow.Int64, false),
			arrow.NewField("p_container", arrow.String, false),
			arrow.NewField("p_retailprice", dec, false),
			arrow.NewField("p_comment", arrow.String, false),
		), nil
	case "partsupp":
		return arrow.NewSchema(
			arrow.NewField("ps_partkey", arrow.Int64, false),
			arrow.NewField("ps_suppkey", arrow.Int64, false),
			arrow.NewField("ps_availqty", arrow.Int64, false),
			arrow.NewField("ps_supplycost", dec, false),
			arrow.NewField("ps_comment", arrow.String, false),
		), nil
	case "customer":
		return arrow.NewSchema(
			arrow.NewField("c_custkey", arrow.Int64, false),
			arrow.NewField("c_name", arrow.String, false),
			arrow.NewField("c_address", arrow.String, false),
			arrow.NewField("c_nationkey", arrow.Int64, false),
			arrow.NewField("c_phone", arrow.String, false),
			arrow.NewField("c_acctbal", dec, false),
			arrow.NewField("c_mktsegment", arrow.String, false),
			arrow.NewField("c_comment", arrow.String, false),
		), nil
	case "orders":
		return arrow.NewSchema(
			arrow.NewField("o_orderkey", arrow.Int64, false),
			arrow.NewField("o_custkey", arrow.Int64, false),
			arrow.NewField("o_orderstatus", arrow.String, false),
			arrow.NewField("o_totalprice", dec, false),
			arrow.NewField("o_orderdate", arrow.Date32, false),
			arrow.NewField("o_orderpriority", arrow.String, false),
			arrow.NewField("o_clerk", arrow.String, false),
			arrow.NewField("o_shippriority", arrow.Int64, false),
			arrow.NewField("o_comment", arrow.String, false),
		), nil
	case "lineitem":
		return arrow.NewSchema(
			arrow.NewField("l_orderkey", arrow.Int64, false),
			arrow.NewField("l_partkey", arrow.Int64, false),
			arrow.NewField("l_suppkey", arrow.Int64, false),
			arrow.NewField("l_linenumber", arrow.Int64, false),
			arrow.NewField("l_quantity", dec, false),
			arrow.NewField("l_extendedprice", dec, false),
			arrow.NewField("l_discount", dec, false),
			arrow.NewField("l_tax", dec, false),
			arrow.NewField("l_returnflag", arrow.String, false),
			arrow.NewField("l_linestatus", arrow.String, false),
			arrow.NewField("l_shipdate", arrow.Date32, false),
			arrow.NewField("l_commitdate", arrow.Date32, false),
			arrow.NewField("l_receiptdate", arrow.Date32, false),
			arrow.NewField("l_shipinstruct", arrow.String, false),
			arrow.NewField("l_shipmode", arrow.String, false),
			arrow.NewField("l_comment", arrow.String, false),
		), nil
	}
	return nil, fmt.Errorf("tpch: unknown table %q", table)
}

// Generate produces all batches of one table.
func (g *Generator) Generate(table string) (*arrow.Schema, []*arrow.RecordBatch, error) {
	schema, err := Schema(table)
	if err != nil {
		return nil, nil, err
	}
	batchRows := g.BatchRows
	if batchRows <= 0 {
		batchRows = 8192
	}
	var batches []*arrow.RecordBatch
	builders := make([]arrow.Builder, schema.NumFields())
	for i, f := range schema.Fields() {
		builders[i] = arrow.NewBuilder(f.Type)
	}
	rows := 0
	flush := func(force bool) {
		if rows == 0 || (!force && rows < batchRows) {
			return
		}
		cols := make([]arrow.Array, len(builders))
		for i, b := range builders {
			cols[i] = b.Finish()
		}
		batches = append(batches, arrow.NewRecordBatchWithRows(schema, cols, rows))
		rows = 0
	}
	emit := func(vals ...any) {
		for i, v := range vals {
			switch x := v.(type) {
			case int64:
				builders[i].(*arrow.NumericBuilder[int64]).Append(x)
			case string:
				builders[i].(*arrow.StringBuilder).Append(x)
			case int32:
				builders[i].(*arrow.NumericBuilder[int32]).Append(x)
			default:
				panic(fmt.Sprintf("tpch: bad value %T", v))
			}
		}
		rows++
		flush(false)
	}

	suppliers, parts, customers, orders := g.counts()
	rng := g.rng(table)
	switch table {
	case "region":
		for i, r := range regions {
			emit(int64(i), r.name, comment(rng, 5, 10))
		}
	case "nation":
		for i, n := range nations {
			emit(int64(i), n.name, int64(n.region), comment(rng, 5, 10))
		}
	case "supplier":
		for i := 1; i <= suppliers; i++ {
			nation := rng.Intn(len(nations))
			c := comment(rng, 8, 14)
			// A small fraction of suppliers complain, for Q16's NOT IN.
			if rng.Intn(100) < 2 {
				c += " Customer stated Complaints about quality"
			}
			emit(int64(i), fmt.Sprintf("Supplier#%09d", i),
				fmt.Sprintf("addr-%d %s", rng.Intn(1000), commentWords[rng.Intn(len(commentWords))]),
				int64(nation), phone(rng, nation), money(rng, -999, 9999), c)
		}
	case "part":
		for i := 1; i <= parts; i++ {
			m := rng.Intn(5) + 1
			b := rng.Intn(5) + 1
			name := partNames[rng.Intn(len(partNames))] + " " + partNames[rng.Intn(len(partNames))] + " " +
				partNames[rng.Intn(len(partNames))] + " " + partNames[rng.Intn(len(partNames))]
			ptype := typeSyl1[rng.Intn(6)] + " " + typeSyl2[rng.Intn(5)] + " " + typeSyl3[rng.Intn(5)]
			container := containers1[rng.Intn(5)] + " " + containers2[rng.Intn(8)]
			// Retail price formula from the spec (deterministic in key).
			price := int64(90000) + int64((i/10)%20001) + int64(100*(i%1000))
			emit(int64(i), name, fmt.Sprintf("Manufacturer#%d", m),
				fmt.Sprintf("Brand#%d%d", m, b), ptype, int64(rng.Intn(50)+1),
				container, price, comment(rng, 3, 8))
		}
	case "partsupp":
		for i := 1; i <= parts; i++ {
			for j := 0; j < 4; j++ {
				// The official supplier assignment formula keeps part/supplier
				// joins uniform.
				s := (i+(j*((suppliers/4)+(i-1)/suppliers)))%suppliers + 1
				emit(int64(i), int64(s), int64(rng.Intn(9999)+1),
					money(rng, 1, 1000), comment(rng, 10, 20))
			}
		}
	case "customer":
		for i := 1; i <= customers; i++ {
			nation := rng.Intn(len(nations))
			emit(int64(i), fmt.Sprintf("Customer#%09d", i),
				fmt.Sprintf("addr-%d %s", rng.Intn(1000), commentWords[rng.Intn(len(commentWords))]),
				int64(nation), phone(rng, nation), money(rng, -999, 9999),
				segments[rng.Intn(len(segments))], comment(rng, 8, 16))
		}
	case "orders":
		for i := 1; i <= orders; i++ {
			key := orderKey(i)
			cust := rng.Intn(customers) + 1
			date := orderDate(i)
			c := comment(rng, 6, 12)
			if rng.Intn(100) < 1 {
				c += " special deposits requests"
			}
			status := "O"
			if date+100 < cutoff {
				status = "F"
			} else if rng.Intn(2) == 0 {
				status = "P"
			}
			emit(key, int64(cust), status, money(rng, 1000, 400000), date,
				priorities[rng.Intn(5)], fmt.Sprintf("Clerk#%09d", rng.Intn(1000)+1),
				int64(0), c)
		}
	case "lineitem":
		// Order dates are a deterministic function of the order index, so
		// the shipdate/orderdate correlation holds without materializing
		// the orders table.
		for i := 1; i <= orders; i++ {
			key := orderKey(i)
			odate := orderDate(i)
			lines := rng.Intn(7) + 1
			for ln := 1; ln <= lines; ln++ {
				part := rng.Intn(parts) + 1
				// Same formula as partsupp so every lineitem matches one.
				supp := (part+((ln%4)*((suppliers/4)+(part-1)/suppliers)))%suppliers + 1
				qty := int64(rng.Intn(50)+1) * 100 // Decimal(12,2)
				// extendedprice = qty * price-ish
				price := int64(90000) + int64((part/10)%20001) + int64(100*(part%1000))
				extended := (qty / 100) * price
				discount := int64(rng.Intn(11)) // 0.00 .. 0.10
				tax := int64(rng.Intn(9))       // 0.00 .. 0.08
				ship := odate + int32(rng.Intn(121)+1)
				commit := odate + int32(rng.Intn(61)+30)
				receipt := ship + int32(rng.Intn(30)+1)
				returnflag := "N"
				if receipt <= cutoff {
					if rng.Intn(2) == 0 {
						returnflag = "R"
					} else {
						returnflag = "A"
					}
				}
				status := "O"
				if ship <= cutoff {
					status = "F"
				}
				emit(key, int64(part), int64(supp), int64(ln), qty, extended,
					discount, tax, returnflag, status, ship, commit, receipt,
					instructs[rng.Intn(4)], shipModes[rng.Intn(7)], comment(rng, 4, 10))
			}
		}
	default:
		return nil, nil, fmt.Errorf("tpch: unknown table %q", table)
	}
	flush(true)
	if len(batches) == 0 {
		cols := make([]arrow.Array, len(builders))
		for i, b := range builders {
			cols[i] = b.Finish()
		}
		batches = append(batches, arrow.NewRecordBatchWithRows(schema, cols, rows))
	}
	return schema, batches, nil
}

// orderKey spreads order keys per the spec (sparse keyspace).
func orderKey(i int) int64 {
	// 8 contiguous keys per 32-key block.
	block := (i - 1) / 8
	offset := (i - 1) % 8
	return int64(block*32 + offset + 1)
}

// orderDate derives a deterministic, well-mixed order date from the order
// index (shared by the orders and lineitem generators).
func orderDate(i int) int32 {
	x := uint64(i) * 0x9E3779B97F4A7C15
	x ^= x >> 29
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 32
	span := uint64(endDate - startDate - 151)
	return startDate + int32(x%span)
}
