package tpch

import (
	"fmt"
	"os"
	"path/filepath"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
	"gofusion/internal/parquet"
)

// RegisterInMemory generates all tables at the scale factor and registers
// them as in-memory tables on the session.
func RegisterInMemory(s *core.SessionContext, sf float64) error {
	g := NewGenerator(sf)
	for _, name := range TableNames {
		schema, batches, err := g.Generate(name)
		if err != nil {
			return err
		}
		if err := s.RegisterBatches(name, schema, batches); err != nil {
			return err
		}
	}
	return nil
}

// WriteGPQ generates the dataset and writes one GPQ file per table under
// dir (the paper's "one parquet file per table" TPC-H layout). Row groups
// are capped at rowGroupRows (the paper used 1M records).
func WriteGPQ(dir string, sf float64, rowGroupRows int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	g := NewGenerator(sf)
	opts := parquet.DefaultWriterOptions()
	if rowGroupRows > 0 {
		opts.RowGroupRows = rowGroupRows
	}
	for _, name := range TableNames {
		schema, batches, err := g.Generate(name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".gpq")
		if err := parquet.WriteFile(path, schema, batches, opts); err != nil {
			return fmt.Errorf("tpch: writing %s: %w", path, err)
		}
	}
	return nil
}

// RegisterGPQ registers the per-table GPQ files written by WriteGPQ.
func RegisterGPQ(s *core.SessionContext, dir string) error {
	for _, name := range TableNames {
		if err := s.RegisterGPQ(name, filepath.Join(dir, name+".gpq")); err != nil {
			return err
		}
	}
	return nil
}

// RowCounts returns the generated row count per table (for tests).
func RowCounts(sf float64) map[string]int64 {
	g := NewGenerator(sf)
	suppliers, parts, customers, orders := g.counts()
	return map[string]int64{
		"region":   int64(len(regions)),
		"nation":   int64(len(nations)),
		"supplier": int64(suppliers),
		"part":     int64(parts),
		"partsupp": int64(parts * 4),
		"customer": int64(customers),
		"orders":   int64(orders),
	}
}

var _ = arrow.Int64
