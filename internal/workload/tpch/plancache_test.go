package tpch_test

import (
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
	"gofusion/internal/testutil"
	"gofusion/internal/workload/tpch"
)

// TestTPCHPlanCacheDifferential pins the plan cache's core contract on
// all 22 TPC-H queries: executing from a cached optimized logical plan
// is indistinguishable from planning fresh. Pass 1 on the caching
// session populates the cache (22 misses), pass 2 replans nothing (22
// hits), and both passes must match a cache-free session query by
// query.
func TestTPCHPlanCacheDifferential(t *testing.T) {
	const sf = 0.005
	fresh := core.NewSession(core.SessionConfig{TargetPartitions: 4})
	defer fresh.Close()
	cached := core.NewSession(core.SessionConfig{TargetPartitions: 4, EnablePlanCache: true})
	defer cached.Close()
	if err := tpch.RegisterInMemory(fresh, sf); err != nil {
		t.Fatal(err)
	}
	if err := tpch.RegisterInMemory(cached, sf); err != nil {
		t.Fatal(err)
	}

	run := func(s *core.SessionContext, n int, q string) *arrow.RecordBatch {
		t.Helper()
		df, err := s.SQL(q)
		if err != nil {
			t.Fatalf("Q%d plan: %v", n, err)
		}
		b, err := df.CollectBatch()
		if err != nil {
			t.Fatalf("Q%d exec: %v", n, err)
		}
		return b
	}

	for pass := 1; pass <= 2; pass++ {
		for n := 1; n <= 22; n++ {
			q, err := tpch.Query(n)
			if err != nil {
				t.Fatal(err)
			}
			want := run(fresh, n, q)
			got := run(cached, n, q)
			if diff := testutil.DiffBatches(got, want); diff != "" {
				t.Fatalf("Q%d pass %d: cached plan diverges from fresh plan:\n%s", n, pass, diff)
			}
		}
		pcs, ok := cached.PlanCacheStats()
		if !ok {
			t.Fatal("plan cache not enabled on caching session")
		}
		switch pass {
		case 1:
			if pcs.Hits != 0 || pcs.Misses != 22 {
				t.Fatalf("cold pass stats = %+v, want 22 misses 0 hits", pcs)
			}
		case 2:
			if pcs.Hits != 22 || pcs.Misses != 22 {
				t.Fatalf("warm pass stats = %+v, want every query served from cache", pcs)
			}
		}
	}
}
