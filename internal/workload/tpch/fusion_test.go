package tpch_test

import (
	"strings"
	"testing"

	"gofusion/internal/arrow/compute"
	"gofusion/internal/core"
	"gofusion/internal/exec"
	"gofusion/internal/physical"
	"gofusion/internal/testutil"
	"gofusion/internal/workload/tpch"
)

// TestFusedUnfusedEquality runs representative TPC-H queries with
// pipeline fusion on (the default) and off, at 1 and 4 partitions, and
// requires identical results, identical rows-returned, and clean metric
// invariants on both trees. This is the tree-equality half of the
// fusion contract: fusing is a pure execution-strategy change.
func TestFusedUnfusedEquality(t *testing.T) {
	queries := []int{1, 3, 6}
	for _, parts := range []int{1, 4} {
		fusedS := core.NewSession(core.SessionConfig{TargetPartitions: parts})
		plainS := core.NewSession(core.SessionConfig{TargetPartitions: parts, DisableFusion: true})
		for _, s := range []*core.SessionContext{fusedS, plainS} {
			if err := tpch.RegisterInMemory(s, 0.01); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range queries {
			q, err := tpch.Query(n)
			if err != nil {
				t.Fatal(err)
			}
			run := func(s *core.SessionContext) ([]testutil.Row, *core.QueryMetrics) {
				t.Helper()
				df, err := s.SQL(q)
				if err != nil {
					t.Fatalf("Q%d p%d plan: %v", n, parts, err)
				}
				batches, qm, err := df.CollectWithMetrics()
				if err != nil {
					t.Fatalf("Q%d p%d exec: %v", n, parts, err)
				}
				b, err := compute.ConcatBatches(df.Schema().ToArrow(), batches)
				if err != nil {
					t.Fatalf("Q%d p%d concat: %v", n, parts, err)
				}
				if err := exec.CheckPlanMetrics(qm.Plan, qm.RowsReturned); err != nil {
					t.Errorf("Q%d p%d metrics: %v", n, parts, err)
				}
				return testutil.NormalizeBatch(b), qm
			}
			gotFused, qmFused := run(fusedS)
			gotPlain, qmPlain := run(plainS)
			if diff := testutil.Diff(gotFused, gotPlain); diff != "" {
				t.Errorf("Q%d p%d: fused result differs from unfused:\n%s", n, parts, diff)
			}
			if qmFused.RowsReturned != qmPlain.RowsReturned {
				t.Errorf("Q%d p%d: rows returned fused=%d unfused=%d",
					n, parts, qmFused.RowsReturned, qmPlain.RowsReturned)
			}
			fr := qmFused.Plan.(physical.MetricsProvider).Metrics().OutputRows()
			pr := qmPlain.Plan.(physical.MetricsProvider).Metrics().OutputRows()
			if fr != pr {
				t.Errorf("Q%d p%d: root output_rows fused=%d unfused=%d", n, parts, fr, pr)
			}
			if !strings.Contains(exec.ExplainPhysical(qmFused.Plan), "PipelineExec") {
				t.Errorf("Q%d p%d: fused session produced no PipelineExec segment", n, parts)
			}
			if strings.Contains(exec.ExplainPhysical(qmPlain.Plan), "PipelineExec") {
				t.Errorf("Q%d p%d: DisableFusion session still fused", n, parts)
			}
		}
	}
}

// TestExplainFusedRendering pins how fused segments render in EXPLAIN
// over a GPQ-backed table: the segment line announces the morsel
// scheduler and unit count, the original operator chain stays nested
// beneath it, and EXPLAIN ANALYZE over the morsel path keeps the
// strip-equality contract from the analyze tests.
func TestExplainFusedRendering(t *testing.T) {
	dir := t.TempDir()
	// Small row groups so even sf 0.01 lineitem yields many morsel units.
	if err := tpch.WriteGPQ(dir, 0.01, 2000); err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(core.SessionConfig{TargetPartitions: 4})
	if err := tpch.RegisterGPQ(s, dir); err != nil {
		t.Fatal(err)
	}
	q, err := tpch.Query(6)
	if err != nil {
		t.Fatal(err)
	}

	df, err := s.SQL("EXPLAIN " + q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := df.CollectBatch()
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	col := b.Column(0).(interface{ Value(int) string })
	for i := 0; i < b.NumRows(); i++ {
		plan.WriteString(col.Value(i))
		plan.WriteByte('\n')
	}
	text := plan.String()
	segLine := ""
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "PipelineExec") {
			segLine = line
			break
		}
	}
	if segLine == "" {
		t.Fatalf("EXPLAIN lacks a PipelineExec segment:\n%s", text)
	}
	if !strings.Contains(segLine, "scheduler=morsel") || !strings.Contains(segLine, "units=") {
		t.Errorf("GPQ segment should be morsel-driven with a unit count: %q", segLine)
	}
	// The fused chain still renders operator-per-line under the segment
	// (Q6's filter is pushed into the GPQ scan, so the nested chain is
	// partial-agg over scan).
	for _, op := range []string{"HashAggregateExec: mode=Partial", "TableScanExec"} {
		if !strings.Contains(text, op) {
			t.Errorf("EXPLAIN lost nested operator %s:\n%s", op, text)
		}
	}

	// EXPLAIN ANALYZE over the morsel path: tree unchanged after
	// stripping metrics, every operator line carries core metrics.
	dfq, err := s.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, qm, err := dfq.CollectWithMetrics(); err != nil {
		t.Fatal(err)
	} else {
		analyzed := exec.ExplainAnalyze(qm.Plan)
		if !strings.Contains(analyzed, "scheduler=morsel") {
			t.Errorf("ANALYZE lost the morsel annotation:\n%s", analyzed)
		}
		if stripped := metricsAnnotation.ReplaceAllString(analyzed, ""); stripped != exec.ExplainPhysical(qm.Plan) {
			t.Errorf("ANALYZE tree differs from physical plan:\n%s", analyzed)
		}
		for _, line := range strings.Split(strings.TrimRight(analyzed, "\n"), "\n") {
			if !strings.Contains(line, "metrics=[") || !strings.Contains(line, "output_rows=") {
				t.Errorf("ANALYZE line lacks metrics: %q", line)
			}
		}
	}
}
