// Package cfg builds a per-function control-flow graph over go/ast for
// the gofusionlint interprocedural analyzers (internal/analysis/flow and
// the lockorder/resbalance/ctxflow checks built on it).
//
// The graph is deliberately lightweight: blocks hold the original
// *ast.Stmt nodes (atomic statements only — control statements contribute
// their condition/tag expressions to the Exprs of the block that
// evaluates them and their bodies become separate blocks), and edges
// model Go's structured control flow including labeled break/continue,
// goto, fallthrough, and early returns. Every function has one synthetic
// Exit block; return statements, panics, and calls that syntactically
// never return (os.Exit, t.Fatal) edge straight to it.
//
// Defers are NOT lowered into edges: a DeferStmt appears as an ordinary
// statement in its block, and dataflow clients accumulate deferred
// effects in their abstract state, applying them when a path reaches
// Exit. This matches how the engine uses defers (paired Unlock/Free on
// every exit) without modeling Go's full dynamic defer stack.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Block is one basic block: a maximal straight-line statement sequence.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable across builds
	// of the same function; used in dumps).
	Index int
	// Kind describes why the block exists ("entry", "exit", "if.then",
	// "for.head", "select.case", ...). Informational, for dumps and
	// debugging.
	Kind string
	// Stmts are the atomic statements executed in order. Control
	// statements (if/for/switch/...) do not appear; their init/post
	// statements land in the appropriate blocks and their condition/tag
	// expressions are recorded in Exprs.
	Stmts []ast.Stmt
	// Exprs are expressions this block evaluates that are not part of any
	// statement in Stmts: if/for conditions, switch tags, range operands,
	// select is represented by its comm statements instead. They are real
	// AST nodes, so type-info lookups work. Evaluated after Stmts.
	Exprs []ast.Expr
	// Succs are the possible next blocks. For a block ending in a
	// two-way condition (Kind "if.head"/"for.head"), Succs[0] is the
	// true edge.
	Succs []*Block
	// CommNonBlocking is set on "select.case" blocks whose select has a
	// default clause: reaching the comm statement (the block's first
	// statement) cannot park the goroutine. Lock-hold analyses use it to
	// exempt guarded non-blocking channel operations.
	CommNonBlocking bool
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks in creation order; Blocks[0] is Entry, Blocks[1] is Exit.
	// Unreachable blocks (code after a terminating statement) are
	// retained so every source statement appears in exactly one block.
	Blocks []*Block
	Entry  *Block
	// Exit is the single synthetic exit block (no statements, no
	// successors). Return statements edge to it.
	Exit *Block
}

type loopTargets struct {
	brk, cont *Block
}

// builder state for one function body.
type builder struct {
	g *CFG
	// cur is the block statements accumulate into; nil after a
	// terminating statement until a new reachable block starts.
	cur *Block
	// loops is the stack of enclosing break/continue targets; the top is
	// the innermost. Labeled entries are in labeledLoops.
	loops []loopTargets
	// labeledLoops maps a loop/switch label to its targets (cont is nil
	// for switches).
	labeledLoops map[string]loopTargets
	// labels maps label names to their statement's block for goto.
	labels map[string]*Block
	// gotos are gotos resolved after the walk (forward targets may not
	// exist yet).
	gotos []pendingGoto
	// pendingLabel is set between seeing a LabeledStmt and building its
	// statement, so loops/switches register their labeled targets.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

// New builds the CFG of a function body.
func New(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &builder{
		g:            g,
		labeledLoops: map[string]loopTargets{},
		labels:       map[string]*Block{},
	}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	b.cur = g.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, g.Exit) // fall off the end of the function
	}
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, target)
		}
		// An unresolved label is a type error; nothing to connect here.
	}
	return g
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// current returns the block to accumulate into, materializing an
// unreachable block for dead code after a terminating statement.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(s ast.Stmt) {
	blk := b.current()
	blk.Stmts = append(blk.Stmts, s)
}

func (b *builder) addExpr(e ast.Expr) {
	if e == nil {
		return
	}
	blk := b.current()
	blk.Exprs = append(blk.Exprs, e)
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.EmptyStmt:
		// no effect

	case *ast.LabeledStmt:
		// The labeled statement heads its own block so goto can target it.
		target := b.newBlock("label." + s.Label.Name)
		if b.cur != nil {
			b.edge(b.cur, target)
		}
		b.cur = target
		b.labels[s.Label.Name] = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.current()
		head.Kind = kindOr(head.Kind, "if.head")
		b.addExpr(s.Cond)
		thenBlk := b.newBlock("if.then")
		b.edge(head, thenBlk)
		b.cur = thenBlk
		b.stmts(s.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		hasElse := s.Else != nil
		if hasElse {
			elseBlk := b.newBlock("if.else")
			b.edge(head, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock("if.join")
		if !hasElse {
			b.edge(head, join) // false edge skips the then body
		}
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		if elseEnd != nil {
			b.edge(elseEnd, join)
		}
		if hasElse && thenEnd == nil && elseEnd == nil {
			// Both arms terminated: anything after is dead code.
			join.Kind = "unreachable"
			b.cur = nil
		} else {
			b.cur = join
		}

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.cur = head
		b.addExpr(s.Cond)
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, after)
		}
		cont := head
		if s.Post != nil {
			post := b.newBlock("for.post")
			post.Stmts = append(post.Stmts, s.Post)
			b.edge(post, head)
			cont = post
		}
		b.pushLoop(label, after, cont)
		b.cur = body
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.popLoop(label)
		b.cur = after

	case *ast.RangeStmt:
		// The range operand is evaluated once on entry; key/value
		// assignment per iteration is not modeled (the analyzers track
		// resources and locks, which never originate from a range).
		b.addExpr(s.X)
		head := b.newBlock("range.head")
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.edge(head, body)
		b.edge(head, after)
		b.pushLoop(label, after, head)
		b.cur = body
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.popLoop(label)
		b.cur = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.addExpr(s.Tag)
		b.cases(label, s.Body, hasDefaultCase(s.Body), false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.cases(label, s.Body, hasDefaultCase(s.Body), false)

	case *ast.SelectStmt:
		b.cases(label, s.Body, hasDefaultComm(s.Body), true)

	case *ast.ReturnStmt:
		from := b.current()
		from.Stmts = append(from.Stmts, s)
		b.edge(from, b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		from := b.cur
		b.cur = nil
		if from == nil {
			return
		}
		name := ""
		if s.Label != nil {
			name = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := b.breakTarget(name); t != nil {
				b.edge(from, t)
			}
		case token.CONTINUE:
			if t := b.continueTarget(name); t != nil {
				b.edge(from, t)
			}
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: from, label: name})
		case token.FALLTHROUGH:
			// Lowered by cases(); reaching here means a malformed tree.
		}

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isTerminalCall(call) {
			b.edge(b.cur, b.g.Exit)
			b.cur = nil
		}

	default:
		// Assign, Decl, Send, IncDec, Go, Defer: atomic.
		b.add(s)
	}
}

// cases lowers switch/type-switch/select bodies. The dispatching block
// branches to every case clause; a switch without a default also edges
// to the join (no case matched). A select without a default has no such
// edge: it blocks until some case is ready.
func (b *builder) cases(label string, body *ast.BlockStmt, hasDefault, isSelect bool) {
	head := b.current()
	if isSelect {
		head.Kind = kindOr(head.Kind, "select.head")
	} else {
		head.Kind = kindOr(head.Kind, "switch.head")
	}
	join := b.newBlock("switch.join")
	b.loops = append(b.loops, loopTargets{brk: join}) // break targets the join
	if label != "" {
		b.labeledLoops[label] = loopTargets{brk: join}
	}

	var caseEnds []*Block
	var fallFrom *Block // end of the previous case body ending in fallthrough
	for _, cs := range body.List {
		switch cs := cs.(type) {
		case *ast.CaseClause:
			blk := b.newBlock("case")
			b.edge(head, blk)
			for _, e := range cs.List {
				blk.Exprs = append(blk.Exprs, e)
			}
			if fallFrom != nil {
				b.edge(fallFrom, blk)
				fallFrom = nil
			}
			b.cur = blk
			bodyStmts := cs.Body
			fall := endsInFallthrough(bodyStmts)
			if fall {
				bodyStmts = bodyStmts[:len(bodyStmts)-1]
			}
			b.stmts(bodyStmts)
			if fall {
				b.add(cs.Body[len(cs.Body)-1]) // keep the fallthrough stmt visible
				fallFrom = b.cur
			} else if b.cur != nil {
				caseEnds = append(caseEnds, b.cur)
			}
		case *ast.CommClause:
			blk := b.newBlock("select.case")
			blk.CommNonBlocking = hasDefault
			b.edge(head, blk)
			b.cur = blk
			if cs.Comm != nil {
				b.stmt(cs.Comm)
			}
			b.stmts(cs.Body)
			if b.cur != nil {
				caseEnds = append(caseEnds, b.cur)
			}
		}
	}
	if !hasDefault && !isSelect {
		b.edge(head, join) // no case matched
	}
	for _, end := range caseEnds {
		b.edge(end, join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labeledLoops, label)
	}
	if len(join.Succs) == 0 && !blockHasPred(b.g, join) {
		join.Kind = "unreachable"
		b.cur = nil
	} else {
		b.cur = join
	}
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.loops = append(b.loops, loopTargets{brk: brk, cont: cont})
	if label != "" {
		b.labeledLoops[label] = loopTargets{brk: brk, cont: cont}
	}
}

func (b *builder) popLoop(label string) {
	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		delete(b.labeledLoops, label)
	}
}

func (b *builder) breakTarget(label string) *Block {
	if label != "" {
		return b.labeledLoops[label].brk
	}
	if len(b.loops) == 0 {
		return nil
	}
	return b.loops[len(b.loops)-1].brk
}

func (b *builder) continueTarget(label string) *Block {
	if label != "" {
		return b.labeledLoops[label].cont
	}
	// The innermost *loop*: switch/select entries have cont==nil.
	for i := len(b.loops) - 1; i >= 0; i-- {
		if b.loops[i].cont != nil {
			return b.loops[i].cont
		}
	}
	return nil
}

func blockHasPred(g *CFG, blk *Block) bool {
	for _, other := range g.Blocks {
		if other == blk {
			continue
		}
		for _, s := range other.Succs {
			if s == blk {
				return true
			}
		}
	}
	return false
}

func kindOr(existing, kind string) string {
	if existing == "entry" || existing == "exit" || strings.HasPrefix(existing, "label.") {
		return existing
	}
	return kind
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func hasDefaultComm(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func endsInFallthrough(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	bs, ok := stmts[len(stmts)-1].(*ast.BranchStmt)
	return ok && bs.Tok == token.FALLTHROUGH
}

// isTerminalCall reports whether the call never returns: panic, os.Exit,
// runtime.Goexit, and the testing/log Fatal helpers. Purely syntactic
// (the builder has no type info); flow clients with type info may refine.
func isTerminalCall(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Goexit":
			return true
		}
	}
	return false
}

// Reachable returns the set of blocks reachable from Entry.
func (g *CFG) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

// RPO returns the reachable blocks in reverse post-order (predecessors
// generally before successors), the natural iteration order for forward
// dataflow.
func (g *CFG) RPO() []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var walk func(b *Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		post = append(post, b)
	}
	walk(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dump renders the graph for golden tests: one line per block in index
// order, statements summarized position-free.
func (g *CFG) Dump() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s:", blk.Index, blk.Kind)
		for _, s := range blk.Stmts {
			fmt.Fprintf(&sb, " [%s]", stmtLabel(s))
		}
		for _, e := range blk.Exprs {
			fmt.Fprintf(&sb, " (%s)", exprLabel(e))
		}
		if len(blk.Succs) > 0 {
			succs := make([]string, len(blk.Succs))
			for i, s := range blk.Succs {
				succs[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, " -> %s", strings.Join(succs, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func stmtLabel(s ast.Stmt) string {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return "assign " + exprList(s.Lhs)
	case *ast.ExprStmt:
		return exprLabel(s.X)
	case *ast.ReturnStmt:
		return "return"
	case *ast.DeferStmt:
		return "defer " + exprLabel(s.Call)
	case *ast.GoStmt:
		return "go " + exprLabel(s.Call)
	case *ast.SendStmt:
		return "send " + exprLabel(s.Chan)
	case *ast.IncDecStmt:
		return "incdec " + exprLabel(s.X)
	case *ast.DeclStmt:
		return "decl"
	case *ast.BranchStmt:
		if s.Label != nil {
			return s.Tok.String() + " " + s.Label.Name
		}
		return s.Tok.String()
	}
	return fmt.Sprintf("%T", s)
}

func exprList(es []ast.Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = exprLabel(e)
	}
	return strings.Join(parts, ",")
}

func exprLabel(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprLabel(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprLabel(e.Fun) + "()"
	case *ast.ParenExpr:
		return exprLabel(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprLabel(e.X)
	case *ast.BinaryExpr:
		return exprLabel(e.X) + e.Op.String() + exprLabel(e.Y)
	case *ast.BasicLit:
		return e.Value
	case *ast.IndexExpr:
		return exprLabel(e.X) + "[]"
	case *ast.TypeAssertExpr:
		return exprLabel(e.X) + ".(T)"
	case *ast.StarExpr:
		return "*" + exprLabel(e.X)
	}
	return "expr"
}

// Stmts returns every atomic statement recorded in the graph in source
// order — the self-check tests compare this against an AST walk.
func (g *CFG) Stmts() []ast.Stmt {
	var out []ast.Stmt
	for _, b := range g.Blocks {
		out = append(out, b.Stmts...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
