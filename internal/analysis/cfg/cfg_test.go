package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math/rand"
	"strings"
	"testing"
)

// build parses src as a function body and returns its CFG.
func build(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fn := f.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// Golden dumps pin the lowering of the shapes the interprocedural
// analyzers depend on: defers staying in-block, early returns edging to
// exit, labeled break/continue, fallthrough, select, goto.
func TestDumpGolden(t *testing.T) {
	cases := []struct {
		name, body, want string
	}{
		{
			name: "defer_early_return",
			body: `
mu.Lock()
defer mu.Unlock()
if err != nil {
	return
}
work()`,
			want: `b0 entry: [mu.Lock()] [defer mu.Unlock()] (err!=nil) -> b2 b3
b1 exit:
b2 if.then: [return] -> b1
b3 if.join: [work()] -> b1
`,
		},
		{
			name: "labeled_break_continue",
			body: `
outer:
for i := 0; i < n; i++ {
	for {
		if a {
			continue outer
		}
		if b {
			break outer
		}
		step()
	}
}
done()`,
			want: `b0 entry: -> b2
b1 exit:
b2 label.outer: [assign i] -> b3
b3 for.head: (i<n) -> b4 b5
b4 for.body: -> b7
b5 for.after: [done()] -> b1
b6 for.post: [incdec i] -> b3
b7 for.head: -> b8
b8 if.head: (a) -> b10 b11
b9 for.after: -> b6
b10 if.then: [continue outer] -> b6
b11 if.head: (b) -> b12 b13
b12 if.then: [break outer] -> b5
b13 if.join: [step()] -> b7
`,
		},
		{
			name: "switch_fallthrough",
			body: `
switch x {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	c()
}
after()`,
			want: `b0 entry: (x) -> b3 b4 b5
b1 exit:
b2 switch.join: [after()] -> b1
b3 case: [a()] [fallthrough] (1) -> b4
b4 case: [b()] (2) -> b2
b5 case: [c()] -> b2
`,
		},
		{
			name: "select_no_default_blocks",
			body: `
select {
case ch <- v:
	sent()
case <-done:
	return
}
after()`,
			want: `b0 entry: -> b3 b4
b1 exit:
b2 switch.join: [after()] -> b1
b3 select.case: [send ch] [sent()] -> b2
b4 select.case: [<-done] [return] -> b1
`,
		},
		{
			name: "range_loop",
			body: `
for _, v := range xs {
	use(v)
}
end()`,
			want: `b0 entry: (xs) -> b2
b1 exit:
b2 range.head: -> b3 b4
b3 range.body: [use()] -> b2
b4 range.after: [end()] -> b1
`,
		},
		{
			name: "goto_backward",
			body: `
retry:
x = f()
if bad {
	goto retry
}
ok()`,
			want: `b0 entry: -> b2
b1 exit:
b2 label.retry: [assign x] (bad) -> b3 b4
b3 if.then: [goto retry] -> b2
b4 if.join: [ok()] -> b1
`, // label kind survives the if lowering so goto targets stay visible
		},
		{
			name: "dead_code_after_return",
			body: `
return
dead()`,
			want: `b0 entry: [return] -> b1
b1 exit:
b2 unreachable: [dead()] -> b1
`,
		},
		{
			name: "terminal_panic",
			body: `
if bad {
	panic("x")
}
ok()`,
			want: `b0 entry: (bad) -> b2 b3
b1 exit:
b2 if.then: [panic()] -> b1
b3 if.join: [ok()] -> b1
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := build(t, tc.body).Dump()
			if got != tc.want {
				t.Errorf("dump mismatch:\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

func TestExitHasNoSuccessors(t *testing.T) {
	g := build(t, "x = 1\nreturn")
	if len(g.Exit.Succs) != 0 {
		t.Fatalf("exit block has successors: %v", g.Exit.Succs)
	}
	if g.Blocks[0] != g.Entry || g.Blocks[1] != g.Exit {
		t.Fatalf("entry/exit not at fixed indexes")
	}
}

// genStmts emits a random but always-valid statement list. loopDepth
// tracks whether break/continue are legal; labels holds active loop
// labels for labeled branches.
type gen struct {
	rng    *rand.Rand
	sb     *strings.Builder
	depth  int
	loops  int
	labels []string
	nlabel int
}

func (g *gen) stmts(n int) {
	for i := 0; i < n; i++ {
		g.stmt()
	}
}

func (g *gen) stmt() {
	if g.depth > 4 {
		fmt.Fprintln(g.sb, "x++")
		return
	}
	switch g.rng.Intn(12) {
	case 0, 1, 2:
		fmt.Fprintln(g.sb, "x++")
	case 3:
		fmt.Fprintln(g.sb, "x = x + 1")
	case 4:
		fmt.Fprintln(g.sb, "if x > 0 {")
		g.nested(1 + g.rng.Intn(2))
		if g.rng.Intn(2) == 0 {
			fmt.Fprintln(g.sb, "} else {")
			g.nested(1 + g.rng.Intn(2))
		}
		fmt.Fprintln(g.sb, "}")
	case 5:
		fmt.Fprintln(g.sb, "for x < 10 {")
		g.loops++
		g.nested(1 + g.rng.Intn(2))
		g.loops--
		fmt.Fprintln(g.sb, "}")
	case 6:
		label := ""
		if g.rng.Intn(2) == 0 {
			g.nlabel++
			label = fmt.Sprintf("l%d", g.nlabel)
			fmt.Fprintf(g.sb, "%s:\n", label)
			g.labels = append(g.labels, label)
		}
		fmt.Fprintln(g.sb, "for i := 0; i < 3; i++ {")
		g.loops++
		g.nested(1 + g.rng.Intn(2))
		g.loops--
		fmt.Fprintln(g.sb, "}")
		if label != "" {
			g.labels = g.labels[:len(g.labels)-1]
		}
	case 7:
		fmt.Fprintln(g.sb, "switch x {")
		ncase := 1 + g.rng.Intn(2)
		for i := 0; i < ncase; i++ {
			fmt.Fprintf(g.sb, "case %d:\n", i)
			g.nested(1)
		}
		if g.rng.Intn(2) == 0 {
			fmt.Fprintln(g.sb, "default:")
			g.nested(1)
		}
		fmt.Fprintln(g.sb, "}")
	case 8:
		if g.loops > 0 {
			if len(g.labels) > 0 && g.rng.Intn(2) == 0 {
				fmt.Fprintf(g.sb, "break %s\n", g.labels[len(g.labels)-1])
			} else {
				fmt.Fprintln(g.sb, "break")
			}
		} else {
			fmt.Fprintln(g.sb, "x--")
		}
	case 9:
		if g.loops > 0 {
			if len(g.labels) > 0 && g.rng.Intn(2) == 0 {
				fmt.Fprintf(g.sb, "continue %s\n", g.labels[len(g.labels)-1])
			} else {
				fmt.Fprintln(g.sb, "continue")
			}
		} else {
			fmt.Fprintln(g.sb, "x--")
		}
	case 10:
		fmt.Fprintln(g.sb, "return")
	case 11:
		fmt.Fprintln(g.sb, "for range xs {")
		g.loops++
		g.nested(1 + g.rng.Intn(2))
		g.loops--
		fmt.Fprintln(g.sb, "}")
	}
}

func (g *gen) nested(n int) {
	g.depth++
	g.stmts(n)
	g.depth--
}

// countAtomic mirrors the builder's notion of an atomic statement: walks
// the body counting every statement that lands in some block (control
// statements contribute their init/post/assign parts).
func countAtomic(list []ast.Stmt) int {
	n := 0
	for _, s := range list {
		n += atomicIn(s)
	}
	return n
}

func atomicIn(s ast.Stmt) int {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return countAtomic(s.List)
	case *ast.EmptyStmt:
		return 0
	case *ast.LabeledStmt:
		return atomicIn(s.Stmt)
	case *ast.IfStmt:
		n := countAtomic(s.Body.List)
		if s.Init != nil {
			n++
		}
		if s.Else != nil {
			n += atomicIn(s.Else)
		}
		return n
	case *ast.ForStmt:
		n := countAtomic(s.Body.List)
		if s.Init != nil {
			n++
		}
		if s.Post != nil {
			n++
		}
		return n
	case *ast.RangeStmt:
		return countAtomic(s.Body.List)
	case *ast.SwitchStmt:
		n := 0
		if s.Init != nil {
			n++
		}
		for _, cs := range s.Body.List {
			n += countAtomic(cs.(*ast.CaseClause).Body)
		}
		return n
	case *ast.TypeSwitchStmt:
		n := 1 // the assign
		if s.Init != nil {
			n++
		}
		for _, cs := range s.Body.List {
			n += countAtomic(cs.(*ast.CaseClause).Body)
		}
		return n
	case *ast.SelectStmt:
		n := 0
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			if cc.Comm != nil {
				n += atomicIn(cc.Comm)
			}
			n += countAtomic(cc.Body)
		}
		return n
	default:
		return 1
	}
}

// TestRandomizedSelfCheck builds CFGs for seeded random function bodies
// and checks the structural invariants every client relies on: each
// atomic statement lands in exactly one block, statement-bearing blocks
// flow somewhere, the exit is terminal, and RPO covers exactly the
// reachable set.
func TestRandomizedSelfCheck(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		g := &gen{rng: rng, sb: &sb}
		g.stmts(3 + rng.Intn(5))
		body := sb.String()

		src := "package p\nfunc f() {\nvar x int\nvar xs []int\n_ = x\n_ = xs\n" + body + "\n}\n"
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "f.go", src, 0)
		if err != nil {
			t.Fatalf("seed %d: generated invalid source: %v\n%s", seed, err, src)
		}
		fn := f.Decls[0].(*ast.FuncDecl)
		cfgGraph := New(fn.Body)

		// 1. Every atomic statement appears in exactly one block.
		seen := map[ast.Stmt]int{}
		total := 0
		for _, blk := range cfgGraph.Blocks {
			for _, s := range blk.Stmts {
				seen[s]++
				total++
			}
		}
		for s, n := range seen {
			if n != 1 {
				t.Fatalf("seed %d: statement at %v appears in %d blocks\n%s",
					seed, fset.Position(s.Pos()), n, cfgGraph.Dump())
			}
		}
		wantAtomic := countAtomic(fn.Body.List)
		if total != wantAtomic {
			t.Fatalf("seed %d: CFG records %d atomic statements, AST has %d\n%s\n%s",
				seed, total, wantAtomic, src, cfgGraph.Dump())
		}

		// 2. Every statement-bearing block flows somewhere (the exit is
		// the only legitimate dead end).
		for _, blk := range cfgGraph.Blocks {
			if blk == cfgGraph.Exit {
				continue
			}
			if len(blk.Stmts) > 0 && len(blk.Succs) == 0 {
				t.Fatalf("seed %d: block b%d holds statements but has no successors\n%s",
					seed, blk.Index, cfgGraph.Dump())
			}
		}
		if len(cfgGraph.Exit.Succs) != 0 {
			t.Fatalf("seed %d: exit has successors", seed)
		}

		// 3. RPO enumerates exactly the reachable set, entry first.
		reach := cfgGraph.Reachable()
		rpo := cfgGraph.RPO()
		if len(rpo) != len(reach) {
			t.Fatalf("seed %d: RPO has %d blocks, reachable set has %d", seed, len(rpo), len(reach))
		}
		if rpo[0] != cfgGraph.Entry {
			t.Fatalf("seed %d: RPO does not start at entry", seed)
		}
		for _, blk := range rpo {
			if !reach[blk] {
				t.Fatalf("seed %d: RPO contains unreachable block b%d", seed, blk.Index)
			}
		}
	}
}
