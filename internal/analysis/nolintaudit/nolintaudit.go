// Package nolintaudit keeps the suppression escape hatch honest. A
// //nolint directive is a standing claim that a finding on its line is
// acceptable; the audit enforces two properties on every such claim:
//
//   - It must say why: the directive needs a "// reason: ..." trailer,
//     so the justification is reviewed with the code rather than lost
//     in a commit message.
//   - It must still be true: a directive naming an analyzer that ran
//     but suppressed nothing is stale — the code was fixed, the finding
//     moved, or the name was misspelled — and silently widens the blind
//     spot for future findings on that line. Stale directives are
//     flagged for removal.
//
// Staleness is defined by what the other analyzers actually reported,
// so the audit runs inside the driver (analysis.RunAnalyzers) after all
// of them; this Analyzer is the marker that turns it on and gives it a
// -nolintaudit flag like any other check.
package nolintaudit

import "gofusion/internal/analysis"

// Analyzer enables the //nolint audit in the driver.
var Analyzer = &analysis.Analyzer{
	Name: analysis.NolintAuditName,
	Doc: "audit //nolint directives for a reason trailer and staleness\n\n" +
		"every //nolint:<name> needs a \" // reason: ...\" trailer, and must\n" +
		"suppress a live finding of an analyzer that ran; stale or\n" +
		"unjustified directives are flagged for removal.",
	Run: func(*analysis.Pass) error { return nil },
}
