package nolintaudit_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/nolintaudit"
)

const src = `package p

func bad() int  { return 1 }
func bad2() int { return 2 } //nolint:dummy // reason: pinned by the harness
func bad3() int { return 3 } //nolint:dummy
//nolint:dummy // reason: covers the next line
func bad4() int { return 4 }
func ok() int   { return 0 } //nolint:dummy // reason: nothing to suppress here, stale
func ok2() int  { return 0 } //nolint:all // reason: suppresses nothing either
func ok3() int  { return 0 } //nolint: // reason: names nobody
func ok4() int  { return 0 } //nolint:other // reason: other did not run, not auditable
`

// dummy flags every function whose name starts with "bad".
var dummy = &analysis.Analyzer{
	Name: "dummy",
	Doc:  "flag bad functions",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fn.Name.Name, "bad") {
					pass.Reportf(fn.Pos(), "bad function")
				}
			}
		}
		return nil
	},
}

func TestNolintAudit(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Error: func(error) {}}
	pkg, _ := conf.Check("p", fset, []*ast.File{f}, info)

	diags, err := analysis.RunAnalyzers(
		[]*analysis.Analyzer{dummy, nolintaudit.Analyzer},
		fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}

	type wantDiag struct {
		line int
		sub  string
	}
	wants := []wantDiag{
		{3, "bad function"},                     // unsuppressed dummy finding
		{5, "no justification"},                 // suppression without a reason trailer
		{8, "nolint:dummy suppresses no dummy"}, // stale: nothing to suppress
		{9, "nolint:all suppresses no finding"}, // stale all
		{10, "names no analyzer"},               // empty name list
	}
	// Line 4 (reasoned suppression), lines 6/7 (own-line directive
	// covering the next line), and line 11 (naming an analyzer that did
	// not run) must produce nothing.
	if len(diags) != len(wants) {
		for _, d := range diags {
			t.Logf("got: %s: %s", fset.Position(d.Pos), d.Message)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(wants))
	}
	for i, w := range wants {
		pos := fset.Position(diags[i].Pos)
		if pos.Line != w.line || !strings.Contains(diags[i].Message, w.sub) {
			t.Errorf("diag %d: got line %d %q, want line %d containing %q",
				i, pos.Line, diags[i].Message, w.line, w.sub)
		}
	}
}
