// Package atomicfield enforces the engine's metrics concurrency
// discipline (physical.MetricsSet / OpMetrics / catalog.ScanRuntime are
// updated lock-free from every partition stream):
//
//  1. A struct field whose type is a sync/atomic wrapper (atomic.Int64,
//     atomic.Bool, ...) may only be used as a method-call receiver
//     (f.Load(), f.Add(n)) or have its address taken (&f, for helpers
//     like atomicMax). Copying the wrapper value reads the counter
//     non-atomically and detaches it from the shared instance.
//
//  2. A plain integer field that is anywhere accessed through a
//     sync/atomic function (atomic.AddInt64(&x.f, ...)) is an "atomic
//     field" for the whole package: every other access must also go
//     through sync/atomic. Mixed plain/atomic access is a data race the
//     race detector only observes under contention.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/fusion"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc: "check that atomic metrics fields are only accessed atomically\n\n" +
		"sync/atomic-typed fields may only be method receivers or have their\n" +
		"address taken; plain fields touched via sync/atomic functions must be\n" +
		"accessed that way everywhere in the package.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: find plain fields that are the target of a sync/atomic
	// call anywhere in this package: atomic.AddInt64(&x.f, ...).
	atomicallyUsed := map[*types.Var]bool{}
	// Selector expressions that appear as &x.f arguments of sync/atomic
	// calls (legal contexts for rule 2).
	legalAtomicArg := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !fusion.IsAtomicFunc(fusion.CalleeObj(pass.TypesInfo, call)) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fld := fusion.FieldOf(pass.TypesInfo, sel); fld != nil {
					atomicallyUsed[fld] = true
					legalAtomicArg[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag illegal accesses. Walk with an explicit parent chain
	// so each selector knows its immediate context.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fusion.FieldOf(pass.TypesInfo, sel)
			if fld == nil {
				return true
			}
			if fusion.IsAtomicType(fld.Type()) {
				if !atomicWrapperContextOK(stack) {
					pass.Reportf(sel.Pos(),
						"field %s has atomic type %s and must be used only as a method receiver or via &%s; copying it is a race",
						fld.Name(), fld.Type(), fld.Name())
				}
				return true
			}
			if atomicallyUsed[fld] && !legalAtomicArg[sel] {
				pass.Reportf(sel.Pos(),
					"field %s is updated with sync/atomic elsewhere in this package; this plain access races with those updates",
					fld.Name())
			}
			return true
		})
	}
	return nil
}

// atomicWrapperContextOK reports whether the selector at the top of the
// stack is in a legal context for an atomic-wrapper field: the receiver
// part of a method call (x.f.Load()), or an address-of operand (&x.f).
// The stack is [... parent2 parent1 selector].
func atomicWrapperContextOK(stack []ast.Node) bool {
	sel := stack[len(stack)-1].(*ast.SelectorExpr)
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.UnaryExpr:
			return p.Op == token.AND
		case *ast.SelectorExpr:
			// x.f.Load — the atomic selector is the X of a method
			// selector; require the enclosing node to call it.
			if p.X != sel && !isParenOf(p.X, sel) {
				return false
			}
			// Continue upward: the next parent must be a CallExpr using
			// p as its Fun.
			if i-1 >= 0 {
				if call, ok := stack[i-1].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
					return true
				}
			}
			// Method value (x.f.Load passed around) still binds the
			// receiver by pointer only if addressable; allow it.
			return true
		default:
			return false
		}
	}
	return false
}

func isParenOf(outer, inner ast.Expr) bool {
	return ast.Unparen(outer) == inner
}
