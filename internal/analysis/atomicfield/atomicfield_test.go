package atomicfield_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/atomicfield"
)

func TestAtomicField(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfield.Analyzer, "a")
}
