package a

import "sync/atomic"

type metrics struct {
	rows  atomic.Int64
	plain int64
	mixed int64
}

func atomicMax(v *atomic.Int64, n int64) {
	for {
		cur := v.Load()
		if n <= cur || v.CompareAndSwap(cur, n) {
			return
		}
	}
}

func good(m *metrics) int64 {
	m.rows.Add(1)
	v := m.rows.Load()
	atomicMax(&m.rows, 7)
	return v
}

func badCopy(m *metrics) {
	c := m.rows // want `copying it is a race`
	_ = c
}

func touchAtomically(m *metrics) {
	atomic.AddInt64(&m.mixed, 1)
}

func badPlainAccess(m *metrics) int64 {
	m.mixed++      // want `this plain access races with those updates`
	return m.mixed // want `this plain access races with those updates`
}

func plainOnlyOK(m *metrics) int64 {
	m.plain++
	return m.plain
}
