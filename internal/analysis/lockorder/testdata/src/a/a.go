// Package a seeds the lockorder golden suite. The shapes mirror the
// engine's real locking structure: a Server with an outermost writer
// mutex and an inner session mutex, a leaf memory Pool, and a pair of
// caches with a deliberately inconsistent acquisition order. The test
// registers Server.writeMu/Server.mu/Pool.mu in the rank table with the
// same relative ranks the engine policy uses.
package a

import (
	"sync"

	"gofusion/internal/exec"
	"gofusion/internal/physical"
)

type Server struct {
	writeMu sync.Mutex
	mu      sync.Mutex
	pool    *Pool
}

type Pool struct {
	mu   sync.Mutex
	used int
}

type Cache struct{ mu sync.Mutex }
type Table struct{ mu sync.Mutex }

// Correct nesting: writeMu, then mu, then the pool leaf — the engine's
// write path. The pool acquisition happens inside a callee; the edges
// writeMu -> Pool.mu and mu -> Pool.mu come from its summary.
func (s *Server) writePath() {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.reserve(1)
}

func (p *Pool) reserve(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.used += n
}

// Rank violation: the pool leaf is held while taking the outermost
// writer mutex.
func (s *Server) inverted(p *Pool) {
	p.mu.Lock()
	s.writeMu.Lock() // want `lock order requires Server.writeMu \(rank 10\) before Pool.mu \(rank 70\)`
	s.writeMu.Unlock()
	p.mu.Unlock()
}

// Lock/unlock helper pair: callers see netHeld/netReleased summaries.
func (s *Server) lockSessions()   { s.mu.Lock() }
func (s *Server) unlockSessions() { s.mu.Unlock() }

// Interprocedural rank violation: the session mutex is acquired through
// a helper while the pool leaf is held.
func helperInverted(s *Server, p *Pool) {
	p.mu.Lock()
	s.lockSessions() // want `lock order requires Server.mu \(rank 20\) before Pool.mu \(rank 70\)`
	s.unlockSessions()
	p.mu.Unlock()
}

// Seeded lock-order cycle: one path takes Cache before Table, the other
// Table before Cache. Neither class is ranked, so only cycle detection
// can catch this.
func cacheThenTable(c *Cache, t *Table) {
	c.mu.Lock()
	t.mu.Lock() // want `lock-order cycle \(potential deadlock\) among Cache.mu, Table.mu`
	t.mu.Unlock()
	c.mu.Unlock()
}

func tableThenCache(c *Cache, t *Table) {
	t.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	t.mu.Unlock()
}

// Two instances of one class nested: instance order is unspecified, so
// this can deadlock against another goroutine nesting them the other
// way around.
func nestedSameClass(a, b *Pool) {
	a.mu.Lock()
	b.mu.Lock() // want `nested acquisition of Pool.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

// Blocking operations under a held mutex.

func sendWhileHeld(s *Server, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want `channel send while holding Server.mu`
	s.mu.Unlock()
}

func recvWhileHeld(s *Server, ch chan int) {
	s.mu.Lock()
	<-ch // want `channel receive while holding Server.mu`
	s.mu.Unlock()
}

func rangeWhileHeld(s *Server, ch chan int) {
	s.mu.Lock()
	for v := range ch { // want `channel receive \(range\) while holding Server.mu`
		_ = v
	}
	s.mu.Unlock()
}

func selectWhileHeld(s *Server, a, b chan int) {
	s.mu.Lock()
	select {
	case <-a: // want `blocking select while holding Server.mu`
	case <-b: // want `blocking select while holding Server.mu`
	}
	s.mu.Unlock()
}

// A select with a default clause cannot park: exempt.
func nonBlockingSendOK(s *Server, ch chan int) {
	s.mu.Lock()
	select {
	case ch <- 1:
	default:
	}
	s.mu.Unlock()
}

func waitWhileHeld(s *Server, wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want `sync.WaitGroup.Wait while holding Server.mu`
	s.mu.Unlock()
}

// Full-result materialization drives the whole plan, including worker
// goroutines that may need the held lock.
func collectWhileHeld(s *Server, ctx *physical.ExecContext, plan physical.ExecutionPlan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = exec.CollectPlan(ctx, plan) // want `CollectPlan \(full result materialization\) while holding Server.mu`
}

// Blocking through a same-package callee: the summary carries the
// parking operation up to the call site.
func blockingHelper(ch chan int) { <-ch }

func callsBlockingWhileHeld(s *Server, ch chan int) {
	s.mu.Lock()
	blockingHelper(ch) // want `call to blockingHelper \(channel receive\) while holding Server.mu`
	s.mu.Unlock()
}

// Negative cases: helpers that transfer lock ownership must not leave
// phantom held state behind.

func deferOK(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pool.used
}

func afterDeferOK(s *Server, ch chan int) {
	_ = deferOK(s)
	<-ch // deferOK released via defer: nothing held here
}

func helperPairOK(s *Server, ch chan int) {
	s.lockSessions()
	s.unlockSessions()
	<-ch // helper released the lock: nothing held here
}

func helperLockHeld(s *Server, ch chan int) {
	s.lockSessions()
	<-ch // want `channel receive while holding Server.mu`
	s.unlockSessions()
}

// Goroutine bodies run concurrently with their own empty held set: the
// send inside the literal is not "under" the caller's lock (and the
// literal itself holds nothing).
func goroutineOK(s *Server, ch chan int) {
	s.mu.Lock()
	go func() {
		ch <- 1
	}()
	s.mu.Unlock()
}

// Branch join: the lock is held on only one arm, so the must-held set
// at the join is empty and the receive is clean.
func branchJoinOK(s *Server, ch chan int, cond bool) {
	if cond {
		s.mu.Lock()
		s.pool.used++
		s.mu.Unlock()
	}
	<-ch
}
