package lockorder

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
)

func TestLockOrder(t *testing.T) {
	// The testdata package mirrors the engine's locking structure under
	// its own names; register them in the rank table with the engine's
	// relative ranks so the policy check is exercised end to end.
	seed := map[string]int{
		"a.Server.writeMu": 10,
		"a.Server.mu":      20,
		"a.Pool.mu":        70,
	}
	for k, v := range seed {
		Ranks[k] = v
	}
	defer func() {
		for k := range seed {
			delete(Ranks, k)
		}
	}()
	analysistest.Run(t, analysistest.TestData(), Analyzer, "a")
}
