// Package lockorder checks the engine's mutex discipline three ways:
//
//  1. It builds the package's lock-acquisition-order graph — an edge
//     L -> M for every site that acquires lock class M while holding L,
//     including acquisitions performed by (transitively called)
//     same-package functions — and diagnoses cycles as potential
//     deadlocks.
//  2. It checks every edge against the engine-wide lock-order policy
//     (Ranks): the server's writer mutex is outermost, then the server
//     session maps, then the core plan cache, the catalog, and finally
//     the memory pools, which are leaves. Acquiring a lower-ranked
//     (outer) lock while holding a higher-ranked (inner) one is a
//     violation even when the opposite edge is not in this package —
//     that is how a per-package analysis enforces a global order.
//  3. It flags operations that can park the goroutine while a mutex is
//     held: channel sends/receives (outside a select with a default),
//     selects, sync.WaitGroup.Wait, and calls to Collect*-style
//     full-result materialization — each can wait on work that needs
//     the very lock being held.
//
// Lock classes are (named type, field) pairs ("server.Server.writeMu")
// or package-level variables; distinct instances of one class share a
// class, so nesting two instances of the same class is reported too
// (instance order is unspecified without an explicit coupling rule).
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/cfg"
	"gofusion/internal/analysis/flow"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check lock acquisition order and blocking operations under locks\n\n" +
		"builds the package lock-order graph (interprocedurally, via\n" +
		"function summaries), diagnoses cycles and violations of the engine\n" +
		"lock-rank policy, and flags channel operations or Collect* calls\n" +
		"performed while a mutex is held.",
	Run: run,
}

// Ranks is the engine-wide lock-order policy: locks must be acquired in
// ascending rank. Lower rank = outer lock. Classes with equal rank have
// no prescribed order between them (they should never nest). The table
// is exported so tests and DESIGN.md stay in sync with the checker.
var Ranks = map[string]int{
	// Server: the writer mutex serializes catalog mutations and is taken
	// before anything else; the session map and per-session state nest
	// inside it.
	"gofusion/internal/server.Server.writeMu":  10,
	"gofusion/internal/server.Server.mu":       20,
	"gofusion/internal/server.sessionState.mu": 30,
	// Core caches sit below the service layer and above storage.
	"gofusion/internal/core.planCache.mu": 40,
	// Catalog: catalog before schema before table providers.
	"gofusion/internal/catalog.MemoryCatalog.mu": 50,
	"gofusion/internal/catalog.MemorySchema.mu":  52,
	"gofusion/internal/catalog.StreamTable.mu":   54,
	// Memory layer: the shared cache takes its own lock, then charges a
	// pool; child pools charge parents. Plain pools are leaves.
	"gofusion/internal/memory.SizedLRU.mu":      60,
	"gofusion/internal/memory.LRU.mu":           60,
	"gofusion/internal/memory.ChildPool.mu":     65,
	"gofusion/internal/memory.UnboundedPool.mu": 70,
	"gofusion/internal/memory.GreedyPool.mu":    70,
	"gofusion/internal/memory.FairPool.mu":      70,
	"gofusion/internal/memory.DiskManager.mu":   70,
}

// lockClass identifies one lock in diagnostics and the order graph.
type lockClass struct {
	key  string // canonical "pkgpath.Type.field" / "pkgpath.var" / "local:..." id
	disp string // short display name
}

// edge is one observed ordering: to was acquired while from was held.
type edge struct{ from, to string }

type checker struct {
	pass *analysis.Pass
	pkg  *flow.Pkg

	summaries map[*types.Func]*summary

	edges    map[edge]token.Pos  // witness: the acquisition site of edge.to
	disp     map[string]string   // class key -> display name
	findings map[string]findRec  // dedup across fixpoint revisits
	reported map[string]struct{} // cycle/violation dedup
}

type findRec struct {
	pos token.Pos
	msg string
}

// summary is one function's lock behaviour as seen by its callers.
type summary struct {
	// acquires: classes the function may acquire anywhere inside
	// (transitively), with a witness position. Callers add order edges
	// from every lock they hold at the call site.
	acquires map[string]token.Pos
	// netHeld: classes held on return (lock-helper wrappers).
	netHeld map[string]token.Pos
	// netReleased: classes released on return without being acquired
	// inside (unlock-helper wrappers).
	netReleased map[string]bool
	// blocking describes a parking operation reachable inside (not
	// counting mutex acquisition itself); empty when none.
	blocking string
}

func (s *summary) equal(o *summary) bool {
	if o == nil {
		return false
	}
	return len(s.acquires) == len(o.acquires) &&
		len(s.netHeld) == len(o.netHeld) &&
		len(s.netReleased) == len(o.netReleased) &&
		s.blocking == o.blocking
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		pkg:       flow.NewPkg(pass),
		summaries: map[*types.Func]*summary{},
		edges:     map[edge]token.Pos{},
		disp:      map[string]string{},
		findings:  map[string]findRec{},
		reported:  map[string]struct{}{},
	}
	c.pkg.BottomUp(func(fi *flow.FuncInfo) bool {
		s := c.analyze(fi)
		prev := c.summaries[fi.Obj]
		c.summaries[fi.Obj] = s
		return !s.equal(prev)
	})
	// Function literals (goroutine bodies, callbacks) run with an empty
	// held set of their own.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.analyzeBody(cfg.New(lit.Body), nil, nil)
			}
			return true
		})
	}

	for _, fr := range sortedFindings(c.findings) {
		pass.Reportf(fr.pos, "%s", fr.msg)
	}
	c.reportPolicyViolations()
	c.reportCycles()
	return nil
}

// lockState is the dataflow fact: the set of lock classes currently
// held (must-analysis) and the unlocks deferred to function exit.
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockState() lockState {
	return lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

func (s lockState) clone() lockState {
	c := newLockState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k := range s.deferred {
		c.deferred[k] = true
	}
	return c
}

func lockMerge(a, b lockState) lockState {
	// Must-held: intersection. Deferred unlocks: union (any path that
	// registered the defer will run it).
	m := newLockState()
	for k, v := range a.held {
		if _, ok := b.held[k]; ok {
			m.held[k] = v
		}
	}
	for k := range a.deferred {
		m.deferred[k] = true
	}
	for k := range b.deferred {
		m.deferred[k] = true
	}
	return m
}

func lockEqual(a, b lockState) bool {
	if len(a.held) != len(b.held) || len(a.deferred) != len(b.deferred) {
		return false
	}
	for k := range a.held {
		if _, ok := b.held[k]; !ok {
			return false
		}
	}
	for k := range a.deferred {
		if !b.deferred[k] {
			return false
		}
	}
	return true
}

// analyze runs the lock dataflow over one declared function and distills
// its summary.
func (c *checker) analyze(fi *flow.FuncInfo) *summary {
	s := &summary{
		acquires:    map[string]token.Pos{},
		netHeld:     map[string]token.Pos{},
		netReleased: map[string]bool{},
	}
	c.analyzeBody(fi.Graph, s, fi)
	return s
}

// analyzeBody walks g with the lock dataflow. When s is non-nil the
// function's summary is filled in (declared functions); function
// literals pass nil and only produce diagnostics.
func (c *checker) analyzeBody(g *cfg.CFG, s *summary, fi *flow.FuncInfo) {
	released := map[string]bool{} // classes unlocked while not held (unlock helpers)

	transfer := func(b *cfg.Block, in lockState) lockState {
		st := in.clone()
		for i, stmt := range b.Stmts {
			c.stmtEffect(b, i, stmt, &st, s, released)
		}
		for _, e := range b.Exprs {
			c.exprEffect(e, &st, s)
		}
		return st
	}
	in := flow.Forward(g, newLockState(), transfer, lockMerge, lockEqual)

	if s == nil {
		return
	}
	// Distill the exit state: held minus deferred unlocks is the net
	// effect callers see.
	exit, ok := in[g.Exit]
	if !ok {
		return // exit unreachable (infinite loop)
	}
	for k, pos := range exit.held {
		if !exit.deferred[k] {
			s.netHeld[k] = pos
		}
	}
	for k := range released {
		if _, held := s.netHeld[k]; !held {
			s.netReleased[k] = true
		}
	}
}

// stmtEffect applies one statement to the lock state, recording edges,
// findings, and summary facts.
func (c *checker) stmtEffect(b *cfg.Block, idx int, stmt ast.Stmt, st *lockState, s *summary, released map[string]bool) {
	switch stmt := stmt.(type) {
	case *ast.DeferStmt:
		if cls, op := c.mutexOp(stmt.Call); op != "" {
			if op == "unlock" {
				st.deferred[cls.key] = true
			}
			return
		}
		if callee := c.pkg.Callee(stmt.Call); callee != nil {
			if cs := c.summaries[callee]; cs != nil {
				for k := range cs.netReleased {
					st.deferred[k] = true
				}
			}
		}
		c.scanCalls(stmt.Call, st, s, true)
	case *ast.SendStmt:
		nonBlocking := idx == 0 && b.CommNonBlocking
		if !nonBlocking {
			c.noteBlocking(s, stmt.Pos(), "channel send")
			c.blockedWhileHeld(st, stmt.Pos(), "channel send")
		}
		c.scanCalls(stmt, st, s, false)
	case *ast.GoStmt:
		// The spawned body runs concurrently with its own empty held
		// set (handled by the FuncLit pass); only argument evaluation
		// happens here.
		for _, arg := range stmt.Call.Args {
			c.scanCalls(arg, st, s, false)
		}
	default:
		isComm := idx == 0 && b.Kind == "select.case"
		if isComm && !b.CommNonBlocking {
			c.noteBlocking(s, stmt.Pos(), "select")
			c.blockedWhileHeld(st, stmt.Pos(), "blocking select")
		}
		c.applyStmt(stmt, st, s, released, isComm)
	}
}

// applyStmt processes a non-defer/send/go statement: mutex operations,
// calls, and receive expressions inside it.
func (c *checker) applyStmt(stmt ast.Stmt, st *lockState, s *summary, released map[string]bool, inComm bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed separately with an empty held set
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if cls, op := c.mutexOp(n); op != "" {
				switch op {
				case "lock":
					c.acquire(cls, n.Pos(), st, s)
				case "unlock":
					if _, held := st.held[cls.key]; held {
						delete(st.held, cls.key)
					} else if released != nil && !strings.HasPrefix(cls.key, "local:") {
						released[cls.key] = true
					}
				}
				return true
			}
			c.callEffect(n, st, s)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inComm {
				c.noteBlocking(s, n.Pos(), "channel receive")
				c.blockedWhileHeld(st, n.Pos(), "channel receive")
			}
		}
		return true
	})
}

// scanCalls processes calls/receives inside an expression or statement
// without treating the top level as a comm clause.
func (c *checker) scanCalls(n ast.Node, st *lockState, s *summary, deferring bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, op := c.mutexOp(m); op != "" {
				return true // handled by the defer/statement paths
			}
			if !deferring {
				c.callEffect(m, st, s)
			}
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				c.noteBlocking(s, m.Pos(), "channel receive")
				c.blockedWhileHeld(st, m.Pos(), "channel receive")
			}
		}
		return true
	})
}

// exprEffect processes a block's control expressions (conditions, tags,
// range operands).
func (c *checker) exprEffect(e ast.Expr, st *lockState, s *summary) {
	c.scanCalls(e, st, s, false)
	// Ranging over a channel is a receive.
	if t, ok := c.pass.TypesInfo.Types[e]; ok {
		if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
			c.noteBlocking(s, e.Pos(), "channel receive")
			c.blockedWhileHeld(st, e.Pos(), "channel receive (range)")
		}
	}
}

// callEffect handles a non-mutex call: same-package callee summaries,
// and known blocking calls.
func (c *checker) callEffect(call *ast.CallExpr, st *lockState, s *summary) {
	if callee := c.pkg.Callee(call); callee != nil {
		cs := c.summaries[callee]
		if cs == nil {
			return
		}
		for k, pos := range cs.acquires {
			_ = pos
			c.acquireClass(k, c.disp[k], call.Pos(), st, s, false)
		}
		for k := range cs.netReleased {
			delete(st.held, k)
		}
		for k, pos := range cs.netHeld {
			_ = pos
			c.acquireClass(k, c.disp[k], call.Pos(), st, s, true)
		}
		if cs.blocking != "" {
			c.noteBlocking(s, call.Pos(), cs.blocking)
			c.blockedWhileHeld(st, call.Pos(), fmt.Sprintf("call to %s (%s)", callee.Name(), cs.blocking))
		}
		return
	}
	if desc := blockingCallDesc(c.pass.TypesInfo, call); desc != "" {
		c.noteBlocking(s, call.Pos(), desc)
		c.blockedWhileHeld(st, call.Pos(), desc)
	}
}

// acquire records acquisition of cls at pos: order edges from every held
// class, the class entering the held set, and the summary fact.
func (c *checker) acquire(cls lockClass, pos token.Pos, st *lockState, s *summary) {
	c.acquireClass(cls.key, cls.disp, pos, st, s, true)
}

// acquireClass is the shared acquisition bookkeeping. hold controls
// whether the class stays in the held set (a callee that acquires AND
// releases internally adds edges but does not hold on return).
func (c *checker) acquireClass(key, disp string, pos token.Pos, st *lockState, s *summary, hold bool) {
	if disp == "" {
		disp = key
	}
	c.disp[key] = disp
	for heldKey := range st.held {
		if heldKey == key {
			c.addFinding(pos, fmt.Sprintf(
				"nested acquisition of %s while an instance of the same lock class is already held (instance order is unspecified)", disp))
			continue
		}
		if !strings.HasPrefix(heldKey, "local:") && !strings.HasPrefix(key, "local:") {
			e := edge{from: heldKey, to: key}
			if _, ok := c.edges[e]; !ok {
				c.edges[e] = pos
			}
		}
	}
	if s != nil {
		if _, ok := s.acquires[key]; !ok && !strings.HasPrefix(key, "local:") {
			s.acquires[key] = pos
		}
	}
	if hold {
		if _, ok := st.held[key]; !ok {
			st.held[key] = pos
		}
	}
}

func (c *checker) noteBlocking(s *summary, pos token.Pos, desc string) {
	if s != nil && s.blocking == "" {
		s.blocking = desc
	}
}

// blockedWhileHeld files a finding when a parking operation runs with
// any lock held.
func (c *checker) blockedWhileHeld(st *lockState, pos token.Pos, desc string) {
	if len(st.held) == 0 {
		return
	}
	names := make([]string, 0, len(st.held))
	for k := range st.held {
		d := c.disp[k]
		if d == "" {
			d = k
		}
		names = append(names, d)
	}
	sort.Strings(names)
	c.addFinding(pos, fmt.Sprintf("%s while holding %s can block the lock holder; move it outside the critical section",
		desc, strings.Join(names, ", ")))
}

func (c *checker) addFinding(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d:%s", pos, msg)
	if _, ok := c.findings[key]; ok {
		return
	}
	c.findings[key] = findRec{pos: pos, msg: msg}
}

func sortedFindings(m map[string]findRec) []findRec {
	out := make([]findRec, 0, len(m))
	for _, fr := range m {
		out = append(out, fr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	return out
}

// reportPolicyViolations checks every observed edge against Ranks.
func (c *checker) reportPolicyViolations() {
	type ve struct {
		e   edge
		pos token.Pos
	}
	var out []ve
	for e, pos := range c.edges {
		rf, okF := Ranks[e.from]
		rt, okT := Ranks[e.to]
		if okF && okT && rf >= rt {
			out = append(out, ve{e, pos})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	for _, v := range out {
		c.pass.Reportf(v.pos, "acquired %s while holding %s: the engine lock order requires %s (rank %d) before %s (rank %d)",
			c.disp[v.e.to], c.disp[v.e.from], c.disp[v.e.to], Ranks[v.e.to], c.disp[v.e.from], Ranks[v.e.from])
	}
}

// reportCycles finds strongly connected components of the order graph
// and reports each once, with the witness site of every edge on the
// cycle. Edges already diagnosed as rank-policy violations are left out:
// the violation report is the actionable one, and keeping the edge would
// re-describe the same defect as a cycle.
func (c *checker) reportCycles() {
	// Adjacency over class keys.
	adj := map[string][]string{}
	for e := range c.edges {
		if rf, okF := Ranks[e.from]; okF {
			if rt, okT := Ranks[e.to]; okT && rf >= rt {
				continue
			}
		}
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, vs := range adj {
		sort.Strings(vs)
	}
	nodes := make([]string, 0, len(adj))
	for k := range adj {
		nodes = append(nodes, k)
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, comp := range sccs {
		if len(comp) < 2 {
			continue // self-edges are reported as nested acquisitions
		}
		sort.Strings(comp)
		inComp := map[string]bool{}
		for _, k := range comp {
			inComp[k] = true
		}
		var parts []string
		var at token.Pos
		for _, e := range sortedEdges(c.edges) {
			if rf, okF := Ranks[e.from]; okF {
				if rt, okT := Ranks[e.to]; okT && rf >= rt {
					continue
				}
			}
			if inComp[e.from] && inComp[e.to] {
				if at == token.NoPos {
					at = c.edges[e]
				}
				parts = append(parts, fmt.Sprintf("%s -> %s (%s)",
					c.disp[e.from], c.disp[e.to], c.pass.Fset.Position(c.edges[e])))
			}
		}
		names := make([]string, len(comp))
		for i, k := range comp {
			names[i] = c.disp[k]
		}
		c.pass.Reportf(at, "lock-order cycle (potential deadlock) among %s: %s",
			strings.Join(names, ", "), strings.Join(parts, "; "))
	}
}

func sortedEdges(m map[edge]token.Pos) []edge {
	out := make([]edge, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// mutexOp recognizes m.Lock/RLock (-> "lock"), m.Unlock/RUnlock
// (-> "unlock") on sync.Mutex/sync.RWMutex values and returns the lock's
// class. Other calls return op "".
func (c *checker) mutexOp(call *ast.CallExpr) (lockClass, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, ""
	}
	var op string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return lockClass{}, ""
	}
	// The callee must be a sync method (not any type's Lock()).
	obj := c.pass.TypesInfo.Uses[sel.Sel]
	if sin, ok := c.pass.TypesInfo.Selections[sel]; ok {
		obj = sin.Obj()
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return lockClass{}, ""
	}
	cls, ok := c.classOf(sel.X)
	if !ok {
		return lockClass{}, ""
	}
	return cls, op
}

// classOf maps a mutex-valued receiver expression to its lock class.
func (c *checker) classOf(recv ast.Expr) (lockClass, bool) {
	recv = ast.Unparen(recv)
	switch recv := recv.(type) {
	case *ast.SelectorExpr:
		// x.mu: class = (type of x).field. Promoted fields resolve to the
		// outermost named type, which is the identity that matters for
		// ordering.
		base := c.pass.TypesInfo.Types[recv.X].Type
		if base == nil {
			return lockClass{}, false
		}
		if ptr, ok := base.Underlying().(*types.Pointer); ok {
			base = ptr.Elem()
		}
		if named, ok := types.Unalias(base).(*types.Named); ok && named.Obj().Pkg() != nil {
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + recv.Sel.Name
			return lockClass{key: key, disp: named.Obj().Name() + "." + recv.Sel.Name}, true
		}
		return lockClass{}, false
	case *ast.Ident:
		v := flow.VarOf(c.pass.TypesInfo, recv)
		if v == nil {
			return lockClass{}, false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			key := v.Pkg().Path() + "." + v.Name()
			return lockClass{key: key, disp: v.Name()}, true
		}
		// A local of a named type that embeds sync.Mutex (t.Lock()):
		// classify by the embedding type, which is the identity that
		// matters across instances.
		base := derefType(v.Type())
		if named, ok := types.Unalias(base).(*types.Named); ok &&
			named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != "sync" {
			key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".Mutex"
			return lockClass{key: key, disp: named.Obj().Name() + ".Mutex"}, true
		}
		// Plain local sync.Mutex: identity per declaration; excluded
		// from the global order graph but tracked for blocking-op
		// findings.
		return lockClass{
			key:  fmt.Sprintf("local:%s@%d", v.Name(), v.Pos()),
			disp: v.Name(),
		}, true
	}
	// Embedded mutex locked through the outer value (t.Lock()): the
	// receiver IS the outer struct; classOf is called with it only when
	// the method resolves to sync, so classify by the outer type.
	base := c.pass.TypesInfo.Types[recv].Type
	if base == nil {
		return lockClass{}, false
	}
	if ptr, ok := base.Underlying().(*types.Pointer); ok {
		base = ptr.Elem()
	}
	if named, ok := types.Unalias(base).(*types.Named); ok && named.Obj().Pkg() != nil {
		key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".Mutex"
		return lockClass{key: key, disp: named.Obj().Name() + ".Mutex"}, true
	}
	return lockClass{}, false
}

// blockingCallDesc recognizes known parking calls outside the package:
// sync.WaitGroup.Wait and the exec package's Collect* full-result
// materialization entry points (which drive the whole plan, including
// goroutines that may need the held lock). Collect-prefixed functions in
// other packages (logical.CollectColumns is a pure tree walk) are not
// blocking.
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if name == "Wait" {
		if s, ok := info.Selections[sel]; ok {
			if named, ok := types.Unalias(derefType(s.Recv())).(*types.Named); ok {
				if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
					return "sync." + named.Obj().Name() + ".Wait"
				}
			}
		}
		return ""
	}
	if strings.HasPrefix(name, "Collect") {
		obj := info.Uses[sel.Sel]
		if obj != nil && obj.Pkg() != nil && strings.HasSuffix(obj.Pkg().Path(), "internal/exec") {
			return name + " (full result materialization)"
		}
	}
	return ""
}

func derefType(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}
