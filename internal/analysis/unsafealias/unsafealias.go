// Package unsafealias enforces the aliasing contracts of the engine's
// zero-copy views. It tracks two taint classes:
//
// Unsafe string views: arrow's unsafeString (and unsafe.String /
// unsafe.Slice generally) returns a string aliasing an Arrow buffer: it
// is valid only while the owning batch is. Such a view must stay a
// transient local — storing it in a struct field, map, slice, channel, or
// package variable lets it outlive the batch, resurfacing as corrupted
// keys when buffers are recycled (the failure mode Zerrow documents for
// zero-copy Arrow pipelines). Key arenas must copy: `append(bs, v...)`
// into a []byte copies the bytes and is therefore allowed.
//
// Shared cache views: parquet's PageCache.CachedPage hands out decoded
// arrays owned by the process-wide cache — immutable, pool-charged, and
// (for uncompressed pages) aliasing a file mmap. Scan code may read them
// and wrap them into batches within the scan, but must not retain them
// in long-lived structures: after eviction uncharges the entry, a
// retained reference keeps the bytes alive invisibly to the memory
// pool. The sink set for this class is deliberately narrower — struct
// fields, package variables, channel sends, and map keys — because
// appending a cached array to a local batch slice is the scan's normal
// idiom.
package unsafealias

import (
	"go/ast"
	"go/token"
	"go/types"

	"gofusion/internal/analysis"
)

// Analyzer is the unsafealias check.
var Analyzer = &analysis.Analyzer{
	Name: "unsafealias",
	Doc: "check that zero-copy views do not outlive their owner\n\n" +
		"results of arrow.unsafeString / unsafe.String / unsafe.Slice must not\n" +
		"be stored in struct fields, maps, slices, channels, or globals; copy\n" +
		"first (e.g. append into a byte arena, or string([]byte(v))). Shared\n" +
		"arrays from parquet PageCache.CachedPage must not be retained in\n" +
		"struct fields, globals, channels, or map keys past the scan.",
	Run: run,
}

// taintClass distinguishes the two aliasing contracts the analyzer
// enforces; zero means untainted.
type taintClass int

const (
	aliasView  taintClass = iota + 1 // unsafe string/slice view of a batch buffer
	sharedView                       // pool-charged shared array from the page cache
)

// sourceFuncs maps package path -> function (or method) name -> the
// taint class of its first result.
var sourceFuncs = map[string]map[string]taintClass{
	"unsafe":                    {"String": aliasView, "Slice": aliasView, "StringData": aliasView, "SliceData": aliasView},
	"gofusion/internal/arrow":   {"unsafeString": aliasView},
	"gofusion/internal/parquet": {"CachedPage": sharedView},
}

func sourceClass(info *types.Info, call *ast.CallExpr) taintClass {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		return 0
	}
	if obj == nil || obj.Pkg() == nil {
		return 0
	}
	return sourceFuncs[obj.Pkg().Path()][obj.Name()]
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc tracks, per function, locals assigned directly from a source
// call, and flags escaping uses of tainted values (the direct call result
// or a tainted local).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	tainted := map[*types.Var]taintClass{}

	// First pass: collect tainted locals, and untaint on any other
	// reassignment. Multi-value forms taint only the first result —
	// `arr, hit, err := cache.CachedPage(...)` taints arr.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are checked independently
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		var cls taintClass
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			cls = sourceClass(info, call)
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v := localOf(info, id)
			if v == nil {
				continue
			}
			if cls != 0 && i == 0 {
				tainted[v] = cls
			} else {
				delete(tainted, v)
			}
		}
		return true
	})

	classOf := func(e ast.Expr) taintClass {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return sourceClass(info, e)
		case *ast.Ident:
			if v := localOf(info, e); v != nil {
				return tainted[v]
			}
		}
		return 0
	}

	report := func(e ast.Expr, cls taintClass, how string) {
		if cls == sharedView {
			pass.Reportf(e.Pos(), "shared cache view %s; retained references outlive eviction and hide bytes from the memory pool — copy the data instead", how)
			return
		}
		pass.Reportf(e.Pos(), "unsafe zero-copy view %s; it may outlive the batch that owns its bytes — copy it first", how)
	}

	// sinks the sharedView class cares about: slice stores and appends
	// are the scan's normal batch-building idiom, so only long-lived
	// destinations are flagged for it.
	sharedSink := map[string]bool{
		"stored in a struct field":                 true,
		"stored in a package variable":             true,
		"sent on a channel":                        true,
		"used as a map key":                        true,
		"used as a map key in a composite literal": true,
	}
	flag := func(e ast.Expr, cls taintClass, how string) {
		if cls == sharedView && !sharedSink[how] {
			return
		}
		report(e, cls, how)
	}

	// Second pass: flag escaping uses.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := n.Rhs[i]
				cls := classOf(rhs)
				if cls == 0 {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					flag(rhs, cls, "stored in a struct field")
				case *ast.IndexExpr:
					flag(rhs, cls, "stored in a map or slice element")
				case *ast.Ident:
					if v := localOf(info, l); v == nil {
						// Package-level variable.
						if obj, ok := info.Uses[l].(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
							flag(rhs, cls, "stored in a package variable")
						}
					}
				}
			}
			// Tainted value used as a map key in an index *target*.
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					if cls := classOf(ix.Index); cls != 0 {
						flag(ix.Index, cls, "used as a map key")
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && isBuiltinAppend(info, id) {
				// Builtin append. append(bs, v...) over a string->[]byte
				// spread copies the bytes: allowed. Appending the string
				// itself to a []string retains the alias: flagged.
				if n.Ellipsis == token.NoPos {
					for _, arg := range n.Args[1:] {
						if cls := classOf(arg); cls != 0 {
							flag(arg, cls, "appended to a slice")
						}
					}
				}
				return true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if cls := classOf(kv.Value); cls != 0 {
						flag(kv.Value, cls, "stored in a composite literal")
					}
					if cls := classOf(kv.Key); cls != 0 {
						flag(kv.Key, cls, "used as a map key in a composite literal")
					}
				} else if cls := classOf(el); cls != 0 {
					flag(el, cls, "stored in a composite literal")
				}
			}
		case *ast.SendStmt:
			if cls := classOf(n.Value); cls != 0 {
				flag(n.Value, cls, "sent on a channel")
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// localOf returns the local/parameter variable an identifier denotes, or
// nil for fields, package-level vars, and non-variables.
func localOf(info *types.Info, id *ast.Ident) *types.Var {
	var obj types.Object
	if d, ok := info.Defs[id]; ok {
		obj = d
	} else if u, ok := info.Uses[id]; ok {
		obj = u
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil // package-level
	}
	return v
}
