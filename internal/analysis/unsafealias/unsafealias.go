// Package unsafealias enforces the aliasing contract of the engine's
// zero-copy string views. arrow's unsafeString (and unsafe.String /
// unsafe.Slice generally) returns a string aliasing an Arrow buffer: it
// is valid only while the owning batch is. Such a view must stay a
// transient local — storing it in a struct field, map, slice, channel, or
// package variable lets it outlive the batch, resurfacing as corrupted
// keys when buffers are recycled (the failure mode Zerrow documents for
// zero-copy Arrow pipelines). Key arenas must copy: `append(bs, v...)`
// into a []byte copies the bytes and is therefore allowed.
package unsafealias

import (
	"go/ast"
	"go/token"
	"go/types"

	"gofusion/internal/analysis"
)

// Analyzer is the unsafealias check.
var Analyzer = &analysis.Analyzer{
	Name: "unsafealias",
	Doc: "check that unsafe zero-copy string views do not outlive their batch\n\n" +
		"results of arrow.unsafeString / unsafe.String / unsafe.Slice must not\n" +
		"be stored in struct fields, maps, slices, channels, or globals; copy\n" +
		"first (e.g. append into a byte arena, or string([]byte(v))).",
	Run: run,
}

// sourceFuncs are the functions whose results alias another buffer.
var sourceFuncs = map[string]map[string]bool{
	"unsafe":                  {"String": true, "Slice": true, "StringData": true, "SliceData": true},
	"gofusion/internal/arrow": {"unsafeString": true},
}

func isSourceCall(info *types.Info, call *ast.CallExpr) bool {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	default:
		return false
	}
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	names, ok := sourceFuncs[obj.Pkg().Path()]
	return ok && names[obj.Name()]
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc tracks, per function, locals assigned directly from a source
// call, and flags escaping uses of tainted values (the direct call result
// or a tainted local).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	tainted := map[*types.Var]bool{}

	// First pass: collect tainted locals (v := unsafeString(...)), and
	// untaint on any other reassignment.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals are checked independently
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		v := localOf(info, id)
		if v == nil {
			return true
		}
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isSourceCall(info, call) {
			tainted[v] = true
		} else {
			delete(tainted, v)
		}
		return true
	})

	isTainted := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			return isSourceCall(info, e)
		case *ast.Ident:
			if v := localOf(info, e); v != nil {
				return tainted[v]
			}
		}
		return false
	}

	report := func(e ast.Expr, how string) {
		pass.Reportf(e.Pos(), "unsafe zero-copy view %s; it may outlive the batch that owns its bytes — copy it first", how)
	}

	// Second pass: flag escaping uses.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				rhs := n.Rhs[i]
				if !isTainted(rhs) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					report(rhs, "stored in a struct field")
				case *ast.IndexExpr:
					report(rhs, "stored in a map or slice element")
				case *ast.Ident:
					if v := localOf(info, l); v == nil {
						// Package-level variable.
						if obj, ok := info.Uses[l].(*types.Var); ok && obj.Parent() == obj.Pkg().Scope() {
							report(rhs, "stored in a package variable")
						}
					}
				}
			}
			// Tainted value used as a map key in an index *target*.
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isTainted(ix.Index) {
					report(ix.Index, "used as a map key")
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && isBuiltinAppend(info, id) {
				// Builtin append. append(bs, v...) over a string->[]byte
				// spread copies the bytes: allowed. Appending the string
				// itself to a []string retains the alias: flagged.
				if n.Ellipsis == token.NoPos {
					for _, arg := range n.Args[1:] {
						if isTainted(arg) {
							report(arg, "appended to a slice")
						}
					}
				}
				return true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if isTainted(kv.Value) {
						report(kv.Value, "stored in a composite literal")
					}
					if isTainted(kv.Key) {
						report(kv.Key, "used as a map key in a composite literal")
					}
				} else if isTainted(el) {
					report(el, "stored in a composite literal")
				}
			}
		case *ast.SendStmt:
			if isTainted(n.Value) {
				report(n.Value, "sent on a channel")
			}
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, id *ast.Ident) bool {
	if id.Name != "append" {
		return false
	}
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// localOf returns the local/parameter variable an identifier denotes, or
// nil for fields, package-level vars, and non-variables.
func localOf(info *types.Info, id *ast.Ident) *types.Var {
	var obj types.Object
	if d, ok := info.Defs[id]; ok {
		obj = d
	} else if u, ok := info.Uses[id]; ok {
		obj = u
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return nil // package-level
	}
	return v
}
