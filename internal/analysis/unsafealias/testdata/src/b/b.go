// Package b is the shared-view golden case: arrays handed out by the
// real parquet.PageCache are pool-charged shared state. Retaining one in
// a long-lived structure outlives eviction; building batches from it
// locally (slices, appends) is the scan idiom and must stay clean.
package b

import (
	"gofusion/internal/arrow"
	"gofusion/internal/parquet"
)

type holder struct{ arr arrow.Array }

var globalArr arrow.Array

func load(pc *parquet.PageCache, key parquet.PageKey) (arrow.Array, error) {
	arr, _, err := pc.CachedPage(key, decodeStub)
	return arr, err
}

func decodeStub() (arrow.Array, error) { return nil, nil }

// The scan idiom: append the shared view into a local batch column
// slice, or store it at an index. Neither retains it past the scan from
// the analyzer's point of view, so the reduced sink set allows both.
func buildBatchOK(pc *parquet.PageCache, key parquet.PageKey, cols []arrow.Array) []arrow.Array {
	arr, hit, err := pc.CachedPage(key, decodeStub)
	if err != nil || !hit {
		return cols
	}
	cols = append(cols, arr)
	cols[0] = arr
	return cols
}

func retainField(pc *parquet.PageCache, key parquet.PageKey, h *holder) {
	arr, _, err := pc.CachedPage(key, decodeStub)
	if err != nil {
		return
	}
	h.arr = arr // want `shared cache view stored in a struct field`
}

func retainGlobal(pc *parquet.PageCache, key parquet.PageKey) {
	arr, _, _ := pc.CachedPage(key, decodeStub)
	globalArr = arr // want `shared cache view stored in a package variable`
}

func retainChan(pc *parquet.PageCache, key parquet.PageKey, ch chan arrow.Array) {
	arr, _, _ := pc.CachedPage(key, decodeStub)
	ch <- arr // want `shared cache view sent on a channel`
}

func retainMapKey(pc *parquet.PageCache, key parquet.PageKey, seen map[arrow.Array]bool) {
	arr, _, _ := pc.CachedPage(key, decodeStub)
	seen[arr] = true // want `shared cache view used as a map key`
}

// Reassignment untaints: a fresh local built from the view's data is
// free to escape.
func copiedOK(pc *parquet.PageCache, key parquet.PageKey, h *holder) {
	arr, _, _ := pc.CachedPage(key, decodeStub)
	arr = materialize(arr)
	h.arr = arr
}

func materialize(a arrow.Array) arrow.Array { return a }
