package a

import "unsafe"

type row struct{ name string }

var global string

// Returning the view is the provider idiom (StringArray.Value does this);
// the caller decides whether to copy.
func view(b []byte) string {
	return unsafe.String(&b[0], len(b))
}

func localUseOK(b []byte) int {
	v := unsafe.String(&b[0], len(b))
	return len(v)
}

func storeField(r *row, b []byte) {
	v := unsafe.String(&b[0], len(b))
	r.name = v // want `stored in a struct field`
}

func storeMapKey(m map[string]int, b []byte) {
	v := unsafe.String(&b[0], len(b))
	m["k"] = len(v) // derived value, not the view itself
	m[v] = 1        // want `used as a map key`
}

func storeSliceElem(dst []string, b []byte) {
	v := unsafe.String(&b[0], len(b))
	dst[0] = v // want `stored in a map or slice element`
}

func appendCases(ss []string, bs []byte, b []byte) ([]string, []byte) {
	v := unsafe.String(&b[0], len(b))
	bs = append(bs, v...) // spread into a byte arena copies: allowed
	ss = append(ss, v)    // want `appended to a slice`
	return ss, bs
}

func storeGlobal(b []byte) {
	global = unsafe.String(&b[0], len(b)) // want `stored in a package variable`
}

func compositeLit(b []byte) row {
	v := unsafe.String(&b[0], len(b))
	return row{name: v} // want `stored in a composite literal`
}

func sendChan(ch chan string, b []byte) {
	v := unsafe.String(&b[0], len(b))
	ch <- v // want `sent on a channel`
}

func copiedOK(m map[string]int, b []byte) {
	v := unsafe.String(&b[0], len(b))
	v = string(append([]byte(nil), v...))
	m[v] = 1
}
