package unsafealias_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/unsafealias"
)

func TestUnsafeAlias(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unsafealias.Analyzer, "a")
}

// TestSharedView covers the page-cache taint class against the real
// parquet package: long-lived sinks flag, batch-building stays clean.
func TestSharedView(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unsafealias.Analyzer, "b")
}
