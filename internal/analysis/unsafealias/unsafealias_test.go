package unsafealias_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/unsafealias"
)

func TestUnsafeAlias(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), unsafealias.Analyzer, "a")
}
