// Package analysistest runs an Analyzer over a golden testdata package
// and compares its diagnostics against expectations written in the
// source as "// want" comments, mirroring the x/tools harness of the
// same name:
//
//	s, _ := plan.Execute(ctx, 0) // want `never closed`
//	x.count++                    // want "races" "second finding"
//
// Each string after want is a regexp that must match the message of one
// diagnostic reported on that line; unmatched diagnostics and unmatched
// expectations both fail the test. Testdata lives under
// <analyzer>/testdata/src/<pkg>; the go tool ignores testdata trees, so
// these packages may contain deliberate defects without breaking the
// build. They may import real engine packages — imports resolve against
// the enclosing module's compiled dependency closure.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/load"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData() string {
	d, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return d
}

// Run loads testdata/src/<pkg>, runs the analyzer, and checks the
// resulting diagnostics against the package's want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	moduleDir, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	p, err := load.LoadDir(moduleDir, filepath.Join(testdata, "src", pkg), pkg)
	if err != nil {
		t.Fatalf("loading %s: %v", pkg, err)
	}
	for _, terr := range p.TypeErrors {
		t.Errorf("testdata type error: %v", terr)
	}
	diags, err := analysis.RunAnalyzers([]*analysis.Analyzer{a}, p.Fset, p.Files, p.Types, p.Info)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, p.Fset, p.Files)
	matched := make([]bool, len(diags))
	for _, w := range wants {
		found := false
		for i, d := range diags {
			if matched[i] {
				continue
			}
			pos := p.Fset.Position(d.Pos)
			if filepath.Base(pos.Filename) == w.file && pos.Line == w.line && w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			pos := p.Fset.Position(d.Pos)
			t.Errorf("%s:%d:%d: unexpected diagnostic: %s", filepath.Base(pos.Filename), pos.Line, pos.Column, d.Message)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var out []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				pats, err := parseWant(strings.TrimPrefix(text, "want "))
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, p, err)
					}
					out = append(out, want{filepath.Base(pos.Filename), pos.Line, re})
				}
			}
		}
	}
	return out
}

// parseWant splits `"re1" "re2"` / backquoted forms into the regexp
// source strings.
func parseWant(s string) ([]string, error) {
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated string in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = s[end+1:]
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated raw string in %q", s)
			}
			out = append(out, s[1:end+1])
			s = s[end+2:]
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", s)
		}
	}
}
