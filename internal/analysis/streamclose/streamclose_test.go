package streamclose_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/streamclose"
)

func TestStreamClose(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), streamclose.Analyzer, "a")
}
