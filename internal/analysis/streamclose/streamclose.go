// Package streamclose checks that every physical.Stream acquired from a
// call (Execute, ScanResult.Open, NewFuncStream, InstrumentStream, ...)
// is closed on every path out of the acquiring function, or has its
// ownership transferred: returned to the caller, passed to another
// function or goroutine, stored in a struct/slice/map, or captured by a
// closure. The pull-based partitioned Volcano model leaks producer
// goroutines and spill references when a stream is dropped un-Closed on
// an error path, which the race detector and unit tests only catch when
// the error actually fires.
package streamclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/fusion"
)

// Analyzer is the streamclose check.
var Analyzer = &analysis.Analyzer{
	Name: "streamclose",
	Doc: "check that acquired physical.Streams are closed on all paths\n\n" +
		"Any call whose first result is the engine Stream interface transfers\n" +
		"ownership to the caller: it must Close the stream on every path\n" +
		"(including early error returns) or hand it off (return it, pass it\n" +
		"to a call, store it, or capture it in a closure).",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if fusion.StreamInterface(pass.Pkg) == nil {
		return nil // package does not use streams
	}
	for _, f := range pass.Files {
		closes := closePositions(pass.TypesInfo, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeFunc(pass, fn.Body, closes)
				}
			case *ast.FuncLit:
				analyzeFunc(pass, fn.Body, closes)
			}
			return true
		})
	}
	return nil
}

// closePositions records, for every variable in the file, the positions
// of v.Close() calls on it. A closure that acquires into a captured
// variable closed elsewhere in the enclosing function (a cleanup hook,
// a sibling closure) is not that stream's owner.
func closePositions(info *types.Info, f *ast.File) map[*types.Var][]token.Pos {
	out := map[*types.Var][]token.Pos{}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v := closedVar(info, call); v != nil {
			out[v] = append(out[v], call.Pos())
		}
		return true
	})
	return out
}

// state is the per-path tracking state.
type state struct {
	// open maps a stream variable to its acquisition position.
	open map[*types.Var]token.Pos
	// errFor maps an error variable to the stream acquired in the same
	// assignment, so `if err != nil` branches know the stream is nil.
	errFor map[*types.Var]*types.Var
}

func newState() *state {
	return &state{open: map[*types.Var]token.Pos{}, errFor: map[*types.Var]*types.Var{}}
}

func (s *state) clone() *state {
	c := newState()
	for k, v := range s.open {
		c.open[k] = v
	}
	for k, v := range s.errFor {
		c.errFor[k] = v
	}
	return c
}

type tracker struct {
	pass   *analysis.Pass
	info   *types.Info
	body   *ast.BlockStmt
	closes map[*types.Var][]token.Pos
}

// closedOutside reports whether v has a Close call outside the function
// body under analysis — i.e. some enclosing or sibling scope owns it.
func (t *tracker) closedOutside(v *types.Var) bool {
	for _, pos := range t.closes[v] {
		if pos < t.body.Pos() || pos > t.body.End() {
			return true
		}
	}
	return false
}

func analyzeFunc(pass *analysis.Pass, body *ast.BlockStmt, closes map[*types.Var][]token.Pos) {
	t := &tracker{pass: pass, info: pass.TypesInfo, body: body, closes: closes}
	st := newState()
	terminated := t.walkStmts(body.List, st)
	if !terminated {
		for v, pos := range st.open {
			pass.Reportf(pos, "stream %q is never closed in this function", v.Name())
		}
	}
}

// walkStmts runs the statements in order, returning true when the path
// terminates (return / panic / branch) before the end of the list.
func (t *tracker) walkStmts(stmts []ast.Stmt, st *state) bool {
	for _, s := range stmts {
		if t.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (t *tracker) walkStmt(s ast.Stmt, st *state) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		t.assign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					t.declare(vs, st)
				}
			}
		}
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			t.transfers(s.X, st)
			return false
		}
		if v := closedVar(t.info, call); v != nil {
			delete(st.open, v)
			return false
		}
		if isTerminalCall(t.info, call) {
			return true
		}
		// A discarded call result that is a stream is an immediate leak.
		if rs := fusion.ResultTypes(t.info, call); len(rs) > 0 && fusion.IsStreamNamed(rs[0]) {
			t.pass.Reportf(call.Pos(), "stream result of %s is discarded without Close", exprString(call.Fun))
		}
		t.transfers(s.X, st)
	case *ast.DeferStmt:
		if v := closedVar(t.info, s.Call); v != nil {
			delete(st.open, v) // closed on every exit from here on
			return false
		}
		t.transfers(s.Call, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			t.transfers(r, st)
		}
		for v, pos := range st.open {
			t.pass.Reportf(s.Pos(), "stream %q may not be closed on this return path (acquired at %s)",
				v.Name(), t.pass.Fset.Position(pos))
		}
		return true
	case *ast.IfStmt:
		return t.walkIf(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			t.transfers(s.Cond, st)
		}
		body := st.clone()
		t.walkStmts(s.Body.List, body)
		if s.Post != nil {
			t.walkStmt(s.Post, body)
		}
		mergeInto(st, body)
	case *ast.RangeStmt:
		t.transfers(s.X, st)
		body := st.clone()
		t.walkStmts(s.Body.List, body)
		mergeInto(st, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			t.transfers(s.Tag, st)
		}
		t.walkCases(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			t.walkStmt(s.Init, st)
		}
		t.walkCases(s.Body, st)
	case *ast.SelectStmt:
		t.walkCases(s.Body, st)
	case *ast.BlockStmt:
		return t.walkStmts(s.List, st)
	case *ast.GoStmt:
		t.transfers(s.Call, st)
	case *ast.SendStmt:
		t.transfers(s.Chan, st)
		t.transfers(s.Value, st)
	case *ast.LabeledStmt:
		return t.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the structured path; states at these
		// exits are conservatively dropped.
		return true
	}
	return false
}

// walkIf handles branch cloning plus the `if err != nil` convention: when
// the condition tests the error paired with a stream acquisition, the
// stream is nil (hence needs no Close) in the branch where the error is
// non-nil.
func (t *tracker) walkIf(s *ast.IfStmt, st *state) bool {
	if s.Init != nil {
		t.walkStmt(s.Init, st)
	}
	t.transfers(s.Cond, st)
	thenSt, elseSt := st.clone(), st.clone()
	if v, eq := nilCheckedVar(t.info, s.Cond); v != nil {
		if stream, ok := st.errFor[v]; ok {
			if eq { // err == nil: the skip/else path has a nil stream
				delete(elseSt.open, stream)
			} else { // err != nil: the then path has a nil stream
				delete(thenSt.open, stream)
			}
		} else if _, tracked := st.open[v]; tracked {
			// Nil test of the stream itself: it is nil (needs no Close)
			// in the branch where the test says so.
			if eq {
				delete(thenSt.open, v)
			} else {
				delete(elseSt.open, v)
			}
		}
	}
	thenTerm := t.walkStmts(s.Body.List, thenSt)
	elseTerm := false
	if s.Else != nil {
		elseTerm = t.walkStmt(s.Else, elseSt)
	}
	st.open = map[*types.Var]token.Pos{}
	if !thenTerm {
		mergeInto(st, thenSt)
	}
	if !elseTerm {
		mergeInto(st, elseSt)
	}
	return thenTerm && elseTerm && s.Else != nil
}

func (t *tracker) walkCases(body *ast.BlockStmt, st *state) {
	base := st.clone()
	st.open = map[*types.Var]token.Pos{}
	mergeInto(st, base) // fall-through path when no case matches
	for _, cs := range body.List {
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, e := range cs.List {
				t.transfers(e, base)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm != nil {
				t.walkStmt(cs.Comm, base)
			}
			stmts = cs.Body
		}
		caseSt := base.clone()
		if !t.walkStmts(stmts, caseSt) {
			mergeInto(st, caseSt)
		}
	}
}

func mergeInto(dst, src *state) {
	for v, pos := range src.open {
		dst.open[v] = pos
	}
	for k, v := range src.errFor {
		dst.errFor[k] = v
	}
}

// declare handles `var s, err = acquire()` declarations.
func (t *tracker) declare(vs *ast.ValueSpec, st *state) {
	if len(vs.Values) != 1 {
		for _, v := range vs.Values {
			t.transfers(v, st)
		}
		return
	}
	call, ok := ast.Unparen(vs.Values[0]).(*ast.CallExpr)
	if ok && t.acquire(call, identVars(t.info, vs.Names), st) {
		return
	}
	t.transfers(vs.Values[0], st)
}

func (t *tracker) assign(s *ast.AssignStmt, st *state) {
	// Single-call RHS may be an acquisition; its arguments still transfer
	// any tracked streams into the call (wrap patterns).
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			var lhs []*types.Var
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					lhs = append(lhs, objOf(t.info, id))
				} else {
					t.transfers(l, st) // index/selector targets
					lhs = append(lhs, nil)
				}
			}
			if t.acquire(call, lhs, st) {
				return
			}
		}
	}
	for _, r := range s.Rhs {
		t.transfers(r, st)
	}
	for _, l := range s.Lhs {
		if id, ok := l.(*ast.Ident); ok {
			if v := objOf(t.info, id); v != nil {
				// Overwriting a tracked stream with something else loses it.
				delete(st.open, v)
				invalidateErr(st, v)
			}
			continue
		}
		t.transfers(l, st)
	}
}

// acquire records a stream acquisition when call's first result is the
// Stream interface and the first assignee is a plain variable. Returns
// true when handled. Call arguments are scanned for transfers first.
func (t *tracker) acquire(call *ast.CallExpr, lhs []*types.Var, st *state) bool {
	rs := fusion.ResultTypes(t.info, call)
	if len(rs) == 0 || !fusion.IsStreamNamed(rs[0]) || len(lhs) == 0 {
		return false
	}
	t.transfers(call, st) // wrapped/forwarded streams escape into the call
	v := lhs[0]
	if v == nil {
		return true // assigned to blank or non-ident target: not tracked
	}
	if t.closedOutside(v) {
		return true // an enclosing scope closes this variable; it owns it
	}
	if pos, wasOpen := st.open[v]; wasOpen {
		t.pass.Reportf(call.Pos(), "stream %q (acquired at %s) is reassigned before Close",
			v.Name(), t.pass.Fset.Position(pos))
	}
	st.open[v] = call.Pos()
	invalidateErr(st, v)
	if len(rs) >= 2 && fusion.IsErrorType(rs[len(rs)-1]) && len(lhs) == len(rs) {
		if errV := lhs[len(lhs)-1]; errV != nil {
			st.errFor[errV] = v
		}
	}
	return true
}

// transfers removes from the open set every tracked variable that escapes
// through expr: call arguments, composite literals, closures, method
// values, type assertions — everything except plain method-call receivers
// and nil comparisons.
func (t *tracker) transfers(expr ast.Expr, st *state) {
	if expr == nil || len(st.open) == 0 {
		return
	}
	protected := map[*ast.Ident]bool{}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Capture by a closure is an escape even when the closure only
			// uses the stream as a method receiver (it may run later).
			return false
		case *ast.CallExpr:
			// v.Method(...) uses v as a receiver, which borrows rather
			// than transfers.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					protected[id] = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && isNilIdent(n.Y) {
					protected[id] = true
				}
				if id, ok := ast.Unparen(n.Y).(*ast.Ident); ok && isNilIdent(n.X) {
					protected[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || protected[id] {
			return true
		}
		if v := objOf(t.info, id); v != nil {
			if _, tracked := st.open[v]; tracked {
				delete(st.open, v)
				invalidateErr(st, v)
			}
		}
		return true
	})
}

func invalidateErr(st *state, stream *types.Var) {
	for e, s := range st.errFor {
		if s == stream {
			delete(st.errFor, e)
		}
	}
}

// closedVar returns the tracked receiver of a v.Close() call, else nil.
func closedVar(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return objOf(info, id)
}

// isTerminalCall reports whether the call never returns (panic, os.Exit,
// testing Fatal helpers, log.Fatal*).
func isTerminalCall(info *types.Info, call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		if name == "Exit" || name == "Fatal" || name == "Fatalf" || name == "Goexit" {
			return true
		}
	}
	return false
}

// nilCheckedVar matches conditions of the form `v == nil` / `v != nil`,
// returning the variable and whether the comparison is equality.
func nilCheckedVar(info *types.Info, cond ast.Expr) (v *types.Var, isEq bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	var id *ast.Ident
	if isNilIdent(be.Y) {
		id, _ = ast.Unparen(be.X).(*ast.Ident)
	} else if isNilIdent(be.X) {
		id, _ = ast.Unparen(be.Y).(*ast.Ident)
	}
	if id == nil {
		return nil, false
	}
	return objOf(info, id), be.Op == token.EQL
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func identVars(info *types.Info, ids []*ast.Ident) []*types.Var {
	vars := make([]*types.Var, len(ids))
	for i, id := range ids {
		vars[i] = objOf(info, id)
	}
	return vars
}

func objOf(info *types.Info, id *ast.Ident) *types.Var {
	var obj types.Object
	if d, ok := info.Defs[id]; ok {
		obj = d
	} else if u, ok := info.Uses[id]; ok {
		obj = u
	}
	v, _ := obj.(*types.Var)
	return v
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "call"
}
