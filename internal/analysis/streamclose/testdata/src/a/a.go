package a

import (
	"errors"

	"gofusion/internal/catalog"
)

func open() (catalog.Stream, error) { return nil, nil }

func work() error { return nil }

// The `if err != nil { return err }` idiom after an acquisition is not a
// leak: the stream is nil on the error path.
func errIdiomOK() error {
	s, err := open()
	if err != nil {
		return err
	}
	s.Close()
	return nil
}

func leakOnEarlyReturn(flag bool) error {
	s, err := open()
	if err != nil {
		return err
	}
	if flag {
		return errors.New("boom") // want `stream "s" may not be closed on this return path`
	}
	s.Close()
	return nil
}

func leakFallOff() {
	s, _ := open() // want `stream "s" is never closed in this function`
	_ = s.Schema()
}

func discarded() {
	open() // want `stream result of open is discarded without Close`
}

func reassigned() {
	s, _ := open()
	s, _ = open() // want `stream "s" \(acquired at .*\) is reassigned before Close`
	s.Close()
}

func deferOK() error {
	s, err := open()
	if err != nil {
		return err
	}
	defer s.Close()
	return work()
}

func nilGuardOK() {
	s, _ := open()
	if s != nil {
		s.Close()
	}
}

func loopOK(n int) {
	for i := 0; i < n; i++ {
		s, err := open()
		if err != nil {
			continue
		}
		s.Close()
	}
}

// Ownership transfers: no diagnostics below this line.

func transferReturn() (catalog.Stream, error) {
	s, err := open()
	if err != nil {
		return nil, err
	}
	return s, nil
}

func drain(s catalog.Stream) { s.Close() }

func transferCall() {
	s, _ := open()
	drain(s)
}

type wrapper struct{ inner catalog.Stream }

func (w *wrapper) Close() { w.inner.Close() }

// False-positive regression: the stream is handed to another owner that
// closes it (the NewFuncStream(..., s.Close) idiom and struct handoff).
func handoffStruct() *wrapper {
	s, _ := open()
	return &wrapper{inner: s}
}

func handoffMethodValue() func() {
	s, _ := open()
	return s.Close
}

func handoffClosure() func() {
	s, _ := open()
	cleanup := func() { s.Close() }
	return cleanup
}

// A closure acquiring into a captured variable that a sibling scope
// closes is not the owner.
func capturedOwnerOK() (func(), func()) {
	var s catalog.Stream
	start := func() {
		s, _ = open()
	}
	stop := func() {
		if s != nil {
			s.Close()
		}
	}
	return start, stop
}

// ...but when nothing ever closes the captured variable, the closure's
// acquisition is a leak.
func capturedLeak() func() {
	var s catalog.Stream
	start := func() {
		s, _ = open() // want `stream "s" is never closed in this function`
	}
	_ = s
	return start
}

func suppressed() {
	s, _ := open() //nolint:streamclose // reason: exercising the suppression path
	_ = s.Schema()
}
