package resbalance_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/resbalance"
)

func TestResBalance(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), resbalance.Analyzer, "a")
}
