// Package resbalance checks that memory-accounting resources are
// balanced: every memory.NewReservation, memory.NewChildPool, and
// memory.AllocBuffer must reach its release (Free, Release,
// ReleaseBuffer) on every path out of the function — including early
// error returns — unless ownership is transferred first.
//
// Ownership transfers keep the common engine idioms quiet:
//
//   - storing the resource in a struct literal or field (the operator's
//     Close releases it),
//   - returning it (the caller owns it),
//   - capturing it in a function literal (cleanup closures),
//   - passing it to a function that releases or keeps it, established
//     interprocedurally from same-package function summaries computed
//     bottom-up over the call graph.
//
// Helpers that construct and return a resource propagate the obligation
// to their callers: `res := newTrackedBuf(...)` is an acquisition site
// if newTrackedBuf returns a fresh buffer. Helpers that release a
// parameter on every path count as releases at their call sites.
package resbalance

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/cfg"
	"gofusion/internal/analysis/flow"
)

// Analyzer is the resbalance check.
var Analyzer = &analysis.Analyzer{
	Name: "resbalance",
	Doc: "check that memory reservations, child pools, and buffers are released on all paths\n\n" +
		"every memory.NewReservation/NewChildPool/AllocBuffer must reach\n" +
		"Free/Release/ReleaseBuffer on every path out of the function,\n" +
		"including error returns, unless ownership is transferred (stored,\n" +
		"returned, captured, or passed to a releasing/keeping callee).",
	Run: run,
}

const memoryPkg = "gofusion/internal/memory"

// kinds of tracked resources, with their acquisition entry points and
// release spellings.
var (
	acquireFuncs = map[string]string{ // memory.<func> -> kind
		"NewReservation": "reservation",
		"NewChildPool":   "child pool",
		"AllocBuffer":    "buffer",
	}
	releaseMethods = map[string]string{ // kind -> method on the resource
		"reservation": "Free",
		"child pool":  "Release",
	}
	releaseVerb = map[string]string{
		"reservation": "freed",
		"child pool":  "released",
		"buffer":      "released",
	}
)

type status int

const (
	live     status = iota + 1 // acquired, this function's obligation
	escaped                    // ownership transferred
	released                   // release reached
)

// varState is one tracked resource variable's dataflow fact.
type varState struct {
	st   status
	kind string
	// errVar pairs the resource with the error result of the acquiring
	// call (`v, err := helper()`): a return carrying that error is the
	// error path on which v is nil by convention, not a leak.
	errVar *types.Var
}

type state map[*types.Var]varState

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// merge keeps the strongest remaining obligation per variable: a path
// where the resource is still live dominates one where it was escaped
// or released.
func merge(a, b state) state {
	m := a.clone()
	for k, v := range b {
		cur, ok := m[k]
		if !ok || rank(v.st) > rank(cur.st) {
			m[k] = v
		}
	}
	return m
}

func rank(s status) int {
	switch s {
	case live:
		return 3
	case escaped:
		return 2
	default:
		return 1
	}
}

func equal(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w.st != v.st {
			return false
		}
	}
	return true
}

// summary is one function's resource behaviour as seen by callers.
type summary struct {
	// constructs: result index -> kind for results that carry a freshly
	// acquired resource out of the function.
	constructs map[int]string
	// releasesParam: parameter indices released on every path.
	releasesParam map[int]bool
	// keepsParam: parameter indices whose ownership the function takes
	// (stores, returns, or captures them).
	keepsParam map[int]bool
}

func (s *summary) equal(o *summary) bool {
	return o != nil &&
		len(s.constructs) == len(o.constructs) &&
		len(s.releasesParam) == len(o.releasesParam) &&
		len(s.keepsParam) == len(o.keepsParam)
}

type checker struct {
	pass      *analysis.Pass
	pkg       *flow.Pkg
	summaries map[*types.Func]*summary
	findings  map[string]findRec
}

type findRec struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		pkg:       flow.NewPkg(pass),
		summaries: map[*types.Func]*summary{},
		findings:  map[string]findRec{},
	}
	c.pkg.BottomUp(func(fi *flow.FuncInfo) bool {
		s := c.analyze(fi)
		prev := c.summaries[fi.Obj]
		c.summaries[fi.Obj] = s
		return !s.equal(prev)
	})
	// Function literals own their acquisitions too (no summaries).
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.analyzeBody(cfg.New(lit.Body), nil, nil)
			}
			return true
		})
	}
	out := make([]findRec, 0, len(c.findings))
	for _, fr := range c.findings {
		out = append(out, fr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	for _, fr := range out {
		c.pass.Reportf(fr.pos, "%s", fr.msg)
	}
	return nil
}

// fnFacts accumulates per-function observations across the dataflow.
type fnFacts struct {
	acquired   map[*types.Var]token.Pos // acquisition site
	sawRelease map[*types.Var]bool
	sawEscape  map[*types.Var]bool
	// leakAt: exit sites where the variable was still live. pos NoPos
	// means the function end (no return statement).
	leakAt map[*types.Var]map[token.Pos]bool
	// paramSlot maps tracked parameter variables to their index.
	paramSlot map[*types.Var]int
	// paramLiveExit: some exit still saw the parameter unreleased.
	paramLiveExit map[*types.Var]bool
	// constructs: result index -> kind seen at some return.
	constructs map[int]string
}

func (c *checker) analyze(fi *flow.FuncInfo) *summary {
	facts := &fnFacts{
		acquired:      map[*types.Var]token.Pos{},
		sawRelease:    map[*types.Var]bool{},
		sawEscape:     map[*types.Var]bool{},
		leakAt:        map[*types.Var]map[token.Pos]bool{},
		paramSlot:     map[*types.Var]int{},
		paramLiveExit: map[*types.Var]bool{},
		constructs:    map[int]string{},
	}
	init := state{}
	if fi.Decl.Type.Params != nil {
		i := 0
		for _, field := range fi.Decl.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for j := 0; j < n; j++ {
				if j < len(field.Names) {
					if v, ok := c.pass.TypesInfo.Defs[field.Names[j]].(*types.Var); ok && v != nil {
						if kind := kindOfType(v.Type()); kind != "" {
							facts.paramSlot[v] = i
							init[v] = varState{st: live, kind: kind}
						}
					}
				}
				i++
			}
		}
	}
	c.analyzeBody(fi.Graph, init, facts)

	s := &summary{
		constructs:    map[int]string{},
		releasesParam: map[int]bool{},
		keepsParam:    map[int]bool{},
	}
	for i, kind := range facts.constructs {
		s.constructs[i] = kind
	}
	for v, slot := range facts.paramSlot {
		if facts.sawEscape[v] {
			s.keepsParam[slot] = true
			continue
		}
		if facts.sawRelease[v] && !facts.paramLiveExit[v] {
			s.releasesParam[slot] = true
		}
	}
	c.reportLeaks(facts)
	return s
}

func (c *checker) reportLeaks(facts *fnFacts) {
	for v, pos := range facts.acquired {
		vs := facts.leakAt[v]
		kind := "resource"
		if k := kindOfType(v.Type()); k != "" {
			kind = k
		}
		verb := releaseVerb[kind]
		if verb == "" {
			verb = "released"
		}
		if !facts.sawRelease[v] && !facts.sawEscape[v] {
			c.addFinding(pos, fmt.Sprintf("%s %q is never %s in this function", kind, v.Name(), verb))
			continue
		}
		for at := range vs {
			if at == token.NoPos {
				c.addFinding(pos, fmt.Sprintf("%s %q may not be %s on every path through this function", kind, v.Name(), verb))
			} else {
				c.addFinding(at, fmt.Sprintf("%s %q may not be %s on this return path", kind, v.Name(), verb))
			}
		}
	}
}

// analyzeBody runs the resource dataflow over one CFG. facts is nil for
// function literals (diagnostics only, via a fresh facts).
func (c *checker) analyzeBody(g *cfg.CFG, init state, facts *fnFacts) {
	if facts == nil {
		facts = &fnFacts{
			acquired:      map[*types.Var]token.Pos{},
			sawRelease:    map[*types.Var]bool{},
			sawEscape:     map[*types.Var]bool{},
			leakAt:        map[*types.Var]map[token.Pos]bool{},
			paramSlot:     map[*types.Var]int{},
			paramLiveExit: map[*types.Var]bool{},
			constructs:    map[int]string{},
		}
		defer c.reportLeaks(facts)
	}
	if init == nil {
		init = state{}
	}
	transfer := func(b *cfg.Block, in state) state {
		st := in.clone()
		for _, stmt := range b.Stmts {
			c.applyStmt(stmt, st, facts)
		}
		for _, e := range b.Exprs {
			c.applyExpr(e, st, facts)
		}
		c.recordExits(g, b, st, facts)
		return st
	}
	flow.Forward(g, init, transfer, merge, equal)
}

// recordExits notes still-live resources on edges into Exit. Panic-style
// terminal edges are not leak paths.
func (c *checker) recordExits(g *cfg.CFG, b *cfg.Block, st state, facts *fnFacts) {
	toExit := false
	for _, s := range b.Succs {
		if s == g.Exit {
			toExit = true
		}
	}
	if !toExit {
		return
	}
	var ret *ast.ReturnStmt
	if n := len(b.Stmts); n > 0 {
		last := b.Stmts[n-1]
		if r, ok := last.(*ast.ReturnStmt); ok {
			ret = r
		} else if es, ok := last.(*ast.ExprStmt); ok {
			if call, ok := ast.Unparen(es.X).(*ast.CallExpr); ok && terminalCall(call) {
				return // panic/Fatal path, not a resource leak
			}
		}
	}
	pos := token.NoPos
	if ret != nil {
		pos = ret.Pos()
	}
	for v, vs := range st {
		if vs.st != live {
			continue
		}
		if _, isParam := facts.paramSlot[v]; isParam {
			facts.paramLiveExit[v] = true
			continue
		}
		if ret != nil && vs.errVar != nil && returnsVar(c.pass.TypesInfo, ret, vs.errVar) {
			continue // error-path return: the resource is nil by convention
		}
		if facts.leakAt[v] == nil {
			facts.leakAt[v] = map[token.Pos]bool{}
		}
		facts.leakAt[v][pos] = true
	}
}

// applyStmt handles one atomic statement.
func (c *checker) applyStmt(stmt ast.Stmt, st state, facts *fnFacts) {
	switch stmt := stmt.(type) {
	case *ast.AssignStmt:
		c.applyAssign(stmt, st, facts)
		return
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					c.bindValues(vs.Names, vs.Values, st, facts)
				}
			}
		}
		return
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
			if kind := c.acquisitionKind(call); kind != "" {
				c.addFinding(call.Pos(), fmt.Sprintf(
					"result of %s is discarded; the %s can never be %s",
					callName(call), kind, releaseVerb[kind]))
				return
			}
		}
	case *ast.ReturnStmt:
		for i, r := range stmt.Results {
			if kind := c.resultKind(r, st, facts); kind != "" {
				facts.constructs[i] = kind
			}
		}
	}
	c.applyExpr(stmt, st, facts)
}

// resultKind reports the resource kind a return result carries out: a
// live variable this function acquired (not a passed-through parameter)
// or a direct acquisition call.
func (c *checker) resultKind(r ast.Expr, st state, facts *fnFacts) string {
	if v := flow.VarOf(c.pass.TypesInfo, r); v != nil {
		if _, isParam := facts.paramSlot[v]; isParam {
			return ""
		}
		if vs, ok := st[v]; ok && vs.st == live {
			return vs.kind
		}
		return ""
	}
	if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
		return c.acquisitionKind(call)
	}
	return ""
}

// applyAssign handles bindings (acquisitions) and stores (escapes).
func (c *checker) applyAssign(a *ast.AssignStmt, st state, facts *fnFacts) {
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			c.bindOne(a.Lhs[i], a.Rhs[i], st, facts)
		}
	} else if len(a.Rhs) == 1 {
		var names []*ast.Ident
		for _, lhs := range a.Lhs {
			id, _ := ast.Unparen(lhs).(*ast.Ident)
			names = append(names, id) // nil for non-ident targets
		}
		c.bindMulti(names, a.Rhs[0], st, facts)
	}
	// Process calls and remaining uses on the right-hand sides.
	for _, rhs := range a.Rhs {
		c.applyExpr(rhs, st, facts)
	}
}

// bindValues handles `var v = expr` declarations.
func (c *checker) bindValues(names []*ast.Ident, values []ast.Expr, st state, facts *fnFacts) {
	if len(values) == len(names) {
		for i := range names {
			c.bindOne(names[i], values[i], st, facts)
			c.applyExpr(values[i], st, facts)
		}
	} else if len(values) == 1 {
		c.bindMulti(names, values[0], st, facts)
		c.applyExpr(values[0], st, facts)
	}
}

// bindOne binds a single-value expression to a target.
func (c *checker) bindOne(lhs, rhs ast.Expr, st state, facts *fnFacts) {
	id, isIdent := ast.Unparen(lhs).(*ast.Ident)
	// Acquisition bound to a variable.
	if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
		kind := c.acquisitionKind(call)
		if kind == "" {
			if callee := c.pkg.Callee(call); callee != nil {
				if s := c.summaries[callee]; s != nil {
					kind = s.constructs[0]
				}
			}
		}
		if kind != "" {
			if isIdent && id.Name != "_" {
				if v := flow.VarOf(c.pass.TypesInfo, id); v != nil {
					st[v] = varState{st: live, kind: kind}
					facts.acquired[v] = call.Pos()
				}
				return
			}
			// Bound to a field or index: ownership transferred at birth.
			return
		}
	}
	// Aliasing or storing a tracked variable transfers ownership
	// (`w := v`, `s.f = v`, `m[k] = v`) — but `_ = v` keeps it here.
	if v := flow.VarOf(c.pass.TypesInfo, rhs); v != nil {
		if vs, ok := st[v]; ok && vs.st == live {
			if !isIdent || id.Name != "_" {
				vs.st = escaped
				st[v] = vs
				facts.sawEscape[v] = true
			}
		}
	}
}

// bindMulti binds a multi-result call `a, b := f()`.
func (c *checker) bindMulti(names []*ast.Ident, rhs ast.Expr, st state, facts *fnFacts) {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return
	}
	constructs := map[int]string{}
	if callee := c.pkg.Callee(call); callee != nil {
		if s := c.summaries[callee]; s != nil {
			for i, k := range s.constructs {
				constructs[i] = k
			}
		}
	}
	if len(constructs) == 0 {
		return
	}
	// Pair each constructed result with the call's error result, if any.
	var errVar *types.Var
	for i, id := range names {
		if id == nil || id.Name == "_" {
			continue
		}
		if _, isRes := constructs[i]; isRes {
			continue
		}
		if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok && v != nil && isErrorVar(v) {
			_ = i
			errVar = v
		}
	}
	for i, kind := range constructs {
		if i >= len(names) || names[i] == nil || names[i].Name == "_" {
			continue
		}
		if v, ok := c.pass.TypesInfo.Defs[names[i]].(*types.Var); ok && v != nil {
			st[v] = varState{st: live, kind: kind, errVar: errVar}
			facts.acquired[v] = call.Pos()
		}
	}
}

func isErrorVar(v *types.Var) bool {
	t := v.Type()
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// applyExpr walks an expression or statement fragment for releases,
// calls, sends, composite literals, and closure captures.
func (c *checker) applyExpr(n ast.Node, st state, facts *fnFacts) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// Captured resources belong to the closure now.
			c.escapeIdents(m, st, facts)
			return false
		case *ast.GoStmt:
			c.escapeIdents(m.Call, st, facts)
			return false
		case *ast.CallExpr:
			c.applyCall(m, st, facts)
		case *ast.SendStmt:
			c.escapeIfVar(m.Value, st, facts)
		case *ast.CompositeLit:
			for _, el := range m.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					c.escapeIfVar(kv.Value, st, facts)
				} else {
					c.escapeIfVar(el, st, facts)
				}
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				c.escapeIfVar(m.X, st, facts)
			}
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				c.escapeIfVar(r, st, facts)
			}
		}
		return true
	})
}

// escapeIfVar transfers ownership only when the expression's value IS a
// tracked resource variable — mentioning the variable inside a larger
// expression (res.Size(), len(buf)) is not a transfer.
func (c *checker) escapeIfVar(e ast.Expr, st state, facts *fnFacts) {
	v := flow.VarOf(c.pass.TypesInfo, e)
	if v == nil {
		return
	}
	if vs, ok := st[v]; ok && vs.st == live {
		vs.st = escaped
		st[v] = vs
		facts.sawEscape[v] = true
	}
}

// applyCall handles release calls and argument passing.
func (c *checker) applyCall(call *ast.CallExpr, st state, facts *fnFacts) {
	// memory.ReleaseBuffer(b)
	if obj := calleeIn(c.pass.TypesInfo, call, memoryPkg); obj != nil && obj.Name() == "ReleaseBuffer" {
		if len(call.Args) == 1 {
			c.release(call.Args[0], st, facts)
		}
		return
	}
	// v.Free() / v.Release() on a tracked resource.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v := flow.VarOf(c.pass.TypesInfo, sel.X); v != nil {
			if vs, ok := st[v]; ok {
				if releaseMethods[vs.kind] == sel.Sel.Name {
					vs.st = released
					st[v] = vs
					facts.sawRelease[v] = true
				}
				// Other methods on the resource (Grow, Shrink, Size,
				// Reserved...) neither release nor transfer it.
				return
			}
		}
	}
	// Arguments: same-package summaries decide; unknown callees are
	// assumed to take ownership (conservative against false leaks).
	callee := c.pkg.Callee(call)
	var s *summary
	if callee != nil {
		s = c.summaries[callee]
	}
	for i, arg := range call.Args {
		v := flow.VarOf(c.pass.TypesInfo, arg)
		if v == nil {
			continue
		}
		vs, ok := st[v]
		if !ok || vs.st != live {
			continue
		}
		switch {
		case s != nil && s.releasesParam[i]:
			vs.st = released
			st[v] = vs
			facts.sawRelease[v] = true
		case s != nil && !s.keepsParam[i]:
			// Known same-package callee that neither releases nor keeps:
			// obligation stays here.
		default:
			vs.st = escaped
			st[v] = vs
			facts.sawEscape[v] = true
		}
	}
}

func (c *checker) release(arg ast.Expr, st state, facts *fnFacts) {
	v := flow.VarOf(c.pass.TypesInfo, arg)
	if v == nil {
		return
	}
	if vs, ok := st[v]; ok {
		vs.st = released
		st[v] = vs
		facts.sawRelease[v] = true
	}
}

// escapeIdents marks every tracked live variable mentioned under n as
// ownership-transferred.
func (c *checker) escapeIdents(n ast.Node, st state, facts *fnFacts) {
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		v := flow.VarOf(c.pass.TypesInfo, id)
		if v == nil {
			return true
		}
		if vs, ok := st[v]; ok && vs.st == live {
			vs.st = escaped
			st[v] = vs
			facts.sawEscape[v] = true
		}
		return true
	})
}

// acquisitionKind reports the resource kind of a direct acquisition
// call into the memory package, or "".
func (c *checker) acquisitionKind(call *ast.CallExpr) string {
	obj := calleeIn(c.pass.TypesInfo, call, memoryPkg)
	if obj == nil {
		return ""
	}
	return acquireFuncs[obj.Name()]
}

// calleeIn resolves a call to a function object declared in pkgPath.
func calleeIn(info *types.Info, call *ast.CallExpr, pkgPath string) types.Object {
	var obj types.Object
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fn]
	case *ast.SelectorExpr:
		obj = info.Uses[fn.Sel]
	}
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return nil
	}
	return obj
}

func kindOfType(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		if named, ok := types.Unalias(ptr.Elem()).(*types.Named); ok {
			if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == memoryPkg {
				switch named.Obj().Name() {
				case "Reservation":
					return "reservation"
				case "ChildPool":
					return "child pool"
				}
			}
		}
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if basic, ok := sl.Elem().Underlying().(*types.Basic); ok && basic.Kind() == types.Byte {
			// Only treat []byte as a tracked buffer for parameters of
			// release helpers; plain byte slices are ubiquitous.
			return "buffer"
		}
	}
	return ""
}

// returnsVar reports whether ret's results mention v (the paired error).
func returnsVar(info *types.Info, ret *ast.ReturnStmt, v *types.Var) bool {
	for _, r := range ret.Results {
		found := false
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && flow.VarOf(info, id) == v {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func terminalCall(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		switch fn.Sel.Name {
		case "Exit", "Fatal", "Fatalf", "Goexit":
			return true
		}
	}
	return false
}

func callName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return "the call"
}

func (c *checker) addFinding(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d:%s", pos, msg)
	if _, ok := c.findings[key]; ok {
		return
	}
	c.findings[key] = findRec{pos: pos, msg: msg}
}
