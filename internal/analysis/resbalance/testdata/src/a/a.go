// Package a seeds the resbalance golden suite: leaks on early error
// returns, never-released acquisitions, and the ownership-transfer
// idioms (struct literals, cleanup closures, constructor helpers) that
// must stay quiet.
package a

import (
	"errors"

	"gofusion/internal/memory"
)

func pool() memory.Pool { return memory.NewUnboundedPool() }

// --- true positives ---

func neverFreed() {
	res := memory.NewReservation(pool(), "op") // want `reservation "res" is never freed in this function`
	_ = res.Size()
}

func leakOnErrorReturn(n int64) error {
	res := memory.NewReservation(pool(), "op")
	if err := res.Grow(n); err != nil {
		return err // want `reservation "res" may not be freed on this return path`
	}
	res.Free()
	return nil
}

func leakOnOneBranch(flag bool) {
	buf := memory.AllocBuffer(64)
	if flag {
		return // want `buffer "buf" may not be released on this return path`
	}
	memory.ReleaseBuffer(buf)
}

func discarded() {
	memory.AllocBuffer(16) // want `result of AllocBuffer is discarded; the buffer can never be released`
}

func childNeverReleased() {
	child := memory.NewChildPool(pool(), "query", 0) // want `child pool "child" is never released in this function`
	_ = child.Reserved()
}

// Constructor helper: the obligation propagates to the caller.
func newOpReservation(name string) *memory.Reservation {
	return memory.NewReservation(pool(), name)
}

func leakFromHelper() {
	res := newOpReservation("sort") // want `reservation "res" is never freed in this function`
	_ = res.Size()
}

// A helper that neither releases nor keeps its parameter leaves the
// obligation with the caller.
func peek(res *memory.Reservation) int64 { return res.Size() }

func leakThroughNeutralHelper(flag bool) {
	res := memory.NewReservation(pool(), "op")
	_ = peek(res)
	if flag {
		return // want `reservation "res" may not be freed on this return path`
	}
	res.Free()
}

// --- ownership transfers: no findings ---

type op struct {
	res   *memory.Reservation
	child *memory.ChildPool
	buf   []byte
}

// Constructor-hands-to-struct: the operator's Close owns the release.
func newOp() *op {
	return &op{
		res:   memory.NewReservation(pool(), "op"),
		child: memory.NewChildPool(pool(), "op", 0),
		buf:   memory.AllocBuffer(1 << 10),
	}
}

func (o *op) Close() {
	o.res.Free()
	o.child.Release()
	memory.ReleaseBuffer(o.buf)
}

// Acquire-then-store via a local.
func newOpViaLocal() *op {
	res := memory.NewReservation(pool(), "op")
	return &op{res: res}
}

func storeInField(o *op) {
	res := memory.NewReservation(pool(), "op")
	o.res = res
}

// Cleanup-closure idiom (sort/aggregate executors).
func closureCleanup(n int64) (func(), error) {
	res := memory.NewReservation(pool(), "op")
	cleanup := func() { res.Free() }
	if err := res.Grow(n); err != nil {
		cleanup()
		return nil, err
	}
	return cleanup, nil
}

// Deferred release covers every return path.
func deferFree(n int64) error {
	res := memory.NewReservation(pool(), "op")
	defer res.Free()
	if err := res.Grow(n); err != nil {
		return err
	}
	return nil
}

// Release through a helper that frees its parameter on all paths.
func freeIt(res *memory.Reservation) { res.Free() }

func helperRelease() {
	res := memory.NewReservation(pool(), "op")
	freeIt(res)
}

// Constructing helper with an error result: returning the paired error
// is the path on which the resource is nil by convention.
func newGrown(n int64) (*memory.Reservation, error) {
	res := memory.NewReservation(pool(), "op")
	if err := res.Grow(n); err != nil {
		res.Free()
		return nil, err
	}
	return res, nil
}

func errIdiom(n int64) error {
	res, err := newGrown(n)
	if err != nil {
		return err
	}
	res.Free()
	return nil
}

// The session idiom: the child pool is released by the returned cleanup.
func sessionStyle() (memory.Pool, func()) {
	child := memory.NewChildPool(pool(), "query", 0)
	cleanup := func() { child.Release() }
	return child, cleanup
}

// Panic paths are not leak paths.
func panicPath(flag bool) {
	buf := memory.AllocBuffer(8)
	if flag {
		panic(errors.New("boom"))
	}
	memory.ReleaseBuffer(buf)
}
