// Package flow is the interprocedural layer under the gofusionlint
// analyzers: it collects every function of the package under analysis
// with its control-flow graph (internal/analysis/cfg), builds the
// same-package call graph, and drives bottom-up summary computation in
// strongly-connected-component order so recursive groups iterate to a
// fixpoint while everything else is visited exactly once, callees before
// callers.
//
// Analyzers own their summary types; flow owns the traversal. A typical
// client computes, per function, facts like "releases its i-th
// parameter on every path", "acquires lock class L", or "threads its
// ctx parameter into blocking calls", then consults callee summaries at
// call sites while walking the caller's CFG with the Forward dataflow
// runner.
//
// The layer is package-local by design: the driver analyzes one package
// against its dependencies' export data only (no cross-package facts),
// matching the rest of the suite. Cross-package invariants (the global
// lock-order policy) are encoded as explicit rank tables in the
// analyzers instead.
package flow

import (
	"go/ast"
	"go/types"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/cfg"
	"gofusion/internal/analysis/fusion"
)

// FuncInfo is one function or method declared in the package under
// analysis.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	// Graph is the function's CFG (nil for bodyless declarations).
	Graph *cfg.CFG
}

// Pkg holds the package-level interprocedural context.
type Pkg struct {
	Pass  *analysis.Pass
	Funcs map[*types.Func]*FuncInfo
	// Callees maps each declared function to the same-package declared
	// functions it calls (direct calls only; calls through interfaces and
	// function values are not resolved).
	Callees map[*types.Func][]*types.Func
}

// NewPkg collects the package's declared functions, their CFGs, and the
// same-package call graph.
func NewPkg(pass *analysis.Pass) *Pkg {
	p := &Pkg{
		Pass:    pass,
		Funcs:   map[*types.Func]*FuncInfo{},
		Callees: map[*types.Func][]*types.Func{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			p.Funcs[fn] = &FuncInfo{Obj: fn, Decl: fd, Graph: cfg.New(fd.Body)}
		}
	}
	for fn, info := range p.Funcs {
		seen := map[*types.Func]bool{}
		ast.Inspect(info.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.Callee(call)
			if callee != nil && !seen[callee] {
				seen[callee] = true
				p.Callees[fn] = append(p.Callees[fn], callee)
			}
			return true
		})
	}
	return p
}

// Callee resolves a call expression to a function declared in this
// package, or nil (externals, interface calls, function values).
func (p *Pkg) Callee(call *ast.CallExpr) *types.Func {
	fn, _ := fusion.CalleeObj(p.Pass.TypesInfo, call).(*types.Func)
	if fn == nil {
		return nil
	}
	if _, ok := p.Funcs[fn]; !ok {
		return nil
	}
	return fn
}

// BottomUp visits every function callees-first. visit returns whether
// the function's summary changed; members of a recursive cycle (an SCC
// of the call graph) are revisited until no member changes, so summary
// computation reaches a fixpoint on recursion.
func (p *Pkg) BottomUp(visit func(*FuncInfo) bool) {
	for _, scc := range p.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, fn := range scc {
				if visit(p.Funcs[fn]) {
					changed = true
				}
			}
			if len(scc) == 1 && !p.selfRecursive(scc[0]) {
				break // no cycle: one visit suffices
			}
		}
	}
}

func (p *Pkg) selfRecursive(fn *types.Func) bool {
	for _, c := range p.Callees[fn] {
		if c == fn {
			return true
		}
	}
	return false
}

// SCCs returns the call graph's strongly connected components in
// reverse topological order: every edge leaves a later component, so
// iterating in order processes callees before callers. (Tarjan's
// algorithm emits components in exactly this order.)
func (p *Pkg) SCCs() [][]*types.Func {
	// Deterministic node order: by source position of the declaration.
	nodes := make([]*types.Func, 0, len(p.Funcs))
	for fn := range p.Funcs {
		nodes = append(nodes, fn)
	}
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && p.Funcs[nodes[j]].Decl.Pos() < p.Funcs[nodes[j-1]].Decl.Pos(); j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}

	index := map[*types.Func]int{}
	low := map[*types.Func]int{}
	onStack := map[*types.Func]bool{}
	var stack []*types.Func
	var out [][]*types.Func
	next := 0

	var strongconnect func(v *types.Func)
	strongconnect = func(v *types.Func) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range p.Callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*types.Func
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return out
}

// Forward runs a forward dataflow over g until fixpoint and returns the
// IN state of every reachable block. transfer must not mutate its input
// (copy-on-write via the client's clone); merge combines two states
// (used at join points); equal stops iteration.
func Forward[T any](
	g *cfg.CFG,
	init T,
	transfer func(b *cfg.Block, in T) T,
	merge func(a, b T) T,
	equal func(a, b T) bool,
) map[*cfg.Block]T {
	rpo := g.RPO()
	order := map[*cfg.Block]int{}
	for i, b := range rpo {
		order[b] = i
	}
	in := map[*cfg.Block]T{g.Entry: init}
	out := map[*cfg.Block]T{}
	have := map[*cfg.Block]bool{g.Entry: true}
	haveOut := map[*cfg.Block]bool{}

	// Worklist in RPO order; loops revisit until stable.
	work := append([]*cfg.Block(nil), rpo...)
	queued := map[*cfg.Block]bool{}
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		// Pop the lowest-RPO queued block for fast convergence.
		bi := 0
		for i := 1; i < len(work); i++ {
			if order[work[i]] < order[work[bi]] {
				bi = i
			}
		}
		b := work[bi]
		work = append(work[:bi], work[bi+1:]...)
		queued[b] = false

		if !have[b] {
			continue // no predecessor state yet; will be requeued by preds
		}
		o := transfer(b, in[b])
		if haveOut[b] && equal(out[b], o) {
			continue
		}
		out[b] = o
		haveOut[b] = true
		for _, s := range b.Succs {
			var ns T
			if have[s] {
				ns = merge(in[s], o)
			} else {
				ns = o
			}
			if !have[s] || !equal(in[s], ns) {
				in[s] = ns
				have[s] = true
				if !queued[s] {
					work = append(work, s)
					queued[s] = true
				}
			}
		}
	}
	return in
}

// ParamIndex returns which parameter of fn (by declaration order,
// receiver excluded) the object v is, or -1. Used to map dataflow facts
// about local variables back to summary slots.
func ParamIndex(fn *ast.FuncDecl, info *types.Info, v *types.Var) int {
	if fn.Type.Params == nil {
		return -1
	}
	i := 0
	for _, field := range fn.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if info.Defs[name] == v {
				return i
			}
			i++
		}
	}
	return -1
}

// RecvVar returns the receiver variable of a method declaration, or nil.
func RecvVar(fn *ast.FuncDecl, info *types.Info) *types.Var {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fn.Recv.List[0].Names[0]].(*types.Var)
	return v
}

// VarOf resolves an identifier expression (possibly parenthesized) to
// its variable object, or nil.
func VarOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	var obj types.Object
	if d, ok := info.Defs[id]; ok {
		obj = d
	} else if u, ok := info.Uses[id]; ok {
		obj = u
	}
	v, _ := obj.(*types.Var)
	return v
}
