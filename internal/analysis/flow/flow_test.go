package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/cfg"
)

func checkSrc(t *testing.T, src string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, TypesInfo: info}
}

func TestSCCOrderCalleesFirst(t *testing.T) {
	pass := checkSrc(t, `package p
func leaf() int { return 1 }
func mid() int { return leaf() }
func a() int { return b() + mid() }
func b() int { return a() }
func top() int { return a() }
`)
	p := NewPkg(pass)
	if len(p.Funcs) != 5 {
		t.Fatalf("expected 5 functions, got %d", len(p.Funcs))
	}
	sccs := p.SCCs()
	pos := map[string]int{}
	for i, scc := range sccs {
		for _, fn := range scc {
			pos[fn.Name()] = i
		}
	}
	// leaf before mid before the {a,b} cycle before top.
	if !(pos["leaf"] < pos["mid"] && pos["mid"] < pos["a"] && pos["a"] < pos["top"]) {
		t.Fatalf("bad SCC order: %v", pos)
	}
	if pos["a"] != pos["b"] {
		t.Fatalf("a and b are mutually recursive and must share an SCC: %v", pos)
	}

	// BottomUp revisits the recursive component until stable.
	visits := map[string]int{}
	p.BottomUp(func(fi *FuncInfo) bool {
		visits[fi.Obj.Name()]++
		// Report "changed" on the first visit only: the cycle then needs
		// one more confirming round.
		return visits[fi.Obj.Name()] == 1
	})
	if visits["leaf"] != 1 || visits["top"] != 1 {
		t.Fatalf("non-recursive functions visited more than once: %v", visits)
	}
	if visits["a"] < 2 || visits["b"] < 2 {
		t.Fatalf("recursive component not iterated: %v", visits)
	}
}

// TestForwardReachingFlag runs a tiny gen-kill problem: a boolean fact
// set by a call to set() and killed by clear(), checked at exit.
func TestForwardReachingFlag(t *testing.T) {
	pass := checkSrc(t, `package p
func set()
func clear()
func f(c bool) {
	set()
	if c {
		clear()
		return
	}
	_ = c
}
`)
	p := NewPkg(pass)
	var target *FuncInfo
	for _, fi := range p.Funcs {
		if fi.Obj.Name() == "f" {
			target = fi
		}
	}
	if target == nil {
		t.Fatal("f not found")
	}
	transfer := func(b *cfg.Block, in bool) bool {
		out := in
		for _, s := range b.Stmts {
			es, ok := s.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "set":
					out = true
				case "clear":
					out = false
				}
			}
		}
		return out
	}
	merge := func(a, b bool) bool { return a || b } // may-analysis
	equal := func(a, b bool) bool { return a == b }
	in := Forward(target.Graph, false, transfer, merge, equal)

	// The exit joins the cleared return path (false) and the fall-through
	// path (true): a may-analysis sees true.
	if got := in[target.Graph.Exit]; !got {
		t.Fatalf("exit IN state = %v, want true (set() reaches exit on the else path)", got)
	}
}
