// Package load type-checks packages for the gofusionlint analyzers
// without any dependency beyond the standard library and the go tool.
//
// It shells out to `go list -export -deps -json`, which compiles (or
// reuses from the build cache) every package matched plus its transitive
// dependencies and reports the export-data file of each. Target packages
// are then parsed from source and type-checked with go/types against that
// export data via the standard gc importer — the same import mechanism
// the real `go vet` uses, so standalone runs and `go vet -vettool` runs
// agree on types.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"

	"gofusion/internal/analysis"
)

// Package is one parsed and type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors holds type-checking problems; analyzers still run on
	// packages with errors, but drivers should surface them.
	TypeErrors []error
}

type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Error      *struct{ Err string }
}

var (
	listCacheMu sync.Mutex
	listCache   = map[string][]listedPkg{}
)

// goList invokes `go list -export -deps -json` for the patterns and
// decodes the JSON stream. Results are cached per (moduleDir, patterns)
// for the life of the process: the export-data inventory does not change
// under a single lint run, and every analyzer suite, analysistest
// invocation, and standalone driver pass can share one `go list` (the
// dominant cost of loading).
func goList(moduleDir string, patterns []string) ([]listedPkg, error) {
	key := moduleDir + "\x00" + strings.Join(patterns, "\x00")
	listCacheMu.Lock()
	cached, ok := listCache[key]
	listCacheMu.Unlock()
	if ok {
		return cached, nil
	}
	pkgs, err := goListUncached(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	listCacheMu.Lock()
	listCache[key] = pkgs
	listCacheMu.Unlock()
	return pkgs, nil
}

func goListUncached(moduleDir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer reading export data files named
// by exports (import path -> file). importMap remaps source import paths
// to canonical package paths (vet test variants); nil means identity.
func ExportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Check parses goFiles and type-checks them as one package.
func Check(fset *token.FileSet, importPath string, goFiles []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, gf, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{ImportPath: importPath, Fset: fset, Files: files, Info: analysis.NewTypesInfo()}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The bracketed " [foo.test]" suffix of test variants is not part of
	// the package path proper.
	path := importPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	tpkg, _ := conf.Check(path, fset, files, pkg.Info)
	pkg.Types = tpkg
	return pkg, nil
}

// Load type-checks the packages matching the go patterns (e.g. "./...")
// relative to moduleDir. Dependency-only packages are imported from
// export data, not re-parsed.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(moduleDir, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports, nil)
	var out []*Package
	for _, p := range listed {
		if p.DepOnly || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		var goFiles []string
		for _, gf := range p.GoFiles {
			goFiles = append(goFiles, filepath.Join(p.Dir, gf))
		}
		pkg, err := Check(fset, p.ImportPath, goFiles, imp)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		out = append(out, pkg)
	}
	return out, nil
}

var (
	moduleExportsOnce sync.Once
	moduleExports     map[string]string
	moduleExportsErr  error
)

// moduleDepExports returns the export-data map of every package in the
// module's ./... closure, computed once per process. Used to resolve the
// imports of out-of-module sources (analysistest testdata).
func moduleDepExports(moduleDir string) (map[string]string, error) {
	moduleExportsOnce.Do(func() {
		listed, err := goList(moduleDir, []string{"./..."})
		if err != nil {
			moduleExportsErr = err
			return
		}
		moduleExports = map[string]string{}
		for _, p := range listed {
			if p.Export != "" {
				moduleExports[p.ImportPath] = p.Export
			}
		}
	})
	return moduleExports, moduleExportsErr
}

// LoadDir parses and type-checks the .go files directly inside dir as one
// package (named importPath), resolving imports against the enclosing
// module's dependency closure. This is how analysistest loads testdata
// packages, which live outside the module's package tree but import real
// engine packages.
func LoadDir(moduleDir, dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, filepath.Join(dir, e.Name()))
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	exports, err := moduleDepExports(moduleDir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return Check(fset, importPath, goFiles, ExportImporter(fset, exports, nil))
}

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		d = parent
	}
}
