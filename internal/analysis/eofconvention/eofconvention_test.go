package eofconvention_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/eofconvention"
)

func TestEOFConvention(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), eofconvention.Analyzer, "a")
}
