package a

import (
	"errors"
	"fmt"
	"io"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
)

func countOK(s catalog.Stream) (int, error) {
	n := 0
	for {
		b, err := s.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		n += b.NumRows()
	}
}

func errorsIsOK(s catalog.Stream) error {
	for {
		_, err := s.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func switchOK(s catalog.Stream) error {
	for {
		_, err := s.Next()
		switch err {
		case io.EOF:
			return nil
		case nil:
		default:
			return err
		}
	}
}

// Treats exhaustion as failure: io.EOF is wrapped into a query error.
func bad(s catalog.Stream) error {
	for {
		b, err := s.Next() // want `never compared against io.EOF`
		if err != nil {
			return fmt.Errorf("scan: %w", err)
		}
		_ = b
	}
}

// Next-shaped wrappers legitimately forward io.EOF as their own result.
func adapterOK(s catalog.Stream) func() (*arrow.RecordBatch, error) {
	return func() (*arrow.RecordBatch, error) {
		b, err := s.Next()
		if err != nil {
			return nil, err
		}
		return b, nil
	}
}

type wrap struct{ inner catalog.Stream }

func (w *wrap) Next() (*arrow.RecordBatch, error) {
	b, err := w.inner.Next()
	if err != nil {
		return nil, err
	}
	return b, nil
}
