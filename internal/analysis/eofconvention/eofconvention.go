// Package eofconvention checks that callers of Stream.Next treat io.EOF
// as end-of-stream rather than as a failure. The engine-wide contract
// (catalog.Stream) is that Next returns io.EOF when exhausted; a caller
// that only tests `err != nil` and propagates will turn normal
// exhaustion into a query error (or, wrapped with %w into a new message,
// silently truncate results downstream). Functions whose own shape is a
// Next implementation — returning (*arrow.RecordBatch, error) — are
// exempt: propagating io.EOF unchanged is exactly how stream adapters
// forward end-of-stream.
package eofconvention

import (
	"go/ast"
	"go/token"
	"go/types"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/fusion"
)

// Analyzer is the eofconvention check.
var Analyzer = &analysis.Analyzer{
	Name: "eofconvention",
	Doc: "check that Stream.Next errors are compared against io.EOF\n\n" +
		"a function that consumes Stream.Next must contain an io.EOF test for\n" +
		"the returned error (err == io.EOF, errors.Is(err, io.EOF), or a\n" +
		"switch case), unless the function itself has a Next-shaped signature\n" +
		"and forwards the error as its own stream result.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	iface := fusion.StreamInterface(pass.Pkg)
	if iface == nil {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && !nextShaped(pass.TypesInfo.Defs[fn.Name]) {
					checkFunc(pass, iface, fn.Body)
				}
				return true
			case *ast.FuncLit:
				if t, ok := pass.TypesInfo.Types[fn]; ok && nextShapedSig(t.Type) {
					return true
				}
				checkFunc(pass, iface, fn.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// nextShaped reports whether obj is a function returning
// (*arrow.RecordBatch, error) — a stream adapter that may forward io.EOF.
func nextShaped(obj types.Object) bool {
	if obj == nil {
		return false
	}
	return nextShapedSig(obj.Type())
}

func nextShapedSig(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() != 2 || !fusion.IsErrorType(res.At(1).Type()) {
		return false
	}
	ptr, ok := types.Unalias(res.At(0).Type()).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "RecordBatch" && named.Obj().Pkg().Path() == "gofusion/internal/arrow"
}

// checkFunc flags Stream.Next error results that the function never
// compares against io.EOF. Nested function literals are checked
// independently (a literal with a Next shape may forward EOF; run
// handles the split).
func checkFunc(pass *analysis.Pass, iface *types.Interface, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Error variables assigned from a Stream.Next call, with the call
	// position for reporting.
	nextErrs := map[*types.Var]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isStreamNext(info, iface, call) {
			return true
		}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			if v := varOf(info, id); v != nil {
				if _, seen := nextErrs[v]; !seen {
					nextErrs[v] = call.Pos()
				}
			}
		}
		return true
	})
	if len(nextErrs) == 0 {
		return
	}

	// Does the function ever test one of those vars against io.EOF?
	compared := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			if v := eofComparedVar(info, n.X, n.Y); v != nil {
				compared[v] = true
			}
		case *ast.CallExpr:
			// errors.Is(err, io.EOF)
			if obj := fusion.CalleeObj(info, n); obj != nil && obj.Name() == "Is" &&
				obj.Pkg() != nil && obj.Pkg().Path() == "errors" && len(n.Args) == 2 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && isEOF(info, n.Args[1]) {
					if v := varOf(info, id); v != nil {
						compared[v] = true
					}
				}
			}
		case *ast.SwitchStmt:
			// switch err { case io.EOF: ... } / switch { case err == io.EOF: }
			if tag, ok := n.Tag.(*ast.Ident); ok {
				v := varOf(info, tag)
				if v == nil {
					return true
				}
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						for _, e := range cc.List {
							if isEOF(info, e) {
								compared[v] = true
							}
						}
					}
				}
			}
		}
		return true
	})

	for v, pos := range nextErrs {
		if !compared[v] {
			pass.Reportf(pos,
				"error from Stream.Next is never compared against io.EOF in this function; io.EOF means end-of-stream, not failure")
		}
	}
}

// isStreamNext matches calls of the form s.Next() where s implements the
// engine Stream interface.
func isStreamNext(info *types.Info, iface *types.Interface, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Next" || len(call.Args) != 0 {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	t := tv.Type
	return types.Implements(t, iface) ||
		types.Implements(types.NewPointer(t), iface) ||
		fusion.IsStreamNamed(t)
}

func eofComparedVar(info *types.Info, x, y ast.Expr) *types.Var {
	if isEOF(info, y) {
		if id, ok := ast.Unparen(x).(*ast.Ident); ok {
			return varOf(info, id)
		}
	}
	if isEOF(info, x) {
		if id, ok := ast.Unparen(y).(*ast.Ident); ok {
			return varOf(info, id)
		}
	}
	return nil
}

func isEOF(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "EOF" {
		return false
	}
	obj := info.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "io"
}

func varOf(info *types.Info, id *ast.Ident) *types.Var {
	var obj types.Object
	if d, ok := info.Defs[id]; ok {
		obj = d
	} else if u, ok := info.Uses[id]; ok {
		obj = u
	}
	v, _ := obj.(*types.Var)
	return v
}
