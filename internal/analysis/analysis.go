// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. It exists so the
// engine can ship custom invariant checkers (cmd/gofusionlint) without
// pulling external modules: the standard library provides parsing
// (go/parser), type checking (go/types), and export-data import
// (go/importer); this package provides the tiny driver contract on top.
//
// Analyzers in this suite are purely local (no cross-package facts), which
// keeps the vet-protocol shim trivial: each package is analyzed against
// its compiled dependencies' export data only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"time"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the check's identifier, used in -<name>=false flags and in
	// //nolint:<name> suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description (first line is the summary).
	Doc string
	// Run inspects a package and reports diagnostics through the Pass.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked representation into
// an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver filters suppressed lines
	// (//nolint comments) before rendering.
	Report func(Diagnostic)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name; filled by the driver when empty
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewTypesInfo returns a types.Info with every map analyzers rely on
// populated, so drivers cannot forget one.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// NolintAuditName is the name of the driver-level audit of //nolint
// directives (package nolintaudit). Because staleness is defined by what
// the other analyzers suppressed, the audit runs inside RunAnalyzers —
// the analyzer under this name is a marker that enables it.
const NolintAuditName = "nolintaudit"

// Timing records one analyzer's wall-clock cost over one package.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// RunAnalyzers executes each analyzer over the package and returns the
// surviving diagnostics (suppressed lines removed) sorted by position.
// If the list includes the nolintaudit marker, every //nolint directive
// is additionally audited: it must carry a "// reason:" trailer, and
// each analyzer it names (among those that ran) must actually have a
// finding suppressed by it — otherwise the directive is stale.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersTimed(analyzers, fset, files, pkg, info)
	return diags, err
}

// RunAnalyzersTimed is RunAnalyzers plus a per-analyzer wall-time
// breakdown, in suite order, for the driver's -debug output.
func RunAnalyzersTimed(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, []Timing, error) {
	directives := collectDirectives(fset, files)
	byLine := map[lineKey][]*directive{}
	for _, d := range directives {
		for _, k := range d.lines {
			byLine[k] = append(byLine[k], d)
		}
	}

	audit := false
	ran := map[string]bool{}
	var out []Diagnostic
	var timings []Timing
	for _, a := range analyzers {
		if a.Name == NolintAuditName {
			audit = true
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			p := fset.Position(d.Pos)
			sup := false
			for _, dir := range byLine[lineKey{p.Filename, p.Line}] {
				if dir.matches(d.Category) {
					dir.used[d.Category] = true
					sup = true
				}
			}
			if !sup {
				out = append(out, d)
			}
		}
		start := time.Now()
		err := a.Run(pass)
		timings = append(timings, Timing{Name: a.Name, Elapsed: time.Since(start)})
		if err != nil {
			return out, timings, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	if audit {
		start := time.Now()
		out = append(out, auditDirectives(directives, ran)...)
		timings = append(timings, Timing{Name: NolintAuditName, Elapsed: time.Since(start)})
	}
	sortDiagnostics(fset, out)
	return out, timings, nil
}

type lineKey struct {
	file string
	line int
}

// directive is one parsed //nolint comment:
//
//	//nolint:name1,name2 // reason: why the findings are acceptable
type directive struct {
	pos    token.Pos
	names  []string
	reason bool
	// lines the directive covers: its own, plus the next when it stands
	// on a line of its own.
	lines []lineKey
	// used records the analyzer names whose findings the directive
	// actually suppressed during this run.
	used map[string]bool
}

func (d *directive) matches(category string) bool {
	for _, n := range d.names {
		if n == category || n == "all" {
			return true
		}
	}
	return false
}

// collectDirectives parses every //nolint comment in the files.
func collectDirectives(fset *token.FileSet, files []*ast.File) []*directive {
	var out []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "nolint:") {
					continue
				}
				rest := strings.TrimPrefix(text, "nolint:")
				reason := false
				if i := strings.Index(rest, "//"); i >= 0 {
					trailer := strings.TrimSpace(rest[i+2:])
					rest = rest[:i]
					if tail, ok := strings.CutPrefix(trailer, "reason:"); ok {
						reason = strings.TrimSpace(tail) != ""
					}
				}
				d := &directive{pos: c.Pos(), reason: reason, used: map[string]bool{}}
				for _, n := range strings.Split(rest, ",") {
					if n = strings.TrimSpace(n); n != "" {
						d.names = append(d.names, n)
					}
				}
				p := fset.Position(c.Pos())
				d.lines = []lineKey{{p.Filename, p.Line}}
				if onOwnLine(fset, f, c) {
					d.lines = append(d.lines, lineKey{p.Filename, p.Line + 1})
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// auditDirectives produces the nolintaudit findings: directives without
// a reason trailer, naming no analyzer, or suppressing nothing that the
// analyzers which ran would have reported (stale).
func auditDirectives(directives []*directive, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Diagnostic{Pos: pos, Category: NolintAuditName, Message: fmt.Sprintf(format, args...)})
	}
	for _, d := range directives {
		if len(d.names) == 0 {
			report(d.pos, "nolint directive names no analyzer; spell //nolint:<name> // reason: ...")
			continue
		}
		if !d.reason {
			report(d.pos, `nolint directive has no justification; append " // reason: ..." explaining why the finding is acceptable`)
		}
		for _, n := range d.names {
			switch {
			case n == "all":
				if len(ran) > 0 && len(d.used) == 0 {
					report(d.pos, "nolint:all suppresses no finding here; remove the stale directive")
				}
			case ran[n] && !d.used[n]:
				report(d.pos, "nolint:%s suppresses no %s finding here; remove the stale directive", n, n)
			}
		}
	}
	return out
}

// onOwnLine reports whether comment c has no code before it on its line.
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cp := fset.Position(c.Pos())
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		if _, isFile := n.(*ast.File); !isFile {
			np := fset.Position(n.Pos())
			if np.Filename == cp.Filename && np.Line == cp.Line && n.Pos() < c.Pos() {
				own = false
			}
		}
		return own
	})
	return own
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	// Insertion sort: diagnostic counts are tiny.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(fset, ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
