// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. It exists so the
// engine can ship custom invariant checkers (cmd/gofusionlint) without
// pulling external modules: the standard library provides parsing
// (go/parser), type checking (go/types), and export-data import
// (go/importer); this package provides the tiny driver contract on top.
//
// Analyzers in this suite are purely local (no cross-package facts), which
// keeps the vet-protocol shim trivial: each package is analyzed against
// its compiled dependencies' export data only.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name is the check's identifier, used in -<name>=false flags and in
	// //nolint:<name> suppression comments. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description (first line is the summary).
	Doc string
	// Run inspects a package and reports diagnostics through the Pass.
	Run func(*Pass) error
}

// Pass carries one package's parsed and type-checked representation into
// an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver filters suppressed lines
	// (//nolint comments) before rendering.
	Report func(Diagnostic)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Pos
	Category string // analyzer name; filled by the driver when empty
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// NewTypesInfo returns a types.Info with every map analyzers rely on
// populated, so drivers cannot forget one.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// RunAnalyzers executes each analyzer over the package and returns the
// surviving diagnostics (suppressed lines removed) sorted by position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	suppressed := suppressedLines(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			p := fset.Position(d.Pos)
			if names, ok := suppressed[lineKey{p.Filename, p.Line}]; ok {
				if names[d.Category] || names["all"] {
					return
				}
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(fset, out)
	return out, nil
}

type lineKey struct {
	file string
	line int
}

// suppressedLines maps file:line to the set of analyzer names suppressed
// there by a trailing or preceding "//nolint:name1,name2" comment
// ("//nolint:all" silences every analyzer on the line).
func suppressedLines(fset *token.FileSet, files []*ast.File) map[lineKey]map[string]bool {
	sup := map[lineKey]map[string]bool{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "nolint:") {
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(strings.TrimPrefix(text, "nolint:"), ",") {
					if n = strings.TrimSpace(n); n != "" {
						names[n] = true
					}
				}
				p := fset.Position(c.Pos())
				merge(sup, lineKey{p.Filename, p.Line}, names)
				// A nolint comment on its own line also covers the next line.
				if onOwnLine(fset, f, c) {
					merge(sup, lineKey{p.Filename, p.Line + 1}, names)
				}
			}
		}
	}
	return sup
}

func merge(sup map[lineKey]map[string]bool, k lineKey, names map[string]bool) {
	dst, ok := sup[k]
	if !ok {
		dst = map[string]bool{}
		sup[k] = dst
	}
	for n := range names {
		dst[n] = true
	}
}

// onOwnLine reports whether comment c has no code before it on its line.
func onOwnLine(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cp := fset.Position(c.Pos())
	own := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !own {
			return false
		}
		if _, isFile := n.(*ast.File); !isFile {
			np := fset.Position(n.Pos())
			if np.Filename == cp.Filename && np.Line == cp.Line && n.Pos() < c.Pos() {
				own = false
			}
		}
		return own
	})
	return own
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	// Insertion sort: diagnostic counts are tiny.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(fset, ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(fset *token.FileSet, a, b Diagnostic) bool {
	pa, pb := fset.Position(a.Pos), fset.Position(b.Pos)
	if pa.Filename != pb.Filename {
		return pa.Filename < pb.Filename
	}
	if pa.Line != pb.Line {
		return pa.Line < pb.Line
	}
	return pa.Column < pb.Column
}
