// Package ctxflow checks that cancellation contexts actually thread
// into the operations they are supposed to bound:
//
//   - A function that takes a context (context.Context or
//     *physical.ExecContext) must not mint a fresh root with
//     context.Background()/context.TODO() — that silently detaches the
//     work from the caller's cancellation. The engine's nil-default
//     idiom `if ctx == nil { ctx = context.Background() }` (assigning
//     the root to the context parameter itself) stays legal.
//   - HTTP handlers (w http.ResponseWriter, r *http.Request) must
//     derive from the request context instead of Background/TODO, so a
//     disconnecting client cancels the query.
//   - A blocking channel operation in a context-bearing function must
//     observe the context: selects need a case on the ctx (Done()), and
//     bare sends/receives are flagged. Selects with a default clause
//     cannot park and are exempt.
//   - Calling a same-package function that blocks without observing any
//     context, from a function that has one, is flagged at the call
//     site: the context should be plumbed through. The callee summaries
//     propagate bottom-up over the call graph, so the blocking may be
//     buried several calls deep.
package ctxflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/flow"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "check that contexts thread into blocking operations\n\n" +
		"flags context.Background()/TODO() in functions that already have a\n" +
		"context (or in HTTP handlers, which must derive from r.Context()),\n" +
		"blocking channel operations that ignore the function's context,\n" +
		"and calls into context-less helpers that block, using bottom-up\n" +
		"function summaries.",
	Run: run,
}

const physicalPkg = "gofusion/internal/physical"

// summary records whether a function may park on a channel operation
// that no context bounds, for propagation to callers.
type summary struct {
	// blockingUnguarded: a channel op with no ctx case is reachable in
	// this function or (transitively) in context-less callees. desc
	// names the operation for diagnostics.
	blockingUnguarded bool
	desc              string
	// takesCtx: the function accepts a context and is therefore itself
	// the remediation point for its blocking ops (already diagnosed
	// there; callers that pass their ctx have done their part).
	takesCtx bool
}

func (s *summary) equal(o *summary) bool {
	return o != nil && s.blockingUnguarded == o.blockingUnguarded && s.takesCtx == o.takesCtx
}

type checker struct {
	pass      *analysis.Pass
	pkg       *flow.Pkg
	summaries map[*types.Func]*summary
	findings  map[string]findRec
}

type findRec struct {
	pos token.Pos
	msg string
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		pkg:       flow.NewPkg(pass),
		summaries: map[*types.Func]*summary{},
		findings:  map[string]findRec{},
	}
	c.pkg.BottomUp(func(fi *flow.FuncInfo) bool {
		s := c.analyze(fi)
		prev := c.summaries[fi.Obj]
		c.summaries[fi.Obj] = s
		return !s.equal(prev)
	})
	out := make([]findRec, 0, len(c.findings))
	for _, fr := range c.findings {
		out = append(out, fr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	for _, fr := range out {
		c.pass.Reportf(fr.pos, "%s", fr.msg)
	}
	return nil
}

func (c *checker) analyze(fi *flow.FuncInfo) *summary {
	ctxVars := c.ctxParams(fi.Decl)
	isHandler := isHTTPHandler(c.pass.TypesInfo, fi.Decl)
	s := &summary{takesCtx: len(ctxVars) > 0}

	var desc string
	blocking := false
	note := func(d string) {
		if !blocking {
			blocking, desc = true, d
		}
	}

	noNote := func(string) {}

	// Goroutine bodies run on their own schedule (their blocking is the
	// pump/drain protocol's business, checked by goroutinedrain), and
	// other function literals (cleanup closures, release funcs, stream
	// callbacks) run at times this function doesn't control — neither
	// contributes blocking to THIS function's summary, and their bodies
	// are checked as anonymous context-less functions (so a release
	// closure's bare receive is not blamed on the enclosing ctx).
	noVars := map[*types.Var]bool{}
	var walk func(n ast.Node, noteFn func(string), vars map[*types.Var]bool)
	walk = func(n ast.Node, noteFn func(string), vars map[*types.Var]bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.GoStmt:
				for _, arg := range m.Call.Args {
					walk(arg, noNote, noVars)
				}
				return false
			case *ast.FuncLit:
				walk(m.Body, noNote, noVars)
				return false
			case *ast.CallExpr:
				c.checkCall(m, vars, isHandler, noteFn)
			case *ast.SendStmt:
				if !insideSelect(fi.Decl, m) {
					noteFn("channel send")
					c.flagBlocking(m.Pos(), "channel send", vars)
				}
			case *ast.UnaryExpr:
				if m.Op == token.ARROW && !insideSelect(fi.Decl, m) {
					noteFn("channel receive")
					c.flagBlocking(m.Pos(), "channel receive", vars)
				}
			case *ast.SelectStmt:
				c.checkSelect(m, vars, noteFn)
			case *ast.RangeStmt:
				if t, ok := c.pass.TypesInfo.Types[m.X]; ok {
					if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
						noteFn("channel receive")
						c.flagBlocking(m.X.Pos(), "channel range", vars)
					}
				}
			}
			return true
		})
	}
	walk(fi.Decl.Body, note, ctxVars)

	s.blockingUnguarded = blocking
	s.desc = desc
	return s
}

// checkCall handles Background/TODO roots and calls into context-less
// blocking helpers.
func (c *checker) checkCall(call *ast.CallExpr, ctxVars map[*types.Var]bool, isHandler bool, note func(string)) {
	if name, ok := contextRoot(c.pass.TypesInfo, call); ok {
		switch {
		case isHandler:
			c.addFinding(call.Pos(), fmt.Sprintf(
				"handler uses context.%s(); derive from the request context (r.Context()) so client disconnects cancel the work", name))
		case len(ctxVars) > 0 && !c.isNilDefault(call, ctxVars):
			c.addFinding(call.Pos(), fmt.Sprintf(
				"context.%s() detaches this work from the caller's cancellation; thread the function's ctx instead", name))
		}
		return
	}
	callee := c.pkg.Callee(call)
	if callee == nil {
		return
	}
	cs := c.summaries[callee]
	if cs == nil || !cs.blockingUnguarded {
		return
	}
	if cs.takesCtx {
		return // the callee is its own remediation point
	}
	note(cs.desc)
	if len(ctxVars) > 0 {
		c.addFinding(call.Pos(), fmt.Sprintf(
			"%s blocks on a %s but takes no context; plumb this function's ctx through so cancellation reaches it",
			callee.Name(), cs.desc))
	}
}

// checkSelect flags parking selects that have no case observing a
// context. Two forms of comm clause count as observing: any
// context-typed expression (`case <-ctx.Ctx.Done():`,
// `case <-s.ctx.Done():`), and a receive from a chan struct{} — the
// close-to-cancel convention used for stored Done() channels
// (`ctxDone := ctxDoneChan(ctx); ... case <-ctxDone:`) and peer
// cancellation signals like the repartition abandoned channels.
func (c *checker) checkSelect(sel *ast.SelectStmt, ctxVars map[*types.Var]bool, note func(string)) {
	hasDefault := false
	observes := false
	for _, cl := range sel.Body.List {
		comm, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if comm.Comm == nil {
			hasDefault = true
			continue
		}
		if mentionsContext(c.pass.TypesInfo, comm.Comm) ||
			signalChanReceive(c.pass.TypesInfo, comm.Comm) {
			observes = true
		}
	}
	if hasDefault || observes {
		return // cannot park, or parks under a context's control
	}
	note("select")
	if len(ctxVars) > 0 {
		c.addFinding(sel.Pos(), "select can park without observing ctx; add a case on the context's Done() channel")
	}
}

// mentionsContext reports whether n contains any context-typed
// expression.
func mentionsContext(info *types.Info, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if e, ok := m.(ast.Expr); ok {
			if t, ok := info.Types[e]; ok && t.Type != nil && isContextType(t.Type) {
				found = true
			}
		}
		return !found
	})
	return found
}

// flagBlocking reports a bare blocking op when a context is in scope.
func (c *checker) flagBlocking(pos token.Pos, what string, ctxVars map[*types.Var]bool) {
	if len(ctxVars) == 0 {
		return
	}
	c.addFinding(pos, fmt.Sprintf(
		"%s ignores ctx and can block forever; use a select with a case on the context's Done() channel", what))
}

// isNilDefault recognizes `ctx = context.Background()` where ctx is one
// of the function's context parameters — the nil-default idiom.
func (c *checker) isNilDefault(call *ast.CallExpr, ctxVars map[*types.Var]bool) bool {
	path := c.enclosing(call)
	for _, n := range path {
		if as, ok := n.(*ast.AssignStmt); ok && as.Tok == token.ASSIGN {
			for i, rhs := range as.Rhs {
				if ast.Unparen(rhs) == call && i < len(as.Lhs) {
					if v := flow.VarOf(c.pass.TypesInfo, as.Lhs[i]); v != nil && ctxVars[v] {
						return true
					}
				}
			}
		}
	}
	return false
}

// enclosing returns the node path from the file root down to n.
func (c *checker) enclosing(target ast.Node) []ast.Node {
	var path, found []ast.Node
	for _, f := range c.pass.Files {
		if f.Pos() > target.Pos() || f.End() < target.End() {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				path = path[:len(path)-1]
				return true
			}
			if found != nil {
				return false
			}
			path = append(path, n)
			if n == target {
				found = append([]ast.Node(nil), path...)
				return false
			}
			return n.Pos() <= target.Pos() && target.End() <= n.End()
		})
		if found != nil {
			break
		}
	}
	return found
}

// ctxParams collects the function's context-bearing parameters:
// context.Context and *physical.ExecContext (whose Ctx field carries
// the query's context).
func (c *checker) ctxParams(fn *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	if fn.Type.Params == nil {
		return out
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
			if !ok || v == nil {
				continue
			}
			if isContextType(v.Type()) || isExecContextType(v.Type()) {
				out[v] = true
			}
		}
	}
	return out
}

func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

func isExecContextType(t types.Type) bool {
	ptr, ok := types.Unalias(t).Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == physicalPkg && named.Obj().Name() == "ExecContext"
}

// isHTTPHandler reports the (http.ResponseWriter, *http.Request) shape.
func isHTTPHandler(info *types.Info, fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil || len(fn.Type.Params.List) != 2 {
		return false
	}
	typeOf := func(f *ast.Field) types.Type {
		if t, ok := info.Types[f.Type]; ok {
			return t.Type
		}
		return nil
	}
	w := typeOf(fn.Type.Params.List[0])
	r := typeOf(fn.Type.Params.List[1])
	if w == nil || r == nil {
		return false
	}
	wNamed, ok := types.Unalias(w).(*types.Named)
	if !ok || wNamed.Obj().Pkg() == nil || wNamed.Obj().Pkg().Path() != "net/http" || wNamed.Obj().Name() != "ResponseWriter" {
		return false
	}
	rPtr, ok := types.Unalias(r).Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	rNamed, ok := types.Unalias(rPtr.Elem()).(*types.Named)
	return ok && rNamed.Obj().Pkg() != nil &&
		rNamed.Obj().Pkg().Path() == "net/http" && rNamed.Obj().Name() == "Request"
}

// contextRoot recognizes context.Background() / context.TODO().
func contextRoot(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "context" {
		return "", false
	}
	if obj.Name() == "Background" || obj.Name() == "TODO" {
		return obj.Name(), true
	}
	return "", false
}

// signalChanReceive reports whether the comm statement receives from a
// chan struct{} — the close-to-cancel convention. Stored Done()
// channels are plain `<-chan struct{}` values, so no context-typed
// expression appears syntactically in the clause.
func signalChanReceive(info *types.Info, comm ast.Stmt) bool {
	var recv *ast.UnaryExpr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv, _ = ast.Unparen(s.X).(*ast.UnaryExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv, _ = ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr)
		}
	}
	if recv == nil || recv.Op != token.ARROW {
		return false
	}
	t, ok := info.Types[recv.X]
	if !ok || t.Type == nil {
		return false
	}
	ch, ok := t.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// insideSelect reports whether n sits in a CommClause's comm statement
// of some select in fn (those are handled by checkSelect).
func insideSelect(fn *ast.FuncDecl, n ast.Node) bool {
	inside := false
	ast.Inspect(fn.Body, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return !inside
		}
		for _, cl := range sel.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm != nil {
				if comm.Comm.Pos() <= n.Pos() && n.End() <= comm.Comm.End() {
					inside = true
				}
			}
		}
		return !inside
	})
	return inside
}

func (c *checker) addFinding(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d:%s", pos, msg)
	if _, ok := c.findings[key]; ok {
		return
	}
	c.findings[key] = findRec{pos: pos, msg: msg}
}
