// Package a seeds the ctxflow golden suite: detached context roots,
// handlers ignoring the request context, blocking channel operations
// that no context bounds, and the guarded idioms that must stay quiet.
package a

import (
	"context"
	"net/http"

	"gofusion/internal/physical"
)

// --- detached roots ---

func detachedRoot(ctx context.Context, work chan int) {
	c := context.Background() // want `context\.Background\(\) detaches this work from the caller's cancellation`
	_ = c
	_ = ctx
	_ = work
}

func detachedTODO(ctx *physical.ExecContext) {
	c := context.TODO() // want `context\.TODO\(\) detaches this work from the caller's cancellation`
	_ = c
	_ = ctx
}

// The nil-default idiom assigns the root to the parameter itself.
func nilDefault(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `handler uses context\.Background\(\); derive from the request context`
	_ = ctx
	_ = w
	_ = r
}

func handlerOK(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	_ = ctx
	_ = w
}

// --- blocking channel operations ---

func bareSend(ctx context.Context, out chan int) {
	out <- 1 // want `channel send ignores ctx and can block forever`
}

func bareRecv(ctx context.Context, in chan int) int {
	return <-in // want `channel receive ignores ctx and can block forever`
}

func bareRange(ctx context.Context, in chan int) (n int) {
	for v := range in { // want `channel range ignores ctx and can block forever`
		n += v
	}
	return n
}

func unguardedSelect(ctx context.Context, a, b chan int) int {
	select { // want `select can park without observing ctx`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

func guardedSelect(ctx context.Context, in chan int) (int, error) {
	select {
	case v := <-in:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

func guardedExecContext(ctx *physical.ExecContext, in chan int) (int, error) {
	select {
	case v := <-in:
		return v, nil
	case <-ctx.Ctx.Done():
		return 0, ctx.Ctx.Err()
	}
}

// A stored Done() channel is a plain <-chan struct{}; receiving from a
// chan struct{} is the close-to-cancel convention and counts as a guard.
func storedDone(ctx context.Context, in chan int) (int, error) {
	done := ctx.Done()
	select {
	case v := <-in:
		return v, nil
	case <-done:
		return 0, ctx.Err()
	}
}

// A default clause means the select cannot park.
func nonBlockingSelect(ctx context.Context, out chan int) bool {
	select {
	case out <- 1:
		return true
	default:
		return false
	}
}

// --- interprocedural: blocking buried in a context-less helper ---

func pump(out chan int) {
	out <- 1
}

func callsPump(ctx context.Context, out chan int) {
	pump(out) // want `pump blocks on a channel send but takes no context; plumb this function's ctx through`
}

// Two levels deep: the summary propagates bottom-up.
func viaMiddle(out chan int) {
	pump(out)
}

func callsMiddle(ctx context.Context, out chan int) {
	viaMiddle(out) // want `viaMiddle blocks on a channel send but takes no context; plumb this function's ctx through`
}

// A helper that takes a context is its own remediation point: the
// caller passing its ctx has done its part.
func guardedPump(ctx context.Context, out chan int) error {
	select {
	case out <- 1:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func callsGuarded(ctx context.Context, out chan int) error {
	return guardedPump(ctx, out)
}

// Goroutine bodies and returned closures run on their own schedule;
// their blocking is not this function's summary.
func spawns(ctx context.Context, out chan int) func() {
	go func() {
		for i := 0; i < 4; i++ {
			select {
			case out <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	return func() { <-out }
}

func callsSpawns(ctx context.Context, out chan int) {
	release := spawns(ctx, out)
	defer release()
}
