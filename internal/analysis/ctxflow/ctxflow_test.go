package ctxflow_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), ctxflow.Analyzer, "a")
}
