// Package fusion holds the type-recognition helpers shared by the
// gofusionlint analyzers: resolving the engine's Stream interface,
// identifying sync/atomic fields, and locating packages in a
// type-checked import graph.
package fusion

import (
	"go/ast"
	"go/types"
)

// StreamPkg is the package that declares the engine-wide Stream
// interface (physical.Stream is an alias of it).
const StreamPkg = "gofusion/internal/catalog"

// IsStreamNamed reports whether t (after unaliasing) is the named
// interface gofusion/internal/catalog.Stream.
func IsStreamNamed(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == "Stream" && obj.Pkg() != nil && obj.Pkg().Path() == StreamPkg
}

// StreamInterface returns the catalog.Stream interface type reachable
// from pkg's import graph, or nil when the package (transitively)
// never imports it.
func StreamInterface(pkg *types.Package) *types.Interface {
	cat := FindImport(pkg, StreamPkg)
	if cat == nil {
		return nil
	}
	obj := cat.Scope().Lookup("Stream")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// ImplementsStream reports whether t implements the engine Stream
// interface (resolved through pkg's imports).
func ImplementsStream(pkg *types.Package, t types.Type) bool {
	iface := StreamInterface(pkg)
	if iface == nil {
		return false
	}
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// FindImport walks pkg's transitive imports for the given path,
// returning nil when absent. The receiver package itself matches too,
// so analyzers behave identically inside and outside the target
// package.
func FindImport(pkg *types.Package, path string) *types.Package {
	if pkg == nil {
		return nil
	}
	seen := map[*types.Package]bool{}
	var walk func(p *types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(pkg)
}

// IsAtomicType reports whether t (after unaliasing) is one of the
// sync/atomic wrapper types (atomic.Int64, atomic.Bool, ...).
func IsAtomicType(t types.Type) bool {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// IsAtomicFunc reports whether the called function object belongs to
// sync/atomic (AddInt64, LoadInt64, ...).
func IsAtomicFunc(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// FieldOf resolves a selector expression to the struct field it reads
// or writes, or nil when sel is not a field selection.
func FieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Package-qualified or unqualified references resolve through Uses.
	if obj, ok := info.Uses[sel.Sel]; ok {
		if v, ok := obj.(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// CalleeObj returns the object called by e's function expression
// (method or function), or nil.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fn]; ok {
			return s.Obj()
		}
		return info.Uses[fn.Sel]
	}
	return nil
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// ResultTypes returns the result types of the call expression (empty
// when the call's type is unknown).
func ResultTypes(info *types.Info, call *ast.CallExpr) []types.Type {
	tv, ok := info.Types[call]
	if !ok {
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}
