// Package goroutinedrain checks that goroutines spawned inside exec
// operators cannot wedge on a channel send. Exchange operators
// (RepartitionExec, CoalescePartitionsExec) launch producers that push
// batches into bounded channels; if a consumer stops pulling (early
// LIMIT, query cancellation, a partition that is never executed), a bare
// `ch <- v` blocks forever and the producer goroutine — plus every
// stream and spill file it owns — leaks. Every send in such a goroutine
// must therefore sit in a select that also receives from a stop/cancel
// channel (ctx.Done(), an operator stop channel) so Close can always
// drain the producer. The check follows calls from goroutine bodies into
// named functions and methods of the same package, so producers
// factored into helpers (produce, fanError) are covered too.
package goroutinedrain

import (
	"go/ast"
	"go/types"
	"strings"

	"gofusion/internal/analysis"
	"gofusion/internal/analysis/fusion"
)

// Analyzer is the goroutinedrain check.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinedrain",
	Doc: "check that operator goroutines select on a stop channel when sending\n\n" +
		"a bare channel send reachable from a goroutine launched by an exec\n" +
		"operator can block forever once the consumer goes away; pair every\n" +
		"send with a stop/cancel receive in a select.",
	Run: run,
}

// Packages lists the package paths the check applies to (operator
// goroutines elsewhere are out of scope). Exposed so tests and the
// driver can widen it.
var Packages = map[string]bool{
	"gofusion/internal/exec": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg == nil || !Packages[strings.TrimSuffix(pass.Pkg.Path(), "_test")] {
		return nil
	}

	// Bodies of named functions/methods in this package, keyed by their
	// types object so call sites resolve to them.
	decls := map[*types.Func]*ast.BlockStmt{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd.Body
			}
		}
	}

	// Seed the worklist with goroutine bodies, then chase same-package
	// callees transitively: their sends run on the spawned goroutine.
	reachable := map[*types.Func]bool{}
	var work []*ast.BlockStmt
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				checkBody(pass, lit.Body)
				work = append(work, lit.Body)
			}
			if fn := calleeFunc(pass.TypesInfo, gs.Call); fn != nil {
				if body, ok := decls[fn]; ok && !reachable[fn] {
					reachable[fn] = true
					checkBody(pass, body)
					work = append(work, body)
				}
			}
			return true
		})
	}
	for len(work) > 0 {
		body := work[0]
		work = work[1:]
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || reachable[fn] {
				return true
			}
			if b, ok := decls[fn]; ok {
				reachable[fn] = true
				checkBody(pass, b)
				work = append(work, b)
			}
			return true
		})
	}
	return nil
}

func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := fusion.CalleeObj(info, call).(*types.Func)
	return fn
}

// checkBody flags sends in a goroutine-reachable body that are not
// select-guarded. Nested function literals run on the same goroutine
// unless themselves spawned; GoStmt subtrees are skipped because run
// seeds them (and their callees) separately.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Collect the send statements that are immediate select cases, and
	// whether their select also has a receive or default case to bail to.
	guarded := map[*ast.SendStmt]bool{}
	inspectSameGoroutine(body, func(n ast.Node) {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return
		}
		var sends []*ast.SendStmt
		hasEscape := false
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			if cc.Comm == nil {
				hasEscape = true // default case
				continue
			}
			switch comm := cc.Comm.(type) {
			case *ast.SendStmt:
				sends = append(sends, comm)
			default:
				// Receive cases (ExprStmt <-ch or AssignStmt x := <-ch)
				// give the producer a way out when stopped.
				hasEscape = true
			}
		}
		for _, s := range sends {
			guarded[s] = hasEscape
		}
	})

	inspectSameGoroutine(body, func(n ast.Node) {
		send, ok := n.(*ast.SendStmt)
		if !ok {
			return
		}
		if g, inSelect := guarded[send]; inSelect {
			if !g {
				pass.Reportf(send.Pos(),
					"select around this send has no stop/cancel receive or default case; the goroutine can still wedge")
			}
			return
		}
		pass.Reportf(send.Pos(),
			"bare channel send in operator goroutine can block forever if the consumer stops; use select with a stop/cancel case")
	})
}

// inspectSameGoroutine visits the nodes of body that execute on the same
// goroutine: it descends into plain function literals but not into
// `go ...` statements.
func inspectSameGoroutine(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
