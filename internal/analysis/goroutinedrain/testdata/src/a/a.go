package a

type payload struct{ n int }

func bareSend(ch chan payload) {
	go func() {
		ch <- payload{1} // want `bare channel send in operator goroutine`
	}()
}

func guardedSendOK(ch chan payload, stop chan struct{}) {
	go func() {
		select {
		case ch <- payload{1}:
		case <-stop:
			return
		}
	}()
}

func defaultSendOK(ch chan payload) {
	go func() {
		select {
		case ch <- payload{1}:
		default:
		}
	}()
}

func sendOnlySelect(ch chan payload, other chan int) {
	go func() {
		select {
		case ch <- payload{1}: // want `select around this send has no stop/cancel receive`
		case other <- 2: // want `select around this send has no stop/cancel receive`
		}
	}()
}

// Producers factored into named functions and methods are still on the
// spawned goroutine.

func produce(ch chan payload) {
	ch <- payload{1} // want `bare channel send in operator goroutine`
}

func spawnProducer(ch chan payload) {
	go produce(ch)
}

type op struct{ out chan payload }

func (o *op) fanError() {
	o.out <- payload{} // want `bare channel send in operator goroutine`
}

func (o *op) run() {
	o.fanError()
}

func (o *op) start() {
	go func() { o.run() }()
}

// Sends on the caller's goroutine are out of scope.
func syncSend(ch chan payload) {
	ch <- payload{}
}
