package goroutinedrain_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/goroutinedrain"
)

func TestGoroutineDrain(t *testing.T) {
	goroutinedrain.Packages["a"] = true
	defer delete(goroutinedrain.Packages, "a")
	analysistest.Run(t, analysistest.TestData(), goroutinedrain.Analyzer, "a")
}
