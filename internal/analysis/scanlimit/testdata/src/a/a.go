package a

import (
	"gofusion/internal/catalog"
)

func limitOK(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Limit: -1, Partitions: 2})
}

func noLimitConstOK(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Limit: catalog.NoLimit, Partitions: 4})
}

func boundedOK(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Projection: []int{0}, Limit: 10})
}

func missingLimit(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Partitions: 2}) // want `without Limit`
}

func missingLimitMultiline(t catalog.TableProvider) {
	req := catalog.ScanRequest{ // want `without Limit`
		Projection: []int{1, 2},
		Partitions: 4,
		BatchRows:  1024,
	}
	t.Scan(req)
}

func emptyLiteral(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{}) // want `empty catalog.ScanRequest`
}

func suppressed(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Partitions: 2}) //nolint:scanlimit
}
