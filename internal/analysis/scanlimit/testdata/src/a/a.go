package a

import (
	"gofusion/internal/catalog"
	"gofusion/internal/parquet"
)

func limitOK(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Limit: -1, Partitions: 2})
}

func noLimitConstOK(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Limit: catalog.NoLimit, Partitions: 4})
}

func boundedOK(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Projection: []int{0}, Limit: 10})
}

func missingLimit(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Partitions: 2}) // want `without Limit`
}

func missingLimitMultiline(t catalog.TableProvider) {
	req := catalog.ScanRequest{ // want `without Limit`
		Projection: []int{1, 2},
		Partitions: 4,
		BatchRows:  1024,
	}
	t.Scan(req)
}

func emptyLiteral(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{}) // want `empty catalog.ScanRequest`
}

func suppressed(t catalog.TableProvider) {
	t.Scan(catalog.ScanRequest{Partitions: 2}) //nolint:scanlimit // reason: exercising the suppression path
}

func optionsOK(fr *parquet.FileReader) {
	fr.Scan(parquet.ScanOptions{Limit: -1})
	fr.Scan(parquet.ScanOptions{Projection: []int{0}, Limit: 100})
}

func optionsMissingLimit(fr *parquet.FileReader) {
	fr.Scan(parquet.ScanOptions{Projection: []int{0}}) // want `parquet\.ScanOptions literal without Limit`
}

func optionsEmpty(fr *parquet.FileReader) {
	fr.Scan(parquet.ScanOptions{}) // want `empty parquet\.ScanOptions`
}

func assignZero(req *catalog.ScanRequest, opts *parquet.ScanOptions) {
	req.Limit = 0  // want `assigning 0 to catalog\.ScanRequest\.Limit`
	opts.Limit = 0 // want `assigning 0 to parquet\.ScanOptions\.Limit`
}

func assignZeroValue() {
	var req catalog.ScanRequest
	req.Limit = 0 // want `assigning 0 to catalog\.ScanRequest\.Limit`
	_ = req
}

func assignOK(req *catalog.ScanRequest) {
	req.Limit = catalog.NoLimit
	req.Limit = -1
	req.Limit = 500
	n := int64(0)
	req.Limit = n // not a constant: runtime values are the caller's business
}
