package scanlimit_test

import (
	"testing"

	"gofusion/internal/analysis/analysistest"
	"gofusion/internal/analysis/scanlimit"
)

func TestScanLimit(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), scanlimit.Analyzer, "a")
}
