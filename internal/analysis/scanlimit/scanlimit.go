// Package scanlimit checks that every catalog.ScanRequest composite
// literal sets Limit explicitly. The field's zero value means "return 0
// rows", not "no limit" (that is catalog.NoLimit = -1), so a literal
// that simply omits Limit almost always silently truncates the scan to
// nothing. PR 8 fixed exactly this bug on the COPY INTO staging path;
// this analyzer makes the whole class unwritable: either spell
// Limit: catalog.NoLimit (or -1) to scan everything, or set a real
// bound.
package scanlimit

import (
	"go/ast"
	"go/types"

	"gofusion/internal/analysis"
)

// Analyzer is the scanlimit check.
var Analyzer = &analysis.Analyzer{
	Name: "scanlimit",
	Doc: "check that catalog.ScanRequest literals set Limit explicitly\n\n" +
		"ScanRequest.Limit's zero value means \"return 0 rows\"; omitting the\n" +
		"field from a composite literal silently yields an empty scan. Every\n" +
		"keyed ScanRequest literal must name Limit (use catalog.NoLimit for\n" +
		"an unbounded scan); positional literals necessarily include it.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t, ok := pass.TypesInfo.Types[lit]
			if !ok || !isScanRequest(t.Type) {
				return true
			}
			if len(lit.Elts) == 0 {
				pass.Reportf(lit.Pos(),
					"empty catalog.ScanRequest literal: the Limit zero value means 0 rows; set Limit (catalog.NoLimit for all rows)")
				return true
			}
			keyed := false
			for _, el := range lit.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					// Positional literal: every field, Limit included, is
					// spelled out.
					return true
				}
				keyed = true
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Limit" {
					return true
				}
			}
			if keyed {
				pass.Reportf(lit.Pos(),
					"catalog.ScanRequest literal without Limit: the zero value means 0 rows; set Limit (catalog.NoLimit for all rows)")
			}
			return true
		})
	}
	return nil
}

// isScanRequest reports whether t is gofusion/internal/catalog.ScanRequest.
func isScanRequest(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Name() == "ScanRequest" && obj.Pkg().Path() == "gofusion/internal/catalog"
}
