// Package scanlimit checks that every catalog.ScanRequest and
// parquet.ScanOptions composite literal sets Limit explicitly. In both
// structs the field's zero value means "return 0 rows", not "no limit"
// (that is catalog.NoLimit / any negative value), so a literal that
// simply omits Limit almost always silently truncates the scan to
// nothing. PR 8 fixed exactly this bug on the COPY INTO staging path;
// this analyzer makes the whole class unwritable: either spell
// Limit: catalog.NoLimit (or -1) to scan everything, or set a real
// bound. Assigning the constant 0 to a Limit field after construction
// (`req.Limit = 0`) is the same bug in a different spelling and is
// flagged too.
package scanlimit

import (
	"go/ast"
	"go/constant"
	"go/types"

	"gofusion/internal/analysis"
)

// Analyzer is the scanlimit check.
var Analyzer = &analysis.Analyzer{
	Name: "scanlimit",
	Doc: "check that catalog.ScanRequest and parquet.ScanOptions literals set Limit explicitly\n\n" +
		"In both structs Limit's zero value means \"return 0 rows\"; omitting\n" +
		"the field from a composite literal silently yields an empty scan.\n" +
		"Every keyed literal must name Limit (use catalog.NoLimit or -1 for\n" +
		"an unbounded scan), and assigning the constant 0 to a Limit field\n" +
		"is flagged for the same reason; positional literals necessarily\n" +
		"include the field.",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkLiteral(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkLiteral(pass *analysis.Pass, lit *ast.CompositeLit) {
	t, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	name, ok := limitStructName(t.Type)
	if !ok {
		return
	}
	if len(lit.Elts) == 0 {
		pass.Reportf(lit.Pos(),
			"empty %s literal: the Limit zero value means 0 rows; set Limit (catalog.NoLimit or -1 for all rows)", name)
		return
	}
	keyed := false
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			// Positional literal: every field, Limit included, is
			// spelled out.
			return
		}
		keyed = true
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Limit" {
			return
		}
	}
	if keyed {
		pass.Reportf(lit.Pos(),
			"%s literal without Limit: the zero value means 0 rows; set Limit (catalog.NoLimit or -1 for all rows)", name)
	}
}

// checkAssign flags `x.Limit = 0` on a scan-config struct: an explicit
// zero has the same empty-scan meaning as an omitted field.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return // a tuple assignment from one call carries no constant 0
	}
	for i, lhs := range as.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Limit" {
			continue
		}
		recvT, ok := pass.TypesInfo.Types[sel.X]
		if !ok {
			continue
		}
		rt := recvT.Type
		if ptr, ok := rt.Underlying().(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		name, ok := limitStructName(rt)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[as.Rhs[i]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		if v, ok := constant.Int64Val(tv.Value); ok && v == 0 {
			pass.Reportf(as.Pos(),
				"assigning 0 to %s.Limit means \"return 0 rows\"; use catalog.NoLimit or -1 for an unbounded scan, or a real bound", name)
		}
	}
}

// limitStructName recognizes the two scan-config structs whose Limit
// zero value truncates the scan, returning a display name.
func limitStructName(t types.Type) (string, bool) {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch {
	case obj.Name() == "ScanRequest" && obj.Pkg().Path() == "gofusion/internal/catalog":
		return "catalog.ScanRequest", true
	case obj.Name() == "ScanOptions" && obj.Pkg().Path() == "gofusion/internal/parquet":
		return "parquet.ScanOptions", true
	}
	return "", false
}
