package baseline

import (
	"fmt"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// TightDB's aggregation is radix partitioned (in the spirit of DuckDB's
// parallel grouped aggregation): phase 1 has every worker scatter its
// morsels' rows into 2^radixBits partition-local hash tables; phase 2
// merges each partition across workers independently and in parallel.
// There is no exchange and no partial/final re-hash of the whole stream,
// which is what keeps very high group cardinalities cheap.
const radixBits = 6

const numRadix = 1 << radixBits

type aggSpec struct {
	fn       *functions.AggFunc
	args     []physical.PhysicalExpr
	filter   physical.PhysicalExpr
	argTypes []*arrow.DataType
}

// partState is one (worker, radix-partition) aggregation table.
type partState struct {
	index map[string]uint32
	keys  [][]byte
	accs  []functions.GroupsAccumulator
}

func newPartState(specs []aggSpec) (*partState, error) {
	st := &partState{index: make(map[string]uint32, 64)}
	st.accs = make([]functions.GroupsAccumulator, len(specs))
	for i, s := range specs {
		acc, err := s.fn.NewAccumulator(s.argTypes)
		if err != nil {
			return nil, err
		}
		st.accs[i] = acc
	}
	return st, nil
}

func (st *partState) assign(key []byte) uint32 {
	idx, ok := st.index[string(key)]
	if !ok {
		idx = uint32(len(st.keys))
		owned := append([]byte(nil), key...)
		st.index[string(owned)] = idx
		st.keys = append(st.keys, owned)
	}
	return idx
}

func (e *Engine) buildAggSpecs(n *logical.Aggregate, comp *physical.Compiler) ([]aggSpec, error) {
	specs := make([]aggSpec, len(n.AggExprs))
	for i, ae := range n.AggExprs {
		call := ae
		if a, ok := call.(*logical.Alias); ok {
			call = a.E
		}
		af, ok := call.(*logical.AggFunc)
		if !ok {
			return nil, fmt.Errorf("baseline: aggregate expression %s is not an aggregate call", ae)
		}
		name := af.Name
		if af.Distinct {
			if name != "count" {
				return nil, fmt.Errorf("baseline: DISTINCT only supported for count")
			}
			name = "count_distinct"
		}
		fn, ok := e.reg.Agg(name)
		if !ok {
			return nil, fmt.Errorf("baseline: unknown aggregate %q", name)
		}
		spec := aggSpec{fn: fn}
		for _, a := range af.Args {
			pa, err := comp.Compile(a)
			if err != nil {
				return nil, err
			}
			spec.args = append(spec.args, pa)
			spec.argTypes = append(spec.argTypes, pa.DataType())
		}
		if af.Filter != nil {
			pf, err := comp.Compile(af.Filter)
			if err != nil {
				return nil, err
			}
			spec.filter = pf
		}
		specs[i] = spec
	}
	return specs, nil
}

// radixAggregate executes a grouped (or global) aggregation.
func (e *Engine) radixAggregate(n *logical.Aggregate, in []*arrow.RecordBatch) ([]*arrow.RecordBatch, error) {
	comp := e.compiler(n.Input.Schema())
	specs, err := e.buildAggSpecs(n, comp)
	if err != nil {
		return nil, err
	}
	groupExprs := make([]physical.PhysicalExpr, len(n.GroupExprs))
	types := make([]*arrow.DataType, len(n.GroupExprs))
	for i, g := range n.GroupExprs {
		pg, err := comp.Compile(g)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = pg
		types[i] = pg.DataType()
	}
	outSchema := n.Schema().ToArrow()

	if len(groupExprs) == 0 {
		return e.globalAggregate(specs, in, outSchema)
	}
	enc, err := rowformat.NewEncoder(types, nil)
	if err != nil {
		return nil, err
	}

	// Phase 1: workers scatter morsels into radix-partitioned tables.
	workers := e.Parallelism
	if workers < 1 {
		workers = 1
	}
	states := make([][]*partState, workers) // [worker][radix]
	for w := range states {
		states[w] = make([]*partState, numRadix)
	}
	// Static morsel assignment: batch i -> worker i % workers.
	err = e.parallelFor(workers, func(w int) error {
		mine := states[w]
		var keyBuf []byte
		for bi := w; bi < len(in); bi += workers {
			b := in[bi]
			nRows := b.NumRows()
			cols := make([]arrow.Array, len(groupExprs))
			for i, g := range groupExprs {
				a, err := physical.EvalToArray(g, b)
				if err != nil {
					return err
				}
				cols[i] = a
			}
			// Scatter rows by key-hash radix.
			rowsByPart := make([][]int32, numRadix)
			idxByPart := make([][]uint32, numRadix)
			for r := 0; r < nRows; r++ {
				keyBuf = enc.AppendRowKey(keyBuf[:0], cols, r)
				h := compute.HashBytes(keyBuf)
				p := int(h >> (64 - radixBits))
				if mine[p] == nil {
					st, err := newPartState(specs)
					if err != nil {
						return err
					}
					mine[p] = st
				}
				gi := mine[p].assign(keyBuf)
				rowsByPart[p] = append(rowsByPart[p], int32(r))
				idxByPart[p] = append(idxByPart[p], gi)
			}
			// Update accumulators per partition subset.
			for p := 0; p < numRadix; p++ {
				if len(rowsByPart[p]) == 0 {
					continue
				}
				st := mine[p]
				for ai, spec := range specs {
					rows := rowsByPart[p]
					gidx := idxByPart[p]
					if spec.filter != nil {
						mask, err := physical.EvalPredicate(spec.filter, b)
						if err != nil {
							return err
						}
						var frows []int32
						var fgidx []uint32
						for k, r := range rows {
							if mask.IsValid(int(r)) && mask.Value(int(r)) {
								frows = append(frows, r)
								fgidx = append(fgidx, gidx[k])
							}
						}
						rows, gidx = frows, fgidx
					}
					args := make([]arrow.Array, len(spec.args))
					for j, ax := range spec.args {
						full, err := physical.EvalToArray(ax, b)
						if err != nil {
							return err
						}
						args[j] = compute.Take(full, rows)
					}
					if err := st.accs[ai].Update(args, gidx, len(st.keys)); err != nil {
						return err
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: merge each radix partition across workers, in parallel.
	out := make([]*arrow.RecordBatch, numRadix)
	err = e.parallelFor(numRadix, func(p int) error {
		final, err := newPartState(specs)
		if err != nil {
			return err
		}
		for w := 0; w < workers; w++ {
			st := states[w][p]
			if st == nil || len(st.keys) == 0 {
				continue
			}
			gidx := make([]uint32, len(st.keys))
			for i, k := range st.keys {
				gidx[i] = final.assign(k)
			}
			for ai := range specs {
				stateArrs, err := st.accs[ai].State()
				if err != nil {
					return err
				}
				for _, sa := range stateArrs {
					if sa.Len() < len(st.keys) {
						return fmt.Errorf("baseline: short state array")
					}
				}
				if err := final.accs[ai].MergeStates(stateArrs, gidx, len(final.keys)); err != nil {
					return err
				}
			}
		}
		if len(final.keys) == 0 {
			return nil
		}
		gcols, err := enc.DecodeRows(final.keys)
		if err != nil {
			return err
		}
		cols := append([]arrow.Array{}, gcols...)
		for ai := range specs {
			a, err := final.accs[ai].Evaluate()
			if err != nil {
				return err
			}
			cols = append(cols, padTo(a, len(final.keys)))
		}
		out[p] = arrow.NewRecordBatchWithRows(outSchema, cols, len(final.keys))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var result []*arrow.RecordBatch
	for _, b := range out {
		if b != nil && b.NumRows() > 0 {
			result = append(result, b)
		}
	}
	return result, nil
}

func padTo(a arrow.Array, n int) arrow.Array {
	if a.Len() >= n {
		return a
	}
	b := arrow.NewBuilder(a.DataType())
	for i := 0; i < a.Len(); i++ {
		b.AppendFrom(a, i)
	}
	for i := a.Len(); i < n; i++ {
		b.AppendNull()
	}
	return b.Finish()
}

// globalAggregate handles aggregates without group keys: per-worker
// accumulators merged once.
func (e *Engine) globalAggregate(specs []aggSpec, in []*arrow.RecordBatch, outSchema *arrow.Schema) ([]*arrow.RecordBatch, error) {
	workers := e.Parallelism
	if workers < 1 {
		workers = 1
	}
	states := make([][]functions.GroupsAccumulator, workers)
	err := e.parallelFor(workers, func(w int) error {
		accs := make([]functions.GroupsAccumulator, len(specs))
		for i, s := range specs {
			acc, err := s.fn.NewAccumulator(s.argTypes)
			if err != nil {
				return err
			}
			accs[i] = acc
		}
		for bi := w; bi < len(in); bi += workers {
			b := in[bi]
			gidx := make([]uint32, b.NumRows())
			for ai, spec := range specs {
				rows := gidx
				argsRows := b
				if spec.filter != nil {
					mask, err := physical.EvalPredicate(spec.filter, b)
					if err != nil {
						return err
					}
					fb, err := compute.FilterBatch(b, mask)
					if err != nil {
						return err
					}
					argsRows = fb
					rows = make([]uint32, fb.NumRows())
				}
				args := make([]arrow.Array, len(spec.args))
				for j, ax := range spec.args {
					a, err := physical.EvalToArray(ax, argsRows)
					if err != nil {
						return err
					}
					args[j] = a
				}
				if err := accs[ai].Update(args, rows, 1); err != nil {
					return err
				}
			}
		}
		states[w] = accs
		return nil
	})
	if err != nil {
		return nil, err
	}
	finals := make([]functions.GroupsAccumulator, len(specs))
	for i, s := range specs {
		acc, err := s.fn.NewAccumulator(s.argTypes)
		if err != nil {
			return nil, err
		}
		// Size to one group immediately: aggregates with a non-null
		// identity must evaluate it over empty input (count() of zero
		// rows is 0, not NULL).
		empty := make([]arrow.Array, len(s.argTypes))
		for j, t := range s.argTypes {
			empty[j] = arrow.NewBuilder(t).Finish()
		}
		if err := acc.Update(empty, nil, 1); err != nil {
			return nil, err
		}
		finals[i] = acc
	}
	for w := 0; w < workers; w++ {
		for ai := range specs {
			st, err := states[w][ai].State()
			if err != nil {
				return nil, err
			}
			// Workers that saw no batches export empty (zero-group) states.
			if len(st) > 0 && st[0].Len() == 0 {
				continue
			}
			if err := finals[ai].MergeStates(st, []uint32{0}, 1); err != nil {
				return nil, err
			}
		}
	}
	cols := make([]arrow.Array, len(specs))
	for ai := range specs {
		a, err := finals[ai].Evaluate()
		if err != nil {
			return nil, err
		}
		cols[ai] = padTo(a, 1)
	}
	return []*arrow.RecordBatch{arrow.NewRecordBatchWithRows(outSchema, cols, 1)}, nil
}

// distinct deduplicates rows via the radix machinery with no aggregates.
func (e *Engine) distinct(n *logical.Distinct, in []*arrow.RecordBatch) ([]*arrow.RecordBatch, error) {
	schema := n.Schema()
	groups := make([]logical.Expr, schema.Len())
	for i, f := range schema.Fields() {
		groups[i] = &logical.Column{Relation: f.Qualifier, Name: f.Name}
	}
	agg, err := logical.NewAggregate(n.Input, groups, nil, e.reg)
	if err != nil {
		return nil, err
	}
	out, err := e.radixAggregate(agg, in)
	if err != nil {
		return nil, err
	}
	// Re-stamp the schema (aggregate output fields match positionally).
	target := schema.ToArrow()
	for i, b := range out {
		out[i] = arrow.NewRecordBatchWithRows(target, b.Columns(), b.NumRows())
	}
	return out, nil
}
