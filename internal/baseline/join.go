package baseline

import (
	"fmt"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// execJoin runs TightDB's materialized hash join: the left side is built
// into one shared table, probe batches run in parallel. Non-equi joins
// fall back to a block nested loop.
func (e *Engine) execJoin(n *logical.Join) ([]*arrow.RecordBatch, error) {
	left, err := e.execute(n.Left)
	if err != nil {
		return nil, err
	}
	right, err := e.execute(n.Right)
	if err != nil {
		return nil, err
	}
	lSchema := n.Left.Schema()
	rSchema := n.Right.Schema()
	combined := lSchema.Merge(rSchema)
	var filter physical.PhysicalExpr
	if n.Filter != nil {
		filter, err = e.compiler(combined).Compile(n.Filter)
		if err != nil {
			return nil, err
		}
	}
	lb, err := compute.ConcatBatches(lSchema.ToArrow(), left)
	if err != nil {
		return nil, err
	}
	outSchema := n.Schema().ToArrow()

	if n.Type == logical.CrossJoin || len(n.On) == 0 {
		return e.nestedLoop(n, lb, right, filter, outSchema)
	}

	lcomp := e.compiler(lSchema)
	rcomp := e.compiler(rSchema)
	lkeys := make([]physical.PhysicalExpr, len(n.On))
	rkeys := make([]physical.PhysicalExpr, len(n.On))
	types := make([]*arrow.DataType, len(n.On))
	for i, p := range n.On {
		le, err := lcomp.Compile(p.L)
		if err != nil {
			return nil, err
		}
		re, err := rcomp.Compile(p.R)
		if err != nil {
			return nil, err
		}
		common, err := logical.PromoteNumeric(le.DataType(), re.DataType())
		if err != nil {
			return nil, fmt.Errorf("baseline: join key types: %w", err)
		}
		if !le.DataType().Equal(common) {
			le = &physical.CastExpr{E: le, To: common}
		}
		if !re.DataType().Equal(common) {
			re = &physical.CastExpr{E: re, To: common}
		}
		lkeys[i], rkeys[i], types[i] = le, re, common
	}
	enc, err := rowformat.NewEncoder(types, nil)
	if err != nil {
		return nil, err
	}

	// Build.
	index := make(map[string][]int32, lb.NumRows())
	if lb.NumRows() > 0 {
		cols := make([]arrow.Array, len(lkeys))
		for i, k := range lkeys {
			a, err := physical.EvalToArray(k, lb)
			if err != nil {
				return nil, err
			}
			cols[i] = a
		}
		keys := enc.EncodeRows(cols, lb.NumRows())
		for r, key := range keys {
			null := false
			for _, c := range cols {
				if c.IsNull(r) {
					null = true
					break
				}
			}
			if null {
				continue
			}
			index[string(key)] = append(index[string(key)], int32(r))
		}
	}

	var visitedMu sync.Mutex
	visited := make([]bool, lb.NumRows())
	needVisited := n.Type == logical.LeftJoin || n.Type == logical.FullJoin ||
		n.Type == logical.LeftSemiJoin || n.Type == logical.LeftAntiJoin

	// Probe in parallel.
	outs := make([]*arrow.RecordBatch, len(right))
	err = e.parallelFor(len(right), func(bi int) error {
		rb := right[bi]
		cols := make([]arrow.Array, len(rkeys))
		for i, k := range rkeys {
			a, err := physical.EvalToArray(k, rb)
			if err != nil {
				return err
			}
			cols[i] = a
		}
		keys := enc.EncodeRows(cols, rb.NumRows())
		var li, ri []int32
		for r, key := range keys {
			null := false
			for _, c := range cols {
				if c.IsNull(r) {
					null = true
					break
				}
			}
			if null {
				continue
			}
			for _, l := range index[string(key)] {
				li = append(li, l)
				ri = append(ri, int32(r))
			}
		}
		if filter != nil && len(li) > 0 {
			cb := combineBatches(lSchema.Merge(rSchema).ToArrow(), lb, rb, li, ri)
			mask, err := physical.EvalPredicate(filter, cb)
			if err != nil {
				return err
			}
			var fli, fri []int32
			for i := range li {
				if mask.IsValid(i) && mask.Value(i) {
					fli = append(fli, li[i])
					fri = append(fri, ri[i])
				}
			}
			li, ri = fli, fri
		}
		if needVisited && len(li) > 0 {
			visitedMu.Lock()
			for _, l := range li {
				visited[l] = true
			}
			visitedMu.Unlock()
		}
		switch n.Type {
		case logical.InnerJoin:
			if len(li) > 0 {
				outs[bi] = combineBatches(outSchema, lb, rb, li, ri)
			}
		case logical.LeftJoin, logical.FullJoin:
			if len(li) > 0 {
				outs[bi] = combineBatches(outSchema, lb, rb, li, ri)
			}
		case logical.RightJoin:
			matched := make([]bool, rb.NumRows())
			for _, r := range ri {
				matched[r] = true
			}
			for r := 0; r < rb.NumRows(); r++ {
				if !matched[r] {
					li = append(li, -1)
					ri = append(ri, int32(r))
				}
			}
			if len(li) > 0 {
				outs[bi] = combineBatches(outSchema, lb, rb, li, ri)
			}
		case logical.RightSemiJoin, logical.RightAntiJoin:
			matched := make([]bool, rb.NumRows())
			for _, r := range ri {
				matched[r] = true
			}
			want := n.Type == logical.RightSemiJoin
			var keep []int32
			for r := 0; r < rb.NumRows(); r++ {
				if matched[r] == want {
					keep = append(keep, int32(r))
				}
			}
			if len(keep) > 0 {
				outs[bi] = compute.TakeBatch(rb, keep)
			}
		case logical.LeftSemiJoin, logical.LeftAntiJoin:
			// Emitted from visited at the end.
		default:
			return fmt.Errorf("baseline: unsupported join type %s", n.Type)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var result []*arrow.RecordBatch
	for _, b := range outs {
		if b != nil && b.NumRows() > 0 {
			result = append(result, b)
		}
	}
	// Full join: unmatched right rows. Handled per batch for RightJoin;
	// for FullJoin collect here.
	if n.Type == logical.FullJoin {
		for _, rb := range right {
			cols := make([]arrow.Array, len(rkeys))
			for i, k := range rkeys {
				a, err := physical.EvalToArray(k, rb)
				if err != nil {
					return nil, err
				}
				cols[i] = a
			}
			keys := enc.EncodeRows(cols, rb.NumRows())
			var li, ri []int32
			for r, key := range keys {
				matched := false
				null := false
				for _, c := range cols {
					if c.IsNull(r) {
						null = true
						break
					}
				}
				if !null && len(index[string(key)]) > 0 {
					matched = true
				}
				if !matched {
					li = append(li, -1)
					ri = append(ri, int32(r))
				}
			}
			if len(li) > 0 {
				result = append(result, combineBatches(outSchema, lb, rb, li, ri))
			}
		}
	}
	// Build-side tails.
	switch n.Type {
	case logical.LeftJoin, logical.FullJoin:
		var keep []int32
		for i, v := range visited {
			if !v {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) > 0 {
			lcols := make([]arrow.Array, lb.NumCols())
			for c := range lcols {
				lcols[c] = compute.Take(lb.Column(c), keep)
			}
			rs := rSchema.ToArrow()
			rcols := make([]arrow.Array, rs.NumFields())
			for c := 0; c < rs.NumFields(); c++ {
				b := arrow.NewBuilder(rs.Field(c).Type)
				for range keep {
					b.AppendNull()
				}
				rcols[c] = b.Finish()
			}
			result = append(result, arrow.NewRecordBatchWithRows(outSchema, append(lcols, rcols...), len(keep)))
		}
	case logical.LeftSemiJoin, logical.LeftAntiJoin:
		want := n.Type == logical.LeftSemiJoin
		var keep []int32
		for i, v := range visited {
			if v == want {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) > 0 {
			result = append(result, compute.TakeBatch(lb, keep))
		}
	}
	return result, nil
}

func combineBatches(schema *arrow.Schema, lb, rb *arrow.RecordBatch, li, ri []int32) *arrow.RecordBatch {
	lcols := make([]arrow.Array, lb.NumCols())
	for c := 0; c < lb.NumCols(); c++ {
		lcols[c] = compute.Take(lb.Column(c), li)
	}
	rcols := make([]arrow.Array, rb.NumCols())
	for c := 0; c < rb.NumCols(); c++ {
		rcols[c] = compute.Take(rb.Column(c), ri)
	}
	return arrow.NewRecordBatchWithRows(schema, append(lcols, rcols...), len(li))
}

// nestedLoop evaluates cross joins and arbitrary join filters.
func (e *Engine) nestedLoop(n *logical.Join, lb *arrow.RecordBatch, right []*arrow.RecordBatch,
	filter physical.PhysicalExpr, outSchema *arrow.Schema) ([]*arrow.RecordBatch, error) {

	innerSchema := n.Left.Schema().Merge(n.Right.Schema()).ToArrow()
	visited := make([]bool, lb.NumRows())
	var mu sync.Mutex
	outs := make([]*arrow.RecordBatch, len(right))
	err := e.parallelFor(len(right), func(bi int) error {
		rb := right[bi]
		var li, ri []int32
		if filter == nil {
			for l := 0; l < lb.NumRows(); l++ {
				for r := 0; r < rb.NumRows(); r++ {
					li = append(li, int32(l))
					ri = append(ri, int32(r))
				}
			}
		} else {
			for l := 0; l < lb.NumRows(); l++ {
				rep := make([]int32, rb.NumRows())
				for i := range rep {
					rep[i] = int32(l)
				}
				lcols := make([]arrow.Array, lb.NumCols())
				for c := range lcols {
					lcols[c] = compute.Take(lb.Column(c), rep)
				}
				cb := arrow.NewRecordBatchWithRows(innerSchema, append(lcols, rb.Columns()...), rb.NumRows())
				mask, err := physical.EvalPredicate(filter, cb)
				if err != nil {
					return err
				}
				for r := 0; r < rb.NumRows(); r++ {
					if mask.IsValid(r) && mask.Value(r) {
						li = append(li, int32(l))
						ri = append(ri, int32(r))
					}
				}
			}
		}
		if len(li) > 0 {
			mu.Lock()
			for _, l := range li {
				visited[l] = true
			}
			mu.Unlock()
		}
		switch n.Type {
		case logical.CrossJoin, logical.InnerJoin:
			if len(li) > 0 {
				outs[bi] = combineBatches(outSchema, lb, rb, li, ri)
			}
		case logical.LeftSemiJoin, logical.LeftAntiJoin:
			// from visited
		default:
			if len(li) > 0 {
				outs[bi] = combineBatches(outSchema, lb, rb, li, ri)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var result []*arrow.RecordBatch
	for _, b := range outs {
		if b != nil && b.NumRows() > 0 {
			result = append(result, b)
		}
	}
	switch n.Type {
	case logical.LeftSemiJoin, logical.LeftAntiJoin:
		want := n.Type == logical.LeftSemiJoin
		var keep []int32
		for i, v := range visited {
			if v == want {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) > 0 {
			result = append(result, compute.TakeBatch(lb, keep))
		}
	case logical.LeftJoin:
		var keep []int32
		for i, v := range visited {
			if !v {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) > 0 {
			lcols := make([]arrow.Array, lb.NumCols())
			for c := range lcols {
				lcols[c] = compute.Take(lb.Column(c), keep)
			}
			rs := n.Right.Schema().ToArrow()
			rcols := make([]arrow.Array, rs.NumFields())
			for c := 0; c < rs.NumFields(); c++ {
				b := arrow.NewBuilder(rs.Field(c).Type)
				for range keep {
					b.AppendNull()
				}
				rcols[c] = b.Finish()
			}
			result = append(result, arrow.NewRecordBatchWithRows(outSchema, append(lcols, rcols...), len(keep)))
		}
	}
	return result, nil
}
