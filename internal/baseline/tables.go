package baseline

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/csvio"
	"gofusion/internal/parquet"
)

// MemTable is an in-memory baseline table.
type MemTable struct {
	schema  *arrow.Schema
	batches []*arrow.RecordBatch
	rows    int64
}

// NewMemTable wraps batches.
func NewMemTable(schema *arrow.Schema, batches []*arrow.RecordBatch) *MemTable {
	var rows int64
	for _, b := range batches {
		rows += int64(b.NumRows())
	}
	return &MemTable{schema: schema, batches: batches, rows: rows}
}

// Schema implements Table.
func (t *MemTable) Schema() *arrow.Schema { return t.schema }

// NumRows implements Table.
func (t *MemTable) NumRows() int64 { return t.rows }

// Materialize implements Table.
func (t *MemTable) Materialize(projection []int, _ int) ([]*arrow.RecordBatch, error) {
	if projection == nil {
		return t.batches, nil
	}
	out := make([]*arrow.RecordBatch, len(t.batches))
	for i, b := range t.batches {
		out[i] = b.Project(projection)
	}
	return out, nil
}

// RegisterBatches registers an in-memory table.
func (e *Engine) RegisterBatches(name string, schema *arrow.Schema, batches []*arrow.RecordBatch) {
	e.Register(name, NewMemTable(schema, batches))
}

// GPQTable reads GPQ files eagerly: whole row groups are decoded (with
// projection pushdown only); no statistics pruning, no Bloom filters, no
// late materialization.
type GPQTable struct {
	files  []string
	schema *arrow.Schema
	rows   int64
}

// NewGPQTable opens GPQ files.
func NewGPQTable(files []string) (*GPQTable, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("baseline: no files")
	}
	t := &GPQTable{files: files}
	for i, f := range files {
		fr, err := parquet.OpenFile(f)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			t.schema = fr.Schema()
		}
		t.rows += fr.NumRows()
		fr.Close()
	}
	return t, nil
}

// RegisterGPQDir registers every GPQ file under dir as one table.
func (e *Engine) RegisterGPQDir(name, dir string) error {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".gpq") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Strings(files)
	t, err := NewGPQTable(files)
	if err != nil {
		return err
	}
	e.Register(name, t)
	return nil
}

// RegisterGPQ registers explicit GPQ files.
func (e *Engine) RegisterGPQ(name string, files ...string) error {
	t, err := NewGPQTable(files)
	if err != nil {
		return err
	}
	e.Register(name, t)
	return nil
}

// Schema implements Table.
func (t *GPQTable) Schema() *arrow.Schema { return t.schema }

// NumRows implements Table.
func (t *GPQTable) NumRows() int64 { return t.rows }

// Materialize implements Table: files decode in parallel, fully.
func (t *GPQTable) Materialize(projection []int, workers int) ([]*arrow.RecordBatch, error) {
	if workers < 1 {
		workers = 1
	}
	results := make([][]*arrow.RecordBatch, len(t.files))
	errs := make([]error, len(t.files))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, f := range t.files {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			fr, err := parquet.OpenFile(path)
			if err != nil {
				errs[i] = err
				return
			}
			defer fr.Close()
			// Full scan: no predicate, no limit; every surviving page is
			// decoded.
			sc, err := fr.Scan(parquet.ScanOptions{Projection: projection, Limit: -1})
			if err != nil {
				errs[i] = err
				return
			}
			for {
				b, err := sc.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = append(results[i], b)
			}
		}(i, f)
	}
	wg.Wait()
	var out []*arrow.RecordBatch
	for i := range t.files {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	return out, nil
}

// CSVTable decodes CSV row-at-a-time into boxed values before building
// columns (TightDB's CSV path is deliberately simpler and slower than the
// engine's typed vectorized parser, matching the paper's relative CSV
// results).
type CSVTable struct {
	path   string
	schema *arrow.Schema
}

// NewCSVTable opens a CSV file, inferring the schema.
func NewCSVTable(path string) (*CSVTable, error) {
	schema, err := csvio.InferSchema(path, csvio.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return &CSVTable{path: path, schema: schema}, nil
}

// RegisterCSV registers a CSV-backed table.
func (e *Engine) RegisterCSV(name, path string) error {
	t, err := NewCSVTable(path)
	if err != nil {
		return err
	}
	e.Register(name, t)
	return nil
}

// Schema implements Table.
func (t *CSVTable) Schema() *arrow.Schema { return t.schema }

// NumRows implements Table.
func (t *CSVTable) NumRows() int64 { return -1 }

// Materialize implements Table.
func (t *CSVTable) Materialize(projection []int, _ int) ([]*arrow.RecordBatch, error) {
	f, err := os.Open(t.path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	r.ReuseRecord = true
	if _, err := r.Read(); err != nil { // header
		return nil, err
	}
	cols := projection
	if cols == nil {
		cols = make([]int, t.schema.NumFields())
		for i := range cols {
			cols[i] = i
		}
	}
	outSchema := t.schema.Select(cols)
	builders := make([]arrow.Builder, len(cols))
	for i, c := range cols {
		builders[i] = arrow.NewBuilder(t.schema.Field(c).Type)
	}
	var out []*arrow.RecordBatch
	rows := 0
	flush := func(force bool) {
		if rows == 0 || (!force && rows < 8192) {
			return
		}
		arrs := make([]arrow.Array, len(builders))
		for i, b := range builders {
			arrs[i] = b.Finish()
		}
		out = append(out, arrow.NewRecordBatchWithRows(outSchema, arrs, rows))
		rows = 0
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i, c := range cols {
			// Row-at-a-time boxed parse (deliberately naive).
			v := rec[c]
			if v == "" {
				builders[i].AppendNull()
				continue
			}
			s, err := parseBoxed(v, t.schema.Field(c).Type)
			if err != nil {
				return nil, err
			}
			builders[i].AppendScalar(s)
		}
		rows++
		flush(false)
	}
	flush(true)
	return out, nil
}

func parseBoxed(v string, t *arrow.DataType) (arrow.Scalar, error) {
	switch t.ID {
	case arrow.INT64:
		x, err := strconv.ParseInt(v, 10, 64)
		return arrow.Int64Scalar(x), err
	case arrow.FLOAT64:
		x, err := strconv.ParseFloat(v, 64)
		return arrow.Float64Scalar(x), err
	case arrow.BOOL:
		x, err := strconv.ParseBool(v)
		return arrow.BoolScalar(x), err
	case arrow.DATE32:
		d, err := arrow.ParseDate32(v)
		return arrow.NewScalar(arrow.Date32, d), err
	case arrow.TIMESTAMP:
		ts, err := arrow.ParseTimestamp(v)
		return arrow.NewScalar(arrow.Timestamp, ts), err
	default:
		return arrow.StringScalar(v), nil
	}
}
