package baseline

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/exec"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// parallelFor runs f over [0, n) on the engine's worker pool.
func (e *Engine) parallelFor(n int, f func(i int) error) error {
	workers := e.Parallelism
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) compiler(schema *logical.Schema) *physical.Compiler {
	return physical.NewCompiler(schema, e.reg)
}

// execute interprets an optimized logical plan with TightDB's materialized
// operators.
func (e *Engine) execute(plan logical.Plan) ([]*arrow.RecordBatch, error) {
	switch n := plan.(type) {
	case *logical.TableScan:
		return e.execScan(n)
	case *logical.Filter:
		in, err := e.execute(n.Input)
		if err != nil {
			return nil, err
		}
		pred, err := e.compiler(n.Input.Schema()).Compile(n.Predicate)
		if err != nil {
			return nil, err
		}
		return e.filterBatches(in, pred)
	case *logical.Projection:
		in, err := e.execute(n.Input)
		if err != nil {
			return nil, err
		}
		comp := e.compiler(n.Input.Schema())
		exprs := make([]physical.PhysicalExpr, len(n.Exprs))
		for i, x := range n.Exprs {
			pe, err := comp.Compile(x)
			if err != nil {
				return nil, err
			}
			exprs[i] = pe
		}
		outSchema := n.Schema().ToArrow()
		out := make([]*arrow.RecordBatch, len(in))
		err = e.parallelFor(len(in), func(i int) error {
			cols := make([]arrow.Array, len(exprs))
			for c, pe := range exprs {
				a, err := physical.EvalToArray(pe, in[i])
				if err != nil {
					return err
				}
				cols[c] = a
			}
			out[i] = arrow.NewRecordBatchWithRows(outSchema, cols, in[i].NumRows())
			return nil
		})
		return out, err
	case *logical.Aggregate:
		in, err := e.execute(n.Input)
		if err != nil {
			return nil, err
		}
		return e.radixAggregate(n, in)
	case *logical.Distinct:
		in, err := e.execute(n.Input)
		if err != nil {
			return nil, err
		}
		return e.distinct(n, in)
	case *logical.Sort:
		in, err := e.execute(n.Input)
		if err != nil {
			return nil, err
		}
		return e.sortBatches(n, in)
	case *logical.Limit:
		in, err := e.execute(n.Input)
		if err != nil {
			return nil, err
		}
		return limitBatches(in, n.Skip, n.Fetch), nil
	case *logical.Join:
		return e.execJoin(n)
	case *logical.SubqueryAlias:
		return e.execute(n.Input)
	case *logical.Union:
		var out []*arrow.RecordBatch
		target := n.Schema().ToArrow()
		for _, in := range n.Inputs {
			bs, err := e.execute(in)
			if err != nil {
				return nil, err
			}
			// Rename columns positionally to the union schema.
			for _, b := range bs {
				out = append(out, arrow.NewRecordBatchWithRows(target, b.Columns(), b.NumRows()))
			}
		}
		return out, nil
	case *logical.Window:
		return e.execWindow(n)
	case *logical.Values:
		return e.execValues(n)
	case *logical.EmptyRelation:
		schema := n.Schema().ToArrow()
		if !n.ProduceOneRow {
			return nil, nil
		}
		cols := make([]arrow.Array, schema.NumFields())
		for i, f := range schema.Fields() {
			b := arrow.NewBuilder(f.Type)
			b.AppendNull()
			cols[i] = b.Finish()
		}
		return []*arrow.RecordBatch{arrow.NewRecordBatchWithRows(schema, cols, 1)}, nil
	}
	return nil, fmt.Errorf("baseline: cannot execute %T", plan)
}

func (e *Engine) execScan(n *logical.TableScan) ([]*arrow.RecordBatch, error) {
	src, ok := n.Source.(*tableSource)
	if !ok {
		return nil, fmt.Errorf("baseline: foreign table source for %q", n.Name)
	}
	batches, err := src.t.Materialize(n.Projection, e.Parallelism)
	if err != nil {
		return nil, err
	}
	// Pushed-down filters run after the (complete) decode: TightDB has no
	// in-format filtering.
	if len(n.Filters) > 0 {
		pred, err := e.compiler(n.Schema()).Compile(logical.And(n.Filters...))
		if err != nil {
			return nil, err
		}
		batches, err = e.filterBatches(batches, pred)
		if err != nil {
			return nil, err
		}
	}
	if n.Fetch >= 0 {
		batches = limitBatches(batches, 0, n.Fetch)
	}
	return batches, nil
}

func (e *Engine) filterBatches(in []*arrow.RecordBatch, pred physical.PhysicalExpr) ([]*arrow.RecordBatch, error) {
	out := make([]*arrow.RecordBatch, len(in))
	err := e.parallelFor(len(in), func(i int) error {
		mask, err := physical.EvalPredicate(pred, in[i])
		if err != nil {
			return err
		}
		fb, err := compute.FilterBatch(in[i], mask)
		if err != nil {
			return err
		}
		out[i] = fb
		return nil
	})
	if err != nil {
		return nil, err
	}
	kept := out[:0]
	for _, b := range out {
		if b.NumRows() > 0 {
			kept = append(kept, b)
		}
	}
	return kept, nil
}

func limitBatches(in []*arrow.RecordBatch, skip, fetch int64) []*arrow.RecordBatch {
	var out []*arrow.RecordBatch
	for _, b := range in {
		if skip >= int64(b.NumRows()) {
			skip -= int64(b.NumRows())
			continue
		}
		if skip > 0 {
			b = b.Slice(int(skip), b.NumRows()-int(skip))
			skip = 0
		}
		if fetch >= 0 {
			if fetch == 0 {
				break
			}
			if int64(b.NumRows()) > fetch {
				b = b.Slice(0, int(fetch))
			}
			fetch -= int64(b.NumRows())
		}
		out = append(out, b)
	}
	return out
}

func (e *Engine) sortBatches(n *logical.Sort, in []*arrow.RecordBatch) ([]*arrow.RecordBatch, error) {
	full, err := compute.ConcatBatches(n.Schema().ToArrow(), in)
	if err != nil {
		return nil, err
	}
	if full.NumRows() == 0 {
		return nil, nil
	}
	comp := e.compiler(n.Input.Schema())
	types := make([]*arrow.DataType, len(n.Keys))
	opts := make([]rowformat.SortOption, len(n.Keys))
	cols := make([]arrow.Array, len(n.Keys))
	for i, k := range n.Keys {
		pe, err := comp.Compile(k.E)
		if err != nil {
			return nil, err
		}
		a, err := physical.EvalToArray(pe, full)
		if err != nil {
			return nil, err
		}
		cols[i] = a
		types[i] = a.DataType()
		opts[i] = rowformat.SortOption{Descending: !k.Asc, NullsFirst: k.NullsFirst}
	}
	enc, err := rowformat.NewEncoder(types, opts)
	if err != nil {
		return nil, err
	}
	keys := enc.EncodeRows(cols, full.NumRows())
	idx := make([]int32, full.NumRows())
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return bytes.Compare(keys[idx[a]], keys[idx[b]]) < 0
	})
	if n.Fetch >= 0 && int64(len(idx)) > n.Fetch {
		idx = idx[:n.Fetch]
	}
	return []*arrow.RecordBatch{compute.TakeBatch(full, idx)}, nil
}

func (e *Engine) execValues(n *logical.Values) ([]*arrow.RecordBatch, error) {
	schema := n.Schema().ToArrow()
	builders := make([]arrow.Builder, schema.NumFields())
	for i, f := range schema.Fields() {
		builders[i] = arrow.NewBuilder(f.Type)
	}
	empty := logical.NewSchema()
	comp := e.compiler(empty)
	oneRow := arrow.NewRecordBatchWithRows(arrow.NewSchema(), nil, 1)
	for _, row := range n.Rows {
		for c, cell := range row {
			pe, err := comp.Compile(cell)
			if err != nil {
				return nil, err
			}
			d, err := pe.Evaluate(oneRow)
			if err != nil {
				return nil, err
			}
			var s arrow.Scalar
			if d.IsArray() {
				s = d.Array().GetScalar(0)
			} else {
				s = d.ScalarValue()
			}
			if !s.Null && !s.Type.Equal(schema.Field(c).Type) {
				s, err = physical.CastScalarTo(s, schema.Field(c).Type)
				if err != nil {
					return nil, err
				}
			}
			builders[c].AppendScalar(s)
		}
	}
	cols := make([]arrow.Array, len(builders))
	for i, b := range builders {
		cols[i] = b.Finish()
	}
	return []*arrow.RecordBatch{arrow.NewRecordBatchWithRows(schema, cols, len(n.Rows))}, nil
}

// execWindow delegates window evaluation to the shared window algorithm
// over the materialized input (windows are not part of the engines'
// performance comparison).
func (e *Engine) execWindow(n *logical.Window) ([]*arrow.RecordBatch, error) {
	in, err := e.execute(n.Input)
	if err != nil {
		return nil, err
	}
	inSchema := n.Input.Schema().ToArrow()
	values := exec.NewValuesExec(inSchema, in)
	cfg := &exec.PlannerConfig{TargetPartitions: 1, Reg: e.reg}
	wplan, err := exec.PlanWindowOver(values, n, cfg)
	if err != nil {
		return nil, err
	}
	ctx := physical.NewExecContext()
	return exec.CollectPlan(ctx, wplan)
}
