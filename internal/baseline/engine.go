// Package baseline implements TightDB, the tightly-integrated comparator
// engine standing in for DuckDB in the paper's evaluation (Section 8). It
// shares only the columnar memory substrate (arrow), the SQL front end and
// logical optimizer with the main engine; its execution layer is its own:
//
//   - eager, fully-materialized scans: file formats are decoded page-by-
//     page without predicate pushdown, pruning, or late materialization
//     (predicates run after decoding), mirroring the paper's observation
//     that DuckDB lacked parquet predicate pushdown;
//   - morsel-parallel operators over materialized batch vectors instead of
//     pull-based partitioned streams;
//   - radix-partitioned parallel hash aggregation with fixed-width key
//     fast paths, optimized for very high group cardinalities (the regime
//     where the paper's analysis has DuckDB ahead);
//   - a row-at-a-time CSV decode path (the paper has DataFusion ahead on
//     CSV parsing).
package baseline

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/optimizer"
	"gofusion/internal/planner"
	"gofusion/internal/sql"
)

// Engine is a TightDB instance: a table registry plus a parallelism level.
type Engine struct {
	tables      map[string]Table
	reg         *functions.Registry
	opt         *optimizer.Optimizer
	Parallelism int
}

// Table is TightDB's data source contract: eager materialization with
// projection pushdown only.
type Table interface {
	Schema() *arrow.Schema
	// Materialize decodes the whole table (selected columns) into memory.
	Materialize(projection []int, workers int) ([]*arrow.RecordBatch, error)
	// NumRows returns the row count estimate, -1 if unknown.
	NumRows() int64
}

// New creates an engine with the given parallelism (threads).
func New(parallelism int) *Engine {
	if parallelism < 1 {
		parallelism = 1
	}
	reg := functions.NewRegistry()
	return &Engine{
		tables:      map[string]Table{},
		reg:         reg,
		opt:         optimizer.New(reg),
		Parallelism: parallelism,
	}
}

// WithParallelism returns a copy of the engine at a different thread count
// (tables shared).
func (e *Engine) WithParallelism(p int) *Engine {
	out := *e
	if p < 1 {
		p = 1
	}
	out.Parallelism = p
	return &out
}

// Register adds a table.
func (e *Engine) Register(name string, t Table) {
	e.tables[strings.ToLower(name)] = t
}

// tableSource adapts a baseline Table into the planner's resolver, also
// carrying statistics for the shared optimizer's join heuristics.
type tableSource struct{ t Table }

func (s *tableSource) Schema() *arrow.Schema { return s.t.Schema() }

func (e *Engine) resolve(name string) (logical.TableSource, error) {
	t, ok := e.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("baseline: table %q not found", name)
	}
	return &tableSource{t: t}, nil
}

// Query parses, plans, optimizes, and executes a SQL query, returning the
// concatenated result.
func (e *Engine) Query(query string) (*arrow.RecordBatch, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("baseline: only queries are supported")
	}
	pl := planner.New(e.resolve, e.reg)
	plan, err := pl.PlanQuery(sel)
	if err != nil {
		return nil, err
	}
	plan, err = e.opt.Optimize(plan)
	if err != nil {
		return nil, err
	}
	batches, err := e.execute(plan)
	if err != nil {
		return nil, err
	}
	return compute.ConcatBatches(plan.Schema().ToArrow(), batches)
}
