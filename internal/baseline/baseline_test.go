package baseline

import (
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/core"
	"gofusion/internal/testutil"
	"gofusion/internal/workload/clickbench"
	"gofusion/internal/workload/h2o"
	"gofusion/internal/workload/tpch"
)

func TestBaselineBasics(t *testing.T) {
	e := New(2)
	schema := arrow.NewSchema(
		arrow.NewField("k", arrow.Int64, false),
		arrow.NewField("v", arrow.Float64, false),
	)
	kb := arrow.NewNumericBuilder[int64](arrow.Int64)
	vb := arrow.NewNumericBuilder[float64](arrow.Float64)
	for i := 0; i < 1000; i++ {
		kb.Append(int64(i % 7))
		vb.Append(float64(i))
	}
	e.RegisterBatches("t", schema, []*arrow.RecordBatch{
		arrow.NewRecordBatch(schema, []arrow.Array{kb.Finish(), vb.Finish()}),
	})
	b, err := e.Query("SELECT k, count(*) AS c, sum(v) FROM t GROUP BY k ORDER BY k")
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRows() != 7 {
		t.Fatalf("rows = %d", b.NumRows())
	}
	var total int64
	cs := b.ColumnByName("c").(*arrow.Int64Array)
	for i := 0; i < 7; i++ {
		total += cs.Value(i)
	}
	if total != 1000 {
		t.Fatalf("counts sum to %d", total)
	}
}

// TestTPCHEnginesAgree runs all 22 TPC-H queries on both engines and
// compares results (the differential test underlying Figure 5).
func TestTPCHEnginesAgree(t *testing.T) {
	const sf = 0.01
	s := core.NewSession(core.DefaultConfig())
	if err := tpch.RegisterInMemory(s, sf); err != nil {
		t.Fatal(err)
	}
	e := New(2)
	g := tpch.NewGenerator(sf)
	for _, name := range tpch.TableNames {
		schema, batches, err := g.Generate(name)
		if err != nil {
			t.Fatal(err)
		}
		e.RegisterBatches(name, schema, batches)
	}
	for n := 1; n <= 22; n++ {
		q, _ := tpch.Query(n)
		df, err := s.SQL(q)
		if err != nil {
			t.Fatalf("Q%d gofusion plan: %v", n, err)
		}
		want, err := df.CollectBatch()
		if err != nil {
			t.Fatalf("Q%d gofusion exec: %v", n, err)
		}
		got, err := e.Query(q)
		if err != nil {
			t.Fatalf("Q%d baseline: %v", n, err)
		}
		if diff := testutil.DiffBatches(got, want); diff != "" {
			t.Fatalf("Q%d: engines disagree:\n%s", n, diff)
		}
	}
}

// TestClickBenchEnginesAgree compares both engines on the paper's
// ClickBench query subset.
func TestClickBenchEnginesAgree(t *testing.T) {
	const rowsN = 10000
	s := core.NewSession(core.DefaultConfig())
	if err := clickbench.RegisterInMemory(s, rowsN); err != nil {
		t.Fatal(err)
	}
	e := New(2)
	g := clickbench.NewGenerator(rowsN)
	schema, batches := g.Generate()
	e.RegisterBatches("hits", schema, batches)

	queries := clickbench.Queries()
	for _, n := range clickbench.PaperQueryNumbers() {
		q := queries[n]
		df, err := s.SQL(q)
		if err != nil {
			t.Fatalf("Q%d gofusion plan: %v", n, err)
		}
		want, err := df.CollectBatch()
		if err != nil {
			t.Fatalf("Q%d gofusion exec: %v", n, err)
		}
		got, err := e.Query(q)
		if err != nil {
			t.Fatalf("Q%d baseline: %v", n, err)
		}
		// Top-K queries can tie-break differently; compare row counts and
		// the full set only for deterministic queries (no LIMIT).
		if got.NumRows() != want.NumRows() {
			t.Fatalf("Q%d: %d vs %d rows", n, got.NumRows(), want.NumRows())
		}
		if !hasLimit(q) {
			if diff := testutil.DiffBatches(got, want); diff != "" {
				t.Fatalf("Q%d: engines disagree:\n%s", n, diff)
			}
		}
	}
}

func hasLimit(q string) bool {
	for i := 0; i+5 <= len(q); i++ {
		if q[i] == 'L' && q[i:i+5] == "LIMIT" {
			return true
		}
	}
	return false
}

// TestH2OEnginesAgree compares both engines on the H2O groupby queries.
func TestH2OEnginesAgree(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/g1.csv"
	if err := h2o.WriteCSV(path, 20000); err != nil {
		t.Fatal(err)
	}
	s := core.NewSession(core.DefaultConfig())
	if err := h2o.Register(s, path); err != nil {
		t.Fatal(err)
	}
	e := New(2)
	if err := e.RegisterCSV("x", path); err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 10; n++ {
		q := h2o.Queries[n]
		df, err := s.SQL(q)
		if err != nil {
			t.Fatalf("q%d gofusion plan: %v", n, err)
		}
		want, err := df.CollectBatch()
		if err != nil {
			t.Fatalf("q%d gofusion exec: %v", n, err)
		}
		got, err := e.Query(q)
		if err != nil {
			t.Fatalf("q%d baseline: %v", n, err)
		}
		if diff := testutil.DiffBatches(got, want); diff != "" {
			t.Fatalf("q%d: engines disagree (%d vs %d rows):\n%s", n, got.NumRows(), want.NumRows(), diff)
		}
	}
}
