package physical

import (
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
)

var reg = functions.NewRegistry()

func testBatch() *arrow.RecordBatch {
	schema := arrow.NewSchema(
		arrow.NewField("i", arrow.Int64, true),
		arrow.NewField("f", arrow.Float64, true),
		arrow.NewField("s", arrow.String, true),
		arrow.NewField("d", arrow.Date32, false),
	)
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	ib.Append(1)
	ib.Append(2)
	ib.AppendNull()
	fb := arrow.NewNumericBuilder[float64](arrow.Float64)
	fb.Append(1.5)
	fb.AppendNull()
	fb.Append(3.5)
	sb := arrow.NewStringBuilder(arrow.String)
	sb.Append("apple")
	sb.Append("banana")
	sb.Append("apricot")
	db := arrow.NewNumericBuilder[int32](arrow.Date32)
	d0, _ := arrow.ParseDate32("2024-03-15")
	for k := 0; k < 3; k++ {
		db.Append(d0 + int32(k))
	}
	return arrow.NewRecordBatch(schema, []arrow.Array{ib.Finish(), fb.Finish(), sb.Finish(), db.Finish()})
}

func testSchema() *logical.Schema {
	return logical.FromArrow("t", testBatch().Schema())
}

func compile(t *testing.T, e logical.Expr) PhysicalExpr {
	t.Helper()
	pe, err := NewCompiler(testSchema(), reg).Compile(e)
	if err != nil {
		t.Fatalf("compiling %s: %v", e, err)
	}
	return pe
}

func evalOn(t *testing.T, e logical.Expr) arrow.Array {
	t.Helper()
	arr, err := EvalToArray(compile(t, e), testBatch())
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestCompileColumnAndLiteral(t *testing.T) {
	out := evalOn(t, logical.Col("i"))
	if out.(*arrow.Int64Array).Value(0) != 1 || !out.IsNull(2) {
		t.Fatal("column eval wrong")
	}
	pe := compile(t, logical.Lit(42))
	d, err := pe.Evaluate(testBatch())
	if err != nil || d.IsArray() || d.ScalarValue().AsInt64() != 42 {
		t.Fatal("literal eval wrong")
	}
}

func TestCompileCoercion(t *testing.T) {
	// int column + float literal coerces to float64.
	out := evalOn(t, &logical.BinaryExpr{Op: logical.OpAdd, L: logical.Col("i"), R: logical.Lit(0.5)})
	if out.DataType().ID != arrow.FLOAT64 {
		t.Fatalf("type = %s", out.DataType())
	}
	if out.(*arrow.Float64Array).Value(0) != 1.5 {
		t.Fatal("coerced add wrong")
	}
	// comparison between int and float works too.
	out2 := evalOn(t, &logical.BinaryExpr{Op: logical.OpLt, L: logical.Col("i"), R: logical.Lit(1.5)})
	ba := out2.(*arrow.BoolArray)
	if !ba.Value(0) || ba.Value(1) || !ba.IsNull(2) {
		t.Fatal("coerced compare wrong")
	}
	// string compared with int casts to string.
	out3 := evalOn(t, &logical.BinaryExpr{Op: logical.OpEq, L: logical.Col("s"), R: logical.Lit("apple")})
	if !out3.(*arrow.BoolArray).Value(0) {
		t.Fatal("string compare wrong")
	}
}

func TestCompileDecimalDivisionRewrite(t *testing.T) {
	schema := logical.NewSchema(
		logical.QField{Name: "d1", Type: arrow.Decimal(12, 2)},
		logical.QField{Name: "d2", Type: arrow.Decimal(12, 2)},
	)
	pe, err := NewCompiler(schema, reg).Compile(
		&logical.BinaryExpr{Op: logical.OpDiv, L: logical.Col("d1"), R: logical.Col("d2")})
	if err != nil {
		t.Fatal(err)
	}
	if pe.DataType().ID != arrow.FLOAT64 {
		t.Fatalf("decimal division must produce float, got %s", pe.DataType())
	}
	b := arrow.NewRecordBatch(schema.ToArrow(), []arrow.Array{
		arrow.NewNumeric(arrow.Decimal(12, 2), []int64{300}, nil), // 3.00
		arrow.NewNumeric(arrow.Decimal(12, 2), []int64{150}, nil), // 1.50
	})
	out, err := EvalToArray(pe, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.(*arrow.Float64Array).Value(0) != 2.0 {
		t.Fatalf("3.00/1.50 = %v", out.GetScalar(0))
	}
}

func TestDateIntervalArithmetic(t *testing.T) {
	iv := arrow.NewScalar(arrow.Interval, arrow.MonthDayMicro{Months: 1, Days: 2})
	out := evalOn(t, &logical.BinaryExpr{Op: logical.OpAdd, L: logical.Col("d"), R: &logical.Literal{Value: iv}})
	if out.DataType().ID != arrow.DATE32 {
		t.Fatalf("date+interval type = %s", out.DataType())
	}
	if arrow.FormatDate32(out.(*arrow.Int32Array).Value(0)) != "2024-04-17" {
		t.Fatalf("date math = %s", arrow.FormatDate32(out.(*arrow.Int32Array).Value(0)))
	}
	// date - date = interval
	diff := evalOn(t, &logical.BinaryExpr{Op: logical.OpSub, L: logical.Col("d"), R: logical.Col("d")})
	if diff.DataType().ID != arrow.INTERVAL {
		t.Fatal("date-date must be interval")
	}
}

func TestCaseExpr(t *testing.T) {
	e := &logical.Case{
		Whens: []logical.WhenClause{
			{When: &logical.BinaryExpr{Op: logical.OpEq, L: logical.Col("i"), R: logical.Lit(1)}, Then: logical.Lit("one")},
			{When: &logical.BinaryExpr{Op: logical.OpEq, L: logical.Col("i"), R: logical.Lit(2)}, Then: logical.Lit("two")},
		},
		Else: logical.Lit("other"),
	}
	out := evalOn(t, e).(*arrow.StringArray)
	if out.Value(0) != "one" || out.Value(1) != "two" || out.Value(2) != "other" {
		t.Fatalf("case wrong: %v", out)
	}
	// Operand form with no ELSE gives NULL.
	e2 := &logical.Case{
		Operand: logical.Col("s"),
		Whens:   []logical.WhenClause{{When: logical.Lit("apple"), Then: logical.Lit(10)}},
	}
	out2 := evalOn(t, e2)
	if out2.GetScalar(0).AsInt64() != 10 || !out2.IsNull(1) {
		t.Fatal("operand case wrong")
	}
}

func TestInListAndLike(t *testing.T) {
	in := &logical.InList{E: logical.Col("s"), List: []logical.Expr{logical.Lit("apple"), logical.Lit("apricot")}}
	out := evalOn(t, in).(*arrow.BoolArray)
	if !out.Value(0) || out.Value(1) || !out.Value(2) {
		t.Fatal("in list wrong")
	}
	notIn := &logical.InList{E: logical.Col("s"), List: []logical.Expr{logical.Lit("apple")}, Negated: true}
	out2 := evalOn(t, notIn).(*arrow.BoolArray)
	if out2.Value(0) || !out2.Value(1) {
		t.Fatal("not in wrong")
	}
	like := &logical.Like{E: logical.Col("s"), Pattern: logical.Lit("ap%")}
	out3 := evalOn(t, like).(*arrow.BoolArray)
	if !out3.Value(0) || out3.Value(1) || !out3.Value(2) {
		t.Fatal("like wrong")
	}
	// IN with ints coerces literal items to the column kind.
	inInt := &logical.InList{E: logical.Col("i"), List: []logical.Expr{logical.Lit(2), logical.Lit(9)}}
	out4 := evalOn(t, inInt).(*arrow.BoolArray)
	if out4.Value(0) || !out4.Value(1) {
		t.Fatal("int in-list wrong")
	}
}

func TestBetweenRewrite(t *testing.T) {
	e := &logical.Between{E: logical.Col("i"), Low: logical.Lit(1), High: logical.Lit(1)}
	out := evalOn(t, e).(*arrow.BoolArray)
	if !out.Value(0) || out.Value(1) {
		t.Fatal("between wrong")
	}
	neg := &logical.Between{E: logical.Col("i"), Low: logical.Lit(1), High: logical.Lit(1), Negated: true}
	out2 := evalOn(t, neg).(*arrow.BoolArray)
	if out2.Value(0) || !out2.Value(1) {
		t.Fatal("not between wrong")
	}
}

func TestScalarFunctionCall(t *testing.T) {
	e := &logical.ScalarFunc{Name: "upper", Args: []logical.Expr{logical.Col("s")}}
	out := evalOn(t, e).(*arrow.StringArray)
	if out.Value(0) != "APPLE" {
		t.Fatal("function call wrong")
	}
	if _, err := NewCompiler(testSchema(), reg).Compile(&logical.ScalarFunc{Name: "nope"}); err == nil {
		t.Fatal("unknown function must fail at compile time")
	}
}

func TestAggregateOutsideContextFails(t *testing.T) {
	_, err := NewCompiler(testSchema(), reg).Compile(&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("i")}})
	if err == nil {
		t.Fatal("aggregate must not compile as scalar")
	}
}

func TestEvalPredicateSemantics(t *testing.T) {
	pe := compile(t, &logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("f"), R: logical.Lit(2.0)})
	mask, err := EvalPredicate(pe, testBatch())
	if err != nil {
		t.Fatal(err)
	}
	if mask.Value(0) || !mask.IsNull(1) || !mask.Value(2) {
		t.Fatal("predicate mask wrong")
	}
	// Non-boolean predicate is an error.
	if _, err := EvalPredicate(compile(t, logical.Col("i")), testBatch()); err == nil {
		t.Fatal("non-boolean predicate must error")
	}
}

func TestIsNullNotNegative(t *testing.T) {
	isNull := evalOn(t, &logical.IsNull{E: logical.Col("i")}).(*arrow.BoolArray)
	if isNull.Value(0) || !isNull.Value(2) {
		t.Fatal("is null wrong")
	}
	notNull := evalOn(t, &logical.IsNull{E: logical.Col("i"), Negated: true}).(*arrow.BoolArray)
	if !notNull.Value(0) || notNull.Value(2) {
		t.Fatal("is not null wrong")
	}
	neg := evalOn(t, &logical.Negative{E: logical.Col("i")})
	if neg.GetScalar(0).AsInt64() != -1 {
		t.Fatal("negative wrong")
	}
	not := evalOn(t, &logical.Not{E: &logical.IsNull{E: logical.Col("i")}}).(*arrow.BoolArray)
	if !not.Value(0) || not.Value(2) {
		t.Fatal("not wrong")
	}
}

func TestConcatOperator(t *testing.T) {
	e := &logical.BinaryExpr{Op: logical.OpConcat, L: logical.Col("s"), R: logical.Lit("!")}
	out := evalOn(t, e).(*arrow.StringArray)
	if out.Value(0) != "apple!" {
		t.Fatal("concat wrong")
	}
	// Concat with a non-string side casts.
	e2 := &logical.BinaryExpr{Op: logical.OpConcat, L: logical.Col("i"), R: logical.Lit("x")}
	out2 := evalOn(t, e2).(*arrow.StringArray)
	if out2.Value(0) != "1x" {
		t.Fatalf("cast concat = %q", out2.Value(0))
	}
}
