package physical

import (
	"gofusion/internal/arrow"
)

// EmitFn receives one output batch from a push-mode operator. Operators
// call it zero or more times per Push/Flush; the driver buffers emitted
// batches and feeds them to the next stage after the call returns, so
// implementations never re-enter downstream operators.
type EmitFn func(*arrow.RecordBatch) error

// Pusher is the push-mode compilation of one operator for fused pipeline
// execution: instead of pulling from a child stream, the pipeline driver
// pushes each input batch through the whole operator chain in a single
// loop (PAPERS.md: "Push vs. Pull-Based Loop Fusion in Query Engines").
// A Pusher serves one partition and is not safe for concurrent use.
type Pusher interface {
	// Push consumes one input batch, emitting any output via emit. A true
	// done return means the operator will never emit again (e.g. a limit
	// was satisfied); the driver then stops feeding the pipeline.
	Push(b *arrow.RecordBatch, emit EmitFn) (done bool, err error)
	// Flush emits any buffered state after the input is exhausted
	// (coalesce remainders, partial aggregation state).
	Flush(emit EmitFn) error
	// Close releases resources (memory reservations). It must be safe to
	// call after Flush and when the pipeline is abandoned before Flush.
	Close()
}

// Pushable marks an operator that can compile itself into a Pusher and
// join a fused pipeline segment. Operators that buffer unboundedly, need
// their own goroutines, or change partitioning (sorts, joins, exchanges,
// final aggregation) are pipeline breakers and do not implement it.
type Pushable interface {
	ExecutionPlan
	// CanPush reports whether this node is fusable as configured (e.g.
	// partial-mode aggregation only).
	CanPush() bool
	// PushInto compiles the operator for one partition of a fused loop.
	PushInto(ctx *ExecContext, partition int) (Pusher, error)
}
