package physical

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gofusion/internal/arrow"
)

// MetricsSet holds the runtime counters of one physical operator,
// aggregated across all of its partitions (paper Section 5.5: every
// ExecutionPlan carries a MetricsSet surfaced by EXPLAIN ANALYZE). The
// core counters are plain atomics so the batch hot path never takes a
// lock; operator-specific counters are created once per name under a
// mutex and then updated atomically through the returned *Counter.
type MetricsSet struct {
	outputRows    atomic.Int64
	outputBatches atomic.Int64
	elapsedNanos  atomic.Int64
	spillCount    atomic.Int64
	spilledBytes  atomic.Int64
	memPeak       atomic.Int64

	mu    sync.Mutex
	extra []*Counter
}

// NewMetricsSet returns an empty metrics set.
func NewMetricsSet() *MetricsSet { return &MetricsSet{} }

// AddOutput records rows/batches emitted by one Next call.
func (m *MetricsSet) AddOutput(rows int64) {
	m.outputRows.Add(rows)
	m.outputBatches.Add(1)
}

// AddElapsed accrues compute time (wall clock spent inside Next,
// inclusive of time spent pulling from children).
func (m *MetricsSet) AddElapsed(d time.Duration) { m.elapsedNanos.Add(int64(d)) }

// AddSpill records one spill event of the given byte size.
func (m *MetricsSet) AddSpill(bytes int64) {
	m.spillCount.Add(1)
	m.spilledBytes.Add(bytes)
}

// UpdateMemPeak raises the recorded peak memory reservation to at least
// sz (monotone max across partitions).
func (m *MetricsSet) UpdateMemPeak(sz int64) { atomicMax(&m.memPeak, sz) }

// OutputRows returns the rows emitted so far.
func (m *MetricsSet) OutputRows() int64 { return m.outputRows.Load() }

// SpillCount returns the spill events recorded so far.
func (m *MetricsSet) SpillCount() int64 { return m.spillCount.Load() }

// SpilledBytes returns the bytes spilled so far.
func (m *MetricsSet) SpilledBytes() int64 { return m.spilledBytes.Load() }

// Counter returns the operator-specific counter with the given name,
// creating it on first use. Callers should cache the pointer at stream
// open so per-batch updates are a single atomic add.
func (m *MetricsSet) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.extra {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	m.extra = append(m.extra, c)
	return c
}

// Counter is one named operator-specific metric.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's metric name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Store sets the counter to an absolute value (for monotone totals
// re-published by each partition).
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Max raises the counter to at least n.
func (c *Counter) Max(n int64) { atomicMax(&c.v, n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

func atomicMax(v *atomic.Int64, n int64) {
	for {
		cur := v.Load()
		if n <= cur || v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// MetricValue is one named metric in a snapshot.
type MetricValue struct {
	Name  string
	Value int64
}

// MetricsSnapshot is a point-in-time copy of a MetricsSet.
type MetricsSnapshot struct {
	OutputRows      int64
	OutputBatches   int64
	Elapsed         time.Duration
	SpillCount      int64
	SpilledBytes    int64
	MemReservedPeak int64
	// Extra holds operator-specific counters in creation order.
	Extra []MetricValue
}

// Snapshot copies the current counter values.
func (m *MetricsSet) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		OutputRows:      m.outputRows.Load(),
		OutputBatches:   m.outputBatches.Load(),
		Elapsed:         time.Duration(m.elapsedNanos.Load()),
		SpillCount:      m.spillCount.Load(),
		SpilledBytes:    m.spilledBytes.Load(),
		MemReservedPeak: m.memPeak.Load(),
	}
	m.mu.Lock()
	extra := make([]*Counter, len(m.extra))
	copy(extra, m.extra)
	m.mu.Unlock()
	for _, c := range extra {
		s.Extra = append(s.Extra, MetricValue{Name: c.name, Value: c.v.Load()})
	}
	return s
}

// Extra returns the named counter from the snapshot, or 0.
func (s MetricsSnapshot) ExtraValue(name string) int64 {
	for _, mv := range s.Extra {
		if mv.Name == name {
			return mv.Value
		}
	}
	return 0
}

// String renders the snapshot the way EXPLAIN ANALYZE annotates plan
// lines: the core counters always, spill/memory/extras only when set.
func (s MetricsSnapshot) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "output_rows=%d, output_batches=%d, elapsed_compute=%s",
		s.OutputRows, s.OutputBatches, s.Elapsed.Round(time.Microsecond))
	if s.SpillCount > 0 || s.SpilledBytes > 0 {
		fmt.Fprintf(&sb, ", spill_count=%d, spilled_bytes=%d", s.SpillCount, s.SpilledBytes)
	}
	if s.MemReservedPeak > 0 {
		fmt.Fprintf(&sb, ", mem_reserved_peak=%d", s.MemReservedPeak)
	}
	for _, mv := range s.Extra {
		fmt.Fprintf(&sb, ", %s=%d", mv.Name, mv.Value)
	}
	return sb.String()
}

// MetricsProvider is implemented by operators that record runtime
// metrics. It is an optional extension of ExecutionPlan so user-defined
// plans (examples/extension) remain source compatible.
type MetricsProvider interface {
	Metrics() *MetricsSet
}

// OpMetrics is the embeddable MetricsProvider implementation for
// operators. The zero value is ready; Metrics lazily allocates the
// shared set under a package-level lock so that operator structs stay
// copyable (several operators copy themselves in WithChildren, and a
// struct-embedded mutex would trip go vet's copylocks check). All
// copies made after the first Metrics call share the same set.
type OpMetrics struct {
	m *MetricsSet
}

var opMetricsMu sync.Mutex

// Metrics returns the operator's metrics set, creating it on first use.
func (o *OpMetrics) Metrics() *MetricsSet {
	opMetricsMu.Lock()
	defer opMetricsMu.Unlock()
	if o.m == nil {
		o.m = NewMetricsSet()
	}
	return o.m
}

// instrumentedStream wraps a Stream, timing Next and counting output.
type instrumentedStream struct {
	inner Stream
	m     *MetricsSet
}

// InstrumentStream wraps s so every Next call accrues elapsed_compute,
// output_rows and output_batches into m. The elapsed time is inclusive
// of time spent inside children's Next (wall clock per operator frame),
// matching how EXPLAIN ANALYZE tools conventionally report it.
func InstrumentStream(s Stream, m *MetricsSet) Stream {
	return &instrumentedStream{inner: s, m: m}
}

func (s *instrumentedStream) Schema() *arrow.Schema { return s.inner.Schema() }

func (s *instrumentedStream) Next() (b *arrow.RecordBatch, err error) {
	start := time.Now()
	b, err = s.inner.Next()
	s.m.AddElapsed(time.Since(start))
	if err == nil && b != nil {
		s.m.AddOutput(int64(b.NumRows()))
	}
	return b, err
}

func (s *instrumentedStream) Close() { s.inner.Close() }
