package physical

import (
	"fmt"
	"time"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/logical"
)

func errNotBoolean(t *arrow.DataType) error {
	return fmt.Errorf("physical: predicate evaluated to %s, not boolean", t)
}

// ColumnExpr reads input column Index.
type ColumnExpr struct {
	Index int
	Name  string
	Type  *arrow.DataType
}

// NewColumnExpr builds a column reference.
func NewColumnExpr(index int, name string, t *arrow.DataType) *ColumnExpr {
	return &ColumnExpr{Index: index, Name: name, Type: t}
}

func (c *ColumnExpr) DataType() *arrow.DataType { return c.Type }
func (c *ColumnExpr) String() string            { return fmt.Sprintf("%s@%d", c.Name, c.Index) }
func (c *ColumnExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	if c.Index >= b.NumCols() {
		return arrow.Datum{}, fmt.Errorf("physical: column %s@%d out of range (%d cols)", c.Name, c.Index, b.NumCols())
	}
	return arrow.ArrayDatum(b.Column(c.Index)), nil
}

// LiteralExpr is a constant.
type LiteralExpr struct{ Value arrow.Scalar }

func (l *LiteralExpr) DataType() *arrow.DataType { return l.Value.Type }
func (l *LiteralExpr) String() string            { return l.Value.String() }
func (l *LiteralExpr) Evaluate(*arrow.RecordBatch) (arrow.Datum, error) {
	return arrow.ScalarDatum(l.Value), nil
}

var cmpOps = map[logical.BinOp]compute.CmpOp{
	logical.OpEq: compute.Eq, logical.OpNeq: compute.Neq,
	logical.OpLt: compute.Lt, logical.OpLtEq: compute.LtEq,
	logical.OpGt: compute.Gt, logical.OpGtEq: compute.GtEq,
}

var arithOps = map[logical.BinOp]compute.ArithOp{
	logical.OpAdd: compute.Add, logical.OpSub: compute.Sub,
	logical.OpMul: compute.Mul, logical.OpDiv: compute.Div, logical.OpMod: compute.Mod,
}

// BinaryExpr applies a binary operator with vectorized kernels and scalar
// broadcast fast paths.
type BinaryExpr struct {
	Op   logical.BinOp
	L, R PhysicalExpr
	Type *arrow.DataType
}

func (e *BinaryExpr) DataType() *arrow.DataType { return e.Type }
func (e *BinaryExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R)
}

func (e *BinaryExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	l, err := e.L.Evaluate(b)
	if err != nil {
		return arrow.Datum{}, err
	}
	r, err := e.R.Evaluate(b)
	if err != nil {
		return arrow.Datum{}, err
	}
	n := b.NumRows()

	// Temporal arithmetic dispatches before numeric kernels.
	if e.Op.IsArithmetic() && (l.DataType().IsTemporal() || r.DataType().IsTemporal()) {
		out, err := evalTemporalArith(e.Op, l, r, n)
		return out, err
	}

	if op, ok := cmpOps[e.Op]; ok {
		switch {
		case l.IsArray() && r.IsArray():
			out, err := compute.Compare(op, l.Array(), r.Array())
			return arrow.ArrayDatum(out), err
		case l.IsArray():
			out, err := compute.CompareScalar(op, l.Array(), r.ScalarValue())
			return arrow.ArrayDatum(out), err
		case r.IsArray():
			out, err := compute.CompareScalar(op.Flip(), r.Array(), l.ScalarValue())
			return arrow.ArrayDatum(out), err
		default:
			ls, rs := l.ScalarValue(), r.ScalarValue()
			if ls.Null || rs.Null {
				return arrow.ScalarDatum(arrow.NullScalar(arrow.Boolean)), nil
			}
			c := compute.CompareScalars(ls, rs)
			var v bool
			switch op {
			case compute.Eq:
				v = c == 0
			case compute.Neq:
				v = c != 0
			case compute.Lt:
				v = c < 0
			case compute.LtEq:
				v = c <= 0
			case compute.Gt:
				v = c > 0
			default:
				v = c >= 0
			}
			return arrow.ScalarDatum(arrow.BoolScalar(v)), nil
		}
	}

	if e.Op.IsLogical() {
		la, ok1 := l.ToArray(n).(*arrow.BoolArray)
		ra, ok2 := r.ToArray(n).(*arrow.BoolArray)
		if !ok1 || !ok2 {
			return arrow.Datum{}, errNotBoolean(l.DataType())
		}
		var out *arrow.BoolArray
		if e.Op == logical.OpAnd {
			out, err = compute.And(la, ra)
		} else {
			out, err = compute.Or(la, ra)
		}
		return arrow.ArrayDatum(out), err
	}

	if e.Op == logical.OpConcat {
		return evalConcatOp(l, r, n)
	}

	op := arithOps[e.Op]
	switch {
	case l.IsArray() && r.IsArray():
		out, err := compute.Arith(op, l.Array(), r.Array())
		return arrow.ArrayDatum(out), err
	case l.IsArray():
		out, err := compute.ArithScalar(op, l.Array(), r.ScalarValue(), false)
		return arrow.ArrayDatum(out), err
	case r.IsArray():
		out, err := compute.ArithScalar(op, r.Array(), l.ScalarValue(), true)
		return arrow.ArrayDatum(out), err
	default:
		la := arrow.ScalarToArray(l.ScalarValue(), 1)
		out, err := compute.ArithScalar(op, la, r.ScalarValue(), false)
		if err != nil {
			return arrow.Datum{}, err
		}
		return arrow.ScalarDatum(out.GetScalar(0)), nil
	}
}

func evalConcatOp(l, r arrow.Datum, n int) (arrow.Datum, error) {
	la := l.ToArray(n)
	ra := r.ToArray(n)
	if la.DataType().ID != arrow.STRING {
		var err error
		la, err = compute.Cast(la, arrow.String)
		if err != nil {
			return arrow.Datum{}, err
		}
	}
	if ra.DataType().ID != arrow.STRING {
		var err error
		ra, err = compute.Cast(ra, arrow.String)
		if err != nil {
			return arrow.Datum{}, err
		}
	}
	ls, rs := la.(*arrow.StringArray), ra.(*arrow.StringArray)
	b := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < n; i++ {
		if ls.IsNull(i) || rs.IsNull(i) {
			b.AppendNull()
			continue
		}
		b.Append(ls.Value(i) + rs.Value(i))
	}
	return arrow.ArrayDatum(b.Finish()), nil
}

// evalTemporalArith handles date/timestamp +- interval and
// date - date -> interval.
func evalTemporalArith(op logical.BinOp, l, r arrow.Datum, n int) (arrow.Datum, error) {
	lt, rt := l.DataType(), r.DataType()
	// interval + temporal => temporal + interval
	if lt.ID == arrow.INTERVAL && rt.ID != arrow.INTERVAL && op == logical.OpAdd {
		return evalTemporalArith(op, r, l, n)
	}
	switch {
	case (lt.ID == arrow.DATE32 || lt.ID == arrow.TIMESTAMP) && rt.ID == arrow.INTERVAL:
		la := l.ToArray(n)
		ra := r.ToArray(n)
		ia := ra.(*arrow.IntervalArray)
		b := arrow.NewBuilder(lt)
		neg := op == logical.OpSub
		for i := 0; i < n; i++ {
			if la.IsNull(i) || ia.IsNull(i) {
				b.AppendNull()
				continue
			}
			iv := ia.Value(i)
			if neg {
				iv = arrow.MonthDayMicro{Months: -iv.Months, Days: -iv.Days, Micros: -iv.Micros}
			}
			if lt.ID == arrow.DATE32 {
				days := int32(la.GetScalar(i).AsInt64())
				t := time.Unix(int64(days)*86400, 0).UTC().
					AddDate(0, int(iv.Months), int(iv.Days)).
					Add(time.Duration(iv.Micros) * time.Microsecond)
				b.AppendScalar(arrow.NewScalar(arrow.Date32, int32(t.Unix()/86400)))
			} else {
				us := la.GetScalar(i).AsInt64()
				t := time.UnixMicro(us).UTC().
					AddDate(0, int(iv.Months), int(iv.Days)).
					Add(time.Duration(iv.Micros) * time.Microsecond)
				b.AppendScalar(arrow.NewScalar(arrow.Timestamp, t.UnixMicro()))
			}
		}
		return arrow.ArrayDatum(b.Finish()), nil
	case lt.ID == rt.ID && (lt.ID == arrow.DATE32 || lt.ID == arrow.TIMESTAMP) && op == logical.OpSub:
		la, ra := l.ToArray(n), r.ToArray(n)
		ib := arrow.NewIntervalBuilder()
		for i := 0; i < n; i++ {
			if la.IsNull(i) || ra.IsNull(i) {
				ib.AppendNull()
				continue
			}
			if lt.ID == arrow.DATE32 {
				d := int32(la.GetScalar(i).AsInt64()) - int32(ra.GetScalar(i).AsInt64())
				ib.Append(arrow.MonthDayMicro{Days: d})
			} else {
				us := la.GetScalar(i).AsInt64() - ra.GetScalar(i).AsInt64()
				ib.Append(arrow.MonthDayMicro{Micros: us})
			}
		}
		return arrow.ArrayDatum(ib.Finish()), nil
	case lt.ID == arrow.INTERVAL && rt.ID == arrow.INTERVAL:
		la, ra := l.ToArray(n).(*arrow.IntervalArray), r.ToArray(n).(*arrow.IntervalArray)
		ib := arrow.NewIntervalBuilder()
		neg := int32(1)
		if op == logical.OpSub {
			neg = -1
		}
		for i := 0; i < n; i++ {
			if la.IsNull(i) || ra.IsNull(i) {
				ib.AppendNull()
				continue
			}
			x, y := la.Value(i), ra.Value(i)
			ib.Append(arrow.MonthDayMicro{
				Months: x.Months + neg*y.Months,
				Days:   x.Days + neg*y.Days,
				Micros: x.Micros + int64(neg)*y.Micros,
			})
		}
		return arrow.ArrayDatum(ib.Finish()), nil
	}
	return arrow.Datum{}, fmt.Errorf("physical: unsupported temporal arithmetic %s %s %s", lt, op, rt)
}

// NotExpr negates a boolean expression.
type NotExpr struct{ E PhysicalExpr }

func (e *NotExpr) DataType() *arrow.DataType { return arrow.Boolean }
func (e *NotExpr) String() string            { return fmt.Sprintf("NOT %s", e.E) }
func (e *NotExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	d, err := e.E.Evaluate(b)
	if err != nil {
		return arrow.Datum{}, err
	}
	arr, ok := d.ToArray(b.NumRows()).(*arrow.BoolArray)
	if !ok {
		return arrow.Datum{}, errNotBoolean(d.DataType())
	}
	return arrow.ArrayDatum(compute.Not(arr)), nil
}

// IsNullExpr tests for NULL (or NOT NULL).
type IsNullExpr struct {
	E       PhysicalExpr
	Negated bool
}

func (e *IsNullExpr) DataType() *arrow.DataType { return arrow.Boolean }
func (e *IsNullExpr) String() string {
	if e.Negated {
		return fmt.Sprintf("%s IS NOT NULL", e.E)
	}
	return fmt.Sprintf("%s IS NULL", e.E)
}
func (e *IsNullExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	d, err := e.E.Evaluate(b)
	if err != nil {
		return arrow.Datum{}, err
	}
	arr := d.ToArray(b.NumRows())
	if e.Negated {
		return arrow.ArrayDatum(compute.IsNotNullMask(arr)), nil
	}
	return arrow.ArrayDatum(compute.IsNullMask(arr)), nil
}

// NegativeExpr is unary minus.
type NegativeExpr struct{ E PhysicalExpr }

func (e *NegativeExpr) DataType() *arrow.DataType { return e.E.DataType() }
func (e *NegativeExpr) String() string            { return fmt.Sprintf("(- %s)", e.E) }
func (e *NegativeExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	d, err := e.E.Evaluate(b)
	if err != nil {
		return arrow.Datum{}, err
	}
	out, err := compute.Negate(d.ToArray(b.NumRows()))
	return arrow.ArrayDatum(out), err
}

// CastExpr converts to a target type.
type CastExpr struct {
	E  PhysicalExpr
	To *arrow.DataType
}

func (e *CastExpr) DataType() *arrow.DataType { return e.To }
func (e *CastExpr) String() string            { return fmt.Sprintf("CAST(%s AS %s)", e.E, e.To) }
func (e *CastExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	d, err := e.E.Evaluate(b)
	if err != nil {
		return arrow.Datum{}, err
	}
	if !d.IsArray() {
		s, err := compute.CastScalar(d.ScalarValue(), e.To)
		return arrow.ScalarDatum(s), err
	}
	out, err := compute.Cast(d.Array(), e.To)
	return arrow.ArrayDatum(out), err
}
