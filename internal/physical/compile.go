package physical

import (
	"fmt"

	"gofusion/internal/arrow"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
)

// Compiler lowers logical expressions to physical expressions against a
// fixed input schema.
type Compiler struct {
	Schema *logical.Schema
	Reg    *functions.Registry
}

// NewCompiler builds an expression compiler for one input schema.
func NewCompiler(schema *logical.Schema, reg *functions.Registry) *Compiler {
	return &Compiler{Schema: schema, Reg: reg}
}

// coerceBinary inserts casts so both sides of a comparison or arithmetic
// operator share a physical kind.
func (c *Compiler) coerceBinary(op logical.BinOp, l, r PhysicalExpr) (PhysicalExpr, PhysicalExpr, error) {
	lt, rt := l.DataType(), r.DataType()
	// Decimal division computes in floats (checked before the equal-type
	// fast path: two same-scale decimals still must not divide directly).
	if op == logical.OpDiv && (lt.ID == arrow.DECIMAL || rt.ID == arrow.DECIMAL) {
		return &CastExpr{E: l, To: arrow.Float64}, &CastExpr{E: r, To: arrow.Float64}, nil
	}
	if lt.Equal(rt) {
		return l, r, nil
	}
	if op.IsLogical() || lt.IsTemporal() || rt.IsTemporal() {
		return l, r, nil
	}
	if lt.ID == arrow.NULL || rt.ID == arrow.NULL {
		return l, r, nil
	}
	// Decimal multiplication keeps both scales (kernel handles scale math).
	if op == logical.OpMul && lt.ID == arrow.DECIMAL && rt.ID == arrow.DECIMAL {
		return l, r, nil
	}
	common, err := logical.PromoteNumeric(lt, rt)
	if err != nil {
		// Fall back to string comparison when either side is a string.
		if lt.ID == arrow.STRING || rt.ID == arrow.STRING {
			if lt.ID != arrow.STRING {
				l = &CastExpr{E: l, To: arrow.String}
			}
			if rt.ID != arrow.STRING {
				r = &CastExpr{E: r, To: arrow.String}
			}
			return l, r, nil
		}
		return nil, nil, err
	}
	if !lt.Equal(common) {
		l = &CastExpr{E: l, To: common}
	}
	if !rt.Equal(common) {
		r = &CastExpr{E: r, To: common}
	}
	return l, r, nil
}

// Compile lowers a logical expression.
func (c *Compiler) Compile(e logical.Expr) (PhysicalExpr, error) {
	switch x := e.(type) {
	case *logical.Column:
		i, err := c.Schema.IndexOfColumn(x)
		if err != nil {
			return nil, err
		}
		f := c.Schema.Field(i)
		return NewColumnExpr(i, f.Name, f.Type), nil
	case *logical.Literal:
		return &LiteralExpr{Value: x.Value}, nil
	case *logical.Alias:
		return c.Compile(x.E)
	case *logical.BinaryExpr:
		l, err := c.Compile(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.Compile(x.R)
		if err != nil {
			return nil, err
		}
		l, r, err = c.coerceBinary(x.Op, l, r)
		if err != nil {
			return nil, err
		}
		t, err := binaryResultType(x.Op, l.DataType(), r.DataType())
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: x.Op, L: l, R: r, Type: t}, nil
	case *logical.Not:
		inner, err := c.Compile(x.E)
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: inner}, nil
	case *logical.IsNull:
		inner, err := c.Compile(x.E)
		if err != nil {
			return nil, err
		}
		return &IsNullExpr{E: inner, Negated: x.Negated}, nil
	case *logical.Negative:
		inner, err := c.Compile(x.E)
		if err != nil {
			return nil, err
		}
		return &NegativeExpr{E: inner}, nil
	case *logical.Cast:
		inner, err := c.Compile(x.E)
		if err != nil {
			return nil, err
		}
		return &CastExpr{E: inner, To: x.To}, nil
	case *logical.Like:
		inner, err := c.Compile(x.E)
		if err != nil {
			return nil, err
		}
		lit, ok := x.Pattern.(*logical.Literal)
		if !ok || lit.Value.Null {
			return nil, fmt.Errorf("physical: LIKE pattern must be a literal")
		}
		return NewLikeExpr(inner, lit.Value.AsString(), x.Negated, x.CaseInsensitive)
	case *logical.InList:
		inner, err := c.Compile(x.E)
		if err != nil {
			return nil, err
		}
		items := make([]PhysicalExpr, len(x.List))
		for i, item := range x.List {
			pi, err := c.Compile(item)
			if err != nil {
				return nil, err
			}
			// Coerce literal items to the tested expression's type.
			pi2, _, err := c.coerceBinary(logical.OpEq, pi, inner)
			if err != nil {
				return nil, err
			}
			if lit, ok := pi2.(*CastExpr); ok {
				if l, ok2 := lit.E.(*LiteralExpr); ok2 {
					s, err := castScalarStatic(l.Value, lit.To)
					if err == nil {
						pi2 = &LiteralExpr{Value: s}
					}
				}
			}
			items[i] = pi2
		}
		return NewInListExpr(inner, items, x.Negated), nil
	case *logical.Between:
		// Rewrite to e >= low AND e <= high (negated: e < low OR e > high).
		low := &logical.BinaryExpr{Op: logical.OpGtEq, L: x.E, R: x.Low}
		high := &logical.BinaryExpr{Op: logical.OpLtEq, L: x.E, R: x.High}
		var rewritten logical.Expr = &logical.BinaryExpr{Op: logical.OpAnd, L: low, R: high}
		if x.Negated {
			rewritten = &logical.Not{E: rewritten}
		}
		return c.Compile(rewritten)
	case *logical.Case:
		t, err := logical.TypeOf(x, c.Schema, c.Reg)
		if err != nil {
			return nil, err
		}
		out := &CaseExpr{Type: t}
		if x.Operand != nil {
			op, err := c.Compile(x.Operand)
			if err != nil {
				return nil, err
			}
			out.Operand = op
		}
		for _, w := range x.Whens {
			we, err := c.Compile(w.When)
			if err != nil {
				return nil, err
			}
			te, err := c.Compile(w.Then)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, we)
			out.Thens = append(out.Thens, te)
		}
		if x.Else != nil {
			ee, err := c.Compile(x.Else)
			if err != nil {
				return nil, err
			}
			out.Else = ee
		}
		return out, nil
	case *logical.ScalarFunc:
		fn, ok := c.Reg.Scalar(x.Name)
		if !ok {
			return nil, fmt.Errorf("physical: unknown scalar function %q", x.Name)
		}
		args := make([]PhysicalExpr, len(x.Args))
		types := make([]*arrow.DataType, len(x.Args))
		for i, a := range x.Args {
			pa, err := c.Compile(a)
			if err != nil {
				return nil, err
			}
			args[i] = pa
			types[i] = pa.DataType()
		}
		t, err := fn.ReturnType(types)
		if err != nil {
			return nil, err
		}
		return &ScalarFuncExpr{Fn: fn, Args: args, Type: t}, nil
	case *logical.AggFunc:
		return nil, fmt.Errorf("physical: aggregate %q outside aggregation context", x.Name)
	case *logical.WindowFunc:
		return nil, fmt.Errorf("physical: window function %q outside window context", x.Name)
	case *logical.ScalarSubquery, *logical.Exists, *logical.InSubquery:
		return nil, fmt.Errorf("physical: subquery was not decorrelated (unsupported correlation shape)")
	case *logical.Wildcard:
		return nil, fmt.Errorf("physical: unexpanded wildcard")
	}
	return nil, fmt.Errorf("physical: cannot compile %T", e)
}

func binaryResultType(op logical.BinOp, lt, rt *arrow.DataType) (*arrow.DataType, error) {
	switch {
	case op.IsComparison(), op.IsLogical():
		return arrow.Boolean, nil
	case op == logical.OpConcat:
		return arrow.String, nil
	}
	if lt.IsTemporal() || rt.IsTemporal() {
		switch {
		case op == logical.OpSub && lt.ID == rt.ID:
			return arrow.Interval, nil
		case rt.ID == arrow.INTERVAL && lt.ID != arrow.INTERVAL:
			return lt, nil
		case lt.ID == arrow.INTERVAL && rt.ID != arrow.INTERVAL:
			return rt, nil
		default:
			return arrow.Interval, nil
		}
	}
	if lt.ID == arrow.DECIMAL && rt.ID == arrow.DECIMAL && op == logical.OpMul {
		return arrow.Decimal(18, lt.Scale+rt.Scale), nil
	}
	if lt.ID == arrow.NULL {
		return rt, nil
	}
	return lt, nil
}

func castScalarStatic(s arrow.Scalar, to *arrow.DataType) (arrow.Scalar, error) {
	b := arrow.NewBuilder(s.Type)
	b.AppendScalar(s)
	arr := b.Finish()
	out, err := castArray(arr, to)
	if err != nil {
		return arrow.Scalar{}, err
	}
	return out.GetScalar(0), nil
}

// castArray is a thin indirection over compute.Cast kept for testability.
func castArray(a arrow.Array, to *arrow.DataType) (arrow.Array, error) {
	return computeCast(a, to)
}
