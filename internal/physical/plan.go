// Package physical defines the execution-side representation: the
// ExecutionPlan interface (paper Section 5.5), PhysicalExpr trees with
// vectorized evaluation, plan properties (partitioning and orderings), and
// the compiler from logical expressions to physical expressions. Operators
// live in the exec package.
package physical

import (
	"context"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/memory"
)

// Stream is the engine-wide incremental batch iterator.
type Stream = catalog.Stream

// ExecContext carries per-query runtime state into operator execution.
type ExecContext struct {
	// Ctx cancels the query.
	Ctx context.Context
	// BatchRows is the target output batch size.
	BatchRows int
	// ExchangeBuffer is the per-output-channel batch buffer depth of
	// exchange operators (RepartitionExec); 0 derives a default from
	// TargetPartitions. Deeper buffers keep fast producers from stalling
	// on slow consumers at the cost of more in-flight batches.
	ExchangeBuffer int
	// TargetPartitions is the session parallelism, used to size derived
	// defaults (exchange buffers, morsel granularity); 0 means 1.
	TargetPartitions int
	// Pool arbitrates operator memory.
	Pool memory.Pool
	// Disk provides spill files; nil disables spilling.
	Disk *memory.DiskManager
}

// DefaultExchangeBuffer is the minimum exchange channel depth used when
// ExecContext.ExchangeBuffer is unset.
const DefaultExchangeBuffer = 4

// ExchangeBufferDepth returns the effective exchange channel depth. When
// ExchangeBuffer is unset it derives from TargetPartitions: fused
// consumers drain whole chains per pull, so at high parallelism a fixed
// shallow buffer stalls producers that all hash into one hot output.
func (c *ExecContext) ExchangeBufferDepth() int {
	if c.ExchangeBuffer > 0 {
		return c.ExchangeBuffer
	}
	if c.TargetPartitions > DefaultExchangeBuffer {
		return c.TargetPartitions
	}
	return DefaultExchangeBuffer
}

// NewExecContext returns a context with unbounded memory and no spilling.
func NewExecContext() *ExecContext {
	return &ExecContext{Ctx: context.Background(), BatchRows: 8192,
		Pool: memory.NewUnboundedPool()}
}

// SortField names one column of a physical ordering.
type SortField struct {
	Col        int
	Descending bool
	NullsFirst bool
}

// ExecutionPlan is a physical operator. Each plan has a partitioning: the
// planner chooses a partition count, and Execute is called once per
// partition, each returning an independent Stream that runs on its own
// goroutine (paper Figure 4).
type ExecutionPlan interface {
	// Schema returns the output schema.
	Schema() *arrow.Schema
	// Children returns input plans.
	Children() []ExecutionPlan
	// WithChildren rebuilds the node with new inputs.
	WithChildren(children []ExecutionPlan) (ExecutionPlan, error)
	// Partitions returns the output partition count.
	Partitions() int
	// Execute opens output partition p.
	Execute(ctx *ExecContext, partition int) (Stream, error)
	// OutputOrdering describes the per-partition sort order of the
	// output, or nil when unordered.
	OutputOrdering() []SortField
	// String renders a one-line description for EXPLAIN.
	String() string
}

// PhysicalExpr evaluates to a column (or broadcast scalar) against record
// batches whose layout is fixed at plan time.
type PhysicalExpr interface {
	// DataType returns the result type.
	DataType() *arrow.DataType
	// Evaluate computes the expression over a batch.
	Evaluate(batch *arrow.RecordBatch) (arrow.Datum, error)
	// String renders the expression for EXPLAIN.
	String() string
}

// EvalToArray evaluates an expression and materializes the result as an
// array of the batch's row count.
func EvalToArray(e PhysicalExpr, batch *arrow.RecordBatch) (arrow.Array, error) {
	d, err := e.Evaluate(batch)
	if err != nil {
		return nil, err
	}
	return d.ToArray(batch.NumRows()), nil
}

// EvalPredicate evaluates a boolean expression into a filter mask,
// mapping NULL to false per SQL WHERE semantics.
func EvalPredicate(e PhysicalExpr, batch *arrow.RecordBatch) (*arrow.BoolArray, error) {
	arr, err := EvalToArray(e, batch)
	if err != nil {
		return nil, err
	}
	mask, ok := arr.(*arrow.BoolArray)
	if !ok {
		if _, isNull := arr.(*arrow.NullArray); isNull {
			n := batch.NumRows()
			return arrow.NewBool(arrow.NewBitmap(n), nil, n), nil
		}
		return nil, errNotBoolean(arr.DataType())
	}
	return mask, nil
}
