package physical

import (
	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

func computeCast(a arrow.Array, to *arrow.DataType) (arrow.Array, error) {
	return compute.Cast(a, to)
}

// CastScalarTo converts a scalar to the target type (compute.CastScalar).
func CastScalarTo(s arrow.Scalar, to *arrow.DataType) (arrow.Scalar, error) {
	return compute.CastScalar(s, to)
}
