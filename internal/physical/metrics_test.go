package physical

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMetricsSetConcurrent hammers one MetricsSet from many writers while
// a reader snapshots concurrently; run under -race this proves the
// lock-cheap counters are safe to share across partition streams. Totals
// are verified after the writers join.
func TestMetricsSetConcurrent(t *testing.T) {
	m := NewMetricsSet()
	const writers = 8
	const iters = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := m.Snapshot()
			if s.OutputRows < 0 || s.SpilledBytes < 0 {
				panic("negative snapshot value")
			}
			_ = s.String()
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := m.Counter("build_rows")
			own := m.Counter(fmt.Sprintf("writer_%d", w))
			for i := 0; i < iters; i++ {
				m.AddOutput(3)
				m.AddElapsed(time.Microsecond)
				m.AddSpill(10)
				m.UpdateMemPeak(int64(w*iters + i))
				c.Add(2)
				own.Add(1)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	s := m.Snapshot()
	if want := int64(writers * iters * 3); s.OutputRows != want {
		t.Fatalf("output_rows = %d, want %d", s.OutputRows, want)
	}
	if want := int64(writers * iters); s.OutputBatches != want {
		t.Fatalf("output_batches = %d, want %d", s.OutputBatches, want)
	}
	if want := int64(writers * iters); s.SpillCount != want {
		t.Fatalf("spill_count = %d, want %d", s.SpillCount, want)
	}
	if want := int64(writers * iters * 10); s.SpilledBytes != want {
		t.Fatalf("spilled_bytes = %d, want %d", s.SpilledBytes, want)
	}
	if want := int64((writers-1)*iters + iters - 1); s.MemReservedPeak != want {
		t.Fatalf("mem_reserved_peak = %d, want %d", s.MemReservedPeak, want)
	}
	if want := int64(writers * iters * 2); s.ExtraValue("build_rows") != want {
		t.Fatalf("build_rows = %d, want %d", s.ExtraValue("build_rows"), want)
	}
	for w := 0; w < writers; w++ {
		if got := s.ExtraValue(fmt.Sprintf("writer_%d", w)); got != iters {
			t.Fatalf("writer_%d = %d, want %d", w, got, iters)
		}
	}
}

// TestMetricsSnapshotString pins the EXPLAIN ANALYZE annotation format.
func TestMetricsSnapshotString(t *testing.T) {
	m := NewMetricsSet()
	m.AddOutput(100)
	m.AddOutput(50)
	m.AddElapsed(1500 * time.Microsecond)
	s := m.Snapshot().String()
	if !strings.Contains(s, "output_rows=150") ||
		!strings.Contains(s, "output_batches=2") ||
		!strings.Contains(s, "elapsed_compute=1.5ms") {
		t.Fatalf("core counters missing: %q", s)
	}
	if strings.Contains(s, "spill_count") || strings.Contains(s, "mem_reserved_peak") {
		t.Fatalf("zero-valued optional counters must be omitted: %q", s)
	}
	m.AddSpill(4096)
	m.UpdateMemPeak(1 << 20)
	m.Counter("probe_rows").Add(7)
	s = m.Snapshot().String()
	for _, want := range []string{"spill_count=1", "spilled_bytes=4096", "mem_reserved_peak=1048576", "probe_rows=7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in %q", want, s)
		}
	}
}

// TestOpMetricsSharedAcrossCopies: operators copy themselves in
// WithChildren; all copies made after the first Metrics call must share
// one MetricsSet.
func TestOpMetricsSharedAcrossCopies(t *testing.T) {
	var o OpMetrics
	m := o.Metrics()
	cp := o
	if cp.Metrics() != m {
		t.Fatal("copy after first Metrics call must share the set")
	}
	m.AddOutput(1)
	if cp.Metrics().OutputRows() != 1 {
		t.Fatal("copies must observe each other's updates")
	}
}
