package physical

import (
	"fmt"
	"strings"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/functions"
)

// LikeExpr matches a pre-compiled LIKE pattern.
type LikeExpr struct {
	E       PhysicalExpr
	Pattern string
	Matcher *compute.LikeMatcher
	// lowered marks ILIKE handling: inputs are lowercased before matching
	// against the pre-lowercased pattern.
	lowered bool
}

// NewLikeExpr compiles a LIKE pattern at plan time.
func NewLikeExpr(e PhysicalExpr, pattern string, negated, caseInsensitive bool) (*LikeExpr, error) {
	p := pattern
	if caseInsensitive {
		p = strings.ToLower(p)
	}
	m, err := compute.CompileLike(p, negated)
	if err != nil {
		return nil, err
	}
	out := &LikeExpr{E: e, Pattern: pattern, Matcher: m}
	if caseInsensitive {
		out.lowered = true
	}
	return out, nil
}

func (e *LikeExpr) DataType() *arrow.DataType { return arrow.Boolean }
func (e *LikeExpr) String() string            { return fmt.Sprintf("%s LIKE %q", e.E, e.Pattern) }
func (e *LikeExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	d, err := e.E.Evaluate(b)
	if err != nil {
		return arrow.Datum{}, err
	}
	arr := d.ToArray(b.NumRows())
	sa, ok := arr.(*arrow.StringArray)
	if !ok {
		return arrow.Datum{}, fmt.Errorf("physical: LIKE requires string input, got %s", arr.DataType())
	}
	if e.lowered {
		lb := arrow.NewStringBuilder(arrow.String)
		for i := 0; i < sa.Len(); i++ {
			if sa.IsNull(i) {
				lb.AppendNull()
			} else {
				lb.Append(strings.ToLower(sa.Value(i)))
			}
		}
		sa = lb.Finish().(*arrow.StringArray)
	}
	return arrow.ArrayDatum(e.Matcher.Eval(sa)), nil
}

// InListExpr is `expr [NOT] IN (items...)` with a hashed fast path for
// literal lists.
type InListExpr struct {
	E       PhysicalExpr
	List    []PhysicalExpr
	Negated bool

	// Literal fast-path sets, built at plan time when all items are
	// literals of a matching kind.
	strSet      map[string]struct{}
	intSet      map[int64]struct{}
	hasNullItem bool
}

// NewInListExpr builds an IN-list, precomputing literal sets.
func NewInListExpr(e PhysicalExpr, list []PhysicalExpr, negated bool) *InListExpr {
	out := &InListExpr{E: e, List: list, Negated: negated}
	t := e.DataType()
	allLit := true
	for _, item := range list {
		if _, ok := item.(*LiteralExpr); !ok {
			allLit = false
			break
		}
	}
	if allLit {
		switch t.ID {
		case arrow.STRING:
			out.strSet = make(map[string]struct{}, len(list))
			for _, item := range list {
				s := item.(*LiteralExpr).Value
				if s.Null {
					out.hasNullItem = true
					continue
				}
				out.strSet[s.AsString()] = struct{}{}
			}
		case arrow.INT8, arrow.INT16, arrow.INT32, arrow.INT64, arrow.DATE32, arrow.TIMESTAMP, arrow.DECIMAL,
			arrow.UINT8, arrow.UINT16, arrow.UINT32, arrow.UINT64:
			out.intSet = make(map[int64]struct{}, len(list))
			for _, item := range list {
				s := item.(*LiteralExpr).Value
				if s.Null {
					out.hasNullItem = true
					continue
				}
				out.intSet[s.AsInt64()] = struct{}{}
			}
		}
	}
	return out
}

func (e *InListExpr) DataType() *arrow.DataType { return arrow.Boolean }
func (e *InListExpr) String() string {
	op := "IN"
	if e.Negated {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%d items)", e.E, op, len(e.List))
}

func (e *InListExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	d, err := e.E.Evaluate(b)
	if err != nil {
		return arrow.Datum{}, err
	}
	n := b.NumRows()
	arr := d.ToArray(n)

	var mask *arrow.BoolArray
	switch {
	case e.strSet != nil:
		sa := arr.(*arrow.StringArray)
		vals := arrow.NewBitmap(n)
		for i := 0; i < n; i++ {
			if sa.IsValid(i) {
				if _, ok := e.strSet[sa.Value(i)]; ok {
					vals.Set(i)
				}
			}
		}
		mask = arrow.NewBool(vals, arr.Validity().Clone(), n)
	case e.intSet != nil:
		vals := arrow.NewBitmap(n)
		for i := 0; i < n; i++ {
			if arr.IsValid(i) {
				if _, ok := e.intSet[arr.GetScalar(i).AsInt64()]; ok {
					vals.Set(i)
				}
			}
		}
		mask = arrow.NewBool(vals, arr.Validity().Clone(), n)
	default:
		// General case: OR of equality comparisons.
		for _, item := range e.List {
			iv, err := item.Evaluate(b)
			if err != nil {
				return arrow.Datum{}, err
			}
			var m *arrow.BoolArray
			if iv.IsArray() {
				m, err = compute.Compare(compute.Eq, arr, iv.Array())
			} else {
				m, err = compute.CompareScalar(compute.Eq, arr, iv.ScalarValue())
			}
			if err != nil {
				return arrow.Datum{}, err
			}
			if mask == nil {
				mask = m
			} else {
				mask, err = compute.Or(mask, m)
				if err != nil {
					return arrow.Datum{}, err
				}
			}
		}
		if mask == nil {
			mask = arrow.NewBool(arrow.NewBitmap(n), nil, n)
		}
	}
	// SQL semantics: x NOT IN (..) is NULL if no match and the list
	// contains NULL; x IN with NULL item is NULL unless matched.
	if e.hasNullItem {
		vals := mask.ValuesBitmap()
		valid := arrow.NewBitmap(n)
		for i := 0; i < n; i++ {
			if mask.IsValid(i) && vals.Get(i) {
				valid.Set(i)
			}
		}
		mask = arrow.NewBool(vals, valid, n)
	}
	if e.Negated {
		mask = compute.Not(mask)
	}
	return arrow.ArrayDatum(mask), nil
}

// CaseExpr evaluates SQL CASE.
type CaseExpr struct {
	// Operand is nil for searched CASE.
	Operand PhysicalExpr
	Whens   []PhysicalExpr
	Thens   []PhysicalExpr
	Else    PhysicalExpr // may be nil
	Type    *arrow.DataType
}

func (e *CaseExpr) DataType() *arrow.DataType { return e.Type }
func (e *CaseExpr) String() string            { return "CASE ... END" }

func (e *CaseExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	n := b.NumRows()
	// remaining[i] = row i not yet matched by an earlier WHEN.
	remaining := arrow.NewBitmapSet(n)
	// chosen[i] = branch index + 1, or 0 for ELSE/NULL.
	chosen := make([]int32, n)

	var operand arrow.Array
	if e.Operand != nil {
		op, err := EvalToArray(e.Operand, b)
		if err != nil {
			return arrow.Datum{}, err
		}
		operand = op
	}

	for wi, w := range e.Whens {
		var mask *arrow.BoolArray
		if operand != nil {
			wv, err := w.Evaluate(b)
			if err != nil {
				return arrow.Datum{}, err
			}
			if wv.IsArray() {
				m, err := compute.Compare(compute.Eq, operand, wv.Array())
				if err != nil {
					return arrow.Datum{}, err
				}
				mask = m
			} else {
				m, err := compute.CompareScalar(compute.Eq, operand, wv.ScalarValue())
				if err != nil {
					return arrow.Datum{}, err
				}
				mask = m
			}
		} else {
			m, err := EvalPredicate(w, b)
			if err != nil {
				return arrow.Datum{}, err
			}
			mask = m
		}
		for i := 0; i < n; i++ {
			if remaining.Get(i) && mask.IsValid(i) && mask.Value(i) {
				chosen[i] = int32(wi + 1)
				remaining.Clear(i)
			}
		}
	}

	// Evaluate branch values over the full batch, then assemble.
	branchVals := make([]arrow.Array, len(e.Thens))
	for i, t := range e.Thens {
		v, err := EvalToArray(t, b)
		if err != nil {
			return arrow.Datum{}, err
		}
		if !v.DataType().Equal(e.Type) {
			v, err = compute.Cast(v, e.Type)
			if err != nil {
				return arrow.Datum{}, err
			}
		}
		branchVals[i] = v
	}
	var elseVals arrow.Array
	if e.Else != nil {
		v, err := EvalToArray(e.Else, b)
		if err != nil {
			return arrow.Datum{}, err
		}
		if !v.DataType().Equal(e.Type) {
			v, err = compute.Cast(v, e.Type)
			if err != nil {
				return arrow.Datum{}, err
			}
		}
		elseVals = v
	}

	out := arrow.NewBuilder(e.Type)
	out.Reserve(n)
	for i := 0; i < n; i++ {
		switch {
		case chosen[i] > 0:
			out.AppendFrom(branchVals[chosen[i]-1], i)
		case elseVals != nil:
			out.AppendFrom(elseVals, i)
		default:
			out.AppendNull()
		}
	}
	return arrow.ArrayDatum(out.Finish()), nil
}

// ScalarFuncExpr invokes a registered scalar function.
type ScalarFuncExpr struct {
	Fn   *functions.ScalarFunc
	Args []PhysicalExpr
	Type *arrow.DataType
}

func (e *ScalarFuncExpr) DataType() *arrow.DataType { return e.Type }
func (e *ScalarFuncExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Fn.Name, strings.Join(args, ", "))
}

func (e *ScalarFuncExpr) Evaluate(b *arrow.RecordBatch) (arrow.Datum, error) {
	args := make([]arrow.Datum, len(e.Args))
	for i, a := range e.Args {
		d, err := a.Evaluate(b)
		if err != nil {
			return arrow.Datum{}, err
		}
		args[i] = d
	}
	return e.Fn.Eval(args, b.NumRows())
}
