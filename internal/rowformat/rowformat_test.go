package rowformat

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

func TestIntegerOrderPreserved(t *testing.T) {
	vals := []int64{math.MinInt64, -100, -1, 0, 1, 42, math.MaxInt64}
	col := arrow.NewInt64(vals)
	enc, err := NewEncoder([]*arrow.DataType{arrow.Int64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := enc.EncodeRows([]arrow.Array{col}, len(vals))
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("key order broken between %d and %d", vals[i-1], vals[i])
		}
	}
}

func TestFloatTotalOrder(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -1.5, -0.0, 0.0, 1.5, 1e300, math.Inf(1)}
	col := arrow.NewFloat64(vals)
	enc, _ := NewEncoder([]*arrow.DataType{arrow.Float64}, nil)
	keys := enc.EncodeRows([]arrow.Array{col}, len(vals))
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) > 0 {
			t.Fatalf("float key order broken at %d (%v vs %v)", i, vals[i-1], vals[i])
		}
	}
}

func TestStringEscaping(t *testing.T) {
	vals := []string{"", "a", "a\x00", "a\x00b", "ab", "b"}
	col := arrow.NewStringFromSlice(vals)
	enc, _ := NewEncoder([]*arrow.DataType{arrow.String}, nil)
	keys := enc.EncodeRows([]arrow.Array{col}, len(vals))
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("string key order broken between %q and %q", vals[i-1], vals[i])
		}
	}
}

func TestNullPlacement(t *testing.T) {
	b := arrow.NewNumericBuilder[int64](arrow.Int64)
	b.AppendNull()
	b.Append(5)
	col := b.Finish()
	// NULLS LAST (default): null key > value key
	encLast, _ := NewEncoder([]*arrow.DataType{arrow.Int64}, nil)
	keys := encLast.EncodeRows([]arrow.Array{col}, 2)
	if bytes.Compare(keys[0], keys[1]) <= 0 {
		t.Fatal("NULLS LAST: null must sort after values")
	}
	// NULLS FIRST
	encFirst, _ := NewEncoder([]*arrow.DataType{arrow.Int64}, []SortOption{{NullsFirst: true}})
	keys = encFirst.EncodeRows([]arrow.Array{col}, 2)
	if bytes.Compare(keys[0], keys[1]) >= 0 {
		t.Fatal("NULLS FIRST: null must sort before values")
	}
}

func TestDescendingInvertsValues(t *testing.T) {
	col := arrow.NewInt64([]int64{1, 2, 3})
	enc, _ := NewEncoder([]*arrow.DataType{arrow.Int64}, []SortOption{{Descending: true}})
	keys := enc.EncodeRows([]arrow.Array{col}, 3)
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) <= 0 {
			t.Fatal("descending keys must invert order")
		}
	}
}

// randomColumns builds n rows of (int64, string, float64) with nulls.
func randomColumns(rng *rand.Rand, n int) []arrow.Array {
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	fb := arrow.NewNumericBuilder[float64](arrow.Float64)
	letters := []string{"", "a", "ab", "b", "ba", "hello", "z\x00z", "z"}
	for i := 0; i < n; i++ {
		if rng.Intn(6) == 0 {
			ib.AppendNull()
		} else {
			ib.Append(rng.Int63n(20) - 10)
		}
		if rng.Intn(6) == 0 {
			sb.AppendNull()
		} else {
			sb.Append(letters[rng.Intn(len(letters))])
		}
		if rng.Intn(6) == 0 {
			fb.AppendNull()
		} else {
			fb.Append(float64(rng.Intn(40))/4 - 5)
		}
	}
	return []arrow.Array{ib.Finish(), sb.Finish(), fb.Finish()}
}

// Property: bytes.Compare on encoded multi-column keys agrees with the
// generic row comparator for random rows and random sort options.
func TestKeyOrderMatchesComparator(t *testing.T) {
	f := func(seed int64, d1, d2, d3, nf1, nf2, nf3 bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		cols := randomColumns(rng, n)
		opts := []SortOption{{d1, nf1}, {d2, nf2}, {d3, nf3}}
		enc, err := NewEncoder([]*arrow.DataType{arrow.Int64, arrow.String, arrow.Float64}, opts)
		if err != nil {
			return false
		}
		keys := enc.EncodeRows(cols, n)
		sortKeys := []compute.SortKey{
			{Col: 0, Descending: d1, NullsFirst: nf1},
			{Col: 1, Descending: d2, NullsFirst: nf2},
			{Col: 2, Descending: d3, NullsFirst: nf3},
		}
		for trial := 0; trial < 64; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			kc := bytes.Compare(keys[i], keys[j])
			rc := compute.CompareRows(cols, sortKeys, i, j)
			if sign(kc) != sign(rc) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

// Property: decode(encode(rows)) reproduces the original values exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, d1, d2, d3 bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		cols := randomColumns(rng, n)
		opts := []SortOption{{Descending: d1}, {Descending: d2}, {Descending: d3}}
		enc, err := NewEncoder([]*arrow.DataType{arrow.Int64, arrow.String, arrow.Float64}, opts)
		if err != nil {
			return false
		}
		keys := enc.EncodeRows(cols, n)
		decoded, err := enc.DecodeRows(keys)
		if err != nil {
			return false
		}
		for c := range cols {
			for i := 0; i < n; i++ {
				if !cols[c].GetScalar(i).Equal(decoded[c].GetScalar(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderRejectsNestedTypes(t *testing.T) {
	if _, err := NewEncoder([]*arrow.DataType{arrow.ListOf(arrow.Int64)}, nil); err == nil {
		t.Fatal("list keys must be rejected")
	}
}

func TestDecodeTruncatedKey(t *testing.T) {
	enc, _ := NewEncoder([]*arrow.DataType{arrow.Int64}, nil)
	if _, err := enc.DecodeRows([][]byte{{0x01, 0x00}}); err == nil {
		t.Fatal("truncated key must error")
	}
	if _, err := enc.DecodeRows([][]byte{{}}); err == nil {
		t.Fatal("empty key must error")
	}
}

func TestDate32AndDecimalKeys(t *testing.T) {
	types := []*arrow.DataType{arrow.Date32, arrow.Decimal(12, 2)}
	d := arrow.NewBuilder(arrow.Date32)
	d.AppendScalar(arrow.NewScalar(arrow.Date32, int32(100)))
	d.AppendScalar(arrow.NewScalar(arrow.Date32, int32(-100)))
	m := arrow.NewBuilder(arrow.Decimal(12, 2))
	m.AppendScalar(arrow.NewScalar(arrow.Decimal(12, 2), int64(500)))
	m.AppendScalar(arrow.NewScalar(arrow.Decimal(12, 2), int64(-500)))
	cols := []arrow.Array{d.Finish(), m.Finish()}
	enc, err := NewEncoder(types, nil)
	if err != nil {
		t.Fatal(err)
	}
	keys := enc.EncodeRows(cols, 2)
	if bytes.Compare(keys[0], keys[1]) <= 0 {
		t.Fatal("row 0 should sort after row 1")
	}
	dec, err := enc.DecodeRows(keys)
	if err != nil {
		t.Fatal(err)
	}
	if dec[0].(*arrow.Int32Array).Value(1) != -100 || dec[1].(*arrow.Int64Array).Value(0) != 500 {
		t.Fatal("decode wrong")
	}
}
