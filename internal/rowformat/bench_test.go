package rowformat

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
)

func benchCols(n int) []arrow.Array {
	rng := rand.New(rand.NewSource(1))
	ib := arrow.NewNumericBuilder[int64](arrow.Int64)
	sb := arrow.NewStringBuilder(arrow.String)
	for i := 0; i < n; i++ {
		ib.Append(rng.Int63n(10000))
		sb.Append(fmt.Sprintf("key-%05d", rng.Intn(10000)))
	}
	return []arrow.Array{ib.Finish(), sb.Finish()}
}

func BenchmarkEncodeRows(b *testing.B) {
	cols := benchCols(8192)
	enc, _ := NewEncoder([]*arrow.DataType{arrow.Int64, arrow.String}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeRows(cols, 8192)
	}
}

// BenchmarkSortWithRowFormat vs BenchmarkSortGenericComparator is the
// paper's §6.6 motivation in miniature.
func BenchmarkSortWithRowFormat(b *testing.B) {
	cols := benchCols(8192)
	enc, _ := NewEncoder([]*arrow.DataType{arrow.Int64, arrow.String}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		keys := enc.EncodeRows(cols, 8192)
		idx := make([]int32, 8192)
		for j := range idx {
			idx[j] = int32(j)
		}
		sort.SliceStable(idx, func(a, c int) bool {
			return bytes.Compare(keys[idx[a]], keys[idx[c]]) < 0
		})
	}
}

func BenchmarkSortGenericComparator(b *testing.B) {
	cols := benchCols(8192)
	keys := []compute.SortKey{{Col: 0}, {Col: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compute.SortToIndices(cols, keys, 8192)
	}
}
