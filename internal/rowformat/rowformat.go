// Package rowformat implements a normalized, byte-comparable row encoding
// (the paper's "RowFormat", Section 6.6). Multi-column keys encoded with it
// compare correctly with bytes.Compare/memcmp, honoring per-column
// ASC/DESC and NULLS FIRST/LAST options, which makes multi-column sorting
// and grouping cache-friendly: one contiguous comparison instead of N
// column dereferences per row.
//
// Encoding per column:
//   - a marker byte: 0x00 (null, NULLS FIRST), 0x01 (valid), 0xFF (null,
//     NULLS LAST), so nulls order correctly against all values;
//   - the value encoded so ascending byte order equals ascending value
//     order: big-endian sign-flipped integers, totally-ordered IEEE float
//     bits, 0x00-escaped 0x00 0x00-terminated byte strings;
//   - for descending columns, the value bytes (not the marker) are
//     inverted.
package rowformat

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"gofusion/internal/arrow"
)

// SortOption captures SQL ordering options for one key column.
type SortOption struct {
	Descending bool
	NullsFirst bool
}

// Encoder encodes rows of a fixed column layout into comparable keys.
type Encoder struct {
	types []*arrow.DataType
	opts  []SortOption
}

// NewEncoder builds an encoder for the given column types. opts may be nil
// (all ascending, nulls last) or must have one entry per column.
func NewEncoder(types []*arrow.DataType, opts []SortOption) (*Encoder, error) {
	if opts == nil {
		opts = make([]SortOption, len(types))
	}
	if len(opts) != len(types) {
		return nil, fmt.Errorf("rowformat: %d types but %d sort options", len(types), len(opts))
	}
	for _, t := range types {
		switch t.ID {
		case arrow.LIST, arrow.STRUCT, arrow.INTERVAL:
			return nil, fmt.Errorf("rowformat: unsupported key type %s", t)
		}
	}
	return &Encoder{types: types, opts: opts}, nil
}

// Types returns the column types of the encoder.
func (e *Encoder) Types() []*arrow.DataType { return e.types }

func nullMarker(nullsFirst bool) byte {
	if nullsFirst {
		return 0x00
	}
	return 0xFF
}

// AppendRowKey appends the encoded key for row of cols to dst.
func (e *Encoder) AppendRowKey(dst []byte, cols []arrow.Array, row int) []byte {
	for c, a := range cols {
		opt := e.opts[c]
		if a.IsNull(row) {
			dst = append(dst, nullMarker(opt.NullsFirst))
			continue
		}
		dst = append(dst, 0x01)
		start := len(dst)
		dst = appendValue(dst, a, row)
		if opt.Descending {
			for i := start; i < len(dst); i++ {
				dst[i] = ^dst[i]
			}
		}
	}
	return dst
}

// EncodeRows encodes every row of the columns into independent keys.
func (e *Encoder) EncodeRows(cols []arrow.Array, numRows int) [][]byte {
	keys := make([][]byte, numRows)
	// Pre-size one arena per call to reduce allocations: fixed-width columns
	// have known sizes; strings are estimated.
	rowEst := 0
	for c, t := range e.types {
		if w := t.BitWidth(); w > 0 {
			rowEst += 1 + w/8
		} else {
			est := 16
			if sa, ok := cols[c].(*arrow.StringArray); ok && numRows > 0 {
				est = len(sa.Data())/numRows + 3
			}
			rowEst += 1 + est
		}
	}
	arena := make([]byte, 0, rowEst*numRows)
	for i := 0; i < numRows; i++ {
		start := len(arena)
		arena = e.AppendRowKey(arena, cols, i)
		keys[i] = arena[start:len(arena):len(arena)]
	}
	return keys
}

func appendValue(dst []byte, a arrow.Array, row int) []byte {
	switch arr := a.(type) {
	case *arrow.Int8Array:
		return append(dst, uint8(arr.Value(row))^0x80)
	case *arrow.Int16Array:
		return binary.BigEndian.AppendUint16(dst, uint16(arr.Value(row))^0x8000)
	case *arrow.Int32Array:
		return binary.BigEndian.AppendUint32(dst, uint32(arr.Value(row))^0x80000000)
	case *arrow.Int64Array:
		return binary.BigEndian.AppendUint64(dst, uint64(arr.Value(row))^0x8000000000000000)
	case *arrow.Uint8Array:
		return append(dst, arr.Value(row))
	case *arrow.Uint16Array:
		return binary.BigEndian.AppendUint16(dst, arr.Value(row))
	case *arrow.Uint32Array:
		return binary.BigEndian.AppendUint32(dst, arr.Value(row))
	case *arrow.Uint64Array:
		return binary.BigEndian.AppendUint64(dst, arr.Value(row))
	case *arrow.Float32Array:
		return binary.BigEndian.AppendUint32(dst, orderFloat32(arr.Value(row)))
	case *arrow.Float64Array:
		return binary.BigEndian.AppendUint64(dst, orderFloat64(arr.Value(row)))
	case *arrow.BoolArray:
		if arr.Value(row) {
			return append(dst, 1)
		}
		return append(dst, 0)
	case *arrow.StringArray:
		return appendEscapedBytes(dst, arr.ValueBytes(row))
	default:
		panic(fmt.Sprintf("rowformat: cannot encode %s", a.DataType()))
	}
}

// orderFloat64 maps IEEE-754 bits to unsigned ints whose order matches the
// total order of the floats (negatives inverted, positives sign-flipped).
func orderFloat64(f float64) uint64 {
	b := math.Float64bits(f)
	if b&0x8000000000000000 != 0 {
		return ^b
	}
	return b | 0x8000000000000000
}

func orderFloat32(f float32) uint32 {
	b := math.Float32bits(f)
	if b&0x80000000 != 0 {
		return ^b
	}
	return b | 0x80000000
}

// appendEscapedBytes writes an order-preserving, self-terminating byte
// string: 0x00 bytes become 0x00 0xFF and the value ends with 0x00 0x00.
// Because 0x00 0x00 < 0x00 0xFF < any (b, ...) with b > 0, prefixes sort
// before their extensions and embedded zeros order correctly.
func appendEscapedBytes(dst, v []byte) []byte {
	// Bulk-copy runs between NULs; NUL-free strings (the common case) cost
	// one IndexByte scan plus one append.
	for {
		i := bytes.IndexByte(v, 0x00)
		if i < 0 {
			dst = append(dst, v...)
			return append(dst, 0x00, 0x00)
		}
		dst = append(dst, v[:i]...)
		dst = append(dst, 0x00, 0xFF)
		v = v[i+1:]
	}
}

// DecodeRows reconstructs column arrays from encoded keys. This is used to
// materialize group keys at aggregation output time and to verify the
// encoding in tests.
func (e *Encoder) DecodeRows(keys [][]byte) ([]arrow.Array, error) {
	builders := make([]arrow.Builder, len(e.types))
	for i, t := range e.types {
		builders[i] = arrow.NewBuilder(t)
	}
	for _, key := range keys {
		if err := e.decodeKey(builders, key); err != nil {
			return nil, err
		}
	}
	out := make([]arrow.Array, len(builders))
	for i, b := range builders {
		out[i] = b.Finish()
	}
	return out, nil
}

// DecodeArena reconstructs column arrays from keys packed back-to-back in
// one arena; offsets has one entry per key plus a trailing end offset.
// This is the zero-copy dual of an append-only key arena: no per-key slice
// headers are materialized.
func (e *Encoder) DecodeArena(arena []byte, offsets []uint32) ([]arrow.Array, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("rowformat: arena offsets must include the end offset")
	}
	builders := make([]arrow.Builder, len(e.types))
	for i, t := range e.types {
		builders[i] = arrow.NewBuilder(t)
	}
	for k := 0; k+1 < len(offsets); k++ {
		if err := e.decodeKey(builders, arena[offsets[k]:offsets[k+1]]); err != nil {
			return nil, err
		}
	}
	out := make([]arrow.Array, len(builders))
	for i, b := range builders {
		out[i] = b.Finish()
	}
	return out, nil
}

// decodeKey appends one encoded key's column values to the builders.
func (e *Encoder) decodeKey(builders []arrow.Builder, key []byte) error {
	pos := 0
	for c, t := range e.types {
		if pos >= len(key) {
			return fmt.Errorf("rowformat: truncated key")
		}
		marker := key[pos]
		pos++
		if marker != 0x01 {
			builders[c].AppendNull()
			continue
		}
		var err error
		pos, err = decodeValue(builders[c], t, e.opts[c].Descending, key, pos)
		if err != nil {
			return err
		}
	}
	return nil
}

func decodeValue(b arrow.Builder, t *arrow.DataType, desc bool, key []byte, pos int) (int, error) {
	fixed := func(n int) ([]byte, error) {
		if pos+n > len(key) {
			return nil, fmt.Errorf("rowformat: truncated value")
		}
		v := key[pos : pos+n]
		if desc {
			inv := make([]byte, n)
			for i := range v {
				inv[i] = ^v[i]
			}
			v = inv
		}
		return v, nil
	}
	switch t.ID {
	case arrow.INT8:
		v, err := fixed(1)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, int8(v[0]^0x80)))
		return pos + 1, nil
	case arrow.INT16:
		v, err := fixed(2)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, int16(binary.BigEndian.Uint16(v)^0x8000)))
		return pos + 2, nil
	case arrow.INT32, arrow.DATE32:
		v, err := fixed(4)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, int32(binary.BigEndian.Uint32(v)^0x80000000)))
		return pos + 4, nil
	case arrow.INT64, arrow.TIMESTAMP, arrow.DECIMAL:
		v, err := fixed(8)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, int64(binary.BigEndian.Uint64(v)^0x8000000000000000)))
		return pos + 8, nil
	case arrow.UINT8:
		v, err := fixed(1)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, v[0]))
		return pos + 1, nil
	case arrow.UINT16:
		v, err := fixed(2)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, binary.BigEndian.Uint16(v)))
		return pos + 2, nil
	case arrow.UINT32:
		v, err := fixed(4)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, binary.BigEndian.Uint32(v)))
		return pos + 4, nil
	case arrow.UINT64:
		v, err := fixed(8)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, binary.BigEndian.Uint64(v)))
		return pos + 8, nil
	case arrow.FLOAT32:
		v, err := fixed(4)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, unorderFloat32(binary.BigEndian.Uint32(v))))
		return pos + 4, nil
	case arrow.FLOAT64:
		v, err := fixed(8)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.NewScalar(t, unorderFloat64(binary.BigEndian.Uint64(v))))
		return pos + 8, nil
	case arrow.BOOL:
		v, err := fixed(1)
		if err != nil {
			return 0, err
		}
		b.AppendScalar(arrow.BoolScalar(v[0] == 1))
		return pos + 1, nil
	case arrow.STRING, arrow.BINARY:
		var out []byte
		i := pos
		for {
			if i >= len(key) {
				return 0, fmt.Errorf("rowformat: unterminated string")
			}
			c := key[i]
			if desc {
				c = ^c
			}
			if c != 0x00 {
				out = append(out, c)
				i++
				continue
			}
			if i+1 >= len(key) {
				return 0, fmt.Errorf("rowformat: unterminated string escape")
			}
			c2 := key[i+1]
			if desc {
				c2 = ^c2
			}
			i += 2
			if c2 == 0x00 {
				break // terminator
			}
			out = append(out, 0x00)
		}
		if t.ID == arrow.BINARY {
			b.AppendScalar(arrow.NewScalar(t, out))
		} else {
			b.AppendScalar(arrow.NewScalar(t, string(out)))
		}
		return i, nil
	}
	return 0, fmt.Errorf("rowformat: cannot decode %s", t)
}

func unorderFloat64(b uint64) float64 {
	if b&0x8000000000000000 != 0 {
		return math.Float64frombits(b &^ 0x8000000000000000)
	}
	return math.Float64frombits(^b)
}

func unorderFloat32(b uint32) float32 {
	if b&0x80000000 != 0 {
		return math.Float32frombits(b &^ 0x80000000)
	}
	return math.Float32frombits(^b)
}
