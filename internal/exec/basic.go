package exec

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/physical"
)

// FilterExec keeps rows satisfying the predicate.
type FilterExec struct {
	physical.OpMetrics
	Input     physical.ExecutionPlan
	Predicate physical.PhysicalExpr
}

func (e *FilterExec) Schema() *arrow.Schema                { return e.Input.Schema() }
func (e *FilterExec) Children() []physical.ExecutionPlan   { return []physical.ExecutionPlan{e.Input} }
func (e *FilterExec) Partitions() int                      { return e.Input.Partitions() }
func (e *FilterExec) OutputOrdering() []physical.SortField { return e.Input.OutputOrdering() }
func (e *FilterExec) String() string                       { return "FilterExec: " + e.Predicate.String() }
func (e *FilterExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &FilterExec{Input: c, Predicate: e.Predicate}, nil
}

func (e *FilterExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	in, err := e.Input.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	return physical.InstrumentStream(NewFuncStream(e.Schema(), func() (*arrow.RecordBatch, error) {
		for {
			if err := checkCancel(ctx); err != nil {
				return nil, err
			}
			b, err := in.Next()
			if err != nil {
				return nil, err
			}
			mask, err := physical.EvalPredicate(e.Predicate, b)
			if err != nil {
				return nil, err
			}
			out, err := compute.FilterBatch(b, mask)
			if err != nil {
				return nil, err
			}
			if out.NumRows() > 0 {
				return out, nil
			}
		}
	}, in.Close), e.Metrics()), nil
}

// CanPush marks the filter as fusable: one batch in, at most one out.
func (e *FilterExec) CanPush() bool { return true }

// PushInto compiles the filter for a fused loop.
func (e *FilterExec) PushInto(*physical.ExecContext, int) (physical.Pusher, error) {
	return &filterPusher{e: e}, nil
}

type filterPusher struct{ e *FilterExec }

func (p *filterPusher) Push(b *arrow.RecordBatch, emit physical.EmitFn) (bool, error) {
	mask, err := physical.EvalPredicate(p.e.Predicate, b)
	if err != nil {
		return false, err
	}
	out, err := compute.FilterBatch(b, mask)
	if err != nil {
		return false, err
	}
	return false, emit(out)
}

func (p *filterPusher) Flush(physical.EmitFn) error { return nil }
func (p *filterPusher) Close()                      {}

// ProjectionExec computes output expressions.
type ProjectionExec struct {
	physical.OpMetrics
	Input  physical.ExecutionPlan
	Exprs  []physical.PhysicalExpr
	schema *arrow.Schema
}

// NewProjectionExec builds a projection with the given output field names.
func NewProjectionExec(input physical.ExecutionPlan, exprs []physical.PhysicalExpr, names []string, nullables []bool) *ProjectionExec {
	fields := make([]arrow.Field, len(exprs))
	for i, e := range exprs {
		nullable := true
		if nullables != nil {
			nullable = nullables[i]
		}
		fields[i] = arrow.NewField(names[i], e.DataType(), nullable)
	}
	return &ProjectionExec{Input: input, Exprs: exprs, schema: arrow.NewSchema(fields...)}
}

func (e *ProjectionExec) Schema() *arrow.Schema { return e.schema }
func (e *ProjectionExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *ProjectionExec) Partitions() int { return e.Input.Partitions() }
func (e *ProjectionExec) String() string {
	parts := make([]string, len(e.Exprs))
	for i, x := range e.Exprs {
		parts[i] = x.String()
	}
	return "ProjectionExec: " + strings.Join(parts, ", ")
}

// OutputOrdering propagates input ordering through column-only projections.
func (e *ProjectionExec) OutputOrdering() []physical.SortField {
	in := e.Input.OutputOrdering()
	if in == nil {
		return nil
	}
	// Map input column -> output position when projected as a bare column.
	colMap := map[int]int{}
	for i, x := range e.Exprs {
		if c, ok := x.(*physical.ColumnExpr); ok {
			if _, dup := colMap[c.Index]; !dup {
				colMap[c.Index] = i
			}
		}
	}
	var out []physical.SortField
	for _, f := range in {
		oi, ok := colMap[f.Col]
		if !ok {
			break // ordering prefix only survives while columns survive
		}
		out = append(out, physical.SortField{Col: oi, Descending: f.Descending, NullsFirst: f.NullsFirst})
	}
	return out
}

func (e *ProjectionExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &ProjectionExec{Input: c, Exprs: e.Exprs, schema: e.schema}, nil
}

func (e *ProjectionExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	in, err := e.Input.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	return physical.InstrumentStream(NewFuncStream(e.schema, func() (*arrow.RecordBatch, error) {
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		cols := make([]arrow.Array, len(e.Exprs))
		for i, x := range e.Exprs {
			a, err := physical.EvalToArray(x, b)
			if err != nil {
				return nil, err
			}
			cols[i] = a
		}
		return arrow.NewRecordBatchWithRows(e.schema, cols, b.NumRows()), nil
	}, in.Close), e.Metrics()), nil
}

// CanPush marks the projection as fusable.
func (e *ProjectionExec) CanPush() bool { return true }

// PushInto compiles the projection for a fused loop.
func (e *ProjectionExec) PushInto(*physical.ExecContext, int) (physical.Pusher, error) {
	return &projectionPusher{e: e}, nil
}

type projectionPusher struct{ e *ProjectionExec }

func (p *projectionPusher) Push(b *arrow.RecordBatch, emit physical.EmitFn) (bool, error) {
	cols := make([]arrow.Array, len(p.e.Exprs))
	for i, x := range p.e.Exprs {
		a, err := physical.EvalToArray(x, b)
		if err != nil {
			return false, err
		}
		cols[i] = a
	}
	return false, emit(arrow.NewRecordBatchWithRows(p.e.schema, cols, b.NumRows()))
}

func (p *projectionPusher) Flush(physical.EmitFn) error { return nil }
func (p *projectionPusher) Close()                      {}

// GlobalLimitExec applies skip/fetch over a single partition.
type GlobalLimitExec struct {
	physical.OpMetrics
	Input physical.ExecutionPlan
	Skip  int64
	Fetch int64 // -1 = unlimited
}

func (e *GlobalLimitExec) Schema() *arrow.Schema { return e.Input.Schema() }
func (e *GlobalLimitExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *GlobalLimitExec) Partitions() int { return 1 }
func (e *GlobalLimitExec) OutputOrdering() []physical.SortField {
	return e.Input.OutputOrdering()
}
func (e *GlobalLimitExec) String() string {
	return fmt.Sprintf("GlobalLimitExec: skip=%d fetch=%d", e.Skip, e.Fetch)
}
func (e *GlobalLimitExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &GlobalLimitExec{Input: c, Skip: e.Skip, Fetch: e.Fetch}, nil
}

func (e *GlobalLimitExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	if partition != 0 {
		return nil, fmt.Errorf("exec: limit has a single partition")
	}
	if e.Input.Partitions() != 1 {
		return nil, fmt.Errorf("exec: GlobalLimitExec requires single-partition input (planner bug)")
	}
	in, err := e.Input.Execute(ctx, 0)
	if err != nil {
		return nil, err
	}
	skip := e.Skip
	remaining := e.Fetch
	return physical.InstrumentStream(NewFuncStream(e.Schema(), func() (*arrow.RecordBatch, error) {
		for {
			if remaining == 0 {
				return nil, io.EOF
			}
			b, err := in.Next()
			if err != nil {
				return nil, err
			}
			if skip > 0 {
				if int64(b.NumRows()) <= skip {
					skip -= int64(b.NumRows())
					continue
				}
				b = b.Slice(int(skip), b.NumRows()-int(skip))
				skip = 0
			}
			if remaining > 0 && int64(b.NumRows()) > remaining {
				b = b.Slice(0, int(remaining))
			}
			if remaining > 0 {
				remaining -= int64(b.NumRows())
			}
			if b.NumRows() > 0 {
				return b, nil
			}
		}
	}, in.Close), e.Metrics()), nil
}

// CanPush allows fusing the global limit only over single-partition
// input, mirroring the Execute-time invariant.
func (e *GlobalLimitExec) CanPush() bool { return e.Input.Partitions() == 1 }

// PushInto compiles the skip/fetch window for a fused loop; done fires
// once the fetch is satisfied so the driver stops the source early.
func (e *GlobalLimitExec) PushInto(*physical.ExecContext, int) (physical.Pusher, error) {
	return &globalLimitPusher{skip: e.Skip, remaining: e.Fetch}, nil
}

type globalLimitPusher struct {
	skip      int64
	remaining int64 // -1 = unlimited
}

func (p *globalLimitPusher) Push(b *arrow.RecordBatch, emit physical.EmitFn) (bool, error) {
	if p.remaining == 0 {
		return true, nil
	}
	if p.skip > 0 {
		if int64(b.NumRows()) <= p.skip {
			p.skip -= int64(b.NumRows())
			return false, nil
		}
		b = b.Slice(int(p.skip), b.NumRows()-int(p.skip))
		p.skip = 0
	}
	if p.remaining > 0 && int64(b.NumRows()) > p.remaining {
		b = b.Slice(0, int(p.remaining))
	}
	if p.remaining > 0 {
		p.remaining -= int64(b.NumRows())
	}
	if err := emit(b); err != nil {
		return false, err
	}
	return p.remaining == 0, nil
}

func (p *globalLimitPusher) Flush(physical.EmitFn) error { return nil }
func (p *globalLimitPusher) Close()                      {}

// LocalLimitExec truncates each partition independently (a planner aid
// under a global limit).
type LocalLimitExec struct {
	physical.OpMetrics
	Input physical.ExecutionPlan
	Fetch int64
}

func (e *LocalLimitExec) Schema() *arrow.Schema { return e.Input.Schema() }
func (e *LocalLimitExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *LocalLimitExec) Partitions() int { return e.Input.Partitions() }
func (e *LocalLimitExec) OutputOrdering() []physical.SortField {
	return e.Input.OutputOrdering()
}
func (e *LocalLimitExec) String() string { return fmt.Sprintf("LocalLimitExec: fetch=%d", e.Fetch) }
func (e *LocalLimitExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &LocalLimitExec{Input: c, Fetch: e.Fetch}, nil
}

func (e *LocalLimitExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	in, err := e.Input.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	remaining := e.Fetch
	return physical.InstrumentStream(NewFuncStream(e.Schema(), func() (*arrow.RecordBatch, error) {
		if remaining <= 0 {
			return nil, io.EOF
		}
		b, err := in.Next()
		if err != nil {
			return nil, err
		}
		if int64(b.NumRows()) > remaining {
			b = b.Slice(0, int(remaining))
		}
		remaining -= int64(b.NumRows())
		return b, nil
	}, in.Close), e.Metrics()), nil
}

// CanPush marks the per-partition limit as fusable.
func (e *LocalLimitExec) CanPush() bool { return true }

// PushInto compiles the per-partition truncation for a fused loop.
func (e *LocalLimitExec) PushInto(*physical.ExecContext, int) (physical.Pusher, error) {
	return &localLimitPusher{remaining: e.Fetch}, nil
}

type localLimitPusher struct{ remaining int64 }

func (p *localLimitPusher) Push(b *arrow.RecordBatch, emit physical.EmitFn) (bool, error) {
	if p.remaining <= 0 {
		return true, nil
	}
	if int64(b.NumRows()) > p.remaining {
		b = b.Slice(0, int(p.remaining))
	}
	p.remaining -= int64(b.NumRows())
	if err := emit(b); err != nil {
		return false, err
	}
	return p.remaining <= 0, nil
}

func (p *localLimitPusher) Flush(physical.EmitFn) error { return nil }
func (p *localLimitPusher) Close()                      {}

// CoalescePartitionsExec merges all input partitions into one stream,
// reading them concurrently.
type CoalescePartitionsExec struct {
	physical.OpMetrics
	Input physical.ExecutionPlan
}

func (e *CoalescePartitionsExec) Schema() *arrow.Schema { return e.Input.Schema() }
func (e *CoalescePartitionsExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *CoalescePartitionsExec) Partitions() int                      { return 1 }
func (e *CoalescePartitionsExec) OutputOrdering() []physical.SortField { return nil }
func (e *CoalescePartitionsExec) String() string {
	return fmt.Sprintf("CoalescePartitionsExec: inputs=%d", e.Input.Partitions())
}
func (e *CoalescePartitionsExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &CoalescePartitionsExec{Input: c}, nil
}

func (e *CoalescePartitionsExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	if partition != 0 {
		return nil, fmt.Errorf("exec: coalesce has a single partition")
	}
	n := e.Input.Partitions()
	if n == 1 {
		in, err := e.Input.Execute(ctx, 0)
		if err != nil {
			return nil, err
		}
		return physical.InstrumentStream(in, e.Metrics()), nil
	}
	ch := make(chan batchOrErr, n)
	// done is closed when the consumer closes its stream; producers give up
	// instead of blocking forever on a channel nobody drains.
	done := make(chan struct{})
	var stopOnce sync.Once
	ctxDone := ctxDoneChan(ctx)
	send := func(v batchOrErr) bool {
		select {
		case ch <- v:
			return true
		case <-done:
			return false
		case <-ctxDone:
			return false
		}
	}
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s, err := e.Input.Execute(ctx, p)
			if err != nil {
				send(batchOrErr{err: err})
				return
			}
			defer s.Close()
			for {
				b, err := s.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					send(batchOrErr{err: err})
					return
				}
				if !send(batchOrErr{batch: b}) {
					return
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	stop := func() { stopOnce.Do(func() { close(done) }) }
	return physical.InstrumentStream(&chanStream{schema: e.Schema(), ch: ch, stop: stop}, e.Metrics()), nil
}

// UnionExec concatenates the partitions of several same-schema inputs.
type UnionExec struct {
	physical.OpMetrics
	Inputs []physical.ExecutionPlan
	parts  []int // prefix-sum partition mapping
}

// NewUnionExec builds a union whose partition list is the concatenation of
// the inputs' partitions.
func NewUnionExec(inputs []physical.ExecutionPlan) *UnionExec {
	u := &UnionExec{Inputs: inputs}
	for _, in := range inputs {
		u.parts = append(u.parts, in.Partitions())
	}
	return u
}

func (e *UnionExec) Schema() *arrow.Schema              { return e.Inputs[0].Schema() }
func (e *UnionExec) Children() []physical.ExecutionPlan { return e.Inputs }
func (e *UnionExec) Partitions() int {
	n := 0
	for _, p := range e.parts {
		n += p
	}
	return n
}
func (e *UnionExec) OutputOrdering() []physical.SortField { return nil }
func (e *UnionExec) String() string                       { return fmt.Sprintf("UnionExec: inputs=%d", len(e.Inputs)) }
func (e *UnionExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	return NewUnionExec(ch), nil
}

func (e *UnionExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	for i, p := range e.parts {
		if partition < p {
			in, err := e.Inputs[i].Execute(ctx, partition)
			if err != nil {
				return nil, err
			}
			return physical.InstrumentStream(in, e.Metrics()), nil
		}
		partition -= p
	}
	return nil, fmt.Errorf("exec: union partition out of range")
}

// ValuesExec produces a fixed set of batches in one partition.
type ValuesExec struct {
	physical.OpMetrics
	schema  *arrow.Schema
	Batches []*arrow.RecordBatch
}

// NewValuesExec wraps literal batches.
func NewValuesExec(schema *arrow.Schema, batches []*arrow.RecordBatch) *ValuesExec {
	return &ValuesExec{schema: schema, Batches: batches}
}

func (e *ValuesExec) Schema() *arrow.Schema                { return e.schema }
func (e *ValuesExec) Children() []physical.ExecutionPlan   { return nil }
func (e *ValuesExec) Partitions() int                      { return 1 }
func (e *ValuesExec) OutputOrdering() []physical.SortField { return nil }
func (e *ValuesExec) String() string                       { return fmt.Sprintf("ValuesExec: %d batches", len(e.Batches)) }
func (e *ValuesExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	return e, nil
}
func (e *ValuesExec) Execute(_ *physical.ExecContext, partition int) (physical.Stream, error) {
	pos := 0
	return physical.InstrumentStream(NewFuncStream(e.schema, func() (*arrow.RecordBatch, error) {
		if pos >= len(e.Batches) {
			return nil, io.EOF
		}
		b := e.Batches[pos]
		pos++
		return b, nil
	}, nil), e.Metrics()), nil
}

// CoalesceBatchesExec re-buffers small batches (e.g. post-filter) back up
// to the target size so downstream vectorization stays effective.
type CoalesceBatchesExec struct {
	physical.OpMetrics
	Input  physical.ExecutionPlan
	Target int
}

func (e *CoalesceBatchesExec) Schema() *arrow.Schema { return e.Input.Schema() }
func (e *CoalesceBatchesExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Input}
}
func (e *CoalesceBatchesExec) Partitions() int { return e.Input.Partitions() }
func (e *CoalesceBatchesExec) OutputOrdering() []physical.SortField {
	return e.Input.OutputOrdering()
}
func (e *CoalesceBatchesExec) String() string {
	return fmt.Sprintf("CoalesceBatchesExec: target=%d", e.Target)
}
func (e *CoalesceBatchesExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &CoalesceBatchesExec{Input: c, Target: e.Target}, nil
}

func (e *CoalesceBatchesExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	in, err := e.Input.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	var pending []*arrow.RecordBatch
	pendingRows := 0
	eof := false
	return physical.InstrumentStream(NewFuncStream(e.Schema(), func() (*arrow.RecordBatch, error) {
		for !eof && pendingRows < e.Target {
			b, err := in.Next()
			if err == io.EOF {
				eof = true
				break
			}
			if err != nil {
				return nil, err
			}
			if b.NumRows() == 0 {
				continue
			}
			pending = append(pending, b)
			pendingRows += b.NumRows()
		}
		if pendingRows == 0 {
			return nil, io.EOF
		}
		out, err := compute.ConcatBatches(e.Schema(), pending)
		pending, pendingRows = nil, 0
		return out, err
	}, in.Close), e.Metrics()), nil
}

// CanPush marks batch coalescing as fusable.
func (e *CoalesceBatchesExec) CanPush() bool { return true }

// PushInto compiles the re-buffering for a fused loop; Flush emits the
// sub-target remainder.
func (e *CoalesceBatchesExec) PushInto(*physical.ExecContext, int) (physical.Pusher, error) {
	return &coalescePusher{e: e}, nil
}

type coalescePusher struct {
	e       *CoalesceBatchesExec
	pending []*arrow.RecordBatch
	rows    int
}

func (p *coalescePusher) Push(b *arrow.RecordBatch, emit physical.EmitFn) (bool, error) {
	if b.NumRows() > 0 {
		p.pending = append(p.pending, b)
		p.rows += b.NumRows()
	}
	if p.rows < p.e.Target {
		return false, nil
	}
	return false, p.drain(emit)
}

func (p *coalescePusher) drain(emit physical.EmitFn) error {
	if p.rows == 0 {
		return nil
	}
	out, err := compute.ConcatBatches(p.e.Schema(), p.pending)
	p.pending, p.rows = nil, 0
	if err != nil {
		return err
	}
	return emit(out)
}

func (p *coalescePusher) Flush(emit physical.EmitFn) error { return p.drain(emit) }
func (p *coalescePusher) Close()                           {}
