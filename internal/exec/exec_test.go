package exec

import (
	"fmt"
	"sort"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/memory"
	"gofusion/internal/physical"
	"gofusion/internal/testutil"
)

var testReg = functions.NewRegistry()

// memTable builds a single-partition MemTable from columns.
func memTable(t *testing.T, schema *arrow.Schema, cols []arrow.Array) *catalog.MemTable {
	t.Helper()
	batch := arrow.NewRecordBatch(schema, cols)
	mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{{batch}})
	if err != nil {
		t.Fatal(err)
	}
	return mt
}

// salesTable: id, region, amount, qty (with nulls in amount).
func salesTable(t *testing.T) *catalog.MemTable {
	schema := arrow.NewSchema(
		arrow.NewField("id", arrow.Int64, false),
		arrow.NewField("region", arrow.String, true),
		arrow.NewField("amount", arrow.Float64, true),
		arrow.NewField("qty", arrow.Int64, false),
	)
	ids := arrow.NewInt64([]int64{1, 2, 3, 4, 5, 6})
	regions := arrow.NewStringFromSlice([]string{"east", "west", "east", "north", "west", "east"})
	ab := arrow.NewNumericBuilder[float64](arrow.Float64)
	for _, v := range []float64{10, 20, 30, 40, 50} {
		ab.Append(v)
	}
	ab.AppendNull()
	qty := arrow.NewInt64([]int64{1, 2, 3, 4, 5, 6})
	return memTable(t, schema, []arrow.Array{ids, regions, ab.Finish(), qty})
}

// runPlan plans and executes a logical plan with the given parallelism.
func runPlan(t *testing.T, plan logical.Plan, partitions int) *arrow.RecordBatch {
	t.Helper()
	cfg := &PlannerConfig{TargetPartitions: partitions, Reg: testReg, BatchRows: 3}
	pp, err := CreatePhysicalPlan(plan, cfg)
	if err != nil {
		t.Fatalf("planning: %v", err)
	}
	ctx := physical.NewExecContext()
	ctx.BatchRows = 3
	out, err := CollectBatch(ctx, pp)
	if err != nil {
		t.Fatalf("executing: %v", err)
	}
	return out
}

// rowsAsStrings renders each row as a string for order-insensitive
// comparison.
func rowsAsStrings(b *arrow.RecordBatch) []string {
	out := make([]string, b.NumRows())
	for i := 0; i < b.NumRows(); i++ {
		s := ""
		for c := 0; c < b.NumCols(); c++ {
			s += b.Column(c).GetScalar(i).String() + "|"
		}
		out[i] = s
	}
	return out
}

func sameRows(t *testing.T, got *arrow.RecordBatch, want []string, ordered bool) {
	t.Helper()
	gs := rowsAsStrings(got)
	if !ordered {
		sort.Strings(gs)
		sort.Strings(want)
	}
	if len(gs) != len(want) {
		t.Fatalf("got %d rows, want %d:\n%v\nvs\n%v", len(gs), len(want), gs, want)
	}
	for i := range gs {
		if gs[i] != want[i] {
			t.Fatalf("row %d: got %q want %q\nall: %v", i, gs[i], want[i], gs)
		}
	}
}

func TestScanFilterProject(t *testing.T) {
	for _, parts := range []int{1, 4} {
		plan, err := logical.NewBuilder(testReg).
			Scan("sales", salesTable(t)).
			Filter(&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("qty"), R: logical.Lit(2)}).
			Project(logical.Col("id"), logical.Col("region")).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		got := runPlan(t, plan, parts)
		sameRows(t, got, []string{`3|"east"|`, `4|"north"|`, `5|"west"|`, `6|"east"|`}, false)
	}
}

func TestProjectionExpressions(t *testing.T) {
	plan, err := logical.NewBuilder(testReg).
		Scan("sales", salesTable(t)).
		Filter(&logical.BinaryExpr{Op: logical.OpEq, L: logical.Col("id"), R: logical.Lit(2)}).
		Project(
			&logical.Alias{E: &logical.BinaryExpr{Op: logical.OpMul, L: logical.Col("qty"), R: logical.Lit(10)}, Name: "q10"},
			&logical.Alias{E: &logical.ScalarFunc{Name: "upper", Args: []logical.Expr{logical.Col("region")}}, Name: "R"},
		).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	sameRows(t, got, []string{`20|"WEST"|`}, true)
}

func TestAggregateGrouped(t *testing.T) {
	for _, parts := range []int{1, 4} {
		plan, err := logical.NewBuilder(testReg).
			Scan("sales", salesTable(t)).
			Aggregate(
				[]logical.Expr{logical.Col("region")},
				[]logical.Expr{
					&logical.AggFunc{Name: "count", Args: nil},
					&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("qty")}},
					&logical.AggFunc{Name: "min", Args: []logical.Expr{logical.Col("amount")}},
				},
			).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		got := runPlan(t, plan, parts)
		sameRows(t, got, []string{
			`"east"|3|10|10|`,
			`"west"|2|7|20|`,
			`"north"|1|4|40|`,
		}, false)
	}
}

func TestAggregateUngrouped(t *testing.T) {
	for _, parts := range []int{1, 3} {
		plan, err := logical.NewBuilder(testReg).
			Scan("sales", salesTable(t)).
			Aggregate(nil, []logical.Expr{
				&logical.AggFunc{Name: "count", Args: []logical.Expr{logical.Col("amount")}},
				&logical.AggFunc{Name: "avg", Args: []logical.Expr{logical.Col("qty")}},
				&logical.AggFunc{Name: "max", Args: []logical.Expr{logical.Col("region")}},
			}).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		got := runPlan(t, plan, parts)
		sameRows(t, got, []string{`5|3.5|"west"|`}, true)
	}
}

func TestAggregateCountDistinctAndFilter(t *testing.T) {
	for _, parts := range []int{1, 2} {
		plan, err := logical.NewBuilder(testReg).
			Scan("sales", salesTable(t)).
			Aggregate(nil, []logical.Expr{
				&logical.AggFunc{Name: "count", Args: []logical.Expr{logical.Col("region")}, Distinct: true},
				&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("qty")},
					Filter: &logical.BinaryExpr{Op: logical.OpEq, L: logical.Col("region"), R: logical.Lit("east")}},
			}).
			Build()
		if err != nil {
			t.Fatal(err)
		}
		got := runPlan(t, plan, parts)
		sameRows(t, got, []string{`3|10|`}, true)
	}
}

func TestSortAndTopK(t *testing.T) {
	base := func() *logical.Builder {
		return logical.NewBuilder(testReg).Scan("sales", salesTable(t))
	}
	// Full sort descending by amount, nulls first (SQL DESC default).
	plan, err := base().Sort(logical.SortDesc(logical.Col("amount"))).Project(logical.Col("id")).Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	sameRows(t, got, []string{"6|", "5|", "4|", "3|", "2|", "1|"}, true)

	// TopK: sort + fetch
	sorted := &logical.Sort{Input: plan.(*logical.Projection).Input, Keys: []logical.SortExpr{logical.SortAsc(logical.Col("amount"))}, Fetch: 2}
	proj, err := logical.NewProjection(sorted, []logical.Expr{logical.Col("id")}, testReg)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 4} {
		got = runPlan(t, proj, parts)
		sameRows(t, got, []string{"1|", "2|"}, true)
	}
}

func TestLimitOffset(t *testing.T) {
	plan, err := logical.NewBuilder(testReg).
		Scan("sales", salesTable(t)).
		Sort(logical.SortAsc(logical.Col("id"))).
		Limit(2, 3).
		Project(logical.Col("id")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	sameRows(t, got, []string{"3|", "4|", "5|"}, true)
}

func usersAndOrders(t *testing.T) (*catalog.MemTable, *catalog.MemTable) {
	users := memTable(t,
		arrow.NewSchema(arrow.NewField("uid", arrow.Int64, false), arrow.NewField("name", arrow.String, false)),
		[]arrow.Array{arrow.NewInt64([]int64{1, 2, 3}), arrow.NewStringFromSlice([]string{"ann", "bob", "cat"})})
	ob := arrow.NewNumericBuilder[int64](arrow.Int64)
	ob.Append(1)
	ob.Append(1)
	ob.Append(3)
	ob.AppendNull()
	orders := memTable(t,
		arrow.NewSchema(arrow.NewField("ouid", arrow.Int64, true), arrow.NewField("total", arrow.Int64, false)),
		[]arrow.Array{ob.Finish(), arrow.NewInt64([]int64{100, 150, 300, 400})})
	return users, orders
}

func joinPlan(t *testing.T, jt logical.JoinType) logical.Plan {
	t.Helper()
	users, orders := usersAndOrders(t)
	right, err := logical.NewBuilder(testReg).Scan("orders", orders).Build()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := logical.NewBuilder(testReg).
		Scan("users", users).
		Join(right, jt, []logical.EquiPair{{L: logical.Col("uid"), R: logical.Col("ouid")}}, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestHashJoinTypes(t *testing.T) {
	cases := []struct {
		jt   logical.JoinType
		want []string
	}{
		{logical.InnerJoin, []string{`1|"ann"|1|100|`, `1|"ann"|1|150|`, `3|"cat"|3|300|`}},
		{logical.LeftJoin, []string{`1|"ann"|1|100|`, `1|"ann"|1|150|`, `3|"cat"|3|300|`, `2|"bob"|NULL|NULL|`}},
		{logical.RightJoin, []string{`1|"ann"|1|100|`, `1|"ann"|1|150|`, `3|"cat"|3|300|`, `NULL|NULL|NULL|400|`}},
		{logical.FullJoin, []string{`1|"ann"|1|100|`, `1|"ann"|1|150|`, `3|"cat"|3|300|`, `2|"bob"|NULL|NULL|`, `NULL|NULL|NULL|400|`}},
		{logical.LeftSemiJoin, []string{`1|"ann"|`, `3|"cat"|`}},
		{logical.LeftAntiJoin, []string{`2|"bob"|`}},
		{logical.RightSemiJoin, []string{`1|100|`, `1|150|`, `3|300|`}},
		{logical.RightAntiJoin, []string{`NULL|400|`}},
	}
	for _, c := range cases {
		for _, parts := range []int{1, 3} {
			got := runPlan(t, joinPlan(t, c.jt), parts)
			if !sameRowsOK(got, c.want) {
				t.Fatalf("join %s parts=%d: got %v want %v", c.jt, parts, rowsAsStrings(got), c.want)
			}
		}
	}
}

func sameRowsOK(got *arrow.RecordBatch, want []string) bool {
	gs := rowsAsStrings(got)
	ws := append([]string(nil), want...)
	sort.Strings(gs)
	sort.Strings(ws)
	if len(gs) != len(ws) {
		return false
	}
	for i := range gs {
		if gs[i] != ws[i] {
			return false
		}
	}
	return true
}

func TestJoinWithResidualFilter(t *testing.T) {
	users, orders := usersAndOrders(t)
	right, _ := logical.NewBuilder(testReg).Scan("orders", orders).Build()
	plan, err := logical.NewBuilder(testReg).
		Scan("users", users).
		Join(right, logical.InnerJoin,
			[]logical.EquiPair{{L: logical.Col("uid"), R: logical.Col("ouid")}},
			&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("total"), R: logical.Lit(120)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	sameRows(t, got, []string{`1|"ann"|1|150|`, `3|"cat"|3|300|`}, false)
}

func TestNestedLoopInequalityJoin(t *testing.T) {
	users, orders := usersAndOrders(t)
	right, _ := logical.NewBuilder(testReg).Scan("orders", orders).Build()
	plan, err := logical.NewBuilder(testReg).
		Scan("users", users).
		Join(right, logical.InnerJoin, nil,
			&logical.BinaryExpr{Op: logical.OpLt,
				L: &logical.BinaryExpr{Op: logical.OpMul, L: logical.Col("uid"), R: logical.Lit(100)},
				R: logical.Col("total")}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	// uid*100 < total: (1,150),(1,300),(1,400),(2,300),(2,400),(3,400)
	if got.NumRows() != 6 {
		t.Fatalf("got %d rows: %v", got.NumRows(), rowsAsStrings(got))
	}
}

func TestCrossJoin(t *testing.T) {
	users, orders := usersAndOrders(t)
	right, _ := logical.NewBuilder(testReg).Scan("orders", orders).Build()
	plan, err := logical.NewBuilder(testReg).
		Scan("users", users).
		CrossJoin(right).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	if got.NumRows() != 12 {
		t.Fatalf("cross join rows = %d", got.NumRows())
	}
}

func TestUnionAndDistinct(t *testing.T) {
	users, _ := usersAndOrders(t)
	a, _ := logical.NewBuilder(testReg).Scan("users", users).Project(logical.Col("uid")).Build()
	b, _ := logical.NewBuilder(testReg).Scan("users", users).Project(logical.Col("uid")).Build()
	plan, err := logical.FromPlan(a, testReg).Union(b, true).Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	if got.NumRows() != 6 {
		t.Fatalf("union all rows = %d", got.NumRows())
	}
	planD, err := logical.FromPlan(a, testReg).Union(b, true).Distinct().Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 2} {
		got = runPlan(t, planD, parts)
		sameRows(t, got, []string{"1|", "2|", "3|"}, false)
	}
}

func TestWindowFunctions(t *testing.T) {
	plan, err := logical.NewBuilder(testReg).
		Scan("sales", salesTable(t)).
		Window(
			&logical.Alias{E: &logical.WindowFunc{
				Name:        "row_number",
				PartitionBy: []logical.Expr{logical.Col("region")},
				OrderBy:     []logical.SortExpr{logical.SortAsc(logical.Col("qty"))},
				Frame:       logical.DefaultFrame(),
			}, Name: "rn"},
			&logical.Alias{E: &logical.WindowFunc{
				Name:    "sum",
				Args:    []logical.Expr{logical.Col("qty")},
				OrderBy: []logical.SortExpr{logical.SortAsc(logical.Col("id"))},
				Frame:   logical.DefaultFrame(),
			}, Name: "running"},
		).
		Project(logical.Col("id"), logical.Col("rn"), logical.Col("running")).
		Sort(logical.SortAsc(logical.Col("id"))).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	want := []string{
		"1|1|1|",  // east, first by qty; running sum 1
		"2|1|3|",  // west first
		"3|2|6|",  // east second
		"4|1|10|", // north first
		"5|2|15|", // west second
		"6|3|21|", // east third
	}
	sameRows(t, got, want, true)
}

func TestWindowLagLeadRank(t *testing.T) {
	plan, err := logical.NewBuilder(testReg).
		Scan("sales", salesTable(t)).
		Window(
			&logical.Alias{E: &logical.WindowFunc{
				Name:    "lag",
				Args:    []logical.Expr{logical.Col("id")},
				OrderBy: []logical.SortExpr{logical.SortAsc(logical.Col("id"))},
				Frame:   logical.DefaultFrame(),
			}, Name: "prev"},
			&logical.Alias{E: &logical.WindowFunc{
				Name:    "rank",
				OrderBy: []logical.SortExpr{logical.SortAsc(logical.Col("region"))},
				Frame:   logical.DefaultFrame(),
			}, Name: "rk"},
		).
		Project(logical.Col("id"), logical.Col("prev"), logical.Col("rk")).
		Sort(logical.SortAsc(logical.Col("id"))).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	// region order: east(1,3,6), north(4), west(2,5)
	want := []string{
		"1|NULL|1|",
		"2|1|5|",
		"3|2|1|",
		"4|3|4|",
		"5|4|5|",
		"6|5|1|",
	}
	sameRows(t, got, want, true)
}

func bigTable(t *testing.T, n int) *catalog.MemTable {
	schema := arrow.NewSchema(
		arrow.NewField("k", arrow.Int64, false),
		arrow.NewField("v", arrow.Int64, false),
	)
	kb := arrow.NewNumericBuilder[int64](arrow.Int64)
	vb := arrow.NewNumericBuilder[int64](arrow.Int64)
	for i := 0; i < n; i++ {
		kb.Append(int64(i % 97))
		vb.Append(int64(i))
	}
	return memTable(t, schema, []arrow.Array{kb.Finish(), vb.Finish()})
}

func TestSortSpillEqualsInMemory(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	table := bigTable(t, 5000)
	plan, err := logical.NewBuilder(testReg).
		Scan("big", table).
		Sort(logical.SortAsc(logical.Col("k")), logical.SortDesc(logical.Col("v"))).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := &PlannerConfig{TargetPartitions: 1, Reg: testReg}
	pp, err := CreatePhysicalPlan(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}

	run := func(ctx *physical.ExecContext) *arrow.RecordBatch {
		out, err := CollectBatch(ctx, pp)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(physical.NewExecContext())

	dm := memory.NewDiskManager(t.TempDir(), true)
	defer dm.Close()
	ctx := physical.NewExecContext()
	ctx.Pool = memory.NewGreedyPool(40 * 1024) // force spills
	ctx.Disk = dm
	got := run(ctx)

	if got.NumRows() != want.NumRows() {
		t.Fatalf("spill rows %d != %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < got.NumRows(); i += 37 {
		for c := 0; c < got.NumCols(); c++ {
			if !got.Column(c).GetScalar(i).Equal(want.Column(c).GetScalar(i)) {
				t.Fatalf("spill mismatch at row %d", i)
			}
		}
	}
}

func TestAggregateSpillEqualsInMemory(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	table := bigTable(t, 5000)
	plan, err := logical.NewBuilder(testReg).
		Scan("big", table).
		Aggregate([]logical.Expr{logical.Col("k")},
			[]logical.Expr{&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("v")}},
				&logical.AggFunc{Name: "count"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := &PlannerConfig{TargetPartitions: 1, Reg: testReg}
	pp, err := CreatePhysicalPlan(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := CollectBatch(physical.NewExecContext(), pp)
	if err != nil {
		t.Fatal(err)
	}

	dm := memory.NewDiskManager(t.TempDir(), true)
	defer dm.Close()
	ctx := physical.NewExecContext()
	ctx.Pool = memory.NewGreedyPool(2 * 1024)
	ctx.Disk = dm
	got, err := CollectBatch(ctx, pp)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRowsOK(got, rowsAsStrings(want)) {
		t.Fatal("aggregate spill result differs")
	}
}

func TestPartitionedEqualsSinglePartition(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	// Property-style: every plan shape must produce identical results at
	// parallelism 1 and 4.
	table := bigTable(t, 2000)
	shapes := []func() (logical.Plan, error){
		func() (logical.Plan, error) {
			return logical.NewBuilder(testReg).Scan("big", table).
				Filter(&logical.BinaryExpr{Op: logical.OpLt, L: logical.Col("v"), R: logical.Lit(500)}).
				Aggregate([]logical.Expr{logical.Col("k")},
					[]logical.Expr{&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("v")}}}).
				Build()
		},
		func() (logical.Plan, error) {
			return logical.NewBuilder(testReg).Scan("big", table).
				Sort(logical.SortDesc(logical.Col("v"))).
				Limit(0, 10).
				Build()
		},
	}
	for si, shape := range shapes {
		p1, err := shape()
		if err != nil {
			t.Fatal(err)
		}
		r1 := runPlan(t, p1, 1)
		r4 := runPlan(t, p1, 4)
		if !sameRowsOK(r4, rowsAsStrings(r1)) {
			t.Fatalf("shape %d: partitioned result differs", si)
		}
	}
}

func TestMergeJoinDirect(t *testing.T) {
	// Build two sorted MemTables with declared sort order and verify the
	// planner selects SortMergeJoinExec and produces correct results.
	mkSorted := func(keyName, valName string, keys []int64, vals []string) *catalog.MemTable {
		schema := arrow.NewSchema(
			arrow.NewField(keyName, arrow.Int64, false),
			arrow.NewField(valName, arrow.String, false),
		)
		mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{{
			arrow.NewRecordBatch(schema, []arrow.Array{arrow.NewInt64(keys), arrow.NewStringFromSlice(vals)}),
		}})
		if err != nil {
			t.Fatal(err)
		}
		return mt.WithSortOrder([]catalog.OrderedCol{{Name: keyName}})
	}
	left := mkSorted("lk", "lv", []int64{1, 2, 2, 4}, []string{"a", "b", "c", "d"})
	right := mkSorted("rk", "rv", []int64{2, 3, 4}, []string{"x", "y", "z"})
	rightPlan, _ := logical.NewBuilder(testReg).Scan("r", right).Build()
	plan, err := logical.NewBuilder(testReg).
		Scan("l", left).
		Join(rightPlan, logical.InnerJoin, []logical.EquiPair{{L: logical.Col("lk"), R: logical.Col("rk")}}, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := &PlannerConfig{TargetPartitions: 1, Reg: testReg}
	pp, err := CreatePhysicalPlan(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	var walk func(p physical.ExecutionPlan)
	walk = func(p physical.ExecutionPlan) {
		if _, ok := p.(*SortMergeJoinExec); ok {
			found = true
		}
		for _, c := range p.Children() {
			walk(c)
		}
	}
	walk(pp)
	if !found {
		t.Fatalf("expected merge join in plan:\n%s", ExplainPhysical(pp))
	}
	got, err := CollectBatch(physical.NewExecContext(), pp)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, []string{`2|"b"|2|"x"|`, `2|"c"|2|"x"|`, `4|"d"|4|"z"|`}, false)
}

func TestSymmetricHashJoinDirect(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	users, orders := usersAndOrders(t)
	uScan, _ := users.Scan(catalog.ScanRequest{Partitions: 1, Limit: -1})
	oScan, _ := orders.Scan(catalog.ScanRequest{Partitions: 1, Limit: -1})
	l := NewTableScanExec("users", uScan)
	r := NewTableScanExec("orders", oScan)
	j := NewSymmetricHashJoinExec(l, r, []JoinOn{{
		L: physical.NewColumnExpr(0, "uid", arrow.Int64),
		R: physical.NewColumnExpr(0, "ouid", arrow.Int64),
	}})
	got, err := CollectBatch(physical.NewExecContext(), j)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, []string{`1|"ann"|1|100|`, `1|"ann"|1|150|`, `3|"cat"|3|300|`}, false)
}

func TestStreamingAggregateOrderedInput(t *testing.T) {
	// Sorted input with declared order must take the streaming path and
	// produce correct grouped results.
	schema := arrow.NewSchema(
		arrow.NewField("g", arrow.Int64, false),
		arrow.NewField("v", arrow.Int64, false),
	)
	mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{{
		arrow.NewRecordBatch(schema, []arrow.Array{
			arrow.NewInt64([]int64{1, 1, 2, 2, 2, 3}),
			arrow.NewInt64([]int64{10, 20, 30, 40, 50, 60}),
		}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	mt.WithSortOrder([]catalog.OrderedCol{{Name: "g"}})
	plan, err := logical.NewBuilder(testReg).
		Scan("t", mt).
		Aggregate([]logical.Expr{logical.Col("g")},
			[]logical.Expr{&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("v")}}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := &PlannerConfig{TargetPartitions: 1, Reg: testReg, BatchRows: 2}
	pp, err := CreatePhysicalPlan(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	agg, ok := pp.(*HashAggregateExec)
	if !ok || !agg.InputOrdered {
		t.Fatalf("expected ordered aggregation:\n%s", ExplainPhysical(pp))
	}
	ctx := physical.NewExecContext()
	ctx.BatchRows = 2
	got, err := CollectBatch(ctx, pp)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, got, []string{"1|30|", "2|120|", "3|60|"}, false)
}

func TestValuesAndEmptyRelation(t *testing.T) {
	plan, err := logical.NewBuilder(testReg).
		ValuesRows([][]logical.Expr{
			{logical.Lit(1), logical.Lit("a")},
			{logical.Lit(2), logical.Lit("b")},
		}).Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	sameRows(t, got, []string{`1|"a"|`, `2|"b"|`}, true)
}

func TestExplainPhysical(t *testing.T) {
	plan, _ := logical.NewBuilder(testReg).
		Scan("sales", salesTable(t)).
		Filter(&logical.BinaryExpr{Op: logical.OpGt, L: logical.Col("qty"), R: logical.Lit(2)}).
		Build()
	cfg := &PlannerConfig{TargetPartitions: 2, Reg: testReg}
	pp, err := CreatePhysicalPlan(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := ExplainPhysical(pp)
	if s == "" {
		t.Fatal("empty explain")
	}
	fmt.Println(s)
}
