package exec

import (
	"fmt"

	"gofusion/internal/logical"
	"gofusion/internal/physical"
)

// IsUnbounded reports whether a physical plan's output is unbounded: some
// tailing scan below it can block awaiting new data forever, and no
// bounding operator (a limit with a fetch) cuts the subtree off. Operators
// that merely transform batches propagate their children's property.
func IsUnbounded(p physical.ExecutionPlan) bool {
	switch n := p.(type) {
	case *TableScanExec:
		return n.Unbounded()
	case *GlobalLimitExec:
		if n.Fetch >= 0 {
			return false
		}
	case *LocalLimitExec:
		return false
	case *WatermarkAggExec:
		// Watermark aggregation emits incrementally but only terminates
		// when its input does.
		return IsUnbounded(n.Input)
	}
	for _, c := range p.Children() {
		if IsUnbounded(c) {
			return true
		}
	}
	return false
}

// breakerErr renders the plan-time rejection for a full-pipeline breaker
// placed over an unbounded input.
func breakerErr(op, why string) error {
	return fmt.Errorf("exec: %s cannot run over an unbounded input (%s); seal the source, bound the query with LIMIT, or restructure it for streaming execution", op, why)
}

// validateStreamingPlan is the planner backstop for unbounded inputs: any
// full-pipeline breaker that must consume its whole input before emitting
// (sorts, merges, windows, non-watermark aggregation, build-side joins)
// fails here at plan time with a clear error instead of hanging at
// runtime. The planner's operator-selection paths produce friendlier
// errors first; this catches plans assembled through other entry points
// and anything the physical optimizer rewrites.
func validateStreamingPlan(p physical.ExecutionPlan) error {
	for _, c := range p.Children() {
		if err := validateStreamingPlan(c); err != nil {
			return err
		}
	}
	switch n := p.(type) {
	case *ExternalSortExec:
		if IsUnbounded(n.Input) {
			return breakerErr("ExternalSortExec", "sorting buffers the entire input")
		}
	case *TopKExec:
		if IsUnbounded(n.Input) {
			return breakerErr("TopKExec", "top-k only emits after the input ends")
		}
	case *SortPreservingMergeExec:
		if IsUnbounded(n.Input) {
			return breakerErr("SortPreservingMergeExec", "merging sorted runs requires bounded inputs")
		}
	case *WindowExec:
		if IsUnbounded(n.Input) {
			return breakerErr("WindowExec", "window functions buffer their partitions")
		}
	case *SortMergeJoinExec:
		if IsUnbounded(n.Left) || IsUnbounded(n.Right) {
			return breakerErr("SortMergeJoinExec", "merge join requires sorted bounded inputs")
		}
	case *HashAggregateExec:
		if IsUnbounded(n.Input) {
			return breakerErr("HashAggregateExec",
				"aggregation only finalizes at end of input; group by the source's watermark column for streaming emit")
		}
	case *HashJoinExec:
		if IsUnbounded(n.Left) {
			return breakerErr("HashJoinExec", "the build side must be read to completion")
		}
		if IsUnbounded(n.Right) && !probeStreamableJoin(n.Type) {
			return breakerErr("HashJoinExec",
				fmt.Sprintf("%s join emits build-side tails only after the probe side ends", n.Type))
		}
	case *NestedLoopJoinExec:
		if IsUnbounded(n.Left) {
			return breakerErr("NestedLoopJoinExec", "the left side is buffered in full")
		}
		if IsUnbounded(n.Right) && !probeStreamableJoin(n.Type) {
			return breakerErr("NestedLoopJoinExec",
				fmt.Sprintf("%s join emits left-side tails only after the right side ends", n.Type))
		}
	}
	return nil
}

// probeStreamableJoin reports join types whose output over a streaming
// probe (right) side is decidable per probe batch once the build side is
// complete — no tail pass over unmatched build rows is ever owed to the
// probe side's end.
func probeStreamableJoin(jt logical.JoinType) bool {
	switch jt {
	case logical.InnerJoin, logical.CrossJoin, logical.RightJoin,
		logical.RightSemiJoin, logical.RightAntiJoin:
		return true
	}
	return false
}

// watermarkColumn traces the source's declared event-time column through
// column-preserving operators to an output-schema index, returning -1
// when the plan has no (still-visible) watermark column. It runs before
// pipeline fusion, so fused segments never appear.
func watermarkColumn(p physical.ExecutionPlan) int {
	switch n := p.(type) {
	case *TableScanExec:
		return n.WatermarkIndex()
	case *ProjectionExec:
		w := watermarkColumn(n.Input)
		if w < 0 {
			return -1
		}
		for i, e := range n.Exprs {
			if c, ok := e.(*physical.ColumnExpr); ok && c.Index == w {
				return i
			}
		}
		return -1
	case *FilterExec:
		return watermarkColumn(n.Input)
	case *CoalesceBatchesExec:
		return watermarkColumn(n.Input)
	case *CoalescePartitionsExec:
		return watermarkColumn(n.Input)
	case *LocalLimitExec:
		return watermarkColumn(n.Input)
	case *GlobalLimitExec:
		return watermarkColumn(n.Input)
	case *RepartitionExec:
		return watermarkColumn(n.Input)
	}
	return -1
}
