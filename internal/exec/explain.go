package exec

import (
	"strings"

	"gofusion/internal/physical"
)

// ExplainPhysical renders an indented physical plan tree.
func ExplainPhysical(p physical.ExecutionPlan) string {
	var sb strings.Builder
	var walk func(physical.ExecutionPlan, int)
	walk = func(n physical.ExecutionPlan, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return sb.String()
}
