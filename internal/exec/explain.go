package exec

import (
	"strings"

	"gofusion/internal/physical"
)

// ExplainPhysical renders an indented physical plan tree.
func ExplainPhysical(p physical.ExecutionPlan) string {
	var sb strings.Builder
	var walk func(physical.ExecutionPlan, int)
	walk = func(n physical.ExecutionPlan, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return sb.String()
}

// ExplainAnalyze renders the physical plan tree with per-operator runtime
// metrics appended to each node (paper Section 4, EXPLAIN ANALYZE). It
// should be called after the plan has been executed to completion;
// operators that were never executed report zero metrics.
func ExplainAnalyze(p physical.ExecutionPlan) string {
	var sb strings.Builder
	var walk func(physical.ExecutionPlan, int)
	walk = func(n physical.ExecutionPlan, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.String())
		if mp, ok := n.(physical.MetricsProvider); ok {
			sb.WriteString(", metrics=[")
			sb.WriteString(mp.Metrics().Snapshot().String())
			sb.WriteString("]")
		}
		sb.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return sb.String()
}
