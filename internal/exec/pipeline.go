package exec

import (
	"fmt"
	"io"
	"sync"
	"time"

	"gofusion/internal/arrow"
	"gofusion/internal/physical"
)

// PipelineExec runs a fused pipeline segment: a maximal chain of
// push-capable operators compiled into one batch-at-a-time loop per
// worker, with no per-operator stream frames between them (ROADMAP open
// item 2; PAPERS.md "Push vs. Pull-Based Loop Fusion"). When its source
// scan exposes morsels, the segment additionally replaces the static
// partition assignment with a shared work queue that all partitions
// drain, so load balances dynamically under skew.
//
// The fused operators keep their original child links (Stages[0]'s
// child is Source), and Children returns the top of that chain — so
// EXPLAIN renders the segment as an annotated group with the real
// operators nested beneath, and CheckPlanMetrics walks them unchanged.
type PipelineExec struct {
	physical.OpMetrics
	// Source feeds the segment: a scan or any pipeline breaker's output.
	Source physical.ExecutionPlan
	// Stages are the fused operators bottom-up; each implements
	// physical.Pushable.
	Stages []physical.ExecutionPlan

	// queue is the shared morsel queue, lazily built on first Execute so
	// all partitions of one run drain the same cursor.
	mu    sync.Mutex
	queue *morselQueue
}

// top returns the head of the fused chain (the node whose schema and
// partitioning the segment presents).
func (e *PipelineExec) top() physical.ExecutionPlan {
	if n := len(e.Stages); n > 0 {
		return e.Stages[n-1]
	}
	return e.Source
}

func (e *PipelineExec) Schema() *arrow.Schema { return e.top().Schema() }
func (e *PipelineExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.top()}
}
func (e *PipelineExec) Partitions() int                      { return e.top().Partitions() }
func (e *PipelineExec) OutputOrdering() []physical.SortField { return e.top().OutputOrdering() }

func (e *PipelineExec) String() string {
	if scan := e.morselScan(); scan != nil {
		return fmt.Sprintf("PipelineExec: stages=%d scheduler=morsel units=%d",
			len(e.Stages), scan.Result.Morsels.Units())
	}
	return fmt.Sprintf("PipelineExec: stages=%d scheduler=static", len(e.Stages))
}

// WithChildren rebuilds the segment from a (possibly rewritten) chain
// top by re-extracting the maximal pushable suffix.
func (e *PipelineExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	top, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	source, stages := extractFusedChain(top)
	return &PipelineExec{Source: source, Stages: stages}, nil
}

// extractFusedChain walks down from top collecting the contiguous run of
// push-capable unary operators; the first non-pushable node is the
// segment source. Stages come back bottom-up.
func extractFusedChain(top physical.ExecutionPlan) (physical.ExecutionPlan, []physical.ExecutionPlan) {
	var rev []physical.ExecutionPlan
	n := top
	for {
		p, ok := n.(physical.Pushable)
		if !ok || !p.CanPush() {
			break
		}
		rev = append(rev, n)
		n = n.Children()[0]
	}
	stages := make([]physical.ExecutionPlan, len(rev))
	for i, s := range rev {
		stages[len(rev)-1-i] = s
	}
	return n, stages
}

// morselScan returns the source scan when it can feed a morsel queue.
func (e *PipelineExec) morselScan() *TableScanExec {
	if s, ok := e.Source.(*TableScanExec); ok && s.Result.Morsels != nil && s.Result.Morsels.Units() > 0 {
		return s
	}
	return nil
}

// openSource opens this partition's input: either a worker view of the
// shared morsel queue (instrumented as the scan so its metrics and
// pruning counters keep their pull-mode semantics) or the static
// per-partition stream.
func (e *PipelineExec) openSource(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	scan := e.morselScan()
	if scan == nil {
		return e.Source.Execute(ctx, partition)
	}
	e.mu.Lock()
	if e.queue == nil {
		e.queue = newMorselQueue(scan.Result.Morsels)
	}
	q := e.queue
	e.mu.Unlock()
	return scan.instrument(&morselStream{schema: scan.Schema(), q: q}), nil
}

func (e *PipelineExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	src, err := e.openSource(ctx, partition)
	if err != nil {
		return nil, err
	}
	stages := make([]*fusedStage, len(e.Stages))
	for i, st := range e.Stages {
		push, ok := st.(physical.Pushable)
		if !ok {
			src.Close()
			closeStages(stages[:i])
			return nil, fmt.Errorf("exec: fused stage %T is not pushable (optimizer bug)", st)
		}
		pusher, err := push.PushInto(ctx, partition)
		if err != nil {
			src.Close()
			closeStages(stages[:i])
			return nil, err
		}
		fs := &fusedStage{pusher: pusher}
		if mp, ok := st.(physical.MetricsProvider); ok {
			fs.m = mp.Metrics()
		}
		fs.emit = fs.collect
		stages[i] = fs
	}
	return physical.InstrumentStream(&fusedStream{
		schema: e.Schema(), ctx: ctx, src: src, stages: stages,
	}, e.Metrics()), nil
}

func closeStages(stages []*fusedStage) {
	for _, st := range stages {
		st.pusher.Close()
	}
}

// fusedStage is one operator's per-partition state inside a fused loop.
type fusedStage struct {
	pusher physical.Pusher
	m      *physical.MetricsSet
	emit   physical.EmitFn
	// buf collects the batches emitted by the current Push/Flush round;
	// the driver hands it to the next stage after the call returns.
	buf []*arrow.RecordBatch
	// done marks that the operator will never emit again (limit
	// satisfied); the driver stops feeding the pipeline.
	done bool
}

// collect is the stage's EmitFn: it counts output into the operator's
// own MetricsSet — preserving per-operator pull-mode accounting inside
// the fused loop — and buffers the batch for the next stage.
func (st *fusedStage) collect(b *arrow.RecordBatch) error {
	if b == nil || b.NumRows() == 0 {
		return nil
	}
	if st.m != nil {
		st.m.AddOutput(int64(b.NumRows()))
	}
	st.buf = append(st.buf, b)
	return nil
}

// fusedStream drives a fused segment for one worker: pull a source
// batch, cascade it through every stage in-line, and hand the chain's
// outputs to the consumer. There are no goroutines or channels between
// stages; each stage's compute time accrues to its own operator.
type fusedStream struct {
	schema  *arrow.Schema
	ctx     *physical.ExecContext
	src     physical.Stream
	stages  []*fusedStage
	out     []*arrow.RecordBatch
	srcDone bool
	flushed bool
	closed  bool
}

func (s *fusedStream) Schema() *arrow.Schema { return s.schema }

func (s *fusedStream) Next() (*arrow.RecordBatch, error) {
	for {
		if len(s.out) > 0 {
			b := s.out[0]
			s.out = s.out[1:]
			return b, nil
		}
		if s.flushed {
			return nil, io.EOF
		}
		if err := checkCancel(s.ctx); err != nil {
			return nil, err
		}
		if s.srcDone {
			if err := s.flush(); err != nil {
				return nil, err
			}
			s.flushed = true
			continue
		}
		b, err := s.src.Next()
		if err == io.EOF {
			s.srcDone = true
			continue
		}
		if err != nil {
			return nil, err
		}
		if b.NumRows() == 0 {
			continue
		}
		if err := s.process(0, b); err != nil {
			return nil, err
		}
	}
}

// process cascades one batch through stages[from:], appending whatever
// survives the full chain to the output queue. When a stage reports
// done, the source stops and batches bound for that stage are dropped —
// batches it already emitted still flow downstream.
func (s *fusedStream) process(from int, b *arrow.RecordBatch) error {
	in := []*arrow.RecordBatch{b}
	for i := from; i < len(s.stages); i++ {
		st := s.stages[i]
		if st.done || len(in) == 0 {
			return nil
		}
		st.buf = st.buf[:0]
		start := time.Now()
		for _, ib := range in {
			done, err := st.pusher.Push(ib, st.emit)
			if err != nil {
				st.addElapsed(start)
				return err
			}
			if done {
				st.done = true
				s.srcDone = true
				break
			}
		}
		st.addElapsed(start)
		in = st.buf
	}
	s.out = append(s.out, in...)
	return nil
}

// flush drains buffered stage state bottom-up after the source is
// exhausted (or a limit fired): each stage's flush output passes through
// the stages above it before that stage's own flush runs, preserving
// batch order.
func (s *fusedStream) flush() error {
	for i, st := range s.stages {
		if st.done {
			continue
		}
		st.buf = st.buf[:0]
		start := time.Now()
		err := st.pusher.Flush(st.emit)
		st.addElapsed(start)
		if err != nil {
			return err
		}
		flushed := append([]*arrow.RecordBatch(nil), st.buf...)
		if i+1 == len(s.stages) {
			s.out = append(s.out, flushed...)
			continue
		}
		for _, b := range flushed {
			if err := s.process(i+1, b); err != nil {
				return err
			}
		}
	}
	return nil
}

func (st *fusedStage) addElapsed(start time.Time) {
	if st.m != nil {
		st.m.AddElapsed(time.Since(start))
	}
}

func (s *fusedStream) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.src.Close()
	for _, st := range s.stages {
		st.pusher.Close()
	}
}
