// Differential aggregation test: randomized inputs are grouped through the
// hash-first group table (every HashAggregateExec configuration, including
// forced spill and forced partial early-flush) and must match gofusion's
// independent baseline engine (internal/baseline) exactly. External test
// package because baseline itself links against exec's sibling packages.
package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/baseline"
	"gofusion/internal/catalog"
	"gofusion/internal/exec"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/memory"
	"gofusion/internal/physical"
	"gofusion/internal/testutil"
)

var diffReg = functions.NewRegistry()

// diffBatches builds randomized key/value batches: nullable int64 and string
// keys with nulls, empty strings, embedded NULs, and heavy duplication, plus
// a nullable int64 payload.
func diffBatches(rng *rand.Rand, schema *arrow.Schema, nBatches, maxRows, card int) []*arrow.RecordBatch {
	keyPool := make([]string, card)
	for i := range keyPool {
		switch i % 11 {
		case 0:
			keyPool[i] = ""
		case 1:
			keyPool[i] = fmt.Sprintf("k\x00%d", i)
		default:
			keyPool[i] = fmt.Sprintf("key-%d", i)
		}
	}
	var out []*arrow.RecordBatch
	for b := 0; b < nBatches; b++ {
		n := 1 + rng.Intn(maxRows)
		var cols []arrow.Array
		for _, f := range schema.Fields() {
			switch f.Name {
			case "k_int":
				ib := arrow.NewNumericBuilder[int64](arrow.Int64)
				for i := 0; i < n; i++ {
					if rng.Intn(8) == 0 {
						ib.AppendNull()
					} else {
						ib.Append(int64(rng.Intn(card)) - int64(card/2))
					}
				}
				cols = append(cols, ib.Finish())
			case "k_str":
				sb := arrow.NewStringBuilder(arrow.String)
				for i := 0; i < n; i++ {
					if rng.Intn(8) == 0 {
						sb.AppendNull()
					} else {
						sb.Append(keyPool[rng.Intn(card)])
					}
				}
				cols = append(cols, sb.Finish())
			case "v":
				vb := arrow.NewNumericBuilder[int64](arrow.Int64)
				for i := 0; i < n; i++ {
					if rng.Intn(10) == 0 {
						vb.AppendNull()
					} else {
						vb.Append(int64(rng.Intn(2000)) - 1000)
					}
				}
				cols = append(cols, vb.Finish())
			}
		}
		out = append(out, arrow.NewRecordBatch(schema, cols))
	}
	return out
}

func TestAggDifferentialAgainstBaseline(t *testing.T) {
	shapes := []struct {
		name   string
		fields []arrow.Field
		groups []string
	}{
		{"int", []arrow.Field{ // single int64 key: primitive fast path
			arrow.NewField("k_int", arrow.Int64, true),
			arrow.NewField("v", arrow.Int64, true),
		}, []string{"k_int"}},
		{"str", []arrow.Field{ // single string key: generic arena path
			arrow.NewField("k_str", arrow.String, true),
			arrow.NewField("v", arrow.Int64, true),
		}, []string{"k_str"}},
		{"mixed", []arrow.Field{ // multi-column keys: generic arena path
			arrow.NewField("k_int", arrow.Int64, true),
			arrow.NewField("k_str", arrow.String, true),
			arrow.NewField("v", arrow.Int64, true),
		}, []string{"k_int", "k_str"}},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(len(shape.name)) * 997))
			schema := arrow.NewSchema(shape.fields...)
			batches := diffBatches(rng, schema, 12, 600, 40)
			mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{batches})
			if err != nil {
				t.Fatal(err)
			}

			// Reference: the independent baseline engine over the same rows.
			be := baseline.New(2)
			be.RegisterBatches("t", schema, batches)
			sql := "SELECT "
			for _, g := range shape.groups {
				sql += g + ", "
			}
			sql += "sum(v), count(*), min(v), max(v), avg(v) FROM t GROUP BY "
			for i, g := range shape.groups {
				if i > 0 {
					sql += ", "
				}
				sql += g
			}
			ref, err := be.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			want := testutil.NormalizeBatch(ref)

			groupExprs := make([]logical.Expr, len(shape.groups))
			for i, g := range shape.groups {
				groupExprs[i] = logical.Col(g)
			}
			plan, err := logical.NewBuilder(diffReg).
				Scan("t", mt).
				Aggregate(groupExprs, []logical.Expr{
					&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("v")}},
					&logical.AggFunc{Name: "count"},
					&logical.AggFunc{Name: "min", Args: []logical.Expr{logical.Col("v")}},
					&logical.AggFunc{Name: "max", Args: []logical.Expr{logical.Col("v")}},
					&logical.AggFunc{Name: "avg", Args: []logical.Expr{logical.Col("v")}},
				}).
				Build()
			if err != nil {
				t.Fatal(err)
			}

			check := func(name string, parts int, setup func(pp physical.ExecutionPlan, ctx *physical.ExecContext)) {
				t.Helper()
				pp, err := exec.CreatePhysicalPlan(plan, &exec.PlannerConfig{TargetPartitions: parts, Reg: diffReg})
				if err != nil {
					t.Fatalf("%s: plan: %v", name, err)
				}
				ctx := physical.NewExecContext()
				if setup != nil {
					setup(pp, ctx)
				}
				got, err := exec.CollectBatch(ctx, pp)
				if err != nil {
					t.Fatalf("%s: exec: %v", name, err)
				}
				if diff := testutil.Diff(testutil.NormalizeBatch(got), want); diff != "" {
					t.Fatalf("%s: engines disagree with baseline:\n%s", name, diff)
				}
			}

			check("single-partition", 1, nil)
			check("multi-partition", 4, nil)
			check("forced-spill", 2, func(pp physical.ExecutionPlan, ctx *physical.ExecContext) {
				dm := memory.NewDiskManager(t.TempDir(), true)
				t.Cleanup(func() { dm.Close() })
				ctx.Pool = memory.NewGreedyPool(2 * 1024)
				ctx.Disk = dm
			})
			check("partial-early-flush", 3, func(pp physical.ExecutionPlan, ctx *physical.ExecContext) {
				forced := false
				var force func(p physical.ExecutionPlan)
				force = func(p physical.ExecutionPlan) {
					if agg, ok := p.(*exec.HashAggregateExec); ok && agg.Mode == exec.PartialAgg {
						agg.FlushThreshold = 7
						forced = true
					}
					for _, c := range p.Children() {
						force(c)
					}
				}
				force(pp)
				if !forced {
					t.Fatalf("no partial aggregate in plan:\n%s", exec.ExplainPhysical(pp))
				}
			})
		})
	}
}
