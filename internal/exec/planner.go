package exec

import (
	"fmt"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/optimizer"
	"gofusion/internal/parquet"
	"gofusion/internal/physical"
)

// PlannerConfig controls physical planning.
type PlannerConfig struct {
	// TargetPartitions is the desired parallelism (paper Section 5.5.2).
	TargetPartitions int
	// BatchRows is the preferred batch size (default 8192).
	BatchRows int
	// ScanReadahead is the per-partition scan decode pipeline depth in row
	// groups; 0 means the default (2), negative disables readahead.
	ScanReadahead int
	// Reg resolves functions.
	Reg *functions.Registry
	// PreferHashJoin disables sort-merge join selection when true.
	PreferHashJoin bool
	// DisableFusion keeps every operator on its own pull stream instead
	// of compiling pipeline segments into fused PipelineExec loops
	// (fusion is on by default; this knob exists for ablations and
	// differential testing).
	DisableFusion bool
	// ExtensionPlanners lower user-defined logical nodes (paper Section
	// 7.7); each is tried in order.
	ExtensionPlanners []ExtensionPlanner
	// PageCache, when set, is threaded into provider scans so decoded
	// pages are shared process-wide.
	PageCache *parquet.PageCache
	// WatermarkLateness is the event-time slack (in the watermark column's
	// units) that streaming aggregation allows for out-of-order rows before
	// closing a time bucket.
	WatermarkLateness int64
}

// ExtensionPlanner lowers one kind of user-defined logical node.
type ExtensionPlanner func(node logical.ExtensionNode, inputs []physical.ExecutionPlan, cfg *PlannerConfig) (physical.ExecutionPlan, bool, error)

func (cfg *PlannerConfig) withDefaults() *PlannerConfig {
	out := *cfg
	if out.TargetPartitions <= 0 {
		out.TargetPartitions = 1
	}
	if out.BatchRows <= 0 {
		out.BatchRows = 8192
	}
	if out.ScanReadahead == 0 {
		out.ScanReadahead = 2
	} else if out.ScanReadahead < 0 {
		out.ScanReadahead = 0
	}
	if out.Reg == nil {
		out.Reg = functions.NewRegistry()
	}
	return &out
}

// CreatePhysicalPlan lowers an optimized logical plan to an execution plan.
func CreatePhysicalPlan(plan logical.Plan, cfg *PlannerConfig) (physical.ExecutionPlan, error) {
	c := cfg.withDefaults()
	p, err := c.create(plan)
	if err != nil {
		return nil, err
	}
	p, err = applyPhysicalOptimizers(p, c)
	if err != nil {
		return nil, err
	}
	// Backstop: no full-pipeline breaker may sit over an unbounded input
	// (the operator-selection paths above raise friendlier errors first).
	if err := validateStreamingPlan(p); err != nil {
		return nil, err
	}
	return p, nil
}

func (cfg *PlannerConfig) compiler(schema *logical.Schema) *physical.Compiler {
	return physical.NewCompiler(schema, cfg.Reg)
}

func (cfg *PlannerConfig) compileSorts(keys []logical.SortExpr, schema *logical.Schema) ([]SortSpec, error) {
	comp := cfg.compiler(schema)
	out := make([]SortSpec, len(keys))
	for i, k := range keys {
		e, err := comp.Compile(k.E)
		if err != nil {
			return nil, err
		}
		out[i] = SortSpec{Expr: e, Descending: !k.Asc, NullsFirst: k.NullsFirst}
	}
	return out, nil
}

func (cfg *PlannerConfig) create(plan logical.Plan) (physical.ExecutionPlan, error) {
	switch node := plan.(type) {
	case *logical.TableScan:
		return cfg.planScan(node)
	case *logical.Projection:
		input, err := cfg.create(node.Input)
		if err != nil {
			return nil, err
		}
		comp := cfg.compiler(node.Input.Schema())
		exprs := make([]physical.PhysicalExpr, len(node.Exprs))
		for i, e := range node.Exprs {
			pe, err := comp.Compile(e)
			if err != nil {
				return nil, err
			}
			exprs[i] = pe
		}
		names := make([]string, node.Schema().Len())
		nullables := make([]bool, node.Schema().Len())
		for i, f := range node.Schema().Fields() {
			names[i] = f.Name
			nullables[i] = f.Nullable
		}
		return NewProjectionExec(input, exprs, names, nullables), nil
	case *logical.Filter:
		input, err := cfg.create(node.Input)
		if err != nil {
			return nil, err
		}
		pred, err := cfg.compiler(node.Input.Schema()).Compile(node.Predicate)
		if err != nil {
			return nil, err
		}
		return &CoalesceBatchesExec{Input: &FilterExec{Input: input, Predicate: pred}, Target: cfg.BatchRows}, nil
	case *logical.Aggregate:
		return cfg.planAggregate(node)
	case *logical.Sort:
		return cfg.planSort(node)
	case *logical.Limit:
		input, err := cfg.create(node.Input)
		if err != nil {
			return nil, err
		}
		if input.Partitions() > 1 {
			if node.Fetch >= 0 {
				input = &LocalLimitExec{Input: input, Fetch: node.Skip + node.Fetch}
			}
			input = &CoalescePartitionsExec{Input: input}
		}
		return &GlobalLimitExec{Input: input, Skip: node.Skip, Fetch: node.Fetch}, nil
	case *logical.Join:
		return cfg.planJoin(node)
	case *logical.SubqueryAlias:
		// Pure renaming: physical plans reference columns by position.
		return cfg.create(node.Input)
	case *logical.Union:
		inputs := make([]physical.ExecutionPlan, len(node.Inputs))
		for i, in := range node.Inputs {
			p, err := cfg.create(in)
			if err != nil {
				return nil, err
			}
			inputs[i] = p
		}
		// Unify field names to the union schema.
		return NewUnionExec(inputs), nil
	case *logical.Distinct:
		input, err := cfg.create(node.Input)
		if err != nil {
			return nil, err
		}
		return cfg.planDistinct(node, input)
	case *logical.Window:
		return cfg.planWindow(node)
	case *logical.Values:
		return cfg.planValues(node)
	case *logical.EmptyRelation:
		schema := node.Schema().ToArrow()
		var batches []*arrow.RecordBatch
		if node.ProduceOneRow {
			cols := make([]arrow.Array, schema.NumFields())
			for i, f := range schema.Fields() {
				b := arrow.NewBuilder(f.Type)
				b.AppendNull()
				cols[i] = b.Finish()
			}
			batches = append(batches, arrow.NewRecordBatchWithRows(schema, cols, 1))
		}
		return NewValuesExec(schema, batches), nil
	case *logical.Extension:
		inputs := make([]physical.ExecutionPlan, len(node.Node.Inputs()))
		for i, in := range node.Node.Inputs() {
			p, err := cfg.create(in)
			if err != nil {
				return nil, err
			}
			inputs[i] = p
		}
		for _, ep := range cfg.ExtensionPlanners {
			p, ok, err := ep(node.Node, inputs, cfg)
			if err != nil {
				return nil, err
			}
			if ok {
				return p, nil
			}
		}
		return nil, fmt.Errorf("exec: no physical planner for extension node %q", node.Node.Name())
	}
	return nil, fmt.Errorf("exec: cannot plan %T", plan)
}

func (cfg *PlannerConfig) planScan(node *logical.TableScan) (physical.ExecutionPlan, error) {
	provider, ok := node.Source.(catalog.TableProvider)
	if !ok {
		return nil, fmt.Errorf("exec: table %q has no physical provider", node.Name)
	}
	req := catalog.ScanRequest{
		Projection: node.Projection,
		Filters:    node.Filters,
		Limit:      node.Fetch,
		Partitions: cfg.TargetPartitions,
		BatchRows:  cfg.BatchRows,
		Readahead:  cfg.ScanReadahead,
		PageCache:  cfg.PageCache,
	}
	result, err := provider.Scan(req)
	if err != nil {
		return nil, err
	}
	var plan physical.ExecutionPlan = NewTableScanExec(node.Name, result)
	// Maximize parallelism: fan a narrow scan out across the target
	// partition count (unless that would destroy a useful sort order, or
	// the scan tails a live source — buffering an unbounded producer
	// through an exchange only adds latency).
	if result.Partitions < cfg.TargetPartitions && result.SortOrder == nil && !result.Unbounded {
		plan = &RepartitionExec{Input: plan, Scheme: RoundRobinPartitioning, NumParts: cfg.TargetPartitions}
	}
	// Re-apply filters the provider could not guarantee exactly.
	var residual []logical.Expr
	for i, f := range node.Filters {
		if i >= len(result.ExactFilters) || !result.ExactFilters[i] {
			residual = append(residual, f)
		}
	}
	if len(residual) > 0 {
		pred, err := cfg.compiler(node.Schema()).Compile(logical.And(residual...))
		if err != nil {
			return nil, err
		}
		plan = &CoalesceBatchesExec{Input: &FilterExec{Input: plan, Predicate: pred}, Target: cfg.BatchRows}
	}
	return plan, nil
}

// aggCall unwraps an aggregate expression (possibly aliased).
func aggCall(e logical.Expr) (*logical.AggFunc, error) {
	switch x := e.(type) {
	case *logical.Alias:
		return aggCall(x.E)
	case *logical.AggFunc:
		return x, nil
	}
	return nil, fmt.Errorf("exec: aggregate expression %s must be a direct aggregate call", e)
}

func (cfg *PlannerConfig) buildAggSpecs(node *logical.Aggregate, comp *physical.Compiler) ([]AggSpec, error) {
	specs := make([]AggSpec, len(node.AggExprs))
	outFields := node.Schema().Fields()[len(node.GroupExprs):]
	for i, e := range node.AggExprs {
		call, err := aggCall(e)
		if err != nil {
			return nil, err
		}
		name := call.Name
		if call.Distinct {
			if name != "count" {
				return nil, fmt.Errorf("exec: DISTINCT is only supported for count(), got %s", name)
			}
			name = "count_distinct"
		}
		fn, ok := cfg.Reg.Agg(name)
		if !ok {
			return nil, fmt.Errorf("exec: unknown aggregate function %q", name)
		}
		args := make([]physical.PhysicalExpr, len(call.Args))
		for j, a := range call.Args {
			pa, err := comp.Compile(a)
			if err != nil {
				return nil, err
			}
			args[j] = pa
		}
		var filter physical.PhysicalExpr
		if call.Filter != nil {
			filter, err = comp.Compile(call.Filter)
			if err != nil {
				return nil, err
			}
		}
		spec, err := NewAggSpec(fn, outFields[i].Name, args, filter)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	return specs, nil
}

// orderingCoversGroups reports whether the input ordering's leading
// columns are exactly the group columns (any permutation), enabling the
// streaming aggregation fast path.
func orderingCoversGroups(ordering []physical.SortField, groups []physical.PhysicalExpr) bool {
	if len(ordering) < len(groups) || len(groups) == 0 {
		return false
	}
	lead := map[int]bool{}
	for _, f := range ordering[:len(groups)] {
		lead[f.Col] = true
	}
	for _, g := range groups {
		c, ok := g.(*physical.ColumnExpr)
		if !ok || !lead[c.Index] {
			return false
		}
	}
	return true
}

func (cfg *PlannerConfig) planAggregate(node *logical.Aggregate) (physical.ExecutionPlan, error) {
	input, err := cfg.create(node.Input)
	if err != nil {
		return nil, err
	}
	comp := cfg.compiler(node.Input.Schema())
	groupExprs := make([]physical.PhysicalExpr, len(node.GroupExprs))
	for i, g := range node.GroupExprs {
		pg, err := comp.Compile(g)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = pg
	}
	groupNames := make([]string, len(node.GroupExprs))
	for i := range node.GroupExprs {
		groupNames[i] = node.Schema().Field(i).Name
	}
	specs, err := cfg.buildAggSpecs(node, comp)
	if err != nil {
		return nil, err
	}

	if IsUnbounded(input) {
		return cfg.planStreamingAggregate(input, groupExprs, groupNames, specs)
	}

	ordered := orderingCoversGroups(input.OutputOrdering(), groupExprs)

	if input.Partitions() == 1 {
		single := NewHashAggregateExec(input, SingleAgg, groupExprs, groupNames, specs)
		single.InputOrdered = ordered
		return single, nil
	}

	// Two-phase: partial per input partition, hash repartition on group
	// keys, final merge.
	partial := NewHashAggregateExec(input, PartialAgg, groupExprs, groupNames, specs)
	partial.InputOrdered = ordered

	// Final-phase group exprs reference the partial output by position.
	finalGroups := make([]physical.PhysicalExpr, len(groupExprs))
	for i, g := range groupExprs {
		finalGroups[i] = physical.NewColumnExpr(i, groupNames[i], g.DataType())
	}
	finalSpecs := make([]AggSpec, len(specs))
	for i, s := range specs {
		finalSpecs[i] = AggSpec{Fn: s.Fn, Name: s.Name, ArgTypes: s.ArgTypes,
			OutType: s.OutType, StateTypes: s.StateTypes}
	}

	var mid physical.ExecutionPlan = partial
	if len(groupExprs) == 0 {
		mid = &CoalescePartitionsExec{Input: mid}
	} else {
		mid = &RepartitionExec{Input: mid, Scheme: HashPartitioning,
			HashExprs: finalGroups, NumParts: cfg.TargetPartitions}
	}
	return NewHashAggregateExec(mid, FinalAgg, finalGroups, groupNames, finalSpecs), nil
}

// planStreamingAggregate routes a grouped aggregation over an unbounded
// input onto WatermarkAggExec, provided the grouping keys include the
// source's declared event-time column (otherwise no group ever becomes
// final while the stream runs).
func (cfg *PlannerConfig) planStreamingAggregate(input physical.ExecutionPlan,
	groupExprs []physical.PhysicalExpr, groupNames []string, specs []AggSpec) (physical.ExecutionPlan, error) {
	wm := watermarkColumn(input)
	if wm < 0 {
		return nil, breakerErr("HashAggregateExec",
			"aggregation only finalizes at end of input; declare a watermark column on the source and group by it for streaming emit")
	}
	wmPos := -1
	for i, g := range groupExprs {
		if c, ok := g.(*physical.ColumnExpr); ok && c.Index == wm {
			wmPos = i
			break
		}
	}
	if wmPos < 0 {
		return nil, breakerErr("HashAggregateExec",
			"aggregation only finalizes at end of input; group by the source's watermark column for streaming emit")
	}
	if input.Partitions() > 1 {
		input = &CoalescePartitionsExec{Input: input}
	}
	return NewWatermarkAggExec(input, groupExprs, groupNames, specs, wmPos, cfg.WatermarkLateness), nil
}

func (cfg *PlannerConfig) planDistinct(node *logical.Distinct, input physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	schema := node.Schema()
	groupExprs := make([]physical.PhysicalExpr, schema.Len())
	groupNames := make([]string, schema.Len())
	for i, f := range schema.Fields() {
		groupExprs[i] = physical.NewColumnExpr(i, f.Name, f.Type)
		groupNames[i] = f.Name
	}
	if IsUnbounded(input) {
		// DISTINCT streams when the watermark column is among the selected
		// columns: de-duplication then partitions by event time.
		return cfg.planStreamingAggregate(input, groupExprs, groupNames, nil)
	}
	if input.Partitions() == 1 {
		return NewHashAggregateExec(input, SingleAgg, groupExprs, groupNames, nil), nil
	}
	partial := NewHashAggregateExec(input, PartialAgg, groupExprs, groupNames, nil)
	rep := &RepartitionExec{Input: partial, Scheme: HashPartitioning,
		HashExprs: groupExprs, NumParts: cfg.TargetPartitions}
	return NewHashAggregateExec(rep, FinalAgg, groupExprs, groupNames, nil), nil
}

func (cfg *PlannerConfig) planSort(node *logical.Sort) (physical.ExecutionPlan, error) {
	input, err := cfg.create(node.Input)
	if err != nil {
		return nil, err
	}
	keys, err := cfg.compileSorts(node.Keys, node.Input.Schema())
	if err != nil {
		return nil, err
	}
	// Sort elimination: input already provides the requested order.
	if orderingSatisfies(input.OutputOrdering(), keys) && input.Partitions() == 1 {
		if node.Fetch >= 0 {
			return &GlobalLimitExec{Input: input, Skip: 0, Fetch: node.Fetch}, nil
		}
		return input, nil
	}
	if IsUnbounded(input) {
		if node.Fetch >= 0 {
			return nil, breakerErr("TopKExec", "top-k only emits after the input ends")
		}
		return nil, breakerErr("ExternalSortExec", "sorting buffers the entire input")
	}
	if node.Fetch >= 0 {
		topk := &TopKExec{Input: input, Keys: keys, K: node.Fetch}
		if input.Partitions() == 1 {
			return topk, nil
		}
		merged := &SortPreservingMergeExec{Input: topk, Keys: keys}
		return &GlobalLimitExec{Input: merged, Skip: 0, Fetch: node.Fetch}, nil
	}
	sorted := &ExternalSortExec{Input: input, Keys: keys}
	if input.Partitions() == 1 {
		return sorted, nil
	}
	return &SortPreservingMergeExec{Input: sorted, Keys: keys}, nil
}

// orderingSatisfies reports whether an existing output ordering subsumes
// the requested sort keys.
func orderingSatisfies(have []physical.SortField, want []SortSpec) bool {
	if len(have) < len(want) {
		return false
	}
	for i, w := range want {
		c, ok := w.Expr.(*physical.ColumnExpr)
		if !ok {
			return false
		}
		h := have[i]
		if h.Col != c.Index || h.Descending != w.Descending || h.NullsFirst != w.NullsFirst {
			return false
		}
	}
	return true
}

func (cfg *PlannerConfig) planJoin(node *logical.Join) (physical.ExecutionPlan, error) {
	left, err := cfg.create(node.Left)
	if err != nil {
		return nil, err
	}
	right, err := cfg.create(node.Right)
	if err != nil {
		return nil, err
	}
	// The residual filter sees (left ++ right) regardless of join type.
	combined := node.Left.Schema().Merge(node.Right.Schema())
	var filter physical.PhysicalExpr
	if node.Filter != nil {
		filter, err = cfg.compiler(combined).Compile(node.Filter)
		if err != nil {
			return nil, err
		}
	}

	if node.Type == logical.CrossJoin || len(node.On) == 0 {
		jt := node.Type
		if jt == logical.CrossJoin && filter != nil {
			jt = logical.InnerJoin
		}
		return NewNestedLoopJoinExec(left, right, filter, jt), nil
	}

	lcomp := cfg.compiler(node.Left.Schema())
	rcomp := cfg.compiler(node.Right.Schema())
	on := make([]JoinOn, len(node.On))
	for i, p := range node.On {
		le, err := lcomp.Compile(p.L)
		if err != nil {
			return nil, err
		}
		re, err := rcomp.Compile(p.R)
		if err != nil {
			return nil, err
		}
		// Coerce key types so both sides encode identically.
		le, re, err = coerceJoinKeys(le, re)
		if err != nil {
			return nil, err
		}
		on[i] = JoinOn{L: le, R: re}
	}

	if lu, ru := IsUnbounded(left), IsUnbounded(right); lu || ru {
		return cfg.planStreamingJoin(node, left, right, on, filter, lu, ru)
	}

	// Sorted inputs with matching keys use the merge join.
	if !cfg.PreferHashJoin && filter == nil && mergeJoinApplicable(node.Type, left, right, on) {
		return NewSortMergeJoinExec(left, right, on, node.Type)
	}

	if cfg.TargetPartitions > 1 {
		// A small build side is cheaper to broadcast (CollectLeft) than to
		// hash-repartition both inputs — but only join types that track no
		// per-build-row state may share one table across probe partitions.
		shareable := node.Type == logical.InnerJoin || node.Type == logical.RightJoin ||
			node.Type == logical.RightSemiJoin || node.Type == logical.RightAntiJoin
		if shareable {
			if rows := optimizer.EstimateRows(node.Left); rows >= 0 && rows <= 100_000 {
				return NewHashJoinExec(left, right, on, filter, node.Type, CollectLeft), nil
			}
		}
		leftKeys := make([]physical.PhysicalExpr, len(on))
		rightKeys := make([]physical.PhysicalExpr, len(on))
		for i, p := range on {
			leftKeys[i] = p.L
			rightKeys[i] = p.R
		}
		lrep := &RepartitionExec{Input: left, Scheme: HashPartitioning, HashExprs: leftKeys, NumParts: cfg.TargetPartitions}
		rrep := &RepartitionExec{Input: right, Scheme: HashPartitioning, HashExprs: rightKeys, NumParts: cfg.TargetPartitions}
		return NewHashJoinExec(lrep, rrep, on, filter, node.Type, PartitionedJoin), nil
	}
	return NewHashJoinExec(left, right, on, filter, node.Type, CollectLeft), nil
}

// planStreamingJoin selects a join operator when at least one equi-join
// input is unbounded. A bounded build with a streaming probe runs on the
// regular hash join (for join types owing no build-side tail pass); an
// unbounded build side forces the symmetric hash join, which only supports
// INNER semantics without retractions.
func (cfg *PlannerConfig) planStreamingJoin(node *logical.Join, left, right physical.ExecutionPlan,
	on []JoinOn, filter physical.PhysicalExpr, lu, ru bool) (physical.ExecutionPlan, error) {
	if !lu && probeStreamableJoin(node.Type) {
		return NewHashJoinExec(left, right, on, filter, node.Type, CollectLeft), nil
	}
	if node.Type != logical.InnerJoin {
		return nil, breakerErr("HashJoinExec",
			fmt.Sprintf("%s join over a live stream would need retractions; only INNER equi-joins stream symmetrically", node.Type))
	}
	if left.Partitions() > 1 {
		left = &CoalescePartitionsExec{Input: left}
	}
	if right.Partitions() > 1 {
		right = &CoalescePartitionsExec{Input: right}
	}
	var out physical.ExecutionPlan = NewSymmetricHashJoinExec(left, right, on)
	if filter != nil {
		out = &CoalesceBatchesExec{Input: &FilterExec{Input: out, Predicate: filter}, Target: cfg.BatchRows}
	}
	return out, nil
}

func coerceJoinKeys(l, r physical.PhysicalExpr) (physical.PhysicalExpr, physical.PhysicalExpr, error) {
	lt, rt := l.DataType(), r.DataType()
	if lt.Equal(rt) {
		return l, r, nil
	}
	common, err := logical.PromoteNumeric(lt, rt)
	if err != nil {
		return nil, nil, fmt.Errorf("exec: incompatible join key types %s and %s", lt, rt)
	}
	if !lt.Equal(common) {
		l = &physical.CastExpr{E: l, To: common}
	}
	if !rt.Equal(common) {
		r = &physical.CastExpr{E: r, To: common}
	}
	return l, r, nil
}

func mergeJoinApplicable(jt logical.JoinType, left, right physical.ExecutionPlan, on []JoinOn) bool {
	switch jt {
	case logical.InnerJoin, logical.LeftJoin, logical.RightJoin, logical.LeftSemiJoin, logical.LeftAntiJoin:
	default:
		return false
	}
	check := func(p physical.ExecutionPlan, side func(JoinOn) physical.PhysicalExpr) bool {
		ord := p.OutputOrdering()
		if len(ord) < len(on) || p.Partitions() != 1 {
			return false
		}
		for i, pair := range on {
			c, ok := side(pair).(*physical.ColumnExpr)
			if !ok || ord[i].Col != c.Index || ord[i].Descending {
				return false
			}
		}
		return true
	}
	return check(left, func(p JoinOn) physical.PhysicalExpr { return p.L }) &&
		check(right, func(p JoinOn) physical.PhysicalExpr { return p.R })
}

func (cfg *PlannerConfig) planWindow(node *logical.Window) (physical.ExecutionPlan, error) {
	input, err := cfg.create(node.Input)
	if err != nil {
		return nil, err
	}
	if IsUnbounded(input) {
		return nil, breakerErr("WindowExec", "window functions buffer their partitions")
	}
	return PlanWindowOver(input, node, cfg)
}

// PlanWindowOver lowers a logical Window node onto a pre-built physical
// input (also used by the baseline engine, which shares only the window
// algorithm).
func PlanWindowOver(input physical.ExecutionPlan, node *logical.Window, cfg *PlannerConfig) (physical.ExecutionPlan, error) {
	cfg = cfg.withDefaults()
	comp := cfg.compiler(node.Input.Schema())
	inLen := node.Input.Schema().Len()
	specs := make([]WindowSpec, len(node.WindowExprs))
	for i, e := range node.WindowExprs {
		wf, name, err := windowCall(e)
		if err != nil {
			return nil, err
		}
		spec := WindowSpec{Name: wf.Name, Frame: wf.Frame, OutName: name}
		for _, a := range wf.Args {
			pa, err := comp.Compile(a)
			if err != nil {
				return nil, err
			}
			spec.Args = append(spec.Args, pa)
		}
		for _, p := range wf.PartitionBy {
			pp, err := comp.Compile(p)
			if err != nil {
				return nil, err
			}
			spec.PartitionBy = append(spec.PartitionBy, pp)
		}
		sorts, err := cfg.compileSorts(wf.OrderBy, node.Input.Schema())
		if err != nil {
			return nil, err
		}
		spec.OrderBy = sorts
		if !cfg.Reg.IsWindow(wf.Name) {
			fn, ok := cfg.Reg.Agg(wf.Name)
			if !ok {
				return nil, fmt.Errorf("exec: unknown window function %q", wf.Name)
			}
			spec.AggFn = fn
		}
		spec.OutType = node.Schema().Field(inLen + i).Type
		specs[i] = spec
	}
	return NewWindowExec(input, specs, cfg.Reg), nil
}

func windowCall(e logical.Expr) (*logical.WindowFunc, string, error) {
	name := logical.OutputName(e)
	for {
		switch x := e.(type) {
		case *logical.Alias:
			e = x.E
		case *logical.WindowFunc:
			return x, name, nil
		default:
			return nil, "", fmt.Errorf("exec: window expression %s must be a direct window call", e)
		}
	}
}

func (cfg *PlannerConfig) planValues(node *logical.Values) (physical.ExecutionPlan, error) {
	schema := node.Schema().ToArrow()
	builders := make([]arrow.Builder, schema.NumFields())
	for i, f := range schema.Fields() {
		builders[i] = arrow.NewBuilder(f.Type)
	}
	empty := logical.NewSchema()
	comp := physical.NewCompiler(empty, cfg.Reg)
	oneRow := arrow.NewRecordBatchWithRows(arrow.NewSchema(), nil, 1)
	for _, row := range node.Rows {
		for c, cell := range row {
			pe, err := comp.Compile(cell)
			if err != nil {
				return nil, err
			}
			d, err := pe.Evaluate(oneRow)
			if err != nil {
				return nil, err
			}
			var s arrow.Scalar
			if d.IsArray() {
				s = d.Array().GetScalar(0)
			} else {
				s = d.ScalarValue()
			}
			if !s.Type.Equal(schema.Field(c).Type) && !s.Null {
				s2, err := physical.CastScalarTo(s, schema.Field(c).Type)
				if err != nil {
					return nil, err
				}
				s = s2
			}
			if s.Null {
				builders[c].AppendNull()
			} else {
				builders[c].AppendScalar(s)
			}
		}
	}
	cols := make([]arrow.Array, len(builders))
	for i, b := range builders {
		cols[i] = b.Finish()
	}
	return NewValuesExec(schema, []*arrow.RecordBatch{arrow.NewRecordBatchWithRows(schema, cols, len(node.Rows))}), nil
}
