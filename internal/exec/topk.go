package exec

import (
	"bytes"
	"container/heap"
	"fmt"
	"io"
	"sort"

	"gofusion/internal/arrow"
	"gofusion/internal/physical"
)

// TopKExec is the specialized Sort+Limit operator (paper Section 6.2,
// "Top K"): it keeps only the best K rows in a bounded heap instead of
// sorting the whole input.
type TopKExec struct {
	physical.OpMetrics
	Input physical.ExecutionPlan
	Keys  []SortSpec
	K     int64
}

func (e *TopKExec) Schema() *arrow.Schema              { return e.Input.Schema() }
func (e *TopKExec) Children() []physical.ExecutionPlan { return []physical.ExecutionPlan{e.Input} }
func (e *TopKExec) Partitions() int                    { return e.Input.Partitions() }
func (e *TopKExec) String() string                     { return fmt.Sprintf("TopKExec: k=%d", e.K) }
func (e *TopKExec) OutputOrdering() []physical.SortField {
	return (&ExternalSortExec{Input: e.Input, Keys: e.Keys}).OutputOrdering()
}
func (e *TopKExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return &TopKExec{Input: c, Keys: e.Keys, K: e.K}, nil
}

// topkRow is one retained row: its sort key plus boxed values.
type topkRow struct {
	key  []byte
	vals []arrow.Scalar
	seq  int64 // arrival order, for stable ties
}

// topkHeap is a max-heap on (key, seq) so the worst retained row is on
// top and can be evicted in O(log k).
type topkHeap []topkRow

func (h topkHeap) Len() int { return len(h) }
func (h topkHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].key, h[j].key)
	if c != 0 {
		return c > 0
	}
	return h[i].seq > h[j].seq
}
func (h topkHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *topkHeap) Push(x any)   { *h = append(*h, x.(topkRow)) }
func (h *topkHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (e *TopKExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	in, err := e.Input.Execute(ctx, partition)
	if err != nil {
		return nil, err
	}
	enc, err := sortEncoder(e.Keys)
	if err != nil {
		in.Close()
		return nil, err
	}
	started := false
	var result *arrow.RecordBatch
	emitted := false
	next := func() (*arrow.RecordBatch, error) {
		if !started {
			started = true
			var h topkHeap
			var seq int64
			for {
				if err := checkCancel(ctx); err != nil {
					return nil, err
				}
				b, err := in.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return nil, err
				}
				keys, err := encodeSortKeys(enc, e.Keys, b)
				if err != nil {
					return nil, err
				}
				for i := 0; i < b.NumRows(); i++ {
					seq++
					if int64(len(h)) >= e.K {
						// Skip rows no better than the current worst.
						worst := h[0]
						c := bytes.Compare(keys[i], worst.key)
						if c > 0 || (c == 0 && seq > worst.seq) {
							continue
						}
					}
					vals := make([]arrow.Scalar, b.NumCols())
					for c := 0; c < b.NumCols(); c++ {
						vals[c] = b.Column(c).GetScalar(i)
					}
					heap.Push(&h, topkRow{key: append([]byte(nil), keys[i]...), vals: vals, seq: seq})
					if int64(len(h)) > e.K {
						heap.Pop(&h)
					}
				}
			}
			rows := make([]topkRow, len(h))
			copy(rows, h)
			sort.Slice(rows, func(i, j int) bool {
				c := bytes.Compare(rows[i].key, rows[j].key)
				if c != 0 {
					return c < 0
				}
				return rows[i].seq < rows[j].seq
			})
			builders := make([]arrow.Builder, e.Schema().NumFields())
			for i, f := range e.Schema().Fields() {
				builders[i] = arrow.NewBuilder(f.Type)
			}
			for _, r := range rows {
				for c, v := range r.vals {
					builders[c].AppendScalar(v)
				}
			}
			cols := make([]arrow.Array, len(builders))
			for i, b := range builders {
				cols[i] = b.Finish()
			}
			result = arrow.NewRecordBatchWithRows(e.Schema(), cols, len(rows))
		}
		if emitted || result.NumRows() == 0 {
			return nil, io.EOF
		}
		emitted = true
		return result, nil
	}
	return physical.InstrumentStream(NewFuncStream(e.Schema(), next, in.Close), e.Metrics()), nil
}
