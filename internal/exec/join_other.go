package exec

import (
	"fmt"
	"io"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
)

// NestedLoopJoinExec evaluates an arbitrary join condition by pairing
// every left row with every probe batch (paper Section 6.4). It handles
// the non-equi joins the hash join cannot. The left input is materialized.
type NestedLoopJoinExec struct {
	physical.OpMetrics
	Left   physical.ExecutionPlan
	Right  physical.ExecutionPlan
	Filter physical.PhysicalExpr // nil = cross join
	Type   logical.JoinType
	schema *arrow.Schema
}

// NewNestedLoopJoinExec computes the output schema.
func NewNestedLoopJoinExec(left, right physical.ExecutionPlan, filter physical.PhysicalExpr, jt logical.JoinType) *NestedLoopJoinExec {
	return &NestedLoopJoinExec{Left: left, Right: right, Filter: filter, Type: jt,
		schema: joinOutputSchema(left.Schema(), right.Schema(), jt)}
}

func (e *NestedLoopJoinExec) Schema() *arrow.Schema { return e.schema }
func (e *NestedLoopJoinExec) Children() []physical.ExecutionPlan {
	return []physical.ExecutionPlan{e.Left, e.Right}
}
func (e *NestedLoopJoinExec) Partitions() int                      { return 1 }
func (e *NestedLoopJoinExec) OutputOrdering() []physical.SortField { return nil }
func (e *NestedLoopJoinExec) String() string {
	s := fmt.Sprintf("NestedLoopJoinExec: type=%s", e.Type)
	if e.Filter != nil {
		s += " filter=" + e.Filter.String()
	}
	return s
}
func (e *NestedLoopJoinExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	if len(ch) != 2 {
		return nil, fmt.Errorf("exec: join takes 2 children")
	}
	return NewNestedLoopJoinExec(ch[0], ch[1], e.Filter, e.Type), nil
}

func (e *NestedLoopJoinExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	if partition != 0 {
		return nil, fmt.Errorf("exec: nested loop join has a single partition")
	}
	leftBatches, err := CollectPlan(ctx, e.Left)
	if err != nil {
		return nil, err
	}
	left, err := compute.ConcatBatches(e.Left.Schema(), leftBatches)
	if err != nil {
		return nil, err
	}
	right := &CoalescePartitionsExec{Input: e.Right}
	rs, err := right.Execute(ctx, 0)
	if err != nil {
		return nil, err
	}

	leftVisited := make([]bool, left.NumRows())
	innerSchema := joinOutputSchema(e.Left.Schema(), e.Right.Schema(), logical.InnerJoin)
	probeDone := false
	tailEmitted := false
	m := e.Metrics()
	m.Counter("build_rows").Store(int64(left.NumRows()))
	probeRows := m.Counter("probe_rows")

	next := func() (*arrow.RecordBatch, error) {
		for {
			if probeDone {
				if tailEmitted {
					return nil, io.EOF
				}
				tailEmitted = true
				out := e.emitLeftTail(left, leftVisited)
				if out != nil && out.NumRows() > 0 {
					return out, nil
				}
				return nil, io.EOF
			}
			if err := checkCancel(ctx); err != nil {
				return nil, err
			}
			rb, err := rs.Next()
			if err == io.EOF {
				probeDone = true
				continue
			}
			if err != nil {
				return nil, err
			}
			if rb.NumRows() == 0 {
				continue
			}
			probeRows.Add(int64(rb.NumRows()))
			out, err := e.probe(left, rb, leftVisited, innerSchema)
			if err != nil {
				return nil, err
			}
			if out != nil && out.NumRows() > 0 {
				return out, nil
			}
		}
	}
	return physical.InstrumentStream(NewFuncStream(e.schema, next, rs.Close), m), nil
}

func (e *NestedLoopJoinExec) probe(left, rb *arrow.RecordBatch, leftVisited []bool, innerSchema *arrow.Schema) (*arrow.RecordBatch, error) {
	nl, nr := left.NumRows(), rb.NumRows()
	var li, ri []int32
	if e.Filter == nil {
		// Cross join: all pairs.
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				li = append(li, int32(l))
				ri = append(ri, int32(r))
			}
		}
	} else {
		// Evaluate the filter left-row-at-a-time against the probe batch.
		for l := 0; l < nl; l++ {
			lcols := make([]arrow.Array, left.NumCols())
			rep := make([]int32, nr)
			for i := range rep {
				rep[i] = int32(l)
			}
			for c := 0; c < left.NumCols(); c++ {
				lcols[c] = compute.Take(left.Column(c), rep)
			}
			cb := arrow.NewRecordBatchWithRows(innerSchema, append(lcols, rb.Columns()...), nr)
			mask, err := physical.EvalPredicate(e.Filter, cb)
			if err != nil {
				return nil, err
			}
			for r := 0; r < nr; r++ {
				if mask.IsValid(r) && mask.Value(r) {
					li = append(li, int32(l))
					ri = append(ri, int32(r))
				}
			}
		}
	}
	for _, l := range li {
		leftVisited[l] = true
	}

	switch e.Type {
	case logical.InnerJoin, logical.CrossJoin:
		if len(li) == 0 {
			return nil, nil
		}
		return combinedBatch(e.schema, left, rb, li, ri), nil
	case logical.LeftJoin:
		if len(li) == 0 {
			return nil, nil
		}
		return combinedBatch(e.schema, left, rb, li, ri), nil
	case logical.RightJoin, logical.FullJoin:
		matched := make([]bool, nr)
		for _, r := range ri {
			matched[r] = true
		}
		for r := 0; r < nr; r++ {
			if !matched[r] {
				li = append(li, -1)
				ri = append(ri, int32(r))
			}
		}
		if len(li) == 0 {
			return nil, nil
		}
		return combinedBatch(e.schema, left, rb, li, ri), nil
	case logical.LeftSemiJoin, logical.LeftAntiJoin:
		return nil, nil // emitted at end from leftVisited
	case logical.RightSemiJoin, logical.RightAntiJoin:
		matched := make([]bool, nr)
		for _, r := range ri {
			matched[r] = true
		}
		want := e.Type == logical.RightSemiJoin
		var keep []int32
		for r := 0; r < nr; r++ {
			if matched[r] == want {
				keep = append(keep, int32(r))
			}
		}
		if len(keep) == 0 {
			return nil, nil
		}
		return compute.TakeBatch(rb, keep), nil
	}
	return nil, fmt.Errorf("exec: unsupported nested loop join type %s", e.Type)
}

func (e *NestedLoopJoinExec) emitLeftTail(left *arrow.RecordBatch, visited []bool) *arrow.RecordBatch {
	switch e.Type {
	case logical.LeftJoin, logical.FullJoin:
		var keep []int32
		for i, v := range visited {
			if !v {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) == 0 {
			return nil
		}
		lcols := make([]arrow.Array, left.NumCols())
		for c := range lcols {
			lcols[c] = compute.Take(left.Column(c), keep)
		}
		rs := e.Right.Schema()
		rcols := make([]arrow.Array, rs.NumFields())
		for c := 0; c < rs.NumFields(); c++ {
			b := arrow.NewBuilder(rs.Field(c).Type)
			for range keep {
				b.AppendNull()
			}
			rcols[c] = b.Finish()
		}
		return arrow.NewRecordBatchWithRows(e.schema, append(lcols, rcols...), len(keep))
	case logical.LeftSemiJoin, logical.LeftAntiJoin:
		want := e.Type == logical.LeftSemiJoin
		var keep []int32
		for i, v := range visited {
			if v == want {
				keep = append(keep, int32(i))
			}
		}
		if len(keep) == 0 {
			return nil
		}
		return compute.TakeBatch(left, keep)
	}
	return nil
}

func combinedBatch(schema *arrow.Schema, left, rb *arrow.RecordBatch, li, ri []int32) *arrow.RecordBatch {
	lcols := make([]arrow.Array, left.NumCols())
	for c := 0; c < left.NumCols(); c++ {
		lcols[c] = compute.Take(left.Column(c), li)
	}
	rcols := make([]arrow.Array, rb.NumCols())
	for c := 0; c < rb.NumCols(); c++ {
		rcols[c] = compute.Take(rb.Column(c), ri)
	}
	return arrow.NewRecordBatchWithRows(schema, append(lcols, rcols...), len(li))
}
