package exec

import (
	"context"
	"testing"

	"gofusion/internal/arrow"
	"gofusion/internal/catalog"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
	"gofusion/internal/testutil"
)

func TestWindowRowsFrames(t *testing.T) {
	// Values 1..6 in one partition; moving sum over ROWS BETWEEN 1
	// PRECEDING AND 1 FOLLOWING.
	schema := arrow.NewSchema(arrow.NewField("v", arrow.Int64, false))
	mt := memTable(t, schema, []arrow.Array{arrow.NewInt64([]int64{1, 2, 3, 4, 5, 6})})
	plan, err := logical.NewBuilder(testReg).
		Scan("t", mt).
		Window(&logical.Alias{E: &logical.WindowFunc{
			Name:    "sum",
			Args:    []logical.Expr{logical.Col("v")},
			OrderBy: []logical.SortExpr{logical.SortAsc(logical.Col("v"))},
			Frame: logical.WindowFrame{Rows: true,
				Start: logical.FrameBound{Kind: logical.OffsetPreceding, Offset: 1},
				End:   logical.FrameBound{Kind: logical.OffsetFollowing, Offset: 1}},
		}, Name: "ms"}).
		Project(logical.Col("v"), logical.Col("ms")).
		Sort(logical.SortAsc(logical.Col("v"))).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	want := []string{"1|3|", "2|6|", "3|9|", "4|12|", "5|15|", "6|11|"}
	sameRows(t, got, want, true)
}

func TestWindowUnboundedFrame(t *testing.T) {
	schema := arrow.NewSchema(
		arrow.NewField("g", arrow.Int64, false),
		arrow.NewField("v", arrow.Int64, false),
	)
	mt := memTable(t, schema, []arrow.Array{
		arrow.NewInt64([]int64{1, 1, 2}),
		arrow.NewInt64([]int64{10, 20, 5}),
	})
	plan, err := logical.NewBuilder(testReg).
		Scan("t", mt).
		Window(&logical.Alias{E: &logical.WindowFunc{
			Name:        "sum",
			Args:        []logical.Expr{logical.Col("v")},
			PartitionBy: []logical.Expr{logical.Col("g")},
			Frame: logical.WindowFrame{
				Start: logical.FrameBound{Kind: logical.UnboundedPreceding},
				End:   logical.FrameBound{Kind: logical.UnboundedFollowing}},
		}, Name: "total"}).
		Project(logical.Col("v"), logical.Col("total")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	sameRows(t, got, []string{"10|30|", "20|30|", "5|5|"}, false)
}

func TestWindowPeersRangeFrame(t *testing.T) {
	// RANGE UNBOUNDED..CURRENT with ties: peers share the running value.
	schema := arrow.NewSchema(arrow.NewField("v", arrow.Int64, false))
	mt := memTable(t, schema, []arrow.Array{arrow.NewInt64([]int64{1, 2, 2, 3})})
	plan, err := logical.NewBuilder(testReg).
		Scan("t", mt).
		Window(&logical.Alias{E: &logical.WindowFunc{
			Name:    "sum",
			Args:    []logical.Expr{logical.Col("v")},
			OrderBy: []logical.SortExpr{logical.SortAsc(logical.Col("v"))},
			Frame:   logical.DefaultFrame(), // RANGE UNBOUNDED..CURRENT
		}, Name: "run"}).
		Project(logical.Col("v"), logical.Col("run")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	got := runPlan(t, plan, 1)
	// Ties at v=2 both see 1+2+2=5.
	sameRows(t, got, []string{"1|1|", "2|5|", "2|5|", "3|8|"}, false)
}

func TestPartialAggEarlyFlush(t *testing.T) {
	// A tiny flush threshold forces the partial phase to emit and reset
	// repeatedly; results must still be exact.
	table := bigTable(t, 3000)
	plan, err := logical.NewBuilder(testReg).
		Scan("big", table).
		Aggregate([]logical.Expr{logical.Col("k")},
			[]logical.Expr{&logical.AggFunc{Name: "sum", Args: []logical.Expr{logical.Col("v")}}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := &PlannerConfig{TargetPartitions: 3, Reg: testReg}
	pp, err := CreatePhysicalPlan(plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the partial aggregate and force a minuscule flush threshold.
	forced := false
	var force func(p physical.ExecutionPlan)
	force = func(p physical.ExecutionPlan) {
		if agg, ok := p.(*HashAggregateExec); ok && agg.Mode == PartialAgg {
			agg.FlushThreshold = 7
			forced = true
		}
		for _, c := range p.Children() {
			force(c)
		}
	}
	force(pp)
	if !forced {
		t.Fatalf("no partial aggregate found:\n%s", ExplainPhysical(pp))
	}
	got, err := CollectBatch(physical.NewExecContext(), pp)
	if err != nil {
		t.Fatal(err)
	}
	want := runPlan(t, plan, 1)
	if !sameRowsOK(got, rowsAsStrings(want)) {
		t.Fatal("early-flush results differ")
	}
}

func TestQueryCancellation(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	table := bigTable(t, 100000)
	plan, err := logical.NewBuilder(testReg).
		Scan("big", table).
		Aggregate([]logical.Expr{logical.Col("v")}, // high cardinality: slow enough
			[]logical.Expr{&logical.AggFunc{Name: "count"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := CreatePhysicalPlan(plan, &PlannerConfig{TargetPartitions: 1, Reg: testReg})
	if err != nil {
		t.Fatal(err)
	}
	ctx := physical.NewExecContext()
	cctx, cancel := context.WithCancel(context.Background())
	ctx.Ctx = cctx
	cancel() // cancel before execution
	if _, err := CollectPlan(ctx, pp); err == nil {
		t.Fatal("cancelled query must fail")
	}
}

func TestUnionPreservesPartitions(t *testing.T) {
	defer testutil.CheckNoGoroutineLeak(t)()
	a := bigTable(t, 100)
	planA, _ := logical.NewBuilder(testReg).Scan("a", a).Build()
	planB, _ := logical.NewBuilder(testReg).Scan("b", a).Build()
	u := &logical.Union{Inputs: []logical.Plan{planA, planB}, All: true}
	pp, err := CreatePhysicalPlan(u, &PlannerConfig{TargetPartitions: 2, Reg: testReg})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectBatch(physical.NewExecContext(), pp)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 200 {
		t.Fatalf("union rows = %d", got.NumRows())
	}
}

func TestCoalesceBatchesRebuffers(t *testing.T) {
	// A selective filter produces fragments; CoalesceBatchesExec must
	// merge them back toward the target size.
	table := bigTable(t, 10000)
	plan, err := logical.NewBuilder(testReg).
		Scan("big", table).
		Filter(&logical.BinaryExpr{Op: logical.OpEq,
			L: &logical.BinaryExpr{Op: logical.OpMod, L: logical.Col("v"), R: logical.Lit(10)},
			R: logical.Lit(0)}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pp, err := CreatePhysicalPlan(plan, &PlannerConfig{TargetPartitions: 1, Reg: testReg, BatchRows: 512})
	if err != nil {
		t.Fatal(err)
	}
	ctx := physical.NewExecContext()
	ctx.BatchRows = 512
	batches, err := CollectPlan(ctx, pp)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range batches[:len(batches)-1] {
		if b.NumRows() < 512 {
			t.Fatalf("non-final batch of %d rows escaped coalescing", b.NumRows())
		}
		total += b.NumRows()
	}
	total += batches[len(batches)-1].NumRows()
	if total != 1000 {
		t.Fatalf("filtered rows = %d", total)
	}
}

func TestMemTableDeclaredOrderValidated(t *testing.T) {
	// Declaring order and relying on the ordered-agg fast path: a wrong
	// declaration would produce duplicated groups; the engine trusts the
	// catalog, so this test documents correct usage.
	schema := arrow.NewSchema(arrow.NewField("g", arrow.Int64, false))
	mt, err := catalog.NewMemTable(schema, [][]*arrow.RecordBatch{{
		arrow.NewRecordBatch(schema, []arrow.Array{arrow.NewInt64([]int64{3, 3, 7, 7, 9})}),
	}})
	if err != nil {
		t.Fatal(err)
	}
	mt.WithSortOrder([]catalog.OrderedCol{{Name: "g"}})
	plan, _ := logical.NewBuilder(testReg).
		Scan("t", mt).
		Aggregate([]logical.Expr{logical.Col("g")}, []logical.Expr{&logical.AggFunc{Name: "count"}}).
		Build()
	got := runPlan(t, plan, 1)
	sameRows(t, got, []string{"3|2|", "7|2|", "9|1|"}, false)
}
