package exec

import (
	"fmt"

	"gofusion/internal/physical"
)

// CheckPlanMetrics validates cross-operator metric invariants over an
// executed plan. It is used by the fuzz and TPC-H harnesses to catch
// metric-accounting bugs: a plan can produce correct rows while its
// instrumentation silently under- or over-counts.
//
// rowsReturned is the number of rows the caller actually received from
// the root stream(s); the root operator's output_rows must match it
// exactly since the caller fully drained the plan.
//
// Interior checks are deliberately one-sided where early termination is
// possible: a GlobalLimit closes its upstream once satisfied, which can
// leave already-produced batches buffered inside exchange channels, so
// an upstream operator may have counted rows its consumer never pulled.
// Equality is only asserted where the pull protocol guarantees it
// (root, one-batch-in/one-batch-out operators, and join build sides
// which always run to completion before probing).
func CheckPlanMetrics(plan physical.ExecutionPlan, rowsReturned int64) error {
	root, ok := plan.(physical.MetricsProvider)
	if !ok {
		return fmt.Errorf("exec: root operator %T records no metrics", plan)
	}
	if got := root.Metrics().OutputRows(); got != rowsReturned {
		return fmt.Errorf("exec: root %s reports output_rows=%d, caller received %d rows",
			plan.String(), got, rowsReturned)
	}

	var errs []error
	var walk func(n physical.ExecutionPlan)
	walk = func(n physical.ExecutionPlan) {
		if mp, ok := n.(physical.MetricsProvider); ok {
			s := mp.Metrics().Snapshot()
			if (s.SpillCount > 0) != (s.SpilledBytes > 0) {
				errs = append(errs, fmt.Errorf("%s: inconsistent spill accounting: spill_count=%d, spilled_bytes=%d",
					n.String(), s.SpillCount, s.SpilledBytes))
			}
			if s.OutputRows < 0 || s.OutputBatches < 0 || s.Elapsed < 0 {
				errs = append(errs, fmt.Errorf("%s: negative core metric in %s", n.String(), s.String()))
			}
			if s.OutputRows > 0 && s.OutputBatches == 0 {
				errs = append(errs, fmt.Errorf("%s: output_rows=%d but output_batches=0",
					n.String(), s.OutputRows))
			}
			switch op := n.(type) {
			case *ProjectionExec:
				// Projection emits exactly the batches it pulls, so its
				// row count must equal its child's.
				if in, ok := childOutputRows(op.Input); ok && in != s.OutputRows {
					errs = append(errs, fmt.Errorf("%s: output_rows=%d != input rows %d",
						n.String(), s.OutputRows, in))
				}
			case *FilterExec:
				checkAtMost(&errs, n, s.OutputRows, op.Input)
			case *GlobalLimitExec:
				checkAtMost(&errs, n, s.OutputRows, op.Input)
			case *LocalLimitExec:
				checkAtMost(&errs, n, s.OutputRows, op.Input)
			case *CoalesceBatchesExec:
				checkAtMost(&errs, n, s.OutputRows, op.Input)
			case *HashJoinExec:
				// The build side always runs to completion at Execute
				// time, so build_rows must equal the left child's output.
				if in, ok := childOutputRows(op.Left); ok {
					if build := s.ExtraValue("build_rows"); build != in {
						errs = append(errs, fmt.Errorf("%s: build_rows=%d != left input rows %d",
							n.String(), build, in))
					}
				}
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(plan)
	if len(errs) > 0 {
		return fmt.Errorf("exec: %d metric invariant violation(s), first: %w", len(errs), errs[0])
	}
	return nil
}

// PlanSpillStats sums spill_count and spilled_bytes across every operator
// in an executed plan (used by harnesses to assert that memory-limited
// configurations actually exercised the spill paths).
func PlanSpillStats(plan physical.ExecutionPlan) (count, bytes int64) {
	var walk func(n physical.ExecutionPlan)
	walk = func(n physical.ExecutionPlan) {
		if mp, ok := n.(physical.MetricsProvider); ok {
			count += mp.Metrics().SpillCount()
			bytes += mp.Metrics().SpilledBytes()
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(plan)
	return count, bytes
}

func childOutputRows(c physical.ExecutionPlan) (int64, bool) {
	mp, ok := c.(physical.MetricsProvider)
	if !ok {
		return 0, false
	}
	return mp.Metrics().OutputRows(), true
}

func checkAtMost(errs *[]error, n physical.ExecutionPlan, out int64, child physical.ExecutionPlan) {
	if in, ok := childOutputRows(child); ok && out > in {
		*errs = append(*errs, fmt.Errorf("%s: output_rows=%d exceeds input rows %d",
			n.String(), out, in))
	}
}
