package exec

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"gofusion/internal/arrow"
	"gofusion/internal/arrow/compute"
	"gofusion/internal/functions"
	"gofusion/internal/logical"
	"gofusion/internal/physical"
	"gofusion/internal/rowformat"
)

// WindowSpec is one window expression: a function, its arguments, and the
// OVER clause.
type WindowSpec struct {
	Name        string
	AggFn       *functions.AggFunc // set when an aggregate runs in window position
	Args        []physical.PhysicalExpr
	PartitionBy []physical.PhysicalExpr
	OrderBy     []SortSpec
	Frame       logical.WindowFrame
	OutType     *arrow.DataType
	OutName     string
}

// WindowExec evaluates window functions incrementally per partition run
// (paper Section 6.5), appending one output column per spec while
// preserving the input row order.
type WindowExec struct {
	physical.OpMetrics
	Input  physical.ExecutionPlan
	Specs  []WindowSpec
	Reg    *functions.Registry
	schema *arrow.Schema
}

// NewWindowExec computes the output schema (input fields + window fields).
func NewWindowExec(input physical.ExecutionPlan, specs []WindowSpec, reg *functions.Registry) *WindowExec {
	fields := append([]arrow.Field{}, input.Schema().Fields()...)
	for _, s := range specs {
		fields = append(fields, arrow.NewField(s.OutName, s.OutType, true))
	}
	return &WindowExec{Input: input, Specs: specs, Reg: reg, schema: arrow.NewSchema(fields...)}
}

func (e *WindowExec) Schema() *arrow.Schema              { return e.schema }
func (e *WindowExec) Children() []physical.ExecutionPlan { return []physical.ExecutionPlan{e.Input} }
func (e *WindowExec) Partitions() int                    { return 1 }
func (e *WindowExec) OutputOrdering() []physical.SortField {
	return e.Input.OutputOrdering()
}
func (e *WindowExec) String() string {
	return fmt.Sprintf("WindowExec: %d window exprs", len(e.Specs))
}
func (e *WindowExec) WithChildren(ch []physical.ExecutionPlan) (physical.ExecutionPlan, error) {
	c, err := oneChild(ch)
	if err != nil {
		return nil, err
	}
	return NewWindowExec(c, e.Specs, e.Reg), nil
}

func (e *WindowExec) Execute(ctx *physical.ExecContext, partition int) (physical.Stream, error) {
	if partition != 0 {
		return nil, fmt.Errorf("exec: window has a single partition")
	}
	in, err := (&CoalescePartitionsExec{Input: e.Input}).Execute(ctx, 0)
	if err != nil {
		return nil, err
	}
	started := false
	var out *arrow.RecordBatch
	pos := 0
	next := func() (*arrow.RecordBatch, error) {
		if !started {
			started = true
			batches, err := drainAll(in)
			if err != nil {
				return nil, err
			}
			input, err := compute.ConcatBatches(e.Input.Schema(), batches)
			if err != nil {
				return nil, err
			}
			cols := append([]arrow.Array{}, input.Columns()...)
			for i := range e.Specs {
				col, err := e.evalSpec(&e.Specs[i], input)
				if err != nil {
					return nil, err
				}
				cols = append(cols, col)
			}
			out = arrow.NewRecordBatchWithRows(e.schema, cols, input.NumRows())
		}
		if pos >= out.NumRows() {
			return nil, io.EOF
		}
		n := ctx.BatchRows
		if n <= 0 {
			n = 8192
		}
		if pos+n > out.NumRows() {
			n = out.NumRows() - pos
		}
		b := out.Slice(pos, n)
		pos += n
		return b, nil
	}
	return physical.InstrumentStream(NewFuncStream(e.schema, next, in.Close), e.Metrics()), nil
}

// evalSpec computes one window column over the whole input, in input row
// order.
func (e *WindowExec) evalSpec(spec *WindowSpec, input *arrow.RecordBatch) (arrow.Array, error) {
	n := input.NumRows()
	if n == 0 {
		return arrow.NewBuilder(spec.OutType).Finish(), nil
	}

	// Sort rows by (partition keys, order keys).
	var keyCols []arrow.Array
	var opts []rowformat.SortOption
	var types []*arrow.DataType
	for _, p := range spec.PartitionBy {
		a, err := physical.EvalToArray(p, input)
		if err != nil {
			return nil, err
		}
		keyCols = append(keyCols, a)
		opts = append(opts, rowformat.SortOption{})
		types = append(types, a.DataType())
	}
	numPartKeys := len(keyCols)
	for _, o := range spec.OrderBy {
		a, err := physical.EvalToArray(o.Expr, input)
		if err != nil {
			return nil, err
		}
		keyCols = append(keyCols, a)
		opts = append(opts, rowformat.SortOption{Descending: o.Descending, NullsFirst: o.NullsFirst})
		types = append(types, a.DataType())
	}

	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	var partKeys, orderKeys [][]byte
	if len(keyCols) > 0 {
		enc, err := rowformat.NewEncoder(types, opts)
		if err != nil {
			return nil, err
		}
		full := enc.EncodeRows(keyCols, n)
		order = sortIndicesByKeys(full, n)
		// Split partition and order-key prefixes for run detection.
		partEnc, err := rowformat.NewEncoder(types[:numPartKeys], opts[:numPartKeys])
		if err != nil {
			return nil, err
		}
		partKeys = partEnc.EncodeRows(keyCols[:numPartKeys], n)
		if len(spec.OrderBy) > 0 {
			ordEnc, err := rowformat.NewEncoder(types[numPartKeys:], opts[numPartKeys:])
			if err != nil {
				return nil, err
			}
			orderKeys = ordEnc.EncodeRows(keyCols[numPartKeys:], n)
		}
	}

	// Evaluate argument expressions once over the full input.
	args := make([]arrow.Array, len(spec.Args))
	for i, a := range spec.Args {
		arr, err := physical.EvalToArray(a, input)
		if err != nil {
			return nil, err
		}
		args[i] = arr
	}

	results := make([]arrow.Scalar, n) // indexed by original row
	// Walk partition runs in sorted order.
	start := 0
	for start < n {
		end := start + 1
		for end < n && samePartition(partKeys, order, start, end) {
			end++
		}
		if err := e.evalPartition(spec, args, order[start:end], orderKeys, results); err != nil {
			return nil, err
		}
		start = end
	}
	b := arrow.NewBuilder(spec.OutType)
	b.Reserve(n)
	for i := 0; i < n; i++ {
		b.AppendScalar(results[i])
	}
	return b.Finish(), nil
}

func sortIndicesByKeys(keys [][]byte, n int) []int32 {
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return bytes.Compare(keys[order[a]], keys[order[b]]) < 0
	})
	return order
}

func samePartition(partKeys [][]byte, order []int32, a, b int) bool {
	if partKeys == nil {
		return true
	}
	return bytes.Equal(partKeys[order[a]], partKeys[order[b]])
}

// peers returns the index (within rows) one past the last peer of row i
// (rows with equal order keys).
func peersEnd(orderKeys [][]byte, rows []int32, i int) int {
	if orderKeys == nil {
		return len(rows)
	}
	j := i + 1
	for j < len(rows) && bytes.Equal(orderKeys[rows[j]], orderKeys[rows[i]]) {
		j++
	}
	return j
}

// evalPartition computes results for one partition's rows (already in
// window order); results are scattered into the original-row slots.
func (e *WindowExec) evalPartition(spec *WindowSpec, args []arrow.Array, rows []int32, orderKeys [][]byte, results []arrow.Scalar) error {
	n := len(rows)
	name := spec.Name
	switch name {
	case "row_number":
		for i, r := range rows {
			results[r] = arrow.Int64Scalar(int64(i + 1))
		}
		return nil
	case "rank", "dense_rank", "percent_rank", "cume_dist":
		rank := int64(0)
		dense := int64(0)
		i := 0
		for i < n {
			j := peersEnd(orderKeys, rows, i)
			rank = int64(i + 1)
			dense++
			for k := i; k < j; k++ {
				switch name {
				case "rank":
					results[rows[k]] = arrow.Int64Scalar(rank)
				case "dense_rank":
					results[rows[k]] = arrow.Int64Scalar(dense)
				case "percent_rank":
					if n == 1 {
						results[rows[k]] = arrow.Float64Scalar(0)
					} else {
						results[rows[k]] = arrow.Float64Scalar(float64(rank-1) / float64(n-1))
					}
				case "cume_dist":
					results[rows[k]] = arrow.Float64Scalar(float64(j) / float64(n))
				}
			}
			i = j
		}
		return nil
	case "ntile":
		buckets := int64(1)
		if len(spec.Args) > 0 {
			if lit, ok := spec.Args[0].(*physical.LiteralExpr); ok && !lit.Value.Null {
				buckets = lit.Value.AsInt64()
			}
		}
		if buckets < 1 {
			return fmt.Errorf("exec: ntile requires a positive bucket count")
		}
		for i, r := range rows {
			results[r] = arrow.Int64Scalar(int64(i)*buckets/int64(n) + 1)
		}
		return nil
	case "lag", "lead":
		offset := int64(1)
		if len(spec.Args) > 1 {
			if lit, ok := spec.Args[1].(*physical.LiteralExpr); ok && !lit.Value.Null {
				offset = lit.Value.AsInt64()
			}
		}
		var def arrow.Scalar
		hasDefault := false
		if len(spec.Args) > 2 {
			if lit, ok := spec.Args[2].(*physical.LiteralExpr); ok {
				def, hasDefault = lit.Value, true
			}
		}
		for i, r := range rows {
			var src int64
			if name == "lag" {
				src = int64(i) - offset
			} else {
				src = int64(i) + offset
			}
			if src < 0 || src >= int64(n) {
				if hasDefault {
					results[r] = def
				} else {
					results[r] = arrow.NullScalar(spec.OutType)
				}
				continue
			}
			results[r] = args[0].GetScalar(int(rows[src]))
		}
		return nil
	case "first_value", "last_value", "nth_value":
		for i, r := range rows {
			lo, hi := frameBounds(spec.Frame, i, n, orderKeys, rows)
			if lo >= hi {
				results[r] = arrow.NullScalar(spec.OutType)
				continue
			}
			var src int
			switch name {
			case "first_value":
				src = lo
			case "last_value":
				src = hi - 1
			default:
				nth := int64(1)
				if len(spec.Args) > 1 {
					if lit, ok := spec.Args[1].(*physical.LiteralExpr); ok && !lit.Value.Null {
						nth = lit.Value.AsInt64()
					}
				}
				src = lo + int(nth) - 1
				if src >= hi {
					results[r] = arrow.NullScalar(spec.OutType)
					continue
				}
			}
			results[r] = args[0].GetScalar(int(rows[src]))
		}
		return nil
	}

	// Aggregate in window position.
	if spec.AggFn == nil {
		return fmt.Errorf("exec: unknown window function %q", name)
	}
	return e.evalAggWindow(spec, args, rows, orderKeys, results)
}

// frameBounds resolves a frame to [lo, hi) positions within the partition.
// RANGE frames extend the current-row bound to the full peer group.
func frameBounds(f logical.WindowFrame, i, n int, orderKeys [][]byte, rows []int32) (int, int) {
	lo, hi := 0, n
	switch f.Start.Kind {
	case logical.UnboundedPreceding:
		lo = 0
	case logical.OffsetPreceding:
		lo = i - int(f.Start.Offset)
	case logical.CurrentRow:
		if f.Rows {
			lo = i
		} else {
			// first peer
			lo = i
			for lo > 0 && orderKeys != nil && bytes.Equal(orderKeys[rows[lo-1]], orderKeys[rows[i]]) {
				lo--
			}
		}
	case logical.OffsetFollowing:
		lo = i + int(f.Start.Offset)
	case logical.UnboundedFollowing:
		lo = n
	}
	switch f.End.Kind {
	case logical.UnboundedPreceding:
		hi = 0
	case logical.OffsetPreceding:
		hi = i - int(f.End.Offset) + 1
	case logical.CurrentRow:
		if f.Rows {
			hi = i + 1
		} else {
			hi = peersEnd(orderKeys, rows, i)
		}
	case logical.OffsetFollowing:
		hi = i + int(f.End.Offset) + 1
	case logical.UnboundedFollowing:
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// evalAggWindow computes an aggregate over each row's frame. The common
// running frame (UNBOUNDED PRECEDING .. CURRENT ROW) is evaluated
// incrementally; other frames recompute per frame.
func (e *WindowExec) evalAggWindow(spec *WindowSpec, args []arrow.Array, rows []int32, orderKeys [][]byte, results []arrow.Scalar) error {
	n := len(rows)
	argTypes := make([]*arrow.DataType, len(args))
	for i, a := range args {
		argTypes[i] = a.DataType()
	}

	running := spec.Frame.Start.Kind == logical.UnboundedPreceding && spec.Frame.End.Kind == logical.CurrentRow
	whole := spec.Frame.Start.Kind == logical.UnboundedPreceding && spec.Frame.End.Kind == logical.UnboundedFollowing

	takeArgs := func(idx []int32) []arrow.Array {
		out := make([]arrow.Array, len(args))
		for i, a := range args {
			out[i] = compute.Take(a, idx)
		}
		return out
	}

	switch {
	case whole:
		acc, err := spec.AggFn.NewAccumulator(argTypes)
		if err != nil {
			return err
		}
		gi := make([]uint32, n)
		if err := acc.Update(takeArgs(rows), gi, 1); err != nil {
			return err
		}
		out, err := acc.Evaluate()
		if err != nil {
			return err
		}
		v := out.GetScalar(0)
		for _, r := range rows {
			results[r] = v
		}
		return nil
	case running:
		acc, err := spec.AggFn.NewAccumulator(argTypes)
		if err != nil {
			return err
		}
		i := 0
		for i < n {
			// Add the whole peer group, then emit for each peer (RANGE
			// semantics); ROWS frames have singleton peer groups.
			j := i + 1
			if !spec.Frame.Rows {
				j = peersEnd(orderKeys, rows, i)
			}
			if err := acc.Update(takeArgs(rows[i:j]), make([]uint32, j-i), 1); err != nil {
				return err
			}
			out, err := acc.Evaluate()
			if err != nil {
				return err
			}
			v := out.GetScalar(0)
			for k := i; k < j; k++ {
				results[rows[k]] = v
			}
			i = j
		}
		return nil
	default:
		for i := range rows {
			lo, hi := frameBounds(spec.Frame, i, n, orderKeys, rows)
			if lo >= hi {
				results[rows[i]] = arrow.NullScalar(spec.OutType)
				continue
			}
			acc, err := spec.AggFn.NewAccumulator(argTypes)
			if err != nil {
				return err
			}
			if err := acc.Update(takeArgs(rows[lo:hi]), make([]uint32, hi-lo), 1); err != nil {
				return err
			}
			out, err := acc.Evaluate()
			if err != nil {
				return err
			}
			results[rows[i]] = out.GetScalar(0)
		}
		return nil
	}
}
